# Shared helpers for cmvrp targets: warning flags and library/binary factories.

set(CMVRP_WARNING_FLAGS -Wall -Wextra)
if(CMVRP_WERROR)
  list(APPEND CMVRP_WARNING_FLAGS -Werror)
endif()

# cmvrp_add_library(<name> SOURCES ... [DEPS ...])
#
# Declares one per-layer static library rooted at src/. Header-only layers
# (no SOURCES) become INTERFACE libraries so dependents still inherit the
# include path and transitive deps.
function(cmvrp_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(ARG_SOURCES)
    add_library(${name} STATIC ${ARG_SOURCES})
    target_include_directories(${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
    target_compile_options(${name} PRIVATE ${CMVRP_WARNING_FLAGS})
    if(ARG_DEPS)
      target_link_libraries(${name} PUBLIC ${ARG_DEPS})
    endif()
  else()
    add_library(${name} INTERFACE)
    target_include_directories(${name} INTERFACE ${PROJECT_SOURCE_DIR}/src)
    if(ARG_DEPS)
      target_link_libraries(${name} INTERFACE ${ARG_DEPS})
    endif()
  endif()
endfunction()

# cmvrp_add_binary(<name> <source> [DEPS ...])
#
# One standalone executable (bench / example / tool). Warnings on, but no
# -Werror: these are drivers, not library code.
function(cmvrp_add_binary name source)
  cmake_parse_arguments(ARG "" "" "DEPS" ${ARGN})
  add_executable(${name} ${source})
  target_compile_options(${name} PRIVATE -Wall -Wextra)
  target_link_libraries(${name} PRIVATE ${ARG_DEPS})
endfunction()
