// Smart Dust scenario (§1.2): a field of micro-sensors tracks a moving
// phenomenon; events arrive online at unpredictable positions. Some
// sensors are defective (break early) and some fail silently — the
// monitoring ring and diffusing computations keep coverage alive, which is
// exactly the robustness claim the paper's motivation makes ("if one
// micro-robot dies, the rest of them can shift and cover").
#include <algorithm>
#include <iostream>

#include "online/capacity_search.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;

  const Box field(Point{0, 0}, Point{23, 23});
  Rng rng(42);
  const auto jobs = smart_dust_stream(field, /*count=*/400,
                                      /*jump_probability=*/0.04, rng);
  const DemandMap demand = demand_of_stream(jobs, 2);

  OnlineConfig config = default_online_config(demand, /*seed=*/9);
  // Budget sensors tightly (a fraction of the Lemma 3.3.1 bound) so
  // exhaustion, replacement, and the monitoring ring all come into play.
  config.capacity = std::max(8.0, config.capacity / 2.5);
  std::cout << "Smart Dust field 24x24, " << jobs.size()
            << " events, deployed capacity W = " << config.capacity
            << " (0.4x Lemma 3.3.1), cube side " << config.cube_side << "\n\n";

  // Failure injections target the busiest sensors — the ones that will
  // actually exhaust and need the protocol's help.
  std::vector<Point> hottest = demand.support();
  std::sort(hottest.begin(), hottest.end(),
            [&](const Point& a, const Point& b) {
              if (demand.at(a) != demand.at(b))
                return demand.at(a) > demand.at(b);
              return a < b;
            });
  if (hottest.size() > 12) hottest.resize(12);

  Table t({"scenario", "served", "failed", "replacements",
           "monitor rescues", "messages", "max energy"});

  auto report = [&](const char* name, OnlineSimulation& sim, bool ok) {
    const auto& m = sim.metrics();
    (void)ok;
    t.row()
        .cell(name)
        .cell(m.jobs_served)
        .cell(m.jobs_failed)
        .cell(m.replacements)
        .cell(m.monitor_initiations)
        .cell(m.network.total())
        .cell(m.max_energy_spent);
  };

  {  // Scenario 1 (§3.2.5): everything healthy.
    OnlineSimulation sim(2, config);
    report("all healthy", sim, sim.run(jobs));
  }
  {  // Scenario 2: the busiest vehicles fail to initiate replacements.
    OnlineSimulation sim(2, config);
    for (const auto& p : hottest) sim.inject_silent_done(p);
    report("hot spots silent-done", sim, sim.run(jobs));
  }
  {  // Scenario 3: the busiest sensors are defective and break early.
    OnlineSimulation sim(2, config);
    for (std::size_t k = 0; k < std::min<std::size_t>(8, hottest.size()); ++k)
      sim.inject_break_after(hottest[k], /*longevity=*/0.3);
    report("hot spots break early", sim, sim.run(jobs));
  }
  {  // Degraded protocol: monitoring off — silent failures now cost jobs.
    OnlineConfig no_ring = config;
    no_ring.enable_monitoring = false;
    OnlineSimulation sim(2, no_ring);
    for (const auto& p : hottest) sim.inject_silent_done(p);
    report("silent-done, no ring", sim, sim.run(jobs));
  }

  t.print(std::cout);
  std::cout << "\nThe ring (§3.2.5) turns silent failures back into served "
               "jobs at a heartbeat-message overhead.\n";
  return 0;
}
