// Example 3 of the paper (§2.1.3, Figures 2.1(c) and 2.3): all demand at a
// single point — "using the mobile vehicles to detect the earthquake."
//
// Offline: W₃ solves W(2W+1)² = d; capacity 3W₃ suffices by pulling in the
// (2W₃+1)-square around the epicenter. This example also runs the online
// strategy against an aftershock sequence at the same epicenter, including
// a variant where the first responders break (Chapter 4 flavour).
#include <iostream>

#include "core/closed_forms.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "online/capacity_search.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;

  std::cout << "Offline (Fig 2.3): capacity 3*W3 via the square recall\n";
  Table t({"d (jobs at epicenter)", "W3 (paper)", "3*W3", "omega* (exact)",
           "plan max energy", "plan ok"});
  for (double d : {64.0, 512.0, 4096.0, 32768.0}) {
    const Point epicenter{0, 0};
    const DemandMap demand = point_demand(d, epicenter);
    const double w3 = example_point_w3(d);
    const double omega = omega_for_set({epicenter}, demand);
    const OfflinePlan plan = plan_offline(demand);
    const PlanCheck check = verify_plan(plan, demand);
    t.row()
        .cell(d, 0)
        .cell(w3)
        .cell(3.0 * w3)
        .cell(omega)
        .cell(check.max_energy)
        .cell_bool(check.ok);
  }
  t.print(std::cout);

  std::cout << "\nOnline: 300 aftershocks at the epicenter, distributed "
               "strategy with replacements\n";
  const Point epicenter{12, 12};
  std::vector<Job> shocks;
  for (int i = 0; i < 300; ++i) shocks.push_back({epicenter, i});
  const DemandMap demand = demand_of_stream(shocks, 2);
  const OnlineConfig config = default_online_config(demand, 3);

  Table t2({"variant", "served", "failed", "replacements",
            "monitor rescues", "max energy"});
  {
    OnlineSimulation sim(2, config);
    sim.run(shocks);
    const auto& m = sim.metrics();
    t2.row()
        .cell("healthy fleet")
        .cell(m.jobs_served)
        .cell(m.jobs_failed)
        .cell(m.replacements)
        .cell(m.monitor_initiations)
        .cell(m.max_energy_spent);
  }
  {
    OnlineSimulation sim(2, config);
    // The epicenter's own vehicle and its partner are damaged by the
    // quake: they break after a quarter of their energy.
    sim.inject_break_after(epicenter, 0.25);
    sim.inject_break_after(sim.pairing().partner(epicenter), 0.25);
    sim.run(shocks);
    const auto& m = sim.metrics();
    t2.row()
        .cell("damaged first responders")
        .cell(m.jobs_served)
        .cell(m.jobs_failed)
        .cell(m.replacements)
        .cell(m.monitor_initiations)
        .cell(m.max_energy_spent);
  }
  t2.print(std::cout);
  return 0;
}
