// Example 2 of the paper (§2.1.2, Figures 2.1(b) and 2.2): vehicles
// monitoring traffic on a highway — demand d at every point of a line.
//
// The paper's closed form W₂ solves W(2W+1) = d, and capacity 2W₂
// suffices via the "everyone walks to the nearest highway point" strategy.
// This example computes W₂, cross-checks it against the library's ω
// machinery, builds the actual offline plan, and reports how close the
// realized per-vehicle energy is to the 2W₂ recipe.
#include <iostream>

#include "core/closed_forms.h"
#include "core/cube_bound.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;

  Table t({"d (demand/point)", "W2 (paper)", "2*W2 (suffices)",
           "omega_line (exact)", "plan max energy", "plan ok"});

  for (double d : {8.0, 32.0, 128.0, 512.0}) {
    const std::int64_t len = 96;
    const DemandMap demand = line_demand(len, d, Point{0, 0});

    const double w2 = example_line_w2(d);
    // Exact ω_T for the (finite) line via Eq. (1.1).
    const Box line(Point{0, 0}, Point{len - 1, 0});
    const double omega_line = omega_for_box(line, d * static_cast<double>(len));

    const OfflinePlan plan = plan_offline(demand);
    const PlanCheck check = verify_plan(plan, demand);

    t.row()
        .cell(d, 1)
        .cell(w2)
        .cell(2.0 * w2)
        .cell(omega_line)
        .cell(check.max_energy)
        .cell_bool(check.ok);
  }
  t.print(std::cout);

  std::cout
      << "\nAs the paper notes (W² ~ d): W2 grows like sqrt(d); the exact\n"
         "finite-line omega tracks it, and the constructive plan stays\n"
         "within the Lemma 2.2.5 constant of that lower bound.\n";
  return 0;
}
