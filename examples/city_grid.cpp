// General-graph extension (Chapter 6's open direction): a city block map
// with building obstacles and one fast avenue. How much battery do kiosk
// robots need as the street network changes shape?
//
// Uses the graph-generalized ω machinery — the same Eq.-(1.1) fixed point,
// with graph-metric balls instead of lattice balls.
#include <iostream>

#include "graph/graph.h"
#include "graph/graph_omega.h"
#include "util/table.h"
#include "viz/ascii.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;

  const std::int64_t n = 14;
  const Box city = Box::cube(Point{0, 0}, n);

  // City blocks: 2x2 buildings on a regular pattern, leaving streets.
  std::vector<Point> buildings;
  for (std::int64_t bx = 1; bx < n - 2; bx += 4)
    for (std::int64_t by = 1; by < n - 2; by += 4)
      for (std::int64_t dx = 0; dx < 2; ++dx)
        for (std::int64_t dy = 0; dy < 2; ++dy)
          buildings.push_back(Point{bx + dx, by + dy});

  // Demand: a market square and a stadium event.
  DemandMap demand(2);
  demand.set(Point{7, 7}, 90.0);
  demand.set(Point{12, 3}, 40.0);

  std::cout << "City map ('#' buildings, digits demand):\n";
  DemandMap overlay = demand;
  for (const auto& b : buildings) overlay.set(b, 0.0);
  std::cout << render_field(city, [&](const Point& p) -> char {
    for (const auto& b : buildings)
      if (b == p) return '#';
    if (demand.at(p) >= 90.0) return 'M';
    if (demand.at(p) > 0.0) return 's';
    return '.';
  });

  auto vecify = [](const SpatialGraph& sg, const DemandMap& d) {
    std::vector<double> v(sg.points.size(), 0.0);
    for (const auto& [p, val] : d) {
      auto it = sg.index.find(p);
      if (it != sg.index.end()) v[it->second] = val;
    }
    return v;
  };

  const SpatialGraph open_field = make_grid_graph(city);
  const SpatialGraph blocked = make_grid_with_holes(city, buildings);
  const SpatialGraph avenue =
      make_weighted_roadways(city, /*highway_rows=*/{7}, /*side_cost=*/2);

  Table t({"street network", "omega* (min battery scale)", "vs open field"});
  const double w_open =
      graph_omega_star_flow(open_field.graph, vecify(open_field, demand));
  const double w_blocked =
      graph_omega_star_flow(blocked.graph, vecify(blocked, demand));
  const double w_avenue =
      graph_omega_star_flow(avenue.graph, vecify(avenue, demand));
  t.row().cell("open field (no buildings)").cell(w_open).cell(1.0);
  t.row().cell("city blocks").cell(w_blocked).cell(w_blocked / w_open, 3);
  t.row()
      .cell("2x side streets + one avenue")
      .cell(w_avenue)
      .cell(w_avenue / w_open, 3);
  t.print(std::cout);

  std::cout << "\nBuildings push omega* up (fewer robots can reach the "
               "market in time); slow side streets push it further even "
               "with a fast avenue through the square.\n";
  return 0;
}
