// Quickstart: the CMVRP pipeline end to end on a small scenario.
//
//   1. Describe demand on the grid (here: a hotspot plus background).
//   2. Compute the paper's bounds: ω_c ≤ Woff ≤ (2·3^ℓ+ℓ)·ω_c (Thm 1.4.1)
//      and the Algorithm 1 linear-time estimate.
//   3. Materialize the Lemma 2.2.5 offline plan and verify it.
//   4. Replay the same demand as an online stream through the Chapter 3
//      distributed strategy and compare energy budgets (Thm 1.4.2).
#include <algorithm>
#include <iostream>

#include "core/algorithm1.h"
#include "core/bounds.h"
#include "core/offline_planner.h"
#include "online/capacity_search.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;

  // 1. Demand: 200 clustered events in a 32x32 field.
  Rng rng(2008);
  const Box field(Point{0, 0}, Point{31, 31});
  DemandMap demand = clustered_demand(field, /*clusters=*/3, /*count=*/200,
                                      /*sigma=*/2.5, rng);
  std::cout << "Demand: " << demand.total() << " unit jobs over "
            << demand.support_size() << " vertices, max per vertex "
            << demand.max_demand() << "\n\n";

  // 2. Offline bounds.
  const OffBounds bounds = offline_bounds(demand, 32.0 * 32.0);
  const Algorithm1Result alg1 = algorithm1(demand, 32);

  // 3. Constructive plan (Lemma 2.2.5).
  const OfflinePlan plan = plan_offline(demand);
  const PlanCheck check = verify_plan(plan, demand);

  Table t({"quantity", "value", "source"});
  t.row().cell("omega_c (lower bound)").cell(bounds.omega_c).cell(
      "Cor. 2.2.7");
  t.row().cell("Woff upper bound").cell(bounds.upper).cell("Lem. 2.2.5");
  t.row().cell("plan max energy").cell(check.max_energy).cell(
      "constructive plan");
  t.row().cell("Algorithm 1 estimate").cell(alg1.estimate).cell("Alg. 1");
  t.row().cell("plan verified").cell(check.ok ? "yes" : check.issue).cell(
      "verify_plan");
  t.print(std::cout);

  // 4. Online strategy on the same demand as a stream. Lemma 3.3.1's
  // capacity is deliberately generous; deploy a quarter of it so the
  // replacement machinery (diffusing computations) actually exercises.
  Rng order(7);
  const auto jobs = stream_from_demand(demand, ArrivalOrder::kShuffled, order);
  OnlineConfig config = default_online_config(demand);
  config.capacity = std::max(6.0, config.capacity / 4.0);
  OnlineSimulation sim(2, config);
  const bool ok = sim.run(jobs);
  const auto& m = sim.metrics();

  std::cout << "\nOnline strategy (W = " << config.capacity
            << ", cube side " << config.cube_side << "):\n";
  Table t2({"metric", "value"});
  t2.row().cell("all jobs served").cell_bool(ok);
  t2.row().cell("jobs served").cell(m.jobs_served);
  t2.row().cell("replacements").cell(m.replacements);
  t2.row().cell("diffusing computations").cell(m.computations_started);
  t2.row().cell("messages (query/reply/move)")
      .cell(m.network.queries + m.network.replies + m.network.moves);
  t2.row().cell("max energy spent").cell(m.max_energy_spent);
  t2.print(std::cout);

  std::cout << "\nTheorem 1.4.2 in action: online max energy "
            << m.max_energy_spent << " vs offline plan " << check.max_energy
            << " (both Θ(omega_c = " << bounds.omega_c << "))\n";
  return ok && check.ok ? 0 : 1;
}
