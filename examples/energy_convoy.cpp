// Chapter 5: inter-vehicle energy transfers with high-capacity tanks.
//
// Reproduces §5.2.1's line example under both accounting models (fixed a₁
// per transfer; variable a₂ per unit), comparing the paper's closed forms
// with the exact step-by-step collector simulation, and contrasting the
// per-vehicle requirement with and without transfers: transfers turn
// "max demand" into "average demand" when C = ∞.
#include <iostream>

#include "core/offline_planner.h"
#include "transfer/cube_collector.h"
#include "transfer/line_collector.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;

  const std::int64_t n = 64;
  std::cout << "Line of N = " << n << " vehicles, uniform demand d each "
            << "(tanks C = infinity)\n\n";

  Table t({"d", "model", "W formula (paper)", "W simulated", "peak tank",
           "transfers"});
  for (double d : {4.0, 16.0, 64.0}) {
    const std::vector<double> lane(static_cast<std::size_t>(n), d);
    const double total = d * static_cast<double>(n);
    {
      TransferParams p;
      p.model = TransferCostModel::kFixed;
      p.a1 = 1.0;
      const double formula = line_collector_w_fixed(n, total, p.a1);
      const double simulated = min_line_collector_w(lane, p);
      const auto trace = simulate_line_collector(lane, simulated, p);
      t.row()
          .cell(d, 0)
          .cell("fixed a1=1")
          .cell(formula)
          .cell(simulated)
          .cell(trace.max_tank_level, 1)
          .cell(trace.transfers);
    }
    {
      TransferParams p;
      p.model = TransferCostModel::kVariable;
      p.a2 = 0.01;
      const double formula = line_collector_w_variable(n, total, p.a2);
      const double simulated = min_line_collector_w(lane, p);
      const auto trace = simulate_line_collector(lane, simulated, p);
      t.row()
          .cell(d, 0)
          .cell("var a2=.01")
          .cell(formula)
          .cell(simulated)
          .cell(trace.max_tank_level, 1)
          .cell(trace.transfers);
    }
  }
  t.print(std::cout);
  std::cout << "\nW ~ d + O(1): transfers equalize the load (Θ(avg d)).\n\n";

  // Skewed 2-D demand: pooling vs the transfer-free planner.
  std::cout << "Skewed 2-D cube (one hot vertex), side 8:\n";
  DemandMap hot(2);
  hot.set(Point{3, 3}, 200.0);
  hot.set(Point{6, 1}, 10.0);
  TransferParams p;
  p.model = TransferCostModel::kFixed;
  p.a1 = 0.5;
  const auto pooled = cube_collector_requirements(hot, 8, p);
  const OfflinePlan plan = plan_offline(hot);

  Table t2({"strategy", "per-vehicle W", "notes"});
  t2.row()
      .cell("no transfers (Lem. 2.2.5 plan)")
      .cell(plan.max_energy())
      .cell("helpers each carry a full chunk");
  t2.row()
      .cell("snake collector (transfers)")
      .cell(pooled.required_w)
      .cell("pool of 64 charges serves the hotspot");
  t2.print(std::cout);
  std::cout << "\nHigh-capacity tanks + transfers cut the per-vehicle "
               "requirement toward the cube average (§5.2).\n";
  return 0;
}
