// Randomized stress harness for the online strategy: arbitrary workloads,
// capacities, cube sides, and failure injections — with physical
// invariants that must hold no matter what:
//   * energy conservation: Σ spent = jobs_served + total_travel,
//   * no vehicle ever exceeds its capacity,
//   * served + failed = arrivals,
//   * accounting identities of the diffusing computations.
#include <gtest/gtest.h>

#include "online/simulation.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

class OnlineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineStress, PhysicalInvariantsHoldUnderChaos) {
  Rng rng(GetParam() * 7919);
  const std::int64_t span = rng.next_int(4, 12);
  const Box field(Point{0, 0}, Point{span, span});
  const auto jobs = smart_dust_stream(
      field, rng.next_int(30, 120), rng.next_double(0.0, 0.3), rng);

  OnlineConfig cfg;
  cfg.capacity = rng.next_double(3.0, 20.0);
  cfg.cube_side = rng.next_int(2, 6);
  cfg.anchor = Point{0, 0};
  cfg.max_message_delay = rng.next_int(0, 9);
  cfg.seed = GetParam();
  cfg.enable_monitoring = rng.next_bool(0.8);

  OnlineSimulation sim(2, cfg);
  // Random failures: a few silent-dones and early breakers.
  const int silent = static_cast<int>(rng.next_below(4));
  for (int k = 0; k < silent; ++k)
    sim.inject_silent_done(Point{rng.next_int(0, span), rng.next_int(0, span)});
  const int breakers = static_cast<int>(rng.next_below(4));
  for (int k = 0; k < breakers; ++k)
    sim.inject_break_after(
        Point{rng.next_int(0, span), rng.next_int(0, span)},
        rng.next_double(0.0, 1.0));

  sim.run(jobs);
  const auto& m = sim.metrics();

  // Arrival accounting.
  EXPECT_EQ(m.jobs_served + m.jobs_failed, jobs.size());
  // Energy conservation: all spending is either a unit of service or a
  // unit of travel.
  EXPECT_NEAR(m.total_energy_spent,
              static_cast<double>(m.jobs_served) +
                  static_cast<double>(m.total_travel),
              1e-6);
  // Capacity is a hard ceiling for every vehicle.
  EXPECT_LE(m.max_energy_spent, cfg.capacity + 1e-9);
  // Computation accounting.
  EXPECT_LE(m.replacements, m.computations_started);
  EXPECT_EQ(m.network.replies, m.network.queries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineStress,
                         ::testing::Range<std::uint64_t>(1, 26));

// --- Algorithm 2 under the microscope ---------------------------------------
//
// A single diffusing computation on a tiny, fully-inspectable cube:
// exhaust the active vehicle of a 2x2 cube and track exactly which
// messages flow and how the tree resolves.
TEST(Algorithm2Microscope, SingleComputationTreeAndRelay) {
  OnlineConfig cfg;
  cfg.capacity = 4.0;  // serves 3 jobs (walks included), then done
  cfg.cube_side = 2;
  cfg.anchor = Point{0, 0};
  cfg.seed = 3;
  OnlineSimulation sim(2, cfg);
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back({Point{0, 0}, i});
  ASSERT_TRUE(sim.run(jobs));
  const auto& m = sim.metrics();

  // After 3 services the vehicle hits remaining < 2 and initiates.
  EXPECT_EQ(m.computations_started, 1u);
  EXPECT_EQ(m.replacements, 1u);
  EXPECT_EQ(m.computations_failed, 0u);
  // 2x2 cube: every vehicle is within distance 2 of every other, so the
  // initiator queries 3 neighbors; non-idle ones re-flood to their 3.
  // Exact counts depend on delivery interleaving, but bounds are tight:
  EXPECT_GE(m.network.queries, 3u);
  EXPECT_LE(m.network.queries, 12u);
  EXPECT_EQ(m.network.replies, m.network.queries);
  // Phase II: the move relays along the tree path; path length <= 2 hops
  // in a 2x2 cube.
  EXPECT_GE(m.network.moves, 1u);
  EXPECT_LE(m.network.moves, 2u);

  // The replacement took over the pair: its vehicle sits at (0,0)'s pair
  // position and is active.
  const auto active = sim.active_of_pair(Point{0, 0});
  ASSERT_TRUE(active.has_value());
  // The original vehicle is done.
  const Vehicle* original = sim.vehicle_at_home(Point{0, 0});
  ASSERT_NE(original, nullptr);
  // Job vertex (0,0) is the primary (snake index 0 is even), so the
  // original active vehicle lived at home (0,0) and exhausted there.
  EXPECT_EQ(original->s1, WorkState::kDone);
  EXPECT_EQ(original->s2, TransferState::kWaiting);  // computation ended
}

TEST(Algorithm2Microscope, FailedSearchLeavesCleanState) {
  // 2x2 cube with capacity so small the pool drains: the final
  // computation must fail, vehicles must all return to `waiting`, and the
  // failure must be counted — no dangling searching states.
  OnlineConfig cfg;
  cfg.capacity = 3.0;
  cfg.cube_side = 2;
  cfg.anchor = Point{0, 0};
  cfg.seed = 5;
  cfg.enable_monitoring = false;
  OnlineSimulation sim(2, cfg);
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back({Point{0, 0}, i});
  EXPECT_FALSE(sim.run(jobs));
  const auto& m = sim.metrics();
  EXPECT_GT(m.computations_failed, 0u);
  // All four vehicles of the cube are back in waiting (no stuck states).
  Box::cube(Point{0, 0}, 2).for_each_point([&](const Point& p) {
    const Vehicle* v = sim.vehicle_at_home(p);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->s2, TransferState::kWaiting) << p.to_string();
    EXPECT_EQ(v->num, 0) << p.to_string();
  });
}

}  // namespace
}  // namespace cmvrp
