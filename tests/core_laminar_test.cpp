#include <gtest/gtest.h>

#include <cmath>

#include "core/laminar.h"
#include "core/omega.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

AlphaMap random_alpha(std::uint64_t seed, int dim, int points,
                      std::int64_t span) {
  Rng rng(seed);
  AlphaMap alpha;
  for (int k = 0; k < points; ++k) {
    Point p = Point::origin(dim);
    for (int i = 0; i < dim; ++i) p[i] = rng.next_int(0, span);
    alpha[p] = rng.next_double(0.0, 3.0);
  }
  return alpha;
}

TEST(Laminar, FigureTwoFourOneDimensionalHill) {
  // The 1-D hill of Figure 2.4: alpha rises then falls; h should charge
  // nested intervals around the peak.
  AlphaMap alpha;
  const double values[] = {1.0, 2.0, 3.0, 2.0, 1.0};
  for (int x = 0; x < 5; ++x) alpha[Point{x}] = values[x];
  const auto h = laminar_decomposition(alpha);
  ASSERT_EQ(h.size(), 3u);  // three nested bands
  EXPECT_TRUE(is_laminar(h));
  // Band heights: [0,4] at height 1, [1,3] at height 1, [2,2] at height 1.
  for (const auto& ws : h) EXPECT_NEAR(ws.weight, 1.0, 1e-12);
  std::vector<std::size_t> sizes;
  for (const auto& ws : h) sizes.push_back(ws.members.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(Laminar, PlateauWithTwoPeaksSplitsIntoComponents) {
  // Two separated peaks on a shared base: the top band has two disjoint
  // components (the Figure 2.5 peeling).
  AlphaMap alpha;
  const double values[] = {1.0, 2.0, 1.0, 2.0, 1.0};
  for (int x = 0; x < 5; ++x) alpha[Point{x}] = values[x];
  const auto h = laminar_decomposition(alpha);
  ASSERT_EQ(h.size(), 3u);  // base + two peak components
  EXPECT_TRUE(is_laminar(h));
  int singletons = 0;
  for (const auto& ws : h)
    if (ws.members.size() == 1) ++singletons;
  EXPECT_EQ(singletons, 2);
}

class LaminarProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LaminarProperty, RecoversAlphaPointwise) {
  const AlphaMap alpha = random_alpha(GetParam(), 2, 10, 4);
  const auto h = laminar_decomposition(alpha);
  const AlphaMap back = reconstruct_alpha(h);
  for (const auto& [p, v] : alpha) {
    auto it = back.find(p);
    const double rv = it == back.end() ? 0.0 : it->second;
    EXPECT_NEAR(rv, v, 1e-9) << p.to_string();
  }
}

TEST_P(LaminarProperty, PreservesTotalMass) {
  const AlphaMap alpha = random_alpha(GetParam() + 100, 2, 8, 4);
  const auto h = laminar_decomposition(alpha);
  double mass_alpha = 0.0;
  for (const auto& [p, v] : alpha) {
    (void)p;
    mass_alpha += v;
  }
  double mass_h = 0.0;
  for (const auto& ws : h)
    mass_h += ws.weight * static_cast<double>(ws.members.size());
  EXPECT_NEAR(mass_h, mass_alpha, 1e-9);
}

TEST_P(LaminarProperty, FamilyIsLaminar) {
  const AlphaMap alpha = random_alpha(GetParam() + 200, 2, 9, 3);
  EXPECT_TRUE(is_laminar(laminar_decomposition(alpha)));
}

TEST_P(LaminarProperty, BallMinimumEqualsSupersetWeight) {
  // Property (3): min over any L1 ball of alpha equals the total h-weight
  // of sets containing the ball — the exact hinge of Lemma 2.2.1's proof.
  const AlphaMap alpha = random_alpha(GetParam() + 300, 2, 12, 4);
  const auto h = laminar_decomposition(alpha);
  Rng rng(GetParam() + 77);
  for (int trial = 0; trial < 10; ++trial) {
    const Point j{rng.next_int(0, 4), rng.next_int(0, 4)};
    const std::int64_t r = rng.next_int(0, 2);
    const auto ball = l1_ball_points(j, r);
    double ball_min = std::numeric_limits<double>::infinity();
    for (const auto& i : ball) {
      auto it = alpha.find(i);
      ball_min = std::min(ball_min, it == alpha.end() ? 0.0 : it->second);
    }
    EXPECT_NEAR(weight_of_supersets(h, ball), ball_min, 1e-9)
        << "j=" << j.to_string() << " r=" << r;
  }
}

TEST_P(LaminarProperty, LemmaTwoTwoOneObjectivesAgree) {
  // The statement of Lemma 2.2.1: LP (2.2)'s objective evaluated on alpha
  // equals LP (2.3)'s evaluated on the decomposition, for any demand.
  const AlphaMap alpha = random_alpha(GetParam() + 400, 2, 10, 4);
  Rng rng(GetParam() + 55);
  DemandMap d(2);
  for (int k = 0; k < 6; ++k)
    d.add(Point{rng.next_int(0, 4), rng.next_int(0, 4)},
          static_cast<double>(rng.next_int(1, 7)));
  const auto h = laminar_decomposition(alpha);
  for (std::int64_t r = 0; r <= 2; ++r) {
    EXPECT_NEAR(lp22_objective(alpha, d, r), lp23_objective(h, d, r), 1e-9)
        << "r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaminarProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Laminar, DualOfLp21FeedsTheLemma) {
  // End-to-end: solve LP (2.1) with the simplex, read the supplier duals
  // α_i off the solution, normalize, decompose — the lemma's pipeline.
  // Duals of the supplier rows are feasible for LP (2.2) after scaling,
  // so lp22 == lp23 on them and the objective matches the LP value.
  DemandMap d(2);
  d.set(Point{0, 0}, 4.0);
  d.set(Point{2, 0}, 6.0);
  const std::int64_t r = 1;
  const double lp_value = lp_value_at_radius(d, r);

  // Build the same LP here to get its duals.
  // (lp_value_at_radius hides them; reconstruct the small instance.)
  auto supplier_set = neighborhood(d.support(), r);
  std::vector<Point> suppliers(supplier_set.begin(), supplier_set.end());
  std::sort(suppliers.begin(), suppliers.end());
  LpProblem lp;
  const std::size_t omega_var = lp.add_variable(1.0);
  std::vector<std::vector<std::size_t>> by_demand(2);
  const auto demands = d.support();
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> by_supplier(
      suppliers.size());
  for (std::size_t i = 0; i < suppliers.size(); ++i)
    for (std::size_t j = 0; j < demands.size(); ++j)
      if (l1_distance(suppliers[i], demands[j]) <= r) {
        const auto v = lp.add_variable(0.0);
        by_supplier[i].emplace_back(j, v);
        by_demand[j].push_back(v);
      }
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    std::vector<std::pair<std::size_t, double>> row{{omega_var, -1.0}};
    for (const auto& [j, v] : by_supplier[i]) {
      (void)j;
      row.emplace_back(v, 1.0);
    }
    lp.add_constraint(row, LpRelation::kLessEqual, 0.0);
  }
  for (std::size_t j = 0; j < demands.size(); ++j) {
    std::vector<std::pair<std::size_t, double>> row;
    for (auto v : by_demand[j]) row.emplace_back(v, 1.0);
    lp.add_constraint(row, LpRelation::kGreaterEqual, d.at(demands[j]));
  }
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, lp_value, 1e-7);

  // Supplier duals -> alpha (sign: <= rows of a min problem give y <= 0).
  AlphaMap alpha;
  double mass = 0.0;
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    const double a = std::abs(sol.duals[i]);
    if (a > 1e-12) alpha[suppliers[i]] = a;
    mass += a;
  }
  ASSERT_GT(mass, 0.0);
  EXPECT_NEAR(mass, 1.0, 1e-6);  // Σα_i = 1 binds at the optimum
  const auto h = laminar_decomposition(alpha);
  EXPECT_TRUE(is_laminar(h));
  // Strong duality: the dual objective (lp22 on these alphas) equals the
  // primal LP value.
  EXPECT_NEAR(lp22_objective(alpha, d, r), lp_value, 1e-6);
  EXPECT_NEAR(lp23_objective(h, d, r), lp_value, 1e-6);
}

}  // namespace
}  // namespace cmvrp
