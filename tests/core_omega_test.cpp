#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/closed_forms.h"
#include "core/incremental_omega.h"
#include "core/cube_bound.h"
#include "core/omega.h"
#include "grid/neighborhood.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

DemandMap tiny_random_demand(std::uint64_t seed, int dim, int points,
                             std::int64_t span, double max_d) {
  Rng rng(seed);
  DemandMap d(dim);
  for (int i = 0; i < points; ++i) {
    Point p = Point::origin(dim);
    for (int a = 0; a < dim; ++a) p[a] = rng.next_int(0, span);
    d.add(p, static_cast<double>(rng.next_int(1, static_cast<std::int64_t>(max_d))));
  }
  return d;
}

TEST(OmegaForSet, SinglePointMatchesBallEquation) {
  // omega * |N_floor(omega)({p})| = d; for d small the crossing is interior.
  DemandMap d(2);
  d.set(Point{0, 0}, 0.5);
  // On [0,1): g = w * 1, so omega = 0.5.
  EXPECT_NEAR(omega_for_set({Point{0, 0}}, d), 0.5, 1e-12);
}

TEST(OmegaForSet, CrossingInSecondSegment) {
  DemandMap d(2);
  d.set(Point{0, 0}, 6.0);
  // Segment [1,2): g = w*|N_1| = 5w, covers [5,10): omega = 6/5.
  EXPECT_NEAR(omega_for_set({Point{0, 0}}, d), 1.2, 1e-12);
}

TEST(OmegaForSet, JumpCaseReturnsBoundary) {
  DemandMap d(2);
  d.set(Point{0, 0}, 4.5);
  // Segment [0,1) covers [0,1); segment [1,2) starts at 5 > 4.5: inf is 1.
  EXPECT_NEAR(omega_for_set({Point{0, 0}}, d), 1.0, 1e-12);
}

TEST(OmegaForSet, ZeroDemandGivesZero) {
  DemandMap d(2);
  EXPECT_DOUBLE_EQ(omega_for_set({Point{3, 3}}, d), 0.0);
}

TEST(OmegaForBox, AgreesWithSetComputation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::int64_t side = rng.next_int(1, 4);
    const Box box = Box::cube(Point{rng.next_int(-3, 3), rng.next_int(-3, 3)},
                              side);
    DemandMap d(2);
    box.for_each_point([&](const Point& p) {
      d.set(p, static_cast<double>(rng.next_int(0, 7)));
    });
    const double s = d.total();
    if (s == 0.0) continue;
    EXPECT_NEAR(omega_for_box(box, s), omega_for_set(box.points(), d), 1e-9)
        << "seed " << seed;
  }
}

// --- the three computations of ω* agree -----------------------------------

class OmegaStarAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OmegaStarAgreement, EnumerationLpAndFlowAgree) {
  const DemandMap d =
      tiny_random_demand(GetParam(), 2, /*points=*/4, /*span=*/3, /*max_d=*/9);
  const double by_enum = omega_star_enumerate(d);
  const double by_lp = omega_star_fixed_point(d, lp_value_at_radius);
  const double by_flow = omega_star_flow(d);
  EXPECT_NEAR(by_lp, by_enum, 1e-5);
  EXPECT_NEAR(by_flow, by_enum, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmegaStarAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(OmegaStar, LpValueEqualsMaxSubsetRatioTinyInstance) {
  // Lemma 2.2.2: LP value at radius r equals max_T Σd / |N_r(T)|.
  DemandMap d(2);
  d.set(Point{0, 0}, 4.0);
  d.set(Point{1, 0}, 6.0);
  d.set(Point{0, 2}, 3.0);
  for (std::int64_t r = 0; r <= 2; ++r) {
    const double lp = lp_value_at_radius(d, r);
    // Enumerate all 7 nonempty subsets explicitly.
    const auto support = d.support();
    double best = 0.0;
    for (unsigned mask = 1; mask < 8; ++mask) {
      std::vector<Point> t;
      double s = 0.0;
      for (unsigned i = 0; i < 3; ++i)
        if (mask & (1u << i)) {
          t.push_back(support[i]);
          s += d.at(support[i]);
        }
      best = std::max(best, s / static_cast<double>(neighborhood_volume(t, r)));
    }
    EXPECT_NEAR(lp, best, 1e-6) << "r=" << r;
  }
}

TEST(OmegaStar, SinglePointClosedForm) {
  // d at one point: ω* solves ω·|N_⌊ω⌋| = d with the 2-D ball.
  DemandMap d(2);
  d.set(Point{5, 5}, 60.0);
  // |N_3| = 25, g covers [75,100) on [3,4); |N_2|=13 covers [26,39) on
  // [2,3); 60 lies in neither: jump at 3 (39 <= 60 < 75) -> inf = 3.
  const double expected = 3.0;
  EXPECT_NEAR(omega_star_enumerate(d), expected, 1e-9);
  EXPECT_NEAR(omega_star_flow(d), expected, 1e-4);
}

// --- cube bound (Cor. 2.2.7) ------------------------------------------------

TEST(CubeBound, EmptyDemandIsZero) {
  DemandMap d(2);
  EXPECT_DOUBLE_EQ(cube_bound(d).omega_c, 0.0);
}

TEST(CubeBound, LowerBoundsOmegaStar) {
  // ω_c <= ω* (Cor. 2.2.7's proof shows ω_c <= ω_{T_c} <= ω*).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const DemandMap d = tiny_random_demand(seed, 2, 4, 3, 9);
    const double wc = cube_bound(d).omega_c;
    const double ws = omega_star_enumerate(d);
    EXPECT_LE(wc, ws + 1e-6) << "seed " << seed;
  }
}

TEST(CubeBound, SinglePointSolvesCubeEquation) {
  DemandMap d(2);
  d.set(Point{0, 0}, 45.0);
  // k=1: M=45, root = 45/9 = 5 > 1 -> no. k=2: 45/36 = 1.25 in (1,2] -> yes.
  const auto cb = cube_bound(d);
  EXPECT_NEAR(cb.omega_c, 1.25, 1e-9);
  EXPECT_EQ(cb.cube_side, 2);
}

TEST(CubeBound, CubeOmegaWithinConstantOfOmegaStar) {
  // Woff = Θ(ω*) and ω_c ≤ Woff ≤ (2·3^ℓ+ℓ)·ω_c: on random instances the
  // ratio ω*/ω_c must stay within the paper's constant.
  const double factor = 2.0 * 9.0 + 2.0;  // ℓ = 2
  for (std::uint64_t seed = 20; seed <= 32; ++seed) {
    const DemandMap d = tiny_random_demand(seed, 2, 5, 4, 12);
    const double wc = cube_bound(d).omega_c;
    const double ws = omega_star_enumerate(d);
    ASSERT_GT(wc, 0.0);
    EXPECT_LE(ws / wc, factor) << "seed " << seed;
  }
}

TEST(MaxOmegaOverCubes, SandwichedBetweenCubeBoundAndOmegaStar) {
  for (std::uint64_t seed = 40; seed <= 48; ++seed) {
    const DemandMap d = tiny_random_demand(seed, 2, 4, 3, 9);
    const double cubes = max_omega_over_cubes(d);
    const double ws = omega_star_enumerate(d);
    EXPECT_LE(cubes, ws + 1e-6) << "seed " << seed;   // Γ ⊆ all subsets
    EXPECT_GT(cubes, 0.0);
  }
}

// --- closed forms (§2.1) ------------------------------------------------------

TEST(ClosedForms, LineW2Exact) {
  for (double d : {1.0, 10.0, 1000.0}) {
    const double w = example_line_w2(d);
    EXPECT_NEAR(w * (2.0 * w + 1.0), d, 1e-9 * d + 1e-9);
  }
}

TEST(ClosedForms, PointW3SolvesCubic) {
  for (double d : {1.0, 64.0, 1e6}) {
    const double w = example_point_w3(d);
    EXPECT_NEAR(w * (2.0 * w + 1.0) * (2.0 * w + 1.0), d, 1e-6 * d + 1e-6);
  }
}

TEST(ClosedForms, SquareW1SolvesCubicAndTendsToD) {
  const double d = 100.0;
  for (double a : {1.0, 10.0, 100.0, 10000.0}) {
    const double w = example_square_w1(a, d);
    EXPECT_NEAR(w * (2 * w + a) * (2 * w + a), d * a * a, 1e-6 * d * a * a);
  }
  // §2.1.1: as a -> ∞, W1 -> d.
  EXPECT_NEAR(example_square_w1(1e9, d), d, d * 1e-3);
}

TEST(ClosedForms, W3BelowOmegaStarForPointDemand) {
  // The paper's (2W+1)^2 counts the L∞ square, which over-counts the L1
  // ball reachable within W — so W3 is a (weaker) lower bound than ω*.
  for (double dd : {50.0, 500.0, 5000.0}) {
    DemandMap d(2);
    d.set(Point{0, 0}, dd);
    const double w3 = example_point_w3(dd);
    const double ws = omega_star_enumerate(d);
    EXPECT_LE(w3, ws + 1e-9) << "d=" << dd;
    // Same growth order: ratio bounded (both Θ(d^{1/3})).
    EXPECT_LT(ws / w3, 2.0) << "d=" << dd;
  }
}

TEST(ClosedForms, W2ApproachesLineOmegaAsLineGrows) {
  const double dd = 20.0;
  const double w2 = example_line_w2(dd);
  double prev_gap = 1e9;
  for (std::int64_t len : {8, 64, 512}) {
    const Box line(Point{0, 0}, Point{len - 1, 0});
    const double wt = omega_for_box(line, dd * static_cast<double>(len));
    const double gap = std::abs(wt - w2) / w2;
    EXPECT_LE(gap, prev_gap + 1e-9) << "len=" << len;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.2);
}

// --- incremental omega vs the from-scratch DP -------------------------------

TEST(BoxOmegaIncremental, RandomizedDeltasMatchFullRecompute) {
  // Point-delta updates on a fixed box, every answer cross-checked
  // against omega_for_box — at l = 2, 3, 4, with occasional negative
  // deltas (demand consumed) so the hint walks both directions.
  for (const int dim : {2, 3, 4}) {
    const std::int64_t side = dim == 2 ? 32 : dim == 3 ? 8 : 4;
    const Box box = Box::cube(Point::origin(dim), side);
    Rng rng(900 + static_cast<std::uint64_t>(dim));
    BoxOmega inc(box);
    double sum = 0.0;
    for (int i = 0; i < 250; ++i) {
      double delta = rng.next_double(0.0, 40.0);
      if (sum > 20.0 && rng.next_int(0, 3) == 0)
        delta = -rng.next_double(0.0, sum * 0.5);
      inc.add(delta);
      sum += delta;
      const double full = omega_for_box(box, sum);
      EXPECT_NEAR(inc.omega(), full, 1e-9 * std::max(1.0, full))
          << "dim=" << dim << " step=" << i << " sum=" << sum;
    }
    // omega_for_sum probes without disturbing the tracked state — even
    // far past the current sum (the volume table grows on demand).
    const double probe_sum = sum * 4.0 + 1.0;
    const double probe = inc.omega_for_sum(probe_sum);
    EXPECT_NEAR(probe, omega_for_box(box, probe_sum),
                1e-9 * std::max(1.0, probe));
    EXPECT_DOUBLE_EQ(inc.sum(), sum);
    EXPECT_NEAR(inc.omega(), omega_for_box(box, sum),
                1e-9 * std::max(1.0, inc.omega()));
  }
}

}  // namespace
}  // namespace cmvrp
