#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "exp/harness.h"
#include "util/json.h"
#include "exp/scenario.h"
#include "exp/suites.h"
#include "util/check.h"

namespace cmvrp {
namespace {

// --- scenario registry ------------------------------------------------------

TEST(ScenarioRegistry, BuiltinLookup) {
  const auto& reg = ScenarioRegistry::builtin();
  EXPECT_GE(reg.size(), 20u);
  const Scenario* s = reg.find("uniform/12x12/n60");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->generator, "uniform");
  EXPECT_EQ(s->dim, 2);
  EXPECT_EQ(reg.find("no/such/scenario"), nullptr);
  EXPECT_THROW(reg.at("no/such/scenario"), check_error);
  EXPECT_EQ(&reg.at("uniform/12x12/n60"), s);
}

TEST(ScenarioRegistry, FilterMatchesNameAndGenerator) {
  const auto& reg = ScenarioRegistry::builtin();
  EXPECT_EQ(reg.match("").size(), reg.size());
  const auto uniforms = reg.match("uniform");
  EXPECT_GE(uniforms.size(), 4u);
  // The family spans dimensions: uniform, uniform3d, uniform4d.
  for (const Scenario* s : uniforms)
    EXPECT_EQ(s->generator.rfind("uniform", 0), 0u) << s->generator;
  const auto n60 = reg.match("12x12/n60");
  ASSERT_EQ(n60.size(), 1u);
  EXPECT_EQ(n60[0]->name, "uniform/12x12/n60");
  EXPECT_TRUE(reg.match("zzz-not-there").empty());
}

TEST(ScenarioRegistry, BuiltinCoversEveryGenerator) {
  std::set<std::string> generators;
  for (const Scenario* s : ScenarioRegistry::builtin().match(""))
    generators.insert(s->generator);
  for (const char* expected :
       {"uniform", "clustered", "line", "point", "square", "ridge",
        "smartdust", "burst", "alternating", "grid"})
    EXPECT_TRUE(generators.count(expected)) << expected;
}

TEST(ScenarioRegistry, FactoriesAreDeterministic) {
  const auto& sc = ScenarioRegistry::builtin().at("uniform/12x12/n60");
  const DemandMap a = sc.demand();
  const DemandMap b = sc.demand();
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.support_size(), b.support_size());
  const auto jobs_a = sc.jobs();
  const auto jobs_b = sc.jobs();
  ASSERT_EQ(jobs_a.size(), jobs_b.size());
  EXPECT_EQ(jobs_a.size(), static_cast<std::size_t>(a.total()));
  for (std::size_t i = 0; i < jobs_a.size(); ++i)
    EXPECT_EQ(jobs_a[i].position, jobs_b[i].position);
}

TEST(ScenarioRegistry, StreamNativeScenariosInduceTheirDemand) {
  const auto& sc = ScenarioRegistry::builtin().at("burst/p4x4/n120");
  const DemandMap d = sc.demand();
  EXPECT_EQ(d.total(), 120.0);
  EXPECT_EQ(d.support_size(), 1u);
  EXPECT_EQ(sc.jobs().size(), 120u);
}

TEST(ScenarioRegistry, DuplicateNamesRejected) {
  ScenarioRegistry reg;
  Scenario s;
  s.name = "dup";
  s.generator = "uniform";
  s.demand = [] { return DemandMap(2); };
  s.jobs = [] { return std::vector<Job>{}; };
  reg.add(s);
  EXPECT_THROW(reg.add(s), check_error);
}

// --- runner -----------------------------------------------------------------

TEST(BenchRun, WarmupPlusRepsExecutionsAndTimedStats) {
  RunOptions opts;
  opts.warmup = 2;
  opts.reps = 3;
  BenchRun run("t", opts);
  int calls = 0;
  run.run_case("case", [&calls](MetricRow& row) {
    ++calls;
    row.metric("calls so far", calls);
  });
  EXPECT_EQ(calls, 5);  // 2 warmup + 3 timed

  const Json doc = run.to_json();
  const Json& c = doc.at("sections").at(std::size_t{0}).at("cases").at(
      std::size_t{0});
  EXPECT_EQ(c.at("time_ms").at("reps").as_number(), 3.0);
  // Metrics come from the final (5th) execution.
  EXPECT_EQ(c.at("metrics").at("calls so far").as_number(), 5.0);
}

TEST(BenchRun, FilterSkipsNonMatchingCasesEntirely) {
  RunOptions opts;
  opts.filter = "keep";
  BenchRun run("t", opts);
  int calls = 0;
  run.section("a").run_case("keep me", [&calls](MetricRow&) { ++calls; });
  run.section("a").run_case("drop me", [&calls](MetricRow&) { ++calls; });
  run.section("keeper").run_case("x", [&calls](MetricRow&) { ++calls; });
  EXPECT_EQ(calls, 2);  // "a/keep me" and "keeper/x" match, "a/drop me" not
  EXPECT_EQ(run.to_json().at("sections").size(), 2u);
}

TEST(BenchRun, JsonSchemaShape) {
  RunOptions opts;
  opts.filter = "f";
  opts.reps = 2;
  opts.warmup = 1;
  BenchRun run("demo", opts);
  run.section("first").run_case("f1", [](MetricRow& row) {
    row.metric("alpha", 1.5).metric("label", "x").metric_bool("ok", true);
  });
  run.note("a note");

  const Json doc = run.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "cmvrp-bench-v1");
  EXPECT_EQ(doc.at("suite").as_string(), "demo");
  EXPECT_EQ(doc.at("options").at("reps").as_number(), 2.0);
  EXPECT_EQ(doc.at("options").at("warmup").as_number(), 1.0);
  EXPECT_EQ(doc.at("options").at("filter").as_string(), "f");
  EXPECT_FALSE(doc.at("failed").as_bool());
  const Json& metrics = doc.at("sections")
                            .at(std::size_t{0})
                            .at("cases")
                            .at(std::size_t{0})
                            .at("metrics");
  // Declaration order is serialization order.
  EXPECT_EQ(metrics.items()[0].first, "alpha");
  EXPECT_EQ(metrics.items()[1].first, "label");
  EXPECT_EQ(metrics.items()[2].first, "ok");
  EXPECT_EQ(metrics.at("label").as_string(), "x");
  EXPECT_TRUE(metrics.at("ok").as_bool());
  EXPECT_EQ(doc.at("notes").at(std::size_t{0}).as_string(), "a note");
  // The document round-trips through its own serialization.
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(BenchRun, TablePadsMissingMetricsAndAppendsTime) {
  BenchRun run("t", {});
  run.run_case("full", [](MetricRow& row) {
    row.metric("a", 1).metric("b", 2);
  });
  run.run_case("partial", [](MetricRow& row) { row.metric("a", 3); });
  std::ostringstream os;
  run.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| case "), std::string::npos);
  EXPECT_NE(out.find("ms/rep"), std::string::npos);
  EXPECT_NE(out.find("| -"), std::string::npos);  // padded cell
}

TEST(BenchRun, FailMarksRunAndFinishReturnsNonzero) {
  BenchRun run("t", {});
  run.run_case("c", [&run](MetricRow&) { run.fail("claim violated"); });
  EXPECT_TRUE(run.failed());
  EXPECT_TRUE(run.to_json().at("failed").as_bool());
  std::ostringstream os;
  EXPECT_EQ(run.finish(os), 1);
  EXPECT_NE(os.str().find("FAIL: claim violated"), std::string::npos);
}

// --- suite registry ---------------------------------------------------------

TEST(SuiteRegistry, BuiltinSuitesRegisteredIdempotently) {
  register_builtin_suites();
  register_builtin_suites();  // second call must not throw on duplicates
  for (const char* name :
       {"offline", "online", "square", "line", "point", "broken", "alg1",
        "transfer", "baselines", "ablations", "graphs", "substrates",
        "smoke"})
    EXPECT_NE(find_suite(name), nullptr) << name;
  EXPECT_EQ(find_suite("nope"), nullptr);
  EXPECT_GE(all_suites().size(), 13u);
}

TEST(SuiteRegistry, DuplicateRegistrationRejected) {
  register_builtin_suites();
  Suite s{"exp-harness-test-suite", "test", [](BenchRun&) {}};
  if (find_suite(s.name) == nullptr) register_suite(s);
  EXPECT_THROW(register_suite(s), check_error);
}

TEST(SuiteRegistry, UnknownSuiteThrows) {
  register_builtin_suites();
  std::ostringstream os;
  EXPECT_THROW(run_suite("definitely-not-a-suite", {}, os), check_error);
}

// End to end: the smoke suite runs, succeeds, writes a parseable JSON
// artifact, and its offline case reproduces the Theorem 1.4.1 sandwich.
TEST(SuiteRegistry, SmokeSuiteEndToEnd) {
  register_builtin_suites();
  const std::string path = "exp_harness_smoke_test.json";
  RunOptions opts;
  opts.json_path = path;
  std::ostringstream os;
  EXPECT_EQ(run_suite("smoke", opts, os), 0);
  EXPECT_NE(os.str().find("plan/omega_c"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("schema").as_string(), "cmvrp-bench-v1");
  EXPECT_EQ(doc.at("suite").as_string(), "smoke");
  EXPECT_FALSE(doc.at("failed").as_bool());
  ASSERT_EQ(doc.at("sections").size(), 2u);
  const Json& offline_case =
      doc.at("sections").at(std::size_t{0}).at("cases").at(std::size_t{0});
  const Json& m = offline_case.at("metrics");
  const double omega_c = m.at("omega_c").as_number();
  const double plan_energy = m.at("plan energy").as_number();
  EXPECT_GT(omega_c, 0.0);
  // Theorem 1.4.1 (l = 2): plan energy <= (2*3^2 + 2) * omega_c.
  EXPECT_LE(plan_energy, 20.0 * omega_c + 1e-9);
  EXPECT_GE(plan_energy + 1e-9, omega_c);
  // The online smoke case served everything.
  const Json& online_m = doc.at("sections")
                             .at(std::size_t{1})
                             .at("cases")
                             .at(std::size_t{0})
                             .at("metrics");
  EXPECT_EQ(online_m.at("failed").as_number(), 0.0);
}

}  // namespace
}  // namespace cmvrp
