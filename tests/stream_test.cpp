// Sharded streaming engine: the bit-identical-across-thread-counts
// contract, batch invariance, incremental ingest, and the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "online/capacity_search.h"
#include "online/simulation.h"
#include "stream/engine.h"
#include "stream/pool.h"
#include "stream/shard.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

std::vector<Job> test_stream(std::int64_t box_side, std::int64_t count,
                             std::uint64_t seed) {
  Rng rng(seed);
  const Box box(Point{0, 0}, Point{box_side - 1, box_side - 1});
  const DemandMap d = uniform_demand(box, count, rng);
  Rng order(seed + 1);
  return stream_from_demand(d, ArrivalOrder::kShuffled, order);
}

StreamConfig test_config(double capacity, int threads,
                         std::int64_t batch = 64) {
  StreamConfig cfg;
  cfg.online.capacity = capacity;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point{0, 0};
  cfg.online.seed = 7;
  cfg.threads = threads;
  cfg.batch_size = batch;
  return cfg;
}

void expect_identical(const StreamResult& a, const StreamResult& b) {
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.served_jobs, b.served_jobs);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.cubes, b.cubes);
  EXPECT_EQ(a.jobs_ingested, b.jobs_ingested);
}

// --- the headline contract --------------------------------------------------

TEST(StreamDeterminism, IdenticalAcrossThreadCounts) {
  const auto jobs = test_stream(32, 600, 11);
  const StreamResult one = serve_stream(2, test_config(60.0, 1), jobs);
  ASSERT_GT(one.metrics.jobs_served, 0u);
  ASSERT_GT(one.cubes, 10u);  // the workload actually spans many cubes
  for (const int threads : {2, 8}) {
    const StreamResult many =
        serve_stream(2, test_config(60.0, threads), jobs);
    expect_identical(one, many);
  }
}

TEST(StreamDeterminism, IdenticalAcrossBatchSizes) {
  const auto jobs = test_stream(24, 400, 13);
  const StreamResult base = serve_stream(2, test_config(60.0, 2, 64), jobs);
  for (const std::int64_t batch : {1, 7, 1000}) {
    const StreamResult other =
        serve_stream(2, test_config(60.0, 2, batch), jobs);
    expect_identical(base, other);
  }
  EXPECT_EQ(base.batches, (400 + 63) / 64u);
}

TEST(StreamDeterminism, SeedChangesDelaysButNotOutcome) {
  const auto jobs = test_stream(24, 300, 17);
  StreamConfig a = test_config(60.0, 2);
  StreamConfig b = a;
  b.online.seed = 999;
  const StreamResult ra = serve_stream(2, a, jobs);
  const StreamResult rb = serve_stream(2, b, jobs);
  // Delay draws differ, but the protocol outcome is delay-invariant.
  EXPECT_EQ(ra.served_jobs, rb.served_jobs);
  EXPECT_EQ(ra.metrics.jobs_served, rb.metrics.jobs_served);
}

// --- agreement with the legacy single-queue simulator -----------------------

TEST(StreamVsLegacy, SameServiceOutcome) {
  const auto jobs = test_stream(16, 400, 19);
  const StreamConfig cfg = test_config(40.0, 2);
  const StreamResult stream = serve_stream(2, cfg, jobs);

  OnlineSimulation legacy(2, cfg.online);
  legacy.run(jobs);

  // Message counts and travel legitimately differ (per-cube delay RNGs
  // pick different replacement vehicles; monitoring sweeps are
  // per-cube-local here vs global there); the service outcome is
  // delay-invariant and must agree.
  EXPECT_EQ(stream.metrics.jobs_served, legacy.metrics().jobs_served);
  EXPECT_EQ(stream.metrics.jobs_failed, legacy.metrics().jobs_failed);
}

// --- engine mechanics -------------------------------------------------------

TEST(StreamEngine, IncrementalIngestMatchesOneShot) {
  const auto jobs = test_stream(24, 300, 23);
  const StreamResult oneshot = serve_stream(2, test_config(60.0, 2), jobs);

  StreamEngine engine(2, test_config(60.0, 2));
  const std::size_t cut = jobs.size() / 3;
  engine.ingest({jobs.begin(), jobs.begin() + static_cast<long>(cut)});
  engine.ingest({jobs.begin() + static_cast<long>(cut), jobs.end()});
  expect_identical(oneshot, engine.finish());
}

TEST(StreamEngine, EveryJobAccountedServedOrFailed) {
  const auto jobs = test_stream(8, 250, 29);
  // Deliberately undersized capacity: the cube pools must run dry.
  const StreamResult r = serve_stream(2, test_config(3.0, 2), jobs);
  EXPECT_GT(r.failed_jobs.size(), 0u);
  EXPECT_EQ(r.metrics.jobs_served, r.served_jobs.size());
  EXPECT_EQ(r.metrics.jobs_failed, r.failed_jobs.size());
  std::set<std::int64_t> all(r.served_jobs.begin(), r.served_jobs.end());
  all.insert(r.failed_jobs.begin(), r.failed_jobs.end());
  EXPECT_EQ(all.size(), jobs.size());  // disjoint and complete
}

TEST(StreamEngine, TheoryCapacityServesEverything) {
  const auto jobs = test_stream(24, 400, 31);
  const DemandMap demand = demand_of_stream(jobs, 2);
  StreamConfig cfg;
  cfg.online = default_online_config(demand, 7);
  cfg.threads = 4;
  const StreamResult r = serve_stream(2, cfg, jobs);
  EXPECT_EQ(r.metrics.jobs_failed, 0u);
  EXPECT_EQ(r.served_jobs.size(), jobs.size());
}

// --- substrate: per-cube seeds and the worker pool --------------------------

TEST(CubeStreamSeed, DeterministicAndCornerSensitive) {
  const Point a{0, 0}, b{4, 0}, c{0, 4};
  EXPECT_EQ(cube_stream_seed(1, a), cube_stream_seed(1, a));
  EXPECT_NE(cube_stream_seed(1, a), cube_stream_seed(1, b));
  EXPECT_NE(cube_stream_seed(1, a), cube_stream_seed(1, c));
  EXPECT_NE(cube_stream_seed(1, a), cube_stream_seed(2, a));
}

TEST(WorkerPool, RunsEveryIndexConcurrently) {
  WorkerPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::atomic<int>> hits(4);
  for (int rep = 0; rep < 50; ++rep) {
    pool.run([&](int w) {
      sum += w;
      ++hits[static_cast<std::size_t>(w)];
    });
  }
  EXPECT_EQ(sum.load(), 50 * (0 + 1 + 2 + 3));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50);
}

TEST(WorkerPool, InlineWhenSingleWorker) {
  WorkerPool pool(1);
  int calls = 0;
  pool.run([&](int w) {
    EXPECT_EQ(w, 0);
    ++calls;  // no synchronization needed: runs on this thread
  });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerPool, PropagatesWorkerException) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.run([](int w) {
                 if (w == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool must survive a throwing generation.
  std::atomic<int> ok{0};
  pool.run([&](int) { ++ok; });
  EXPECT_EQ(ok.load(), 3);
}

}  // namespace
}  // namespace cmvrp
