// Sharded streaming engine: the bit-identical-across-thread-counts
// contract, batch invariance, incremental ingest, and the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "online/capacity_search.h"
#include "online/pairing.h"
#include "online/simulation.h"
#include "stream/engine.h"
#include "stream/pool.h"
#include "stream/shard.h"
#include "stream/slot_table.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

std::vector<Job> test_stream(std::int64_t box_side, std::int64_t count,
                             std::uint64_t seed) {
  Rng rng(seed);
  const Box box(Point{0, 0}, Point{box_side - 1, box_side - 1});
  const DemandMap d = uniform_demand(box, count, rng);
  Rng order(seed + 1);
  return stream_from_demand(d, ArrivalOrder::kShuffled, order);
}

StreamConfig test_config(double capacity, int threads,
                         std::int64_t batch = 64) {
  StreamConfig cfg;
  cfg.online.capacity = capacity;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point{0, 0};
  cfg.online.seed = 7;
  cfg.threads = threads;
  cfg.batch_size = batch;
  return cfg;
}

void expect_identical(const StreamResult& a, const StreamResult& b) {
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.served_jobs, b.served_jobs);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.shed_jobs, b.shed_jobs);
  EXPECT_EQ(a.jobs_shed, b.jobs_shed);
  EXPECT_EQ(a.jobs_rejected, b.jobs_rejected);
  EXPECT_TRUE(a.latency == b.latency);
  EXPECT_EQ(a.latency.digest(), b.latency.digest());
  EXPECT_TRUE(a.timeseries == b.timeseries);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.counters.digest(), b.counters.digest());
  EXPECT_EQ(a.cubes, b.cubes);
  EXPECT_EQ(a.jobs_ingested, b.jobs_ingested);
}

// --- the headline contract --------------------------------------------------

TEST(StreamDeterminism, IdenticalAcrossThreadCounts) {
  const auto jobs = test_stream(32, 600, 11);
  const StreamResult one = serve_stream(2, test_config(60.0, 1), jobs);
  ASSERT_GT(one.metrics.jobs_served, 0u);
  ASSERT_GT(one.cubes, 10u);  // the workload actually spans many cubes
  for (const int threads : {2, 8}) {
    const StreamResult many =
        serve_stream(2, test_config(60.0, threads), jobs);
    expect_identical(one, many);
  }
}

TEST(StreamDeterminism, IdenticalAcrossBatchSizes) {
  const auto jobs = test_stream(24, 400, 13);
  const StreamResult base = serve_stream(2, test_config(60.0, 2, 64), jobs);
  for (const std::int64_t batch : {1, 7, 1000}) {
    const StreamResult other =
        serve_stream(2, test_config(60.0, 2, batch), jobs);
    expect_identical(base, other);
  }
  EXPECT_EQ(base.batches, (400 + 63) / 64u);
}

TEST(StreamDeterminism, SeedChangesDelaysButNotOutcome) {
  const auto jobs = test_stream(24, 300, 17);
  StreamConfig a = test_config(60.0, 2);
  StreamConfig b = a;
  b.online.seed = 999;
  const StreamResult ra = serve_stream(2, a, jobs);
  const StreamResult rb = serve_stream(2, b, jobs);
  // Delay draws differ, but the protocol outcome is delay-invariant.
  EXPECT_EQ(ra.served_jobs, rb.served_jobs);
  EXPECT_EQ(ra.metrics.jobs_served, rb.metrics.jobs_served);
}

// --- agreement with the legacy single-queue simulator -----------------------

TEST(StreamVsLegacy, SameServiceOutcome) {
  const auto jobs = test_stream(16, 400, 19);
  const StreamConfig cfg = test_config(40.0, 2);
  const StreamResult stream = serve_stream(2, cfg, jobs);

  OnlineSimulation legacy(2, cfg.online);
  legacy.run(jobs);

  // Message counts and travel legitimately differ (per-cube delay RNGs
  // pick different replacement vehicles; monitoring sweeps are
  // per-cube-local here vs global there); the service outcome is
  // delay-invariant and must agree.
  EXPECT_EQ(stream.metrics.jobs_served, legacy.metrics().jobs_served);
  EXPECT_EQ(stream.metrics.jobs_failed, legacy.metrics().jobs_failed);
}

// --- engine mechanics -------------------------------------------------------

TEST(StreamEngine, IncrementalIngestMatchesOneShot) {
  const auto jobs = test_stream(24, 300, 23);
  const StreamResult oneshot = serve_stream(2, test_config(60.0, 2), jobs);

  StreamEngine engine(2, test_config(60.0, 2));
  const std::size_t cut = jobs.size() / 3;
  engine.ingest({jobs.begin(), jobs.begin() + static_cast<long>(cut)});
  engine.ingest({jobs.begin() + static_cast<long>(cut), jobs.end()});
  expect_identical(oneshot, engine.finish());
}

TEST(StreamEngine, EveryJobAccountedServedOrFailed) {
  const auto jobs = test_stream(8, 250, 29);
  // Deliberately undersized capacity: the cube pools must run dry.
  const StreamResult r = serve_stream(2, test_config(3.0, 2), jobs);
  EXPECT_GT(r.failed_jobs.size(), 0u);
  EXPECT_EQ(r.metrics.jobs_served, r.served_jobs.size());
  EXPECT_EQ(r.metrics.jobs_failed, r.failed_jobs.size());
  std::set<std::int64_t> all(r.served_jobs.begin(), r.served_jobs.end());
  all.insert(r.failed_jobs.begin(), r.failed_jobs.end());
  EXPECT_EQ(all.size(), jobs.size());  // disjoint and complete
}

TEST(StreamEngine, TheoryCapacityServesEverything) {
  const auto jobs = test_stream(24, 400, 31);
  const DemandMap demand = demand_of_stream(jobs, 2);
  StreamConfig cfg;
  cfg.online = default_online_config(demand, 7);
  cfg.threads = 4;
  const StreamResult r = serve_stream(2, cfg, jobs);
  EXPECT_EQ(r.metrics.jobs_failed, 0u);
  EXPECT_EQ(r.served_jobs.size(), jobs.size());
}

// --- substrate: per-cube seeds and the worker pool --------------------------

TEST(CubeStreamSeed, DeterministicAndCornerSensitive) {
  const Point a{0, 0}, b{4, 0}, c{0, 4};
  EXPECT_EQ(cube_stream_seed(1, a), cube_stream_seed(1, a));
  EXPECT_NE(cube_stream_seed(1, a), cube_stream_seed(1, b));
  EXPECT_NE(cube_stream_seed(1, a), cube_stream_seed(1, c));
  EXPECT_NE(cube_stream_seed(1, a), cube_stream_seed(2, a));
}

TEST(WorkerPool, RunsEveryIndexConcurrently) {
  WorkerPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::atomic<int>> hits(4);
  for (int rep = 0; rep < 50; ++rep) {
    pool.run([&](int w) {
      sum += w;
      ++hits[static_cast<std::size_t>(w)];
    });
  }
  EXPECT_EQ(sum.load(), 50 * (0 + 1 + 2 + 3));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50);
}

TEST(WorkerPool, InlineWhenSingleWorker) {
  WorkerPool pool(1);
  int calls = 0;
  pool.run([&](int w) {
    EXPECT_EQ(w, 0);
    ++calls;  // no synchronization needed: runs on this thread
  });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerPool, PropagatesWorkerException) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.run([](int w) {
                 if (w == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool must survive a throwing generation.
  std::atomic<int> ok{0};
  pool.run([&](int) { ++ok; });
  EXPECT_EQ(ok.load(), 3);
}

// --- flat cube-slot routing -------------------------------------------------

TEST(CubeSlotTable, CornersMatchPairingIncludingNegatives) {
  // Both divide paths: side 3 exercises the floor-division fallback, side
  // 4 the power-of-two shift — negative coordinates included, where naive
  // integer division and floor division disagree.
  for (const std::int64_t side : {std::int64_t{3}, std::int64_t{4}}) {
    const CubePairing pairing(2, Point{0, 0}, side);
    const Box region(Point{-10, -10}, Point{10, 10});
    const CubeSlotTable table =
        CubeSlotTable::build(2, Point{0, 0}, side, region);
    ASSERT_FALSE(table.empty());
    std::set<std::uint32_t> seen;
    for (std::int64_t x = -10; x <= 10; ++x) {
      for (std::int64_t y = -10; y <= 10; ++y) {
        const Point p{x, y};
        Point corner = p;
        const std::uint32_t slot = table.slot_of_position(p, &corner);
        ASSERT_NE(slot, CubeSlotTable::kNoSlot);
        EXPECT_EQ(corner, pairing.cube_corner(p));
        EXPECT_EQ(table.corner_of(slot), corner);
        seen.insert(slot);
      }
    }
    // Every cube intersecting the region owns exactly one slot.
    EXPECT_EQ(seen.size(), table.size());
    // Outside the region: no slot, but the corner still comes out right.
    const Point far{1000, -1000};
    Point corner = far;
    EXPECT_EQ(table.slot_of_position(far, &corner), CubeSlotTable::kNoSlot);
    EXPECT_EQ(corner, pairing.cube_corner(far));
  }
}

TEST(CubeSlotTable, EmptyWithoutRegionOrWhenOversized) {
  EXPECT_TRUE(CubeSlotTable::build(2, Point{0, 0}, 4, std::nullopt).empty());
  // A region spanning more cubes than max_slots degrades to overflow
  // hashing instead of allocating without bound.
  const Box huge(Point{0, 0}, Point{1023, 1023});
  EXPECT_TRUE(CubeSlotTable::build(2, Point{0, 0}, 1, huge, 1000).empty());
}

TEST(StreamFlatState, RegionAndOverflowServeBitIdentically) {
  const auto jobs = test_stream(32, 600, 29);
  StreamConfig with = test_config(60.0, 2);
  with.region = Box(Point{0, 0}, Point{31, 31});
  const StreamResult flat = serve_stream(2, with, jobs);
  const StreamResult overflow = serve_stream(2, test_config(60.0, 2), jobs);
  EXPECT_GT(flat.cube_slots, 0u);
  EXPECT_EQ(overflow.cube_slots, 0u);
  expect_identical(flat, overflow);

  // A region covering only part of the stream routes the rest through
  // the overflow tier — still bit-identical.
  StreamConfig half = test_config(60.0, 2);
  half.region = Box(Point{0, 0}, Point{15, 31});
  expect_identical(flat, serve_stream(2, half, jobs));
}

TEST(StreamFlatState, ParallelRoutingPassMatchesSerial) {
  const auto jobs = test_stream(32, 4000, 31);
  StreamConfig serial = test_config(60.0, 1, 2048);
  serial.region = Box(Point{0, 0}, Point{31, 31});
  StreamConfig parallel = test_config(60.0, 4, 2048);
  parallel.region = serial.region;
  const StreamResult a = serve_stream(2, serial, jobs);
  const StreamResult b = serve_stream(2, parallel, jobs);
  // The big batches put the multi-shard run on the scatter/fold path.
  EXPECT_EQ(a.routed_parallel_batches, 0u);
  EXPECT_GT(b.routed_parallel_batches, 0u);
  expect_identical(a, b);
}

// --- latency timestamps and admission control -------------------------------

StreamConfig admission_config(double capacity, int threads, std::int64_t batch,
                              AdmissionPolicy admission) {
  StreamConfig cfg = test_config(capacity, threads, batch);
  cfg.online.admission = admission;
  cfg.online.queue_limit = 3;
  cfg.online.service_ticks = 4;
  cfg.online.sample_stride = 4;
  return cfg;
}

// A stream that saturates single cubes: runs of 40 consecutive arrivals
// at one point, hopping between three cubes — with service_ticks 4 and
// queue_limit 3, every run overflows its cube's backlog.
std::vector<Job> burst_stream(std::int64_t count) {
  const Point spots[] = {Point{1, 1}, Point{6, 2}, Point{2, 6}};
  std::vector<Job> jobs;
  for (std::int64_t i = 0; i < count; ++i)
    jobs.push_back({spots[(i / 40) % 3], i});
  return jobs;
}

TEST(StreamLatency, IdenticalAcrossThreadsAndBatches) {
  const auto jobs = test_stream(32, 600, 37);
  StreamConfig base = test_config(60.0, 1, 32);
  base.online.sample_stride = 4;
  const StreamResult ref = serve_stream(2, base, jobs);
  EXPECT_EQ(ref.latency.count(), ref.metrics.jobs_served);
  EXPECT_GT(ref.timeseries.samples, 0u);
  for (const int threads : {1, 2, 8}) {
    for (const std::int64_t batch : {32, 256}) {
      StreamConfig c = test_config(60.0, threads, batch);
      c.online.sample_stride = 4;
      expect_identical(ref, serve_stream(2, c, jobs));
    }
  }
}

TEST(StreamLatency, AdmissionOffLeavesNoDropsAndNoSamples) {
  const auto jobs = test_stream(16, 300, 41);
  const StreamResult r = serve_stream(2, test_config(40.0, 2), jobs);
  EXPECT_TRUE(r.shed_jobs.empty());
  EXPECT_EQ(r.jobs_shed, 0u);
  EXPECT_EQ(r.jobs_rejected, 0u);
  EXPECT_EQ(r.latency.count(), r.metrics.jobs_served);
  EXPECT_EQ(r.timeseries.samples, 0u);  // sampling is off by default
}

TEST(StreamAdmission, BoundedPoliciesPartitionAndStayDeterministic) {
  const auto jobs = burst_stream(240);
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kReject, AdmissionPolicy::kShed}) {
    const StreamResult r =
        serve_stream(2, admission_config(40.0, 1, 64, policy), jobs);
    // The bursts actually overflow the bounded backlogs.
    EXPECT_GT(r.jobs_shed + r.jobs_rejected, 0u);
    EXPECT_EQ(r.shed_jobs.size(), r.jobs_shed + r.jobs_rejected);
    EXPECT_EQ(r.latency.count(), r.metrics.jobs_served);
    // served + failed + shed partition the arrivals exactly.
    std::set<std::int64_t> all(r.served_jobs.begin(), r.served_jobs.end());
    all.insert(r.failed_jobs.begin(), r.failed_jobs.end());
    all.insert(r.shed_jobs.begin(), r.shed_jobs.end());
    EXPECT_EQ(all.size(), jobs.size());
    EXPECT_EQ(r.served_jobs.size() + r.failed_jobs.size() +
                  r.shed_jobs.size(),
              jobs.size());
    // The sampled backlog never exceeds the queue limit.
    EXPECT_LE(r.timeseries.max_queue_depth, 3);
    EXPECT_GT(r.timeseries.samples, 0u);
    // Thread count and batch size cannot move any of it.
    expect_identical(r,
                     serve_stream(2, admission_config(40.0, 4, 17, policy),
                                  jobs));
  }
}

TEST(StreamAdmission, PoliciesProduceDistinctOutcomes) {
  const auto jobs = burst_stream(240);
  const StreamResult unbounded = serve_stream(
      2, admission_config(40.0, 2, 64, AdmissionPolicy::kUnbounded), jobs);
  const StreamResult reject = serve_stream(
      2, admission_config(40.0, 2, 64, AdmissionPolicy::kReject), jobs);
  const StreamResult shed = serve_stream(
      2, admission_config(40.0, 2, 64, AdmissionPolicy::kShed), jobs);
  EXPECT_EQ(unbounded.jobs_shed + unbounded.jobs_rejected, 0u);
  EXPECT_GT(reject.jobs_rejected, 0u);
  EXPECT_EQ(reject.jobs_shed, 0u);
  EXPECT_GT(shed.jobs_shed, 0u);
  EXPECT_EQ(shed.jobs_rejected, 0u);
  // Reject drops the newest arrivals, shed evicts the oldest waiters —
  // under the same bursts they must drop different index sets.
  EXPECT_NE(reject.shed_jobs, shed.shed_jobs);
}

// --- the ascending-corner fold pin ------------------------------------------

TEST(StreamFoldOrder, PerCubeMetricsFoldReproducesResultBitForBit) {
  const auto jobs = test_stream(32, 600, 43);
  StreamEngine engine(2, test_config(60.0, 4));
  engine.ingest(jobs);
  const StreamResult r = engine.finish();
  const auto cubes = engine.per_cube_metrics();
  ASSERT_GT(cubes.size(), 10u);
  // The introspection is strictly ascending by corner — the documented
  // operand sequence of finish()'s fold.
  for (std::size_t i = 1; i < cubes.size(); ++i)
    EXPECT_TRUE(cubes[i - 1].first < cubes[i].first);
  OnlineMetrics ascending;
  for (const auto& [corner, m] : cubes) ascending.merge(m);
  // Bit-for-bit, double fields included: only this order is guaranteed
  // to reproduce result.metrics.
  EXPECT_TRUE(ascending == r.metrics);
}

TEST(StreamFoldOrder, MergeOrderMovesDoubleSums) {
  // Why the pin exists: OnlineMetrics::merge sums doubles, and float
  // addition is not associative — permuting the merge order of these
  // three operands provably changes the total.
  OnlineMetrics x, y, z;
  x.total_energy_spent = 0.1;
  y.total_energy_spent = 0.2;
  z.total_energy_spent = 0.3;
  OnlineMetrics xyz = x;
  xyz.merge(y);
  xyz.merge(z);
  OnlineMetrics zyx = z;
  zyx.merge(y);
  zyx.merge(x);
  EXPECT_NE(xyz.total_energy_spent, zyx.total_energy_spent);
}

}  // namespace
}  // namespace cmvrp
