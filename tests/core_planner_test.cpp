#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm1.h"
#include "core/bounds.h"
#include "core/cube_bound.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

DemandMap random_grid_demand(std::uint64_t seed, std::int64_t n, int points,
                             double max_d) {
  Rng rng(seed);
  DemandMap d(2);
  for (int i = 0; i < points; ++i)
    d.add(Point{rng.next_int(0, n - 1), rng.next_int(0, n - 1)},
          static_cast<double>(rng.next_int(1, static_cast<std::int64_t>(max_d))));
  return d;
}

// --- offline planner (Lemma 2.2.5) -----------------------------------------

class PlannerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerProperty, PlanCoversWithinCapacityBound) {
  const DemandMap d = random_grid_demand(GetParam(), 16, 12, 30.0);
  const OfflinePlan plan = plan_offline(d);
  const PlanCheck check = verify_plan(plan, d);
  EXPECT_TRUE(check.ok) << check.issue;
  // Realized energy must respect the paper's (2·3^ℓ + ℓ)·ω_c bound,
  // modulo the ⌈·⌉ on travel inside a side-s cube (ℓ(s-1) ≤ ℓ·ω_c holds
  // since s-1 ≤ ω_c by construction).
  EXPECT_LE(check.max_energy, plan.capacity_bound + 1e-6);
  // And the plan can never beat the cube lower bound.
  EXPECT_GE(check.max_energy + 1e-9, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(Planner, SinglePointAllServedInPlaceWhenSmall) {
  DemandMap d(2);
  d.set(Point{3, 3}, 2.0);
  const OfflinePlan plan = plan_offline(d);
  ASSERT_EQ(plan.assignments.size(), 1u);
  EXPECT_EQ(plan.assignments[0].home, (Point{3, 3}));
  EXPECT_FALSE(plan.assignments[0].remote.has_value());
  EXPECT_DOUBLE_EQ(plan.assignments[0].serve_at_home, 2.0);
  EXPECT_TRUE(verify_plan(plan, d).ok);
}

TEST(Planner, HeavyPointRecruitsHelpers) {
  DemandMap d(2);
  d.set(Point{0, 0}, 500.0);
  const OfflinePlan plan = plan_offline(d);
  const PlanCheck check = verify_plan(plan, d);
  EXPECT_TRUE(check.ok) << check.issue;
  EXPECT_GT(plan.assignments.size(), 1u);  // helpers had to travel
  double remote_total = 0.0;
  for (const auto& a : plan.assignments) {
    if (a.remote.has_value()) {
      EXPECT_EQ(*a.remote, (Point{0, 0}));
      remote_total += a.serve_remote;
      EXPECT_LE(a.serve_remote, plan.in_place_budget + 1e-9);
    }
  }
  EXPECT_NEAR(remote_total + plan.in_place_budget, 500.0, 1e-6);
}

TEST(Planner, LineWorkloadStaysNearW2Order) {
  const DemandMap d = line_demand(64, 12.0, Point{0, 0});
  const OfflinePlan plan = plan_offline(d);
  const PlanCheck check = verify_plan(plan, d);
  ASSERT_TRUE(check.ok) << check.issue;
  // Paper: Woff ~ W2 = Θ(sqrt(d)); realized plan energy should be within
  // the (2·3^ℓ+ℓ) constant of the cube lower bound.
  EXPECT_LE(check.max_energy,
            (2.0 * 9.0 + 2.0) * plan.bound.omega_c + 1e-6);
}

TEST(Planner, PlanEnergySandwichedByTheoremBounds) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const DemandMap d = random_grid_demand(seed, 12, 8, 20.0);
    const OfflinePlan plan = plan_offline(d);
    const PlanCheck check = verify_plan(plan, d);
    ASSERT_TRUE(check.ok) << "seed " << seed << ": " << check.issue;
    const double lower = plan.bound.omega_c;
    EXPECT_LE(lower, plan.capacity_bound + 1e-9);
    EXPECT_LE(check.max_energy, plan.capacity_bound + 1e-6) << "seed " << seed;
  }
}

TEST(PlanVerifier, CatchesUndercoverage) {
  DemandMap d(2);
  d.set(Point{0, 0}, 5.0);
  OfflinePlan plan = plan_offline(d);
  plan.assignments[0].serve_at_home -= 1.0;
  const PlanCheck check = verify_plan(plan, d);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.issue.find("undercovered"), std::string::npos);
}

TEST(PlanVerifier, CatchesCapacityViolation) {
  DemandMap d(2);
  d.set(Point{0, 0}, 5.0);
  const OfflinePlan plan = plan_offline(d);
  const PlanCheck check = verify_plan(plan, d, /*capacity=*/1.0);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.issue.find("capacity"), std::string::npos);
}

TEST(PlanVerifier, CatchesInconsistentTravel) {
  DemandMap d(2);
  d.set(Point{0, 0}, 500.0);
  OfflinePlan plan = plan_offline(d);
  bool tampered = false;
  for (auto& a : plan.assignments) {
    if (a.remote.has_value()) {
      a.travel += 1;
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  EXPECT_FALSE(verify_plan(plan, d).ok);
}

// --- bounds bundle -----------------------------------------------------------

TEST(OffBounds, PropertiesHold) {
  // Property 2.3.1: D̂ <= Woff <= D, so bounds must satisfy D̂ <= upper and
  // lower <= D at minimum.
  const DemandMap d = random_grid_demand(7, 16, 10, 40.0);
  const OffBounds b = offline_bounds(d, 16.0 * 16.0);
  EXPECT_GT(b.omega_c, 0.0);
  EXPECT_LE(b.omega_c, b.upper);
  EXPECT_LE(b.plan_energy, b.upper + 1e-6);
  EXPECT_LE(b.avg_demand, b.max_demand);
  EXPECT_DOUBLE_EQ(b.upper_factor, 20.0);
}

// --- Algorithm 1 ----------------------------------------------------------------

TEST(Algorithm1, ReturnsDWhenMaxDemandAtMostOne) {
  DemandMap d(2);
  d.set(Point{1, 1}, 0.7);
  d.set(Point{2, 3}, 1.0);
  const auto r = algorithm1(d, 8);
  EXPECT_STREQ(r.exit_rule, "D<=1");
  EXPECT_DOUBLE_EQ(r.estimate, 1.0);
}

TEST(Algorithm1, DenseGridShortCircuitsOnAverage) {
  // Make D̂ >= n: n = 4, every cell demand 16 -> D̂ = 16 >= 4.
  DemandMap d(2);
  Box::cube(Point{0, 0}, 4).for_each_point(
      [&](const Point& p) { d.set(p, 16.0); });
  const auto r = algorithm1(d, 4);
  EXPECT_STREQ(r.exit_rule, "n<=avg");
  // min{D, 2D̂ + ℓn} = min{16, 32+8} = 16.
  EXPECT_DOUBLE_EQ(r.estimate, 16.0);
}

TEST(Algorithm1, ThresholdExitProducesSandwichedEstimate) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::int64_t n = 32;
    const DemandMap d = random_grid_demand(seed, n, 20, 60.0);
    const auto r = algorithm1(d, n);
    const auto cb = cube_bound(d);
    // Claimed: estimate is a 2(2·3^ℓ+ℓ)-approximation of Woff, and
    // ω_c <= Woff <= (2·3^ℓ+ℓ)ω_c. So estimate must respect
    //   ω_c <= estimate <= 2(2·3^ℓ+ℓ)·Woff <= 2(2·3^ℓ+ℓ)(2·3^ℓ+ℓ)·ω_c.
    const double f = 2.0 * 9.0 + 2.0;
    EXPECT_GE(r.estimate + 1e-9, cb.omega_c) << "seed " << seed;
    EXPECT_LE(r.estimate, 2.0 * f * f * cb.omega_c + 1e-9) << "seed " << seed;
  }
}

TEST(Algorithm1, LinearWorkInCells) {
  // cells_touched must scale ~ n^2 (geometric level sums), not n^2 log n.
  const DemandMap d8 = random_grid_demand(5, 8, 6, 100.0);
  const DemandMap d64 = random_grid_demand(5, 64, 6, 100.0);
  const auto r8 = algorithm1(d8, 8);
  const auto r64 = algorithm1(d64, 64);
  EXPECT_LE(r64.cells_touched,
            3 * 64 * 64 + 10);  // Σ_k n²/4^k < (4/3)n², margin for levels
  EXPECT_LE(r8.cells_touched, 3 * 8 * 8 + 10);
}

TEST(Algorithm1, RejectsNonPowerOfTwo) {
  DemandMap d(2);
  d.set(Point{0, 0}, 2.0);
  EXPECT_THROW(algorithm1(d, 12), check_error);
}

TEST(Algorithm1, RejectsOutOfRangeDemand) {
  DemandMap d(2);
  d.set(Point{9, 0}, 2.0);
  EXPECT_THROW(algorithm1(d, 8), check_error);
}

TEST(Algorithm1, WorksInOneAndThreeDimensions) {
  DemandMap d1(1);
  d1.set(Point{3}, 50.0);
  const auto r1 = algorithm1(d1, 16);
  EXPECT_GT(r1.estimate, 0.0);

  DemandMap d3(3);
  d3.set(Point{1, 2, 3}, 500.0);
  const auto r3 = algorithm1(d3, 8);
  EXPECT_GT(r3.estimate, 0.0);
}

}  // namespace
}  // namespace cmvrp
