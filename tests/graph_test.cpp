#include <gtest/gtest.h>

#include "core/omega.h"
#include "graph/graph.h"
#include "graph/graph_omega.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

std::vector<double> demand_vector(const SpatialGraph& sg,
                                  const DemandMap& d) {
  std::vector<double> out(sg.points.size(), 0.0);
  for (const auto& [p, v] : d) {
    auto it = sg.index.find(p);
    if (it != sg.index.end()) out[it->second] = v;
  }
  return out;
}

TEST(Graph, BuildersProduceExpectedShape) {
  const Box box(Point{0, 0}, Point{3, 2});
  const SpatialGraph grid = make_grid_graph(box);
  EXPECT_EQ(grid.graph.num_vertices(), 12u);
  EXPECT_EQ(grid.graph.num_edges(), 3u * 3u + 4u * 2u);  // 17 grid edges
  EXPECT_TRUE(grid.graph.connected());

  const SpatialGraph torus = make_torus(4);
  EXPECT_EQ(torus.graph.num_vertices(), 16u);
  EXPECT_EQ(torus.graph.num_edges(), 32u);  // 2 per vertex on a torus
  EXPECT_TRUE(torus.graph.connected());
  // Every torus vertex has degree 4.
  for (std::size_t v = 0; v < 16; ++v)
    EXPECT_EQ(torus.graph.neighbors(v).size(), 4u);
}

TEST(Graph, HolesRemoveVerticesAndEdges) {
  const Box box(Point{0, 0}, Point{2, 2});
  const SpatialGraph holed =
      make_grid_with_holes(box, {Point{1, 1}});  // knock out the center
  EXPECT_EQ(holed.graph.num_vertices(), 8u);
  EXPECT_TRUE(holed.graph.connected());  // the ring survives
  EXPECT_EQ(holed.index.count(Point{1, 1}), 0u);
}

TEST(Graph, DistancesMatchManhattanOnPlainGrid) {
  const Box box(Point{0, 0}, Point{5, 5});
  const SpatialGraph sg = make_grid_graph(box);
  const auto dist = graph_distances(sg.graph, sg.index.at(Point{2, 3}));
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    const Point q{rng.next_int(0, 5), rng.next_int(0, 5)};
    EXPECT_EQ(dist[sg.index.at(q)], l1_distance(Point{2, 3}, q));
  }
}

TEST(Graph, DistancesRespectHoles) {
  // A wall forces a detour.
  const Box box(Point{0, 0}, Point{4, 2});
  const SpatialGraph sg = make_grid_with_holes(
      box, {Point{2, 0}, Point{2, 1}});  // vertical wall with a gap at y=2
  const auto dist = graph_distances(sg.graph, sg.index.at(Point{0, 0}));
  // Straight-line distance to (4,0) is 4; the wall forces up-and-over: 8.
  EXPECT_EQ(dist[sg.index.at(Point{4, 0})], 8);
}

TEST(Graph, TorusWrapsDistances) {
  const SpatialGraph sg = make_torus(8);
  const auto dist = graph_distances(sg.graph, sg.index.at(Point{0, 0}));
  EXPECT_EQ(dist[sg.index.at(Point{7, 0})], 1);  // wrap beats the long way
  EXPECT_EQ(dist[sg.index.at(Point{4, 4})], 8);  // antipode
}

TEST(Graph, WeightedRoadwaysPreferHighways) {
  const Box box(Point{0, 0}, Point{7, 4});
  const SpatialGraph sg =
      make_weighted_roadways(box, /*highway_rows=*/{2}, /*side_cost=*/5);
  const auto dist = graph_distances(sg.graph, sg.index.at(Point{0, 2}));
  // Along the highway: cost 7. Off-highway horizontal steps would cost 35.
  EXPECT_EQ(dist[sg.index.at(Point{7, 2})], 7);
  // One step off the highway costs 5.
  EXPECT_EQ(dist[sg.index.at(Point{0, 3})], 5);
}

TEST(GraphOmega, MatchesLatticeOmegaOnPlainGrid) {
  // The general-graph ω must coincide with the Z^ℓ implementation when the
  // graph *is* the grid (demand far from the boundary).
  Rng rng(11);
  const Box box(Point{0, 0}, Point{15, 15});
  const SpatialGraph sg = make_grid_graph(box);
  DemandMap d(2);
  for (int k = 0; k < 4; ++k)
    d.add(Point{rng.next_int(6, 9), rng.next_int(6, 9)},
          static_cast<double>(rng.next_int(1, 8)));
  const auto dv = demand_vector(sg, d);

  // Compare ω_T on the full support set.
  std::vector<std::size_t> t;
  for (const auto& p : d.support()) t.push_back(sg.index.at(p));
  EXPECT_NEAR(graph_omega_for_set(sg.graph, t, dv),
              omega_for_set(d.support(), d), 1e-9);

  // And the full ω*.
  EXPECT_NEAR(graph_omega_star_enumerate(sg.graph, dv),
              omega_star_enumerate(d), 1e-9);
}

TEST(GraphOmega, FlowFixedPointMatchesEnumeration) {
  Rng rng(13);
  const SpatialGraph sg = make_torus(8);
  std::vector<double> demand(sg.points.size(), 0.0);
  for (int k = 0; k < 4; ++k)
    demand[rng.next_below(demand.size())] +=
        static_cast<double>(rng.next_int(1, 9));
  const double by_enum = graph_omega_star_enumerate(sg.graph, demand);
  const double by_flow = graph_omega_star_flow(sg.graph, demand);
  EXPECT_NEAR(by_flow, by_enum, 1e-4);
}

TEST(GraphOmega, HolesRaiseOmega) {
  // Obstacles shrink the balls around the demand, so ω can only rise
  // relative to the free grid.
  const Box box(Point{0, 0}, Point{8, 8});
  DemandMap d(2);
  d.set(Point{4, 4}, 26.0);
  const SpatialGraph free_grid = make_grid_graph(box);
  std::vector<Point> holes;
  for (const auto& q : (Point{4, 4}).unit_neighbors())
    holes.push_back(q.translated(0, 0));
  // Remove 3 of the 4 neighbors (keep connectivity).
  holes.pop_back();
  const SpatialGraph holed = make_grid_with_holes(box, holes);

  const auto dv_free = demand_vector(free_grid, d);
  const auto dv_holed = demand_vector(holed, d);
  const double w_free = graph_omega_star_flow(free_grid.graph, dv_free);
  const double w_holed = graph_omega_star_flow(holed.graph, dv_holed);
  EXPECT_GT(w_holed, w_free);
}

TEST(GraphOmega, TorusBeatsGridNearBoundary) {
  // Demand at a grid corner has a truncated neighborhood; on the torus the
  // same demand sees the full ball, so ω is no larger.
  const std::int64_t n = 8;
  DemandMap d(2);
  d.set(Point{0, 0}, 40.0);
  const SpatialGraph grid = make_grid_graph(Box::cube(Point{0, 0}, n));
  const SpatialGraph torus = make_torus(n);
  const double w_grid =
      graph_omega_star_flow(grid.graph, demand_vector(grid, d));
  const double w_torus =
      graph_omega_star_flow(torus.graph, demand_vector(torus, d));
  EXPECT_LE(w_torus, w_grid + 1e-6);
  EXPECT_LT(w_torus, w_grid);  // strictly better at the corner
}

TEST(GraphOmega, BallLowerBoundBelowOmegaStar) {
  Rng rng(17);
  const SpatialGraph sg = make_grid_graph(Box(Point{0, 0}, Point{6, 6}));
  std::vector<double> demand(sg.points.size(), 0.0);
  for (int k = 0; k < 5; ++k)
    demand[rng.next_below(demand.size())] +=
        static_cast<double>(rng.next_int(1, 6));
  const double ball = graph_ball_lower_bound(sg.graph, demand, 4);
  const double star = graph_omega_star_enumerate(sg.graph, demand);
  EXPECT_LE(ball, star + 1e-9);
  EXPECT_GT(ball, 0.0);
}

TEST(GraphOmega, WeightedEdgesStretchOmega) {
  // Doubling all edge lengths doubles travel distances: balls shrink per
  // integer radius and ω grows (not necessarily by exactly 2 because of
  // the jump semantics, but strictly).
  const Box box(Point{0, 0}, Point{6, 6});
  DemandMap d(2);
  d.set(Point{3, 3}, 30.0);
  const SpatialGraph unit = make_grid_graph(box);
  // Rebuild with length-2 edges.
  SpatialGraph stretched;
  stretched.points = unit.points;
  stretched.index = unit.index;
  stretched.graph = Graph(unit.points.size());
  for (std::size_t v = 0; v < unit.points.size(); ++v)
    for (int axis = 0; axis < 2; ++axis) {
      auto it = unit.index.find(unit.points[v].translated(axis, 1));
      if (it != unit.index.end())
        stretched.graph.add_edge(v, it->second, 2);
    }
  const double w_unit =
      graph_omega_star_flow(unit.graph, demand_vector(unit, d));
  const double w_stretched =
      graph_omega_star_flow(stretched.graph, demand_vector(stretched, d));
  EXPECT_GT(w_stretched, w_unit);
}

}  // namespace
}  // namespace cmvrp
