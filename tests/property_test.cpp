// Monotonicity and scaling properties the paper's quantities must obey.
// These are the "laws" downstream users rely on when reasoning about the
// bounds; each is stated in or directly implied by Chapter 2.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cube_bound.h"
#include "core/closed_forms.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "grid/neighborhood.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

DemandMap random_demand(std::uint64_t seed, int points, std::int64_t span) {
  Rng rng(seed);
  DemandMap d(2);
  for (int k = 0; k < points; ++k)
    d.add(Point{rng.next_int(0, span), rng.next_int(0, span)},
          static_cast<double>(rng.next_int(1, 15)));
  return d;
}

class MonotoneSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotoneSweep, OmegaTIncreasesWithDemand) {
  // Eq. (1.1): more demand on the same T can only raise ω_T.
  Rng rng(GetParam());
  const Box t = Box::cube(Point{0, 0}, rng.next_int(1, 4));
  double prev = -1.0;
  for (double s : {1.0, 5.0, 25.0, 125.0, 625.0}) {
    const double w = omega_for_box(t, s);
    EXPECT_GE(w, prev) << "s=" << s;
    prev = w;
  }
}

TEST_P(MonotoneSweep, OmegaTDecreasesWithSetGrowth) {
  // Same total demand spread over a larger cube can only lower ω_T (the
  // neighborhood grows while Σd stays fixed).
  const double s = 100.0 + static_cast<double>(GetParam());
  double prev = 1e300;
  for (std::int64_t side : {1, 2, 4, 8, 16}) {
    const double w = omega_for_box(Box::cube(Point{0, 0}, side), s);
    EXPECT_LE(w, prev + 1e-12) << "side=" << side;
    prev = w;
  }
}

TEST_P(MonotoneSweep, CubeBoundMonotoneUnderDemandIncrease) {
  DemandMap d = random_demand(GetParam(), 8, 6);
  const double before = cube_bound(d).omega_c;
  // Add demand anywhere: ω_c cannot drop.
  d.add(Point{2, 2}, 10.0);
  const double after = cube_bound(d).omega_c;
  EXPECT_GE(after + 1e-9, before);
}

TEST_P(MonotoneSweep, ScalingDemandScalesBoundsSuperlinearSublinear) {
  // Doubling all demand: ω roughly scales by at most 2 (the neighborhood
  // only grows) and at least 2^{1/(ℓ+1)} (volume effect).
  const DemandMap d = random_demand(GetParam() + 50, 8, 6);
  DemandMap doubled(2);
  for (const auto& p : d.support()) doubled.set(p, 2.0 * d.at(p));
  const double w1 = cube_bound(d).omega_c;
  const double w2 = cube_bound(doubled).omega_c;
  EXPECT_GE(w2, w1 - 1e-9);
  EXPECT_LE(w2, 2.0 * w1 + 1e-9);
}

TEST_P(MonotoneSweep, PlanEnergyMonotoneUnderDemandIncrease) {
  DemandMap d = random_demand(GetParam() + 100, 6, 5);
  const OfflinePlan p1 = plan_offline(d);
  const PlanCheck c1 = verify_plan(p1, d);
  ASSERT_TRUE(c1.ok);
  d.add(d.support().front(), 50.0);
  const OfflinePlan p2 = plan_offline(d);
  const PlanCheck c2 = verify_plan(p2, d);
  ASSERT_TRUE(c2.ok);
  // Not strictly monotone point-by-point (partition may shift), but the
  // theoretical capacity bound is monotone in ω_c.
  EXPECT_GE(p2.bound.omega_c + 1e-9, p1.bound.omega_c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Properties, Property231AvgBelowMax) {
  // Property 2.3.1: D̂ <= Woff <= D — checkable on the bound level:
  // avg <= upper-bound proxies and lower bounds <= D.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const DemandMap d = random_demand(seed, 10, 7);
    const Box bb = d.bounding_box();
    const double avg = d.total() / static_cast<double>(bb.volume());
    const double max_d = d.max_demand();
    EXPECT_LE(avg, max_d + 1e-9);
    // omega_c <= Woff <= D (Property 2.3.1's right half).
    EXPECT_LE(cube_bound(d).omega_c, max_d + 1e-9) << seed;
  }
}

TEST(Properties, Property232TinyDemandMeansNoMovement) {
  // Property 2.3.2: if D <= 1 then Woff = D — vehicles cannot move (any
  // step costs 1 and then nothing is left for service beyond D).
  DemandMap d(2);
  d.set(Point{0, 0}, 0.75);
  d.set(Point{5, 5}, 0.5);
  // The plan serves everything in place and its max energy equals D.
  const OfflinePlan plan = plan_offline(d);
  const PlanCheck check = verify_plan(plan, d);
  ASSERT_TRUE(check.ok);
  EXPECT_DOUBLE_EQ(check.max_energy, 0.75);
  for (const auto& a : plan.assignments)
    EXPECT_FALSE(a.remote.has_value());
}

TEST(Properties, BallVolumeMonotoneInRadiusAndDim) {
  for (int dim = 1; dim <= 4; ++dim) {
    std::int64_t prev = 0;
    for (std::int64_t r = 0; r <= 10; ++r) {
      const auto v = l1_ball_volume(dim, r);
      EXPECT_GT(v, prev);
      prev = v;
    }
  }
  for (std::int64_t r = 1; r <= 6; ++r)
    for (int dim = 1; dim < 4; ++dim)
      EXPECT_LT(l1_ball_volume(dim, r), l1_ball_volume(dim + 1, r));
}

TEST(Properties, BoxNeighborhoodSuperadditiveUnderSplit) {
  // Splitting a box into two disjoint halves can only grow (or keep) the
  // total neighborhood count: |N_r(A)| + |N_r(B)| >= |N_r(A ∪ B)|.
  for (std::int64_t r : {0, 1, 3, 6}) {
    const auto whole = box_neighborhood_volume({8, 4}, r);
    const auto left = box_neighborhood_volume({4, 4}, r);
    const auto right = box_neighborhood_volume({4, 4}, r);
    EXPECT_GE(left + right, whole) << "r=" << r;
  }
}

TEST(Properties, ClosedFormsAreMonotone) {
  double prev = 0.0;
  for (double d : {1.0, 2.0, 8.0, 64.0, 1024.0}) {
    const double w = example_line_w2(d);
    EXPECT_GT(w, prev);
    prev = w;
  }
  prev = 0.0;
  for (double d : {1.0, 8.0, 64.0, 4096.0}) {
    const double w = example_point_w3(d);
    EXPECT_GT(w, prev);
    prev = w;
  }
  // W1 decreasing in a for fixed d (more interior vehicles share load)…
  // actually W1 increases with a toward d; check that.
  prev = 0.0;
  for (double a : {1.0, 4.0, 64.0, 1024.0}) {
    const double w = example_square_w1(a, 50.0);
    EXPECT_GT(w, prev) << "a=" << a;
    prev = w;
  }
  EXPECT_LT(prev, 50.0 + 1e-9);  // never exceeds d
}

}  // namespace
}  // namespace cmvrp
