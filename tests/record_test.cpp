// Recorder + multiplexer subsystem: the cmvrp-trace-v2 event layout
// (golden bytes), v1 -> v2 reader compatibility, engine-side outcome
// recording (audit trail bit-identical to the in-memory digests at every
// thread count), deterministic k-way multi-trace replay (TraceMux vs the
// in-memory merge_streams reference, across threads / batch sizes /
// source orderings), silent-done failure-injection replay, and the
// amortized monitoring stride.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/span_export.h"
#include "online/pairing.h"
#include "record/mux.h"
#include "record/recorder.h"
#include "stream/engine.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"
#include "util/check.h"
#include "util/digest.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/stream_gen.h"

namespace cmvrp {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "cmvrp_record_" + name;
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void expect_identical(const StreamResult& a, const StreamResult& b) {
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.served_jobs, b.served_jobs);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.shed_jobs, b.shed_jobs);
  EXPECT_EQ(a.jobs_shed, b.jobs_shed);
  EXPECT_EQ(a.jobs_rejected, b.jobs_rejected);
  EXPECT_TRUE(a.latency == b.latency);
  EXPECT_TRUE(a.timeseries == b.timeseries);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.cubes, b.cubes);
  EXPECT_EQ(a.jobs_ingested, b.jobs_ingested);
}

StreamConfig stream_config(int dim, int threads, std::int64_t batch = 256,
                           double capacity = 24.0,
                           std::int64_t stride = 1) {
  StreamConfig cfg;
  cfg.online.capacity = capacity;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point::origin(dim);
  cfg.online.seed = 7;
  cfg.online.monitor_stride = stride;
  cfg.threads = threads;
  cfg.batch_size = batch;
  return cfg;
}

// --- golden bytes: the v2 event layout is pinned ----------------------------

TEST(TraceV2Format, GoldenBytes) {
  const std::string path = temp_path("golden_v2.trace");
  {
    TraceWriter writer(path, 2, kTraceVersionV2);
    writer.append(Job{Point{3, -1}, 0});  // arrivals encode through append
    writer.append_event(silent_done_event(Point{4, 5}));
    writer.append_event(outcome_event(Job{Point{260, 7}, 1}, /*served=*/true,
                                      Point{4, 4}));
    writer.close();
    EXPECT_EQ(writer.flags(), kTraceFlagFailureEvents | kTraceFlagOutcomes);
  }
  const std::vector<unsigned char> expected = {
      // header: magic, version=2, dim=2, count=3, flags=0x3
      'c', 'm', 'v', 'r', 'p', 't', 'r', 'c',        // magic
      2, 0, 0, 0,                                    // version
      2, 0, 0, 0,                                    // dim
      3, 0, 0, 0, 0, 0, 0, 0,                        // record count
      3, 0, 0, 0, 0, 0, 0, 0,                        // flags (both bits)
      // record 0: arrival (3, -1), index 0
      0, 0, 0, 0,                                    // kind = arrival
      0, 0, 0, 0,                                    // aux = 0
      3, 0, 0, 0, 0, 0, 0, 0,                        // x = 3
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  // y = -1
      0, 0, 0, 0, 0, 0, 0, 0,                        // index = 0
      0, 0, 0, 0, 0, 0, 0, 0,                        // corner x = 0
      0, 0, 0, 0, 0, 0, 0, 0,                        // corner y = 0
      // record 1: silent-done at home (4, 5)
      1, 0, 0, 0,                                    // kind = silent-done
      0, 0, 0, 0,                                    // aux = 0
      4, 0, 0, 0, 0, 0, 0, 0,                        // home x = 4
      5, 0, 0, 0, 0, 0, 0, 0,                        // home y = 5
      0, 0, 0, 0, 0, 0, 0, 0,                        // index = 0
      0, 0, 0, 0, 0, 0, 0, 0,                        // corner x = 0
      0, 0, 0, 0, 0, 0, 0, 0,                        // corner y = 0
      // record 2: outcome of (260, 7) index 1, served, corner (4, 4)
      2, 0, 0, 0,                                    // kind = outcome
      1, 0, 0, 0,                                    // aux = served
      4, 1, 0, 0, 0, 0, 0, 0,                        // x = 260 = 0x104
      7, 0, 0, 0, 0, 0, 0, 0,                        // y = 7
      1, 0, 0, 0, 0, 0, 0, 0,                        // index = 1
      4, 0, 0, 0, 0, 0, 0, 0,                        // corner x = 4
      4, 0, 0, 0, 0, 0, 0, 0,                        // corner y = 4
  };
  EXPECT_EQ(read_bytes(path), expected);
}

TEST(TraceV2Format, RecordSizeTracksDimAndVersion) {
  EXPECT_EQ(trace_record_size(1, 2), 32u);
  EXPECT_EQ(trace_record_size(2, 2), 48u);
  EXPECT_EQ(trace_record_size(3, 2), 64u);
  EXPECT_EQ(trace_record_size(4, 2), 80u);
  // v1 sizes are unchanged by the v2 extension.
  EXPECT_EQ(trace_record_size(2), 24u);
  EXPECT_EQ(trace_record_size(2, 1), 24u);
  EXPECT_EQ(trace_record_size(4, 1), 40u);
}

// --- v1 -> v2 reader compatibility ------------------------------------------

TEST(TraceV2Compat, V1GoldenBytesStillDecode) {
  // The exact v1 golden bytes pinned by trace_test — the upgraded reader
  // must decode legacy traces unchanged, and surface them as events.
  const std::vector<unsigned char> v1_bytes = {
      'c', 'm', 'v', 'r', 'p', 't', 'r', 'c',        // magic
      1, 0, 0, 0,                                    // version
      2, 0, 0, 0,                                    // dim
      2, 0, 0, 0, 0, 0, 0, 0,                        // job_count
      0, 0, 0, 0, 0, 0, 0, 0,                        // flags
      3, 0, 0, 0, 0, 0, 0, 0,                        // x = 3
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  // y = -1
      0, 0, 0, 0, 0, 0, 0, 0,                        // index = 0
      4, 1, 0, 0, 0, 0, 0, 0,                        // x = 260
      7, 0, 0, 0, 0, 0, 0, 0,                        // y = 7
      1, 0, 0, 0, 0, 0, 0, 0,                        // index = 1
  };
  const std::string path = temp_path("golden_v1.trace");
  write_bytes(path, v1_bytes);

  TraceReader reader(path);
  EXPECT_EQ(reader.version(), kTraceVersion);
  EXPECT_FALSE(reader.has_failure_events());
  EXPECT_FALSE(reader.has_outcomes());
  const auto jobs = reader.read_all();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].position, (Point{3, -1}));
  EXPECT_EQ(jobs[1].position, (Point{260, 7}));
  EXPECT_EQ(jobs[1].index, 1);

  // The events view of a v1 trace: every record is an arrival.
  reader.reset();
  TraceEvent events[4];
  ASSERT_EQ(reader.next_events(events, 4), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kArrival);
  EXPECT_EQ(events[1].kind, TraceEventKind::kArrival);
  EXPECT_EQ(events[1].job.position, (Point{260, 7}));
}

TEST(TraceV2Compat, EventRoundTripAllDimensions) {
  for (const int dim : {1, 2, 3, 4}) {
    const std::string path =
        temp_path("events" + std::to_string(dim) + ".trace");
    Rng rng(static_cast<std::uint64_t>(dim) * 13 + 5);
    std::vector<TraceEvent> events;
    for (std::int64_t k = 0; k < 97; ++k) {
      Point p = Point::origin(dim);
      for (int i = 0; i < dim; ++i) p[i] = rng.next_int(-500, 500);
      switch (k % 3) {
        case 0:
          events.push_back(arrival_event(Job{p, k}));
          break;
        case 1:
          events.push_back(silent_done_event(p));
          break;
        default: {
          Point c = Point::origin(dim);
          for (int i = 0; i < dim; ++i) c[i] = rng.next_int(-8, 8) * 4;
          events.push_back(outcome_event(Job{p, k}, k % 2 == 0, c));
          break;
        }
      }
    }
    {
      TraceWriter writer(path, dim, kTraceVersionV2);
      for (const auto& e : events) writer.append_event(e);
      writer.close();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.version(), kTraceVersionV2);
    EXPECT_TRUE(reader.has_failure_events());
    EXPECT_TRUE(reader.has_outcomes());
    std::vector<TraceEvent> back(events.size());
    ASSERT_EQ(reader.next_events(back.data(), back.size()), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(back[i].kind, events[i].kind) << i;
      EXPECT_EQ(back[i].served, events[i].served) << i;
      EXPECT_EQ(back[i].job.position, events[i].job.position) << i;
      EXPECT_EQ(back[i].job.index, events[i].job.index) << i;
      EXPECT_EQ(back[i].corner, events[i].corner) << i;
    }
  }
}

TEST(TraceV2Compat, WriterRejectsNonArrivalEventsInV1) {
  const std::string path = temp_path("v1_reject.trace");
  TraceWriter writer(path, 2);  // default: v1
  writer.append_event(arrival_event(Job{Point{1, 1}, 0}));  // fine
  EXPECT_THROW(writer.append_event(silent_done_event(Point{0, 0})),
               check_error);
  EXPECT_THROW(writer.append_event(
                   outcome_event(Job{Point{1, 1}, 0}, true, Point{0, 0})),
               check_error);
  writer.close();
  TraceReader reader(path);
  EXPECT_EQ(reader.job_count(), 1u);
}

// --- corrupt v2 input diagnostics -------------------------------------------

std::vector<unsigned char> valid_v2_bytes() {
  const std::string path = temp_path("template_v2.trace");
  TraceWriter writer(path, 2, kTraceVersionV2);
  writer.append(Job{Point{1, 2}, 0});
  writer.append(Job{Point{3, 4}, 1});
  writer.close();
  return read_bytes(path);
}

void expect_open_error(const std::string& path,
                       const std::vector<std::string>& fragments) {
  try {
    TraceReader reader(path);
    FAIL() << "expected check_error for " << path;
  } catch (const check_error& e) {
    const std::string what = e.what();
    for (const auto& fragment : fragments)
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing \"" << fragment << "\" in: " << what;
  }
}

TEST(TraceV2Errors, UnknownFlagBitRejected) {
  auto bytes = valid_v2_bytes();
  store_le64(bytes.data() + kTraceFlagsOffset, 0x8);  // undefined bit
  const std::string path = temp_path("v2_flags.trace");
  write_bytes(path, bytes);
  expect_open_error(path, {"flags", "byte offset 24"});
}

TEST(TraceV2Errors, UnknownEventKindRejectedWithOffset) {
  auto bytes = valid_v2_bytes();
  // Corrupt record 1's kind word (records start at 32, size 48).
  store_le32(bytes.data() + kTraceHeaderSize + trace_record_size(2, 2), 9);
  const std::string path = temp_path("v2_kind.trace");
  write_bytes(path, bytes);
  // Kind validation is lazy (open must not touch every page of a huge
  // trace); the corrupt record throws on first decode, with its offset.
  TraceReader reader(path);
  EXPECT_EQ(reader.job_count(), 2u);
  try {
    reader.read_all();
    FAIL() << "expected check_error decoding a corrupt kind word";
  } catch (const check_error& e) {
    const std::string what = e.what();
    for (const char* fragment : {"event kind 9", "record 1", "byte offset 80"})
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing \"" << fragment << "\" in: " << what;
  }
}

TEST(TraceV2Errors, TruncatedV2RecordRejected) {
  auto bytes = valid_v2_bytes();
  bytes.resize(bytes.size() - 7);
  const std::string path = temp_path("v2_torn.trace");
  write_bytes(path, bytes);
  expect_open_error(path, {"truncated", "record 1"});
}

// --- outcome recording: the audit-trail contract ----------------------------

std::vector<Job> hotspot_jobs(std::int64_t count) {
  Rng rng(611);
  return collect_jobs([&rng, count](const JobSink& sink) {
    bursty_hotspot_stream(2, 4, 8, count, 64, rng, sink);
  });
}

TEST(OutcomeRecorder, DigestsMatchInMemoryResultAcrossThreadCounts) {
  const auto jobs = hotspot_jobs(2000);
  // Capacity low enough that some bursts drain their cube's idle pool,
  // so the failed-set digest is exercised too.
  const StreamConfig base = stream_config(2, 1, 256, 12.0);
  const StreamResult reference = serve_stream(2, base, jobs);
  ASSERT_GT(reference.metrics.jobs_failed, 0u);  // both digests exercised
  const std::uint64_t served_ref = index_set_digest(reference.served_jobs);
  const std::uint64_t failed_ref = index_set_digest(reference.failed_jobs);

  for (const int threads : {1, 2, 8}) {
    const std::string path =
        temp_path("audit" + std::to_string(threads) + ".trace");
    StreamEngine engine(2, stream_config(2, threads, 256, 12.0));
    OutcomeRecorder recorder(path, 2);
    engine.set_observer(&recorder);
    engine.ingest(jobs);
    const StreamResult r = engine.finish();
    recorder.close();

    expect_identical(reference, r);
    EXPECT_EQ(recorder.recorded(), jobs.size());
    EXPECT_EQ(recorder.served_count(), reference.metrics.jobs_served);
    EXPECT_EQ(recorder.failed_count(), reference.metrics.jobs_failed);
    EXPECT_EQ(recorder.served_digest(), served_ref);
    EXPECT_EQ(recorder.failed_digest(), failed_ref);

    // The on-disk trail carries the same sets and digests.
    TraceReader back(path);
    EXPECT_TRUE(back.has_outcomes());
    EXPECT_EQ(back.job_count(), jobs.size());
    const OutcomeSets sets = read_outcome_sets(back);
    EXPECT_EQ(sets.served, reference.served_jobs);
    EXPECT_EQ(sets.failed, reference.failed_jobs);
    const OutcomeSummary summary = scan_outcomes(back);
    EXPECT_EQ(summary.served_digest, served_ref);
    EXPECT_EQ(summary.failed_digest, failed_ref);
  }
}

TEST(OutcomeRecorder, OutcomeCornersMatchThePairing) {
  const auto jobs = hotspot_jobs(400);
  const StreamConfig cfg = stream_config(2, 2);
  const std::string path = temp_path("corners.trace");
  StreamEngine engine(2, cfg);
  OutcomeRecorder recorder(path, 2);
  engine.set_observer(&recorder);
  engine.ingest(jobs);
  engine.finish();
  recorder.close();

  CubePairing pairing(2, cfg.online.anchor, cfg.online.cube_side);
  TraceReader back(path);
  std::vector<TraceEvent> events(back.job_count());
  ASSERT_EQ(back.next_events(events.data(), events.size()), events.size());
  for (const auto& e : events) {
    ASSERT_EQ(e.kind, TraceEventKind::kOutcome);
    EXPECT_EQ(e.corner, pairing.cube_corner(e.job.position));
  }
}

TEST(OutcomeRecorder, AuditTrailReplaysToTheSameResult) {
  // A v2 outcome trace's job-bearing records are the original arrival
  // sequence, so replaying the audit trail reproduces the recorded run.
  const auto jobs = hotspot_jobs(1500);
  const StreamConfig cfg = stream_config(2, 2);
  const std::string path = temp_path("replayable.trace");
  StreamEngine engine(2, cfg);
  OutcomeRecorder recorder(path, 2);
  engine.set_observer(&recorder);
  engine.ingest(jobs);
  const StreamResult original = engine.finish();
  recorder.close();

  TraceReader reader(path);
  TraceReplayer replayer(2, cfg);
  expect_identical(original, replayer.replay(reader));
}

TEST(OutcomeRecorder, ObserverSeesEveryBatchInAscendingIndexOrder) {
  struct Collector final : StreamObserver {
    std::vector<std::size_t> batch_sizes;
    std::vector<std::int64_t> indices;
    void on_batch(const JobOutcome* outcomes, std::size_t count) override {
      batch_sizes.push_back(count);
      for (std::size_t i = 0; i < count; ++i)
        indices.push_back(outcomes[i].job.index);
    }
  };
  const auto jobs = hotspot_jobs(500);
  Collector collector;
  StreamEngine engine(2, stream_config(2, 2, /*batch=*/64));
  engine.set_observer(&collector);
  engine.ingest(jobs);
  const StreamResult r = engine.finish();

  EXPECT_EQ(collector.batch_sizes.size(), r.batches);
  for (const std::size_t n : collector.batch_sizes) EXPECT_LE(n, 64u);
  ASSERT_EQ(collector.indices.size(), jobs.size());
  for (std::size_t i = 0; i < collector.indices.size(); ++i)
    EXPECT_EQ(collector.indices[i], static_cast<std::int64_t>(i));
}

TEST(OutcomeRecorder, ShedRunRoundTripsAllThreeOutcomeSets) {
  // Saturating run with admission on: the trail's aux words distinguish
  // served / failed / shed, the recorder's dropped digest audits the shed
  // set, and both the materialized sets and the O(1)-memory scan round
  // trip from disk — at two batch sizes, since with bounded admission the
  // trail's byte order is completion order and legitimately varies with
  // batching (only the order-invariant views must agree).
  const auto jobs = hotspot_jobs(1500);
  StreamResult reference;
  for (const std::int64_t batch : {64, 256}) {
    StreamConfig cfg = stream_config(2, 2, batch, 8.0);
    cfg.online.admission = AdmissionPolicy::kShed;
    cfg.online.queue_limit = 4;
    cfg.online.service_ticks = 4;
    const std::string path =
        temp_path("shed_audit" + std::to_string(batch) + ".trace");
    StreamEngine engine(2, cfg);
    OutcomeRecorder recorder(path, 2);
    engine.set_observer(&recorder);
    engine.ingest(jobs);
    const StreamResult r = engine.finish();
    recorder.close();
    if (batch == 64) reference = r;
    expect_identical(reference, r);  // batching never moves the outcome

    ASSERT_GT(r.jobs_shed, 0u);
    EXPECT_EQ(r.jobs_rejected, 0u);
    EXPECT_EQ(recorder.recorded(), jobs.size());
    EXPECT_EQ(recorder.served_count(), r.metrics.jobs_served);
    EXPECT_EQ(recorder.failed_count(), r.metrics.jobs_failed);
    EXPECT_EQ(recorder.dropped_count(), r.jobs_shed);
    EXPECT_EQ(recorder.served_digest(), index_set_digest(r.served_jobs));
    EXPECT_EQ(recorder.failed_digest(), index_set_digest(r.failed_jobs));
    EXPECT_EQ(recorder.dropped_digest(), index_set_digest(r.shed_jobs));

    TraceReader back(path);
    EXPECT_TRUE(back.has_outcomes());
    const OutcomeSets sets = read_outcome_sets(back);
    EXPECT_EQ(sets.served, r.served_jobs);
    EXPECT_EQ(sets.failed, r.failed_jobs);
    EXPECT_EQ(sets.dropped, r.shed_jobs);
    const OutcomeSummary summary = scan_outcomes(back);
    EXPECT_EQ(summary.served, r.metrics.jobs_served);
    EXPECT_EQ(summary.failed, r.metrics.jobs_failed);
    EXPECT_EQ(summary.dropped, r.jobs_shed);
    EXPECT_EQ(summary.dropped_digest, index_set_digest(r.shed_jobs));
  }
}

TEST(OutcomeRecorder, RejectsScanningNonOutcomeTraces) {
  const std::string path = temp_path("not_outcomes.trace");
  {
    TraceWriter writer(path, 2);
    writer.append(Job{Point{1, 1}, 0});
    writer.close();
  }
  TraceReader reader(path);
  EXPECT_THROW(read_outcome_sets(reader), check_error);
  EXPECT_THROW(scan_outcomes(reader), check_error);
}

// --- TraceMux: deterministic k-way multi-trace replay -----------------------

// Three sources from three different generators, same dimension.
std::vector<std::vector<Job>> mux_source_jobs() {
  std::vector<std::vector<Job>> sources;
  sources.push_back(hotspot_jobs(1200));
  {
    Rng rng(614);
    sources.push_back(collect_jobs([&rng](const JobSink& sink) {
      drifting_gradient_stream(Box(Point{0, 0}, Point{31, 31}), 1200, 2.0,
                               rng, sink);
    }));
  }
  {
    Rng rng(616);
    sources.push_back(collect_jobs([&rng](const JobSink& sink) {
      heavy_tailed_hotspot_stream(2, 4, 8, 1200, 1.2, rng, sink);
    }));
  }
  return sources;
}

std::vector<std::string> write_mux_sources(
    const std::vector<std::vector<Job>>& sources) {
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    paths.push_back(temp_path("mux_src" + std::to_string(s) + ".trace"));
    TraceWriter writer(paths.back(), 2);
    writer.append(sources[s].data(), sources[s].size());
    writer.close();
  }
  return paths;
}

TEST(TraceMuxTest, MatchesInMemoryMergeAcrossThreadsBatchesAndOrderings) {
  const auto sources = mux_source_jobs();
  const auto paths = write_mux_sources(sources);
  const std::vector<Job> merged = merge_streams(sources);
  ASSERT_EQ(merged.size(), 3600u);
  for (std::size_t i = 0; i < merged.size(); ++i)  // re-indexed 0..N-1
    ASSERT_EQ(merged[i].index, static_cast<std::int64_t>(i));
  const StreamResult reference =
      serve_stream(2, stream_config(2, 1), merged);

  // Thread counts and batch sizes.
  for (const int threads : {1, 2, 8}) {
    for (const std::int64_t batch : {64, 256, 1000}) {
      TraceMux mux(2, stream_config(2, threads, batch));
      for (const auto& path : paths) mux.add_source(path);
      EXPECT_EQ(mux.source_count(), paths.size());
      const StreamResult r = mux.replay();
      expect_identical(reference, r);
      EXPECT_EQ(mux.jobs_merged(), merged.size());
    }
  }

  // Source orderings: every rotation and the reversal.
  const std::vector<std::vector<std::size_t>> orders = {
      {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& order : orders) {
    TraceMux mux(2, stream_config(2, 2));
    for (const std::size_t s : order) mux.add_source(paths[s]);
    expect_identical(reference, mux.replay());
  }
}

TEST(TraceMuxTest, SingleSourceEqualsPlainReplay) {
  const auto jobs = hotspot_jobs(800);
  const std::string path = temp_path("mux_single.trace");
  {
    TraceWriter writer(path, 2);
    writer.append(jobs.data(), jobs.size());
    writer.close();
  }
  const StreamResult plain = serve_stream(2, stream_config(2, 2), jobs);
  TraceMux mux(2, stream_config(2, 2));
  mux.add_source(path);
  expect_identical(plain, mux.replay());  // indices 0..N-1 re-index to selves
}

TEST(TraceMuxTest, MixedDimAndFailureSourcesRejected) {
  const std::string flat = temp_path("mux_2d.trace");
  {
    TraceWriter writer(flat, 2);
    writer.append(Job{Point{1, 1}, 0});
    writer.close();
  }
  const std::string solid = temp_path("mux_3d.trace");
  {
    TraceWriter writer(solid, 3);
    writer.append(Job{Point{1, 1, 1}, 0});
    writer.close();
  }
  const std::string faulty = temp_path("mux_faulty.trace");
  {
    TraceWriter writer(faulty, 2, kTraceVersionV2);
    writer.append(Job{Point{1, 1}, 0});
    writer.append_event(silent_done_event(Point{0, 0}));
    writer.close();
  }
  TraceMux mux(2, stream_config(2, 1));
  mux.add_source(flat);
  EXPECT_THROW(mux.add_source(solid), check_error);
  EXPECT_THROW(mux.add_source(faulty), check_error);
  EXPECT_EQ(mux.source_count(), 1u);
}

TEST(TraceMuxTest, MuxFeedsTheObserver) {
  const auto sources = mux_source_jobs();
  const auto paths = write_mux_sources(sources);
  const std::string audit = temp_path("mux_audit.trace");
  TraceMux mux(2, stream_config(2, 2));
  for (const auto& path : paths) mux.add_source(path);
  OutcomeRecorder recorder(audit, 2);
  mux.set_observer(&recorder);
  const StreamResult r = mux.replay();
  recorder.close();
  EXPECT_EQ(recorder.recorded(), r.jobs_ingested);
  EXPECT_EQ(recorder.served_digest(), index_set_digest(r.served_jobs));
  EXPECT_EQ(recorder.failed_digest(), index_set_digest(r.failed_jobs));
}

TEST(TraceMuxTest, CountersSurviveMuxAndRecordComposition) {
  // Counters + mux + record composed: the merged run's Tier-A registry
  // must equal the in-memory merge's bit for bit, while an
  // OutcomeRecorder rides along auditing the same run. Undersized
  // capacity so the obs-gated fields are actually exercised.
  const auto sources = mux_source_jobs();
  const auto paths = write_mux_sources(sources);
  const std::vector<Job> merged = merge_streams(sources);
  StreamConfig cfg = stream_config(2, 1, 256, /*capacity=*/8.0);
  cfg.online.obs.counters = true;
  const StreamResult reference = serve_stream(2, cfg, merged);
  ASSERT_GT(reference.counters.replacements, 0u);
  ASSERT_GT(reference.counters.comps_finished, 0u);
  ASSERT_EQ(reference.counters.arrivals, merged.size());

  const std::string audit = temp_path("mux_obs_audit.trace");
  StreamConfig mcfg = stream_config(2, 8, 128, /*capacity=*/8.0);
  mcfg.online.obs.counters = true;
  TraceMux mux(2, mcfg);
  for (const auto& path : paths) mux.add_source(path);
  OutcomeRecorder recorder(audit, 2);
  mux.set_observer(&recorder);
  const StreamResult r = mux.replay();
  recorder.close();
  expect_identical(reference, r);
  EXPECT_EQ(recorder.recorded(), r.jobs_ingested);
  EXPECT_EQ(recorder.served_digest(), index_set_digest(r.served_jobs));
}

// --- silent-done failure injection through v2 traces ------------------------

TEST(SilentDoneReplay, MarkerForcesRingRecoveryDeterministically) {
  // A point burst exhausts the serving vehicle; with the silent-done
  // marker it never initiates its own replacement, so only the §3.2.5
  // monitoring ring can recover the pair.
  const Point p{1, 1};
  const CubePairing pairing(2, Point{0, 0}, 4);
  const Point home = pairing.primary(p);  // the initially active vehicle
  const std::int64_t count = 40;

  const std::string clean = temp_path("clean.trace");
  {
    TraceWriter writer(clean, 2, kTraceVersionV2);
    for (std::int64_t k = 0; k < count; ++k) writer.append(Job{p, k});
    writer.close();
  }
  const std::string faulty = temp_path("faulty.trace");
  {
    TraceWriter writer(faulty, 2, kTraceVersionV2);
    writer.append_event(silent_done_event(home));
    for (std::int64_t k = 0; k < count; ++k) writer.append(Job{p, k});
    writer.close();
  }

  // Capacity small enough that the first vehicle exhausts mid-stream.
  const auto run = [](const std::string& path, int threads,
                      std::int64_t batch) {
    TraceReader reader(path);
    TraceReplayer replayer(2, stream_config(2, threads, batch, 12.0));
    return replayer.replay(reader);
  };

  const StreamResult without = run(clean, 1, 256);
  const StreamResult with = run(faulty, 1, 256);
  EXPECT_EQ(without.metrics.monitor_initiations, 0u);  // self-replacing
  EXPECT_GT(with.metrics.monitor_initiations, 0u);     // ring had to act
  EXPECT_GT(with.metrics.jobs_served, 0u);             // and it recovered
  EXPECT_LT(with.metrics.jobs_served, without.metrics.jobs_served + 1);

  // Injection replay is part of the determinism contract: identical
  // across thread counts and batch sizes.
  for (const int threads : {2, 8})
    expect_identical(with, run(faulty, threads, 256));
  for (const std::int64_t batch : {7, 1000})
    expect_identical(with, run(faulty, 1, batch));
}

TEST(SilentDoneReplay, EngineInjectionMatchesTraceInjection) {
  const Point p{1, 1};
  const CubePairing pairing(2, Point{0, 0}, 4);
  const Point home = pairing.primary(p);
  std::vector<Job> jobs;
  for (std::int64_t k = 0; k < 30; ++k) jobs.push_back(Job{p, k});

  // Direct engine API.
  StreamEngine engine(2, stream_config(2, 2, 64, 12.0));
  engine.inject_silent_done(home);
  engine.ingest(jobs);
  const StreamResult direct = engine.finish();

  // The same injection carried by a trace.
  const std::string path = temp_path("inject_api.trace");
  {
    TraceWriter writer(path, 2, kTraceVersionV2);
    writer.append_event(silent_done_event(home));
    writer.append(jobs.data(), jobs.size());
    writer.close();
  }
  TraceReader reader(path);
  TraceReplayer replayer(2, stream_config(2, 2, 64, 12.0));
  expect_identical(direct, replayer.replay(reader));
}

TEST(SilentDoneReplay, AuditTrailOfInjectedRunCarriesTheInjection) {
  // Recording a failure-injected replay must capture the injections too
  // (StreamObserver::on_inject), so the audit trail reproduces the run.
  const Point p{1, 1};
  const CubePairing pairing(2, Point{0, 0}, 4);
  const Point home = pairing.primary(p);
  const std::string faulty = temp_path("audit_faulty_src.trace");
  {
    TraceWriter writer(faulty, 2, kTraceVersionV2);
    writer.append_event(silent_done_event(home));
    for (std::int64_t k = 0; k < 40; ++k) writer.append(Job{p, k});
    writer.close();
  }
  const std::string audit = temp_path("audit_faulty.trace");
  StreamResult original;
  {
    TraceReader reader(faulty);
    TraceReplayer replayer(2, stream_config(2, 2, 64, 12.0));
    OutcomeRecorder recorder(audit, 2);
    replayer.set_observer(&recorder);
    original = replayer.replay(reader);
    recorder.close();
  }
  ASSERT_GT(original.metrics.monitor_initiations, 0u);  // injection bit

  TraceReader trail(audit);
  EXPECT_TRUE(trail.has_outcomes());
  EXPECT_TRUE(trail.has_failure_events());
  TraceReplayer replayer(2, stream_config(2, 2, 64, 12.0));
  expect_identical(original, replayer.replay(trail));
}

TEST(SilentDoneReplay, CountersAndSpansSurviveRecordedReplayBitIdentical) {
  // A counters-on (and spans-on) run with a mid-stream injection must be
  // bit-identical to replaying its own audit trail: expect_identical
  // covers CubeCounters (Tier-A counts plus the Tier-C span totals), and
  // the exported span spool must match byte for byte — the injection
  // lands between the same two arrivals of its cube's subsequence on
  // both sides.
  // Point burst (the MarkerForcesRingRecovery setup): the serving
  // vehicle is still alive when the marker lands mid-stream, then
  // exhausts silently, so only the ring can recover it.
  const Point p{1, 1};
  const Point home = CubePairing(2, Point{0, 0}, 4).primary(p);
  std::vector<Job> jobs;
  for (std::int64_t k = 0; k < 60; ++k) jobs.push_back(Job{p, k});
  StreamConfig cfg = stream_config(2, 2, 16, /*capacity=*/12.0);
  cfg.online.obs.counters = true;
  cfg.online.obs.spans = true;

  const std::string audit = temp_path("counters_inject.trace");
  StreamResult original;
  std::string original_spool;
  {
    StreamEngine engine(2, cfg);
    OutcomeRecorder recorder(audit, 2);
    engine.set_observer(&recorder);
    // Inject mid-stream but before the primary exhausts, so the marker
    // hits the vehicle that is still serving.
    engine.ingest(jobs.data(), 4);
    engine.inject_silent_done(home);
    engine.ingest(jobs.data() + 4, jobs.size() - 4);
    original = engine.finish();
    recorder.close();
    std::ostringstream spool;
    write_span_spool(spool, 2, engine.span_sources());
    original_spool = spool.str();
  }
  ASSERT_GT(original.counters.replacements, 0u);
  ASSERT_GT(original.counters.spans_emitted, 0u);
  ASSERT_GT(original.metrics.monitor_initiations, 0u);  // injection bit

  TraceReader trail(audit);
  TraceReplayer replayer(2, cfg);
  const StreamResult replayed = replayer.replay(trail);
  expect_identical(original, replayed);
  std::ostringstream replay_spool;
  write_span_spool(replay_spool, 2, replayer.engine().span_sources());
  EXPECT_EQ(original_spool, replay_spool.str());
}

// --- amortized monitoring: the stride contract ------------------------------

TEST(MonitorStride, OutcomePreservedAndHeartbeatsAmortized) {
  const auto jobs = hotspot_jobs(1500);
  const StreamResult per_arrival =
      serve_stream(2, stream_config(2, 1, 256, 24.0, /*stride=*/1), jobs);
  const StreamResult amortized =
      serve_stream(2, stream_config(2, 1, 256, 24.0, /*stride=*/16), jobs);
  // Service outcome is stride-invariant on failure-free monitoring
  // (heartbeats are protocol no-ops)...
  EXPECT_EQ(per_arrival.served_jobs, amortized.served_jobs);
  EXPECT_EQ(per_arrival.failed_jobs, amortized.failed_jobs);
  // ...while the ring traffic drops by roughly the stride.
  EXPECT_LT(amortized.metrics.network.heartbeats * 4,
            per_arrival.metrics.network.heartbeats);
}

TEST(MonitorStride, BitIdenticalAcrossThreadsAndBatchesAtAnyStride) {
  const auto jobs = hotspot_jobs(1200);
  for (const std::int64_t stride : {4, 16}) {
    const StreamResult reference =
        serve_stream(2, stream_config(2, 1, 256, 24.0, stride), jobs);
    for (const int threads : {2, 8})
      expect_identical(reference, serve_stream(
          2, stream_config(2, threads, 256, 24.0, stride), jobs));
    for (const std::int64_t batch : {33, 1000})
      expect_identical(reference, serve_stream(
          2, stream_config(2, 2, batch, 24.0, stride), jobs));
  }
}

TEST(MonitorStride, InvalidStrideRejected) {
  const std::vector<Job> jobs = {Job{Point{1, 1}, 0}};
  StreamConfig cfg = stream_config(2, 1);
  cfg.online.monitor_stride = 0;
  EXPECT_THROW(serve_stream(2, cfg, jobs), check_error);
}

}  // namespace
}  // namespace cmvrp
