#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "flow/min_cost_flow.h"
#include "flow/transportation.h"
#include "grid/demand_map.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

TEST(Dinic, SimplePath) {
  Dinic g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 3);
  EXPECT_EQ(g.max_flow(0, 2), 3);
}

TEST(Dinic, ClassicDiamond) {
  Dinic g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(0, 2, 10);
  g.add_edge(1, 3, 10);
  g.add_edge(2, 3, 10);
  const auto e = g.add_edge(1, 2, 1);
  EXPECT_EQ(g.max_flow(0, 3), 20);
  EXPECT_EQ(g.flow_on(e), 0);  // cross edge unused at optimum
}

TEST(Dinic, RespectsBottleneck) {
  Dinic g(6);
  g.add_edge(0, 1, 16);
  g.add_edge(0, 2, 13);
  g.add_edge(1, 3, 12);
  g.add_edge(2, 1, 4);
  g.add_edge(3, 2, 9);
  g.add_edge(2, 4, 14);
  g.add_edge(4, 3, 7);
  g.add_edge(3, 5, 20);
  g.add_edge(4, 5, 4);
  EXPECT_EQ(g.max_flow(0, 5), 23);  // CLRS example
}

TEST(Dinic, MinCutSeparatesSourceSide) {
  Dinic g(4);
  g.add_edge(0, 1, 100);
  g.add_edge(1, 2, 1);  // the cut
  g.add_edge(2, 3, 100);
  EXPECT_EQ(g.max_flow(0, 3), 1);
  const auto side = g.min_cut_side();
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(Dinic, FlowConservationRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const std::size_t n = 8;
    Dinic g(n);
    std::vector<std::size_t> ids;
    std::vector<std::pair<std::size_t, std::size_t>> ends;
    for (int e = 0; e < 20; ++e) {
      std::size_t u = rng.next_below(n), v = rng.next_below(n);
      if (u == v) continue;
      ids.push_back(g.add_edge(u, v, rng.next_int(0, 10)));
      ends.emplace_back(u, v);
    }
    g.max_flow(0, n - 1);
    // Net flow at internal nodes must vanish.
    std::vector<std::int64_t> net(n, 0);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto f = g.flow_on(ids[i]);
      EXPECT_GE(f, 0);
      EXPECT_LE(f, g.capacity_on(ids[i]));
      net[ends[i].first] -= f;
      net[ends[i].second] += f;
    }
    for (std::size_t v = 1; v + 1 < n; ++v) EXPECT_EQ(net[v], 0);
    EXPECT_EQ(net[0], -net[n - 1]);
  }
}

TEST(MinCostFlow, PrefersCheapPath) {
  MinCostFlow g(4);
  g.add_edge(0, 1, 10, 1);
  g.add_edge(1, 3, 10, 1);
  g.add_edge(0, 2, 10, 5);
  g.add_edge(2, 3, 10, 5);
  const auto r = g.min_cost_flow(0, 3, 15);
  EXPECT_EQ(r.flow, 15);
  EXPECT_EQ(r.cost, 10 * 2 + 5 * 10);
}

TEST(MinCostFlow, RespectsLimit) {
  MinCostFlow g(2);
  g.add_edge(0, 1, 100, 3);
  const auto r = g.min_cost_flow(0, 1, 7);
  EXPECT_EQ(r.flow, 7);
  EXPECT_EQ(r.cost, 21);
}

TEST(Transportation, SinglePointNeedsFullDemandAtRadiusZero) {
  DemandMap d(2);
  d.set(Point{0, 0}, 5.0);
  EXPECT_FALSE(transportation_feasible(d, 0, 4.9).feasible);
  EXPECT_TRUE(transportation_feasible(d, 0, 5.0).feasible);
}

TEST(Transportation, RadiusSpreadsLoad) {
  DemandMap d(2);
  d.set(Point{0, 0}, 5.0);
  // radius 1: 5 suppliers (the L1 ball) each need only 1 unit.
  EXPECT_TRUE(transportation_feasible(d, 1, 1.0).feasible);
  EXPECT_FALSE(transportation_feasible(d, 1, 0.9).feasible);
}

TEST(Transportation, PlanCoversDemands) {
  DemandMap d(2);
  d.set(Point{0, 0}, 3.0);
  d.set(Point{2, 0}, 2.0);
  const auto r = transportation_feasible(d, 1, 1.0);
  ASSERT_TRUE(r.feasible);
  DemandMap covered(2);
  for (const auto& e : r.plan) {
    EXPECT_LE(l1_distance(e.from, e.to), 1);
    covered.add(e.to, e.amount);
  }
  EXPECT_NEAR(covered.at(Point{0, 0}), 3.0, 1e-5);
  EXPECT_NEAR(covered.at(Point{2, 0}), 2.0, 1e-5);
}

TEST(Transportation, MinOmegaMatchesBallRatio) {
  // Single point of demand D at radius r: minimal omega is D / |N_r|.
  DemandMap d(2);
  d.set(Point{0, 0}, 130.0);
  const double expected = 130.0 / 13.0;  // |N_2| = 13 in 2-D
  EXPECT_NEAR(min_feasible_omega(d, 2), expected, 1e-4);
}

TEST(Transportation, MinOmegaMonotoneInRadius) {
  Rng rng(99);
  DemandMap d(2);
  for (int i = 0; i < 6; ++i)
    d.add(Point{rng.next_int(0, 4), rng.next_int(0, 4)},
          static_cast<double>(rng.next_int(1, 9)));
  double prev = 1e300;
  for (std::int64_t r = 0; r <= 4; ++r) {
    const double v = min_feasible_omega(d, r, 1e-5);
    EXPECT_LE(v, prev + 1e-4);
    prev = v;
  }
}

}  // namespace
}  // namespace cmvrp
