#include <gtest/gtest.h>

#include "online/capacity_search.h"
#include "online/simulation.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

OnlineConfig small_config(double capacity, std::int64_t side = 4,
                          std::uint64_t seed = 1) {
  OnlineConfig c;
  c.capacity = capacity;
  c.cube_side = side;
  c.anchor = Point{0, 0};
  c.seed = seed;
  return c;
}

// --- event queue / network substrate ----------------------------------------

TEST(EventQueue, FiresInTimeThenInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(2); });
  q.schedule(1, [&] { order.push_back(0); });
  q.schedule(5, [&] { order.push_back(3); });
  q.schedule(2, [&] { order.push_back(1); });
  q.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), 5);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(10, [] {});
  q.step();
  EXPECT_THROW(q.schedule(5, [] {}), check_error);
}

TEST(EventQueue, DetectsLivelock) {
  EventQueue q;
  std::function<void()> reschedule = [&] {
    q.schedule_after(1, reschedule);
  };
  q.schedule(0, reschedule);
  EXPECT_THROW(q.run_to_quiescence(1000), check_error);
}

TEST(Network, ChannelsAreFifo) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EventQueue q;
    Network net(q, Rng(seed), /*max_delay=*/7);
    std::vector<std::uint64_t> received;
    net.set_receiver([&](std::size_t, std::size_t, const Message& m) {
      received.push_back(std::get<ReplyMsg>(m).init.seq);
    });
    for (std::uint64_t i = 0; i < 30; ++i)
      net.send(0, 1, ReplyMsg{true, InitTag{0, i}});
    q.run_to_quiescence();
    ASSERT_EQ(received.size(), 30u);
    EXPECT_TRUE(std::is_sorted(received.begin(), received.end()))
        << "seed " << seed;
  }
}

TEST(Network, CountsByKind) {
  EventQueue q;
  Network net(q, Rng(3), 2);
  net.set_receiver([](std::size_t, std::size_t, const Message&) {});
  net.send(0, 1, QueryMsg{});
  net.send(1, 0, ReplyMsg{});
  net.send(0, 2, MoveMsg{Point{0, 0}, kNoInit});
  net.send(2, 0, ExistingMsg{});
  q.run_to_quiescence();
  EXPECT_EQ(net.stats().queries, 1u);
  EXPECT_EQ(net.stats().replies, 1u);
  EXPECT_EQ(net.stats().moves, 1u);
  EXPECT_EQ(net.stats().heartbeats, 1u);
  EXPECT_EQ(net.stats().total(), 4u);
}

// --- basic serving ------------------------------------------------------------

TEST(OnlineSim, ServesSingleJobInPlace) {
  OnlineSimulation sim(2, small_config(10.0));
  // Job lands on a primary vertex: its own active vehicle serves at cost 1.
  std::vector<Job> jobs{{Point{0, 0}, 0}};
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 1u);
  EXPECT_EQ(sim.metrics().jobs_failed, 0u);
  EXPECT_DOUBLE_EQ(sim.metrics().max_energy_spent, 1.0);
}

TEST(OnlineSim, PartnerVertexServedByPairActive) {
  OnlineSimulation sim(2, small_config(10.0));
  const auto& pairing = sim.pairing();
  // Find a non-primary vertex in the first cube.
  Point secondary = Point{0, 0};
  Box::cube(Point{0, 0}, 4).for_each_point([&](const Point& p) {
    if (!pairing.is_primary(p)) secondary = p;
  });
  ASSERT_FALSE(pairing.is_primary(secondary));
  std::vector<Job> jobs{{secondary, 0}};
  EXPECT_TRUE(sim.run(jobs));
  // One walk (1) + one service (1).
  EXPECT_DOUBLE_EQ(sim.metrics().max_energy_spent, 2.0);
  EXPECT_EQ(sim.metrics().total_travel, 1u);
}

TEST(OnlineSim, ManyJobsNoReplacementNeededUnderLightLoad) {
  OnlineSimulation sim(2, small_config(100.0));
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back({Point{1, 1}, i});
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().replacements, 0u);
  EXPECT_EQ(sim.metrics().computations_started, 0u);
}

// --- diffusing computation & replacement ------------------------------------

TEST(OnlineSim, ExhaustedVehicleIsReplacedByIdlePartnerPool) {
  // Capacity 6: after ~5 services at one vertex the vehicle declares done
  // (remaining < 2) and a diffusing computation must find an idle vehicle.
  OnlineSimulation sim(2, small_config(6.0));
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back({Point{0, 0}, i});
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 10u);
  EXPECT_GE(sim.metrics().computations_started, 1u);
  EXPECT_GE(sim.metrics().replacements, 1u);
  EXPECT_GT(sim.metrics().network.queries, 0u);
  EXPECT_GT(sim.metrics().network.replies, 0u);
  EXPECT_GT(sim.metrics().network.moves, 0u);
}

TEST(OnlineSim, ReplacementChainSurvivesManyExhaustions) {
  // Heavy point demand cycles through many replacements; a 6x6 cube has 18
  // idle vehicles to recruit, each arriving with capacity minus travel.
  OnlineSimulation sim(2, small_config(8.0, /*side=*/6));
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i) jobs.push_back({Point{2, 2}, i});
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 40u);
  EXPECT_GE(sim.metrics().replacements, 5u);
}

TEST(OnlineSim, PointDemandBeyondReachableEnergyFailsGracefully) {
  // The same cube cannot serve 60 point jobs at capacity 6: recruited
  // idle vehicles burn most of their energy traveling. The simulation
  // must report failure (never serve beyond physical energy), not hang.
  OnlineSimulation sim(2, small_config(6.0, /*side=*/6));
  std::vector<Job> jobs;
  for (int i = 0; i < 60; ++i) jobs.push_back({Point{2, 2}, i});
  EXPECT_FALSE(sim.run(jobs));
  const auto& m = sim.metrics();
  EXPECT_EQ(m.jobs_served + m.jobs_failed, 60u);
  // Served work is bounded by total spendable energy in the cube.
  EXPECT_LE(m.total_energy_spent, 36.0 * 6.0 + 1e-9);
}

TEST(OnlineSim, FailsWhenCubeExhausted) {
  // Tiny cube (4 vehicles) and much demand: eventually no idle vehicles
  // remain and jobs must fail — reported, not thrown.
  OnlineSimulation sim(2, small_config(4.0, /*side=*/2));
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i) jobs.push_back({Point{0, 0}, i});
  EXPECT_FALSE(sim.run(jobs));
  EXPECT_GT(sim.metrics().jobs_failed, 0u);
  EXPECT_GT(sim.metrics().computations_failed, 0u);
}

TEST(OnlineSim, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    OnlineSimulation sim(2, small_config(6.0, 4, seed));
    std::vector<Job> jobs;
    for (int i = 0; i < 20; ++i) jobs.push_back({Point{i % 3, i % 2}, i});
    sim.run(jobs);
    return sim.metrics();
  };
  const auto a = run_once(42), b = run_once(42), c = run_once(43);
  EXPECT_EQ(a.network.total(), b.network.total());
  EXPECT_EQ(a.replacements, b.replacements);
  EXPECT_DOUBLE_EQ(a.max_energy_spent, b.max_energy_spent);
  // Different seed still serves everything (delays only affect ordering).
  EXPECT_EQ(c.jobs_served, a.jobs_served);
}

TEST(OnlineSim, MessageDelaysDoNotChangeServiceOutcome) {
  for (SimTime delay : {0, 1, 5, 17}) {
    OnlineConfig cfg = small_config(6.0, 4, 7);
    cfg.max_message_delay = delay;
    OnlineSimulation sim(2, cfg);
    std::vector<Job> jobs;
    for (int i = 0; i < 15; ++i) jobs.push_back({Point{0, 0}, i});
    EXPECT_TRUE(sim.run(jobs)) << "delay " << delay;
    EXPECT_EQ(sim.metrics().jobs_served, 15u);
  }
}

TEST(OnlineSim, DiffusingComputationMessageComplexityBounded) {
  // Each Phase I computation floods one cube: queries are bounded by
  // (#vehicles in cube) x (max degree at radius 2) and every query gets
  // exactly one reply. Check the aggregate bound over a heavy run.
  const std::int64_t side = 5;
  OnlineSimulation sim(2, small_config(6.0, side));
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i) jobs.push_back({Point{2, 2}, i});
  sim.run(jobs);
  const auto& m = sim.metrics();
  ASSERT_GT(m.computations_started, 0u);
  const std::uint64_t cube_vehicles =
      static_cast<std::uint64_t>(side * side);
  const std::uint64_t max_degree = 12;  // |N_2| - 1 in 2-D
  EXPECT_LE(m.network.queries,
            m.computations_started * cube_vehicles * max_degree);
  EXPECT_EQ(m.network.replies, m.network.queries);  // one reply per query
  EXPECT_LE(m.network.moves,
            m.replacements + m.computations_started * cube_vehicles);
}

TEST(OnlineSim, EveryReplacementHasAComputation) {
  OnlineSimulation sim(2, small_config(6.0, 6));
  std::vector<Job> jobs;
  for (int i = 0; i < 30; ++i) jobs.push_back({Point{1, 1}, i});
  sim.run(jobs);
  const auto& m = sim.metrics();
  EXPECT_LE(m.replacements, m.computations_started);
  EXPECT_EQ(m.computations_started,
            m.replacements + m.computations_failed);
}

// --- failure scenarios (§3.2.5) ----------------------------------------------

TEST(OnlineSim, SilentDoneVehicleIsRescuedByMonitoringRing) {
  OnlineConfig cfg = small_config(6.0);
  OnlineSimulation sim(2, cfg);
  sim.inject_silent_done(Point{0, 0});
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back({Point{0, 0}, i});
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 12u);
  EXPECT_GE(sim.metrics().monitor_initiations, 1u);  // the ring stepped in
  EXPECT_GT(sim.metrics().network.heartbeats, 0u);
}

TEST(OnlineSim, SilentDoneWithoutMonitoringLosesJobs) {
  OnlineConfig cfg = small_config(6.0);
  cfg.enable_monitoring = false;
  OnlineSimulation sim(2, cfg);
  sim.inject_silent_done(Point{0, 0});
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back({Point{0, 0}, i});
  EXPECT_FALSE(sim.run(jobs));
  EXPECT_GT(sim.metrics().jobs_failed, 0u);
}

TEST(OnlineSim, BrokenActiveVehicleIsReplaced) {
  OnlineConfig cfg = small_config(20.0);
  OnlineSimulation sim(2, cfg);
  // Vehicle at (0,0) breaks after spending 20% of its capacity.
  sim.inject_break_after(Point{0, 0}, 0.2);
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back({Point{0, 0}, i});
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 12u);
  EXPECT_GE(sim.metrics().monitor_initiations, 1u);
  const Vehicle* broken = sim.vehicle_at_home(Point{0, 0});
  ASSERT_NE(broken, nullptr);
  EXPECT_TRUE(broken->dead);
  EXPECT_LE(broken->spent(), 0.2 * 20.0 + 2.0);  // stopped promptly
}

TEST(OnlineSim, ZeroLongevityVehicleReplacedBeforeFirstJob) {
  // p_i = 0 vehicles are dead from the start; the periodic heartbeat round
  // detects this before the first arrival, so no job is lost.
  OnlineConfig cfg = small_config(20.0);
  OnlineSimulation sim(2, cfg);
  sim.inject_break_after(Point{0, 0}, 0.0);
  std::vector<Job> jobs{{Point{0, 0}, 0}, {Point{0, 0}, 1}};
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 2u);
  EXPECT_GE(sim.metrics().monitor_initiations, 1u);
  const Vehicle* v = sim.vehicle_at_home(Point{0, 0});
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->spent(), 0.0);  // the broken vehicle never worked
}

TEST(OnlineSim, ConstantBreakagesToleratedWithModestEnergy) {
  // Scenario 3: a constant number of active vehicles break; the ring
  // replaces them and all jobs are still served.
  OnlineConfig cfg = small_config(12.0, /*side=*/6);
  OnlineSimulation sim(2, cfg);
  sim.inject_break_after(Point{0, 0}, 0.3);
  sim.inject_break_after(Point{2, 2}, 0.3);
  sim.inject_break_after(Point{4, 4}, 0.3);
  Rng rng(5);
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i)
    jobs.push_back({Point{rng.next_int(0, 5), rng.next_int(0, 5)}, i});
  EXPECT_TRUE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 40u);
}

// --- capacity search / Theorem 1.4.2 ----------------------------------------

TEST(CapacitySearch, TheoryBoundAlwaysSuffices) {
  Rng rng(11);
  const Box box(Point{0, 0}, Point{7, 7});
  const DemandMap d = uniform_demand(box, 60, rng);
  Rng order_rng(12);
  const auto jobs = stream_from_demand(d, ArrivalOrder::kShuffled, order_rng);
  const OnlineConfig cfg = default_online_config(d);
  OnlineSimulation sim(2, cfg);
  EXPECT_TRUE(sim.run(jobs));  // Lemma 3.3.1 capacity worked
}

TEST(CapacitySearch, EmpiricalWonBetweenLowerAndTheoremBound) {
  Rng rng(21);
  const Box box(Point{0, 0}, Point{5, 5});
  const DemandMap d = uniform_demand(box, 40, rng);
  Rng order_rng(22);
  const auto jobs = stream_from_demand(d, ArrivalOrder::kShuffled, order_rng);
  const auto r = find_min_online_capacity(jobs, 2, /*seed=*/1, /*tol=*/0.1);
  EXPECT_GT(r.won_empirical, 0.0);
  EXPECT_LE(r.won_empirical, r.won_theory + 0.1);
  // Won >= Woff >= omega_c up to the unit granularity of serving.
  EXPECT_GE(r.won_empirical + 1e-9, std::min(1.0, r.omega_c));
  EXPECT_GT(r.simulations, 3u);
}

TEST(CapacitySearch, DefaultConfigUsesCubeBound) {
  DemandMap d(2);
  d.set(Point{0, 0}, 45.0);
  const OnlineConfig cfg = default_online_config(d);
  EXPECT_GE(cfg.cube_side, 2);
  EXPECT_GT(cfg.capacity, 0.0);
  EXPECT_EQ(cfg.anchor, (Point{0, 0}));
}

TEST(WonUpperBound, MatchesLemmaFormula) {
  EXPECT_DOUBLE_EQ(won_upper_bound(1.0, 2), 38.0);   // 4·9 + 2
  EXPECT_DOUBLE_EQ(won_upper_bound(2.0, 1), 26.0);   // (4·3 + 1)·2
  EXPECT_DOUBLE_EQ(won_upper_bound(1.0, 3), 111.0);  // 4·27 + 3
}

}  // namespace
}  // namespace cmvrp
