#include <gtest/gtest.h>

#include "online/capacity_search.h"
#include "util/rng.h"
#include "vrp/cvrp.h"
#include "vrp/greedy_baseline.h"
#include "vrp/tsp.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

std::vector<Point> random_points(std::uint64_t seed, std::size_t n,
                                 std::int64_t span) {
  Rng rng(seed);
  std::vector<Point> pts;
  PointSet seen;
  while (pts.size() < n) {
    const Point p{rng.next_int(0, span), rng.next_int(0, span)};
    if (seen.insert(p).second) pts.push_back(p);
  }
  return pts;
}

TEST(Tsp, TourLengthClosedSquare) {
  const std::vector<Point> pts{Point{0, 0}, Point{1, 0}, Point{1, 1},
                               Point{0, 1}};
  EXPECT_EQ(tour_length(pts, {0, 1, 2, 3}), 4);
  EXPECT_EQ(tour_length(pts, {0, 2, 1, 3}), 6);
}

TEST(Tsp, NearestNeighborVisitsAllOnce) {
  const auto pts = random_points(3, 12, 20);
  const Tour t = tsp_nearest_neighbor(pts);
  std::vector<bool> seen(pts.size(), false);
  for (auto i : t.order) {
    ASSERT_LT(i, pts.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  EXPECT_EQ(t.length, tour_length(pts, t.order));
}

TEST(Tsp, TwoOptNeverWorsens) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(seed, 15, 30);
    const Tour nn = tsp_nearest_neighbor(pts);
    const Tour improved = tsp_two_opt(pts, nn);
    EXPECT_LE(improved.length, nn.length) << "seed " << seed;
    EXPECT_EQ(improved.length, tour_length(pts, improved.order));
  }
}

TEST(Tsp, HeldKarpIsOptimalReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pts = random_points(seed * 7, 9, 12);
    const Tour exact = tsp_held_karp(pts);
    const Tour heuristic = tsp_two_opt(pts, tsp_nearest_neighbor(pts));
    EXPECT_LE(exact.length, heuristic.length) << "seed " << seed;
    EXPECT_EQ(exact.length, tour_length(pts, exact.order));
    // 2-opt on small L1 instances lands close to optimal.
    EXPECT_LE(heuristic.length, exact.length * 3 / 2 + 2) << "seed " << seed;
  }
}

TEST(Cvrp, ClarkeWrightProducesValidRoutes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 13);
    CvrpInstance inst;
    inst.depot = Point{0, 0};
    inst.vehicle_capacity = 10.0;
    const auto pts = random_points(seed, 14, 16);
    for (const auto& p : pts) {
      inst.customers.push_back(p);
      inst.demands.push_back(static_cast<double>(rng.next_int(1, 5)));
    }
    const auto sol = clarke_wright(inst);
    EXPECT_TRUE(cvrp_solution_valid(inst, sol)) << "seed " << seed;
  }
}

TEST(Cvrp, MergesReduceRouteCount) {
  // Customers clustered together with small demands should share routes.
  CvrpInstance inst;
  inst.depot = Point{0, 0};
  inst.vehicle_capacity = 100.0;
  for (int i = 0; i < 6; ++i) {
    inst.customers.push_back(Point{20 + i, 20});
    inst.demands.push_back(1.0);
  }
  const auto sol = clarke_wright(inst);
  ASSERT_TRUE(cvrp_solution_valid(inst, sol));
  EXPECT_EQ(sol.routes.size(), 1u);  // all merged into one run
}

TEST(Cvrp, CapacityForcesSplit) {
  CvrpInstance inst;
  inst.depot = Point{0, 0};
  inst.vehicle_capacity = 2.0;
  for (int i = 0; i < 4; ++i) {
    inst.customers.push_back(Point{5 + i, 5});
    inst.demands.push_back(1.0);
  }
  const auto sol = clarke_wright(inst);
  ASSERT_TRUE(cvrp_solution_valid(inst, sol));
  EXPECT_GE(sol.routes.size(), 2u);
}

TEST(Cvrp, RejectsOversizedCustomer) {
  CvrpInstance inst;
  inst.depot = Point{0, 0};
  inst.vehicle_capacity = 1.0;
  inst.customers.push_back(Point{1, 1});
  inst.demands.push_back(5.0);
  EXPECT_THROW(clarke_wright(inst), check_error);
}

TEST(Greedy, ServesLightLoadCheaply) {
  const Box region(Point{0, 0}, Point{7, 7});
  std::vector<Job> jobs{{Point{3, 3}, 0}, {Point{4, 4}, 1}};
  const auto r = run_greedy_baseline(region, 2.0, jobs);
  EXPECT_TRUE(r.all_served);
  EXPECT_DOUBLE_EQ(r.max_energy_spent, 1.0);  // nearest vehicles in place
}

TEST(Greedy, MinCapacityFindsThreshold) {
  const Box region(Point{0, 0}, Point{5, 5});
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) jobs.push_back({Point{2, 2}, i});
  const double w = greedy_min_capacity(region, jobs);
  // Sanity: capacity must lie between 1 (one job each, zero travel is
  // impossible for all) and a crude upper bound.
  EXPECT_GT(w, 1.0);
  EXPECT_LT(w, 21.0);
  EXPECT_TRUE(run_greedy_baseline(region, w, jobs).all_served);
  EXPECT_FALSE(run_greedy_baseline(region, w - 0.2, jobs).all_served);
}

TEST(Greedy, ComparableOrderToDistributedStrategy) {
  // Both serve the same stream; the centralized greedy with global
  // knowledge should not need wildly more capacity than the paper's
  // strategy bound — they agree up to constants (context check, not a
  // theorem from the paper).
  Rng rng(17);
  const Box region(Point{0, 0}, Point{7, 7});
  const DemandMap d = uniform_demand(region, 48, rng);
  Rng order(18);
  const auto jobs = stream_from_demand(d, ArrivalOrder::kShuffled, order);
  const double greedy_w = greedy_min_capacity(region, jobs, 0.1);
  const auto strategy = find_min_online_capacity(jobs, 2, 1, 0.1);
  EXPECT_GT(greedy_w, 0.0);
  EXPECT_GT(strategy.won_empirical, 0.0);
  EXPECT_LT(greedy_w / strategy.won_empirical, 50.0);
  EXPECT_LT(strategy.won_empirical / std::max(greedy_w, 1e-9), 50.0);
}

}  // namespace
}  // namespace cmvrp
