#include <gtest/gtest.h>

#include <vector>

#include "workload/generators.h"
#include "workload/stream_gen.h"

namespace cmvrp {
namespace {

TEST(Workload, SquareDemandShape) {
  const DemandMap d = square_demand(3, 2.0, Point{1, 1});
  EXPECT_EQ(d.support_size(), 9u);
  EXPECT_DOUBLE_EQ(d.total(), 18.0);
  EXPECT_DOUBLE_EQ(d.at(Point{1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(d.at(Point{3, 3}), 2.0);
  EXPECT_DOUBLE_EQ(d.at(Point{0, 0}), 0.0);
}

TEST(Workload, LineDemandShape) {
  const DemandMap d = line_demand(5, 3.0, Point{2, 7});
  EXPECT_EQ(d.support_size(), 5u);
  EXPECT_DOUBLE_EQ(d.at(Point{6, 7}), 3.0);
  EXPECT_DOUBLE_EQ(d.at(Point{7, 7}), 0.0);
  const Box bb = d.bounding_box();
  EXPECT_EQ(bb.side(0), 5);
  EXPECT_EQ(bb.side(1), 1);
}

TEST(Workload, UniformDemandCount) {
  Rng rng(3);
  const Box box(Point{0, 0}, Point{9, 9});
  const DemandMap d = uniform_demand(box, 100, rng);
  EXPECT_DOUBLE_EQ(d.total(), 100.0);
  for (const auto& p : d.support()) EXPECT_TRUE(box.contains(p));
}

TEST(Workload, ClusteredDemandStaysInBox) {
  Rng rng(5);
  const Box box(Point{0, 0}, Point{20, 20});
  const DemandMap d = clustered_demand(box, 3, 200, 2.0, rng);
  EXPECT_DOUBLE_EQ(d.total(), 200.0);
  for (const auto& p : d.support()) EXPECT_TRUE(box.contains(p));
}

TEST(Workload, RidgeDemandDecays) {
  Rng rng(7);
  const Box box(Point{0, 0}, Point{15, 15});
  const DemandMap d = ridge_demand(box, 9.0, rng);
  EXPECT_GT(d.total(), 0.0);
  EXPECT_LE(d.max_demand(), 9.0);
}

TEST(Workload, StreamFromDemandPreservesCounts) {
  DemandMap d(2);
  d.set(Point{0, 0}, 3.0);
  d.set(Point{1, 2}, 2.0);
  Rng rng(11);
  for (auto order : {ArrivalOrder::kSorted, ArrivalOrder::kShuffled,
                     ArrivalOrder::kRoundRobin}) {
    const auto jobs = stream_from_demand(d, order, rng);
    EXPECT_EQ(jobs.size(), 5u);
    const DemandMap back = demand_of_stream(jobs, 2);
    EXPECT_DOUBLE_EQ(back.at(Point{0, 0}), 3.0);
    EXPECT_DOUBLE_EQ(back.at(Point{1, 2}), 2.0);
    for (std::size_t i = 0; i < jobs.size(); ++i)
      EXPECT_EQ(jobs[i].index, static_cast<std::int64_t>(i));
  }
}

TEST(Workload, RoundRobinInterleaves) {
  DemandMap d(2);
  d.set(Point{0, 0}, 2.0);
  d.set(Point{5, 5}, 2.0);
  Rng rng(13);
  const auto jobs = stream_from_demand(d, ArrivalOrder::kRoundRobin, rng);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].position, (Point{0, 0}));
  EXPECT_EQ(jobs[1].position, (Point{5, 5}));
  EXPECT_EQ(jobs[2].position, (Point{0, 0}));
  EXPECT_EQ(jobs[3].position, (Point{5, 5}));
}

TEST(Workload, StreamRejectsFractionalDemand) {
  DemandMap d(2);
  d.set(Point{0, 0}, 1.5);
  Rng rng(17);
  EXPECT_THROW(stream_from_demand(d, ArrivalOrder::kSorted, rng),
               check_error);
}

TEST(Workload, SmartDustStreamStaysInBoxAndIsDeterministic) {
  const Box box(Point{0, 0}, Point{31, 31});
  Rng rng1(23), rng2(23);
  const auto a = smart_dust_stream(box, 500, 0.05, rng1);
  const auto b = smart_dust_stream(box, 500, 0.05, rng2);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(box.contains(a[i].position));
    EXPECT_EQ(a[i].position, b[i].position);
  }
}

TEST(Workload, AlternatingStream) {
  const auto jobs = alternating_stream(Point{0, 0}, Point{4, 0}, 5);
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].position, (Point{0, 0}));
  EXPECT_EQ(jobs[1].position, (Point{4, 0}));
  EXPECT_EQ(jobs[4].position, (Point{0, 0}));
}

// --- streaming adversarial generators (stream_gen.h) ------------------------

// The cube grid cell of p for origin-anchored cubes of side s.
std::int64_t cube_cell(const Point& p, int axis, std::int64_t side) {
  return p[axis] / side;  // all generator coordinates are nonnegative
}

bool same_cube(const Point& a, const Point& b, std::int64_t side) {
  for (int i = 0; i < a.dim(); ++i)
    if (cube_cell(a, i, side) != cube_cell(b, i, side)) return false;
  return true;
}

TEST(StreamGen, BoundaryRoundRobinAlternatesCubes) {
  for (const int dim : {2, 3, 4}) {
    const auto jobs = collect_jobs([dim](const JobSink& sink) {
      boundary_round_robin_stream(dim, 4, 3, 60, sink);
    });
    ASSERT_EQ(jobs.size(), 60u);
    const Box box = Box::cube(Point::origin(dim), 3 * 4);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(jobs[i].position.dim(), dim);
      EXPECT_EQ(jobs[i].index, static_cast<std::int64_t>(i));
      EXPECT_TRUE(box.contains(jobs[i].position));
      // Consecutive arrivals never share a cube — the adversarial point.
      if (i > 0) {
        EXPECT_FALSE(same_cube(jobs[i - 1].position, jobs[i].position, 4))
            << "at arrival " << i;
      }
    }
  }
}

TEST(StreamGen, BurstyHotspotMigratesCubesBetweenBursts) {
  Rng rng(41);
  const auto jobs = collect_jobs([&rng](const JobSink& sink) {
    bursty_hotspot_stream(3, 4, 4, 200, 25, rng, sink);
  });
  ASSERT_EQ(jobs.size(), 200u);
  for (std::size_t burst = 0; burst * 25 < jobs.size(); ++burst) {
    const Point& hotspot = jobs[burst * 25].position;
    // Within a burst every arrival hits the hotspot...
    for (std::size_t k = 1; k < 25 && burst * 25 + k < jobs.size(); ++k)
      EXPECT_EQ(jobs[burst * 25 + k].position, hotspot);
    // ...and the next burst's hotspot sits in a different cube.
    if ((burst + 1) * 25 < jobs.size()) {
      EXPECT_FALSE(same_cube(hotspot, jobs[(burst + 1) * 25].position, 4));
    }
  }
}

TEST(StreamGen, DriftingGradientDriftsAcrossTheBox) {
  const Box box(Point{0, 0, 0, 0}, Point{11, 11, 11, 11});
  Rng rng(43);
  const auto jobs = collect_jobs([&box, &rng](const JobSink& sink) {
    drifting_gradient_stream(box, 400, 1.0, rng, sink);
  });
  ASSERT_EQ(jobs.size(), 400u);
  std::int64_t head = 0, tail = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(box.contains(jobs[i].position));
    EXPECT_EQ(jobs[i].index, static_cast<std::int64_t>(i));
    if (i < 50) head += jobs[i].position.l1_norm();
    if (i >= jobs.size() - 50) tail += jobs[i].position.l1_norm();
  }
  // The center drifts lo -> hi, so late arrivals sit far from the origin.
  EXPECT_GT(tail, head);
}

TEST(StreamGen, SinkOrderMatchesCollectedVectorAndIsDeterministic) {
  Rng rng1(47), rng2(47);
  std::vector<Job> direct;
  bursty_hotspot_stream(2, 4, 8, 150, 16, rng1,
                        [&direct](const Job& j) { direct.push_back(j); });
  const auto collected = collect_jobs([&rng2](const JobSink& sink) {
    bursty_hotspot_stream(2, 4, 8, 150, 16, rng2, sink);
  });
  ASSERT_EQ(direct.size(), collected.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].position, collected[i].position);
    EXPECT_EQ(direct[i].index, collected[i].index);
  }
}

TEST(StreamGen, RejectsBadParameters) {
  const auto sink = [](const Job&) {};
  EXPECT_THROW(boundary_round_robin_stream(5, 4, 3, 10, sink), check_error);
  EXPECT_THROW(boundary_round_robin_stream(2, 4, 1, 10, sink), check_error);
  Rng rng(1);
  EXPECT_THROW(bursty_hotspot_stream(2, 4, 3, 10, 0, rng, sink), check_error);
  EXPECT_THROW(drifting_gradient_stream(Box(Point{0, 0}, Point{3, 3}), 10,
                                        -1.0, rng, sink),
               check_error);
}

}  // namespace
}  // namespace cmvrp
