#include <gtest/gtest.h>

#include "workload/generators.h"

namespace cmvrp {
namespace {

TEST(Workload, SquareDemandShape) {
  const DemandMap d = square_demand(3, 2.0, Point{1, 1});
  EXPECT_EQ(d.support_size(), 9u);
  EXPECT_DOUBLE_EQ(d.total(), 18.0);
  EXPECT_DOUBLE_EQ(d.at(Point{1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(d.at(Point{3, 3}), 2.0);
  EXPECT_DOUBLE_EQ(d.at(Point{0, 0}), 0.0);
}

TEST(Workload, LineDemandShape) {
  const DemandMap d = line_demand(5, 3.0, Point{2, 7});
  EXPECT_EQ(d.support_size(), 5u);
  EXPECT_DOUBLE_EQ(d.at(Point{6, 7}), 3.0);
  EXPECT_DOUBLE_EQ(d.at(Point{7, 7}), 0.0);
  const Box bb = d.bounding_box();
  EXPECT_EQ(bb.side(0), 5);
  EXPECT_EQ(bb.side(1), 1);
}

TEST(Workload, UniformDemandCount) {
  Rng rng(3);
  const Box box(Point{0, 0}, Point{9, 9});
  const DemandMap d = uniform_demand(box, 100, rng);
  EXPECT_DOUBLE_EQ(d.total(), 100.0);
  for (const auto& p : d.support()) EXPECT_TRUE(box.contains(p));
}

TEST(Workload, ClusteredDemandStaysInBox) {
  Rng rng(5);
  const Box box(Point{0, 0}, Point{20, 20});
  const DemandMap d = clustered_demand(box, 3, 200, 2.0, rng);
  EXPECT_DOUBLE_EQ(d.total(), 200.0);
  for (const auto& p : d.support()) EXPECT_TRUE(box.contains(p));
}

TEST(Workload, RidgeDemandDecays) {
  Rng rng(7);
  const Box box(Point{0, 0}, Point{15, 15});
  const DemandMap d = ridge_demand(box, 9.0, rng);
  EXPECT_GT(d.total(), 0.0);
  EXPECT_LE(d.max_demand(), 9.0);
}

TEST(Workload, StreamFromDemandPreservesCounts) {
  DemandMap d(2);
  d.set(Point{0, 0}, 3.0);
  d.set(Point{1, 2}, 2.0);
  Rng rng(11);
  for (auto order : {ArrivalOrder::kSorted, ArrivalOrder::kShuffled,
                     ArrivalOrder::kRoundRobin}) {
    const auto jobs = stream_from_demand(d, order, rng);
    EXPECT_EQ(jobs.size(), 5u);
    const DemandMap back = demand_of_stream(jobs, 2);
    EXPECT_DOUBLE_EQ(back.at(Point{0, 0}), 3.0);
    EXPECT_DOUBLE_EQ(back.at(Point{1, 2}), 2.0);
    for (std::size_t i = 0; i < jobs.size(); ++i)
      EXPECT_EQ(jobs[i].index, static_cast<std::int64_t>(i));
  }
}

TEST(Workload, RoundRobinInterleaves) {
  DemandMap d(2);
  d.set(Point{0, 0}, 2.0);
  d.set(Point{5, 5}, 2.0);
  Rng rng(13);
  const auto jobs = stream_from_demand(d, ArrivalOrder::kRoundRobin, rng);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].position, (Point{0, 0}));
  EXPECT_EQ(jobs[1].position, (Point{5, 5}));
  EXPECT_EQ(jobs[2].position, (Point{0, 0}));
  EXPECT_EQ(jobs[3].position, (Point{5, 5}));
}

TEST(Workload, StreamRejectsFractionalDemand) {
  DemandMap d(2);
  d.set(Point{0, 0}, 1.5);
  Rng rng(17);
  EXPECT_THROW(stream_from_demand(d, ArrivalOrder::kSorted, rng),
               check_error);
}

TEST(Workload, SmartDustStreamStaysInBoxAndIsDeterministic) {
  const Box box(Point{0, 0}, Point{31, 31});
  Rng rng1(23), rng2(23);
  const auto a = smart_dust_stream(box, 500, 0.05, rng1);
  const auto b = smart_dust_stream(box, 500, 0.05, rng2);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(box.contains(a[i].position));
    EXPECT_EQ(a[i].position, b[i].position);
  }
}

TEST(Workload, AlternatingStream) {
  const auto jobs = alternating_stream(Point{0, 0}, Point{4, 0}, 5);
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].position, (Point{0, 0}));
  EXPECT_EQ(jobs[1].position, (Point{4, 0}));
  EXPECT_EQ(jobs[4].position, (Point{0, 0}));
}

}  // namespace
}  // namespace cmvrp
