#include <gtest/gtest.h>

#include <string>

#include "obs/compare.h"
#include "util/check.h"
#include "util/json.h"

namespace cmvrp {
namespace {

// Minimal cmvrp-stream-v3-shaped report: the comparator walks whatever
// keys exist, so a handful of fields per class is a full exercise.
Json stream_report(std::int64_t threads, std::uint64_t msg_queries,
                   double wall_ms, double jobs_per_sec) {
  Json doc = Json::object();
  doc.set("schema", "cmvrp-stream-v3");
  doc.set("seed", std::uint64_t{7});
  doc.set("threads", threads);
  doc.set("served", std::uint64_t{20000});
  doc.set("served_hash", "15f19771ff7ce3f5");
  doc.set("msg_queries", msg_queries);
  doc.set("wall_ms", wall_ms);
  doc.set("jobs_per_sec", jobs_per_sec);
  return doc;
}

CompareOptions defaults() { return CompareOptions{}; }

TEST(StreamCompare, IdenticalReportsCompareClean) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  const CompareReport rep = compare_stream_reports(a, a, defaults());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.exit_code(), 0);
  EXPECT_EQ(rep.drift, 0u);
  EXPECT_GT(rep.fields_compared, 0u);
}

// The acceptance-criterion shape: threads differ (context), wall fields
// differ wildly (warn-only by rule) — still exit 0.
TEST(StreamCompare, ThreadCountAndWallTimeNeverFail) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  const Json b = stream_report(8, 100, 30.0, 700.0);
  const CompareReport rep = compare_stream_reports(a, b, defaults());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.exit_code(), 0);
  EXPECT_GE(rep.context_diffs, 1u);  // threads
  EXPECT_GE(rep.warns, 1u);          // 3x wall regression warns
  EXPECT_EQ(rep.wall_fails, 0u);     // fail_ratio 0: wall never fails
  EXPECT_EQ(rep.worst_wall_field, "wall_ms");
  EXPECT_NEAR(rep.worst_wall_ratio, 3.0, 1e-9);
}

TEST(StreamCompare, DeterministicCounterDriftExitsOne) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  const Json b = stream_report(1, 101, 10.0, 2000.0);
  const CompareReport rep = compare_stream_reports(a, b, defaults());
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.exit_code(), 1);
  EXPECT_EQ(rep.drift, 1u);
  ASSERT_EQ(rep.diffs.size(), 1u);
  EXPECT_EQ(rep.diffs[0].path, "msg_queries");
  EXPECT_EQ(rep.diffs[0].cls, FieldClass::kDeterministic);
  EXPECT_EQ(rep.diffs[0].verdict, FieldVerdict::kFail);
}

TEST(StreamCompare, DigestDriftExitsOne) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  Json b = stream_report(1, 100, 10.0, 2000.0);
  b.set("served_hash", "deadbeefdeadbeef");
  const CompareReport rep = compare_stream_reports(a, b, defaults());
  EXPECT_EQ(rep.exit_code(), 1);
  ASSERT_EQ(rep.diffs.size(), 1u);
  EXPECT_EQ(rep.diffs[0].path, "served_hash");
}

TEST(StreamCompare, SchemaMismatchAborts) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  Json b = stream_report(1, 100, 10.0, 2000.0);
  b.set("schema", "cmvrp-stream-v2");
  EXPECT_THROW(compare_stream_reports(a, b, defaults()), check_error);
}

TEST(StreamCompare, SeedMismatchAborts) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  Json b = stream_report(1, 100, 10.0, 2000.0);
  b.set("seed", std::uint64_t{8});
  EXPECT_THROW(compare_stream_reports(a, b, defaults()), check_error);
}

TEST(StreamCompare, MissingAndExtraDeterministicKeysAreDrift) {
  Json a = stream_report(1, 100, 10.0, 2000.0);
  Json b = stream_report(1, 100, 10.0, 2000.0);
  a.set("only_in_a", std::uint64_t{1});
  b.set("only_in_b", std::uint64_t{2});
  const CompareReport rep = compare_stream_reports(a, b, defaults());
  EXPECT_EQ(rep.drift, 2u);
  EXPECT_EQ(rep.exit_code(), 1);
}

TEST(StreamCompare, IgnoreListSuppressesAField) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  const Json b = stream_report(1, 101, 10.0, 2000.0);
  CompareOptions opt;
  opt.ignore = {"msg_queries"};
  const CompareReport rep = compare_stream_reports(a, b, opt);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.exit_code(), 0);
}

// --- wall-field semantics ----------------------------------------------------

TEST(WallCompare, WarnBoundaryIsExclusive) {
  const Json a = stream_report(1, 100, 100.0, 2000.0);
  // Exactly warn_ratio: not a warning (strictly-greater comparison).
  const CompareReport at = compare_stream_reports(
      a, stream_report(1, 100, 125.0, 2000.0), defaults());
  EXPECT_EQ(at.warns, 0u);
  const CompareReport past = compare_stream_reports(
      a, stream_report(1, 100, 126.0, 2000.0), defaults());
  EXPECT_EQ(past.warns, 1u);
  EXPECT_EQ(past.exit_code(), 0);  // warn-only by default
}

TEST(WallCompare, FailRatioGatesWallRegressions) {
  CompareOptions opt;
  opt.fail_ratio = 1.5;
  const Json a = stream_report(1, 100, 100.0, 2000.0);
  const CompareReport under = compare_stream_reports(
      a, stream_report(1, 100, 149.0, 2000.0), opt);
  EXPECT_EQ(under.wall_fails, 0u);
  EXPECT_EQ(under.warns, 1u);  // past warn_ratio, under fail_ratio
  const CompareReport over = compare_stream_reports(
      a, stream_report(1, 100, 160.0, 2000.0), opt);
  EXPECT_EQ(over.wall_fails, 1u);
  EXPECT_EQ(over.exit_code(), 1);
}

TEST(WallCompare, ImprovementIsNeverFlagged) {
  const Json a = stream_report(1, 100, 100.0, 1000.0);
  // Faster wall time AND higher rate: clean either direction.
  const CompareReport rep = compare_stream_reports(
      a, stream_report(1, 100, 40.0, 2500.0), defaults());
  EXPECT_EQ(rep.warns, 0u);
  EXPECT_DOUBLE_EQ(rep.worst_wall_ratio, 1.0);
}

TEST(WallCompare, RateKeysRegressDownward) {
  const Json a = stream_report(1, 100, 100.0, 1000.0);
  // Same wall time, rate dropped to 40%: a 2.5x regression on the rate.
  const CompareReport rep = compare_stream_reports(
      a, stream_report(1, 100, 100.0, 400.0), defaults());
  EXPECT_EQ(rep.warns, 1u);
  EXPECT_EQ(rep.worst_wall_field, "jobs_per_sec");
  EXPECT_NEAR(rep.worst_wall_ratio, 2.5, 1e-9);
}

TEST(WallCompare, SubFloorTimingsAreNoise) {
  CompareOptions opt;  // min_wall_ms = 5.0
  const Json a = stream_report(1, 100, 0.5, 0.0);
  // 8x apart but both under the floor: scheduler noise, clean.
  const CompareReport rep =
      compare_stream_reports(a, stream_report(1, 100, 4.0, 0.0), opt);
  EXPECT_EQ(rep.warns, 0u);
  // One side above the floor: compared normally.
  const CompareReport loud =
      compare_stream_reports(a, stream_report(1, 100, 6.0, 0.0), opt);
  EXPECT_EQ(loud.warns, 1u);
}

// --- kind detection and artifact-level entry ---------------------------------

TEST(KindDetection, RecognizesEveryArtifactSchema) {
  EXPECT_EQ(detect_compare_kind(stream_report(1, 1, 1.0, 1.0).dump(), "A"),
            CompareKind::kStream);
  Json bench = Json::object();
  bench.set("schema", "cmvrp-bench-v1");
  bench.set("suite", "s");
  EXPECT_EQ(detect_compare_kind(bench.dump(), "A"), CompareKind::kBench);
  EXPECT_EQ(detect_compare_kind("[]", "A"), CompareKind::kSpans);
  const std::string stats =
      "{\"kind\":\"header\",\"schema\":\"cmvrp-stats-v1\",\"dim\":2}\n"
      "{\"kind\":\"final\",\"jobs\":10}\n";
  EXPECT_EQ(detect_compare_kind(stats, "A"), CompareKind::kStats);
}

TEST(KindDetection, EmptyInputThrowsNamingTheLabel) {
  try {
    detect_compare_kind("", "empty.json");
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty.json"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos);
  }
}

TEST(KindDetection, TruncatedJsonThrowsNamingTheOffset) {
  try {
    detect_compare_kind("{\"schema\":\"cmvrp-stream-v3\",\"served\":", "t");
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(KindDetection, MismatchedKindsAbort) {
  const std::string stream = stream_report(1, 1, 1.0, 1.0).dump();
  EXPECT_THROW(
      compare_artifacts(stream, "[]", CompareKind::kAuto, defaults()),
      check_error);
}

TEST(ParseCompareKind, NamesRoundTripAndBadNamesAreUsageErrors) {
  for (const CompareKind k :
       {CompareKind::kAuto, CompareKind::kStream, CompareKind::kStats,
        CompareKind::kBench, CompareKind::kSpans})
    EXPECT_EQ(parse_compare_kind(compare_kind_name(k)), k);
  EXPECT_THROW(parse_compare_kind("bogus"), usage_error);
  // usage_error subclasses check_error so "failed at all" call sites work.
  EXPECT_THROW(parse_compare_kind("bogus"), check_error);
}

// --- bench runs --------------------------------------------------------------

Json bench_case(const std::string& name, double mean, double stddev,
                std::uint64_t served, double rate) {
  Json c = Json::object();
  c.set("name", name);
  Json t = Json::object();
  t.set("reps", 3);
  t.set("mean", mean);
  t.set("stddev", stddev);
  t.set("min", mean - stddev);
  t.set("max", mean + stddev);
  c.set("time_ms", t);
  Json m = Json::object();
  m.set("served", served);
  m.set("jobs/sec", rate);
  m.set("hw threads", std::int64_t{8});
  c.set("metrics", m);
  return c;
}

Json bench_run(double mean, double stddev, std::uint64_t served,
               double rate) {
  Json doc = Json::object();
  doc.set("schema", "cmvrp-bench-v1");
  doc.set("suite", "stream_scaling");
  Json options = Json::object();
  options.set("reps", 3);
  doc.set("options", options);
  doc.set("failed", false);
  Json cases = Json::array();
  cases.push_back(bench_case("threads=1", mean, stddev, served, rate));
  Json section = Json::object();
  section.set("name", "threads");
  section.set("cases", cases);
  Json sections = Json::array();
  sections.push_back(section);
  doc.set("sections", sections);
  return doc;
}

TEST(BenchCompare, MeanShiftWithinSigmaMarginIsNoise) {
  const Json a = bench_run(100.0, 10.0, 20000, 1000.0);
  // +25 ms is a 1.25x ratio but within 3 sigma of stddev 10: clean.
  const Json b = bench_run(125.0, 10.0, 20000, 1000.0);
  const CompareReport rep = compare_bench_runs(a, b, defaults());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.warns, 0u);
}

TEST(BenchCompare, MeanShiftPastSigmaAndRatioWarns) {
  const Json a = bench_run(100.0, 1.0, 20000, 1000.0);
  const Json b = bench_run(200.0, 1.0, 20000, 1000.0);
  const CompareReport rep = compare_bench_runs(a, b, defaults());
  EXPECT_TRUE(rep.clean());  // warn-only without --fail-ratio
  EXPECT_EQ(rep.warns, 1u);
  EXPECT_EQ(rep.worst_wall_field, "sections[threads].cases[threads=1].time_ms");
}

TEST(BenchCompare, DeterministicMetricDriftFails) {
  const Json a = bench_run(100.0, 10.0, 20000, 1000.0);
  const Json b = bench_run(100.0, 10.0, 19999, 1000.0);
  const CompareReport rep = compare_bench_runs(a, b, defaults());
  EXPECT_EQ(rep.exit_code(), 1);
  ASSERT_EQ(rep.diffs.size(), 1u);
  EXPECT_EQ(rep.diffs[0].path,
            "sections[threads].cases[threads=1].metrics.served");
}

TEST(BenchCompare, MissingCaseIsDriftAndContextFieldsAreNot) {
  const Json a = bench_run(100.0, 10.0, 20000, 1000.0);
  Json b = bench_run(100.0, 10.0, 20000, 1000.0);
  // Drop B's only case; also note "hw threads" is context by rule —
  // checked implicitly since a/b carry it and identical runs are clean.
  Json empty_cases = Json::array();
  Json section = Json::object();
  section.set("name", "threads");
  section.set("cases", empty_cases);
  Json sections = Json::array();
  sections.push_back(section);
  b.set("sections", sections);
  const CompareReport rep = compare_bench_runs(a, b, defaults());
  EXPECT_EQ(rep.exit_code(), 1);
  EXPECT_GE(rep.drift, 1u);
}

TEST(BenchCompare, SuiteMismatchAborts) {
  const Json a = bench_run(100.0, 10.0, 20000, 1000.0);
  Json b = bench_run(100.0, 10.0, 20000, 1000.0);
  b.set("suite", "other_suite");
  EXPECT_THROW(compare_bench_runs(a, b, defaults()), check_error);
}

// --- stats JSONL -------------------------------------------------------------

std::string stats_stream(std::int64_t batch_size, std::int64_t stride,
                         std::uint64_t jobs_at_sample,
                         std::uint64_t queries_at_sample,
                         std::uint64_t final_queries) {
  std::string s;
  s += "{\"kind\":\"header\",\"schema\":\"cmvrp-stats-v1\",\"dim\":2,"
       "\"threads\":1,\"batch_size\":" +
       std::to_string(batch_size) + ",\"seed\":7,\"stride\":" +
       std::to_string(stride) + ",\"counters\":true}\n";
  s += "{\"kind\":\"sample\",\"batch\":1,\"jobs\":" +
       std::to_string(jobs_at_sample) + ",\"msg_queries\":" +
       std::to_string(queries_at_sample) + ",\"stage_route_ms\":1.5}\n";
  s += "{\"kind\":\"cube\",\"corner\":[0,0],\"arrivals\":10}\n";
  s += "{\"kind\":\"final\",\"jobs\":100,\"msg_queries\":" +
       std::to_string(final_queries) + ",\"stage_route_ms\":2.5}\n";
  return s;
}

TEST(StatsCompare, IdenticalStreamsCompareClean) {
  const std::string a = stats_stream(256, 8, 2048, 50, 99);
  const CompareReport rep = compare_stats_streams(a, a, defaults());
  EXPECT_TRUE(rep.clean());
}

TEST(StatsCompare, SampleAndFinalDriftFails) {
  const std::string a = stats_stream(256, 8, 2048, 50, 99);
  const std::string b = stats_stream(256, 8, 2048, 51, 98);
  const CompareReport rep = compare_stats_streams(a, b, defaults());
  EXPECT_EQ(rep.exit_code(), 1);
  EXPECT_EQ(rep.drift, 2u);  // the sample's msg_queries and the final's
}

// Samples match by `jobs` prefix: a different batch size snapshots
// different prefixes, so unshared samples are skipped, shared prefixes
// must still agree, and the headers' cadence fields are context.
TEST(StatsCompare, DifferentCadenceComparesSharedPrefixesOnly) {
  const std::string a = stats_stream(256, 8, 2048, 50, 99);
  const std::string b = stats_stream(64, 8, 512, 12, 99);  // no shared sample
  const CompareReport clean = compare_stats_streams(a, b, defaults());
  EXPECT_TRUE(clean.clean());
  // Shared prefix with a disagreeing counter still fails.
  const std::string b2 = stats_stream(64, 8, 2048, 51, 99);
  const CompareReport drift = compare_stats_streams(a, b2, defaults());
  EXPECT_EQ(drift.exit_code(), 1);
}

TEST(StatsCompare, SameCadenceMissingSampleIsDrift) {
  const std::string a = stats_stream(256, 8, 2048, 50, 99);
  const std::string b = stats_stream(256, 8, 4096, 50, 99);
  const CompareReport rep = compare_stats_streams(a, b, defaults());
  EXPECT_EQ(rep.exit_code(), 1);
  EXPECT_GE(rep.drift, 2u);  // 2048 missing in B, 4096 extra in B
}

TEST(StatsCompare, TruncatedStreamFailsNamingBytesAndLines) {
  const std::string a = stats_stream(256, 8, 2048, 50, 99);
  const std::string truncated =
      "{\"kind\":\"header\",\"schema\":\"cmvrp-stats-v1\",\"dim\":2,"
      "\"batch_size\":256,\"stride\":8}\n";
  try {
    compare_stats_streams(a, truncated, defaults(), "A", "B");
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no final line"), std::string::npos) << what;
    EXPECT_NE(what.find("bytes"), std::string::npos) << what;
    EXPECT_NE(what.find("B"), std::string::npos) << what;
  }
  EXPECT_THROW(compare_stats_streams("", a, defaults()), check_error);
  // A malformed line reports its line number and byte offset.
  try {
    compare_stats_streams(a, a + "{truncated", defaults(), "A", "B");
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

// --- span traces -------------------------------------------------------------

std::string span_trace(double wall_ms, std::int64_t ts) {
  Json events = Json::array();
  Json meta = Json::object();
  meta.set("name", "wall_ms");
  meta.set("ph", "M");
  Json margs = Json::object();
  margs.set("value", wall_ms);
  meta.set("args", margs);
  events.push_back(meta);
  Json ev = Json::object();
  ev.set("name", "comp");
  ev.set("ph", "b");
  ev.set("pid", 3);
  ev.set("ts", ts);  // protocol clock: deterministic
  events.push_back(ev);
  return events.dump();
}

TEST(SpansCompare, WallMetadataIsSkippedByNameRule) {
  const CompareReport rep = compare_artifacts(
      span_trace(10.0, 42), span_trace(99.0, 42), CompareKind::kSpans,
      defaults());
  EXPECT_TRUE(rep.clean());
}

TEST(SpansCompare, ProtocolClockDriftFails) {
  const CompareReport rep = compare_artifacts(
      span_trace(10.0, 42), span_trace(10.0, 43), CompareKind::kSpans,
      defaults());
  EXPECT_EQ(rep.exit_code(), 1);
  ASSERT_GE(rep.diffs.size(), 1u);
  EXPECT_EQ(rep.diffs[0].path, "event[0].ts");
}

// --- the cmvrp-diff-v1 document ----------------------------------------------

TEST(DiffJson, RoundTripsAndCarriesTheVerdicts) {
  const Json a = stream_report(1, 100, 10.0, 2000.0);
  const Json b = stream_report(8, 101, 30.0, 700.0);
  const CompareReport rep = compare_stream_reports(a, b, defaults());
  const Json doc = rep.to_json("a.json", "b.json");
  EXPECT_EQ(doc.at("schema").as_string(), kDiffSchema);
  EXPECT_EQ(doc.at("kind").as_string(), "stream");
  EXPECT_EQ(doc.at("a").as_string(), "a.json");
  EXPECT_EQ(doc.at("exit").as_number(), 1.0);
  EXPECT_EQ(doc.at("drift").as_number(), 1.0);
  EXPECT_EQ(doc.at("diffs").size(), rep.diffs.size());
  // Exact round trip through the serializer (the CI artifact contract).
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
  const Json& first = doc.at("diffs").at(0);
  EXPECT_TRUE(first.contains("path"));
  EXPECT_TRUE(first.contains("class"));
  EXPECT_TRUE(first.contains("verdict"));
}

}  // namespace
}  // namespace cmvrp
