#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace cmvrp {
namespace {

TEST(Check, ThrowsWithLocation) {
  try {
    CMVRP_CHECK_MSG(1 == 2, "math broke " << 42);
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(Rng, NextIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.next_int(3, 3), 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, WeightedSamplingRespectsWeights) {
  Rng rng(17);
  std::vector<double> w{1.0, 0.0, 3.0};
  int c0 = 0, c2 = 0;
  for (int i = 0; i < 8000; ++i) {
    const auto k = rng.next_weighted(w);
    ASSERT_NE(k, 1u);
    if (k == 0)
      ++c0;
    else
      ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c2) / c0, 3.0, 0.5);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextIntDegenerateRange) {
  Rng rng(43);
  for (std::int64_t lo : {std::int64_t{-7}, std::int64_t{0}, std::int64_t{9}})
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_int(lo, lo), lo);
}

TEST(Rng, WeightedSinglePositiveWeightAlwaysChosen) {
  Rng rng(47);
  const std::vector<double> w{0.0, 0.0, 5.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.next_weighted(w), 2u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_weighted({2.5}), 0u);
}

TEST(Rng, SameSeedReplaysBitForBitAcrossAllDraws) {
  Rng a(0xfeedface), b(0xfeedface);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_EQ(a.next_below(97), b.next_below(97));
    EXPECT_EQ(a.next_int(-1000, 1000), b.next_int(-1000, 1000));
    EXPECT_EQ(a.next_double(), b.next_double());
    EXPECT_EQ(a.next_bool(0.3), b.next_bool(0.3));
    EXPECT_EQ(a.next_gaussian(), b.next_gaussian());
    EXPECT_EQ(a.next_weighted({1.0, 2.0, 3.0}), b.next_weighted({1.0, 2.0, 3.0}));
  }
  // Children derived at the same point replay identically too.
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(a.next_u64());
    seen.insert(child.next_u64());
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(31);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double(-3, 5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.9), 90.1, 1e-9);
}

// Regression: add() after a quantile() must invalidate the cached sort —
// the stale order used to surface later samples at the wrong quantiles.
TEST(SampleSet, AddAfterQuantileResortsBeforeNextQuantile) {
  SampleSet s;
  for (double x : {5.0, 1.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);  // sorts [1, 5, 9]
  s.add(0.5);                         // must mark the sort stale
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);  // [0.5, 1, 5, 9, 20]
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 42.0}) h.add(x);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(h.bucket(1), 1u);  // 2.0
  EXPECT_EQ(h.bucket(4), 1u);  // 9.9
  EXPECT_EQ(h.total(), 7u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Table, RendersAlignedGrid) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsOverflowingRow) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), check_error);
}

}  // namespace
}  // namespace cmvrp
