#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  z = 36 at (2, 6).
  LpProblem lp(/*maximize=*/true);
  const auto x = lp.add_variable(3.0);
  const auto y = lp.add_variable(5.0);
  lp.add_constraint({{x, 1.0}}, LpRelation::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, LpRelation::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, LpRelation::kLessEqual, 18.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-8);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
  EXPECT_NEAR(r.x[y], 6.0, 1e-8);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  z = 8+... at (4, 0): 8.
  LpProblem lp;
  const auto x = lp.add_variable(2.0);
  const auto y = lp.add_variable(3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, LpRelation::kGreaterEqual, 4.0);
  lp.add_constraint({{x, 1.0}}, LpRelation::kGreaterEqual, 1.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-8);
  EXPECT_NEAR(r.x[x], 4.0, 1e-8);
  EXPECT_NEAR(r.x[y], 0.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 3, y >= 1  ->  (2, 1), z = 4.
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, LpRelation::kEqual, 3.0);
  lp.add_constraint({{y, 1.0}}, LpRelation::kGreaterEqual, 1.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-8);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
  EXPECT_NEAR(r.x[y], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, LpRelation::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, LpRelation::kGreaterEqual, 2.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp(/*maximize=*/true);
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(0.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, LpRelation::kLessEqual, 1.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsHandled) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  LpProblem lp;
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, -1.0}}, LpRelation::kLessEqual, -3.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-8);
}

TEST(Simplex, RepeatedVariableCoefficientsSum) {
  // x + x <= 4  ->  x <= 2 for max x.
  LpProblem lp(/*maximize=*/true);
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {x, 1.0}}, LpRelation::kLessEqual, 4.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
}

TEST(Simplex, DegenerateDoesNotCycle) {
  // A classically degenerate LP (Beale-like); Bland's rule must terminate.
  LpProblem lp;
  const auto x1 = lp.add_variable(-0.75);
  const auto x2 = lp.add_variable(150.0);
  const auto x3 = lp.add_variable(-0.02);
  const auto x4 = lp.add_variable(6.0);
  lp.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                    LpRelation::kLessEqual, 0.0);
  lp.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                    LpRelation::kLessEqual, 0.0);
  lp.add_constraint({{x3, 1.0}}, LpRelation::kLessEqual, 1.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-6);
}

TEST(Simplex, DualsSatisfyStrongDuality) {
  // max c'x with <= rows: dual objective b'y must equal primal optimum.
  LpProblem lp(/*maximize=*/true);
  const auto x = lp.add_variable(3.0);
  const auto y = lp.add_variable(5.0);
  lp.add_constraint({{x, 1.0}}, LpRelation::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, LpRelation::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, LpRelation::kLessEqual, 18.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  ASSERT_EQ(r.duals.size(), 3u);
  const double dual_obj =
      4.0 * r.duals[0] + 12.0 * r.duals[1] + 18.0 * r.duals[2];
  EXPECT_NEAR(dual_obj, r.objective, 1e-7);
  // Known duals for this classic: y = (0, 1.5, 1).
  EXPECT_NEAR(r.duals[0], 0.0, 1e-7);
  EXPECT_NEAR(r.duals[1], 1.5, 1e-7);
  EXPECT_NEAR(r.duals[2], 1.0, 1e-7);
}

TEST(Simplex, DualsForMinimizationProblem) {
  // min 2x+3y, x+y >= 4, x >= 1: dual obj = 4*y1 + 1*y2 = 8.
  LpProblem lp;
  const auto x = lp.add_variable(2.0);
  const auto y = lp.add_variable(3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, LpRelation::kGreaterEqual, 4.0);
  lp.add_constraint({{x, 1.0}}, LpRelation::kGreaterEqual, 1.0);
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  const double dual_obj = 4.0 * r.duals[0] + 1.0 * r.duals[1];
  EXPECT_NEAR(dual_obj, r.objective, 1e-7);
}

// Property sweep: random feasible-by-construction LPs; check weak duality
// and feasibility of the returned solution.
class SimplexRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom, SolutionFeasibleAndDualityHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t nv = 2 + rng.next_below(4);
  const std::size_t nc = 2 + rng.next_below(4);
  LpProblem lp(/*maximize=*/true);
  std::vector<double> c(nv);
  for (std::size_t j = 0; j < nv; ++j) {
    c[j] = rng.next_double(0.0, 5.0);
    lp.add_variable(c[j]);
  }
  std::vector<std::vector<double>> a(nc, std::vector<double>(nv));
  std::vector<double> b(nc);
  for (std::size_t i = 0; i < nc; ++i) {
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t j = 0; j < nv; ++j) {
      a[i][j] = rng.next_double(0.1, 3.0);
      row.emplace_back(j, a[i][j]);
    }
    b[i] = rng.next_double(1.0, 20.0);
    lp.add_constraint(row, LpRelation::kLessEqual, b[i]);
  }
  const auto r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);  // 0 is feasible; box-bounded
  // Primal feasibility.
  for (std::size_t i = 0; i < nc; ++i) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < nv; ++j) lhs += a[i][j] * r.x[j];
    EXPECT_LE(lhs, b[i] + 1e-6);
  }
  for (std::size_t j = 0; j < nv; ++j) EXPECT_GE(r.x[j], -1e-9);
  // Strong duality.
  double dual_obj = 0.0;
  for (std::size_t i = 0; i < nc; ++i) dual_obj += b[i] * r.duals[i];
  EXPECT_NEAR(dual_obj, r.objective, 1e-5);
  // Dual feasibility: A'y >= c for a max problem.
  for (std::size_t j = 0; j < nv; ++j) {
    double lhs = 0.0;
    for (std::size_t i = 0; i < nc; ++i) lhs += a[i][j] * r.duals[i];
    EXPECT_GE(lhs, c[j] - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom, ::testing::Range(1, 21));

}  // namespace
}  // namespace cmvrp
