// §3.2.5 scenario 4: a *large* (more than constant) number of active
// vehicles break down. Chapter 4's message is that beyond constant
// breakage the clean Won = Θ(Woff) story fails — the system degrades and
// the energy requirement depends on arrival order. These tests pin the
// *transition*: constant breakage is absorbed; mass breakage costs jobs
// unless capacity grows.
#include <gtest/gtest.h>

#include "broken/longevity.h"
#include "online/capacity_search.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

struct SweepOutcome {
  double broken_fraction;
  std::uint64_t failed;
  std::uint64_t rescues;
};

SweepOutcome run_with_breakage(double fraction, double capacity,
                               std::uint64_t seed) {
  const Box field(Point{0, 0}, Point{11, 11});
  Rng rng(seed);
  const auto jobs = smart_dust_stream(field, 150, 0.05, rng);
  const DemandMap demand = demand_of_stream(jobs, 2);
  OnlineConfig cfg = default_online_config(demand, seed);
  cfg.capacity = capacity;
  OnlineSimulation sim(2, cfg);
  // Break a `fraction` of all vertices (longevity 0: dead from the start).
  Rng pick(seed + 1);
  std::int64_t to_break =
      static_cast<std::int64_t>(fraction * 12.0 * 12.0);
  for (std::int64_t k = 0; k < to_break; ++k)
    sim.inject_break_after(Point{pick.next_int(0, 11), pick.next_int(0, 11)},
                           0.0);
  sim.run(jobs);
  return {fraction, sim.metrics().jobs_failed,
          sim.metrics().monitor_initiations};
}

TEST(Scenario4, ConstantBreakageAbsorbed) {
  const auto r = run_with_breakage(0.03, 14.0, 5);  // ~4 vehicles
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GE(r.rescues, 1u);
}

TEST(Scenario4, DegradationGrowsWithBreakageFraction) {
  // More breakage strictly shrinks the replacement pool; at fixed W the
  // failure count must be non-trivial once half the fleet is dead.
  const auto light = run_with_breakage(0.05, 14.0, 7);
  const auto heavy = run_with_breakage(0.60, 14.0, 7);
  EXPECT_LE(light.failed, heavy.failed);
  EXPECT_GT(heavy.failed, 0u);
}

TEST(Scenario4, ExtraCapacityBuysBackSomeLosses) {
  const auto tight = run_with_breakage(0.40, 10.0, 11);
  const auto roomy = run_with_breakage(0.40, 40.0, 11);
  EXPECT_LE(roomy.failed, tight.failed);
}

TEST(Scenario4, TotalBreakageServesNothing) {
  const Box field(Point{0, 0}, Point{5, 5});
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back({Point{2, 2}, i});
  const DemandMap demand = demand_of_stream(jobs, 2);
  OnlineConfig cfg = default_online_config(demand, 3);
  OnlineSimulation sim(2, cfg);
  Box::cube(Point{0, 0}, 6).for_each_point(
      [&](const Point& p) { sim.inject_break_after(p, 0.0); });
  EXPECT_FALSE(sim.run(jobs));
  EXPECT_EQ(sim.metrics().jobs_served, 0u);
}

TEST(Scenario4, BrokenLowerBoundRisesWithDeadFraction) {
  // Theorem 4.1.1's weighted bound reacts to mass breakage: killing the
  // vertices around the demand raises the required ω.
  DemandMap d(2);
  d.set(Point{0, 0}, 40.0);
  LongevityMap none(2, 1.0);
  LongevityMap ring1(2, 1.0);
  for (const auto& q : l1_ball_points(Point{0, 0}, 2))
    if (q != (Point{0, 0})) ring1.set(q, 0.0);
  const double w_all = broken_omega_for_set({Point{0, 0}}, d, none);
  const double w_dead = broken_omega_for_set({Point{0, 0}}, d, ring1);
  EXPECT_GT(w_dead, w_all);
}

}  // namespace
}  // namespace cmvrp
