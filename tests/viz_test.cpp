#include <gtest/gtest.h>

#include "viz/ascii.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

TEST(Viz, DemandHeatMapGlyphs) {
  DemandMap d(2);
  d.set(Point{0, 0}, 9.0);  // peak -> '#'
  d.set(Point{1, 0}, 1.0);  // low -> small digit
  const Box view(Point{0, 0}, Point{2, 1});
  const std::string s = render_demand(d, view);
  // Two rows of three glyphs + newlines; row 0 is y=1 (empty).
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(s.substr(0, 3), "...");
  EXPECT_EQ(s[4], '#');
  EXPECT_GE(s[5], '1');
  EXPECT_LE(s[5], '9');
  EXPECT_EQ(s[6], '.');
}

TEST(Viz, EmptyDemandAllDots) {
  DemandMap d(2);
  const Box view(Point{0, 0}, Point{3, 3});
  const std::string s = render_demand(d, view);
  for (char c : s) EXPECT_TRUE(c == '.' || c == '\n');
}

TEST(Viz, PlanShowsMoversAndTargets) {
  DemandMap d(2);
  d.set(Point{0, 0}, 500.0);  // forces remote helpers
  const OfflinePlan plan = plan_offline(d);
  const Box view(Point{-6, -6}, Point{6, 6});
  const std::string s = render_plan(plan, view);
  EXPECT_NE(s.find('*'), std::string::npos);  // the hotspot target
  EXPECT_NE(s.find('>'), std::string::npos);  // relocating helpers
}

TEST(Viz, FieldCallbackOrientation) {
  // Row 0 of the output is the highest y (the paper's orientation).
  const Box view(Point{0, 0}, Point{1, 1});
  const std::string s =
      render_field(view, [](const Point& p) -> char {
        return p[1] == 1 ? 'T' : 'B';
      });
  EXPECT_EQ(s, "TT\nBB\n");
}

}  // namespace
}  // namespace cmvrp
