#include <gtest/gtest.h>

#include "broken/longevity.h"
#include "broken/scenario.h"
#include "core/omega.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

TEST(Longevity, DefaultsAndOverrides) {
  LongevityMap lg(2, 1.0);
  EXPECT_DOUBLE_EQ(lg.at(Point{5, 5}), 1.0);
  lg.set(Point{0, 0}, 0.25);
  EXPECT_DOUBLE_EQ(lg.at(Point{0, 0}), 0.25);
  EXPECT_THROW(lg.set(Point{1, 1}, 1.5), check_error);
}

TEST(BrokenOmega, AllHealthyReducesToEquationOneOne) {
  // With every p_i = 1, Theorem 4.1.1's ω_T is exactly Eq. (1.1)'s ω_T.
  const LongevityMap healthy(2, 1.0);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    DemandMap d(2);
    for (int k = 0; k < 4; ++k)
      d.add(Point{rng.next_int(0, 3), rng.next_int(0, 3)},
            static_cast<double>(rng.next_int(1, 9)));
    const auto support = d.support();
    const double weighted = broken_omega_for_set(support, d, healthy);
    const double plain = omega_for_set(support, d);
    EXPECT_NEAR(weighted, plain, 1e-6) << "seed " << seed;
  }
}

TEST(BrokenOmega, DeadNeighborhoodRaisesOmega) {
  // Demand 26 at origin. Healthy: ω·|N_⌊ω⌋| = 26 crosses at ω = 2 exactly
  // (13·2 = 26). Killing the distance-1 ring removes 4 suppliers, so the
  // mass on [2,3) drops to 9 and ω rises to 26/9 ≈ 2.89.
  DemandMap d(2);
  d.set(Point{0, 0}, 26.0);
  const LongevityMap healthy(2, 1.0);
  LongevityMap holed(2, 1.0);
  for (const auto& q : (Point{0, 0}).unit_neighbors()) holed.set(q, 0.0);
  const double w_healthy =
      broken_omega_for_set({Point{0, 0}}, d, healthy);
  const double w_holed = broken_omega_for_set({Point{0, 0}}, d, holed);
  EXPECT_NEAR(w_healthy, 2.0, 1e-6);
  EXPECT_NEAR(w_holed, 26.0 / 9.0, 1e-6);
  EXPECT_GT(w_holed, w_healthy);
}

TEST(BrokenOmega, FractionalLongevityScalesReach) {
  // A vertex with p = 0.5 only counts once ω ≥ 2·dist, and contributes
  // only 0.5 supply.
  DemandMap d(2);
  d.set(Point{0, 0}, 4.0);
  LongevityMap half(2, 0.0);
  half.set(Point{0, 0}, 1.0);
  half.set(Point{3, 0}, 0.5);
  // Only k={0,0} and the p=.5 vertex at distance 3 exist. g(ω) =
  // ω·(1 + 0.5·[3 <= 0.5ω]) = ω for ω < 6, then 1.5ω.
  // g(4) = 4 = S → ω = 4 (before the helper wakes up).
  EXPECT_NEAR(broken_omega_for_set({Point{0, 0}}, d, half), 4.0, 1e-6);
  d.set(Point{0, 0}, 10.0);
  // Now ω = 10 would need g = 10; at ω ∈ [6,10/1.5): g = 1.5ω ≥ 10 at
  // ω = 6.67.
  EXPECT_NEAR(broken_omega_for_set({Point{0, 0}}, d, half), 10.0 / 1.5,
              1e-6);
}

TEST(BrokenLp, MatchesEnumerationOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 31);
    DemandMap d(2);
    LongevityMap lg(2, 1.0);
    for (int k = 0; k < 3; ++k) {
      const Point p{rng.next_int(0, 2), rng.next_int(0, 2)};
      d.add(p, static_cast<double>(rng.next_int(1, 6)));
    }
    // A few broken/feeble vertices.
    lg.set(Point{1, 1}, 0.0);
    lg.set(Point{0, 1}, 0.5);
    // Fixed-point over the LP radius equals max_T weighted ω_T.
    // (Evaluate LP at integer radii and find the crossing by hand.)
    const double enumerated = broken_lower_bound_enumerate(d, lg);
    std::int64_t k = 0;
    double vk = broken_lp_value_at_radius(d, lg, 0);
    double fixed_point = -1.0;
    for (; k < 64; ++k) {
      if (vk < static_cast<double>(k) + 1.0) {
        fixed_point = std::max(vk, static_cast<double>(k));
        break;
      }
      vk = broken_lp_value_at_radius(d, lg, k + 1);
    }
    ASSERT_GE(fixed_point, 0.0);
    EXPECT_NEAR(fixed_point, enumerated, 1e-4) << "seed " << seed;
  }
}

// --- Figure 4.1 -----------------------------------------------------------------

TEST(Fig41, ConstructionMatchesPaper) {
  const auto s = make_fig41(/*r1=*/3, /*r2=*/20);
  EXPECT_EQ(l1_distance(s.i, s.j), 6);
  EXPECT_EQ(l1_distance(s.i, s.k), 3);
  EXPECT_DOUBLE_EQ(s.demand.at(s.i), 3.0);
  EXPECT_DOUBLE_EQ(s.demand.at(s.j), 3.0);
  EXPECT_EQ(s.jobs.size(), 6u);
  EXPECT_DOUBLE_EQ(s.longevity.at(s.k), 1.0);
  EXPECT_DOUBLE_EQ(s.longevity.at(Point{1, 1}), 0.0);   // inside, not k
  EXPECT_DOUBLE_EQ(s.longevity.at(Point{30, 30}), 1.0); // outside
}

TEST(Fig41, LpBoundIsTwoR1) {
  for (std::int64_t r1 : {2, 4, 8}) {
    const auto s = make_fig41(r1, 4 * r1 + 2);
    const auto m = measure_fig41(s);
    EXPECT_NEAR(m.lp_bound, 2.0 * static_cast<double>(r1), 1e-6)
        << "r1=" << r1;
  }
}

TEST(Fig41, TrueRequirementOutgrowsLpBound) {
  double prev_ratio = 0.0;
  for (std::int64_t r1 : {2, 4, 8, 16}) {
    const auto s = make_fig41(r1, 4 * r1 + 2);
    const auto m = measure_fig41(s);
    // Paper: travel = r1 + (2r1-1)·2r1 — checked inside measure_fig41 —
    // so requirement/bound grows linearly in r1 (the bound is weak).
    EXPECT_GT(m.ratio, prev_ratio) << "r1=" << r1;
    EXPECT_GE(m.true_requirement,
              static_cast<double>(r1 + (2 * r1 - 1) * 2 * r1));
    prev_ratio = m.ratio;
  }
  EXPECT_GT(prev_ratio, 8.0);  // ratio ≈ r1 at r1 = 16
}

}  // namespace
}  // namespace cmvrp
