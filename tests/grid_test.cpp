#include <gtest/gtest.h>

#include <algorithm>

#include "grid/box.h"
#include "grid/demand_map.h"
#include "grid/dense_grid.h"
#include "grid/neighborhood.h"
#include "grid/point.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

TEST(Point, BasicsAndMetric) {
  Point p{1, 2};
  Point q{4, -2};
  EXPECT_EQ(p.dim(), 2);
  EXPECT_EQ(l1_distance(p, q), 3 + 4);
  EXPECT_EQ(p.l1_norm(), 3);
  EXPECT_EQ((p + q), (Point{5, 0}));
  EXPECT_EQ((q - p), (Point{3, -4}));
  EXPECT_LT(p, q);
  EXPECT_EQ(p.to_string(), "(1, 2)");
}

TEST(Point, ColoringParity) {
  EXPECT_TRUE((Point{0, 0}).coordinate_sum_even());
  EXPECT_FALSE((Point{0, 1}).coordinate_sum_even());
  EXPECT_TRUE((Point{-1, 1}).coordinate_sum_even());
  EXPECT_FALSE((Point{-1, 0}).coordinate_sum_even());
}

TEST(Point, UnitNeighbors) {
  const auto nb = (Point{3, 7}).unit_neighbors();
  EXPECT_EQ(nb.size(), 4u);
  for (const auto& q : nb) EXPECT_EQ(l1_distance(q, (Point{3, 7})), 1);
}

TEST(Point, HashDistinguishes) {
  PointHash h;
  EXPECT_NE(h((Point{0, 1})), h((Point{1, 0})));
  EXPECT_EQ(h((Point{2, 3})), h((Point{2, 3})));
}

TEST(Box, VolumeContainsDistance) {
  const Box b(Point{0, 0}, Point{2, 3});
  EXPECT_EQ(b.volume(), 12);
  EXPECT_TRUE(b.contains(Point{2, 3}));
  EXPECT_FALSE(b.contains(Point{3, 3}));
  EXPECT_EQ(b.l1_distance_to(Point{5, 5}), 3 + 2);
  EXPECT_EQ(b.l1_distance_to(Point{1, 1}), 0);
  EXPECT_EQ(b.points().size(), 12u);
}

TEST(Box, CubeFactory) {
  const Box c = Box::cube(Point{-1, -1}, 3);
  EXPECT_EQ(c.lo(), (Point{-1, -1}));
  EXPECT_EQ(c.hi(), (Point{1, 1}));
  EXPECT_EQ(c.volume(), 9);
}

TEST(Box, ForEachPointVisitsAllOnce) {
  const Box b(Point{0, 0, 0}, Point{1, 2, 1});
  PointSet seen;
  b.for_each_point([&](const Point& p) { EXPECT_TRUE(seen.insert(p).second); });
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), b.volume());
}

TEST(Neighborhood, BallVolumeClosedForms) {
  // 1-D: 2r+1.
  for (std::int64_t r : {0, 1, 5, 100})
    EXPECT_EQ(l1_ball_volume(1, r), 2 * r + 1);
  // 2-D: 2r^2+2r+1.
  for (std::int64_t r : {0, 1, 2, 7, 50})
    EXPECT_EQ(l1_ball_volume(2, r), 2 * r * r + 2 * r + 1);
  // 3-D octahedral numbers: (2r^3 + 3r^2 + 3r + ... ) checked vs BFS below.
  EXPECT_EQ(l1_ball_volume(3, 0), 1);
  EXPECT_EQ(l1_ball_volume(3, 1), 7);
  EXPECT_EQ(l1_ball_volume(3, 2), 25);
}

TEST(Neighborhood, BallVolumeMatchesBfs) {
  for (int dim = 1; dim <= 3; ++dim) {
    for (std::int64_t r = 0; r <= 6; ++r) {
      const auto bfs = neighborhood_volume({Point::origin(dim)}, r);
      EXPECT_EQ(l1_ball_volume(dim, r), bfs)
          << "dim=" << dim << " r=" << r;
    }
  }
}

struct BoxCase {
  std::vector<std::int64_t> sides;
  std::int64_t r;
};

class BoxNeighborhood : public ::testing::TestWithParam<BoxCase> {};

TEST_P(BoxNeighborhood, DpMatchesBfs) {
  const auto& c = GetParam();
  const int dim = static_cast<int>(c.sides.size());
  Point lo = Point::origin(dim);
  Point hi = lo;
  for (int i = 0; i < dim; ++i)
    hi[i] = c.sides[static_cast<std::size_t>(i)] - 1;
  const Box box(lo, hi);
  const auto bfs = neighborhood_volume(box.points(), c.r);
  EXPECT_EQ(box_neighborhood_volume(c.sides, c.r), bfs)
      << "sides[0]=" << c.sides[0] << " r=" << c.r;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoxNeighborhood,
    ::testing::Values(
        BoxCase{{1}, 0}, BoxCase{{1}, 4}, BoxCase{{5}, 3},
        BoxCase{{1, 1}, 0}, BoxCase{{1, 1}, 3}, BoxCase{{3, 3}, 2},
        BoxCase{{4, 2}, 5}, BoxCase{{7, 1}, 4}, BoxCase{{2, 6}, 1},
        BoxCase{{1, 1, 1}, 2}, BoxCase{{2, 2, 2}, 3}, BoxCase{{3, 1, 2}, 2},
        BoxCase{{2, 3, 2, 2}, 2}));

TEST(Neighborhood, LineNeighborhoodGrowsAsStrip) {
  // For a len x 1 line in 2-D, |N_r| = len(2r+1) + 2r²  (strip + two caps:
  // 2r off-axis ends plus 4·r(r-1)/2 diagonal quarter-diamonds).
  for (std::int64_t len : {1, 2, 10, 50}) {
    for (std::int64_t r : {0, 1, 3, 8}) {
      const auto expected = len * (2 * r + 1) + 2 * r * r;
      EXPECT_EQ(box_neighborhood_volume({len, 1}, r), expected);
    }
  }
}

TEST(Neighborhood, SetBfsOfTwoDistantPointsIsTwoBalls) {
  const Point a{0, 0};
  const Point b{100, 0};
  const auto n = neighborhood(std::vector<Point>{a, b}, 3);
  EXPECT_EQ(static_cast<std::int64_t>(n.size()), 2 * l1_ball_volume(2, 3));
}

TEST(Neighborhood, SetBfsMergesOverlappingBalls) {
  const Point a{0, 0};
  const Point b{1, 0};
  const auto n = neighborhood(std::vector<Point>{a, b}, 2);
  // Equivalent to the 2x1 box neighborhood.
  EXPECT_EQ(static_cast<std::int64_t>(n.size()),
            box_neighborhood_volume({2, 1}, 2));
}

TEST(DemandMap, SetAddEraseTotals) {
  DemandMap d(2);
  d.set(Point{0, 0}, 2.5);
  d.add(Point{0, 0}, 0.5);
  d.set(Point{3, 4}, 1.0);
  EXPECT_DOUBLE_EQ(d.total(), 4.0);
  EXPECT_DOUBLE_EQ(d.max_demand(), 3.0);
  EXPECT_EQ(d.support_size(), 2u);
  d.set(Point{0, 0}, 0.0);
  EXPECT_EQ(d.support_size(), 1u);
  EXPECT_DOUBLE_EQ(d.at(Point{0, 0}), 0.0);
  EXPECT_THROW(d.set(Point{1, 1}, -1.0), check_error);
}

TEST(DemandMap, SupportSortedAndBoundingBox) {
  DemandMap d(2);
  d.set(Point{5, 1}, 1.0);
  d.set(Point{-2, 3}, 1.0);
  d.set(Point{0, 0}, 1.0);
  const auto s = d.support();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  const Box bb = d.bounding_box();
  EXPECT_EQ(bb.lo(), (Point{-2, 0}));
  EXPECT_EQ(bb.hi(), (Point{5, 3}));
  EXPECT_DOUBLE_EQ(d.sum_in(Box(Point{-2, 0}, Point{0, 3})), 2.0);
}

TEST(DenseGrid, RoundTripsDemand) {
  DemandMap d(2);
  d.set(Point{1, 1}, 2.0);
  d.set(Point{4, 2}, 3.0);
  const DenseGrid g = DenseGrid::from_demand(d);
  EXPECT_DOUBLE_EQ(g.at(Point{1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(g.at(Point{4, 2}), 3.0);
  EXPECT_DOUBLE_EQ(g.at(Point{2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(g.total(), 5.0);
  EXPECT_DOUBLE_EQ(g.max_value(), 3.0);
}

class PrefixSumRandom : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSumRandom, MatchesBruteForce) {
  const int dim = GetParam();
  Rng rng(static_cast<std::uint64_t>(1000 + dim));
  Point lo = Point::origin(dim), hi = Point::origin(dim);
  for (int i = 0; i < dim; ++i) {
    lo[i] = rng.next_int(-3, 0);
    hi[i] = lo[i] + rng.next_int(2, dim <= 2 ? 8 : 4);
  }
  const Box box(lo, hi);
  DenseGrid g(box);
  box.for_each_point(
      [&](const Point& p) { g.set(p, rng.next_double(0, 10)); });
  const PrefixSums ps(g);

  for (int trial = 0; trial < 50; ++trial) {
    Point qlo = Point::origin(dim), qhi = Point::origin(dim);
    for (int i = 0; i < dim; ++i) {
      qlo[i] = rng.next_int(lo[i] - 1, hi[i]);
      qhi[i] = rng.next_int(qlo[i], hi[i] + 1);
    }
    const Box query(qlo, qhi);
    double expected = 0.0;
    query.for_each_point([&](const Point& p) {
      if (box.contains(p)) expected += g.at(p);
    });
    EXPECT_NEAR(ps.box_sum(query), expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, PrefixSumRandom, ::testing::Values(1, 2, 3));

TEST(PrefixSums, MaxCubeSumFindsHotWindow) {
  DemandMap d(2);
  // Hot 2x2 block worth 10 plus scattered singles.
  d.set(Point{4, 4}, 3.0);
  d.set(Point{4, 5}, 3.0);
  d.set(Point{5, 4}, 2.0);
  d.set(Point{5, 5}, 2.0);
  d.set(Point{0, 0}, 1.0);
  d.set(Point{9, 9}, 1.0);
  const DenseGrid g = DenseGrid::from_demand(d);
  const PrefixSums ps(g);
  EXPECT_DOUBLE_EQ(ps.max_cube_sum(1), 3.0);
  EXPECT_DOUBLE_EQ(ps.max_cube_sum(2), 10.0);
  EXPECT_DOUBLE_EQ(ps.max_cube_sum(100), 12.0);
}

TEST(PrefixSums, BlockedBuildMatchesReferenceBitForBit) {
  // Both builds perform each lattice chain's additions in the same order,
  // so the tables must agree exactly (==, not near) — on random demand
  // with non-integral values, across dimensions and query shapes.
  Rng rng(77);
  for (const int dim : {2, 3}) {
    const std::int64_t span = dim == 2 ? 40 : 12;
    DemandMap d(dim);
    for (int i = 0; i < 300; ++i) {
      Point p = Point::origin(dim);
      for (int a = 0; a < dim; ++a) p[a] = rng.next_int(0, span - 1);
      d.add(p, rng.next_double(0.0, 1.0) + 0.1);
    }
    const DenseGrid g = DenseGrid::from_demand(d);
    const PrefixSums blocked(g, PrefixBuild::kBlocked);
    const PrefixSums reference(g, PrefixBuild::kReference);
    for (const std::int64_t side : {std::int64_t{1}, std::int64_t{2},
                                    std::int64_t{4}, std::int64_t{7}}) {
      EXPECT_EQ(blocked.max_cube_sum(side), reference.max_cube_sum(side))
          << "dim=" << dim << " side=" << side;
    }
    for (int q = 0; q < 50; ++q) {
      Point lo = Point::origin(dim);
      Point hi = Point::origin(dim);
      for (int a = 0; a < dim; ++a) {
        const std::int64_t x = rng.next_int(0, span - 1);
        const std::int64_t y = rng.next_int(0, span - 1);
        lo[a] = std::min(x, y);
        hi[a] = std::max(x, y);
      }
      const Box query(lo, hi);
      EXPECT_EQ(blocked.box_sum(query), reference.box_sum(query))
          << "dim=" << dim << " query=" << query.to_string();
    }
  }
}

}  // namespace
}  // namespace cmvrp
