#include <gtest/gtest.h>

#include <map>

#include "online/pairing.h"

namespace cmvrp {
namespace {

class PairingSweep
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(PairingSweep, SnakeIndexIsABijectionWithAdjacentSteps) {
  const auto [dim, side] = GetParam();
  const CubePairing pairing(dim, Point::origin(dim), side);
  const Point corner = Point::origin(dim);
  const Box cube = Box::cube(corner, side);
  const std::int64_t vol = pairing.cube_volume();

  std::map<std::int64_t, Point> by_index;
  cube.for_each_point([&](const Point& p) {
    const auto k = pairing.snake_index(p);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, vol);
    EXPECT_TRUE(by_index.emplace(k, p).second) << "duplicate index " << k;
    EXPECT_EQ(pairing.snake_vertex(corner, k), p);
  });
  ASSERT_EQ(static_cast<std::int64_t>(by_index.size()), vol);
  // Consecutive snake indices must be grid-adjacent — the property that
  // makes each pair a unit edge (walk <= 1 while serving, §3.2.1).
  for (std::int64_t k = 0; k + 1 < vol; ++k)
    EXPECT_EQ(l1_distance(by_index.at(k), by_index.at(k + 1)), 1)
        << "k=" << k;
}

TEST_P(PairingSweep, PairsArePerfectMatchingUpToOneSingleton) {
  const auto [dim, side] = GetParam();
  const CubePairing pairing(dim, Point::origin(dim), side);
  const Box cube = Box::cube(Point::origin(dim), side);
  std::int64_t singletons = 0;
  cube.for_each_point([&](const Point& p) {
    const Point q = pairing.partner(p);
    if (q == p) {
      ++singletons;
      EXPECT_TRUE(pairing.is_primary(p));
    } else {
      EXPECT_EQ(l1_distance(p, q), 1);          // pairs are adjacent
      EXPECT_EQ(pairing.partner(q), p);         // involution
      EXPECT_NE(pairing.is_primary(p), pairing.is_primary(q));
      EXPECT_EQ(pairing.primary(p), pairing.primary(q));
      // Opposite chessboard colors (the paper's black–white condition).
      EXPECT_NE(p.coordinate_sum_even(), q.coordinate_sum_even());
    }
    EXPECT_EQ(pairing.cube_corner(q), pairing.cube_corner(p));
  });
  EXPECT_EQ(singletons, pairing.cube_volume() % 2 == 0 ? 0 : 1);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSides, PairingSweep,
    ::testing::Values(std::tuple{1, 2}, std::tuple{1, 5}, std::tuple{2, 2},
                      std::tuple{2, 3}, std::tuple{2, 4}, std::tuple{2, 7},
                      std::tuple{3, 2}, std::tuple{3, 3},
                      std::tuple{4, 2}, std::tuple{4, 3}));

TEST(Pairing, CubeCornerHandlesNegativeCoordinates) {
  const CubePairing pairing(2, Point{0, 0}, 4);
  EXPECT_EQ(pairing.cube_corner(Point{-1, -1}), (Point{-4, -4}));
  EXPECT_EQ(pairing.cube_corner(Point{-4, 0}), (Point{-4, 0}));
  EXPECT_EQ(pairing.cube_corner(Point{3, 7}), (Point{0, 4}));
}

TEST(Pairing, AnchorShiftsPartition) {
  const CubePairing pairing(2, Point{1, 1}, 4);
  EXPECT_EQ(pairing.cube_corner(Point{1, 1}), (Point{1, 1}));
  EXPECT_EQ(pairing.cube_corner(Point{0, 0}), (Point{-3, -3}));
}

TEST(Pairing, PrimariesEnumerateEveryPairOnce) {
  const CubePairing pairing(2, Point{0, 0}, 3);
  const auto primaries = pairing.primaries_in_cube(Point{0, 0});
  EXPECT_EQ(primaries.size(), 5u);  // ceil(9 / 2)
  for (const auto& p : primaries) EXPECT_TRUE(pairing.is_primary(p));
}

}  // namespace
}  // namespace cmvrp
