#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/io.h"

namespace cmvrp {
namespace {

TEST(Io, DemandRoundTrip) {
  Rng rng(5);
  const DemandMap d =
      uniform_demand(Box(Point{-3, -3}, Point{5, 5}), 40, rng);
  std::stringstream buffer;
  save_demand(buffer, d);
  const DemandMap back = load_demand(buffer, 2);
  EXPECT_EQ(back.support_size(), d.support_size());
  for (const auto& p : d.support())
    EXPECT_DOUBLE_EQ(back.at(p), d.at(p)) << p.to_string();
}

TEST(Io, DemandParsesCommentsAndBlanks) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "1 2 3.5   # trailing comment\n"
      "   4 5 1\n");
  const DemandMap d = load_demand(in, 2);
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_DOUBLE_EQ(d.at(Point{1, 2}), 3.5);
  EXPECT_DOUBLE_EQ(d.at(Point{4, 5}), 1.0);
}

TEST(Io, DemandAccumulatesDuplicateLines) {
  std::istringstream in("0 0 2\n0 0 3\n");
  const DemandMap d = load_demand(in, 2);
  EXPECT_DOUBLE_EQ(d.at(Point{0, 0}), 5.0);
}

TEST(Io, DemandRejectsMalformedLines) {
  {
    std::istringstream in("1 2\n");  // missing value
    EXPECT_THROW(load_demand(in, 2), check_error);
  }
  {
    std::istringstream in("1 2 3 4\n");  // trailing token
    EXPECT_THROW(load_demand(in, 2), check_error);
  }
  {
    std::istringstream in("1 2 -3\n");  // negative demand
    EXPECT_THROW(load_demand(in, 2), check_error);
  }
  {
    std::istringstream in("x y 3\n");  // non-numeric
    EXPECT_THROW(load_demand(in, 2), check_error);
  }
}

TEST(Io, DemandErrorsIncludeLineNumbers) {
  std::istringstream in("0 0 1\nbroken\n");
  try {
    load_demand(in, 2);
    FAIL();
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Io, DemandOtherDimensions) {
  std::istringstream in1("7 2.5\n");
  const DemandMap d1 = load_demand(in1, 1);
  EXPECT_DOUBLE_EQ(d1.at(Point{7}), 2.5);
  std::istringstream in3("1 2 3 4\n");
  const DemandMap d3 = load_demand(in3, 3);
  EXPECT_DOUBLE_EQ(d3.at(Point{1, 2, 3}), 4.0);
}

TEST(Io, JobsRoundTripPreservesOrder) {
  std::vector<Job> jobs{{Point{3, 1}, 0}, {Point{0, 0}, 1}, {Point{3, 1}, 2}};
  std::stringstream buffer;
  save_jobs(buffer, jobs);
  const auto back = load_jobs(buffer, 2);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(back[i].position, jobs[i].position);
    EXPECT_EQ(back[i].index, static_cast<std::int64_t>(i));
  }
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_demand_file("/nonexistent/cmvrp.txt", 2), check_error);
  EXPECT_THROW(load_jobs_file("/nonexistent/cmvrp.txt", 2), check_error);
}

TEST(Io, SaveFileRoundTrip) {
  const std::string demand_path = testing::TempDir() + "cmvrp_io_demand.txt";
  const std::string jobs_path = testing::TempDir() + "cmvrp_io_jobs.txt";
  Rng rng(9);
  const DemandMap d = uniform_demand(Box(Point{0, 0}, Point{7, 7}), 30, rng);
  save_demand_file(demand_path, d);
  const DemandMap back = load_demand_file(demand_path, 2);
  EXPECT_EQ(back.support_size(), d.support_size());

  const std::vector<Job> jobs{{Point{1, 2}, 0}, {Point{3, 4}, 1}};
  save_jobs_file(jobs_path, jobs);
  const auto jobs_back = load_jobs_file(jobs_path, 2);
  ASSERT_EQ(jobs_back.size(), jobs.size());
  EXPECT_EQ(jobs_back[1].position, jobs[1].position);
}

#ifdef __linux__
// A full disk must raise check_error, not silently truncate: /dev/full
// accepts the open and fails the buffered write at flush time — exactly
// the path a bare `out.good()`-at-open check misses.
TEST(Io, FullDiskRaisesOnSave) {
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  DemandMap d(2);
  for (std::int64_t k = 0; k < 20000; ++k) d.add(Point{k, k}, 1.0);
  EXPECT_THROW(save_demand_file("/dev/full", d), check_error);

  std::vector<Job> jobs;
  for (std::int64_t k = 0; k < 20000; ++k) jobs.push_back({Point{k, k}, k});
  EXPECT_THROW(save_jobs_file("/dev/full", jobs), check_error);
}
#endif

}  // namespace
}  // namespace cmvrp
