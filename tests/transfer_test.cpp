#include <gtest/gtest.h>

#include <cmath>

#include "core/offline_planner.h"
#include "transfer/cube_collector.h"
#include "transfer/line_collector.h"
#include "transfer/theorem51.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

TransferParams fixed_params(double a1) {
  TransferParams p;
  p.model = TransferCostModel::kFixed;
  p.a1 = a1;
  return p;
}

TransferParams variable_params(double a2) {
  TransferParams p;
  p.model = TransferCostModel::kVariable;
  p.a2 = a2;
  return p;
}

// --- §5.2.1 line collector -----------------------------------------------------

TEST(LineCollector, TraceCountsMatchPaper) {
  const std::vector<double> demand(16, 3.0);
  const auto trace =
      simulate_line_collector(demand, /*w=*/20.0, fixed_params(1.0));
  EXPECT_TRUE(trace.feasible);
  EXPECT_EQ(trace.transfers, 2 * 16 - 3);
  EXPECT_EQ(trace.distance, 2 * 16 - 2);
}

TEST(LineCollector, FixedCostClosedFormMatchesSimulation) {
  for (std::int64_t n : {2, 4, 16, 64}) {
    for (double a1 : {0.5, 1.0, 3.0}) {
      const std::vector<double> demand(static_cast<std::size_t>(n), 5.0);
      const double total = 5.0 * static_cast<double>(n);
      const double formula = line_collector_w_fixed(n, total, a1);
      const double simulated =
          min_line_collector_w(demand, fixed_params(a1));
      EXPECT_NEAR(simulated, formula, 1e-5)
          << "n=" << n << " a1=" << a1;
    }
  }
}

TEST(LineCollector, VariableCostFormulaIsUpperBoundTighteningAsA2Shrinks) {
  // The paper charges every transfer as if it moved W units; the exact
  // per-unit accounting can only be cheaper, and agrees as a2 -> 0.
  const std::int64_t n = 32;
  const std::vector<double> demand(static_cast<std::size_t>(n), 4.0);
  const double total = 4.0 * n;
  double prev_gap = 1e9;
  for (double a2 : {0.2, 0.05, 0.01, 0.001}) {
    const double formula = line_collector_w_variable(n, total, a2);
    const double simulated =
        min_line_collector_w(demand, variable_params(a2));
    EXPECT_LE(simulated, formula + 1e-6) << "a2=" << a2;
    const double gap = (formula - simulated) / formula;
    EXPECT_LE(gap, prev_gap + 1e-9) << "a2=" << a2;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.05);
}

TEST(LineCollector, WIsThetaOfAverageDemand) {
  // §5.2.1's punchline: W_trans-off = Θ(avg d) under C = ∞.
  for (double avg : {2.0, 8.0, 32.0}) {
    const std::int64_t n = 64;
    const std::vector<double> demand(static_cast<std::size_t>(n), avg);
    const double w = min_line_collector_w(demand, fixed_params(1.0));
    EXPECT_NEAR(w, avg, avg * 0.5 + 4.0);  // avg + O(1) overheads
  }
}

TEST(LineCollector, NeedsHighCapacityTank) {
  // The pooling strategy really does need C >> W: the peak tank level is
  // ~N·W (all charges concentrated in the collector).
  const std::int64_t n = 32;
  const std::vector<double> demand(static_cast<std::size_t>(n), 4.0);
  const double w = min_line_collector_w(demand, fixed_params(1.0));
  const auto trace = simulate_line_collector(demand, w, fixed_params(1.0));
  EXPECT_GT(trace.max_tank_level, 0.5 * static_cast<double>(n) * w);
}

TEST(LineCollector, FiniteTankCapacityEnforced) {
  TransferParams p = fixed_params(1.0);
  p.tank_capacity = 10.0;  // far below N·W
  const std::vector<double> demand(16, 4.0);
  EXPECT_THROW(simulate_line_collector(demand, 8.0, p), check_error);
}

TEST(LineCollector, NonuniformDemandStillServed) {
  Rng rng(5);
  std::vector<double> demand(24);
  for (auto& d : demand) d = static_cast<double>(rng.next_int(0, 12));
  const double w = min_line_collector_w(demand, variable_params(0.01));
  const auto trace =
      simulate_line_collector(demand, w, variable_params(0.01));
  EXPECT_TRUE(trace.feasible);
  EXPECT_GE(trace.slack, -1e-9);
}

// --- Theorem 5.1.1 ------------------------------------------------------------

TEST(Theorem51, RelayDecayBasics) {
  EXPECT_DOUBLE_EQ(relay_decay(10.0, 0), 10.0);
  EXPECT_NEAR(relay_decay(10.0, 1), 9.0, 1e-12);
  EXPECT_NEAR(relay_decay(2.0, 2), 0.5, 1e-12);
  // Decay is monotone in distance and exponential-ish for D >> W.
  EXPECT_LT(relay_decay(10.0, 50), relay_decay(10.0, 10));
  EXPECT_LT(relay_decay(10.0, 100), 1e-3);
}

TEST(Theorem51, EnergyIntoSquareMonotone) {
  EXPECT_LT(max_energy_into_square(2.0, 4),
            max_energy_into_square(4.0, 4));
  EXPECT_LT(max_energy_into_square(4.0, 2),
            max_energy_into_square(4.0, 8));
  // Lower bound inverts it.
  const double w = wtrans_lower_bound_for_square(1000.0, 4);
  EXPECT_NEAR(max_energy_into_square(w, 4), 1000.0, 1.0);
}

TEST(Theorem51, TransferBoundsSandwichOnSquares) {
  // W_trans-off ∈ [wtrans_lower, woff_upper]; the ratio of the two sides
  // must stay bounded (Θ claim) across demand scales.
  for (double dd : {16.0, 64.0, 256.0}) {
    const DemandMap d = square_demand(8, dd, Point{0, 0});
    const auto b = transfer_bounds(d);
    EXPECT_GT(b.wtrans_lower, 0.0);
    EXPECT_LE(b.wtrans_lower, b.woff_upper + 1e-9) << "d=" << dd;
    EXPECT_LT(b.woff_upper / b.wtrans_lower, 200.0) << "d=" << dd;
  }
}

TEST(Theorem51, RatioStableAcrossScales) {
  // The Θ relationship: as demand scales by 16x the two bounds move
  // together (ratio varies by far less than the demand scale).
  const DemandMap small = square_demand(6, 8.0, Point{0, 0});
  const DemandMap big = square_demand(6, 128.0, Point{0, 0});
  const auto bs = transfer_bounds(small);
  const auto bb = transfer_bounds(big);
  const double ratio_small = bs.woff_upper / bs.wtrans_lower;
  const double ratio_big = bb.woff_upper / bb.wtrans_lower;
  EXPECT_LT(std::max(ratio_small, ratio_big) /
                std::min(ratio_small, ratio_big),
            4.0);
}

// --- cube collector --------------------------------------------------------------

TEST(CubeCollector, MatchesLineCollectorOnLineWorkload) {
  // A 1-wide cube row degenerates to the §5.2.1 line.
  DemandMap d(1);
  for (int i = 0; i < 16; ++i) d.set(Point{i}, 3.0);
  const auto r = cube_collector_requirements(d, 16, fixed_params(1.0));
  EXPECT_EQ(r.cubes, 1);
  const std::vector<double> lane(16, 3.0);
  EXPECT_NEAR(r.required_w, min_line_collector_w(lane, fixed_params(1.0)),
              1e-6);
}

TEST(CubeCollector, TransfersBeatMaxDemandOnSkewedCubes) {
  // One hot vertex (demand 100) in an 8x8 cube: without transfers a single
  // vehicle's share is ~100/(3^ℓ) in-place service; with pooling the
  // requirement collapses toward the cube average 100/64 + O(1) overhead.
  DemandMap d(2);
  d.set(Point{3, 3}, 100.0);
  const auto pooled = cube_collector_requirements(d, 8, fixed_params(0.5));
  const OfflinePlan plan = plan_offline(d);
  EXPECT_LT(pooled.required_w, plan.max_energy());
  EXPECT_GT(pooled.required_w, 100.0 / 64.0);  // cannot beat the average
}

TEST(CubeCollector, PartitionsMultipleCubes) {
  Rng rng(9);
  const Box box(Point{0, 0}, Point{15, 15});
  const DemandMap d = uniform_demand(box, 128, rng);
  const auto r = cube_collector_requirements(d, 4, variable_params(0.01));
  EXPECT_GT(r.cubes, 1);
  EXPECT_GT(r.required_w, 0.0);
}

}  // namespace
}  // namespace cmvrp
