#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/json.h"
#include "util/check.h"

namespace cmvrp {
namespace {

TEST(JsonNumber, IntegralValuesRenderWithoutFraction) {
  EXPECT_EQ(json_number_to_string(0.0), "0");
  EXPECT_EQ(json_number_to_string(20.0), "20");
  EXPECT_EQ(json_number_to_string(-7.0), "-7");
  EXPECT_EQ(json_number_to_string(1e15), "1000000000000000");
}

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(json_number_to_string(1.5), "1.5");
  EXPECT_EQ(json_number_to_string(0.1), "0.1");
  // 0.1 + 0.2 is famously not 0.3; the full 17 digits must appear.
  EXPECT_EQ(json_number_to_string(0.1 + 0.2), "0.30000000000000004");
  for (const double x : {1.0 / 3.0, 2.0 / 7.0, 1e-300, 6.02214076e23}) {
    const std::string s = json_number_to_string(x);
    EXPECT_EQ(std::stod(s), x) << s;
  }
}

TEST(JsonNumber, NonFiniteRejected) {
  EXPECT_THROW(json_number_to_string(std::numeric_limits<double>::infinity()),
               check_error);
  EXPECT_THROW(json_number_to_string(std::numeric_limits<double>::quiet_NaN()),
               check_error);
}

TEST(JsonDump, StringEscaping) {
  EXPECT_EQ(Json("plain").dump(), "\"plain\"");
  EXPECT_EQ(Json("say \"hi\"").dump(), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("a\nb\tc\rd").dump(), "\"a\\nb\\tc\\rd\"");
  EXPECT_EQ(Json(std::string("ctl\x01")).dump(), "\"ctl\\u0001\"");
  // UTF-8 passes through untouched.
  EXPECT_EQ(Json("ω_c ≤ ω*").dump(), "\"ω_c ≤ ω*\"");
}

TEST(JsonDump, NestedObjectsAndArrays) {
  Json doc = Json::object();
  doc.set("name", "offline");
  Json metrics = Json::object();
  metrics.set("omega_c", 0.5);
  metrics.set("ok", true);
  metrics.set("issue", Json());
  doc.set("metrics", metrics);
  Json cases = Json::array();
  cases.push_back(1);
  cases.push_back("two");
  cases.push_back(Json::array());
  doc.set("cases", cases);

  EXPECT_EQ(doc.dump(),
            "{\"name\":\"offline\",\"metrics\":{\"omega_c\":0.5,\"ok\":true,"
            "\"issue\":null},\"cases\":[1,\"two\",[]]}");
  // Pretty form parses back to the same document.
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(JsonObject, InsertionOrderIsStableAndOverwriteKeepsPlace) {
  Json o = Json::object();
  o.set("z", 1);
  o.set("a", 2);
  o.set("m", 3);
  o.set("z", 9);  // overwrite must not move "z" to the back
  EXPECT_EQ(o.dump(), "{\"z\":9,\"a\":2,\"m\":3}");
  EXPECT_EQ(o.at("z").as_number(), 9.0);
  EXPECT_TRUE(o.contains("m"));
  EXPECT_FALSE(o.contains("q"));
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("-12.25e2").as_number(), -1225.0);
  EXPECT_EQ(Json::parse("\"x\"").as_string(), "x");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "é");
  EXPECT_EQ(Json::parse("\"\\u2264\"").as_string(), "≤");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(Json::parse("\"\\ud83d\""), check_error);  // unpaired high
  EXPECT_THROW(Json::parse("\"\\ude00\""), check_error);  // unpaired low
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), check_error);
  EXPECT_THROW(Json::parse("{"), check_error);
  EXPECT_THROW(Json::parse("[1,]"), check_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), check_error);
  EXPECT_THROW(Json::parse("\"unterminated"), check_error);
  EXPECT_THROW(Json::parse("\"bad\\q\""), check_error);
  EXPECT_THROW(Json::parse("1 2"), check_error);       // trailing tokens
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), check_error);  // dup key
  EXPECT_THROW(Json::parse("nulL"), check_error);
  EXPECT_THROW(Json::parse("1."), check_error);
  EXPECT_THROW(Json::parse("- 1"), check_error);
  EXPECT_THROW(Json::parse("1e999"), check_error);   // overflows double
  EXPECT_THROW(Json::parse("-1e999"), check_error);
  EXPECT_EQ(Json::parse("1e-999").as_number(), 0.0);  // underflow is fine
}

TEST(JsonParse, TypeMismatchAccessorsThrow) {
  EXPECT_THROW(Json(1.0).as_string(), check_error);
  EXPECT_THROW(Json("x").as_number(), check_error);
  EXPECT_THROW(Json::array().at("key"), check_error);
  EXPECT_THROW(Json::object().at(std::size_t{0}), check_error);
  EXPECT_THROW(Json::object().at("missing"), check_error);
}

// The schema-stability property the BENCH artifacts rely on: parsing and
// re-dumping is the identity on dumped output, for both layouts.
TEST(JsonRoundTrip, DumpParseDumpIsStable) {
  Json doc = Json::object();
  doc.set("schema", "cmvrp-bench-v1");
  doc.set("failed", false);
  Json sec = Json::object();
  sec.set("name", "main");
  Json c = Json::object();
  c.set("name", "uniform/12x12/n60");
  Json t = Json::object();
  t.set("reps", 3);
  t.set("mean", 0.1234567890123);
  t.set("stddev", 0.0);
  c.set("time_ms", t);
  Json m = Json::object();
  m.set("omega_c", 1.0 / 3.0);
  m.set("exit rule", "D-hat");
  m.set("covers d?", true);
  c.set("metrics", m);
  Json arr = Json::array();
  arr.push_back(c);
  sec.set("cases", arr);
  Json sections = Json::array();
  sections.push_back(sec);
  doc.set("sections", sections);

  for (const int indent : {0, 2, 4}) {
    const std::string once = doc.dump(indent);
    const std::string twice = Json::parse(once).dump(indent);
    EXPECT_EQ(once, twice);
    EXPECT_EQ(Json::parse(once), doc);
  }
  // Cross-layout: pretty and compact agree on content.
  EXPECT_EQ(Json::parse(doc.dump(2)), Json::parse(doc.dump()));
}

}  // namespace
}  // namespace cmvrp
