#include <gtest/gtest.h>

#include "flow/earthmover.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

TEST(Earthmover, IdenticalDistributionsCostZero) {
  DemandMap a(2);
  a.set(Point{1, 1}, 3.0);
  a.set(Point{4, 0}, 2.0);
  const auto r = earthmover(a, a);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
}

TEST(Earthmover, SingleMovePaysDistanceTimesAmount) {
  DemandMap supply(2), demand(2);
  supply.set(Point{0, 0}, 5.0);
  demand.set(Point{3, 4}, 5.0);
  const auto r = earthmover(supply, demand);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 5.0 * 7.0, 1e-3);
  ASSERT_EQ(r.moves.size(), 1u);
  EXPECT_NEAR(r.moves[0].amount, 5.0, 1e-4);
}

TEST(Earthmover, PrefersNearSupply) {
  DemandMap supply(2), demand(2);
  supply.set(Point{0, 0}, 4.0);   // distance 1
  supply.set(Point{9, 0}, 10.0);  // distance 8
  demand.set(Point{1, 0}, 4.0);
  const auto r = earthmover(supply, demand);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 4.0 * 1.0, 1e-3);
}

TEST(Earthmover, InfeasibleWhenSupplyShort) {
  DemandMap supply(2), demand(2);
  supply.set(Point{0, 0}, 1.0);
  demand.set(Point{1, 0}, 2.0);
  EXPECT_FALSE(earthmover(supply, demand).feasible);
}

TEST(Earthmover, SplitsAcrossSuppliers) {
  DemandMap supply(2), demand(2);
  supply.set(Point{0, 0}, 2.0);
  supply.set(Point{4, 0}, 2.0);
  demand.set(Point{2, 0}, 4.0);
  const auto r = earthmover(supply, demand);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 2.0 * 2 + 2.0 * 2, 1e-3);
  EXPECT_EQ(r.moves.size(), 2u);
}

TEST(Earthmover, MovesConserveMass) {
  Rng rng(77);
  DemandMap supply(2), demand(2);
  for (int k = 0; k < 6; ++k)
    supply.add(Point{rng.next_int(0, 6), rng.next_int(0, 6)},
               static_cast<double>(rng.next_int(1, 5)));
  for (int k = 0; k < 4; ++k)
    demand.add(Point{rng.next_int(0, 6), rng.next_int(0, 6)},
               static_cast<double>(rng.next_int(1, 3)));
  if (supply.total() < demand.total()) return;  // construction quirk
  const auto r = earthmover(supply, demand);
  ASSERT_TRUE(r.feasible);
  DemandMap delivered(2);
  for (const auto& m : r.moves) delivered.add(m.to, m.amount);
  for (const auto& p : demand.support())
    EXPECT_NEAR(delivered.at(p), demand.at(p), 1e-3) << p.to_string();
}

TEST(Earthmover, TriangleInequalityAcrossWaypoints) {
  // Moving A->C directly never costs more than A->B plus B->C (L1 costs
  // are a metric and MCMF finds the optimum).
  DemandMap a(2), b(2), c(2);
  a.set(Point{0, 0}, 3.0);
  b.set(Point{5, 5}, 3.0);
  c.set(Point{2, 7}, 3.0);
  const double ac = earthmover(a, c).cost;
  const double ab = earthmover(a, b).cost;
  const double bc = earthmover(b, c).cost;
  EXPECT_LE(ac, ab + bc + 1e-6);
}

}  // namespace
}  // namespace cmvrp
