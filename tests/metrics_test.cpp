// metrics/: the latency histogram's exact-percentile contract (checked
// against a sort-the-samples oracle) and the stride-sampled timeseries'
// deterministic decimation.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/latency_histogram.h"
#include "metrics/timeseries.h"
#include "util/check.h"
#include "util/rng.h"

namespace cmvrp {
namespace {

// Oracle: nearest-rank percentile by literally sorting the clamped
// samples (values past max_value sit at the max_value + 1 sentinel,
// exactly like the histogram's overflow bucket).
std::int64_t oracle_percentile(std::vector<std::int64_t> values,
                               std::int64_t max_value, double p) {
  if (values.empty()) return 0;
  for (auto& v : values) v = std::min(v, max_value + 1);
  std::sort(values.begin(), values.end());
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  rank = std::max<std::uint64_t>(rank, 1);
  rank = std::min<std::uint64_t>(rank, values.size());
  return values[static_cast<std::size_t>(rank - 1)];
}

const double kPercentiles[] = {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0};

void expect_matches_oracle(const std::vector<std::int64_t>& values,
                           std::int64_t max_value) {
  LatencyHistogram h(max_value);
  for (const auto v : values) h.add(v);
  ASSERT_EQ(h.count(), values.size());
  for (const double p : kPercentiles)
    EXPECT_EQ(h.percentile(p), oracle_percentile(values, max_value, p))
        << "p=" << p << " n=" << values.size() << " max=" << max_value;
}

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.observed_max(), 0);
  EXPECT_EQ(h.overflow_count(), 0u);
  for (const double p : kPercentiles) EXPECT_EQ(h.percentile(p), 0);
  EXPECT_EQ(h, LatencyHistogram());
  EXPECT_EQ(h.digest(), LatencyHistogram().digest());
}

TEST(LatencyHistogram, TinySizesMatchOracle) {
  expect_matches_oracle({5}, 100);
  expect_matches_oracle({0}, 100);
  expect_matches_oracle({3, 9}, 100);
  expect_matches_oracle({9, 3}, 100);
  expect_matches_oracle({7, 7, 7}, 100);
}

TEST(LatencyHistogram, TiesMatchOracle) {
  std::vector<std::int64_t> values;
  for (int i = 0; i < 50; ++i) values.push_back(4);
  for (int i = 0; i < 50; ++i) values.push_back(11);
  expect_matches_oracle(values, 100);
}

TEST(LatencyHistogram, SingleBucketAllZeros) {
  std::vector<std::int64_t> values(17, 0);
  expect_matches_oracle(values, 100);
  LatencyHistogram h(100);
  for (const auto v : values) h.add(v);
  EXPECT_EQ(h.percentile(100.0), 0);
  EXPECT_EQ(h.observed_max(), 0);
}

TEST(LatencyHistogram, RandomStreamsMatchOracle) {
  Rng rng(42);
  for (const std::size_t n : {3u, 17u, 1000u}) {
    std::vector<std::int64_t> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      values.push_back(rng.next_int(0, 200));
    expect_matches_oracle(values, 1 << 20);
    // Tight clamp: the same stream with most mass overflowing.
    expect_matches_oracle(values, 16);
  }
}

TEST(LatencyHistogram, OverflowClampsToSentinel) {
  LatencyHistogram h(16);
  h.add(3);
  h.add(999);
  h.add(1000000);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.observed_max(), 1000000);  // exact, not clamped
  EXPECT_EQ(h.percentile(0.0), 3);
  EXPECT_EQ(h.percentile(100.0), 17);  // max_value + 1 sentinel
  expect_matches_oracle({3, 999, 1000000}, 16);
}

TEST(LatencyHistogram, MergeEqualsBulkAdd) {
  Rng rng(7);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.next_int(0, 40));
  LatencyHistogram whole(32), left(32), right(32);
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.add(values[i]);
    (i % 2 == 0 ? left : right).add(values[i]);
  }
  LatencyHistogram lr = left;
  lr.merge(right);
  LatencyHistogram rl = right;
  rl.merge(left);  // commutative
  EXPECT_EQ(lr, whole);
  EXPECT_EQ(rl, whole);
  EXPECT_EQ(lr.digest(), whole.digest());
  EXPECT_EQ(rl.digest(), whole.digest());
  for (const double p : kPercentiles)
    EXPECT_EQ(lr.percentile(p), whole.percentile(p));
}

TEST(LatencyHistogram, DigestSeparatesDifferentMultisets) {
  LatencyHistogram a, b;
  a.add(1);
  a.add(2);
  b.add(1);
  b.add(3);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a, b);
  b.add(2);
  a.add(3);  // now equal multisets, added in different orders
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(LatencyHistogram, MergeGrowsBucketsWithoutChangingContent) {
  // Merging a wider histogram (buckets out to 50) into a narrow one must
  // equal the bulk-add result even though the internal vectors differ in
  // length before the merge.
  LatencyHistogram narrow, wide, whole;
  narrow.add(2);
  wide.add(50);
  whole.add(2);
  whole.add(50);
  narrow.merge(wide);
  EXPECT_EQ(narrow, whole);
  EXPECT_EQ(narrow.digest(), whole.digest());
}

TEST(LatencyHistogram, RejectsInvalidInput) {
  LatencyHistogram h;
  EXPECT_THROW(h.add(-1), check_error);
  EXPECT_THROW(h.percentile(-0.1), check_error);
  EXPECT_THROW(h.percentile(100.1), check_error);
  EXPECT_THROW(LatencyHistogram(0), check_error);
  LatencyHistogram other(64);
  EXPECT_THROW(h.merge(other), check_error);  // different bucket ranges
}

TEST(Timeseries, StrideZeroNeverDue) {
  Timeseries s(0);
  for (std::int64_t t = 0; t < 100; ++t) EXPECT_FALSE(s.due(t));
}

TEST(Timeseries, DueOnStrideMultiples) {
  Timeseries s(8);
  EXPECT_TRUE(s.due(0));
  EXPECT_FALSE(s.due(7));
  EXPECT_TRUE(s.due(8));
  EXPECT_TRUE(s.due(64));
  EXPECT_FALSE(s.due(65));
}

TEST(Timeseries, DecimationKeepsDoubledStrideMultiples) {
  Timeseries s(2, /*max_samples=*/4);
  for (std::int64_t t = 2; t <= 10; t += 2)
    if (s.due(t)) s.record(t, t, 0);
  // Recording ticks 2,4,6,8 filled the series; tick 10 forced a
  // decimation to the odd positions — ticks 4 and 8, exactly the
  // multiples of the doubled stride (10 is not, and is dropped).
  EXPECT_EQ(s.stride(), 4);
  ASSERT_EQ(s.samples().size(), 2u);
  EXPECT_EQ(s.samples()[0].tick, 4);
  EXPECT_EQ(s.samples()[1].tick, 8);
  // The surviving samples keep their payloads.
  EXPECT_EQ(s.samples()[0].queue_depth, 4);
  EXPECT_EQ(s.samples()[1].queue_depth, 8);
}

TEST(Timeseries, RecordRequiresDueTick) {
  Timeseries s(4);
  EXPECT_THROW(s.record(3, 0, 0), check_error);
  EXPECT_THROW(Timeseries(-1), check_error);
  EXPECT_THROW(Timeseries(2, 1), check_error);
}

TEST(TimeseriesSummary, FoldIsOrderSensitiveAndSkipsEmpty) {
  Timeseries a(2), b(2);
  a.record(2, 1, 100);
  b.record(2, 3, 200);
  TimeseriesSummary ab, ba;
  ab.fold(1, a);
  ab.fold(2, b);
  ba.fold(2, b);
  ba.fold(1, a);
  EXPECT_EQ(ab.cubes_sampled, 2u);
  EXPECT_EQ(ab.samples, 2u);
  EXPECT_EQ(ab.max_queue_depth, 3);
  EXPECT_EQ(ab.max_occupancy_pm, 200);
  // Counts and maxima are order-invariant; the digest pins the order.
  EXPECT_EQ(ab.cubes_sampled, ba.cubes_sampled);
  EXPECT_EQ(ab.max_queue_depth, ba.max_queue_depth);
  EXPECT_NE(ab.digest, ba.digest);

  TimeseriesSummary with_empty = ab;
  with_empty.fold(99, Timeseries(4));  // never sampled: must be a no-op
  EXPECT_EQ(with_empty, ab);
}

}  // namespace
}  // namespace cmvrp
