// Out-of-core trace subsystem: the cmvrp-trace-v1 byte layout (golden
// bytes), writer/reader round trips, corrupt-input diagnostics, and the
// replay-equivalence contract — TraceReplayer over a trace is
// bit-identical to in-memory serve_stream at every thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "trace/format.h"
#include "trace/mapped_file.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/stream_gen.h"

namespace cmvrp {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "cmvrp_" + name;
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Opens a trace expected to be malformed; asserts the error message
// carries the given fragments (byte offsets, field names).
void expect_open_error(const std::string& path,
                       const std::vector<std::string>& fragments) {
  try {
    TraceReader reader(path);
    FAIL() << "expected check_error for " << path;
  } catch (const check_error& e) {
    const std::string what = e.what();
    for (const auto& fragment : fragments)
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing \"" << fragment << "\" in: " << what;
  }
}

// --- golden bytes: the v1 layout is pinned ----------------------------------

TEST(TraceFormat, GoldenBytes) {
  const std::string path = temp_path("golden.trace");
  {
    TraceWriter writer(path, 2);
    writer.append(Job{Point{3, -1}, 0});
    writer.append(Job{Point{260, 7}, 1});
    writer.close();
  }
  const std::vector<unsigned char> expected = {
      // header: magic, version=1, dim=2, count=2, flags=0
      'c', 'm', 'v', 'r', 'p', 't', 'r', 'c',        // magic
      1, 0, 0, 0,                                    // version
      2, 0, 0, 0,                                    // dim
      2, 0, 0, 0, 0, 0, 0, 0,                        // job_count
      0, 0, 0, 0, 0, 0, 0, 0,                        // flags
      // record 0: (3, -1), index 0
      3, 0, 0, 0, 0, 0, 0, 0,                        // x = 3
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  // y = -1
      0, 0, 0, 0, 0, 0, 0, 0,                        // index = 0
      // record 1: (260, 7), index 1
      4, 1, 0, 0, 0, 0, 0, 0,                        // x = 260 = 0x104
      7, 0, 0, 0, 0, 0, 0, 0,                        // y = 7
      1, 0, 0, 0, 0, 0, 0, 0,                        // index = 1
  };
  EXPECT_EQ(read_bytes(path), expected);
}

TEST(TraceFormat, RecordSizeTracksDim) {
  EXPECT_EQ(trace_record_size(1), 16u);
  EXPECT_EQ(trace_record_size(2), 24u);
  EXPECT_EQ(trace_record_size(3), 32u);
  EXPECT_EQ(trace_record_size(4), 40u);
}

// --- writer/reader round trips ----------------------------------------------

TEST(TraceRoundTrip, AllDimensions) {
  for (const int dim : {1, 2, 3, 4}) {
    const std::string path =
        temp_path("rt" + std::to_string(dim) + ".trace");
    Rng rng(static_cast<std::uint64_t>(dim) * 7 + 1);
    std::vector<Job> jobs;
    for (std::int64_t k = 0; k < 137; ++k) {
      Point p = Point::origin(dim);
      for (int i = 0; i < dim; ++i) p[i] = rng.next_int(-1000, 1000);
      jobs.push_back(Job{p, k});
    }
    {
      TraceWriter writer(path, dim);
      writer.append(jobs.data(), jobs.size());
      EXPECT_EQ(writer.jobs_written(), jobs.size());
      writer.close();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.dim(), dim);
    EXPECT_EQ(reader.job_count(), jobs.size());
    const auto back = reader.read_all();
    ASSERT_EQ(back.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(back[i].position, jobs[i].position);
      EXPECT_EQ(back[i].index, jobs[i].index);
    }
  }
}

TEST(TraceRoundTrip, BoundedBatchIterationMatchesReadAll) {
  const std::string path = temp_path("chunks.trace");
  {
    TraceWriter writer(path, 2);
    for (std::int64_t k = 0; k < 100; ++k)
      writer.append(Job{Point{k, -k}, k});
    writer.close();
  }
  TraceReader reader(path);
  std::vector<Job> chunked;
  std::vector<Job> buffer(7);  // deliberately not a divisor of 100
  std::size_t n = 0;
  while ((n = reader.next_batch(buffer.data(), buffer.size())) > 0) {
    EXPECT_LE(n, buffer.size());
    chunked.insert(chunked.end(), buffer.begin(),
                   buffer.begin() + static_cast<long>(n));
  }
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(reader.next_batch(buffer.data(), buffer.size()), 0u);
  const auto all = reader.read_all();  // read_all rewinds
  ASSERT_EQ(chunked.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(chunked[i].position, all[i].position);
    EXPECT_EQ(chunked[i].index, all[i].index);
  }
}

TEST(TraceRoundTrip, EmptyTrace) {
  const std::string path = temp_path("empty.trace");
  {
    TraceWriter writer(path, 3);
    writer.close();
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.job_count(), 0u);
  Job buffer;
  EXPECT_EQ(reader.next_batch(&buffer, 1), 0u);
  EXPECT_TRUE(reader.read_all().empty());
}

TEST(TraceRoundTrip, TraceDemandMatchesStreamDemand) {
  const std::string path = temp_path("demand.trace");
  Rng rng(91);
  const auto jobs = collect_jobs([&rng](const JobSink& sink) {
    bursty_hotspot_stream(2, 4, 4, 300, 20, rng, sink);
  });
  {
    TraceWriter writer(path, 2);
    writer.append(jobs.data(), jobs.size());
    writer.close();
  }
  TraceReader reader(path);
  const DemandMap induced = trace_demand(reader);
  const DemandMap expected = demand_of_stream(jobs, 2);
  EXPECT_EQ(induced.support_size(), expected.support_size());
  for (const auto& p : expected.support())
    EXPECT_DOUBLE_EQ(induced.at(p), expected.at(p)) << p.to_string();
  EXPECT_EQ(reader.remaining(), reader.job_count());  // cursor rewound
}

// --- writer error handling --------------------------------------------------

TEST(TraceWriter, RejectsBadPathDimAndMisuse) {
  EXPECT_THROW(TraceWriter("/nonexistent-dir/cmvrp.trace", 2), check_error);
  EXPECT_THROW(TraceWriter(temp_path("bad.trace"), 0), check_error);
  EXPECT_THROW(TraceWriter(temp_path("bad.trace"), 5), check_error);

  // A rejected dim must not truncate an existing file at that path.
  const std::string keep = temp_path("keep.trace");
  write_bytes(keep, {9, 9, 9});
  EXPECT_THROW(TraceWriter(keep, 0), check_error);
  EXPECT_EQ(read_bytes(keep).size(), 3u);

  const std::string path = temp_path("misuse.trace");
  TraceWriter writer(path, 2);
  EXPECT_THROW(writer.append(Job{Point{0, 0, 0}, 0}), check_error);  // dim 3
  writer.close();
  EXPECT_THROW(writer.append(Job{Point{0, 0}, 0}), check_error);
  EXPECT_THROW(writer.close(), check_error);  // double close
}

#ifdef __linux__
TEST(TraceWriter, FullDiskRaisesInsteadOfTruncating) {
  // /dev/full accepts opens and fails writes with ENOSPC.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  try {
    TraceWriter writer("/dev/full", 2);
    for (int k = 0; k < 100000; ++k)  // enough to force a flush
      writer.append(Job{Point{k, k}, k});
    writer.close();
    FAIL() << "expected check_error on a full disk";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("disk full"), std::string::npos)
        << e.what();
  }
}
#endif

// --- corrupt-input diagnostics ----------------------------------------------

std::vector<unsigned char> valid_trace_bytes() {
  const std::string path = temp_path("template.trace");
  TraceWriter writer(path, 2);
  writer.append(Job{Point{1, 2}, 0});
  writer.append(Job{Point{3, 4}, 1});
  writer.close();
  return read_bytes(path);
}

TEST(TraceReaderErrors, FileShorterThanHeader) {
  const std::string path = temp_path("short.trace");
  write_bytes(path, {'c', 'm', 'v'});
  expect_open_error(path, {"too short", "3 bytes"});
}

TEST(TraceReaderErrors, BadMagic) {
  auto bytes = valid_trace_bytes();
  bytes[4] = 'X';
  const std::string path = temp_path("magic.trace");
  write_bytes(path, bytes);
  expect_open_error(path, {"magic", "byte offset 4"});
}

TEST(TraceReaderErrors, UnsupportedVersion) {
  auto bytes = valid_trace_bytes();
  store_le32(bytes.data() + kTraceVersionOffset, 9);
  const std::string path = temp_path("version.trace");
  write_bytes(path, bytes);
  expect_open_error(path, {"version 9", "byte offset 8"});
}

TEST(TraceReaderErrors, DimOutOfRange) {
  auto bytes = valid_trace_bytes();
  store_le32(bytes.data() + kTraceDimOffset, 7);
  const std::string path = temp_path("dim.trace");
  write_bytes(path, bytes);
  expect_open_error(path, {"dim 7", "byte offset 12"});
}

TEST(TraceReaderErrors, NonzeroFlags) {
  auto bytes = valid_trace_bytes();
  store_le64(bytes.data() + kTraceFlagsOffset, 0x80);
  const std::string path = temp_path("flags.trace");
  write_bytes(path, bytes);
  expect_open_error(path, {"flags", "byte offset 24"});
}

TEST(TraceReaderErrors, TruncatedRecord) {
  auto bytes = valid_trace_bytes();
  bytes.resize(bytes.size() - 5);  // tear the tail off record 1
  const std::string path = temp_path("torn.trace");
  write_bytes(path, bytes);
  // Record 1 starts at 32 + 24 = 56 and is incomplete.
  expect_open_error(path, {"truncated", "record 1", "byte offset 56"});
}

TEST(TraceReaderErrors, CountSizeDisagreement) {
  auto bytes = valid_trace_bytes();
  store_le64(bytes.data() + kTraceCountOffset, 3);  // claims one extra
  const std::string path = temp_path("count.trace");
  write_bytes(path, bytes);
  expect_open_error(path, {"count/size disagreement", "claims 3", "hold 2"});
}

TEST(TraceReaderErrors, MissingFile) {
  EXPECT_THROW(TraceReader("/nonexistent/cmvrp.trace"), check_error);
}

// --- mapped file -------------------------------------------------------------

TEST(MappedFileTest, MapsRealFilesOnThisPlatform) {
  const std::string path = temp_path("mapped.bin");
  write_bytes(path, {1, 2, 3, 4, 5});
  MappedFile file(path);
  ASSERT_EQ(file.size(), 5u);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(file.mapped());
#endif
  EXPECT_EQ(file.data()[0], 1);
  EXPECT_EQ(file.data()[4], 5);

  MappedFile moved(std::move(file));
  EXPECT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved.data()[2], 3);
  EXPECT_EQ(file.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd
}

TEST(MappedFileTest, ConstructorToggleForcesReadFallback) {
  const std::string path = temp_path("fallback.bin");
  write_bytes(path, {9, 8, 7, 6});
  MappedFile file(path, /*allow_mmap=*/false);
  EXPECT_FALSE(file.mapped());
  ASSERT_EQ(file.size(), 4u);
  EXPECT_EQ(file.data()[0], 9);
  EXPECT_EQ(file.data()[3], 6);

  // Moves keep the fallback buffer's bytes reachable.
  MappedFile moved(std::move(file));
  EXPECT_FALSE(moved.mapped());
  ASSERT_EQ(moved.size(), 4u);
  EXPECT_EQ(moved.data()[1], 8);

  EXPECT_THROW(MappedFile("/nonexistent/cmvrp.bin", false), check_error);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(MappedFileTest, EnvironmentToggleForcesReadFallbackEndToEnd) {
  // CMVRP_NO_MMAP pins the whole reader stack to the fallback path; the
  // decode (and therefore replay) must be byte-identical either way.
  const std::string path = temp_path("env_fallback.trace");
  {
    TraceWriter writer(path, 2);
    Rng rng(623);
    bursty_hotspot_stream(2, 4, 4, 300, 16, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  TraceReader mapped(path);
  EXPECT_TRUE(mapped.mapped());
  const auto expected = mapped.read_all();

  ASSERT_EQ(setenv("CMVRP_NO_MMAP", "1", 1), 0);
  EXPECT_TRUE(MappedFile::mmap_disabled_by_env());
  {
    TraceReader fallback(path);
    EXPECT_FALSE(fallback.mapped());
    const auto jobs = fallback.read_all();
    ASSERT_EQ(jobs.size(), expected.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(jobs[i].position, expected[i].position);
      EXPECT_EQ(jobs[i].index, expected[i].index);
    }
  }
  ASSERT_EQ(unsetenv("CMVRP_NO_MMAP"), 0);
  EXPECT_FALSE(MappedFile::mmap_disabled_by_env());
  // "0" (and empty) keep mmap enabled.
  ASSERT_EQ(setenv("CMVRP_NO_MMAP", "0", 1), 0);
  EXPECT_FALSE(MappedFile::mmap_disabled_by_env());
  ASSERT_EQ(unsetenv("CMVRP_NO_MMAP"), 0);
}
#endif

// --- replay equivalence: the acceptance contract -----------------------------

void expect_identical(const StreamResult& a, const StreamResult& b) {
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.served_jobs, b.served_jobs);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.shed_jobs, b.shed_jobs);
  EXPECT_EQ(a.jobs_shed, b.jobs_shed);
  EXPECT_EQ(a.jobs_rejected, b.jobs_rejected);
  EXPECT_TRUE(a.latency == b.latency);
  EXPECT_EQ(a.latency.digest(), b.latency.digest());
  EXPECT_TRUE(a.timeseries == b.timeseries);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.counters.digest(), b.counters.digest());
  EXPECT_EQ(a.cubes, b.cubes);
  EXPECT_EQ(a.jobs_ingested, b.jobs_ingested);
}

StreamConfig replay_config(int dim, int threads, std::int64_t batch) {
  StreamConfig cfg;
  cfg.online.capacity = 24.0;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point::origin(dim);
  cfg.online.seed = 7;
  cfg.threads = threads;
  cfg.batch_size = batch;
  return cfg;
}

TEST(TraceReplay, BitIdenticalToInMemoryServingAcrossThreadCounts) {
  const std::string path = temp_path("replay.trace");
  // Producer: streaming generator -> writer, one record at a time.
  {
    TraceWriter writer(path, 2);
    Rng rng(611);
    bursty_hotspot_stream(2, 4, 8, 2000, 64, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  // In-memory reference on the identical stream.
  Rng rng(611);
  const auto jobs = collect_jobs([&rng](const JobSink& sink) {
    bursty_hotspot_stream(2, 4, 8, 2000, 64, rng, sink);
  });
  const StreamResult memory =
      serve_stream(2, replay_config(2, 1, 256), jobs);
  ASSERT_EQ(memory.jobs_ingested, 2000u);

  for (const int threads : {1, 2, 8}) {
    TraceReader reader(path);
    TraceReplayer replayer(2, replay_config(2, threads, 256));
    const StreamResult replayed = replayer.replay(reader);
    expect_identical(memory, replayed);
  }
}

TEST(TraceReplay, CountersOnReplayMatchesInMemoryServing) {
  // The Tier-A counter registry (src/obs/) must survive the trace
  // boundary: replaying a recorded stream with counters on folds to the
  // same registry as serving the jobs from memory, at every thread
  // count. Undersized capacity so Phase I floods and cascades occur.
  const std::string path = temp_path("replay_obs.trace");
  {
    TraceWriter writer(path, 2);
    Rng rng(619);
    bursty_hotspot_stream(2, 4, 8, 2000, 64, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  Rng rng(619);
  const auto jobs = collect_jobs([&rng](const JobSink& sink) {
    bursty_hotspot_stream(2, 4, 8, 2000, 64, rng, sink);
  });
  StreamConfig cfg = replay_config(2, 1, 256);
  cfg.online.capacity = 8.0;
  cfg.online.obs.counters = true;
  const StreamResult memory = serve_stream(2, cfg, jobs);
  ASSERT_GT(memory.counters.replacements, 0u);
  ASSERT_GT(memory.counters.comps_finished, 0u);
  ASSERT_GT(memory.counters.max_queries_per_comp, 0u);

  for (const int threads : {1, 2, 8}) {
    StreamConfig c = cfg;
    c.threads = threads;
    TraceReader reader(path);
    TraceReplayer replayer(2, c);
    expect_identical(memory, replayer.replay(reader));
  }
}

TEST(TraceReplay, FlatSlotRoutingMatchesOverflowOnRecordedTraces) {
  // The same recorded trace served twice: once with a region (dense
  // cube-slot routing) and once without (pure corner-hashed overflow) —
  // the engine's outcome must not know which path routed it.
  const std::string path = temp_path("flat_replay.trace");
  {
    TraceWriter writer(path, 2);
    Rng rng(617);
    bursty_hotspot_stream(2, 4, 8, 2000, 64, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  const StreamConfig overflow = replay_config(2, 2, 256);
  StreamConfig flat = replay_config(2, 2, 256);
  flat.region = Box(Point{0, 0}, Point{31, 31});

  TraceReader r1(path);
  TraceReplayer rp1(2, overflow);
  const StreamResult a = rp1.replay(r1);
  TraceReader r2(path);
  TraceReplayer rp2(2, flat);
  const StreamResult b = rp2.replay(r2);
  EXPECT_EQ(a.cube_slots, 0u);
  EXPECT_GT(b.cube_slots, 0u);
  expect_identical(a, b);
}

TEST(TraceReplay, HigherDimensionTracesReplayIdentically) {
  for (const int dim : {3, 4}) {
    const std::string path =
        temp_path("replay" + std::to_string(dim) + ".trace");
    {
      TraceWriter writer(path, dim);
      Rng rng(613);
      bursty_hotspot_stream(dim, 2, 3, 600, 24, rng,
                            [&writer](const Job& j) { writer.append(j); });
      writer.close();
    }
    Rng rng(613);
    const auto jobs = collect_jobs([&rng, dim](const JobSink& sink) {
      bursty_hotspot_stream(dim, 2, 3, 600, 24, rng, sink);
    });
    StreamConfig cfg = replay_config(dim, 2, 128);
    cfg.online.cube_side = 2;
    const StreamResult memory = serve_stream(dim, cfg, jobs);
    TraceReader reader(path);
    TraceReplayer replayer(dim, cfg);
    expect_identical(memory, replayer.replay(reader));
  }
}

TEST(TraceReplay, BoundedMemoryPathHandlesStreamsFarBeyondOneBatch) {
  // Acceptance shape: stream length >= 10 x (batch x threads); the
  // producer streams into the writer and the replayer's only job buffer
  // is one engine batch, so neither side ever holds the job vector.
  const std::int64_t batch = 16;
  const int threads = 2;
  const std::int64_t count = 10 * batch * threads * 4;  // 1280 jobs
  const std::string path = temp_path("bounded.trace");
  {
    TraceWriter writer(path, 2);
    Rng rng(617);
    bursty_hotspot_stream(2, 4, 8, count, 32, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  TraceReader reader(path);
  ASSERT_EQ(reader.job_count(), static_cast<std::uint64_t>(count));
  TraceReplayer replayer(2, replay_config(2, threads, batch));
  EXPECT_EQ(replayer.chunk_jobs(), static_cast<std::size_t>(batch));
  const StreamResult replayed = replayer.replay(reader);
  EXPECT_EQ(replayed.jobs_ingested, static_cast<std::uint64_t>(count));

  Rng rng(617);
  const auto jobs = collect_jobs([&rng, count](const JobSink& sink) {
    bursty_hotspot_stream(2, 4, 8, count, 32, rng, sink);
  });
  expect_identical(serve_stream(2, replay_config(2, 1, 256), jobs), replayed);
}

TEST(TraceReplay, LatencyAndAdmissionReplayIdentically) {
  // Bounded replay must reproduce the in-memory latency histogram,
  // percentiles, timeseries, and shed sets byte for byte — for every
  // admission policy, including saturating runs that actually drop jobs.
  const std::string path = temp_path("latency.trace");
  {
    TraceWriter writer(path, 2);
    Rng rng(627);
    bursty_hotspot_stream(2, 4, 2, 1200, 64, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  Rng rng(627);
  const auto jobs = collect_jobs([&rng](const JobSink& sink) {
    bursty_hotspot_stream(2, 4, 2, 1200, 64, rng, sink);
  });
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kUnbounded, AdmissionPolicy::kReject,
        AdmissionPolicy::kShed}) {
    StreamConfig cfg = replay_config(2, 2, 128);
    cfg.online.capacity = 8.0;
    cfg.online.admission = policy;
    cfg.online.queue_limit = 4;
    cfg.online.service_ticks = 4;
    cfg.online.sample_stride = 8;
    const StreamResult memory = serve_stream(2, cfg, jobs);
    EXPECT_EQ(memory.latency.count(), memory.metrics.jobs_served);
    if (policy != AdmissionPolicy::kUnbounded) {
      EXPECT_GT(memory.jobs_shed + memory.jobs_rejected, 0u);
    }

    TraceReader reader(path);
    TraceReplayer replayer(2, cfg);
    const StreamResult replayed = replayer.replay(reader);
    expect_identical(memory, replayed);
    for (const double p : {50.0, 90.0, 99.0}) {
      EXPECT_EQ(memory.latency.percentile(p), replayed.latency.percentile(p));
    }
  }
}

TEST(TraceReplay, DimMismatchBetweenTraceAndEngineThrows) {
  const std::string path = temp_path("mismatch.trace");
  {
    TraceWriter writer(path, 3);
    writer.append(Job{Point{1, 1, 1}, 0});
    writer.close();
  }
  TraceReader reader(path);
  TraceReplayer replayer(2, replay_config(2, 1, 64));
  EXPECT_THROW(replayer.replay(reader), check_error);
}

TEST(TraceReplay, PointerIngestOverloadMatchesVectorIngest) {
  const std::string path = temp_path("incremental.trace");
  {
    TraceWriter writer(path, 2);
    Rng rng(619);
    bursty_hotspot_stream(2, 4, 4, 500, 20, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  TraceReader reader(path);
  const auto jobs = reader.read_all();

  StreamEngine by_vector(2, replay_config(2, 2, 64));
  by_vector.ingest(jobs);

  // The out-of-core entry point: raw segments through the pointer
  // overload, split at an arbitrary cut.
  StreamEngine by_pointer(2, replay_config(2, 2, 64));
  by_pointer.ingest(jobs.data(), 123);
  by_pointer.ingest(jobs.data() + 123, jobs.size() - 123);

  expect_identical(by_vector.finish(), by_pointer.finish());
}

TEST(TraceReplay, ReplayerIngestFinishMatchesReplay) {
  const std::string path = temp_path("two_phase.trace");
  {
    TraceWriter writer(path, 2);
    Rng rng(621);
    bursty_hotspot_stream(2, 4, 4, 400, 16, rng,
                          [&writer](const Job& j) { writer.append(j); });
    writer.close();
  }
  TraceReader whole(path);
  TraceReplayer one(2, replay_config(2, 2, 64));
  const StreamResult oneshot = one.replay(whole);

  TraceReader reader(path);
  TraceReplayer two(2, replay_config(2, 2, 64));
  two.ingest(reader);  // drains the trace in bounded chunks
  EXPECT_EQ(reader.remaining(), 0u);
  expect_identical(oneshot, two.finish());
}

}  // namespace
}  // namespace cmvrp
