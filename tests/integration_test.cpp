// Cross-module integration: each test drives two or more subsystems and
// checks an identity the paper's theory links them by.
#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm1.h"
#include "core/cube_bound.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "flow/earthmover.h"
#include "flow/transportation.h"
#include "online/capacity_search.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {
namespace {

// --- offline plan vs flow-based transportation --------------------------------

TEST(Integration, TransportationPlanAlsoCoversPlannedDemand) {
  // The max-flow oracle at ω = plan's in-place budget and radius = cube
  // diameter must be feasible whenever the planner succeeded: the plan is
  // one particular feasible transport, the LP finds the best one.
  Rng rng(7);
  const DemandMap d = uniform_demand(Box(Point{0, 0}, Point{7, 7}), 40, rng);
  const OfflinePlan plan = plan_offline(d);
  ASSERT_TRUE(verify_plan(plan, d).ok);
  const std::int64_t radius = 2 * plan.bound.cube_side;  // covers any cube
  const auto t =
      transportation_feasible(d, radius, plan.in_place_budget + 1.0);
  EXPECT_TRUE(t.feasible);
}

TEST(Integration, PlanEnergyNeverBeatsLpLowerBound) {
  // ω* (flow fixed point) is a lower bound on any plan's max energy: the
  // plan moves real energy over real distances.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const DemandMap d =
        uniform_demand(Box(Point{0, 0}, Point{5, 5}), 25, rng);
    const double omega_star = omega_star_flow(d);
    const OfflinePlan plan = plan_offline(d);
    const PlanCheck check = verify_plan(plan, d);
    ASSERT_TRUE(check.ok);
    EXPECT_GE(check.max_energy + 1e-6, omega_star) << "seed " << seed;
  }
}

// --- Algorithm 1 vs exact machinery -----------------------------------------

TEST(Integration, Algorithm1UpperBoundsEveryExactQuantity) {
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    Rng rng(seed);
    const std::int64_t n = 16;
    DemandMap d(2);
    for (int k = 0; k < 12; ++k)
      d.add(Point{rng.next_int(0, n - 1), rng.next_int(0, n - 1)},
            static_cast<double>(rng.next_int(1, 40)));
    const auto alg = algorithm1(d, n);
    const double omega_star = omega_star_flow(d);
    // The estimate is claimed to be >= Woff >= omega*.
    EXPECT_GE(alg.estimate + 1e-9, omega_star) << "seed " << seed;
  }
}

// --- offline vs online (Theorem 1.4.2 both directions) ----------------------

TEST(Integration, OnlineNeverCheaperThanOfflineLowerBound) {
  Rng rng(23), order(24);
  const DemandMap d = uniform_demand(Box(Point{0, 0}, Point{6, 6}), 35, rng);
  const auto jobs = stream_from_demand(d, ArrivalOrder::kShuffled, order);
  const auto r = find_min_online_capacity(jobs, 2, 1, 0.1);
  const double omega_star = omega_star_flow(d);
  // Won >= Woff >= omega* (up to unit-job granularity: a vehicle spends
  // at least 1 serving its first job).
  EXPECT_GE(r.won_empirical + 1e-6, std::max(omega_star, 1.0) - 0.2);
}

TEST(Integration, ArrivalOrderDoesNotChangeOfflineBoundsButMayChangeWon) {
  // d(·) fixes the offline quantities; the online requirement may vary
  // with order but stays under the same Lemma 3.3.1 cap.
  const DemandMap d = line_demand(8, 6.0, Point{0, 0});
  Rng r1(31), r2(32);
  const auto sorted_jobs = stream_from_demand(d, ArrivalOrder::kSorted, r1);
  const auto rr_jobs = stream_from_demand(d, ArrivalOrder::kRoundRobin, r2);
  const auto a = find_min_online_capacity(sorted_jobs, 2, 1, 0.1);
  const auto b = find_min_online_capacity(rr_jobs, 2, 1, 0.1);
  EXPECT_DOUBLE_EQ(a.omega_c, b.omega_c);
  EXPECT_LE(a.won_empirical, a.won_theory + 0.2);
  EXPECT_LE(b.won_empirical, b.won_theory + 0.2);
}

// --- earthmover vs transportation -------------------------------------------

TEST(Integration, EarthmoverZeroWhenSupplyAtDemand) {
  Rng rng(41);
  const DemandMap d = uniform_demand(Box(Point{0, 0}, Point{5, 5}), 20, rng);
  const auto r = earthmover(d, d);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 0.0, 1e-6);
}

TEST(Integration, UniformSupplyEarthmoverTracksOmegaScale) {
  // Supplies ω at every vertex of N_r(support) make the transport
  // feasible exactly when the oracle says so, and the earthmover cost is
  // finite/zero accordingly — two independent flow formulations agree.
  DemandMap demand(2);
  demand.set(Point{0, 0}, 10.0);
  const std::int64_t r = 2;
  const double omega = min_feasible_omega(demand, r, 1e-4);
  DemandMap supply(2);
  for (const auto& p : l1_ball_points(Point{0, 0}, r))
    supply.set(p, omega + 1e-3);
  const auto em = earthmover(supply, demand);
  EXPECT_TRUE(em.feasible);
  // And starving the supply below omega breaks the oracle.
  EXPECT_FALSE(transportation_feasible(demand, r, omega - 0.01).feasible);
}

// --- workload -> every consumer ------------------------------------------------

TEST(Integration, StreamAndMapViewsAgreeEverywhere) {
  Rng rng(53), order(54);
  const DemandMap d =
      clustered_demand(Box(Point{0, 0}, Point{9, 9}), 2, 60, 1.5, rng);
  const auto jobs = stream_from_demand(d, ArrivalOrder::kShuffled, order);
  const DemandMap back = demand_of_stream(jobs, 2);
  EXPECT_EQ(back.support_size(), d.support_size());
  EXPECT_DOUBLE_EQ(back.total(), d.total());
  // Same cube bound either way (the online default config depends on it).
  EXPECT_DOUBLE_EQ(cube_bound(back).omega_c, cube_bound(d).omega_c);
}

// --- dimensional sweep: the pipeline in 1-D and 3-D ---------------------------

TEST(Integration, OfflinePipelineWorksInOneAndThreeDimensions) {
  {
    DemandMap d(1);
    d.set(Point{4}, 30.0);
    d.set(Point{9}, 12.0);
    const OfflinePlan plan = plan_offline(d);
    const PlanCheck check = verify_plan(plan, d);
    EXPECT_TRUE(check.ok) << check.issue;
    EXPECT_LE(check.max_energy,
              (2.0 * 3.0 + 1.0) * plan.bound.omega_c + 1e-6);
  }
  {
    DemandMap d(3);
    d.set(Point{1, 1, 1}, 100.0);
    d.set(Point{3, 0, 2}, 40.0);
    const OfflinePlan plan = plan_offline(d);
    const PlanCheck check = verify_plan(plan, d);
    EXPECT_TRUE(check.ok) << check.issue;
    EXPECT_LE(check.max_energy,
              (2.0 * 27.0 + 3.0) * plan.bound.omega_c + 1e-6);
  }
}

TEST(Integration, OnlineStrategyServesInOneAndThreeDimensions) {
  {
    std::vector<Job> jobs;
    for (int i = 0; i < 20; ++i) jobs.push_back({Point{3}, i});
    OnlineConfig cfg;
    cfg.capacity = 10.0;  // 1-D cubes hold only `side` vehicles: budget up
    cfg.cube_side = 4;
    cfg.anchor = Point{0};
    OnlineSimulation sim(1, cfg);
    EXPECT_TRUE(sim.run(jobs));
    EXPECT_GE(sim.metrics().replacements, 1u);
  }
  {
    std::vector<Job> jobs;
    for (int i = 0; i < 30; ++i) jobs.push_back({Point{1, 1, 1}, i});
    OnlineConfig cfg;
    cfg.capacity = 8.0;
    cfg.cube_side = 3;
    cfg.anchor = Point{0, 0, 0};
    OnlineSimulation sim(3, cfg);
    EXPECT_TRUE(sim.run(jobs));
    EXPECT_GE(sim.metrics().replacements, 1u);
  }
}

}  // namespace
}  // namespace cmvrp
