// Protocol observability layer (src/obs/): Tier-A counter determinism
// across thread counts and batch sizes, the off-by-default fast path,
// the Lemma 3.3.1 per-computation query-flood bound, the JSONL stats
// snapshotter's schema + thread-invariance contract, and the Tier-C
// span layer: byte-identical exports across threads/batches, sampling
// and flight-ring semantics, spool round-trips, and the prof analyzer's
// attribution contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/prof.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/span_export.h"
#include "obs/stage_timer.h"
#include "stream/engine.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/stream_gen.h"

namespace cmvrp {
namespace {

std::vector<Job> test_stream(std::int64_t box_side, std::int64_t count,
                             std::uint64_t seed) {
  Rng rng(seed);
  const Box box(Point{0, 0}, Point{box_side - 1, box_side - 1});
  const DemandMap d = uniform_demand(box, count, rng);
  Rng order(seed + 1);
  return stream_from_demand(d, ArrivalOrder::kShuffled, order);
}

// Undersized capacity: vehicles exhaust, so Phase I computations,
// replacement cascades, and query floods actually occur.
StreamConfig obs_config(int dim, int threads, std::int64_t batch,
                        bool counters) {
  StreamConfig cfg;
  cfg.online.capacity = 8.0;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point::origin(dim);
  cfg.online.seed = 7;
  cfg.online.obs.counters = counters;
  cfg.threads = threads;
  cfg.batch_size = batch;
  return cfg;
}

// --- unit: merge / digest / flood bound -------------------------------------

TEST(CubeCounters, MergeSumsCountsAndMaxesPeaks) {
  CubeCounters a, b;
  a.msg_queries = 10;
  a.max_queries_per_comp = 7;
  a.backlog_peak = 3;
  a.replacements = 2;
  a.cascade.add(1);
  b.msg_queries = 5;
  b.max_queries_per_comp = 9;
  b.backlog_peak = 1;
  b.replacements = 4;
  b.cascade.add(2);
  b.cascade.add(2);
  a.merge(b);
  EXPECT_EQ(a.msg_queries, 15u);
  EXPECT_EQ(a.max_queries_per_comp, 9u);  // peak, not sum
  EXPECT_EQ(a.backlog_peak, 3u);          // peak, not sum
  EXPECT_EQ(a.replacements, 6u);
  EXPECT_EQ(a.cascade.count(), 3u);
  EXPECT_EQ(a.cascade.observed_max(), 2);
}

TEST(CubeCounters, MergeIsCommutative) {
  CubeCounters a, b;
  a.msg_queries = 3;
  a.comps_started = 2;
  a.backlog_peak = 5;
  a.cascade.add(4);
  b.msg_replies = 8;
  b.max_queries_per_comp = 6;
  b.cascade.add(1);
  CubeCounters ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.digest(), ba.digest());
}

TEST(CubeCounters, DigestIsPositional) {
  // 10 queries vs 10 replies are different protocol facts: the digest
  // mixes fields positionally, so swapping them must not collide.
  CubeCounters q, r;
  q.msg_queries = 10;
  r.msg_replies = 10;
  EXPECT_NE(q.digest(), r.digest());
  EXPECT_FALSE(q == r);
  CubeCounters empty;
  EXPECT_NE(q.digest(), empty.digest());
}

TEST(QueryFloodBound, MatchesLemma331ClosedForm) {
  // s^l * (2r+1)^l at the dimensions the engine serves.
  EXPECT_EQ(query_flood_bound(4, 2, 2), 400u);     // 16 * 25
  EXPECT_EQ(query_flood_bound(2, 2, 3), 1000u);    // 8 * 125
  EXPECT_EQ(query_flood_bound(2, 2, 4), 10000u);   // 16 * 625
  EXPECT_EQ(query_flood_bound(3, 1, 2), 81u);      // 9 * 9
}

// --- the determinism contract -----------------------------------------------

TEST(CounterDeterminism, BitIdenticalAcrossThreadsAndBatches) {
  const auto jobs = test_stream(32, 1500, 23);
  const StreamResult reference =
      serve_stream(2, obs_config(2, 1, 32, true), jobs);
  // The workload must actually exercise the obs-gated fields.
  ASSERT_GT(reference.counters.replacements, 0u);
  ASSERT_GT(reference.counters.comps_finished, 0u);
  ASSERT_GT(reference.counters.max_queries_per_comp, 0u);
  ASSERT_GT(reference.counters.cascade.count(), 0u);
  for (const int threads : {1, 2, 8}) {
    for (const std::int64_t batch : {32, 256}) {
      const StreamResult r =
          serve_stream(2, obs_config(2, threads, batch, true), jobs);
      EXPECT_TRUE(reference.counters == r.counters)
          << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(reference.counters.digest(), r.counters.digest());
    }
  }
}

TEST(CounterDeterminism, OffPathLeavesOutcomeAndGatedFieldsUntouched) {
  const auto jobs = test_stream(32, 1000, 29);
  const StreamResult off = serve_stream(2, obs_config(2, 2, 64, false), jobs);
  const StreamResult on = serve_stream(2, obs_config(2, 2, 64, true), jobs);
  // Serving outcome is identical with counters on.
  EXPECT_TRUE(off.metrics == on.metrics);
  EXPECT_EQ(off.served_jobs, on.served_jobs);
  EXPECT_EQ(off.failed_jobs, on.failed_jobs);
  EXPECT_TRUE(off.latency == on.latency);
  // Message counts come free from the always-on network stats.
  EXPECT_EQ(off.counters.messages_total(), on.counters.messages_total());
  EXPECT_EQ(off.counters.replacements, on.counters.replacements);
  // The obs-gated fields stay zero on the off path.
  EXPECT_EQ(off.counters.comps_finished, 0u);
  EXPECT_EQ(off.counters.max_queries_per_comp, 0u);
  EXPECT_EQ(off.counters.cascade.count(), 0u);
  EXPECT_EQ(off.counters.enqueued, 0u);
  EXPECT_EQ(off.counters.backlog_peak, 0u);
  // And are live on the on path.
  EXPECT_GT(on.counters.comps_finished, 0u);
  EXPECT_GT(on.counters.cascade.count(), 0u);
}

// --- Lemma 3.3.1: the per-computation query flood ---------------------------

TEST(FloodBound, HoldsAtEveryServedDimension) {
  for (const int dim : {2, 3, 4}) {
    Rng rng(601 + static_cast<std::uint64_t>(dim));
    const auto jobs = collect_jobs([&rng, dim](const JobSink& sink) {
      bursty_hotspot_stream(dim, 2, 3, 800, 24, rng, sink);
    });
    StreamConfig cfg = obs_config(dim, 2, 128, true);
    cfg.online.capacity = 6.0;
    cfg.online.cube_side = 2;
    const StreamResult r = serve_stream(dim, cfg, jobs);
    ASSERT_GT(r.counters.comps_finished, 0u) << "dim=" << dim;
    ASSERT_GT(r.counters.max_queries_per_comp, 0u) << "dim=" << dim;
    const std::uint64_t bound = query_flood_bound(
        cfg.online.cube_side, cfg.online.neighbor_radius, dim);
    EXPECT_LE(r.counters.max_queries_per_comp, bound) << "dim=" << dim;
  }
}

TEST(Cascade, OneSamplePerServedJobBoundedByReplacements) {
  const auto jobs = test_stream(32, 1200, 31);
  const StreamResult r = serve_stream(2, obs_config(2, 2, 64, true), jobs);
  ASSERT_GT(r.counters.replacements, 0u);
  // Exactly one cascade sample per served job...
  EXPECT_EQ(r.counters.cascade.count(), r.metrics.jobs_served);
  // ...and no single job's cascade can exceed the run's replacements.
  EXPECT_LE(static_cast<std::uint64_t>(r.counters.cascade.observed_max()),
            r.counters.replacements);
  EXPECT_EQ(r.counters.cascade.overflow_count(), 0u);
}

// --- the JSONL snapshotter --------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// A sample/final line up to (excluding) its Tier-B suffix — every
// Tier-B key ends in `_ms` or starts `wall_`, and the serializer emits
// them last, so cutting at `,"stage_` leaves exactly the Tier-A prefix.
std::string tier_a_prefix(const std::string& line) {
  const std::size_t cut = line.find(",\"stage_");
  return cut == std::string::npos ? line : line.substr(0, cut);
}

std::string snapshot_run(const std::vector<Job>& jobs, int threads,
                         std::int64_t stride) {
  std::ostringstream out;
  StatsSnapshotter snap(out, stride);
  StreamEngine engine(2, obs_config(2, threads, 64, true));
  engine.set_snapshotter(&snap);
  engine.ingest(jobs);
  engine.finish();
  return out.str();
}

TEST(Snapshotter, EmitsWellFormedSchemaStream) {
  const auto jobs = test_stream(16, 600, 37);
  std::ostringstream out;
  StatsSnapshotter snap(out, 2);
  StreamEngine engine(2, obs_config(2, 2, 64, true));
  engine.set_snapshotter(&snap);
  engine.ingest(jobs);
  const StreamResult r = engine.finish();
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), snap.lines_written());
  // header first, final last, every line a JSON object.
  EXPECT_NE(lines.front().find("\"kind\":\"header\""), std::string::npos);
  EXPECT_NE(lines.front().find(kStatsSchema), std::string::npos);
  EXPECT_NE(lines.back().find("\"kind\":\"final\""), std::string::npos);
  std::size_t cube_lines = 0;
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"kind\":\"cube\"") != std::string::npos) ++cube_lines;
  }
  EXPECT_EQ(cube_lines, r.cubes);
  // Ingesting 600 jobs at batch 64 = 10 batches; stride 2 -> 5 samples.
  std::size_t samples = 0;
  for (const auto& line : lines)
    if (line.find("\"kind\":\"sample\"") != std::string::npos) ++samples;
  EXPECT_EQ(samples, 5u);
}

TEST(Snapshotter, TierALinesAreThreadCountInvariant) {
  const auto jobs = test_stream(16, 600, 41);
  const auto one = split_lines(snapshot_run(jobs, 1, 2));
  const auto two = split_lines(snapshot_run(jobs, 2, 2));
  ASSERT_EQ(one.size(), two.size());
  // Skip the header (it names the thread count by design); compare
  // every other line with the Tier-B wall suffix stripped.
  for (std::size_t i = 1; i < one.size(); ++i)
    EXPECT_EQ(tier_a_prefix(one[i]), tier_a_prefix(two[i])) << "line " << i;
}

TEST(Snapshotter, StrideMustBePositive) {
  std::ostringstream out;
  EXPECT_THROW(StatsSnapshotter(out, 0), check_error);
  EXPECT_THROW(StatsSnapshotter(out, -3), check_error);
}

// --- Tier-C spans -----------------------------------------------------------

struct SpanRun {
  StreamResult result;
  std::string spool;   // binary spool bytes
  std::string chrome;  // Chrome trace-event JSON (wall_ms pinned to 0)
};

SpanRun span_run(const std::vector<Job>& jobs, int threads,
                 std::int64_t batch, std::int64_t sample,
                 std::int64_t flight) {
  StreamConfig cfg = obs_config(2, threads, batch, true);
  cfg.online.obs.spans = true;
  cfg.online.obs.span_sample = sample;
  cfg.online.obs.flight = flight;
  StreamEngine engine(2, cfg);
  engine.ingest(jobs);
  SpanRun run;
  run.result = engine.finish();
  std::ostringstream spool, chrome;
  write_span_spool(spool, 2, engine.span_sources());
  export_chrome_trace(chrome, 2, engine.span_sources(), 0.0);
  run.spool = spool.str();
  run.chrome = chrome.str();
  return run;
}

std::string span_temp_file(const char* name, const std::string& bytes) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  return path;
}

// The PR's acceptance bar: a saturating scenario's exported trace —
// spool AND Chrome JSON — is byte-identical across thread counts {1,2,8}
// and batch sizes {32,256}. wall_ms is pinned to 0 here; the CLI-level
// guard skips the wall line instead (obs/compare.h, kind=spans).
TEST(SpanDeterminism, ExportsBitIdenticalAcrossThreadsAndBatches) {
  const auto jobs = test_stream(32, 1500, 23);
  const SpanRun ref = span_run(jobs, 1, 32, 1, 0);
  ASSERT_GT(ref.result.counters.spans_emitted, 0u);
  ASSERT_GT(ref.result.counters.replacements, 0u);  // saturating
  for (const int threads : {1, 2, 8}) {
    for (const std::int64_t batch : {32, 256}) {
      const SpanRun r = span_run(jobs, threads, batch, 1, 0);
      EXPECT_EQ(ref.spool, r.spool)
          << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(ref.chrome, r.chrome)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(SpanSampling, DeterministicSkipsEveryKthComputation) {
  const auto jobs = test_stream(32, 1500, 23);
  const SpanRun full = span_run(jobs, 2, 64, 1, 0);
  const SpanRun a = span_run(jobs, 1, 256, 4, 0);
  const SpanRun b = span_run(jobs, 8, 32, 4, 0);
  // Sampling is per-cube-deterministic, so the sampled trace is still
  // bit-identical across threads and batches.
  EXPECT_EQ(a.spool, b.spool);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_GT(a.result.counters.spans_sampled_out, 0u);
  EXPECT_LT(a.result.counters.spans_emitted,
            full.result.counters.spans_emitted);
  // Sampling never changes serving outcomes.
  EXPECT_TRUE(full.result.metrics == a.result.metrics);
  EXPECT_EQ(full.result.served_jobs, a.result.served_jobs);
}

TEST(SpanFlightRing, BoundsPerCubeStorageAndCountsEvictions) {
  const auto jobs = test_stream(32, 1500, 23);
  const SpanRun r = span_run(jobs, 2, 64, 1, 16);
  EXPECT_GT(r.result.counters.spans_ring_evicted, 0u);
  const std::string path = span_temp_file("obs_flight.bin", r.spool);
  const SpanSpool spool = read_span_spool(path);
  for (const CubeSpans& cube : spool.cubes) {
    EXPECT_LE(cube.events.size(), 16u);
    // emitted counts pre-eviction appends; the ring never holds more
    // than emitted - evicted.
    EXPECT_EQ(cube.events.size(),
              cube.totals.emitted - cube.totals.ring_evicted);
  }
  EXPECT_EQ(spool.totals.emitted, r.result.counters.spans_emitted);
  EXPECT_EQ(spool.totals.ring_evicted,
            r.result.counters.spans_ring_evicted);
}

TEST(SpanOffPath, OutcomeInvariantAndSourcesEmpty) {
  const auto jobs = test_stream(32, 1000, 29);
  StreamEngine off_engine(2, obs_config(2, 2, 64, true));
  off_engine.ingest(jobs);
  const StreamResult off = off_engine.finish();
  EXPECT_TRUE(off_engine.span_sources().empty());
  EXPECT_EQ(off.counters.spans_emitted, 0u);
  EXPECT_EQ(off.counters.spans_sampled_out, 0u);
  EXPECT_EQ(off.counters.spans_ring_evicted, 0u);
  // Turning spans on cannot change serving outcomes.
  const SpanRun on = span_run(jobs, 2, 64, 1, 0);
  EXPECT_TRUE(off.metrics == on.result.metrics);
  EXPECT_EQ(off.served_jobs, on.result.served_jobs);
  EXPECT_EQ(off.failed_jobs, on.result.failed_jobs);
  EXPECT_TRUE(off.latency == on.result.latency);
}

TEST(SpanSpoolReader, RoundTripsEventsRegistryAndTotals) {
  const auto jobs = test_stream(16, 600, 37);
  StreamConfig cfg = obs_config(2, 2, 64, true);
  cfg.online.obs.spans = true;
  StreamEngine engine(2, cfg);
  engine.ingest(jobs);
  engine.finish();
  const auto sources = engine.span_sources();
  ASSERT_FALSE(sources.empty());
  std::ostringstream out;
  write_span_spool(out, 2, sources);
  const std::string path = span_temp_file("obs_roundtrip.bin", out.str());
  const SpanSpool spool = read_span_spool(path);
  ASSERT_EQ(spool.cubes.size(), sources.size());
  EXPECT_EQ(spool.dim, 2);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const CubeSpans& cube = spool.cubes[i];
    const SpanRecorder& rec = *sources[i].recorder;
    EXPECT_EQ(cube.corner, sources[i].corner);
    EXPECT_EQ(cube.pid, sources[i].pid);
    EXPECT_EQ(cube.events, rec.snapshot());
    ASSERT_EQ(cube.pair_of.size(), rec.vehicle_count());
    for (std::size_t v = 0; v < cube.pair_of.size(); ++v)
      EXPECT_EQ(cube.pair_of[v],
                rec.pair_of(static_cast<std::uint32_t>(v)));
  }
}

TEST(SpanSpoolReader, RejectsTruncationNamingTheByteOffset) {
  const auto jobs = test_stream(16, 400, 43);
  const SpanRun r = span_run(jobs, 1, 64, 1, 0);
  const std::string half = r.spool.substr(0, r.spool.size() / 2);
  const std::string path = span_temp_file("obs_truncated.bin", half);
  try {
    read_span_spool(path);
    FAIL() << "truncated spool was accepted";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated at byte"),
              std::string::npos)
        << e.what();
  }
  // A wrong magic byte is named too.
  std::string bad = r.spool;
  bad[0] = 'X';
  const std::string bad_path = span_temp_file("obs_badmagic.bin", bad);
  EXPECT_THROW(read_span_spool(bad_path), check_error);
}

// The prof acceptance bar: at sampling K=1, >= 95% of counted Phase I
// queries (CubeCounters::msg_queries) attribute to a computation tree —
// in fact 100%, because the span hook and the counter hook sit at the
// same send site and every query carries its InitTag.
TEST(Prof, AttributesQueriesAndMeasuresCriticalPaths) {
  const auto jobs = test_stream(32, 1500, 23);
  const SpanRun run = span_run(jobs, 2, 64, 1, 0);
  const std::string path = span_temp_file("obs_prof.bin", run.spool);
  const SpanSpool spool = read_span_spool(path);
  const ProfReport rep = profile_spans(spool.cubes, 3);
  ASSERT_GT(rep.comps, 0u);
  EXPECT_EQ(rep.query_sends, run.result.counters.msg_queries);
  EXPECT_EQ(rep.attributed_queries, rep.query_sends);
  EXPECT_GE(rep.attribution_ratio(), 0.95);
  EXPECT_EQ(rep.comps, run.result.counters.comps_started);
  EXPECT_EQ(rep.comps_finished, run.result.counters.comps_finished);
  EXPECT_EQ(rep.replacements, run.result.counters.replacements);
  // Per-replacement critical paths on the protocol clock.
  EXPECT_EQ(rep.critical.count(), rep.comps_finished);
  EXPECT_GT(rep.critical.observed_max(), 0);
  EXPECT_GT(rep.depth.observed_max(), 0);
  // Fan-out breadth by hop partitions the attributed query sends.
  std::uint64_t hop_sum = 0;
  for (const std::uint64_t b : rep.breadth_by_hop) hop_sum += b;
  EXPECT_EQ(hop_sum, rep.attributed_queries);
  // Widest floods are sorted by query count, descending.
  ASSERT_EQ(rep.widest.size(), 3u);
  EXPECT_GE(rep.widest[0].queries, rep.widest[1].queries);
  EXPECT_GE(rep.widest[1].queries, rep.widest[2].queries);
  EXPECT_EQ(static_cast<std::uint64_t>(rep.flood_width.observed_max()),
            rep.widest[0].queries);
}

TEST(SpanRecorder, GuardsConstructionParameters) {
  EXPECT_THROW(SpanRecorder(0, 0), check_error);
  EXPECT_THROW(SpanRecorder(-2, 0), check_error);
  EXPECT_THROW(SpanRecorder(1, -1), check_error);
}

}  // namespace
}  // namespace cmvrp
