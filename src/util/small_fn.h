// Small-buffer callable for the event-queue hot path.
//
// Every Network::send schedules a delivery closure capturing the server
// pointer, both endpoint ids and the Message payload — ~90 bytes, which
// overflows std::function's small-object buffer (16 bytes in libstdc++)
// and forces a heap allocation per simulated message. SmallFn is a
// move-only type-erased void() callable with a fixed in-place buffer
// sized for those closures, so scheduling never allocates.
//
// Construction accepts any callable with sizeof <= Capacity, by move or
// by copy (the tests hand schedule() an lvalue std::function, which at
// 32 bytes fits comfortably). Oversized callables are a compile error,
// not a silent fallback — the point is to keep the allocation out.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace cmvrp {

template <std::size_t Capacity>
class SmallFn {
 public:
  SmallFn() = default;

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "callable exceeds SmallFn buffer; raise Capacity");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable over-aligned for SmallFn buffer");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
    ops_ = &ops_for<D>;
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    CMVRP_CHECK_MSG(ops_ != nullptr, "calling empty SmallFn");
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr Ops ops_for = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) {
        D* src = static_cast<D*>(from);
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace cmvrp
