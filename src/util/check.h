// Runtime invariant checks that stay on in release builds.
//
// The library uses exceptions only for programmer errors and malformed
// inputs (per the paper's model, the algorithms themselves never "fail" —
// infeasibility is a reported result, not an exception).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cmvrp {

// Thrown when a CMVRP_CHECK fails or an API precondition is violated.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

// Thrown for *usage* errors — a caller (typically the CLI) passed a
// malformed flag or asked for something that can never work, as opposed
// to data that turned out to be bad. Front ends map this to exit code 2
// (usage) while plain check_error stays exit code 1 (data failure), the
// convention every cmvrp_cli subcommand follows. Subclasses check_error
// so call sites that only distinguish "failed" keep working.
class usage_error : public check_error {
 public:
  explicit usage_error(const std::string& what) : check_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}

}  // namespace detail
}  // namespace cmvrp

// Always-on check. Use for API preconditions and internal invariants.
#define CMVRP_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::cmvrp::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

// Check with an explanatory message (streamed into a string).
#define CMVRP_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream cmvrp_check_os_;                               \
      cmvrp_check_os_ << msg;                                           \
      ::cmvrp::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                    cmvrp_check_os_.str());             \
    }                                                                   \
  } while (0)
