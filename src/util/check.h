// Runtime invariant checks that stay on in release builds.
//
// The library uses exceptions only for programmer errors and malformed
// inputs (per the paper's model, the algorithms themselves never "fail" —
// infeasibility is a reported result, not an exception).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cmvrp {

// Thrown when a CMVRP_CHECK fails or an API precondition is violated.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}

}  // namespace detail
}  // namespace cmvrp

// Always-on check. Use for API preconditions and internal invariants.
#define CMVRP_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::cmvrp::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

// Check with an explanatory message (streamed into a string).
#define CMVRP_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream cmvrp_check_os_;                               \
      cmvrp_check_os_ << msg;                                           \
      ::cmvrp::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                    cmvrp_check_os_.str());             \
    }                                                                   \
  } while (0)
