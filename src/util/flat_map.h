// Open-addressed hash map with insertion-ordered, contiguous storage.
//
// The serving hot paths (per-message channel lookups in sim/network.h,
// cube groupings in the offline planner and §5 collector, the stream
// engine's out-of-region cube overflow) were all node-based associative
// containers: every lookup chased a heap node, and std::map added an
// rb-tree rebalance per insert. FlatMap keeps the items in one vector
// (contiguous, insertion-ordered — so iteration is deterministic for a
// deterministic insertion sequence, independent of the hash) and resolves
// keys through a power-of-two open-addressed index of positions.
//
// Deliberately minimal: no erase (none of the call sites delete keys),
// keys must be equality-comparable, and mutating a key through iteration
// is undefined. Lookup is O(1) expected with linear probing at load
// factor <= 0.7; insertion amortized O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cmvrp {

template <class Key, class Value, class Hash>
class FlatMap {
 public:
  struct Item {
    Key key;
    Value value;
  };
  using iterator = typename std::vector<Item>::iterator;
  using const_iterator = typename std::vector<Item>::const_iterator;

  FlatMap() = default;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void reserve(std::size_t n) {
    items_.reserve(n);
    rehash_for(n);
  }

  void clear() {
    items_.clear();
    index_.assign(index_.size(), kEmpty);
  }

  // Pointer to the mapped value, or nullptr when absent.
  Value* find(const Key& key) {
    const std::uint32_t pos = find_pos(key);
    return pos == kEmpty ? nullptr : &items_[pos].value;
  }
  const Value* find(const Key& key) const {
    const std::uint32_t pos = find_pos(key);
    return pos == kEmpty ? nullptr : &items_[pos].value;
  }

  // Find-or-default-insert, like std::map::operator[].
  Value& operator[](const Key& key) {
    if (index_.empty() ||
        items_.size() + 1 > (index_.size() * 7) / 10)
      rehash_for(items_.size() + 1);
    std::size_t slot = Hash{}(key) & (index_.size() - 1);
    for (;;) {
      const std::uint32_t pos = index_[slot];
      if (pos == kEmpty) {
        index_[slot] = static_cast<std::uint32_t>(items_.size());
        items_.push_back(Item{key, Value{}});
        return items_.back().value;
      }
      if (items_[pos].key == key) return items_[pos].value;
      slot = (slot + 1) & (index_.size() - 1);
    }
  }

  // Insertion-order iteration over contiguous items. Keys are logically
  // const: rewriting one leaves the index pointing at the old hash.
  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }
  const std::vector<Item>& items() const { return items_; }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::uint32_t find_pos(const Key& key) const {
    if (index_.empty()) return kEmpty;
    std::size_t slot = Hash{}(key) & (index_.size() - 1);
    for (;;) {
      const std::uint32_t pos = index_[slot];
      if (pos == kEmpty) return kEmpty;
      if (items_[pos].key == key) return pos;
      slot = (slot + 1) & (index_.size() - 1);
    }
  }

  void rehash_for(std::size_t items) {
    std::size_t want = 16;
    while (want * 7 < items * 10) want <<= 1;
    if (want <= index_.size()) return;
    CMVRP_CHECK_MSG(items < kEmpty, "FlatMap exceeds 2^32 - 1 items");
    index_.assign(want, kEmpty);
    for (std::size_t i = 0; i < items_.size(); ++i) {
      std::size_t slot = Hash{}(items_[i].key) & (want - 1);
      while (index_[slot] != kEmpty) slot = (slot + 1) & (want - 1);
      index_[slot] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<Item> items_;
  std::vector<std::uint32_t> index_;
};

}  // namespace cmvrp
