#include "util/digest.h"

#include <iomanip>
#include <sstream>

namespace cmvrp {

std::string digest_hex(std::uint64_t digest) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << digest;
  return os.str();
}

}  // namespace cmvrp
