// Small statistics helpers used by benchmarks and the simulator's metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cmvrp {

// Numerically stable streaming mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance; 0 when n < 2
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Collects raw samples; supports exact quantiles. Intended for bench-scale
// sample counts (<= millions), not unbounded telemetry.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;  // quantile() re-sorts after interleaved adds
  }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double quantile(double q) const;  // q in [0,1]; linear interpolation
  double min() const { return quantile(0.0); }
  double median() const { return quantile(0.5); }
  double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  // Compact one-line ASCII rendering (for bench logs).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace cmvrp
