// Monotonic wall-clock timer for the experiment harness and benches.
//
// std::chrono::steady_clock wrapped in the two operations every bench
// needs: restart and elapsed-milliseconds. Header-only; no dependency on
// the rest of util.
#pragma once

#include <chrono>

namespace cmvrp {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  // Milliseconds since construction or the last restart().
  double elapsed_ms() const {
    const auto d = Clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cmvrp
