#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace cmvrp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CMVRP_CHECK(!headers_.empty());
}

Table& Table::row() {
  if (!rows_.empty()) {
    CMVRP_CHECK_MSG(rows_.back().size() == headers_.size(),
                    "previous row has " << rows_.back().size()
                                        << " cells, expected "
                                        << headers_.size());
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  CMVRP_CHECK_MSG(!rows_.empty(), "cell() before row()");
  CMVRP_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell_bool(bool value) { return cell(value ? "yes" : "no"); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto print_sep = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      os << ' ' << v << std::string(widths[c] - v.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& r : rows_) print_row(r);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace cmvrp
