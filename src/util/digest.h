// Order-invariant digests over arrival-index sets.
//
// Two stream reports (or a report and an on-disk outcome trace) can be
// diffed for served/failed *set* equality without embedding the full
// index lists: each index is scrambled through a splitmix64 finalizer
// and the results are summed mod 2^64, so the digest depends only on
// the multiset of indices — never on fold order. That is what lets the
// OutcomeRecorder accumulate incrementally in delivery order while
// streaming outcomes to disk and still land exactly on the digest of
// the engine's sorted served/failed sets, proving a bounded-memory
// run's audit trail bit-identical to the in-memory result. Digests
// render as fixed-width hex because JSON numbers are doubles, which
// would silently drop the low bits of a 64-bit value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cmvrp {

// Empty-set digest: a nonzero basis so {} and {0-hash preimage} differ.
inline constexpr std::uint64_t kIndexDigestBasis = 1469598103934665603ULL;

// Folds one index into a digest (commutative and associative).
inline std::uint64_t index_digest_step(std::uint64_t h, std::int64_t value) {
  std::uint64_t z = static_cast<std::uint64_t>(value) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return h + (z ^ (z >> 31));
}

// Digest of an index multiset; any iteration order gives the same value.
inline std::uint64_t index_set_digest(const std::vector<std::int64_t>& idx) {
  std::uint64_t h = kIndexDigestBasis;
  for (const std::int64_t i : idx) h = index_digest_step(h, i);
  return h;
}

// Fixed-width (16 hex digit) rendering for JSON artifacts and tables.
std::string digest_hex(std::uint64_t digest);

}  // namespace cmvrp
