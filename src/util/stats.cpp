#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace cmvrp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ = (na * mean_ + nb * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  CMVRP_CHECK(q >= 0.0 && q <= 1.0);
  CMVRP_CHECK_MSG(!samples_.empty(), "quantile of empty sample set");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  CMVRP_CHECK(hi > lo);
  CMVRP_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace cmvrp
