// Minimal dependency-free JSON document model for BENCH_*.json artifacts.
//
// Design goals, in order: (1) a *stable* serialization — object keys keep
// insertion order and numbers use the shortest round-trippable decimal
// form, so two runs of the same suite differ only where the measurements
// differ; (2) exact round-trips — parse(dump(v)) == v and
// dump(parse(s)) == dump(parse(dump(parse(s)))); (3) no third-party
// dependency. Not a general-purpose JSON library: documents are expected
// to be bench-artifact sized (kilobytes, not gigabytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cmvrp {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  // Typed accessors; throw check_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // Array access.
  void push_back(Json v);
  std::size_t size() const;  // array or object entry count
  const Json& at(std::size_t i) const;

  // Object access. set() keeps insertion order; setting an existing key
  // overwrites in place (order unchanged).
  void set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;  // throws when missing
  const std::vector<std::pair<std::string, Json>>& items() const;

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  // Serialization. indent <= 0 yields the compact one-line form; indent > 0
  // pretty-prints with that many spaces per level. Strings escape ", \,
  // control characters, and nothing else (UTF-8 passes through).
  std::string dump(int indent = 0) const;

  // Strict recursive-descent parser; throws check_error with an offset on
  // malformed input. Accepts exactly RFC 8259 JSON (with \uXXXX escapes,
  // including surrogate pairs).
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

// Shortest decimal form of x that parses back to exactly x ("1.5", "20",
// "0.30000000000000004"). Integral values within int64 range render with
// no fractional part. Exposed for tests and the table renderer.
std::string json_number_to_string(double x);

}  // namespace cmvrp
