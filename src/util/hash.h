// Shared integer mixing primitives.
//
// mix64 is the splitmix64 finalizer (Steele, Lea, Flood 2014): a cheap
// bijection on 64-bit words with full avalanche, so keys that differ only
// in high bits or by small strides (cube corners are multiples of the
// partition side) still spread uniformly. Every corner-keyed hash in the
// repo — the per-cube stream seeds, CornerHash, the flat channel table in
// sim/network.h — folds through this one function so the hashing
// discipline lives in exactly one place.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cmvrp {

inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Hash functor over integral keys, for FlatMap and friends. (std::hash on
// integers is the identity in libstdc++, which clusters sequential ids
// into runs of adjacent probe slots.)
struct U64Hash {
  std::size_t operator()(std::uint64_t v) const {
    return static_cast<std::size_t>(mix64(v));
  }
};

}  // namespace cmvrp
