#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace cmvrp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CMVRP_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  CMVRP_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  CMVRP_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  have_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CMVRP_CHECK(w >= 0.0);
    total += w;
  }
  CMVRP_CHECK(total > 0.0);
  double x = next_double() * total;
  std::size_t last_positive = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      last_positive = i;
      x -= weights[i];
      if (x < 0.0) return i;
    }
  }
  // Numerical slack: x can stay non-negative after the full pass because the
  // running subtraction rounds differently from the summed total. Land on the
  // last bucket that actually has weight, never a zero-weight one.
  return last_positive;
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xdeadbeefcafef00dULL);
}

}  // namespace cmvrp
