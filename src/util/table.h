// ASCII table printer for benchmark output.
//
// The paper has no numeric tables of its own, so every bench prints
// paper-claim vs. measured rows through this printer to make the
// comparison legible and uniform across experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cmvrp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Begin a new row; subsequent add_* calls fill cells left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);
  Table& cell(double value, int precision = 4);
  Table& cell_bool(bool value);

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cmvrp
