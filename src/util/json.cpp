#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace cmvrp {

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(ch);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string json_number_to_string(double x) {
  CMVRP_CHECK_MSG(std::isfinite(x), "JSON cannot represent " << x);
  // Integral values inside int64: no fractional part, no exponent.
  if (x == std::floor(x) && std::abs(x) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(x));  // NOLINT(runtime/int)
    return buf;
  }
  // Shortest %.*g form that round-trips exactly.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  return buf;
}

bool Json::as_bool() const {
  CMVRP_CHECK_MSG(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  CMVRP_CHECK_MSG(type_ == Type::kNumber, "JSON value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  CMVRP_CHECK_MSG(type_ == Type::kString, "JSON value is not a string");
  return str_;
}

void Json::push_back(Json v) {
  CMVRP_CHECK_MSG(type_ == Type::kArray, "push_back on non-array JSON");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  CMVRP_CHECK_MSG(false, "size() on scalar JSON");
  return 0;
}

const Json& Json::at(std::size_t i) const {
  CMVRP_CHECK_MSG(type_ == Type::kArray, "index into non-array JSON");
  CMVRP_CHECK_MSG(i < arr_.size(), "JSON array index " << i << " out of range");
  return arr_[i];
}

void Json::set(const std::string& key, Json v) {
  CMVRP_CHECK_MSG(type_ == Type::kObject, "set on non-object JSON");
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Json::contains(const std::string& key) const {
  CMVRP_CHECK_MSG(type_ == Type::kObject, "contains on non-object JSON");
  for (const auto& [k, val] : obj_) {
    (void)val;
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  CMVRP_CHECK_MSG(type_ == Type::kObject, "key lookup in non-object JSON");
  for (const auto& [k, val] : obj_)
    if (k == key) return val;
  CMVRP_CHECK_MSG(false, "JSON object has no key \"" << key << "\"");
  return obj_.front().second;  // unreachable
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  CMVRP_CHECK_MSG(type_ == Type::kObject, "items on non-object JSON");
  return obj_;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      *out += json_number_to_string(num_);
      break;
    case Type::kString:
      append_escaped(out, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out->push_back(',');
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        newline_pad(depth + 1);
        append_escaped(out, k);
        *out += pretty ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    CMVRP_CHECK_MSG(pos_ == s_.size(),
                    "trailing characters at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    CMVRP_CHECK_MSG(false, "JSON parse error at offset " << pos_ << ": "
                                                         << why);
    std::abort();  // unreachable; CMVRP_CHECK_MSG throws
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    fail("unexpected character");
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("bad \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            expect('\\');
            expect('u');
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(&out, cp);
          break;
        }
        default:
          --pos_;
          fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    // Integer part: 0, or nonzero leading digit.
    if (pos_ < s_.size() && s_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail("bad number");
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: missing fraction digits");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad number: missing exponent digits");
    }
    const double v = std::strtod(s_.c_str() + start, nullptr);
    // dump() can only emit finite values; reject overflow here so the
    // parse/dump round-trip invariant holds end to end.
    if (!std::isfinite(v)) fail("number out of double range");
    return Json(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace cmvrp
