// Deterministic, seedable pseudo-random generator (xoshiro256**),
// seeded through splitmix64 per the reference recommendation.
//
// Every stochastic component of the library (workload generators, message
// delays, tie-breaking) takes an explicit Rng so whole experiments replay
// bit-for-bit from a single seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cmvrp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over all 64-bit values.
  std::uint64_t next_u64();

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  // Bernoulli with success probability p (clamped to [0, 1]).
  bool next_bool(double p = 0.5);

  // Approximately standard normal (Box–Muller, one value per call).
  double next_gaussian();

  // Sample an index from non-negative weights (sum must be > 0).
  std::size_t next_weighted(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cmvrp
