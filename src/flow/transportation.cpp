#include "flow/transportation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "flow/dinic.h"
#include "grid/neighborhood.h"
#include "util/check.h"

namespace cmvrp {
namespace {

struct Bipartite {
  std::vector<Point> suppliers;                 // N_r(support)
  std::vector<Point> demands;                   // support
  std::vector<std::vector<std::size_t>> arcs;   // supplier -> demand indices
};

Bipartite build_bipartite(const DemandMap& d, std::int64_t r) {
  Bipartite g;
  g.demands = d.support();
  CMVRP_CHECK_MSG(!g.demands.empty(), "transportation with empty demand");
  auto supplier_set = neighborhood(g.demands, r);
  g.suppliers.assign(supplier_set.begin(), supplier_set.end());
  std::sort(g.suppliers.begin(), g.suppliers.end());

  g.arcs.resize(g.suppliers.size());
  // Index demands for O(1) membership while scanning each supplier's ball.
  std::unordered_map<Point, std::size_t, PointHash> demand_index;
  for (std::size_t j = 0; j < g.demands.size(); ++j)
    demand_index.emplace(g.demands[j], j);
  for (std::size_t i = 0; i < g.suppliers.size(); ++i) {
    // Enumerating the ball around each supplier costs |ball| per supplier;
    // cheaper than all-pairs when r is small relative to the support.
    if (l1_ball_volume(d.dim(), r) <
        static_cast<std::int64_t>(g.demands.size())) {
      for (const auto& q : l1_ball_points(g.suppliers[i], r)) {
        auto it = demand_index.find(q);
        if (it != demand_index.end()) g.arcs[i].push_back(it->second);
      }
    } else {
      for (std::size_t j = 0; j < g.demands.size(); ++j)
        if (l1_distance(g.suppliers[i], g.demands[j]) <= r)
          g.arcs[i].push_back(j);
    }
  }
  return g;
}

}  // namespace

TransportationResult transportation_feasible(const DemandMap& d,
                                             std::int64_t r, double omega,
                                             double scale) {
  CMVRP_CHECK(r >= 0);
  CMVRP_CHECK(omega >= 0.0);
  CMVRP_CHECK(scale > 0.0);
  const Bipartite g = build_bipartite(d, r);

  // Node layout: 0 = source, 1 = sink, then suppliers, then demands.
  const std::size_t src = 0, sink = 1;
  const std::size_t supplier_base = 2;
  const std::size_t demand_base = supplier_base + g.suppliers.size();
  Dinic flow(demand_base + g.demands.size());

  const auto cap_omega = static_cast<std::int64_t>(std::floor(omega * scale));
  std::int64_t total_demand = 0;
  std::vector<std::size_t> demand_edges(g.demands.size());
  for (std::size_t j = 0; j < g.demands.size(); ++j) {
    // Demands round *up*: feasibility must not be granted by truncation.
    const auto dj = static_cast<std::int64_t>(
        std::ceil(d.at(g.demands[j]) * scale - 1e-9));
    demand_edges[j] = flow.add_edge(demand_base + j, sink, dj);
    total_demand += dj;
  }
  std::vector<std::vector<std::size_t>> arc_edges(g.suppliers.size());
  for (std::size_t i = 0; i < g.suppliers.size(); ++i) {
    flow.add_edge(src, supplier_base + i, cap_omega);
    arc_edges[i].reserve(g.arcs[i].size());
    for (std::size_t j : g.arcs[i]) {
      arc_edges[i].push_back(
          flow.add_edge(supplier_base + i, demand_base + j, cap_omega));
    }
  }

  const std::int64_t sent = flow.max_flow(src, sink);
  TransportationResult result;
  result.feasible = sent >= total_demand;
  if (result.feasible) {
    for (std::size_t i = 0; i < g.suppliers.size(); ++i) {
      for (std::size_t a = 0; a < g.arcs[i].size(); ++a) {
        const std::int64_t f = flow.flow_on(arc_edges[i][a]);
        if (f > 0) {
          result.plan.push_back(TransportationPlanEntry{
              g.suppliers[i], g.demands[g.arcs[i][a]],
              static_cast<double>(f) / scale});
        }
      }
    }
  }
  return result;
}

double min_feasible_omega(const DemandMap& d, std::int64_t r, double tol) {
  CMVRP_CHECK(tol > 0.0);
  if (d.empty()) return 0.0;
  // Upper bracket: the max single-vertex demand always suffices at r >= 0?
  // No — one supplier may serve many demand points. A safe upper bound is
  // the total demand (a single vertex could, at worst, owe everything).
  double lo = 0.0, hi = d.total();
  // Feasibility is monotone in ω.
  CMVRP_CHECK(transportation_feasible(d, r, hi).feasible);
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (transportation_feasible(d, r, mid).feasible)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace cmvrp
