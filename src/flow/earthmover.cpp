#include "flow/earthmover.h"

#include <cmath>

#include "flow/min_cost_flow.h"
#include "util/check.h"

namespace cmvrp {

EarthmoverResult earthmover(const DemandMap& supply, const DemandMap& demand,
                            double scale) {
  CMVRP_CHECK(supply.dim() == demand.dim());
  CMVRP_CHECK(scale > 0.0);
  const auto suppliers = supply.support();
  const auto demands = demand.support();
  EarthmoverResult out;
  if (demands.empty()) {
    out.feasible = true;
    return out;
  }
  if (suppliers.empty()) return out;

  const std::size_t src = 0, sink = 1, sbase = 2;
  const std::size_t dbase = sbase + suppliers.size();
  MinCostFlow flow(dbase + demands.size());

  std::int64_t total_demand = 0;
  for (std::size_t j = 0; j < demands.size(); ++j) {
    const auto dj = static_cast<std::int64_t>(
        std::ceil(demand.at(demands[j]) * scale - 1e-9));
    flow.add_edge(dbase + j, sink, dj, 0);
    total_demand += dj;
  }
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    const auto si = static_cast<std::int64_t>(
        std::floor(supply.at(suppliers[i]) * scale + 1e-9));
    flow.add_edge(src, sbase + i, si, 0);
  }
  std::vector<std::vector<std::size_t>> arc(suppliers.size());
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    arc[i].reserve(demands.size());
    for (std::size_t j = 0; j < demands.size(); ++j) {
      arc[i].push_back(flow.add_edge(sbase + i, dbase + j, INT64_MAX / 4,
                                     l1_distance(suppliers[i], demands[j])));
    }
  }

  const auto r = flow.min_cost_flow(src, sink, total_demand);
  out.feasible = r.flow >= total_demand;
  out.cost = static_cast<double>(r.cost) / scale;
  if (out.feasible) {
    for (std::size_t i = 0; i < suppliers.size(); ++i) {
      for (std::size_t j = 0; j < demands.size(); ++j) {
        const auto f = flow.flow_on(arc[i][j]);
        if (f > 0)
          out.moves.push_back(EarthmoverResult::Move{
              suppliers[i], demands[j], static_cast<double>(f) / scale});
      }
    }
  }
  return out;
}

}  // namespace cmvrp
