// Dinic maximum flow.
//
// Used as the exact oracle behind LP (2.1): for fixed radius r and trial
// capacity ω, "can supplies ω at every vehicle vertex cover all demands
// within distance r?" is a bipartite feasibility question that max-flow
// answers exactly. Capacities are int64; fractional inputs are scaled by
// the caller (see transportation.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cmvrp {

class Dinic {
 public:
  explicit Dinic(std::size_t num_nodes);

  std::size_t num_nodes() const { return graph_.size(); }

  // Adds a directed edge u -> v with the given capacity; returns an edge id
  // usable with flow_on() / capacity_on().
  std::size_t add_edge(std::size_t u, std::size_t v, std::int64_t capacity);

  // Computes max flow from s to t. May be called once per instance.
  std::int64_t max_flow(std::size_t s, std::size_t t);

  // Flow pushed through edge `id` (after max_flow).
  std::int64_t flow_on(std::size_t id) const;
  std::int64_t capacity_on(std::size_t id) const;

  // Nodes reachable from s in the residual graph (the min-cut S-side);
  // valid after max_flow.
  std::vector<bool> min_cut_side() const;

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;       // index of the reverse edge in graph_[to]
    std::int64_t cap;      // residual capacity
    std::int64_t original; // original capacity (0 for reverse edges)
  };

  bool bfs(std::size_t s, std::size_t t);
  std::int64_t dfs(std::size_t v, std::size_t t, std::int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;  // id -> (u, i)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::size_t source_ = 0;
};

}  // namespace cmvrp
