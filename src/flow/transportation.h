// Radius-constrained transportation feasibility — the combinatorial heart
// of LP (2.1).
//
// Given demand d(·) and a radius r, every lattice vertex within N_r of the
// demand support is a potential supplier with capacity ω. Feasibility of a
// given ω is a bipartite max-flow question; the minimal feasible ω is the
// LP value max_T Σ_T d / |N_r(T)| (Lemma 2.2.2). This module provides the
// feasibility oracle and the minimal-ω search, exact up to a caller-chosen
// tolerance via capacity scaling.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/demand_map.h"
#include "grid/point.h"

namespace cmvrp {

struct TransportationPlanEntry {
  Point from;     // supplier vertex
  Point to;       // demand vertex
  double amount;  // energy shipped
};

struct TransportationResult {
  bool feasible = false;
  std::vector<TransportationPlanEntry> plan;  // only filled when feasible
};

// Can per-vertex supply ω cover d within radius r? Demands, supplies and
// flows are scaled to integers by `scale` (default keeps ~1e-6 resolution).
TransportationResult transportation_feasible(const DemandMap& d,
                                             std::int64_t r, double omega,
                                             double scale = 1 << 20);

// Minimal ω feasible at radius r, via monotone bisection of the oracle.
// `tol` is the absolute tolerance on ω.
double min_feasible_omega(const DemandMap& d, std::int64_t r,
                          double tol = 1e-6);

}  // namespace cmvrp
