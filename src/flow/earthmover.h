// Earthmover (optimal transportation) cost on the grid, via min-cost flow.
//
// §2.2 contrasts LP (2.1) with the classical Transportation Problem [15]:
// there, supplies are *given* and the objective is the cheapest move plan.
// This module provides that classical quantity — the minimum total
// energy·distance to reshape a supply distribution into a demand
// distribution under the L1 metric — used by the transfer benches as the
// "how far must energy physically move" yardstick.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/demand_map.h"
#include "grid/point.h"

namespace cmvrp {

struct EarthmoverResult {
  bool feasible = false;   // total supply >= total demand
  double cost = 0.0;       // Σ amount · L1-distance, at the optimum
  struct Move {
    Point from, to;
    double amount;
  };
  std::vector<Move> moves;
};

// Supplies and demands are sparse non-negative maps on the same grid.
// Arcs connect every supply to every demand (complete bipartite, L1
// costs); amounts are scaled to integers by `scale`.
EarthmoverResult earthmover(const DemandMap& supply, const DemandMap& demand,
                            double scale = 1 << 16);

}  // namespace cmvrp
