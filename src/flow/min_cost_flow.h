// Minimum-cost flow by successive shortest augmenting paths with
// Johnson potentials (Bellman–Ford bootstrap, Dijkstra thereafter).
//
// Used for optimal transportation plans: once a capacity ω is fixed, the
// cheapest supply→demand assignment (earthmover plan, §2.2's discussion of
// the Transportation Problem) routes each unit along minimal L1 distance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cmvrp {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes);

  std::size_t add_edge(std::size_t u, std::size_t v, std::int64_t capacity,
                       std::int64_t cost);

  // Sends up to `limit` units from s to t, minimizing total cost.
  // Returns {flow_sent, total_cost}.
  struct Result {
    std::int64_t flow = 0;
    std::int64_t cost = 0;
  };
  Result min_cost_flow(std::size_t s, std::size_t t,
                       std::int64_t limit = INT64_MAX);

  std::int64_t flow_on(std::size_t id) const;

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;
    std::int64_t cap;
    std::int64_t cost;
    std::int64_t original;
  };

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;
};

}  // namespace cmvrp
