#include "flow/dinic.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.h"

namespace cmvrp {

Dinic::Dinic(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t Dinic::add_edge(std::size_t u, std::size_t v,
                            std::int64_t capacity) {
  CMVRP_CHECK(u < graph_.size() && v < graph_.size());
  CMVRP_CHECK(capacity >= 0);
  CMVRP_CHECK_MSG(u != v, "self-loop edges are not supported");
  const std::size_t iu = graph_[u].size();
  const std::size_t iv = graph_[v].size();
  graph_[u].push_back(Edge{v, iv, capacity, capacity});
  graph_[v].push_back(Edge{u, iu, 0, 0});
  edge_index_.emplace_back(u, iu);
  return edge_index_.size() - 1;
}

bool Dinic::bfs(std::size_t s, std::size_t t) {
  level_.assign(graph_.size(), -1);
  std::deque<std::size_t> queue;
  level_[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const Edge& e : graph_[v]) {
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t Dinic::dfs(std::size_t v, std::size_t t, std::int64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.cap > 0 && level_[v] < level_[e.to]) {
      const std::int64_t d = dfs(e.to, t, std::min(pushed, e.cap));
      if (d > 0) {
        e.cap -= d;
        graph_[e.to][e.rev].cap += d;
        return d;
      }
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(std::size_t s, std::size_t t) {
  CMVRP_CHECK(s < graph_.size() && t < graph_.size() && s != t);
  source_ = s;
  std::int64_t flow = 0;
  const std::int64_t inf = std::numeric_limits<std::int64_t>::max();
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    for (;;) {
      const std::int64_t pushed = dfs(s, t, inf);
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t Dinic::flow_on(std::size_t id) const {
  CMVRP_CHECK(id < edge_index_.size());
  const auto [u, i] = edge_index_[id];
  const Edge& e = graph_[u][i];
  return e.original - e.cap;
}

std::int64_t Dinic::capacity_on(std::size_t id) const {
  CMVRP_CHECK(id < edge_index_.size());
  const auto [u, i] = edge_index_[id];
  return graph_[u][i].original;
}

std::vector<bool> Dinic::min_cut_side() const {
  std::vector<bool> side(graph_.size(), false);
  std::deque<std::size_t> queue;
  side[source_] = true;
  queue.push_back(source_);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const Edge& e : graph_[v]) {
      if (e.cap > 0 && !side[e.to]) {
        side[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  return side;
}

}  // namespace cmvrp
