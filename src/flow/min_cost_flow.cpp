#include "flow/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"

namespace cmvrp {

MinCostFlow::MinCostFlow(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t MinCostFlow::add_edge(std::size_t u, std::size_t v,
                                  std::int64_t capacity, std::int64_t cost) {
  CMVRP_CHECK(u < graph_.size() && v < graph_.size() && u != v);
  CMVRP_CHECK(capacity >= 0);
  CMVRP_CHECK_MSG(cost >= 0, "negative edge costs are not supported");
  const std::size_t iu = graph_[u].size();
  const std::size_t iv = graph_[v].size();
  graph_[u].push_back(Edge{v, iv, capacity, cost, capacity});
  graph_[v].push_back(Edge{u, iu, 0, -cost, 0});
  edge_index_.emplace_back(u, iu);
  return edge_index_.size() - 1;
}

MinCostFlow::Result MinCostFlow::min_cost_flow(std::size_t s, std::size_t t,
                                               std::int64_t limit) {
  CMVRP_CHECK(s < graph_.size() && t < graph_.size() && s != t);
  const std::int64_t inf = std::numeric_limits<std::int64_t>::max();
  const std::size_t n = graph_.size();
  std::vector<std::int64_t> potential(n, 0);  // all costs >= 0: zero init OK
  Result result;

  while (result.flow < limit) {
    // Dijkstra with reduced costs.
    std::vector<std::int64_t> dist(n, inf);
    std::vector<std::pair<std::size_t, std::size_t>> parent(
        n, {SIZE_MAX, SIZE_MAX});
    using Item = std::pair<std::int64_t, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[s] = 0;
    pq.emplace(0, s);
    while (!pq.empty()) {
      auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[v]) continue;
      for (std::size_t i = 0; i < graph_[v].size(); ++i) {
        const Edge& e = graph_[v][i];
        if (e.cap <= 0) continue;
        const std::int64_t nd = d + e.cost + potential[v] - potential[e.to];
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          parent[e.to] = {v, i};
          pq.emplace(nd, e.to);
        }
      }
    }
    if (dist[t] == inf) break;  // no more augmenting paths

    for (std::size_t v = 0; v < n; ++v)
      if (dist[v] < inf) potential[v] += dist[v];

    // Bottleneck along the path.
    std::int64_t push = limit - result.flow;
    for (std::size_t v = t; v != s;) {
      const auto [pv, pi] = parent[v];
      push = std::min(push, graph_[pv][pi].cap);
      v = pv;
    }
    // Apply.
    std::int64_t path_cost = 0;
    for (std::size_t v = t; v != s;) {
      const auto [pv, pi] = parent[v];
      Edge& e = graph_[pv][pi];
      e.cap -= push;
      graph_[e.to][e.rev].cap += push;
      path_cost += e.cost;
      v = pv;
    }
    result.flow += push;
    result.cost += push * path_cost;
  }
  return result;
}

std::int64_t MinCostFlow::flow_on(std::size_t id) const {
  CMVRP_CHECK(id < edge_index_.size());
  const auto [u, i] = edge_index_[id];
  const Edge& e = graph_[u][i];
  return e.original - e.cap;
}

}  // namespace cmvrp
