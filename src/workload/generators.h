// Workload generators: the paper's worked examples (Fig 2.1), the Smart
// Dust motivation (§1.2), and stress shapes for the bound benchmarks.
//
// Two layers:
//   * demand maps  — static d(·) for the offline machinery, and
//   * job streams  — ordered arrival sequences (§1.3) for the online
//     simulator; stream_from_demand expands a map into unit jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/box.h"
#include "grid/demand_map.h"
#include "grid/point.h"
#include "util/rng.h"

namespace cmvrp {

struct Job {
  Point position;
  // Arrival index; the model only requires t_1 < t_2 < … and gaps long
  // enough for the protocol to quiesce (§3.2), so an index suffices.
  std::int64_t index = 0;
};

// --- static demand shapes -------------------------------------------------

// Fig 2.1(a): demand `d` at every point of the a×a square with corner at
// `corner` (2-D).
DemandMap square_demand(std::int64_t a, double d, Point corner);

// Fig 2.1(b): demand `d` at every point of a length-`len` axis-aligned
// horizontal line starting at `start` (2-D).
DemandMap line_demand(std::int64_t len, double d, Point start);

// Fig 2.1(c): demand `d` at the single point `p`.
DemandMap point_demand(double d, Point p);

// `count` unit demands dropped uniformly in `box`.
DemandMap uniform_demand(const Box& box, std::int64_t count, Rng& rng);

// `clusters` Gaussian hotspots inside `box`, `count` unit demands total.
DemandMap clustered_demand(const Box& box, int clusters, std::int64_t count,
                           double sigma, Rng& rng);

// Demand proportional to distance-decay around a "fault line" — the
// earthquake-monitoring flavour of §2.1.3 on a larger support.
DemandMap ridge_demand(const Box& box, double peak, Rng& rng);

// --- job streams ------------------------------------------------------------

// Expands an integer-valued demand map into unit jobs. Order:
//   kSorted      — lexicographic sweep (deterministic),
//   kShuffled    — uniformly random permutation,
//   kRoundRobin  — cycles across positions (adversarial for pair energy,
//                  the arrival pattern of the Fig 4.1 example).
enum class ArrivalOrder { kSorted, kShuffled, kRoundRobin };

std::vector<Job> stream_from_demand(const DemandMap& d, ArrivalOrder order,
                                    Rng& rng);

// Smart-Dust event stream: `count` events, each a random walk step from
// the previous hotspot with occasional jumps — models moving phenomena
// (§1.2) while keeping integral demands.
std::vector<Job> smart_dust_stream(const Box& box, std::int64_t count,
                                   double jump_probability, Rng& rng);

// The alternating two-point stream of §4.2: jobs arrive i, j, i, j, …
std::vector<Job> alternating_stream(Point i, Point j, std::int64_t total);

// Demand map induced by a job stream (d(x) = #jobs at x).
DemandMap demand_of_stream(const std::vector<Job>& jobs, int dim);

}  // namespace cmvrp
