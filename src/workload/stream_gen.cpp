#include "workload/stream_gen.h"

#include <algorithm>
#include <cmath>

#include "grid/point.h"
#include "util/check.h"

namespace cmvrp {

namespace {

void check_cube_grid(int dim, std::int64_t cube_side,
                     std::int64_t cubes_per_axis, std::int64_t count) {
  CMVRP_CHECK_MSG(dim >= 1 && dim <= Point::kMaxDim,
                  "stream generator dim must be in [1, " << Point::kMaxDim
                                                         << "]");
  CMVRP_CHECK(cube_side >= 1);
  CMVRP_CHECK_MSG(cubes_per_axis >= 2,
                  "cube-boundary generators need >= 2 cubes per axis");
  CMVRP_CHECK(count >= 0);
}

// Center point of the cube grid cell with per-axis indices `cell`.
Point cube_center(int dim, std::int64_t cube_side,
                  const std::vector<std::int64_t>& cell) {
  Point p = Point::origin(dim);
  for (int i = 0; i < dim; ++i)
    p[i] = cell[static_cast<std::size_t>(i)] * cube_side + cube_side / 2;
  return p;
}

}  // namespace

void boundary_round_robin_stream(int dim, std::int64_t cube_side,
                                 std::int64_t cubes_per_axis,
                                 std::int64_t count, const JobSink& sink) {
  check_cube_grid(dim, cube_side, cubes_per_axis, count);
  // The straddling pairs: for every interior wall w·side along every
  // axis, the two center-row points at coordinates w·side − 1 and w·side.
  // Pairs are listed adjacently, and the pair order flips on every other
  // wall (low,high,high,low,…) so the seam between wall w's high point
  // and wall w+1's low point — which sit in the same cube — never makes
  // two consecutive arrivals share a cube.
  std::vector<Point> ring;
  const std::int64_t mid = (cubes_per_axis * cube_side) / 2;
  for (int axis = 0; axis < dim; ++axis) {
    for (std::int64_t wall = 1; wall < cubes_per_axis; ++wall) {
      Point p = Point::origin(dim);
      for (int i = 0; i < dim; ++i) p[i] = mid;
      const std::int64_t lo = wall * cube_side - 1;
      const std::int64_t hi = wall * cube_side;
      p[axis] = wall % 2 == 1 ? lo : hi;
      ring.push_back(p);
      p[axis] = wall % 2 == 1 ? hi : lo;
      ring.push_back(p);
    }
  }
  for (std::int64_t k = 0; k < count; ++k)
    sink(Job{ring[static_cast<std::size_t>(k) % ring.size()], k});
}

void bursty_hotspot_stream(int dim, std::int64_t cube_side,
                           std::int64_t cubes_per_axis, std::int64_t count,
                           std::int64_t burst, Rng& rng, const JobSink& sink) {
  check_cube_grid(dim, cube_side, cubes_per_axis, count);
  CMVRP_CHECK(burst >= 1);
  std::vector<std::int64_t> cell(static_cast<std::size_t>(dim));
  for (auto& c : cell)
    c = rng.next_int(0, cubes_per_axis - 1);
  Point hotspot = cube_center(dim, cube_side, cell);
  std::int64_t in_burst = 0;
  for (std::int64_t k = 0; k < count; ++k) {
    if (in_burst == burst) {
      // Jump: redraw until the hotspot actually changes cube.
      const std::vector<std::int64_t> old = cell;
      do {
        for (auto& c : cell) c = rng.next_int(0, cubes_per_axis - 1);
      } while (cell == old);
      hotspot = cube_center(dim, cube_side, cell);
      in_burst = 0;
    }
    sink(Job{hotspot, k});
    ++in_burst;
  }
}

void drifting_gradient_stream(const Box& box, std::int64_t count,
                              double sigma, Rng& rng, const JobSink& sink) {
  CMVRP_CHECK(count >= 0);
  CMVRP_CHECK(sigma >= 0.0);
  const int dim = box.dim();
  for (std::int64_t k = 0; k < count; ++k) {
    const double t =
        count > 1 ? static_cast<double>(k) / static_cast<double>(count - 1)
                  : 0.0;
    Point p = Point::origin(dim);
    for (int i = 0; i < dim; ++i) {
      const double center =
          static_cast<double>(box.lo()[i]) +
          t * static_cast<double>(box.hi()[i] - box.lo()[i]);
      const auto c = static_cast<std::int64_t>(
          std::llround(center + rng.next_gaussian() * sigma));
      p[i] = std::clamp(c, box.lo()[i], box.hi()[i]);
    }
    sink(Job{p, k});
  }
}

void heavy_tailed_hotspot_stream(int dim, std::int64_t cube_side,
                                 std::int64_t cubes_per_axis,
                                 std::int64_t count, double alpha, Rng& rng,
                                 const JobSink& sink) {
  check_cube_grid(dim, cube_side, cubes_per_axis, count);
  CMVRP_CHECK_MSG(alpha > 0.0, "Pareto shape alpha must be > 0");
  std::vector<std::int64_t> cell(static_cast<std::size_t>(dim));
  for (auto& c : cell) c = rng.next_int(0, cubes_per_axis - 1);
  Point hotspot = cube_center(dim, cube_side, cell);
  std::int64_t dwell = 0;
  for (std::int64_t k = 0; k < count; ++k) {
    if (dwell == 0) {
      if (k > 0) {
        // Jump: redraw until the hotspot actually changes cube.
        const std::vector<std::int64_t> old = cell;
        do {
          for (auto& c : cell) c = rng.next_int(0, cubes_per_axis - 1);
        } while (cell == old);
        hotspot = cube_center(dim, cube_side, cell);
      }
      // Pareto(alpha, x_m = 1) via inverse transform; u in (0, 1].
      const double u = 1.0 - rng.next_double();
      const double raw = std::pow(u, -1.0 / alpha);
      // Clamp before the int cast: a heavy tail overflows int64 easily.
      const double capped =
          std::min(raw, static_cast<double>(count - k));
      dwell = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::ceil(capped)));
    }
    sink(Job{hotspot, k});
    --dwell;
  }
}

std::vector<Job> merge_streams(const std::vector<std::vector<Job>>& sources) {
  std::vector<Job> out;
  std::size_t total = 0;
  for (const auto& s : sources) total += s.size();
  out.reserve(total);
  std::vector<std::size_t> head(sources.size(), 0);
  auto merges_before = [](const Job& a, const Job& b) {
    if (a.index != b.index) return a.index < b.index;
    return a.position < b.position;
  };
  while (out.size() < total) {
    std::size_t pick = sources.size();
    for (std::size_t s = 0; s < sources.size(); ++s) {
      if (head[s] == sources[s].size()) continue;
      if (pick == sources.size() ||
          merges_before(sources[s][head[s]], sources[pick][head[pick]]))
        pick = s;
    }
    const Job& next = sources[pick][head[pick]++];
    out.push_back(Job{next.position, static_cast<std::int64_t>(out.size())});
  }
  return out;
}

}  // namespace cmvrp
