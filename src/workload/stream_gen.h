// Streaming adversarial generators: job streams emitted one arrival at a
// time to a sink, never materialized.
//
// The generators in generators.h return std::vector<Job>; these instead
// push each Job into a JobSink callback, so a trace file (or any other
// consumer) can absorb streams far larger than memory — the producer
// side of the out-of-core trace subsystem. Each generator is
// parameterized by dimension (ℓ = 1..Point::kMaxDim via the box/side
// arguments), giving the stream engine adversarial 2-D/3-D/4-D
// scenarios:
//
//   * boundary_round_robin_stream — arrivals cycle through point pairs
//     that straddle interior cube walls, so consecutive jobs land in
//     different cubes (worst case for shard routing and pair energy);
//   * bursty_hotspot_stream — a hotspot absorbs a full burst of arrivals,
//     then jumps to a different cube (drains one cube's idle pool at a
//     time, exercising Phase I replacement search);
//   * drifting_gradient_stream — arrivals sample a Gaussian around a
//     center that drifts corner-to-corner across the box (the moving-
//     phenomenon reading of §1.2 at trace scale);
//   * heavy_tailed_hotspot_stream — hotspot migration whose dwell
//     lengths are Pareto-distributed, so the gap (in arrivals) between
//     cube switches is heavy-tailed: most dwells are a handful of jobs,
//     a few pin one cube for a huge run (the worst of both the hotspot
//     and uniform worlds for pool exhaustion).
//
// All randomness comes from the caller's Rng, so a (generator, seed)
// pair is a reproducible stream: emitting to a TraceWriter and replaying
// is bit-identical to collecting the same stream in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "grid/box.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace cmvrp {

// Consumes one finished arrival; jobs carry ascending indices 0..count-1.
using JobSink = std::function<void(const Job&)>;

// Arrivals round-robin across the 2·dim·(cubes_per_axis − 1) points that
// straddle the interior cube walls of a cubes_per_axis^dim cube grid
// (side `cube_side`, anchored at the origin). Deterministic: no RNG.
void boundary_round_robin_stream(int dim, std::int64_t cube_side,
                                 std::int64_t cubes_per_axis,
                                 std::int64_t count, const JobSink& sink);

// Bursts of `burst` arrivals at a hotspot cube's center; after every
// burst the hotspot jumps (uniformly, never in place) to another cube of
// the cubes_per_axis^dim grid.
void bursty_hotspot_stream(int dim, std::int64_t cube_side,
                           std::int64_t cubes_per_axis, std::int64_t count,
                           std::int64_t burst, Rng& rng, const JobSink& sink);

// Arrivals sample a Gaussian (stddev `sigma` per axis, clamped to `box`)
// around a center that drifts linearly from box.lo() to box.hi() over
// the course of the stream.
void drifting_gradient_stream(const Box& box, std::int64_t count,
                              double sigma, Rng& rng, const JobSink& sink);

// Hotspot migration with heavy-tailed dwells: each dwell pins the
// hotspot to one cube center of the cubes_per_axis^dim grid for
// ceil(Pareto(alpha, x_m = 1)) arrivals, then jumps (uniformly, never in
// place). Smaller alpha = heavier tail; alpha <= 1 has infinite mean
// dwell (dwells are clamped to the stream remainder). Requires
// alpha > 0.
void heavy_tailed_hotspot_stream(int dim, std::int64_t cube_side,
                                 std::int64_t cubes_per_axis,
                                 std::int64_t count, double alpha, Rng& rng,
                                 const JobSink& sink);

// Deterministic k-way merge of job streams by (arrival index, position
// lexicographic), re-indexed 0..N-1 in merge order — the in-memory
// reference for TraceMux (record/mux.h implements the identical rule
// out-of-core). Invariant under permutations of `sources`: tied heads
// are identical records, so the merged position sequence cannot depend
// on slot order.
std::vector<Job> merge_streams(const std::vector<std::vector<Job>>& sources);

// Materializes a sink-based generator into a vector — for the scenario
// registry and tests; the trace-writing path never calls this.
template <typename Fn>
std::vector<Job> collect_jobs(Fn&& generate) {
  std::vector<Job> out;
  std::forward<Fn>(generate)([&out](const Job& job) { out.push_back(job); });
  return out;
}

}  // namespace cmvrp
