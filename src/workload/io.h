// Plain-text I/O for demand maps and job streams.
//
// Demand format (one entry per line, '#' starts a comment):
//   x y demand            (2-D; one coordinate per axis for other ℓ)
// Job-stream format:
//   x y                   (arrival order = line order)
// Used by the CLI tool and by anyone driving the library from data files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "grid/demand_map.h"
#include "workload/generators.h"

namespace cmvrp {

// Parses a demand map; throws check_error with a line number on bad input.
DemandMap load_demand(std::istream& in, int dim);
DemandMap load_demand_file(const std::string& path, int dim);

void save_demand(std::ostream& out, const DemandMap& d);
void save_demand_file(const std::string& path, const DemandMap& d);

std::vector<Job> load_jobs(std::istream& in, int dim);
std::vector<Job> load_jobs_file(const std::string& path, int dim);

void save_jobs(std::ostream& out, const std::vector<Job>& jobs);
void save_jobs_file(const std::string& path, const std::vector<Job>& jobs);

}  // namespace cmvrp
