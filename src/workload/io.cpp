#include "workload/io.h"

#include <fstream>
#include <sstream>

#include "util/check.h"

namespace cmvrp {
namespace {

// Strips comments/whitespace; returns false for blank lines.
bool clean_line(std::string& line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return false;
  const auto last = line.find_last_not_of(" \t\r");
  line = line.substr(first, last - first + 1);
  return true;
}

Point parse_point(std::istringstream& is, int dim, std::size_t line_no) {
  Point p = Point::origin(dim);
  for (int i = 0; i < dim; ++i) {
    std::int64_t c = 0;
    CMVRP_CHECK_MSG(static_cast<bool>(is >> c),
                    "line " << line_no << ": expected " << dim
                            << " integer coordinates");
    p[i] = c;
  }
  return p;
}

}  // namespace

DemandMap load_demand(std::istream& in, int dim) {
  DemandMap d(dim);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!clean_line(line)) continue;
    std::istringstream is(line);
    const Point p = parse_point(is, dim, line_no);
    double value = 0.0;
    CMVRP_CHECK_MSG(static_cast<bool>(is >> value),
                    "line " << line_no << ": expected a demand value");
    CMVRP_CHECK_MSG(value >= 0.0,
                    "line " << line_no << ": demand must be >= 0");
    std::string extra;
    CMVRP_CHECK_MSG(!(is >> extra),
                    "line " << line_no << ": trailing tokens");
    d.add(p, value);
  }
  return d;
}

DemandMap load_demand_file(const std::string& path, int dim) {
  std::ifstream in(path);
  CMVRP_CHECK_MSG(in.good(), "cannot open demand file: " << path);
  return load_demand(in, dim);
}

void save_demand(std::ostream& out, const DemandMap& d) {
  out << "# cmvrp demand, dim=" << d.dim() << "\n";
  for (const auto& p : d.support()) {
    for (int i = 0; i < d.dim(); ++i) out << p[i] << ' ';
    out << d.at(p) << "\n";
  }
}

void save_demand_file(const std::string& path, const DemandMap& d) {
  std::ofstream out(path);
  CMVRP_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  save_demand(out, d);
  // Checking only at open would let a full disk truncate silently: the
  // stream buffers, and a failed flush at destruction goes unreported.
  out.flush();
  CMVRP_CHECK_MSG(out.good(),
                  "write failed (disk full?), demand file is incomplete: "
                      << path);
}

std::vector<Job> load_jobs(std::istream& in, int dim) {
  std::vector<Job> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!clean_line(line)) continue;
    std::istringstream is(line);
    const Point p = parse_point(is, dim, line_no);
    std::string extra;
    CMVRP_CHECK_MSG(!(is >> extra),
                    "line " << line_no << ": trailing tokens");
    jobs.push_back(Job{p, static_cast<std::int64_t>(jobs.size())});
  }
  return jobs;
}

std::vector<Job> load_jobs_file(const std::string& path, int dim) {
  std::ifstream in(path);
  CMVRP_CHECK_MSG(in.good(), "cannot open jobs file: " << path);
  return load_jobs(in, dim);
}

void save_jobs(std::ostream& out, const std::vector<Job>& jobs) {
  for (const auto& j : jobs) {
    for (int i = 0; i < j.position.dim(); ++i) out << j.position[i] << ' ';
    out << "\n";
  }
}

void save_jobs_file(const std::string& path, const std::vector<Job>& jobs) {
  std::ofstream out(path);
  CMVRP_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  save_jobs(out, jobs);
  out.flush();
  CMVRP_CHECK_MSG(out.good(),
                  "write failed (disk full?), jobs file is incomplete: "
                      << path);
}

}  // namespace cmvrp
