#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cmvrp {

DemandMap square_demand(std::int64_t a, double d, Point corner) {
  CMVRP_CHECK(corner.dim() == 2);
  CMVRP_CHECK(a >= 1 && d >= 0.0);
  DemandMap out(2);
  Box::cube(corner, a).for_each_point(
      [&](const Point& p) { out.set(p, d); });
  return out;
}

DemandMap line_demand(std::int64_t len, double d, Point start) {
  CMVRP_CHECK(start.dim() == 2);
  CMVRP_CHECK(len >= 1 && d >= 0.0);
  DemandMap out(2);
  for (std::int64_t i = 0; i < len; ++i)
    out.set(start.translated(0, i), d);
  return out;
}

DemandMap point_demand(double d, Point p) {
  DemandMap out(p.dim());
  out.set(p, d);
  return out;
}

DemandMap uniform_demand(const Box& box, std::int64_t count, Rng& rng) {
  CMVRP_CHECK(count >= 0);
  DemandMap out(box.dim());
  for (std::int64_t k = 0; k < count; ++k) {
    Point p = Point::origin(box.dim());
    for (int i = 0; i < box.dim(); ++i)
      p[i] = rng.next_int(box.lo()[i], box.hi()[i]);
    out.add(p, 1.0);
  }
  return out;
}

DemandMap clustered_demand(const Box& box, int clusters, std::int64_t count,
                           double sigma, Rng& rng) {
  CMVRP_CHECK(clusters >= 1 && count >= 0 && sigma > 0.0);
  std::vector<Point> centers;
  centers.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    Point p = Point::origin(box.dim());
    for (int i = 0; i < box.dim(); ++i)
      p[i] = rng.next_int(box.lo()[i], box.hi()[i]);
    centers.push_back(p);
  }
  DemandMap out(box.dim());
  for (std::int64_t k = 0; k < count; ++k) {
    const Point& c =
        centers[static_cast<std::size_t>(rng.next_below(centers.size()))];
    Point p = c;
    for (int i = 0; i < box.dim(); ++i) {
      const auto delta =
          static_cast<std::int64_t>(std::lround(rng.next_gaussian() * sigma));
      p[i] = std::clamp(c[i] + delta, box.lo()[i], box.hi()[i]);
    }
    out.add(p, 1.0);
  }
  return out;
}

DemandMap ridge_demand(const Box& box, double peak, Rng& rng) {
  CMVRP_CHECK(box.dim() == 2);
  CMVRP_CHECK(peak >= 0.0);
  // A random horizontal "fault" row; demand decays with distance from it.
  const std::int64_t fault = rng.next_int(box.lo()[1], box.hi()[1]);
  DemandMap out(2);
  box.for_each_point([&](const Point& p) {
    const auto dist = std::abs(p[1] - fault);
    const double v = std::floor(peak / (1.0 + static_cast<double>(dist)));
    if (v > 0.0) out.set(p, v);
  });
  return out;
}

std::vector<Job> stream_from_demand(const DemandMap& d, ArrivalOrder order,
                                    Rng& rng) {
  std::vector<Job> jobs;
  const auto support = d.support();
  for (const auto& p : support) {
    const double v = d.at(p);
    const auto n = static_cast<std::int64_t>(std::llround(v));
    CMVRP_CHECK_MSG(std::abs(v - static_cast<double>(n)) < 1e-9,
                    "job streams need integral demands, got " << v);
    for (std::int64_t k = 0; k < n; ++k) jobs.push_back(Job{p, 0});
  }
  switch (order) {
    case ArrivalOrder::kSorted:
      break;  // support() is sorted; expansion preserved order
    case ArrivalOrder::kShuffled:
      rng.shuffle(jobs);
      break;
    case ArrivalOrder::kRoundRobin: {
      // Re-emit one job per position per round.
      std::vector<std::pair<Point, std::int64_t>> remaining;
      for (const auto& p : support)
        remaining.emplace_back(
            p, static_cast<std::int64_t>(std::llround(d.at(p))));
      jobs.clear();
      bool any = true;
      while (any) {
        any = false;
        for (auto& [p, left] : remaining) {
          if (left > 0) {
            jobs.push_back(Job{p, 0});
            --left;
            any = true;
          }
        }
      }
      break;
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i)
    jobs[i].index = static_cast<std::int64_t>(i);
  return jobs;
}

std::vector<Job> smart_dust_stream(const Box& box, std::int64_t count,
                                   double jump_probability, Rng& rng) {
  CMVRP_CHECK(count >= 0);
  CMVRP_CHECK(jump_probability >= 0.0 && jump_probability <= 1.0);
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  Point cur = Point::origin(box.dim());
  for (int i = 0; i < box.dim(); ++i)
    cur[i] = rng.next_int(box.lo()[i], box.hi()[i]);
  for (std::int64_t k = 0; k < count; ++k) {
    if (rng.next_bool(jump_probability)) {
      for (int i = 0; i < box.dim(); ++i)
        cur[i] = rng.next_int(box.lo()[i], box.hi()[i]);
    } else {
      const int axis = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(box.dim())));
      const std::int64_t step = rng.next_bool() ? 1 : -1;
      cur[axis] = std::clamp(cur[axis] + step, box.lo()[axis], box.hi()[axis]);
    }
    jobs.push_back(Job{cur, k});
  }
  return jobs;
}

std::vector<Job> alternating_stream(Point i, Point j, std::int64_t total) {
  CMVRP_CHECK(i.dim() == j.dim());
  CMVRP_CHECK(total >= 0);
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(total));
  for (std::int64_t k = 0; k < total; ++k)
    jobs.push_back(Job{k % 2 == 0 ? i : j, k});
  return jobs;
}

DemandMap demand_of_stream(const std::vector<Job>& jobs, int dim) {
  DemandMap out(dim);
  for (const auto& job : jobs) out.add(job.position, 1.0);
  return out;
}

}  // namespace cmvrp
