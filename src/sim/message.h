// Protocol messages of §3.2.3–§3.2.4.
//
// Phase I uses query/reply pairs tagged with the initiator identity (plus
// a sequence number, as the paper's `init` discussion suggests, so repeat
// computations by the same vehicle stay distinct). Phase II uses a single
// move message carrying the destination. `existing` heartbeats support the
// monitoring ring of §3.2.5.
#pragma once

#include <cstddef>
#include <cstdint>
#include <variant>

#include "grid/point.h"

namespace cmvrp {

// Identity of one diffusing computation: (initiating vehicle, sequence).
struct InitTag {
  std::size_t vehicle = SIZE_MAX;
  std::uint64_t seq = 0;

  friend bool operator==(const InitTag& a, const InitTag& b) {
    return a.vehicle == b.vehicle && a.seq == b.seq;
  }
  friend bool operator!=(const InitTag& a, const InitTag& b) {
    return !(a == b);
  }
};

inline constexpr InitTag kNoInit{};

// Phase I: "are you (or do you know) an idle vehicle?" — (init, p).
struct QueryMsg {
  InitTag init;
};

// Phase I: reply (flag, p).
struct ReplyMsg {
  bool flag = false;
  InitTag init;
};

// Phase II: relay toward the found idle vehicle; `dest` is the vertex the
// idle vehicle must occupy (the done vehicle's serving position).
struct MoveMsg {
  Point dest;
  InitTag init;
};

// §3.2.5 monitoring: periodic liveness beacon.
struct ExistingMsg {};

using Message = std::variant<QueryMsg, ReplyMsg, MoveMsg, ExistingMsg>;

inline const char* message_kind(const Message& m) {
  switch (m.index()) {
    case 0:
      return "query";
    case 1:
      return "reply";
    case 2:
      return "move";
    case 3:
      return "existing";
  }
  return "?";
}

}  // namespace cmvrp
