// Protocol messages of §3.2.3–§3.2.4.
//
// Phase I uses query/reply pairs tagged with the initiator identity (plus
// a sequence number, as the paper's `init` discussion suggests, so repeat
// computations by the same vehicle stay distinct). Phase II uses a single
// move message carrying the destination. `existing` heartbeats support the
// monitoring ring of §3.2.5.
#pragma once

#include <cstddef>
#include <cstdint>
#include <variant>

#include "grid/point.h"

namespace cmvrp {

// Identity of one diffusing computation: (initiating vehicle, sequence).
struct InitTag {
  std::size_t vehicle = SIZE_MAX;
  std::uint64_t seq = 0;

  friend bool operator==(const InitTag& a, const InitTag& b) {
    return a.vehicle == b.vehicle && a.seq == b.seq;
  }
  friend bool operator!=(const InitTag& a, const InitTag& b) {
    return !(a == b);
  }
};

inline constexpr InitTag kNoInit{};

// Packed form of an InitTag for the span layer (obs/span.h): vehicle in
// the high word, sequence in the low. init_seq starts at 1, so a real
// tag never packs to 0 — 0 is the "no computation" value (kNoInit).
inline std::uint64_t packed_init(const InitTag& t) {
  if (t == kNoInit) return 0;
  return (static_cast<std::uint64_t>(t.vehicle) << 32) | t.seq;
}

// Phase I: "are you (or do you know) an idle vehicle?" — (init, p).
// `hop` is the query-tree depth the message travels at (1 = the
// initiator's own fan-out), carried for the span layer's causal trace;
// the protocol itself never reads it.
struct QueryMsg {
  InitTag init;
  std::uint32_t hop = 0;
};

// Phase I: reply (flag, p).
struct ReplyMsg {
  bool flag = false;
  InitTag init;
};

// Phase II: relay toward the found idle vehicle; `dest` is the vertex the
// idle vehicle must occupy (the done vehicle's serving position).
struct MoveMsg {
  Point dest;
  InitTag init;
};

// §3.2.5 monitoring: periodic liveness beacon.
struct ExistingMsg {};

using Message = std::variant<QueryMsg, ReplyMsg, MoveMsg, ExistingMsg>;

inline const char* message_kind(const Message& m) {
  switch (m.index()) {
    case 0:
      return "query";
    case 1:
      return "reply";
    case 2:
      return "move";
    case 3:
      return "existing";
  }
  return "?";
}

}  // namespace cmvrp
