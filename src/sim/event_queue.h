// Deterministic discrete-event engine.
//
// Events fire in (time, insertion-sequence) order, so equal-time events are
// processed in a reproducible order; all nondeterminism in experiments
// comes from explicitly seeded message delays, never from the engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/small_fn.h"

namespace cmvrp {

using SimTime = std::int64_t;

class EventQueue {
 public:
  // SmallFn rather than std::function: delivery closures capture the
  // endpoint ids plus a Message payload, which overflows std::function's
  // small-object buffer and costs a heap allocation per simulated message.
  using Handler = SmallFn<128>;

  SimTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }
  std::uint64_t processed() const { return processed_; }

  // Schedules `fn` at absolute time `at` (must be >= now()).
  // The handler parks in a free-listed slot pool and the heap orders
  // 24-byte (time, seq, slot) records — sifting a scheduled event up or
  // down no longer moves the full Handler buffer, which dominated the
  // simulation profile when handlers lived inside the heap elements.
  void schedule(SimTime at, Handler fn) {
    CMVRP_CHECK_MSG(at >= now_, "cannot schedule into the past");
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(handlers_.size());
      handlers_.push_back(std::move(fn));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      handlers_[slot] = std::move(fn);
    }
    events_.push(Event{at, next_seq_++, slot});
  }

  void schedule_after(SimTime delay, Handler fn) {
    CMVRP_CHECK(delay >= 0);
    schedule(now_ + delay, std::move(fn));
  }

  // Runs the earliest event. Returns false when the queue is empty.
  bool step() {
    if (events_.empty()) return false;
    const Event ev = events_.top();
    events_.pop();
    now_ = ev.at;
    ++processed_;
    // Move the handler out before invoking: the handler may schedule new
    // events, which may reuse (and overwrite) this slot.
    Handler fn = std::move(handlers_[ev.slot]);
    free_slots_.push_back(ev.slot);
    fn();
    return true;
  }

  // Drains the queue; throws if more than `max_events` fire (guards
  // against protocol livelock in tests).
  void run_to_quiescence(std::uint64_t max_events = 10'000'000) {
    std::uint64_t fired = 0;
    while (step()) {
      CMVRP_CHECK_MSG(++fired <= max_events,
                      "event budget exhausted: likely livelock");
    }
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;  // index into handlers_
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<Handler> handlers_;          // slot pool; parallel free list
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace cmvrp
