// Deterministic discrete-event engine.
//
// Events fire in (time, insertion-sequence) order, so equal-time events are
// processed in a reproducible order; all nondeterminism in experiments
// comes from explicitly seeded message delays, never from the engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cmvrp {

using SimTime = std::int64_t;

class EventQueue {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }
  std::uint64_t processed() const { return processed_; }

  // Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule(SimTime at, Handler fn) {
    CMVRP_CHECK_MSG(at >= now_, "cannot schedule into the past");
    events_.push(Event{at, next_seq_++, std::move(fn)});
  }

  void schedule_after(SimTime delay, Handler fn) {
    CMVRP_CHECK(delay >= 0);
    schedule(now_ + delay, std::move(fn));
  }

  // Runs the earliest event. Returns false when the queue is empty.
  bool step() {
    if (events_.empty()) return false;
    // priority_queue::top is const; the handler is moved out via const_cast
    // (the element is popped immediately after, never reused).
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
    return true;
  }

  // Drains the queue; throws if more than `max_events` fire (guards
  // against protocol livelock in tests).
  void run_to_quiescence(std::uint64_t max_events = 10'000'000) {
    std::uint64_t fired = 0;
    while (step()) {
      CMVRP_CHECK_MSG(++fired <= max_events,
                      "event budget exhausted: likely livelock");
    }
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Handler fn;
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace cmvrp
