// Message transport implementing the paper's communication model (§3.2):
//   * free (no energy cost), reliable, unaltered delivery,
//   * arbitrary finite per-message delay,
//   * per-channel FIFO ("messages sent from P to Q arrive in order sent"),
//   * unbounded input buffers (receivers are invoked per message).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "obs/span.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "util/flat_map.h"
#include "util/hash.h"
#include "util/rng.h"

namespace cmvrp {

struct NetworkStats {
  std::uint64_t queries = 0;
  std::uint64_t replies = 0;
  std::uint64_t moves = 0;
  std::uint64_t heartbeats = 0;
  // §3.2.5 heartbeats whose scheduler round-trip send() elided (the
  // receiving side is a protocol no-op). Every skip is also counted in
  // `heartbeats`; total() therefore excludes it.
  std::uint64_t heartbeat_skips = 0;

  std::uint64_t total() const { return queries + replies + moves + heartbeats; }

  void merge(const NetworkStats& other) {
    queries += other.queries;
    replies += other.replies;
    moves += other.moves;
    heartbeats += other.heartbeats;
    heartbeat_skips += other.heartbeat_skips;
  }

  friend bool operator==(const NetworkStats& a, const NetworkStats& b) {
    return a.queries == b.queries && a.replies == b.replies &&
           a.moves == b.moves && a.heartbeats == b.heartbeats &&
           a.heartbeat_skips == b.heartbeat_skips;
  }
  friend bool operator!=(const NetworkStats& a, const NetworkStats& b) {
    return !(a == b);
  }
};

class Network {
 public:
  // Deliveries receive (to, from, message).
  using Receiver =
      std::function<void(std::size_t, std::size_t, const Message&)>;

  Network(EventQueue& queue, Rng rng, SimTime max_delay)
      : queue_(queue), rng_(std::move(rng)), max_delay_(max_delay) {
    CMVRP_CHECK(max_delay >= 0);
  }

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  // Optional Tier-C span hook (borrowed; may be null). When set, every
  // non-heartbeat send and delivery is recorded on the cube protocol
  // clock — heartbeats stay invisible, matching their elided delivery.
  void set_spans(SpanRecorder* spans) { spans_ = spans; }

  // Sends m from -> to with a random delay in [1, 1 + max_delay], clamped
  // so the channel stays FIFO.
  void send(std::size_t from, std::size_t to, Message m) {
    CMVRP_CHECK_MSG(receiver_, "network has no receiver bound");
    count(m);
    const SimTime delay =
        1 + static_cast<SimTime>(
                max_delay_ > 0
                    ? rng_.next_below(static_cast<std::uint64_t>(max_delay_) + 1)
                    : 0);
    SimTime at = queue_.now() + delay;
    SimTime& last = last_delivery_[channel_key(from, to)];
    if (at <= last) at = last + 1;  // preserve per-channel ordering
    last = at;
    // §3.2.5 heartbeats ("existing" messages) are protocol no-ops on the
    // receiving side — monitoring reads fleet state directly, never the
    // message. The send still draws its delay (keeping every generator
    // sequence aligned) and still advances the channel's FIFO clamp, but
    // skips the queue roundtrip: at ~1 heartbeat per arrival the
    // schedule/sift/dispatch cycle of a do-nothing delivery was a top
    // entry in the serving profile.
    if (m.index() == 3) {
      ++stats_.heartbeat_skips;
      return;
    }
    if (spans_ != nullptr) {
      spans_->message(queue_.now(), /*send=*/true, static_cast<int>(m.index()),
                      span_comp(m), from, to, span_hop(m));
    }
    queue_.schedule(at, [this, from, to, m = std::move(m)]() {
      if (spans_ != nullptr) {
        spans_->message(queue_.now(), /*send=*/false,
                        static_cast<int>(m.index()), span_comp(m), from, to,
                        span_hop(m));
      }
      receiver_(to, from, m);
    });
  }

  const NetworkStats& stats() const { return stats_; }

 private:
  // Span-layer scalars of a message: the owning computation's packed
  // InitTag and (for queries) the hop the message travels at. Heartbeats
  // never reach these (send() elides them first).
  static std::uint64_t span_comp(const Message& m) {
    switch (m.index()) {
      case 0:
        return packed_init(std::get<QueryMsg>(m).init);
      case 1:
        return packed_init(std::get<ReplyMsg>(m).init);
      case 2:
        return packed_init(std::get<MoveMsg>(m).init);
    }
    return 0;
  }

  static std::uint32_t span_hop(const Message& m) {
    return m.index() == 0 ? std::get<QueryMsg>(m).hop : 0;
  }

  void count(const Message& m) {
    switch (m.index()) {
      case 0:
        ++stats_.queries;
        break;
      case 1:
        ++stats_.replies;
        break;
      case 2:
        ++stats_.moves;
        break;
      case 3:
        ++stats_.heartbeats;
        break;
    }
  }

  // Channel key packs (from, to) into one word. Vehicle ids are dense
  // small integers (indices into the fleet), so 32 bits per endpoint is
  // ample; the check keeps the packing honest if that ever changes.
  static std::uint64_t channel_key(std::size_t from, std::size_t to) {
    CMVRP_CHECK_MSG(from < (1ull << 32) && to < (1ull << 32),
                    "vehicle id exceeds channel-key packing");
    return (static_cast<std::uint64_t>(from) << 32) |
           static_cast<std::uint64_t>(to);
  }

  EventQueue& queue_;
  Rng rng_;
  SimTime max_delay_;
  Receiver receiver_;
  NetworkStats stats_;
  SpanRecorder* spans_ = nullptr;  // borrowed Tier-C hook; may be null
  // Per-channel FIFO clamp state. Open-addressed: one probe per send
  // beats the rb-tree walk the old std::map did on every message.
  FlatMap<std::uint64_t, SimTime, U64Hash> last_delivery_;
};

}  // namespace cmvrp
