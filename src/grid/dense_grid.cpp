#include "grid/dense_grid.h"

#include <algorithm>

namespace cmvrp {

DenseGrid::DenseGrid(const Box& box) : box_(box) {
  const std::int64_t vol = box.volume();
  CMVRP_CHECK_MSG(vol <= (std::int64_t{1} << 31),
                  "dense grid too large: " << vol << " cells");
  data_.assign(static_cast<std::size_t>(vol), 0.0);
}

DenseGrid DenseGrid::from_demand(const DemandMap& d) {
  return from_demand(d, d.bounding_box());
}

DenseGrid DenseGrid::from_demand(const DemandMap& d, const Box& box) {
  DenseGrid g(box);
  for (const auto& [p, v] : d) {
    CMVRP_CHECK_MSG(box.contains(p), "demand point " << p.to_string()
                                                     << " outside grid box");
    g.add(p, v);
  }
  return g;
}

double DenseGrid::total() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double DenseGrid::max_value() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, v);
  return m;
}

PrefixSums::PrefixSums(const DenseGrid& grid, PrefixBuild build)
    : box_(grid.box()), sides_(grid.box_.sides()) {
  const int dim = box_.dim();
  // Shape with a zero-border on the low side of each axis.
  std::size_t total = 1;
  for (auto s : sides_) total *= static_cast<std::size_t>(s + 1);
  ps_.assign(total, 0.0);

  // Strides of the padded array.
  std::vector<std::size_t> stride(static_cast<std::size_t>(dim), 1);
  for (int i = dim - 2; i >= 0; --i)
    stride[static_cast<std::size_t>(i)] =
        stride[static_cast<std::size_t>(i + 1)] *
        static_cast<std::size_t>(sides_[static_cast<std::size_t>(i + 1)] + 1);

  if (build == PrefixBuild::kReference) {
    // Copy values into the padded array (offset +1 per axis).
    box_.for_each_point([&](const Point& p) {
      std::size_t idx = 0;
      for (int i = 0; i < dim; ++i)
        idx += static_cast<std::size_t>(p[i] - box_.lo()[i] + 1) *
               stride[static_cast<std::size_t>(i)];
      ps_[idx] = grid.at(p);
    });

    // Accumulate along each axis in turn: iterate over all positions where
    // the axis coordinate is >= 1 and add the value at coordinate-1. Walk
    // the flat array; an index's coordinate along `axis` is (idx/st) % len.
    for (int axis = 0; axis < dim; ++axis) {
      const std::size_t st = stride[static_cast<std::size_t>(axis)];
      const auto len = static_cast<std::size_t>(
          sides_[static_cast<std::size_t>(axis)] + 1);
      for (std::size_t idx = 0; idx < ps_.size(); ++idx) {
        const std::size_t coord = (idx / st) % len;
        if (coord >= 1) ps_[idx] += ps_[idx - st];
      }
    }
    return;
  }

  // Blocked build. The grid's innermost axis is contiguous in both the
  // source and the padded array, so the copy moves whole rows; each row's
  // padded base enumerates the outer coordinates with an odometer, +1 per
  // axis for the zero border.
  const auto last_side =
      static_cast<std::size_t>(sides_[static_cast<std::size_t>(dim - 1)]);
  std::size_t rows = 1;
  for (int i = 0; i < dim - 1; ++i)
    rows *= static_cast<std::size_t>(sides_[static_cast<std::size_t>(i)]);
  std::vector<std::size_t> outer(static_cast<std::size_t>(dim - 1), 0);
  for (std::size_t row = 0; row < rows; ++row) {
    std::size_t base = 1;  // +1 along the innermost axis (stride 1)
    for (int i = 0; i < dim - 1; ++i)
      base += (outer[static_cast<std::size_t>(i)] + 1) *
              stride[static_cast<std::size_t>(i)];
    const double* src = grid.data_.data() + row * last_side;
    std::copy(src, src + last_side, ps_.data() + base);
    for (int i = dim - 2; i >= 0; --i) {
      auto& c = outer[static_cast<std::size_t>(i)];
      if (++c < static_cast<std::size_t>(sides_[static_cast<std::size_t>(i)]))
        break;
      c = 0;
    }
  }

  // Accumulate per axis over [outer][len][inner] runs: each j-slab adds
  // the (j-1)-slab elementwise across `st` contiguous doubles. Per-chain
  // addition order matches the reference walk exactly, so results are
  // bit-identical; the inner loops are plain strided adds the compiler
  // vectorizes, with no per-element division.
  for (int axis = 0; axis < dim; ++axis) {
    const std::size_t st = stride[static_cast<std::size_t>(axis)];
    const auto len = static_cast<std::size_t>(
        sides_[static_cast<std::size_t>(axis)] + 1);
    const std::size_t span = st * len;
    for (std::size_t base = 0; base < ps_.size(); base += span) {
      for (std::size_t j = 1; j < len; ++j) {
        double* cur = ps_.data() + base + j * st;
        const double* prev = cur - st;
        for (std::size_t i = 0; i < st; ++i) cur[i] += prev[i];
      }
    }
  }
}

double PrefixSums::prefix_at(const std::vector<std::int64_t>& idx) const {
  // idx[i] in [0, side_i]; returns sum over the first idx[i] cells per axis.
  const int dim = box_.dim();
  std::size_t flat = 0;
  for (int i = 0; i < dim; ++i) {
    flat = flat * static_cast<std::size_t>(sides_[static_cast<std::size_t>(i)] + 1) +
           static_cast<std::size_t>(idx[static_cast<std::size_t>(i)]);
  }
  return ps_[flat];
}

double PrefixSums::box_sum(const Box& query) const {
  CMVRP_CHECK(query.dim() == box_.dim());
  const int dim = box_.dim();
  // Clip to the grid box; empty intersection sums to zero.
  std::vector<std::int64_t> lo(static_cast<std::size_t>(dim)),
      hi(static_cast<std::size_t>(dim));
  for (int i = 0; i < dim; ++i) {
    lo[static_cast<std::size_t>(i)] =
        std::max(query.lo()[i], box_.lo()[i]) - box_.lo()[i];
    hi[static_cast<std::size_t>(i)] =
        std::min(query.hi()[i], box_.hi()[i]) - box_.lo()[i];
    if (lo[static_cast<std::size_t>(i)] > hi[static_cast<std::size_t>(i)])
      return 0.0;
  }
  // Inclusion–exclusion over the 2^dim corners.
  double sum = 0.0;
  std::vector<std::int64_t> corner(static_cast<std::size_t>(dim));
  for (unsigned mask = 0; mask < (1u << dim); ++mask) {
    int sign = 1;
    for (int i = 0; i < dim; ++i) {
      if (mask & (1u << i)) {
        corner[static_cast<std::size_t>(i)] = lo[static_cast<std::size_t>(i)];
        sign = -sign;
      } else {
        corner[static_cast<std::size_t>(i)] =
            hi[static_cast<std::size_t>(i)] + 1;
      }
    }
    sum += sign * prefix_at(corner);
  }
  return sum;
}

double PrefixSums::max_cube_sum(std::int64_t side) const {
  CMVRP_CHECK(side >= 1);
  const int dim = box_.dim();
  // Window corner ranges; if the cube is larger than the grid along an
  // axis, use the single clipped window that covers the whole axis.
  std::vector<std::int64_t> lo(static_cast<std::size_t>(dim)),
      hi(static_cast<std::size_t>(dim));
  for (int i = 0; i < dim; ++i) {
    lo[static_cast<std::size_t>(i)] = box_.lo()[i];
    hi[static_cast<std::size_t>(i)] = box_.hi()[i] - side + 1;
    if (hi[static_cast<std::size_t>(i)] < lo[static_cast<std::size_t>(i)])
      hi[static_cast<std::size_t>(i)] = lo[static_cast<std::size_t>(i)];
  }
  double best = 0.0;
  std::vector<std::int64_t> cur = lo;
  for (;;) {
    Point corner = Point::origin(dim);
    for (int i = 0; i < dim; ++i) corner[i] = cur[static_cast<std::size_t>(i)];
    best = std::max(best, box_sum(Box::cube(corner, side)));
    int axis = dim - 1;
    while (axis >= 0) {
      auto& c = cur[static_cast<std::size_t>(axis)];
      if (c < hi[static_cast<std::size_t>(axis)]) {
        ++c;
        break;
      }
      c = lo[static_cast<std::size_t>(axis)];
      --axis;
    }
    if (axis < 0) break;
  }
  return best;
}

}  // namespace cmvrp
