// The repo's one corner-key hasher: a mix64 fold over (dim, coords).
//
// Cube corners are multiples of the partition side, so their low bits are
// constant — FNV-style byte hashes (PointHash) work, but every corner-
// keyed structure rolling its own key (vector<int64_t> in the planner and
// collector, pair-folds elsewhere) made the hashing discipline diffuse.
// CornerHash is the shared functor for FlatMap<Point, …> keyed by cube
// corners; it folds exactly like cube_stream_seed (same mix64 chain over
// dim then coordinates), minus the engine-seed prefix.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grid/point.h"
#include "util/hash.h"

namespace cmvrp {

struct CornerHash {
  std::size_t operator()(const Point& p) const {
    std::uint64_t h = mix64(static_cast<std::uint64_t>(p.dim()));
    for (int i = 0; i < p.dim(); ++i)
      h = mix64(h ^ static_cast<std::uint64_t>(p[i]));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace cmvrp
