// Lattice points of Z^ℓ with the Manhattan (L1) metric.
//
// The paper works on Z^ℓ for a constant dimension ℓ; we carry the dimension
// at runtime (1..4) so one build serves all experiments. Points are small
// value types: fixed storage, no allocation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace cmvrp {

class Point {
 public:
  static constexpr int kMaxDim = 4;

  Point() : dim_(0) { coords_.fill(0); }

  explicit Point(std::initializer_list<std::int64_t> coords) {
    CMVRP_CHECK(coords.size() >= 1 &&
                coords.size() <= static_cast<std::size_t>(kMaxDim));
    coords_.fill(0);
    dim_ = static_cast<int>(coords.size());
    int i = 0;
    for (auto c : coords) coords_[static_cast<std::size_t>(i++)] = c;
  }

  // Origin of Z^dim.
  static Point origin(int dim) {
    CMVRP_CHECK(dim >= 1 && dim <= kMaxDim);
    Point p;
    p.dim_ = dim;
    return p;
  }

  static Point from_vector(const std::vector<std::int64_t>& coords) {
    CMVRP_CHECK(!coords.empty() &&
                coords.size() <= static_cast<std::size_t>(kMaxDim));
    Point p;
    p.dim_ = static_cast<int>(coords.size());
    for (std::size_t i = 0; i < coords.size(); ++i) p.coords_[i] = coords[i];
    return p;
  }

  int dim() const { return dim_; }

  std::int64_t operator[](int i) const {
    CMVRP_CHECK(i >= 0 && i < dim_);
    return coords_[static_cast<std::size_t>(i)];
  }

  std::int64_t& operator[](int i) {
    CMVRP_CHECK(i >= 0 && i < dim_);
    return coords_[static_cast<std::size_t>(i)];
  }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i)
      if (a.coords_[static_cast<std::size_t>(i)] !=
          b.coords_[static_cast<std::size_t>(i)])
        return false;
    return true;
  }

  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  // Lexicographic order (for deterministic iteration of point sets).
  friend bool operator<(const Point& a, const Point& b) {
    CMVRP_CHECK(a.dim_ == b.dim_);
    for (int i = 0; i < a.dim_; ++i) {
      const auto ai = a.coords_[static_cast<std::size_t>(i)];
      const auto bi = b.coords_[static_cast<std::size_t>(i)];
      if (ai != bi) return ai < bi;
    }
    return false;
  }

  Point translated(int axis, std::int64_t delta) const {
    Point p = *this;
    p[axis] += delta;
    return p;
  }

  friend Point operator+(const Point& a, const Point& b) {
    CMVRP_CHECK(a.dim_ == b.dim_);
    Point p = a;
    for (int i = 0; i < a.dim_; ++i) p[i] += b[i];
    return p;
  }

  friend Point operator-(const Point& a, const Point& b) {
    CMVRP_CHECK(a.dim_ == b.dim_);
    Point p = a;
    for (int i = 0; i < a.dim_; ++i) p[i] -= b[i];
    return p;
  }

  std::int64_t l1_norm() const {
    std::int64_t s = 0;
    for (int i = 0; i < dim_; ++i) {
      const auto c = coords_[static_cast<std::size_t>(i)];
      s += c < 0 ? -c : c;
    }
    return s;
  }

  // Parity of the coordinate sum; the paper's chessboard coloring makes a
  // vertex "black" when the sum is even (§3.2).
  bool coordinate_sum_even() const {
    std::int64_t s = 0;
    for (int i = 0; i < dim_; ++i) s += coords_[static_cast<std::size_t>(i)];
    return ((s % 2) + 2) % 2 == 0;
  }

  // The 2ℓ unit-step neighbours (grid adjacency).
  std::vector<Point> unit_neighbors() const {
    std::vector<Point> out;
    out.reserve(static_cast<std::size_t>(2 * dim_));
    for (int i = 0; i < dim_; ++i) {
      out.push_back(translated(i, +1));
      out.push_back(translated(i, -1));
    }
    return out;
  }

  std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxDim> coords_;
  int dim_;
};

// Manhattan distance ‖a − b‖₁ — the paper's travel metric (1 energy/step).
inline std::int64_t l1_distance(const Point& a, const Point& b) {
  CMVRP_CHECK(a.dim() == b.dim());
  std::int64_t s = 0;
  for (int i = 0; i < a.dim(); ++i) {
    const std::int64_t d = a[i] - b[i];
    s += d < 0 ? -d : d;
  }
  return s;
}

struct PointHash {
  std::size_t operator()(const Point& p) const {
    // FNV-1a over the coordinates.
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(p.dim()));
    for (int i = 0; i < p.dim(); ++i) mix(static_cast<std::uint64_t>(p[i]));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace cmvrp
