#include "grid/demand_map.h"

#include <algorithm>

namespace cmvrp {

std::vector<Point> DemandMap::support() const {
  std::vector<Point> out;
  out.reserve(d_.size());
  for (const auto& [p, v] : d_) {
    (void)v;
    out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double DemandMap::total() const {
  double s = 0.0;
  for (const auto& [p, v] : d_) {
    (void)p;
    s += v;
  }
  return s;
}

double DemandMap::max_demand() const {
  double m = 0.0;
  for (const auto& [p, v] : d_) {
    (void)p;
    m = std::max(m, v);
  }
  return m;
}

double DemandMap::sum_in(const Box& box) const {
  double s = 0.0;
  // Iterate whichever side is smaller: the map or the box.
  if (static_cast<std::int64_t>(d_.size()) <= box.volume()) {
    for (const auto& [p, v] : d_)
      if (box.contains(p)) s += v;
  } else {
    box.for_each_point([&](const Point& p) { s += at(p); });
  }
  return s;
}

Box DemandMap::bounding_box() const {
  CMVRP_CHECK_MSG(!d_.empty(), "bounding box of empty demand map");
  Point lo = d_.begin()->first;
  Point hi = lo;
  for (const auto& [p, v] : d_) {
    (void)v;
    for (int i = 0; i < dim_; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  return Box(lo, hi);
}

}  // namespace cmvrp
