#include "grid/neighborhood.h"

#include <deque>
#include <limits>
#include <unordered_map>

#include "util/check.h"

namespace cmvrp {
namespace {

// Saturating/checked accumulation in unsigned __int128, verified to fit
// int64 on return.
std::int64_t narrow_to_int64(unsigned __int128 v) {
  CMVRP_CHECK_MSG(
      v <= static_cast<unsigned __int128>(
               std::numeric_limits<std::int64_t>::max()),
      "neighborhood cardinality overflows int64");
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::int64_t l1_ball_volume(int dim, std::int64_t r) {
  CMVRP_CHECK(dim >= 1 && dim <= Point::kMaxDim);
  CMVRP_CHECK(r >= 0);
  // V(ℓ, r) = Σ_{k=0}^{ℓ} 2^k C(ℓ,k) C(r,k).
  unsigned __int128 total = 0;
  for (int k = 0; k <= dim; ++k) {
    if (static_cast<std::int64_t>(k) > r && k > 0 && r < k) break;
    // C(dim, k)
    unsigned __int128 c_dim_k = 1;
    for (int i = 1; i <= k; ++i)
      c_dim_k = c_dim_k * static_cast<unsigned>(dim - i + 1) /
                static_cast<unsigned>(i);
    // C(r, k)
    unsigned __int128 c_r_k = 1;
    for (int i = 1; i <= k; ++i)
      c_r_k = c_r_k * static_cast<unsigned __int128>(r - i + 1) /
              static_cast<unsigned>(i);
    total += (static_cast<unsigned __int128>(1) << k) * c_dim_k * c_r_k;
  }
  return narrow_to_int64(total);
}

namespace {

// A point y lies in N_r(B) iff Σ_i dist(y_i, [lo_i, hi_i]) <= r.
// Per axis, the number of coordinates at outside-distance d is
//   f_i(0) = side_i,   f_i(d) = 2 for d >= 1.
// Returns g(t) = # of outside-distance vectors summing to exactly t for
// t = 0..r, built by convolving the f_i; since f_i is 2 beyond zero, each
// convolution is
//   g'(t) = side_i * g(t) + 2 * prefix(g)(t-1),
// giving O(ℓ·r) total work. Each g(t), t <= r, is exact: capping the
// array at r only discards distances beyond r.
std::vector<unsigned __int128> outside_distance_counts(
    const std::vector<std::int64_t>& sides, std::int64_t r) {
  CMVRP_CHECK(!sides.empty() &&
              sides.size() <= static_cast<std::size_t>(Point::kMaxDim));
  CMVRP_CHECK(r >= 0);
  for (auto s : sides) CMVRP_CHECK(s >= 1);
  const auto n = static_cast<std::size_t>(r) + 1;
  std::vector<unsigned __int128> g(n, 0);
  g[0] = 1;
  std::vector<unsigned __int128> prefix(n, 0);
  for (std::size_t axis = 0; axis < sides.size(); ++axis) {
    prefix[0] = g[0];
    for (std::size_t t = 1; t < n; ++t) prefix[t] = prefix[t - 1] + g[t];
    const auto side = static_cast<unsigned __int128>(sides[axis]);
    // Walk downward so g still holds the previous axis' values when read.
    for (std::size_t t = n; t-- > 0;) {
      unsigned __int128 v = side * g[t];
      if (t >= 1) v += 2 * prefix[t - 1];
      g[t] = v;
    }
  }
  return g;
}

}  // namespace

std::int64_t box_neighborhood_volume(const std::vector<std::int64_t>& sides,
                                     std::int64_t r) {
  const auto g = outside_distance_counts(sides, r);
  unsigned __int128 total = 0;
  for (const auto v : g) total += v;
  return narrow_to_int64(total);
}

std::vector<std::int64_t> box_neighborhood_volumes(
    const std::vector<std::int64_t>& sides, std::int64_t r) {
  const auto g = outside_distance_counts(sides, r);
  std::vector<std::int64_t> vols(g.size());
  unsigned __int128 running = 0;
  for (std::size_t t = 0; t < g.size(); ++t) {
    running += g[t];
    vols[t] = narrow_to_int64(running);
  }
  return vols;
}

PointSet neighborhood(const PointSet& t, std::int64_t r) {
  std::vector<Point> seeds(t.begin(), t.end());
  return neighborhood(seeds, r);
}

PointSet neighborhood(const std::vector<Point>& t, std::int64_t r) {
  CMVRP_CHECK(r >= 0);
  CMVRP_CHECK_MSG(!t.empty(), "neighborhood of empty set");
  PointSet visited;
  std::deque<std::pair<Point, std::int64_t>> queue;
  for (const auto& p : t) {
    if (visited.insert(p).second) queue.emplace_back(p, 0);
  }
  while (!queue.empty()) {
    auto [p, d] = queue.front();
    queue.pop_front();
    if (d == r) continue;
    for (const auto& q : p.unit_neighbors()) {
      if (visited.insert(q).second) queue.emplace_back(q, d + 1);
    }
  }
  return visited;
}

std::int64_t neighborhood_volume(const std::vector<Point>& t,
                                 std::int64_t r) {
  return static_cast<std::int64_t>(neighborhood(t, r).size());
}

std::vector<Point> l1_ball_points(const Point& c, std::int64_t r) {
  auto set = neighborhood(std::vector<Point>{c}, r);
  return {set.begin(), set.end()};
}

}  // namespace cmvrp
