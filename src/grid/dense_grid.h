// Dense value field over a finite box, with ℓ-dimensional prefix sums and
// a sliding cube-window maximiser.
//
// Corollary 2.2.7 and Algorithm 1 both reduce to questions of the form
// "what is the maximum total demand over all s-cubes?" — prefix sums give
// every such query in O(2^ℓ) after O(n^ℓ) preprocessing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/box.h"
#include "grid/demand_map.h"
#include "grid/point.h"
#include "util/check.h"

namespace cmvrp {

class DenseGrid {
 public:
  // A zero-filled field over `box`.
  explicit DenseGrid(const Box& box);

  // Densifies a sparse demand map over its bounding box (or a given box).
  static DenseGrid from_demand(const DemandMap& d);
  static DenseGrid from_demand(const DemandMap& d, const Box& box);

  const Box& box() const { return box_; }
  int dim() const { return box_.dim(); }

  double at(const Point& p) const { return data_[index_of(p)]; }
  void set(const Point& p, double v) { data_[index_of(p)] = v; }
  void add(const Point& p, double v) { data_[index_of(p)] += v; }

  double total() const;
  double max_value() const;

 private:
  friend class PrefixSums;
  std::size_t index_of(const Point& p) const {
    CMVRP_CHECK_MSG(box_.contains(p),
                    "point " << p.to_string() << " outside " << box_.to_string());
    std::size_t idx = 0;
    for (int i = 0; i < box_.dim(); ++i) {
      idx = idx * static_cast<std::size_t>(box_.side(i)) +
            static_cast<std::size_t>(p[i] - box_.lo()[i]);
    }
    return idx;
  }

  Box box_;
  std::vector<double> data_;
};

// How PrefixSums builds its table. kBlocked views the padded array as
// [outer][len][inner] runs per axis and accumulates over contiguous inner
// spans — no per-element index division, vectorizable. kReference is the
// original per-element walk, kept as the oracle that tests cross-check
// the blocked build against bit-for-bit (both perform each lattice
// chain's additions in the same order, so the floats agree exactly).
enum class PrefixBuild { kBlocked, kReference };

// Inclusive ℓ-dimensional prefix sums over a DenseGrid snapshot.
class PrefixSums {
 public:
  explicit PrefixSums(const DenseGrid& grid,
                      PrefixBuild build = PrefixBuild::kBlocked);

  // Sum of the grid restricted to `query` (clipped to the grid's box).
  double box_sum(const Box& query) const;

  // Maximum of box_sum over all side^ℓ cubes whose intersection with the
  // grid box is the full cube (i.e. cubes fully inside). When no cube of
  // that size fits, falls back to cubes clipped at the boundary, which is
  // what the paper's "all ℓ-cubes in Z^ℓ" means for demand supported on a
  // finite set: exterior demand is zero, so clipped windows are equivalent.
  double max_cube_sum(std::int64_t side) const;

 private:
  double prefix_at(const std::vector<std::int64_t>& idx) const;

  Box box_;
  std::vector<std::int64_t> sides_;
  std::vector<double> ps_;  // shape: (side_i + 1) per axis, row-major
};

}  // namespace cmvrp
