#include "grid/point.h"

#include <sstream>

namespace cmvrp {

std::string Point::to_string() const {
  std::ostringstream os;
  os << '(';
  for (int i = 0; i < dim_; ++i) {
    if (i > 0) os << ", ";
    os << coords_[static_cast<std::size_t>(i)];
  }
  os << ')';
  return os.str();
}

}  // namespace cmvrp
