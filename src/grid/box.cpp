#include "grid/box.h"

#include <limits>
#include <sstream>

namespace cmvrp {

std::int64_t Box::volume() const {
  std::int64_t v = 1;
  for (int i = 0; i < dim(); ++i) {
    const std::int64_t s = side(i);
    CMVRP_CHECK_MSG(v <= std::numeric_limits<std::int64_t>::max() / s,
                    "box volume overflows int64");
    v *= s;
  }
  return v;
}

std::vector<Point> Box::points() const {
  std::vector<Point> out;
  out.reserve(static_cast<std::size_t>(volume()));
  for_each_point([&out](const Point& p) { out.push_back(p); });
  return out;
}

std::string Box::to_string() const {
  std::ostringstream os;
  os << '[' << lo_.to_string() << " .. " << hi_.to_string() << ']';
  return os.str();
}

}  // namespace cmvrp
