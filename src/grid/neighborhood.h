// Exact cardinalities and enumerations of L1 neighborhoods N_r(·) on Z^ℓ.
//
// Eq. (1.1) of the paper defines ω_T through |N_{ω_T}(T)|, so these counts
// must be exact on the *infinite* lattice. Three routes are provided:
//   * closed form for single points (L1 balls),
//   * an O(ℓ·r) dynamic program for boxes (Minkowski sum with the ball),
//   * multi-source BFS for arbitrary finite sets.
// Tests cross-validate all three on overlapping inputs.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "grid/box.h"
#include "grid/point.h"

namespace cmvrp {

using PointSet = std::unordered_set<Point, PointHash>;

// |{x in Z^dim : ‖x‖₁ <= r}| = Σ_k 2^k C(dim,k) C(r,k).
// Throws on int64 overflow (never reached at experiment scales).
std::int64_t l1_ball_volume(int dim, std::int64_t r);

// |N_r(B)| for a box B: counts the lattice points within L1 distance r of
// B via a per-axis DP over outside-distance vectors (see DESIGN.md §3.1).
std::int64_t box_neighborhood_volume(const std::vector<std::int64_t>& sides,
                                     std::int64_t r);

inline std::int64_t box_neighborhood_volume(const Box& b, std::int64_t r) {
  return box_neighborhood_volume(b.sides(), r);
}

// All of |N_0(B)| … |N_r(B)| from ONE DP pass: the radius-r DP's g(t)
// array counts outside-distance vectors summing to exactly t, and each
// g(t), t <= r, is already exact (capping the array at r only truncates
// larger distances), so vol(k) = Σ_{t<=k} g(t) is a prefix sum. O(ℓ·r)
// for all r+1 answers, where repeated box_neighborhood_volume calls cost
// O(ℓ·r²) — this is what makes the incremental ω table cheap to extend.
std::vector<std::int64_t> box_neighborhood_volumes(
    const std::vector<std::int64_t>& sides, std::int64_t r);

// N_r(T) for an arbitrary finite set T, by multi-source BFS on the infinite
// lattice. Returns the full point set; use neighborhood_volume when only the
// cardinality is needed (same cost, less memory churn).
PointSet neighborhood(const PointSet& t, std::int64_t r);
PointSet neighborhood(const std::vector<Point>& t, std::int64_t r);

std::int64_t neighborhood_volume(const std::vector<Point>& t, std::int64_t r);

// Enumerates the L1 ball N_r(c) around a single point.
std::vector<Point> l1_ball_points(const Point& c, std::int64_t r);

}  // namespace cmvrp
