// Sparse demand function d : Z^ℓ → R≥0 (§1.3).
//
// Job streams add unit demands; analytic workloads (Fig 2.1) set arbitrary
// non-negative reals. Zero entries are erased so support() is exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/box.h"
#include "grid/point.h"
#include "util/check.h"

namespace cmvrp {

class DemandMap {
 public:
  explicit DemandMap(int dim) : dim_(dim) {
    CMVRP_CHECK(dim >= 1 && dim <= Point::kMaxDim);
  }

  int dim() const { return dim_; }

  double at(const Point& p) const {
    CMVRP_CHECK(p.dim() == dim_);
    auto it = d_.find(p);
    return it == d_.end() ? 0.0 : it->second;
  }

  void set(const Point& p, double value) {
    CMVRP_CHECK(p.dim() == dim_);
    CMVRP_CHECK_MSG(value >= 0.0, "demand must be non-negative");
    if (value == 0.0)
      d_.erase(p);
    else
      d_[p] = value;
  }

  void add(const Point& p, double delta) {
    CMVRP_CHECK(p.dim() == dim_);
    const double v = at(p) + delta;
    CMVRP_CHECK_MSG(v >= 0.0, "demand made negative at " << p.to_string());
    set(p, v);
  }

  std::size_t support_size() const { return d_.size(); }
  bool empty() const { return d_.empty(); }

  // Points with strictly positive demand, in deterministic (sorted) order.
  std::vector<Point> support() const;

  double total() const;
  double max_demand() const;  // D in §2.3 (0 for an empty map)

  // Sum of demand inside a box.
  double sum_in(const Box& box) const;

  // Smallest box containing the support. Requires a non-empty map.
  Box bounding_box() const;

  // Iteration (unordered; use support() when determinism matters).
  auto begin() const { return d_.begin(); }
  auto end() const { return d_.end(); }

 private:
  int dim_;
  std::unordered_map<Point, double, PointHash> d_;
};

}  // namespace cmvrp
