// Axis-aligned lattice boxes (the ℓ-cubes of Corollaries 2.2.6/2.2.7 are
// boxes with equal side lengths).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "grid/point.h"
#include "util/check.h"

namespace cmvrp {

class Box {
 public:
  // Inclusive corners: the box contains all x with lo[i] <= x[i] <= hi[i].
  Box(Point lo, Point hi) : lo_(lo), hi_(hi) {
    CMVRP_CHECK(lo.dim() == hi.dim());
    for (int i = 0; i < lo.dim(); ++i) CMVRP_CHECK(lo[i] <= hi[i]);
  }

  // The cube with corner `corner` and `side` lattice points per axis.
  static Box cube(Point corner, std::int64_t side) {
    CMVRP_CHECK(side >= 1);
    Point hi = corner;
    for (int i = 0; i < corner.dim(); ++i) hi[i] = corner[i] + side - 1;
    return Box(corner, hi);
  }

  int dim() const { return lo_.dim(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  // Number of lattice points along axis i.
  std::int64_t side(int i) const { return hi_[i] - lo_[i] + 1; }

  std::vector<std::int64_t> sides() const {
    std::vector<std::int64_t> s;
    s.reserve(static_cast<std::size_t>(dim()));
    for (int i = 0; i < dim(); ++i) s.push_back(side(i));
    return s;
  }

  // Total number of lattice points (checked against overflow).
  std::int64_t volume() const;

  bool contains(const Point& p) const {
    CMVRP_CHECK(p.dim() == dim());
    for (int i = 0; i < dim(); ++i)
      if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
    return true;
  }

  // L1 distance from p to the box (0 when inside).
  std::int64_t l1_distance_to(const Point& p) const {
    CMVRP_CHECK(p.dim() == dim());
    std::int64_t d = 0;
    for (int i = 0; i < dim(); ++i) {
      if (p[i] < lo_[i])
        d += lo_[i] - p[i];
      else if (p[i] > hi_[i])
        d += p[i] - hi_[i];
    }
    return d;
  }

  // Enumerate all lattice points in lexicographic order. Intended for
  // small boxes (tests, per-cube planning); volume() must fit memory.
  std::vector<Point> points() const;

  // Visit all points without materializing them.
  template <typename Fn>
  void for_each_point(Fn&& fn) const {
    Point p = lo_;
    const int d = dim();
    for (;;) {
      fn(static_cast<const Point&>(p));
      int axis = d - 1;
      while (axis >= 0) {
        if (p[axis] < hi_[axis]) {
          ++p[axis];
          break;
        }
        p[axis] = lo_[axis];
        --axis;
      }
      if (axis < 0) break;
    }
  }

  std::string to_string() const;

 private:
  Point lo_, hi_;
};

}  // namespace cmvrp
