#include "metrics/timeseries.h"

#include <algorithm>

#include "util/check.h"
#include "util/hash.h"

namespace cmvrp {

Timeseries::Timeseries(std::int64_t stride, std::size_t max_samples)
    : stride_(stride), max_samples_(max_samples) {
  CMVRP_CHECK_MSG(stride >= 0, "sample stride must be >= 0 (0 = off)");
  CMVRP_CHECK_MSG(max_samples >= 2,
                  "decimation needs room for at least two samples");
}

void Timeseries::record(std::int64_t tick, std::int64_t queue_depth,
                        std::int64_t occupancy_pm) {
  CMVRP_CHECK_MSG(due(tick), "record() called for a tick that is not due");
  samples_.push_back({tick, queue_depth, occupancy_pm});
  if (samples_.size() <= max_samples_) return;
  // Full: keep every other sample and double the stride. Samples sit at
  // ticks stride, 2·stride, 3·stride, …, so the odd positions are
  // exactly the multiples of the doubled stride.
  std::size_t kept = 0;
  for (std::size_t i = 1; i < samples_.size(); i += 2)
    samples_[kept++] = samples_[i];
  samples_.resize(kept);
  stride_ *= 2;
}

void TimeseriesSummary::fold(std::uint64_t cube_key,
                             const Timeseries& series) {
  if (series.samples().empty()) return;
  ++cubes_sampled;
  digest = mix64(digest ^ cube_key);
  digest = mix64(digest ^ static_cast<std::uint64_t>(series.stride()));
  for (const TimeSample& s : series.samples()) {
    ++samples;
    max_queue_depth = std::max(max_queue_depth, s.queue_depth);
    max_occupancy_pm = std::max(max_occupancy_pm, s.occupancy_pm);
    digest = mix64(digest ^ static_cast<std::uint64_t>(s.tick));
    digest = mix64(digest ^ static_cast<std::uint64_t>(s.queue_depth));
    digest = mix64(digest ^ static_cast<std::uint64_t>(s.occupancy_pm));
  }
}

}  // namespace cmvrp
