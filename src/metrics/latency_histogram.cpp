#include "metrics/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/hash.h"

namespace cmvrp {

LatencyHistogram::LatencyHistogram(std::int64_t max_value)
    : max_value_(max_value) {
  CMVRP_CHECK_MSG(max_value >= 1, "histogram needs at least one bucket");
}

void LatencyHistogram::add(std::int64_t value) {
  CMVRP_CHECK_MSG(value >= 0,
                  "latency values are nonnegative sim-time deltas, got "
                      << value);
  ++count_;
  if (value > observed_max_) observed_max_ = value;
  if (value > max_value_) {
    ++overflow_;
    return;
  }
  const auto v = static_cast<std::size_t>(value);
  if (v >= counts_.size()) counts_.resize(v + 1, 0);
  ++counts_[v];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  CMVRP_CHECK_MSG(max_value_ == other.max_value_,
                  "merging histograms with different bucket ranges: "
                      << max_value_ << " vs " << other.max_value_);
  if (other.counts_.size() > counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (std::size_t v = 0; v < other.counts_.size(); ++v)
    counts_[v] += other.counts_[v];
  overflow_ += other.overflow_;
  count_ += other.count_;
  observed_max_ = std::max(observed_max_, other.observed_max_);
}

std::int64_t LatencyHistogram::percentile(double p) const {
  CMVRP_CHECK_MSG(p >= 0.0 && p <= 100.0,
                  "percentile must be in [0, 100], got " << p);
  if (count_ == 0) return 0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<std::uint64_t>(rank, 1);
  rank = std::min<std::uint64_t>(rank, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    cumulative += counts_[v];
    if (cumulative >= rank) return static_cast<std::int64_t>(v);
  }
  return max_value_ + 1;  // the rank lands in the overflow bucket
}

std::uint64_t LatencyHistogram::digest() const {
  // Commutative fold over occupied buckets (each contribution depends
  // only on its (value, count) pair), then the scalars — so the digest,
  // like the histogram, is invariant to the order values were added.
  std::uint64_t h = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v)
    if (counts_[v] != 0)
      h += mix64(mix64(static_cast<std::uint64_t>(v)) + counts_[v]);
  h = mix64(h ^ count_);
  h = mix64(h ^ overflow_);
  h = mix64(h ^ static_cast<std::uint64_t>(observed_max_));
  h = mix64(h ^ static_cast<std::uint64_t>(max_value_));
  return h;
}

bool operator==(const LatencyHistogram& a, const LatencyHistogram& b) {
  if (a.max_value_ != b.max_value_ || a.count_ != b.count_ ||
      a.overflow_ != b.overflow_ || a.observed_max_ != b.observed_max_)
    return false;
  // Trailing zero buckets are representation noise, not content.
  const std::size_t common = std::min(a.counts_.size(), b.counts_.size());
  for (std::size_t v = 0; v < common; ++v)
    if (a.counts_[v] != b.counts_[v]) return false;
  const auto& longer = a.counts_.size() > common ? a.counts_ : b.counts_;
  for (std::size_t v = common; v < longer.size(); ++v)
    if (longer[v] != 0) return false;
  return true;
}

}  // namespace cmvrp
