// Deterministic fixed-bucket latency histogram.
//
// Latencies in this codebase are integer sim-time deltas (SimTime ticks
// of a cube's protocol clock plus arrival-index ticks of admission
// wait), so percentiles need no sketch: one counter per integer value,
// grown lazily to the largest value observed, gives *exact* nearest-rank
// percentiles — and, unlike a t-digest or sampled reservoir, the whole
// state is a pure function of the multiset of values added. That is the
// property the streaming engine's bit-identical contract needs: merging
// per-cube histograms is a commutative integer-vector sum, so p50/p90/
// p99 and the digest come out identical for every thread count and batch
// size (the engine still folds cubes in ascending-corner order, same as
// OnlineMetrics).
//
// Values above max_value clamp into one overflow bucket: percentiles
// landing there report max_value + 1 (a sentinel recognizably past the
// bucket range), while observed_max() stays exact. Memory is
// O(largest in-range value added), not O(max_value).
#pragma once

#include <cstdint>
#include <vector>

namespace cmvrp {

class LatencyHistogram {
 public:
  // Default clamp: far above any protocol-clock latency the engine
  // produces, tiny next to the lazy-growth allocation actually paid.
  static constexpr std::int64_t kDefaultMaxValue = 1 << 20;

  explicit LatencyHistogram(std::int64_t max_value = kDefaultMaxValue);

  // Records one latency; negative values are a caller bug (checked).
  void add(std::int64_t value);

  // Folds `other` in (same max_value required — checked). Commutative
  // and associative: bucket counts are integer sums.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t max_value() const { return max_value_; }
  std::uint64_t overflow_count() const { return overflow_; }
  // Exact largest value added (not clamped); 0 when empty.
  std::int64_t observed_max() const { return count_ == 0 ? 0 : observed_max_; }

  // Nearest-rank percentile over the *clamped* samples: the smallest
  // value whose cumulative count reaches ceil(p/100 · count), where
  // overflowed samples sit at max_value + 1. Exact (matches sorting the
  // clamped samples and indexing); 0 when empty. p must be in [0, 100].
  std::int64_t percentile(double p) const;

  // Order-invariant 64-bit digest of (value, count) pairs plus the
  // overflow bucket and observed max — equal iff the clamped multisets
  // (and observed maxima) are equal, for CI diffing.
  std::uint64_t digest() const;

  friend bool operator==(const LatencyHistogram& a, const LatencyHistogram& b);
  friend bool operator!=(const LatencyHistogram& a,
                         const LatencyHistogram& b) {
    return !(a == b);
  }

 private:
  std::int64_t max_value_;
  std::vector<std::uint64_t> counts_;  // counts_[v] = samples of value v
  std::uint64_t overflow_ = 0;         // samples with value > max_value_
  std::uint64_t count_ = 0;
  std::int64_t observed_max_ = 0;
};

}  // namespace cmvrp
