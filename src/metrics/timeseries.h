// Stride-sampled timeseries with deterministic decimation.
//
// The streaming engine samples each cube's admission backlog depth and
// fleet occupancy every `stride` arrivals *of that cube* — a cadence
// that, like the monitoring stride, is a pure function of the cube's
// arrival subsequence, so the samples (and everything derived from
// them) are bit-identical across thread counts and batch sizes.
//
// Memory is bounded: when a series outgrows max_samples, every other
// kept sample is dropped and the stride doubles. Samples land exactly
// on multiples of the current stride, so decimation keeps precisely the
// multiples of the doubled stride — the series always looks as if it
// had been recorded at its final stride from the start, independent of
// when the doubling happened.
//
// TimeseriesSummary is the engine-level rollup: per-cube series folded
// in a caller-pinned order (the engine uses ascending cube corner, the
// same pin OnlineMetrics::merge documents) into counts, maxima, and an
// order-sensitive digest that CI can diff across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cmvrp {

struct TimeSample {
  std::int64_t tick = 0;           // cube-local arrival count at the sample
  std::int64_t queue_depth = 0;    // admission backlog length
  std::int64_t occupancy_pm = 0;   // done/dead share of the fleet, permille

  friend bool operator==(const TimeSample& a, const TimeSample& b) {
    return a.tick == b.tick && a.queue_depth == b.queue_depth &&
           a.occupancy_pm == b.occupancy_pm;
  }
};

class Timeseries {
 public:
  static constexpr std::size_t kDefaultMaxSamples = 256;

  // stride 0 disables sampling entirely (due() is always false).
  explicit Timeseries(std::int64_t stride,
                      std::size_t max_samples = kDefaultMaxSamples);

  // True when `tick` lands on the current stride — callers gate any
  // expensive measurement (fleet occupancy is an O(vehicles) scan)
  // behind this before calling record().
  bool due(std::int64_t tick) const {
    return stride_ > 0 && tick % stride_ == 0;
  }

  // Appends one sample (callers pass a tick that was due); decimates
  // and doubles the stride when full.
  void record(std::int64_t tick, std::int64_t queue_depth,
              std::int64_t occupancy_pm);

  const std::vector<TimeSample>& samples() const { return samples_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t stride_;
  std::size_t max_samples_;
  std::vector<TimeSample> samples_;
};

// Engine-level rollup of many per-cube series. fold() order is the
// caller's pin: the stream engine folds cubes in ascending-corner
// order, making the digest reproducible across thread counts and batch
// sizes (the counts and maxima are order-invariant anyway).
struct TimeseriesSummary {
  std::uint64_t cubes_sampled = 0;   // cubes contributing >= 1 sample
  std::uint64_t samples = 0;
  std::int64_t max_queue_depth = 0;
  std::int64_t max_occupancy_pm = 0;
  std::uint64_t digest = 0x7153a11e5ULL;  // fold basis

  // Folds one cube's series in; `cube_key` identifies the cube in the
  // digest (the engine passes its corner hash). Empty series are
  // no-ops, so the summary is also invariant to how many never-sampled
  // cubes exist.
  void fold(std::uint64_t cube_key, const Timeseries& series);

  friend bool operator==(const TimeseriesSummary& a,
                         const TimeseriesSummary& b) {
    return a.cubes_sampled == b.cubes_sampled && a.samples == b.samples &&
           a.max_queue_depth == b.max_queue_depth &&
           a.max_occupancy_pm == b.max_occupancy_pm && a.digest == b.digest;
  }
  friend bool operator!=(const TimeseriesSummary& a,
                         const TimeseriesSummary& b) {
    return !(a == b);
  }
};

}  // namespace cmvrp
