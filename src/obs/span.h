// Tier-C protocol observability: causal event spans.
//
// The Chapter 3 protocol is a forest of diffusing computations — every
// replacement grows a Phase I query tree (Algorithm 2), collapses it
// through replies, and relays one Phase II move down the found branch.
// SpanRecorder captures that causality as fixed-width per-cube records
// (message send/deliver by kind, computation start/finish keyed by the
// packed InitTag, relay hops with parent links, replacement-cascade
// steps, serve begin/end), each stamped with the cube protocol clock and
// a causal parent reference — the Dapper/X-Trace span model, except that
// the deterministic protocol clock makes the trace *bit-identical*
// across thread counts and batch sizes: every record is a pure function
// of the cube's arrival subsequence and seed, exactly like the Tier-A
// counters in obs/counters.h.
//
// Sampling is deterministic too: every ObsConfig::span_sample-th
// computation per cube is traced (the decision is made at comp_start and
// inherited by every record carrying that computation's tag), so a
// sampled trace is still bit-identical across threads/batches. Serve
// begin/end anchors are always recorded while spans are on. §3.2.5
// heartbeats are never recorded — they are protocol no-ops whose
// receiving side the network elides (see sim/network.h).
//
// Flight-recorder mode (ObsConfig::flight = N > 0) keeps only the last N
// records per cube in a ring, counting evictions — the post-mortem
// configuration front ends dump on check_error / failed runs.
//
// This header deliberately knows nothing about sim/ or online/ types
// (those layers sit above obs): hook sites pass pre-extracted scalars —
// the packed InitTag, the message-kind index, vehicle ids — so the
// dependency arrow keeps pointing upward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_map.h"
#include "util/hash.h"

namespace cmvrp {

// What one span record describes. Values are part of the binary spool
// format (obs/span_export.h) — append only, never renumber.
enum class SpanKind : std::uint8_t {
  kSend = 0,         // message handed to the network (aux = message kind)
  kDeliver = 1,      // message delivered to its receiver (aux = kind)
  kCompStart = 2,    // Phase I diffusing computation initiated
  kCompFinish = 3,   // Phase I finished (aux = 1 when a child was found)
  kRelay = 4,        // a vehicle relayed the query flood (data = fan-out)
  kCascadeStep = 5,  // a Phase II move completed (data = cascade ordinal)
  kServeBegin = 6,   // serve_job entered (data = arrival index)
  kServeEnd = 7,     // serve + its cascade drained (aux = 1 when served)
};

inline constexpr int kSpanKindCount = 8;

const char* span_kind_name(SpanKind kind);

// Message-kind index carried in `aux` of kSend/kDeliver records; matches
// Message::index() in sim/message.h (0 query, 1 reply, 2 move).
const char* span_message_kind_name(std::uint8_t aux);

// One fixed-width span record. Every field is deterministic: `clock` is
// the cube protocol clock (EventQueue::now at the hook site), `comp` the
// packed InitTag of the owning diffusing computation (0 = none — serve
// anchors), `actor`/`parent` cube-local vehicle ids (parent = the causal
// predecessor: the querying vehicle of a relay, the sender of a
// delivery), `hop` the query-tree depth the record sits at, and `data` a
// kind-specific payload (send ordinal for kSend/kDeliver — the flow id
// pairing a send with its delivery; fan-out for kCompStart/kRelay;
// cascade ordinal for kCascadeStep; arrival index for serve anchors).
struct SpanEvent {
  static constexpr std::uint32_t kNoActor = 0xffffffffu;

  std::int64_t clock = 0;
  std::uint64_t comp = 0;
  std::uint64_t data = 0;
  std::uint32_t actor = kNoActor;
  std::uint32_t parent = kNoActor;
  std::uint16_t hop = 0;
  std::uint8_t kind = 0;
  std::uint8_t aux = 0;

  friend bool operator==(const SpanEvent& a, const SpanEvent& b) {
    return a.clock == b.clock && a.comp == b.comp && a.data == b.data &&
           a.actor == b.actor && a.parent == b.parent && a.hop == b.hop &&
           a.kind == b.kind && a.aux == b.aux;
  }
  friend bool operator!=(const SpanEvent& a, const SpanEvent& b) {
    return !(a == b);
  }
};

// Record bookkeeping totals — folded into CubeCounters (spans_* fields)
// so they ride the cmvrp-stream-v3 report and cmvrp-stats-v1 snapshots.
struct SpanTotals {
  std::uint64_t emitted = 0;       // records appended (pre-eviction)
  std::uint64_t sampled_out = 0;   // records skipped by the comp sampler
  std::uint64_t ring_evicted = 0;  // records the flight ring dropped

  void merge(const SpanTotals& other) {
    emitted += other.emitted;
    sampled_out += other.sampled_out;
    ring_evicted += other.ring_evicted;
  }
};

// Per-cube span collector. One recorder per CubeServer, wired into its
// FleetCore and Network at construction; single-threaded by the engine's
// cube-ownership discipline (a cube is served by exactly one shard).
class SpanRecorder {
 public:
  static constexpr std::uint32_t kNoActor = SpanEvent::kNoActor;

  // `sample_every` >= 1: trace every sample_every-th computation of this
  // cube. `flight` >= 0: 0 keeps everything, N keeps the last N records.
  SpanRecorder(std::int64_t sample_every, std::int64_t flight);

  // Vehicle -> pair-slot registry (the Chrome exporter's tid axis).
  // Called from FleetCore::ensure_vehicle; ids are dense cube-local
  // indices, so a flat vector suffices.
  void note_vehicle_pair(std::size_t vid, std::int64_t pair_slot);

  // Hook-site entry points. `comp` is the packed InitTag; `clock` the
  // cube protocol clock at the hook site.
  void comp_start(std::int64_t clock, std::uint64_t comp, std::size_t vid,
                  std::size_t fanout);
  void comp_finish(std::int64_t clock, std::uint64_t comp, std::size_t vid,
                   bool found);
  void relay(std::int64_t clock, std::uint64_t comp, std::size_t vid,
             std::size_t parent, std::uint32_t hop, std::size_t fanout);
  void cascade_step(std::int64_t clock, std::uint64_t comp, std::size_t vid,
                    std::size_t parent, std::uint64_t step);
  void serve_begin(std::int64_t clock, std::size_t vid,
                   std::int64_t arrival_index);
  void serve_end(std::int64_t clock, std::int64_t arrival_index, bool served);
  // One network message: `send` distinguishes the send hook from the
  // delivery hook, `msg_kind` is Message::index() (heartbeats are never
  // passed here), `hop` the query hop the message travels at (0 for
  // replies/moves). Sends draw a per-cube flow ordinal stored in `data`;
  // the matching delivery pops the same ordinal off the channel's FIFO —
  // so send/deliver pairs share an id without any export-time matching.
  void message(std::int64_t clock, bool send, int msg_kind,
               std::uint64_t comp, std::size_t from, std::size_t to,
               std::uint32_t hop);

  // Records in chronological order (the ring unrolled when flight > 0).
  std::vector<SpanEvent> snapshot() const;

  const SpanTotals& totals() const { return totals_; }
  std::int64_t sample_every() const { return sample_every_; }
  std::int64_t flight() const { return flight_; }
  std::size_t stored() const { return events_.size(); }

  // Pair slot of a vehicle (kNoActor when the id was never registered).
  std::uint32_t pair_of(std::uint32_t vid) const {
    return vid < pair_of_.size() ? pair_of_[vid] : kNoActor;
  }
  std::size_t vehicle_count() const { return pair_of_.size(); }

 private:
  // True when records tagged `comp` are kept (decided at comp_start).
  bool sampled(std::uint64_t comp) const;
  void append(const SpanEvent& e);

  std::int64_t sample_every_;
  std::int64_t flight_;
  std::uint64_t comp_ordinal_ = 0;  // computations seen by this cube
  std::uint64_t send_ordinal_ = 0;  // flow ids for send/deliver pairing
  // Packed InitTag -> sampled? Entries live for the cube's lifetime
  // (bounded by computations per cube, same as obs_comp_queries_).
  FlatMap<std::uint64_t, std::uint8_t, U64Hash> comp_sampled_;
  // (from << 32 | to) -> FIFO of in-flight send ordinals per channel.
  FlatMap<std::uint64_t, std::vector<std::uint64_t>, U64Hash> in_flight_;
  std::vector<std::uint32_t> pair_of_;  // vid -> pair slot
  // Flat storage; with flight > 0 it is a ring of capacity flight_ and
  // ring_head_ marks the oldest record.
  std::vector<SpanEvent> events_;
  std::size_t ring_head_ = 0;
  SpanTotals totals_;
};

}  // namespace cmvrp
