#include "obs/counters.h"

#include <algorithm>

#include "util/hash.h"

namespace cmvrp {

void CubeCounters::merge(const CubeCounters& other) {
  msg_queries += other.msg_queries;
  msg_replies += other.msg_replies;
  msg_moves += other.msg_moves;
  msg_heartbeats += other.msg_heartbeats;
  msg_heartbeat_skips += other.msg_heartbeat_skips;
  comps_started += other.comps_started;
  comps_finished += other.comps_finished;
  comps_failed += other.comps_failed;
  monitor_initiations += other.monitor_initiations;
  replacements += other.replacements;
  max_queries_per_comp =
      std::max(max_queries_per_comp, other.max_queries_per_comp);
  arrivals += other.arrivals;
  served += other.served;
  failed += other.failed;
  enqueued += other.enqueued;
  shed += other.shed;
  rejected += other.rejected;
  backlog_peak = std::max(backlog_peak, other.backlog_peak);
  spans_emitted += other.spans_emitted;
  spans_sampled_out += other.spans_sampled_out;
  spans_ring_evicted += other.spans_ring_evicted;
  cascade.merge(other.cascade);
}

std::uint64_t CubeCounters::digest() const {
  // Positional mix64 chain: every field lands at a distinct position, so
  // (unlike a plain sum) two fields cannot trade values unnoticed.
  std::uint64_t h = 0x6f627331u;  // "obs1"
  const std::uint64_t fields[] = {
      msg_queries,   msg_replies,       msg_moves,  msg_heartbeats,
      msg_heartbeat_skips, comps_started, comps_finished, comps_failed,
      monitor_initiations, replacements,  max_queries_per_comp, arrivals,
      served,        failed,            enqueued,   shed,
      rejected,      backlog_peak,      spans_emitted, spans_sampled_out,
      spans_ring_evicted, cascade.digest()};
  for (const std::uint64_t f : fields) h = mix64(h ^ f);
  return h;
}

bool operator==(const CubeCounters& a, const CubeCounters& b) {
  return a.msg_queries == b.msg_queries && a.msg_replies == b.msg_replies &&
         a.msg_moves == b.msg_moves && a.msg_heartbeats == b.msg_heartbeats &&
         a.msg_heartbeat_skips == b.msg_heartbeat_skips &&
         a.comps_started == b.comps_started &&
         a.comps_finished == b.comps_finished &&
         a.comps_failed == b.comps_failed &&
         a.monitor_initiations == b.monitor_initiations &&
         a.replacements == b.replacements &&
         a.max_queries_per_comp == b.max_queries_per_comp &&
         a.arrivals == b.arrivals && a.served == b.served &&
         a.failed == b.failed && a.enqueued == b.enqueued &&
         a.shed == b.shed && a.rejected == b.rejected &&
         a.backlog_peak == b.backlog_peak &&
         a.spans_emitted == b.spans_emitted &&
         a.spans_sampled_out == b.spans_sampled_out &&
         a.spans_ring_evicted == b.spans_ring_evicted &&
         a.cascade == b.cascade;
}

std::uint64_t query_flood_bound(std::int64_t cube_side,
                                std::int64_t neighbor_radius, int dim) {
  std::uint64_t vehicles = 1;
  std::uint64_t fanout = 1;
  for (int i = 0; i < dim; ++i) {
    vehicles *= static_cast<std::uint64_t>(cube_side);
    fanout *= static_cast<std::uint64_t>(2 * neighbor_radius + 1);
  }
  return vehicles * fanout;
}

}  // namespace cmvrp
