#include "obs/stage_timer.h"

#include <cstdio>
#include <cstring>

namespace cmvrp {

std::int64_t current_rss_kb() {
  // VmRSS from /proc/self/status; portable enough for the Linux CI and
  // dev containers this repo targets, harmless (0) elsewhere.
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::int64_t rss = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      long long kb = 0;
      if (std::sscanf(line + 6, "%lld", &kb) == 1) rss = kb;
      break;
    }
  }
  std::fclose(f);
  return rss;
}

}  // namespace cmvrp
