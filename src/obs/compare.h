// Differential observability: a structural comparator for every artifact
// schema the repo emits —
//
//   * `cmvrp-stream-v3` run reports   (tools/cmvrp_cli stream/record/trace)
//   * `cmvrp-stats-v1`  JSONL streams (obs/snapshot.h)
//   * `cmvrp-bench-v1`  suite runs    (exp/harness.h)
//   * Chrome trace-event span exports (obs/span_export.h)
//
// Instead of grepping fields in and out of a diff, every field is
// classified by *rule* and each class has its own comparison semantics:
//
//   identity       schema ids, seeds, config echoes — must agree outright
//                  or the two artifacts are not comparable runs; the
//                  comparison aborts with a check_error naming the field
//                  (CLI exit 1, a data failure).
//   deterministic  everything not matched by another rule: counts,
//                  digests, set hashes, counter totals, cascade
//                  histograms, span payloads. Must match exactly; any
//                  difference is *drift* and fails the comparison.
//   wall           keys ending `_ms`/` ms`, starting `wall_`, rate keys
//                  (`jobs_per_sec`, `.../sec`, `speedup...`) — measured
//                  time. Ratio-compared in the regression direction
//                  (slower / fewer jobs per second = worse) against
//                  configurable warn/fail thresholds, with a noise floor
//                  for sub-millisecond readings and a RunningStats-aware
//                  margin where the artifact carries a stddev
//                  (bench `time_ms` blocks).
//   context        run-shape fields that two comparable runs may
//                  legitimately disagree on (thread count, batch size,
//                  routing-pass split, `hw threads`, bench options and
//                  notes). Reported informationally, never failing —
//                  this is what lets a threads-1 report compare clean
//                  against a threads-8 report of the same seed.
//
// The report serializes as schema `cmvrp-diff-v1` and maps onto the
// CLI-wide exit convention: 0 clean, 1 drift/regression (or unreadable
// input), 2 usage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace cmvrp {

inline constexpr char kDiffSchema[] = "cmvrp-diff-v1";

enum class CompareKind { kAuto, kStream, kStats, kBench, kSpans };

// "auto" | "stream" | "stats" | "bench" | "spans".
const char* compare_kind_name(CompareKind kind);

// Parses a --kind flag value; throws usage_error on anything else.
CompareKind parse_compare_kind(const std::string& name);

enum class FieldClass { kIdentity, kDeterministic, kWall, kContext };
const char* field_class_name(FieldClass cls);

enum class FieldVerdict { kMatch, kInfo, kWarn, kFail };
const char* field_verdict_name(FieldVerdict verdict);

// One per-field verdict worth reporting (mismatches, warnings, and
// context differences; clean matches are only counted, not listed).
struct FieldDiff {
  std::string path;  // dotted into the artifact, e.g. "final.msg_queries"
  FieldClass cls = FieldClass::kDeterministic;
  FieldVerdict verdict = FieldVerdict::kMatch;
  std::string a;       // rendered value in artifact A ("" when absent)
  std::string b;       // rendered value in artifact B ("" when absent)
  double ratio = 0.0;  // wall fields: regression factor (>= 1 is worse)
  std::string note;
};

struct CompareOptions {
  // Wall-field thresholds, as regression factors (B worse than A by more
  // than this). fail_ratio == 0 disables wall *failures* entirely —
  // the right default for 1-core CI containers where wall time is
  // warn-only evidence, not a gate.
  double warn_ratio = 1.25;
  double fail_ratio = 0.0;
  // Wall readings where both sides are below this many milliseconds are
  // pure scheduler noise; they count as compared-and-clean.
  double min_wall_ms = 5.0;
  // Bench `time_ms` blocks carry RunningStats (mean/stddev/reps): a mean
  // shift within `noise_sigmas` of the larger stddev is noise, not a
  // regression, regardless of the ratio.
  double noise_sigmas = 3.0;
  // Keys skipped everywhere (matched by exact name at any depth) — the
  // per-call escape hatch for legitimately incomparable fields, e.g.
  // `cube_slots` in the record-vs-audit round trip where the two runs
  // size the slot table from different geometry by design.
  std::vector<std::string> ignore;
};

struct CompareReport {
  CompareKind kind = CompareKind::kAuto;  // resolved, never kAuto
  std::uint64_t fields_compared = 0;
  std::uint64_t deterministic_fields = 0;
  std::uint64_t wall_fields = 0;
  std::uint64_t drift = 0;       // deterministic mismatches
  std::uint64_t warns = 0;       // wall regressions past warn_ratio
  std::uint64_t wall_fails = 0;  // wall regressions past fail_ratio
  std::uint64_t context_diffs = 0;
  // Verdicts past the recording cap are counted here instead of listed,
  // so a byte-shifted span trace cannot balloon the diff report.
  std::uint64_t diffs_truncated = 0;
  std::vector<FieldDiff> diffs;  // every non-kMatch verdict, in walk order
  // Worst wall regression seen (factor >= 1; 1.0 = nothing regressed).
  std::string worst_wall_field;
  double worst_wall_ratio = 1.0;

  bool clean() const { return drift == 0 && wall_fails == 0; }
  // 0 clean, 1 drift or wall failure. (Usage errors never reach a
  // report — they throw usage_error before comparison starts.)
  int exit_code() const { return clean() ? 0 : 1; }

  // The cmvrp-diff-v1 document. `a`/`b` label the two inputs (paths or
  // synthetic names); they are echoed, not re-read.
  Json to_json(const std::string& a, const std::string& b) const;
};

// Sniffs which artifact schema `text` holds: a JSON array => spans, an
// object => by its "schema" field, JSONL with a cmvrp-stats header =>
// stats. Throws check_error (exit 1) on empty or unrecognizable input,
// naming `label` and the parse offset where applicable.
CompareKind detect_compare_kind(const std::string& text,
                                const std::string& label);

// Compares two artifact texts. kAuto detects the kind from A and
// requires B to match. Throws check_error on unparseable input or an
// identity-field mismatch (both exit 1 at the CLI); returns a report
// otherwise. `a_label`/`b_label` name the inputs in messages.
CompareReport compare_artifacts(const std::string& a_text,
                                const std::string& b_text, CompareKind kind,
                                const CompareOptions& options,
                                const std::string& a_label = "A",
                                const std::string& b_label = "B");

// Already-parsed entry points (used by `cmvrp_cli bench --baseline`,
// which holds the fresh suite document in memory, and by tests).
CompareReport compare_stream_reports(const Json& a, const Json& b,
                                     const CompareOptions& options);
CompareReport compare_bench_runs(const Json& a, const Json& b,
                                 const CompareOptions& options);
CompareReport compare_span_traces(const Json& a, const Json& b,
                                  const CompareOptions& options);
CompareReport compare_stats_streams(const std::string& a_text,
                                    const std::string& b_text,
                                    const CompareOptions& options,
                                    const std::string& a_label = "A",
                                    const std::string& b_label = "B");

}  // namespace cmvrp
