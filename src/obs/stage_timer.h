// Tier-B protocol observability: wall-clock stage spans and an RSS gauge.
//
// Everything in this header is *nondeterministic by design* — wall time
// and resident memory vary run to run — and therefore lives in its own
// tier, strictly separated from the Tier-A counters (obs/counters.h).
// The separation is enforced by naming: every Tier-B JSON field carries
// a `wall_` prefix or `_ms` suffix, which is exactly the pattern the
// shared wall-field rule (obs/compare.h) excludes before
// diffing reports across thread counts.
#pragma once

#include <cstdint>

namespace cmvrp {

// Wall time the streaming engine spent in each serving stage, in
// milliseconds. The stages partition a batch's lifecycle:
//   ingest  — total run_batch time (route + serve + fold + bookkeeping),
//   route   — the corner/slot routing pass (serial or parallel scatter),
//   serve   — the worker-pool serve barrier (protocol work on shards),
//   fold    — sorting per-shard outcomes into the observer's batch,
//   monitor — finish()-time backlog drain, catch-up settles, and the
//             per-cube metric fold.
struct StageTimes {
  double ingest_ms = 0.0;
  double route_ms = 0.0;
  double serve_ms = 0.0;
  double fold_ms = 0.0;
  double monitor_ms = 0.0;

  void merge(const StageTimes& other) {
    ingest_ms += other.ingest_ms;
    route_ms += other.route_ms;
    serve_ms += other.serve_ms;
    fold_ms += other.fold_ms;
    monitor_ms += other.monitor_ms;
  }
};

// Current resident set size in kB (VmRSS from /proc/self/status); 0 on
// platforms without procfs. A gauge, not a counter: sampled, never
// summed.
std::int64_t current_rss_kb();

}  // namespace cmvrp
