#include "obs/snapshot.h"

#include <cinttypes>
#include <cstdio>

#include "util/check.h"
#include "util/digest.h"

namespace cmvrp {
namespace {

void field_u64(std::string* line, const char* key, std::uint64_t value) {
  line->push_back('"');
  line->append(key);
  line->append("\":");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  line->append(buf);
  line->push_back(',');
}

void field_i64(std::string* line, const char* key, std::int64_t value) {
  line->push_back('"');
  line->append(key);
  line->append("\":");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  line->append(buf);
  line->push_back(',');
}

void field_ms(std::string* line, const char* key, double value) {
  line->push_back('"');
  line->append(key);
  line->append("\":");
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  line->append(buf);
  line->push_back(',');
}

void field_str(std::string* line, const char* key, const std::string& value) {
  line->push_back('"');
  line->append(key);
  line->append("\":\"");
  line->append(value);  // callers pass schema ids / hex digests: no escapes
  line->append("\",");
}

void field_bool(std::string* line, const char* key, bool value) {
  line->push_back('"');
  line->append(key);
  line->append("\":");
  line->append(value ? "true" : "false");
  line->push_back(',');
}

// The Tier-A block shared by sample / cube / final lines. Every field
// here is deterministic; the wall-clock block is appended separately.
void counter_fields(std::string* line, const CubeCounters& c) {
  field_u64(line, "msg_queries", c.msg_queries);
  field_u64(line, "msg_replies", c.msg_replies);
  field_u64(line, "msg_moves", c.msg_moves);
  field_u64(line, "msg_heartbeats", c.msg_heartbeats);
  field_u64(line, "msg_heartbeat_skips", c.msg_heartbeat_skips);
  field_u64(line, "msg_total", c.messages_total());
  field_u64(line, "comps_started", c.comps_started);
  field_u64(line, "comps_finished", c.comps_finished);
  field_u64(line, "comps_failed", c.comps_failed);
  field_u64(line, "monitor_initiations", c.monitor_initiations);
  field_u64(line, "replacements", c.replacements);
  field_u64(line, "max_queries_per_comp", c.max_queries_per_comp);
  field_u64(line, "arrivals", c.arrivals);
  field_u64(line, "served", c.served);
  field_u64(line, "failed", c.failed);
  field_u64(line, "enqueued", c.enqueued);
  field_u64(line, "shed", c.shed);
  field_u64(line, "rejected", c.rejected);
  field_u64(line, "backlog_peak", c.backlog_peak);
  field_u64(line, "spans_emitted", c.spans_emitted);
  field_u64(line, "spans_sampled_out", c.spans_sampled_out);
  field_u64(line, "spans_ring_evicted", c.spans_ring_evicted);
  field_u64(line, "cascade_count", c.cascade.count());
  field_i64(line, "cascade_p50", c.cascade.percentile(50.0));
  field_i64(line, "cascade_p99", c.cascade.percentile(99.0));
  field_i64(line, "cascade_max", c.cascade.observed_max());
  field_str(line, "counters_hash", digest_hex(c.digest()));
}

void stage_fields(std::string* line, const StageTimes& s) {
  field_ms(line, "stage_ingest_ms", s.ingest_ms);
  field_ms(line, "stage_route_ms", s.route_ms);
  field_ms(line, "stage_serve_ms", s.serve_ms);
  field_ms(line, "stage_fold_ms", s.fold_ms);
  field_ms(line, "stage_monitor_ms", s.monitor_ms);
  field_i64(line, "wall_rss_kb", current_rss_kb());
}

void finish_line(std::string* line, std::ostream& out) {
  CMVRP_CHECK(!line->empty() && line->back() == ',');
  line->back() = '}';
  line->push_back('\n');
  out << *line;
}

}  // namespace

StatsSnapshotter::StatsSnapshotter(std::ostream& out, std::int64_t stride)
    : out_(out), stride_(stride) {
  CMVRP_CHECK_MSG(stride >= 1, "stats stride must be >= 1 batch");
}

void StatsSnapshotter::write_header(int dim, int threads,
                                    std::int64_t batch_size,
                                    std::uint64_t seed, bool counters_on) {
  std::string line = "{";
  field_str(&line, "kind", "header");
  field_str(&line, "schema", kStatsSchema);
  field_i64(&line, "dim", dim);
  field_i64(&line, "threads", threads);
  field_i64(&line, "batch_size", batch_size);
  field_u64(&line, "seed", seed);
  field_i64(&line, "stride", stride_);
  field_bool(&line, "counters", counters_on);
  finish_line(&line, out_);
  ++lines_;
}

void StatsSnapshotter::write_sample(std::uint64_t batch,
                                    std::uint64_t jobs_ingested,
                                    const CubeCounters& totals,
                                    const StageTimes& stages) {
  std::string line = "{";
  field_str(&line, "kind", "sample");
  field_u64(&line, "batch", batch);
  field_u64(&line, "jobs", jobs_ingested);
  counter_fields(&line, totals);
  stage_fields(&line, stages);
  finish_line(&line, out_);
  ++lines_;
}

void StatsSnapshotter::write_cube(const Point& corner,
                                  const CubeCounters& counters,
                                  const LatencyHistogram& latency) {
  std::string line = "{";
  field_str(&line, "kind", "cube");
  line.append("\"corner\":[");
  for (int i = 0; i < corner.dim(); ++i) {
    if (i > 0) line.push_back(',');
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, corner[i]);
    line.append(buf);
  }
  line.append("],");
  counter_fields(&line, counters);
  field_u64(&line, "latency_count", latency.count());
  field_i64(&line, "latency_p50", latency.percentile(50.0));
  field_i64(&line, "latency_p90", latency.percentile(90.0));
  field_i64(&line, "latency_p99", latency.percentile(99.0));
  field_i64(&line, "latency_max", latency.observed_max());
  finish_line(&line, out_);
  ++lines_;
}

void StatsSnapshotter::write_final(std::uint64_t jobs_ingested,
                                   std::uint64_t cubes,
                                   const CubeCounters& totals,
                                   const StageTimes& stages) {
  std::string line = "{";
  field_str(&line, "kind", "final");
  field_u64(&line, "jobs", jobs_ingested);
  field_u64(&line, "cubes", cubes);
  counter_fields(&line, totals);
  // Derived ratio, still Tier A: both operands are deterministic
  // counters, and the fixed-precision rendering is reproducible.
  const double mpr =
      totals.replacements == 0
          ? 0.0
          : static_cast<double>(totals.messages_total()) /
                static_cast<double>(totals.replacements);
  field_ms(&line, "messages_per_replacement", mpr);
  stage_fields(&line, stages);
  finish_line(&line, out_);
  ++lines_;
}

}  // namespace cmvrp
