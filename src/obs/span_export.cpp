#include "obs/span_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace cmvrp {
namespace {

// Local little-endian codecs: obs sits below trace/, so the spool keeps
// its own copies instead of including trace/format.h.
void store_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void store_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void store_le16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

std::uint16_t load_le16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

void encode_span_event(const SpanEvent& e, unsigned char* out) {
  store_le64(out, static_cast<std::uint64_t>(e.clock));
  store_le64(out + 8, e.comp);
  store_le64(out + 16, e.data);
  store_le32(out + 24, e.actor);
  store_le32(out + 28, e.parent);
  store_le16(out + 32, e.hop);
  out[34] = e.kind;
  out[35] = e.aux;
}

SpanEvent decode_span_event(const unsigned char* p) {
  SpanEvent e;
  e.clock = static_cast<std::int64_t>(load_le64(p));
  e.comp = load_le64(p + 8);
  e.data = load_le64(p + 16);
  e.actor = load_le32(p + 24);
  e.parent = load_le32(p + 28);
  e.hop = load_le16(p + 32);
  e.kind = p[34];
  e.aux = p[35];
  return e;
}

// --- Chrome trace-event JSON -----------------------------------------------

std::int64_t signed_actor(std::uint32_t actor) {
  return actor == SpanEvent::kNoActor ? -1
                                      : static_cast<std::int64_t>(actor);
}

std::uint64_t tid_of(const SpanRecorder& rec, std::uint32_t actor) {
  if (actor == SpanEvent::kNoActor) return 0;
  const std::uint32_t pair = rec.pair_of(actor);
  return pair == SpanRecorder::kNoActor ? 0 : pair + 1;
}

void event_args(std::string* line, const SpanEvent& e) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"args\":{\"comp\":%" PRIu64 ",\"actor\":%" PRId64
                ",\"parent\":%" PRId64 ",\"hop\":%u,\"aux\":%u,\"data\":%" PRIu64
                "}",
                e.comp, signed_actor(e.actor), signed_actor(e.parent),
                static_cast<unsigned>(e.hop), static_cast<unsigned>(e.aux),
                e.data);
  line->append(buf);
}

void event_common(std::string* line, const char* ph, const char* cat,
                  const char* name, std::uint64_t pid, std::uint64_t tid,
                  std::int64_t ts) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"%s\",\"cat\":\"%s\",\"name\":\"%s\",\"pid\":%" PRIu64
                ",\"tid\":%" PRIu64 ",\"ts\":%" PRId64 ",",
                ph, cat, name, pid, tid, ts);
  line->append(buf);
}

void append_id(std::string* line, std::uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"id\":%" PRIu64 ",", id);
  line->append(buf);
}

void write_chrome_event(std::ostream& out, const CubeSpanSource& src,
                        const SpanEvent& e) {
  const SpanRecorder& rec = *src.recorder;
  std::string line;
  line.reserve(256);
  const auto kind = static_cast<SpanKind>(e.kind);
  switch (kind) {
    case SpanKind::kCompStart:
    case SpanKind::kCompFinish:
      // One async "comp" lane per diffusing computation, id = the packed
      // InitTag (unique per cube; scoped by pid via the cat+id2 rules a
      // viewer applies to async events with explicit pid).
      event_common(&line, kind == SpanKind::kCompStart ? "b" : "e", "comp",
                   "phase1", src.pid, tid_of(rec, e.actor), e.clock);
      append_id(&line, e.comp);
      break;
    case SpanKind::kSend:
    case SpanKind::kDeliver: {
      // Flow arrow from the send to its delivery. The recorder's flow
      // ordinal (e.data) is per-cube; fold the pid in so arrows never
      // alias across cubes.
      const std::uint64_t flow = (src.pid << 32) | e.data;
      event_common(&line, kind == SpanKind::kSend ? "s" : "f", "msg",
                   span_message_kind_name(e.aux), src.pid,
                   tid_of(rec, e.actor), e.clock);
      if (kind == SpanKind::kDeliver) line.append("\"bp\":\"e\",");
      append_id(&line, flow);
      break;
    }
    case SpanKind::kRelay:
      event_common(&line, "i", "comp", "relay", src.pid,
                   tid_of(rec, e.actor), e.clock);
      line.append("\"s\":\"t\",");
      break;
    case SpanKind::kCascadeStep:
      event_common(&line, "i", "cascade", "replacement", src.pid,
                   tid_of(rec, e.actor), e.clock);
      line.append("\"s\":\"t\",");
      break;
    case SpanKind::kServeBegin:
    case SpanKind::kServeEnd:
      // Serve anchors pair as a duration slice on tid 0 regardless of
      // which vehicle served (serve_end records no actor; a mismatched
      // tid would break the B/E pairing). The vehicle is in args.
      event_common(&line, kind == SpanKind::kServeBegin ? "B" : "E", "serve",
                   "serve", src.pid, 0, e.clock);
      break;
  }
  event_args(&line, e);
  line.append("},\n");
  out << line;
}

void write_metadata_name(std::ostream& out, std::uint64_t pid,
                         std::int64_t tid, const char* key,
                         const std::string& name) {
  out << "{\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) out << ",\"tid\":" << tid;
  out << ",\"name\":\"" << key << "\",\"args\":{\"name\":\"" << name
      << "\"}},\n";
}

}  // namespace

void export_chrome_trace(std::ostream& out, int dim,
                         const std::vector<CubeSpanSource>& sources,
                         double wall_ms) {
  out << "[\n";
  // The one wall-clock byte sequence, first so a grep over Tier-B keys
  // (obs/compare.h wall rule) skips it and leaves the rest of the
  // file byte-diffable across runs.
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"name\":\"wall_ms\",\"args\":{"
                  "\"wall_ms\":%.3f}},\n",
                  wall_ms);
    out << buf;
  }
  SpanTotals totals;
  std::uint64_t events = 0;
  for (const CubeSpanSource& src : sources) {
    CMVRP_CHECK_MSG(src.recorder != nullptr,
                    "chrome export: cube span source without a recorder");
    const SpanRecorder& rec = *src.recorder;
    totals.merge(rec.totals());
    write_metadata_name(out, src.pid, -1, "process_name",
                        "cube " + src.corner.to_string());
    write_metadata_name(out, src.pid, 0, "thread_name", "anchors");
    // One named lane per vehicle pair this cube ever registered.
    std::uint32_t max_pair = 0;
    bool any_pair = false;
    for (std::size_t vid = 0; vid < rec.vehicle_count(); ++vid) {
      const std::uint32_t pair =
          rec.pair_of(static_cast<std::uint32_t>(vid));
      if (pair == SpanRecorder::kNoActor) continue;
      any_pair = true;
      if (pair > max_pair) max_pair = pair;
    }
    if (any_pair) {
      for (std::uint32_t pair = 0; pair <= max_pair; ++pair) {
        char name[32];
        std::snprintf(name, sizeof(name), "pair %u", pair);
        write_metadata_name(out, src.pid,
                            static_cast<std::int64_t>(pair) + 1,
                            "thread_name", name);
      }
    }
    for (const SpanEvent& e : rec.snapshot()) {
      write_chrome_event(out, src, e);
      ++events;
    }
  }
  // Deterministic trailer (comma-free, so the array closes clean).
  out << "{\"ph\":\"M\",\"pid\":0,\"name\":\"cmvrp_span_totals\",\"args\":{"
      << "\"dim\":" << dim << ",\"cubes\":" << sources.size()
      << ",\"events\":" << events << ",\"emitted\":" << totals.emitted
      << ",\"sampled_out\":" << totals.sampled_out
      << ",\"ring_evicted\":" << totals.ring_evicted << "}}\n]\n";
  CMVRP_CHECK_MSG(out.good(), "chrome trace export failed (disk full?)");
}

void write_span_spool(std::ostream& out, int dim,
                      const std::vector<CubeSpanSource>& sources) {
  CMVRP_CHECK_MSG(dim >= 1 && dim <= Point::kMaxDim,
                  "span spool dim must be in [1, " << Point::kMaxDim
                                                   << "], got " << dim);
  SpanTotals totals;
  for (const CubeSpanSource& src : sources) {
    CMVRP_CHECK_MSG(src.recorder != nullptr,
                    "span spool: cube span source without a recorder");
    totals.merge(src.recorder->totals());
  }
  unsigned char header[kSpanSpoolHeaderSize];
  for (std::size_t i = 0; i < sizeof(kSpanSpoolMagic); ++i)
    header[i] = kSpanSpoolMagic[i];
  store_le32(header + 8, kSpanSpoolVersion);
  store_le32(header + 12, static_cast<std::uint32_t>(dim));
  store_le64(header + 16, sources.size());
  store_le64(header + 24, totals.emitted);
  store_le64(header + 32, totals.sampled_out);
  store_le64(header + 40, totals.ring_evicted);
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  for (const CubeSpanSource& src : sources) {
    const SpanRecorder& rec = *src.recorder;
    unsigned char buf[64];
    for (int i = 0; i < dim; ++i) {
      store_le64(buf, static_cast<std::uint64_t>(src.corner[i]));
      out.write(reinterpret_cast<const char*>(buf), 8);
    }
    store_le64(buf, src.pid);
    store_le64(buf + 8, rec.totals().emitted);
    store_le64(buf + 16, rec.totals().sampled_out);
    store_le64(buf + 24, rec.totals().ring_evicted);
    store_le64(buf + 32, rec.vehicle_count());
    out.write(reinterpret_cast<const char*>(buf), 40);
    for (std::size_t vid = 0; vid < rec.vehicle_count(); ++vid) {
      store_le32(buf, rec.pair_of(static_cast<std::uint32_t>(vid)));
      out.write(reinterpret_cast<const char*>(buf), 4);
    }
    const std::vector<SpanEvent> events = rec.snapshot();
    store_le64(buf, events.size());
    out.write(reinterpret_cast<const char*>(buf), 8);
    for (const SpanEvent& e : events) {
      unsigned char record[kSpanRecordSize];
      encode_span_event(e, record);
      out.write(reinterpret_cast<const char*>(record), sizeof(record));
    }
  }
  CMVRP_CHECK_MSG(out.good(), "span spool write failed (disk full?)");
}

SpanSpool read_span_spool(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CMVRP_CHECK_MSG(in.good(), "cannot open span spool: " << path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t size = bytes.size();

  // Bounded cursor: every read states where it is, so truncation errors
  // name the exact byte offset (same contract as trace/reader.cpp).
  std::size_t at = 0;
  const auto need = [&](std::size_t n, const char* what) {
    CMVRP_CHECK_MSG(at + n <= size, "span spool truncated at byte "
                                        << at << " (need " << n
                                        << " bytes for " << what << ", file is "
                                        << size << " bytes): " << path);
  };

  need(kSpanSpoolHeaderSize, "header");
  for (std::size_t i = 0; i < sizeof(kSpanSpoolMagic); ++i)
    CMVRP_CHECK_MSG(data[i] == kSpanSpoolMagic[i],
                    "bad span spool magic at byte " << i << ": " << path);
  const std::uint32_t version = load_le32(data + 8);
  CMVRP_CHECK_MSG(version == kSpanSpoolVersion,
                  "unsupported span spool version "
                      << version << " at byte 8 (expected "
                      << kSpanSpoolVersion << "): " << path);
  const std::uint32_t dim = load_le32(data + 12);
  CMVRP_CHECK_MSG(dim >= 1 && dim <= static_cast<std::uint32_t>(Point::kMaxDim),
                  "bad span spool dim " << dim << " at byte 12: " << path);
  const std::uint64_t cube_count = load_le64(data + 16);
  SpanSpool spool;
  spool.dim = static_cast<int>(dim);
  spool.totals.emitted = load_le64(data + 24);
  spool.totals.sampled_out = load_le64(data + 32);
  spool.totals.ring_evicted = load_le64(data + 40);
  at = kSpanSpoolHeaderSize;

  spool.cubes.reserve(cube_count);
  for (std::uint64_t c = 0; c < cube_count; ++c) {
    CubeSpans cube;
    need(static_cast<std::size_t>(dim) * 8 + 40, "cube block header");
    Point corner = Point::origin(static_cast<int>(dim));
    for (std::uint32_t i = 0; i < dim; ++i) {
      corner[static_cast<int>(i)] =
          static_cast<std::int64_t>(load_le64(data + at));
      at += 8;
    }
    cube.corner = corner;
    cube.pid = load_le64(data + at);
    cube.totals.emitted = load_le64(data + at + 8);
    cube.totals.sampled_out = load_le64(data + at + 16);
    cube.totals.ring_evicted = load_le64(data + at + 24);
    const std::uint64_t vehicles = load_le64(data + at + 32);
    at += 40;
    need(vehicles * 4, "pair registry");
    cube.pair_of.reserve(vehicles);
    for (std::uint64_t v = 0; v < vehicles; ++v) {
      cube.pair_of.push_back(load_le32(data + at));
      at += 4;
    }
    need(8, "event count");
    const std::uint64_t events = load_le64(data + at);
    at += 8;
    need(events * kSpanRecordSize, "event records");
    cube.events.reserve(events);
    for (std::uint64_t e = 0; e < events; ++e) {
      const SpanEvent ev = decode_span_event(data + at);
      CMVRP_CHECK_MSG(ev.kind < kSpanKindCount,
                      "unknown span kind " << static_cast<unsigned>(ev.kind)
                                           << " at byte " << at << ": "
                                           << path);
      cube.events.push_back(ev);
      at += kSpanRecordSize;
    }
    spool.cubes.push_back(std::move(cube));
  }
  CMVRP_CHECK_MSG(at == size, "span spool has " << size - at
                                                << " trailing bytes at byte "
                                                << at << ": " << path);
  return spool;
}

}  // namespace cmvrp
