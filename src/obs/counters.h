// Tier-A protocol observability: deterministic per-cube counters.
//
// The paper's claims are *communication* claims — Phase I diffusing
// computations flood O(s^ℓ) vehicles per replacement (Lemma 3.3.1) and
// all coordination is intra-cube (§3.2) — so the observability layer's
// first tier counts messages, computations, and replacement cascades
// with the same determinism contract everything else in the streaming
// engine obeys: every field of CubeCounters is a pure function of one
// cube's arrival subsequence (plus its seed), merges commutatively, and
// therefore folds to bit-identical totals for every thread count and
// batch size. Wall-clock spans live in the separate Tier B
// (obs/stage_timer.h) and never mix into this struct.
//
// Collection is off by default (ObsConfig::counters): the message-kind
// fields come free from sim/network.h's always-on NetworkStats, but the
// per-computation query attribution, the cascade histogram, and the
// admission-queue gauges are extra bookkeeping the serve hot path only
// pays when asked to.
#pragma once

#include <cstdint>

#include "metrics/latency_histogram.h"

namespace cmvrp {

// Observability switches, carried inside OnlineConfig so they reach
// every FleetCore / CubeServer unchanged through stream, trace replay,
// record, and mux composition.
struct ObsConfig {
  // Tier-A counter collection (per-computation query attribution,
  // cascade histogram, admission gauges). Off by default: the serve
  // path must cost the same as before this layer existed.
  bool counters = false;
  // Tier-C causal span tracing (obs/span.h): per-cube protocol event
  // records on the cube protocol clock. Off by default for the same
  // reason as `counters`; turning it on cannot change serving outcomes.
  bool spans = false;
  // Deterministic span sampling: trace every span_sample-th diffusing
  // computation per cube (1 = every computation). Serve begin/end
  // anchors are always recorded while spans are on.
  std::int64_t span_sample = 1;
  // Flight-recorder ring: 0 keeps every sampled record; N > 0 keeps only
  // the last N records per cube (post-mortem mode — front ends dump the
  // rings on failed runs instead of exporting full traces).
  std::int64_t flight = 0;

  friend bool operator==(const ObsConfig& a, const ObsConfig& b) {
    return a.counters == b.counters && a.spans == b.spans &&
           a.span_sample == b.span_sample && a.flight == b.flight;
  }
  friend bool operator!=(const ObsConfig& a, const ObsConfig& b) {
    return !(a == b);
  }
};

// One cube's (or, after folding, one run's) deterministic counters.
// Sums merge by addition, peaks by max, the cascade histogram by its
// own commutative bucket sum — so the fold over cubes is
// order-invariant and the engine's ascending-corner fold lands on the
// same bytes at every thread count.
struct CubeCounters {
  // Cascade lengths are replacement counts per served job — tiny next
  // to latencies, so a small exact-bucket range suffices.
  static constexpr std::int64_t kCascadeMaxValue = 1 << 12;

  // Messages by kind (from NetworkStats; maintained even when
  // ObsConfig::counters is off). heartbeat_skips counts §3.2.5
  // heartbeats whose scheduler round-trip the network elided — the
  // PR-6 fast path made observable.
  std::uint64_t msg_queries = 0;
  std::uint64_t msg_replies = 0;
  std::uint64_t msg_moves = 0;
  std::uint64_t msg_heartbeats = 0;
  std::uint64_t msg_heartbeat_skips = 0;

  // Phase I diffusing computations. started/failed mirror
  // OnlineMetrics; finished counts every finish_phase_one (success or
  // failure) and is obs-gated.
  std::uint64_t comps_started = 0;
  std::uint64_t comps_finished = 0;  // obs-gated
  std::uint64_t comps_failed = 0;
  std::uint64_t monitor_initiations = 0;
  std::uint64_t replacements = 0;

  // Largest Query fan-out any single computation produced (obs-gated).
  // Lemma 3.3.1 bounds this by s^ℓ · (2r+1)^ℓ: each of the cube's s^ℓ
  // vehicles relays at most once, sending at most (2r+1)^ℓ queries.
  std::uint64_t max_queries_per_comp = 0;

  // Admission / queue events (obs-gated except served/failed/arrivals,
  // which restate always-on engine state for self-contained snapshots).
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t enqueued = 0;  // jobs that entered a bounded backlog
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backlog_peak = 0;  // deepest the backlog ever got

  // Tier-C span totals (obs/span.h; zero unless ObsConfig::spans):
  // records kept, records skipped by the computation sampler, and
  // records the flight-recorder ring evicted. All three are pure
  // functions of the cube's arrival subsequence, like every field here.
  std::uint64_t spans_emitted = 0;
  std::uint64_t spans_sampled_out = 0;
  std::uint64_t spans_ring_evicted = 0;

  // Replacement-cascade length per served job: how many completed
  // Phase II relocations the job's own serve triggered (obs-gated;
  // monitor-initiated replacements between jobs are excluded).
  LatencyHistogram cascade{kCascadeMaxValue};

  std::uint64_t messages_total() const {
    return msg_queries + msg_replies + msg_moves + msg_heartbeats;
  }

  // Commutative fold: sums, maxes, histogram bucket sums.
  void merge(const CubeCounters& other);

  // Order-invariant 64-bit digest over every field (cascade via its own
  // digest) — the CI counter-diff guard's one-line equality witness.
  std::uint64_t digest() const;

  friend bool operator==(const CubeCounters& a, const CubeCounters& b);
  friend bool operator!=(const CubeCounters& a, const CubeCounters& b) {
    return !(a == b);
  }
};

// Lemma 3.3.1 flood ceiling on per-computation queries: s^ℓ vehicles,
// each relaying to at most (2r+1)^ℓ − 1 neighbors plus the initiator's
// own fan-out — conservatively s^ℓ · (2r+1)^ℓ.
std::uint64_t query_flood_bound(std::int64_t cube_side,
                                std::int64_t neighbor_radius, int dim);

}  // namespace cmvrp
