// Span-trace analysis: the `cmvrp_cli prof` backend.
//
// profile_spans groups a trace's records into per-computation profiles —
// one per (cube pid, packed InitTag) — and derives the three views the
// ROADMAP's query-batching work needs:
//
//   fan-out tree shape   breadth by hop (how many queries travel at each
//                        hop of the Algorithm 2 flood) and per-tree max
//                        depth — the measured counterpart of Lemma
//                        3.3.1's s^ℓ · (2r+1)^ℓ ceiling
//   critical path        finish clock − start clock per computation on
//                        the protocol clock: the serial latency a
//                        replacement pays for its flood + reply collapse
//   widest floods        top-k computations by query count — the
//                        concrete batching targets
//
// Attribution: every Phase I query carries its computation's InitTag, so
// at sampling K=1 the profile attributes 100% of recorded query sends to
// a computation tree; the report carries both counts so callers can
// assert the ratio (the acceptance bar is >= 95% of *counted* queries,
// i.e. CubeCounters::msg_queries, which this matches when sampling is
// off because the span hook and the counter hook sit at the same site).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "metrics/latency_histogram.h"
#include "obs/span_export.h"

namespace cmvrp {

// One diffusing computation's measured tree.
struct CompProfile {
  std::uint64_t pid = 0;      // owning cube's pid
  std::uint64_t comp = 0;     // packed InitTag
  std::int64_t start = 0;     // protocol clock at comp_start
  std::int64_t finish = 0;    // protocol clock at comp_finish
  bool finished = false;      // saw a kCompFinish record
  bool found = false;         // the finish reported a child
  std::uint64_t queries = 0;  // query sends tagged with this comp
  std::uint64_t relays = 0;   // vehicles that relayed the flood
  std::uint64_t cascade_steps = 0;  // Phase II moves this comp completed
  std::uint32_t depth = 0;    // deepest hop any of its queries reached
  // finish − start on the protocol clock: the flood + collapse latency.
  std::int64_t critical_path = 0;
};

struct ProfReport {
  std::size_t cubes = 0;
  std::uint64_t events = 0;          // records across all cubes
  std::uint64_t comps = 0;           // computations with a start record
  std::uint64_t comps_finished = 0;
  std::uint64_t comps_found = 0;
  std::uint64_t query_sends = 0;       // kSend records of kind query
  std::uint64_t attributed_queries = 0;  // of those, tagged to a known comp
  std::uint64_t replacements = 0;      // cascade steps across all comps
  // breadth_by_hop[h] = query sends travelling at hop h (hop 1 = the
  // initiator's own fan-out). Index 0 exists but stays 0 by protocol.
  std::vector<std::uint64_t> breadth_by_hop;
  LatencyHistogram depth{1 << 8};            // per-comp max hop
  LatencyHistogram critical{1 << 20};        // per-comp critical path
  LatencyHistogram flood_width{1 << 20};     // per-comp query count
  std::vector<CompProfile> widest;           // top-k by queries, desc
  SpanTotals totals;

  double attribution_ratio() const {
    return query_sends == 0 ? 1.0
                            : static_cast<double>(attributed_queries) /
                                  static_cast<double>(query_sends);
  }
};

// Profiles a trace read back by read_span_spool (or assembled from
// Chrome JSON by the CLI). `top_k` bounds the widest-floods list; ties
// break on (pid, comp) so the report is deterministic.
ProfReport profile_spans(const std::vector<CubeSpans>& cubes,
                         std::size_t top_k);

}  // namespace cmvrp
