// Span trace exporters: Chrome trace-event JSON and the binary spool.
//
// Both exporters walk the same input — one (corner, pid, recorder)
// source per cube, in ascending-corner order — and emit only
// deterministic bytes, so an exported trace diffs clean across thread
// counts and batch sizes. The single wall-clock field the Chrome export
// carries (`wall_ms`, run duration metadata for humans reading the
// trace) sits alone on the line right after the opening `[`, keyed with
// the Tier-B `wall_` prefix, so the comparator (obs/compare.h) wall rule skips it
// and leaves a byte-diffable remainder.
//
// Chrome trace-event mapping (load the JSON in Perfetto or
// chrome://tracing):
//   pid  = the cube's slot in the engine's CubeSlotTable (stable across
//          runs of one scenario; uncovered cubes get 1'000'000 + their
//          ascending-corner ordinal)
//   tid  = vehicle pair slot + 1 (tid 0 carries anchors with no vehicle)
//   ts   = cube protocol clock (microseconds to the viewer — protocol
//          ticks to us)
//   "b"/"e" async pairs = one Phase I diffusing computation (id = the
//          packed InitTag)
//   "B"/"E" duration pairs on tid 0 = serve_job begin/end
//   "s"/"f" flow pairs = one message send -> delivery (id = the
//          recorder's per-cube flow ordinal), drawing the query flood's
//          fan-out arrows
//   "i" instants = relay hops and replacement-cascade steps
//   "M" metadata = process/thread naming (cube corner, vehicle pair)
//
// The binary spool ("cmvrpspn") is the compact form `cmvrp_cli prof`
// reads back: little-endian, fixed-width records, one pair-registry +
// record block per cube. Readers reject malformed files with the byte
// offset (same contract as trace/format.h readers).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "grid/point.h"
#include "obs/span.h"

namespace cmvrp {

inline constexpr unsigned char kSpanSpoolMagic[8] = {'c', 'm', 'v', 'r',
                                                     'p', 's', 'p', 'n'};
inline constexpr std::uint32_t kSpanSpoolVersion = 1;
// magic + version + dim + cube count + SpanTotals (3 x u64).
inline constexpr std::size_t kSpanSpoolHeaderSize = 8 + 4 + 4 + 8 + 24;
// Packed SpanEvent: clock, comp, data (u64); actor, parent (u32);
// hop (u16); kind, aux (u8).
inline constexpr std::size_t kSpanRecordSize = 8 * 3 + 4 * 2 + 2 + 1 + 1;

// Synthetic pid base for cubes outside the engine's slot table.
inline constexpr std::uint64_t kSpanUnslottedPidBase = 1'000'000;

// One cube's contribution to an export: its corner, its stable pid, and
// a borrowed recorder (must outlive the export call).
struct CubeSpanSource {
  Point corner;
  std::uint64_t pid = 0;
  const SpanRecorder* recorder = nullptr;
};

// One cube's spans as read back from a spool or Chrome JSON — the
// analyzer-side mirror of CubeSpanSource (obs/prof.h consumes this).
struct CubeSpans {
  Point corner;
  std::uint64_t pid = 0;
  std::vector<SpanEvent> events;        // chronological
  std::vector<std::uint32_t> pair_of;   // vid -> pair slot registry
  SpanTotals totals;
};

// Writes the Chrome trace-event JSON array. `sources` must be in
// ascending-corner order; `wall_ms` is the run's wall duration (the one
// non-deterministic byte sequence, isolated on its own `wall_` line).
void export_chrome_trace(std::ostream& out, int dim,
                         const std::vector<CubeSpanSource>& sources,
                         double wall_ms);

// Writes the binary spool for the same sources.
void write_span_spool(std::ostream& out, int dim,
                      const std::vector<CubeSpanSource>& sources);

// Reads a spool back; check_errors on truncation / bad magic / bad
// version, naming the byte offset of the problem.
struct SpanSpool {
  int dim = 0;
  SpanTotals totals;
  std::vector<CubeSpans> cubes;
};
SpanSpool read_span_spool(const std::string& path);

}  // namespace cmvrp
