#include "obs/prof.h"

#include <algorithm>

#include "util/check.h"
#include "util/flat_map.h"
#include "util/hash.h"

namespace cmvrp {

ProfReport profile_spans(const std::vector<CubeSpans>& cubes,
                         std::size_t top_k) {
  ProfReport report;
  report.cubes = cubes.size();
  std::vector<CompProfile> profiles;

  for (const CubeSpans& cube : cubes) {
    report.totals.merge(cube.totals);
    report.events += cube.events.size();
    // InitTags are unique within one cube, so grouping is per cube:
    // first pass creates a profile per start record, second pass
    // accumulates everything tagged with that computation.
    FlatMap<std::uint64_t, std::size_t, U64Hash> index;
    for (const SpanEvent& e : cube.events) {
      if (static_cast<SpanKind>(e.kind) != SpanKind::kCompStart) continue;
      CMVRP_CHECK_MSG(e.comp != 0, "comp_start record without an InitTag");
      if (index.find(e.comp) != nullptr) continue;  // ring wrap duplicate
      index[e.comp] = profiles.size();
      CompProfile p;
      p.pid = cube.pid;
      p.comp = e.comp;
      p.start = e.clock;
      profiles.push_back(p);
    }
    for (const SpanEvent& e : cube.events) {
      const std::size_t* slot =
          e.comp == 0 ? nullptr : index.find(e.comp);
      CompProfile* p = slot == nullptr ? nullptr : &profiles[*slot];
      switch (static_cast<SpanKind>(e.kind)) {
        case SpanKind::kCompStart:
          break;
        case SpanKind::kCompFinish:
          if (p != nullptr) {
            p->finished = true;
            p->found = e.aux != 0;
            p->finish = e.clock;
            p->critical_path = e.clock - p->start;
          }
          break;
        case SpanKind::kSend:
          if (e.aux == 0) {  // query
            ++report.query_sends;
            if (report.breadth_by_hop.size() <=
                static_cast<std::size_t>(e.hop))
              report.breadth_by_hop.resize(e.hop + 1, 0);
            ++report.breadth_by_hop[e.hop];
            if (p != nullptr) {
              ++report.attributed_queries;
              ++p->queries;
              if (e.hop > p->depth) p->depth = e.hop;
            }
          }
          break;
        case SpanKind::kDeliver:
          break;
        case SpanKind::kRelay:
          if (p != nullptr) ++p->relays;
          break;
        case SpanKind::kCascadeStep:
          ++report.replacements;
          if (p != nullptr) ++p->cascade_steps;
          break;
        case SpanKind::kServeBegin:
        case SpanKind::kServeEnd:
          break;
      }
    }
  }

  report.comps = profiles.size();
  for (const CompProfile& p : profiles) {
    if (p.finished) {
      ++report.comps_finished;
      CMVRP_CHECK_MSG(p.critical_path >= 0,
                      "computation finished before it started (clock skew in "
                      "the trace?)");
      report.critical.add(p.critical_path);
    }
    if (p.found) ++report.comps_found;
    report.depth.add(static_cast<std::int64_t>(p.depth));
    report.flood_width.add(static_cast<std::int64_t>(p.queries));
  }

  // Top-k widest floods: query count desc, then (pid, comp) asc so the
  // report never depends on grouping order.
  std::sort(profiles.begin(), profiles.end(),
            [](const CompProfile& a, const CompProfile& b) {
              if (a.queries != b.queries) return a.queries > b.queries;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.comp < b.comp;
            });
  if (profiles.size() > top_k) profiles.resize(top_k);
  report.widest = std::move(profiles);
  return report;
}

}  // namespace cmvrp
