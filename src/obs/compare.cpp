#include "obs/compare.h"

#include <cmath>
#include <cstddef>
#include <map>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace cmvrp {
namespace {

// Past this many recorded verdicts the report only counts — a
// byte-shifted span trace would otherwise list thousands of lines.
constexpr std::size_t kMaxRecordedDiffs = 200;

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Rate-style wall keys: bigger is better, so the regression direction is
// B *below* A. Covers the report key (`jobs_per_sec`), the bench metric
// spellings (`jobs/sec`, `speedup vs 1t`), and derived wall ratios.
bool is_rate_key(const std::string& key) {
  return key == "jobs_per_sec" || ends_with(key, "/sec") ||
         starts_with(key, "speedup") || key == "on/off ratio";
}

// The Tier-A/Tier-B naming convention from src/obs/: every
// nondeterministic (wall-clock-derived) key ends in `_ms` (wall_ms,
// routing_ms, stage_*_ms) or ` ms` (the bench table spellings), starts
// with `wall_` (wall_rss_kb), or is a derived rate. Everything else in
// an artifact is a pure function of the arrival sequence and seed.
bool is_wall_key(const std::string& key) {
  return ends_with(key, "_ms") || ends_with(key, " ms") ||
         starts_with(key, "wall_") || is_rate_key(key);
}

bool name_in(const std::vector<std::string>& names, const std::string& key) {
  for (const auto& n : names)
    if (n == key) return true;
  return false;
}

std::string render(const Json* v) {
  return v == nullptr ? std::string() : v->dump();
}

std::string join_path(const std::string& path, const std::string& key) {
  return path.empty() ? key : path + "." + key;
}

// Per-kind field sets. Identity fields must agree outright (schema ids,
// seeds, protocol/config echoes); context fields describe the run shape
// two comparable runs may legitimately disagree on (thread count, batch
// size, machine identity) and never fail.
struct KindRules {
  std::vector<std::string> identity;
  std::vector<std::string> context;
};

const KindRules& rules_for(CompareKind kind) {
  static const KindRules stream{
      {"schema", "seed", "capacity", "cube_side", "monitor_stride",
       "admission", "queue_limit", "service_ticks", "sample_stride",
       "obs_counters", "obs_spans", "span_sample", "flight"},
      {"threads", "batch_size", "batches", "routed_parallel_batches",
       "routed_serial_batches"}};
  static const KindRules stats{
      {"kind", "schema", "dim", "seed", "counters"},
      {"threads", "batch_size", "stride", "batch"}};
  static const KindRules bench{{"schema", "suite"},
                               {"options", "notes", "hw threads", "route par",
                                "route ser"}};
  static const KindRules spans{{}, {}};
  switch (kind) {
    case CompareKind::kStream: return stream;
    case CompareKind::kStats: return stats;
    case CompareKind::kBench: return bench;
    default: return spans;
  }
}

class Comparator {
 public:
  Comparator(CompareKind kind, const CompareOptions& options)
      : options_(options), rules_(rules_for(kind)) {
    report_.kind = kind;
  }

  CompareReport take() { return std::move(report_); }

  FieldClass classify(const std::string& key) const {
    if (name_in(rules_.identity, key)) return FieldClass::kIdentity;
    if (name_in(rules_.context, key)) return FieldClass::kContext;
    if (is_wall_key(key)) return FieldClass::kWall;
    return FieldClass::kDeterministic;
  }

  // Union-walk of two objects: A's keys in A order, then B's extras.
  void compare_object(const std::string& path, const Json& a, const Json& b) {
    for (const auto& [key, va] : a.items())
      compare_node(path, key, &va, b.contains(key) ? &b.at(key) : nullptr);
    for (const auto& [key, vb] : b.items())
      if (!a.contains(key)) compare_node(path, key, nullptr, &vb);
  }

  void compare_node(const std::string& path, const std::string& key,
                    const Json* a, const Json* b) {
    if (name_in(options_.ignore, key)) return;
    const std::string here = join_path(path, key);
    switch (classify(key)) {
      case FieldClass::kIdentity: {
        ++report_.fields_compared;
        CMVRP_CHECK_MSG(a != nullptr && b != nullptr && *a == *b,
                        "identity field `"
                            << here << "` differs — A: "
                            << (a ? a->dump() : std::string("<absent>"))
                            << ", B: "
                            << (b ? b->dump() : std::string("<absent>"))
                            << " — the two artifacts are not comparable runs "
                               "(schema/config mismatch)");
        return;
      }
      case FieldClass::kContext: {
        ++report_.fields_compared;
        if (a == nullptr || b == nullptr || !(*a == *b))
          record(here, FieldClass::kContext, FieldVerdict::kInfo, a, b, 0.0,
                 "run-shape field; allowed to differ");
        return;
      }
      case FieldClass::kWall:
        compare_wall(here, key, a, b);
        return;
      case FieldClass::kDeterministic:
        compare_deterministic(here, a, b);
        return;
    }
  }

  void compare_deterministic(const std::string& path, const Json* a,
                             const Json* b) {
    if (a == nullptr || b == nullptr) {
      ++report_.fields_compared;
      ++report_.deterministic_fields;
      drift(path, a, b,
            a == nullptr ? "key only present in B" : "key only present in A");
      return;
    }
    if (a->is_object() && b->is_object()) {
      compare_object(path, *a, *b);
      return;
    }
    if (a->is_array() && b->is_array()) {
      if (a->size() != b->size()) {
        ++report_.fields_compared;
        ++report_.deterministic_fields;
        drift(path, a, b,
              "array length " + std::to_string(a->size()) + " vs " +
                  std::to_string(b->size()));
        return;
      }
      for (std::size_t i = 0; i < a->size(); ++i)
        compare_deterministic(path + "[" + std::to_string(i) + "]", &a->at(i),
                              &b->at(i));
      return;
    }
    ++report_.fields_compared;
    ++report_.deterministic_fields;
    if (!(*a == *b)) drift(path, a, b, "deterministic field drifted");
  }

  void compare_wall(const std::string& path, const std::string& key,
                    const Json* a, const Json* b) {
    ++report_.fields_compared;
    ++report_.wall_fields;
    if (a == nullptr || b == nullptr) {
      record(path, FieldClass::kWall, FieldVerdict::kInfo, a, b, 0.0,
             "wall field present on one side only");
      return;
    }
    // Bench time_ms blocks: {reps, mean, stddev, min, max}. Compare the
    // means, but a shift inside the RunningStats noise margin is clean.
    if (a->is_object() && b->is_object() && a->contains("mean") &&
        b->contains("mean")) {
      const double ma = a->at("mean").as_number();
      const double mb = b->at("mean").as_number();
      const double sa = a->contains("stddev") ? a->at("stddev").as_number()
                                              : 0.0;
      const double sb = b->contains("stddev") ? b->at("stddev").as_number()
                                              : 0.0;
      const double margin =
          options_.noise_sigmas * (sa > sb ? sa : sb);
      if (std::abs(mb - ma) <= margin) return;
      verdict_for_ratio(path, /*rate=*/false, ma, mb, a, b);
      return;
    }
    if (!a->is_number() || !b->is_number()) {
      if (!(*a == *b))
        record(path, FieldClass::kWall, FieldVerdict::kInfo, a, b, 0.0,
               "non-numeric wall field differs");
      return;
    }
    verdict_for_ratio(path, is_rate_key(key), a->as_number(), b->as_number(),
                      a, b);
  }

  // Regression factor in the "worse" direction: time-like keys regress
  // upward (factor = B/A), rate-like keys regress downward (A/B).
  void verdict_for_ratio(const std::string& path, bool rate, double va,
                         double vb, const Json* a, const Json* b) {
    if (va == vb) return;
    if (!rate && va < options_.min_wall_ms && vb < options_.min_wall_ms)
      return;  // sub-floor timings are scheduler noise on both sides
    const double numer = rate ? va : vb;  // the side that grows when worse
    const double denom = rate ? vb : va;
    if (denom <= 0.0) {
      record(path, FieldClass::kWall, FieldVerdict::kInfo, a, b, 0.0,
             "cannot ratio against a non-positive reading");
      return;
    }
    const double factor = numer / denom;
    if (factor <= 1.0) return;  // improvement (or equal): never flagged
    if (factor > report_.worst_wall_ratio) {
      report_.worst_wall_ratio = factor;
      report_.worst_wall_field = path;
    }
    if (options_.fail_ratio > 0.0 && factor > options_.fail_ratio) {
      ++report_.wall_fails;
      record(path, FieldClass::kWall, FieldVerdict::kFail, a, b, factor,
             "wall regression past --fail-ratio");
    } else if (factor > options_.warn_ratio) {
      ++report_.warns;
      record(path, FieldClass::kWall, FieldVerdict::kWarn, a, b, factor,
             "wall regression past the warn threshold");
    }
  }

  void drift(const std::string& path, const Json* a, const Json* b,
             const std::string& note) {
    ++report_.drift;
    record(path, FieldClass::kDeterministic, FieldVerdict::kFail, a, b, 0.0,
           note);
  }

  void record(const std::string& path, FieldClass cls, FieldVerdict verdict,
              const Json* a, const Json* b, double ratio,
              const std::string& note) {
    if (verdict == FieldVerdict::kInfo) ++report_.context_diffs;
    if (report_.diffs.size() >= kMaxRecordedDiffs) {
      ++report_.diffs_truncated;
      return;
    }
    report_.diffs.push_back(
        {path, cls, verdict, render(a), render(b), ratio, note});
  }

 private:
  const CompareOptions& options_;
  const KindRules& rules_;
  CompareReport report_;
};

Json parse_artifact(const std::string& text, const std::string& label) {
  try {
    return Json::parse(text);
  } catch (const check_error& e) {
    CMVRP_CHECK_MSG(false, "artifact " << label << " does not parse: "
                                       << e.what());
  }
  std::abort();  // unreachable; CMVRP_CHECK_MSG throws
}

// --- stats (JSONL) ----------------------------------------------------------

struct StatsDoc {
  Json header;
  std::vector<Json> samples;
  // Ascending-corner writer order makes the map key (the rendered corner
  // array) deterministic; std::map keeps the walk order stable.
  std::map<std::string, Json> cubes;
  Json final_line;
  bool have_header = false;
  bool have_final = false;
};

StatsDoc parse_stats(const std::string& text, const std::string& label) {
  StatsDoc doc;
  CMVRP_CHECK_MSG(!text.empty(), "stats stream " << label
                                                 << " is empty (0 bytes)");
  std::istringstream in(text);
  std::string line;
  std::uint64_t offset = 0;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    const std::uint64_t line_start = offset;
    offset += line.size() + 1;
    ++lines;
    if (line.empty()) continue;
    Json j;
    try {
      j = Json::parse(line);
    } catch (const std::exception& e) {
      CMVRP_CHECK_MSG(false, "stats stream " << label << " line " << lines
                                             << " at byte " << line_start
                                             << " does not parse ("
                                             << e.what() << ")");
    }
    CMVRP_CHECK_MSG(j.is_object() && j.contains("kind"),
                    "stats stream " << label << " line " << lines
                                    << " at byte " << line_start
                                    << " has no \"kind\" field");
    const std::string& kind = j.at("kind").as_string();
    if (kind == "header") {
      doc.header = std::move(j);
      doc.have_header = true;
    } else if (kind == "sample") {
      doc.samples.push_back(std::move(j));
    } else if (kind == "cube") {
      std::string corner = j.at("corner").dump();
      doc.cubes.emplace(std::move(corner), std::move(j));
    } else if (kind == "final") {
      doc.final_line = std::move(j);
      doc.have_final = true;
    }
  }
  CMVRP_CHECK_MSG(doc.have_header, "stats stream "
                                       << label << " has no header line in "
                                       << offset << " bytes (" << lines
                                       << " lines) — not a cmvrp-stats "
                                          "JSONL stream");
  CMVRP_CHECK_MSG(doc.have_final, "stats stream "
                                      << label << " has no final line after "
                                      << offset << " bytes (" << lines
                                      << " lines) — truncated? the run did "
                                         "not finish()");
  return doc;
}

// --- spans (Chrome trace-event JSON) ----------------------------------------

// Events whose *name* is a wall key (the single `wall_ms` metadata line
// the exporter emits first) carry wall-clock payloads; everything else —
// naming metadata, span events, the totals trailer — is stamped on the
// protocol clock and must match exactly.
bool span_event_is_wall(const Json& event) {
  return event.is_object() && event.contains("name") &&
         event.at("name").is_string() && is_wall_key(event.at("name").as_string());
}

}  // namespace

const char* compare_kind_name(CompareKind kind) {
  switch (kind) {
    case CompareKind::kAuto: return "auto";
    case CompareKind::kStream: return "stream";
    case CompareKind::kStats: return "stats";
    case CompareKind::kBench: return "bench";
    case CompareKind::kSpans: return "spans";
  }
  return "unknown";
}

CompareKind parse_compare_kind(const std::string& name) {
  if (name == "auto") return CompareKind::kAuto;
  if (name == "stream") return CompareKind::kStream;
  if (name == "stats") return CompareKind::kStats;
  if (name == "bench") return CompareKind::kBench;
  if (name == "spans") return CompareKind::kSpans;
  throw usage_error("--kind must be auto, stream, stats, bench, or spans; "
                    "got \"" +
                    name + "\"");
}

const char* field_class_name(FieldClass cls) {
  switch (cls) {
    case FieldClass::kIdentity: return "identity";
    case FieldClass::kDeterministic: return "deterministic";
    case FieldClass::kWall: return "wall";
    case FieldClass::kContext: return "context";
  }
  return "unknown";
}

const char* field_verdict_name(FieldVerdict verdict) {
  switch (verdict) {
    case FieldVerdict::kMatch: return "match";
    case FieldVerdict::kInfo: return "info";
    case FieldVerdict::kWarn: return "warn";
    case FieldVerdict::kFail: return "fail";
  }
  return "unknown";
}

Json CompareReport::to_json(const std::string& a, const std::string& b) const {
  Json doc = Json::object();
  doc.set("schema", kDiffSchema);
  doc.set("kind", compare_kind_name(kind));
  doc.set("a", a);
  doc.set("b", b);
  doc.set("fields_compared", fields_compared);
  doc.set("deterministic_fields", deterministic_fields);
  doc.set("wall_fields", wall_fields);
  doc.set("drift", drift);
  doc.set("warns", warns);
  doc.set("wall_fails", wall_fails);
  doc.set("context_diffs", context_diffs);
  doc.set("diffs_truncated", diffs_truncated);
  doc.set("worst_wall_field", worst_wall_field);
  doc.set("worst_wall_ratio", worst_wall_ratio);
  doc.set("exit", static_cast<std::int64_t>(exit_code()));
  Json list = Json::array();
  for (const FieldDiff& d : diffs) {
    Json j = Json::object();
    j.set("path", d.path);
    j.set("class", field_class_name(d.cls));
    j.set("verdict", field_verdict_name(d.verdict));
    j.set("a", d.a);
    j.set("b", d.b);
    j.set("ratio", d.ratio);
    j.set("note", d.note);
    list.push_back(std::move(j));
  }
  doc.set("diffs", std::move(list));
  return doc;
}

CompareKind detect_compare_kind(const std::string& text,
                                const std::string& label) {
  std::size_t i = 0;
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\n' || text[i] == '\r' ||
          text[i] == '\t'))
    ++i;
  CMVRP_CHECK_MSG(i < text.size(),
                  "artifact " << label << " is empty (0 bytes of JSON)");
  if (text[i] == '[') {
    parse_artifact(text, label);  // validates; truncation names the offset
    return CompareKind::kSpans;
  }
  CMVRP_CHECK_MSG(text[i] == '{', "artifact "
                                      << label
                                      << " is not a JSON artifact (first "
                                         "byte at offset "
                                      << i << " is '" << text[i] << "')");
  // One object => a stream report or bench run. A JSONL stats stream
  // fails the whole-document parse but its first line is the header.
  try {
    const Json doc = Json::parse(text);
    CMVRP_CHECK_MSG(doc.contains("schema") && doc.at("schema").is_string(),
                    "artifact " << label << " has no \"schema\" field");
    const std::string& schema = doc.at("schema").as_string();
    if (starts_with(schema, "cmvrp-stream")) return CompareKind::kStream;
    if (starts_with(schema, "cmvrp-bench")) return CompareKind::kBench;
    CMVRP_CHECK_MSG(false, "artifact " << label << " has unsupported schema "
                                       << schema);
  } catch (const check_error&) {
    const std::size_t eol = text.find('\n', i);
    if (eol != std::string::npos) {
      try {
        const Json head = Json::parse(text.substr(i, eol - i));
        if (head.is_object() && head.contains("kind") &&
            head.at("kind").as_string() == "header" &&
            head.contains("schema") &&
            starts_with(head.at("schema").as_string(), "cmvrp-stats"))
          return CompareKind::kStats;
      } catch (const check_error&) {
        // fall through to the rethrow below
      }
    }
    throw;
  }
  std::abort();  // unreachable
}

CompareReport compare_stream_reports(const Json& a, const Json& b,
                                     const CompareOptions& options) {
  CMVRP_CHECK_MSG(a.is_object() && b.is_object(),
                  "stream reports must be JSON objects");
  Comparator c(CompareKind::kStream, options);
  c.compare_object("", a, b);
  return c.take();
}

CompareReport compare_bench_runs(const Json& a, const Json& b,
                                 const CompareOptions& options) {
  CMVRP_CHECK_MSG(a.is_object() && b.is_object(),
                  "bench runs must be JSON objects");
  Comparator c(CompareKind::kBench, options);
  // Top-level scalars: schema/suite are identity, options/notes context,
  // failed deterministic. Sections and cases match by *name*, not
  // position, so a reordered artifact still compares field for field.
  for (const auto& [key, va] : a.items()) {
    if (key == "sections") continue;
    c.compare_node("", key, &va, b.contains(key) ? &b.at(key) : nullptr);
  }
  for (const auto& [key, vb] : b.items())
    if (key != "sections" && !a.contains(key))
      c.compare_node("", key, nullptr, &vb);

  const auto by_name = [](const Json& arr) {
    std::vector<std::pair<std::string, const Json*>> out;
    for (std::size_t i = 0; i < arr.size(); ++i)
      out.emplace_back(arr.at(i).at("name").as_string(), &arr.at(i));
    return out;
  };
  const auto find = [](const std::vector<std::pair<std::string, const Json*>>&
                           entries,
                       const std::string& name) -> const Json* {
    for (const auto& [n, j] : entries)
      if (n == name) return j;
    return nullptr;
  };

  const Json empty_sections = Json::array();
  const Json& sa = a.contains("sections") ? a.at("sections") : empty_sections;
  const Json& sb = b.contains("sections") ? b.at("sections") : empty_sections;
  const auto sections_a = by_name(sa);
  const auto sections_b = by_name(sb);
  for (const auto& [sname, sec_a] : sections_a) {
    const std::string spath = "sections[" + sname + "]";
    const Json* sec_b = find(sections_b, sname);
    if (sec_b == nullptr) {
      c.compare_node(spath, "missing_section", &sec_a->at("name"), nullptr);
      continue;
    }
    const auto cases_a = by_name(sec_a->at("cases"));
    const auto cases_b = by_name(sec_b->at("cases"));
    for (const auto& [cname, case_a] : cases_a) {
      const std::string cpath = spath + ".cases[" + cname + "]";
      const Json* case_b = find(cases_b, cname);
      if (case_b == nullptr) {
        c.compare_node(cpath, "missing_case", &case_a->at("name"), nullptr);
        continue;
      }
      for (const auto& [key, va] : case_a->items()) {
        if (key == "name") continue;
        c.compare_node(cpath, key, &va,
                       case_b->contains(key) ? &case_b->at(key) : nullptr);
      }
      for (const auto& [key, vb] : case_b->items())
        if (key != "name" && !case_a->contains(key))
          c.compare_node(cpath, key, nullptr, &vb);
    }
    for (const auto& [cname, case_b] : cases_b)
      if (find(cases_a, cname) == nullptr)
        c.compare_node(spath + ".cases[" + cname + "]", "extra_case", nullptr,
                       &case_b->at("name"));
  }
  for (const auto& [sname, sec_b] : sections_b)
    if (find(sections_a, sname) == nullptr)
      c.compare_node("sections[" + sname + "]", "extra_section", nullptr,
                     &sec_b->at("name"));
  return c.take();
}

CompareReport compare_span_traces(const Json& a, const Json& b,
                                  const CompareOptions& options) {
  CMVRP_CHECK_MSG(a.is_array() && b.is_array(),
                  "span traces must be JSON event arrays");
  Comparator c(CompareKind::kSpans, options);
  const auto deterministic_events = [](const Json& doc) {
    std::vector<const Json*> out;
    for (std::size_t i = 0; i < doc.size(); ++i)
      if (!span_event_is_wall(doc.at(i))) out.push_back(&doc.at(i));
    return out;
  };
  const auto ea = deterministic_events(a);
  const auto eb = deterministic_events(b);
  if (ea.size() != eb.size()) {
    const Json na(static_cast<std::uint64_t>(ea.size()));
    const Json nb(static_cast<std::uint64_t>(eb.size()));
    c.compare_node("", "event_count", &na, &nb);
  }
  const std::size_t n = ea.size() < eb.size() ? ea.size() : eb.size();
  for (std::size_t i = 0; i < n; ++i)
    c.compare_deterministic("event[" + std::to_string(i) + "]", ea[i], eb[i]);
  return c.take();
}

CompareReport compare_stats_streams(const std::string& a_text,
                                    const std::string& b_text,
                                    const CompareOptions& options,
                                    const std::string& a_label,
                                    const std::string& b_label) {
  const StatsDoc a = parse_stats(a_text, a_label);
  const StatsDoc b = parse_stats(b_text, b_label);
  Comparator c(CompareKind::kStats, options);
  c.compare_object("header", a.header, b.header);
  // Samples fire every `stride` *batches*, so two runs with different
  // batch sizes (or strides) snapshot different arrival prefixes. Each
  // sample is still a pure fold over its first `jobs` arrivals, so match
  // samples by their `jobs` prefix: shared prefixes must agree exactly;
  // samples only one cadence produced are drift when the cadences match
  // (a dropped line is a real bug then) and informational otherwise.
  const bool same_cadence =
      a.header.contains("batch_size") && b.header.contains("batch_size") &&
      a.header.at("batch_size") == b.header.at("batch_size") &&
      a.header.contains("stride") && b.header.contains("stride") &&
      a.header.at("stride") == b.header.at("stride");
  const auto sample_key = [](const Json& s) {
    return s.contains("jobs") ? s.at("jobs").dump() : std::string("?");
  };
  std::map<std::string, const Json*> b_samples;
  for (const Json& s : b.samples) b_samples.emplace(sample_key(s), &s);
  for (const Json& s : a.samples) {
    const std::string key = sample_key(s);
    const std::string path = "sample[jobs=" + key + "]";
    const auto it = b_samples.find(key);
    if (it == b_samples.end()) {
      if (same_cadence)
        c.compare_node(path, "missing_sample", &s.at("jobs"), nullptr);
      continue;  // different cadence: this prefix was never snapshotted in B
    }
    c.compare_object(path, s, *it->second);
  }
  if (same_cadence) {
    std::map<std::string, const Json*> a_samples;
    for (const Json& s : a.samples) a_samples.emplace(sample_key(s), &s);
    for (const Json& s : b.samples)
      if (a_samples.find(sample_key(s)) == a_samples.end())
        c.compare_node("sample[jobs=" + sample_key(s) + "]", "extra_sample",
                       nullptr, &s.at("jobs"));
  }
  for (const auto& [corner, cube_a] : a.cubes) {
    const auto it = b.cubes.find(corner);
    if (it == b.cubes.end()) {
      c.compare_node("cube" + corner, "missing_cube", &cube_a.at("corner"),
                     nullptr);
      continue;
    }
    c.compare_object("cube" + corner, cube_a, it->second);
  }
  for (const auto& [corner, cube_b] : b.cubes)
    if (a.cubes.find(corner) == a.cubes.end())
      c.compare_node("cube" + corner, "extra_cube", nullptr,
                     &cube_b.at("corner"));
  c.compare_object("final", a.final_line, b.final_line);
  return c.take();
}

CompareReport compare_artifacts(const std::string& a_text,
                                const std::string& b_text, CompareKind kind,
                                const CompareOptions& options,
                                const std::string& a_label,
                                const std::string& b_label) {
  if (kind == CompareKind::kAuto) {
    kind = detect_compare_kind(a_text, a_label);
    const CompareKind kind_b = detect_compare_kind(b_text, b_label);
    CMVRP_CHECK_MSG(kind == kind_b,
                    "artifact kinds differ: " << a_label << " is "
                                              << compare_kind_name(kind)
                                              << ", " << b_label << " is "
                                              << compare_kind_name(kind_b));
  }
  switch (kind) {
    case CompareKind::kStats:
      return compare_stats_streams(a_text, b_text, options, a_label, b_label);
    case CompareKind::kStream:
      return compare_stream_reports(parse_artifact(a_text, a_label),
                                    parse_artifact(b_text, b_label), options);
    case CompareKind::kBench:
      return compare_bench_runs(parse_artifact(a_text, a_label),
                                parse_artifact(b_text, b_label), options);
    case CompareKind::kSpans:
      return compare_span_traces(parse_artifact(a_text, a_label),
                                 parse_artifact(b_text, b_label), options);
    case CompareKind::kAuto: break;  // resolved above
  }
  CMVRP_CHECK_MSG(false, "unreachable compare kind");
  std::abort();
}

}  // namespace cmvrp
