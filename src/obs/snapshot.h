// Stride-driven JSONL stats snapshots (`cmvrp-stats-v1`).
//
// The snapshotter turns the observability layer's two tiers into a
// line-per-record stream a shell (or `cmvrp_cli stats`) can consume
// while the engine is still serving:
//
//   {"kind":"header", "schema":"cmvrp-stats-v1", ...}   once, up front
//   {"kind":"sample", "batch":N, <Tier-A totals>, <Tier-B spans>}
//                                  every `stride` batches
//   {"kind":"cube",   "corner":[...], <per-cube counters + latency>}
//                                  once per cube at finish, in
//                                  ascending-corner order
//   {"kind":"final",  <Tier-A totals>, <Tier-B spans>}  once, at finish
//
// Determinism contract: with the wall fields excluded (every Tier-B key
// ends in `_ms` or starts with `wall_` — the rule obs/compare.h applies
// per field), the stream is bit-identical across thread counts, because
// sample lines fire on batch boundaries (a pure function of the arrival
// sequence and batch size) and every Tier-A field folds commutatively
// from per-cube state. The CI counter-diff guard runs
// `cmvrp_cli compare --kind stats` over exactly that contract.
//
// This layer deliberately serializes by hand instead of using
// util/json.h's document model: building a Json per line would allocate
// on the serving path. The readers (`cmvrp_cli stats`, obs/compare.h)
// parse the lines back with util/json.h.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "grid/point.h"
#include "metrics/latency_histogram.h"
#include "obs/counters.h"
#include "obs/stage_timer.h"

namespace cmvrp {

inline constexpr char kStatsSchema[] = "cmvrp-stats-v1";

class StatsSnapshotter {
 public:
  // `out` is borrowed and must outlive the snapshotter. `stride` is the
  // sampling cadence in ingest batches (>= 1): due(b) gates the
  // engine's O(cubes) mid-run fold, write_sample emits the line.
  StatsSnapshotter(std::ostream& out, std::int64_t stride);

  std::int64_t stride() const { return stride_; }
  bool due(std::uint64_t batch) const {
    return batch % static_cast<std::uint64_t>(stride_) == 0;
  }

  void write_header(int dim, int threads, std::int64_t batch_size,
                    std::uint64_t seed, bool counters_on);
  void write_sample(std::uint64_t batch, std::uint64_t jobs_ingested,
                    const CubeCounters& totals, const StageTimes& stages);
  void write_cube(const Point& corner, const CubeCounters& counters,
                  const LatencyHistogram& latency);
  void write_final(std::uint64_t jobs_ingested, std::uint64_t cubes,
                   const CubeCounters& totals, const StageTimes& stages);

  std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream& out_;
  std::int64_t stride_;
  std::uint64_t lines_ = 0;
};

}  // namespace cmvrp
