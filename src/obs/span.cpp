#include "obs/span.h"

#include "util/check.h"

namespace cmvrp {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSend:
      return "send";
    case SpanKind::kDeliver:
      return "deliver";
    case SpanKind::kCompStart:
      return "comp_start";
    case SpanKind::kCompFinish:
      return "comp_finish";
    case SpanKind::kRelay:
      return "relay";
    case SpanKind::kCascadeStep:
      return "cascade_step";
    case SpanKind::kServeBegin:
      return "serve_begin";
    case SpanKind::kServeEnd:
      return "serve_end";
  }
  return "?";
}

const char* span_message_kind_name(std::uint8_t aux) {
  switch (aux) {
    case 0:
      return "query";
    case 1:
      return "reply";
    case 2:
      return "move";
    case 3:
      return "existing";
  }
  return "?";
}

SpanRecorder::SpanRecorder(std::int64_t sample_every, std::int64_t flight)
    : sample_every_(sample_every), flight_(flight) {
  CMVRP_CHECK_MSG(sample_every >= 1,
                  "span sample stride must be >= 1 computation");
  CMVRP_CHECK_MSG(flight >= 0, "flight ring size must be >= 0 (0 = off)");
  if (flight_ > 0) events_.reserve(static_cast<std::size_t>(flight_));
}

void SpanRecorder::note_vehicle_pair(std::size_t vid, std::int64_t pair_slot) {
  CMVRP_CHECK_MSG(vid < (1ull << 32) && pair_slot >= 0 &&
                      pair_slot < (1ll << 32),
                  "vehicle/pair id exceeds span packing");
  if (vid >= pair_of_.size()) pair_of_.resize(vid + 1, kNoActor);
  pair_of_[vid] = static_cast<std::uint32_t>(pair_slot);
}

bool SpanRecorder::sampled(std::uint64_t comp) const {
  const std::uint8_t* s = comp_sampled_.find(comp);
  return s != nullptr && *s != 0;
}

void SpanRecorder::append(const SpanEvent& e) {
  ++totals_.emitted;
  if (flight_ <= 0) {
    events_.push_back(e);
    return;
  }
  const auto cap = static_cast<std::size_t>(flight_);
  if (events_.size() < cap) {
    events_.push_back(e);
    return;
  }
  // Ring full: overwrite the oldest record.
  events_[ring_head_] = e;
  ring_head_ = (ring_head_ + 1) % cap;
  ++totals_.ring_evicted;
}

std::vector<SpanEvent> SpanRecorder::snapshot() const {
  std::vector<SpanEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(
                                              ring_head_),
             events_.end());
  out.insert(out.end(), events_.begin(),
             events_.begin() + static_cast<std::ptrdiff_t>(ring_head_));
  return out;
}

void SpanRecorder::comp_start(std::int64_t clock, std::uint64_t comp,
                              std::size_t vid, std::size_t fanout) {
  // The sampling decision is made here, once per computation, and
  // inherited by every later record carrying this tag — a pure function
  // of the cube's computation ordinal, so sampled traces stay
  // bit-identical across threads and batches.
  const bool keep =
      (comp_ordinal_++ % static_cast<std::uint64_t>(sample_every_)) == 0;
  comp_sampled_[comp] = keep ? 1 : 0;
  if (!keep) {
    ++totals_.sampled_out;
    return;
  }
  SpanEvent e;
  e.clock = clock;
  e.comp = comp;
  e.data = static_cast<std::uint64_t>(fanout);
  e.actor = static_cast<std::uint32_t>(vid);
  e.kind = static_cast<std::uint8_t>(SpanKind::kCompStart);
  append(e);
}

void SpanRecorder::comp_finish(std::int64_t clock, std::uint64_t comp,
                               std::size_t vid, bool found) {
  if (!sampled(comp)) {
    ++totals_.sampled_out;
    return;
  }
  SpanEvent e;
  e.clock = clock;
  e.comp = comp;
  e.actor = static_cast<std::uint32_t>(vid);
  e.kind = static_cast<std::uint8_t>(SpanKind::kCompFinish);
  e.aux = found ? 1 : 0;
  append(e);
}

void SpanRecorder::relay(std::int64_t clock, std::uint64_t comp,
                         std::size_t vid, std::size_t parent,
                         std::uint32_t hop, std::size_t fanout) {
  if (!sampled(comp)) {
    ++totals_.sampled_out;
    return;
  }
  SpanEvent e;
  e.clock = clock;
  e.comp = comp;
  e.data = static_cast<std::uint64_t>(fanout);
  e.actor = static_cast<std::uint32_t>(vid);
  e.parent = static_cast<std::uint32_t>(parent);
  e.hop = static_cast<std::uint16_t>(hop);
  e.kind = static_cast<std::uint8_t>(SpanKind::kRelay);
  append(e);
}

void SpanRecorder::cascade_step(std::int64_t clock, std::uint64_t comp,
                                std::size_t vid, std::size_t parent,
                                std::uint64_t step) {
  if (!sampled(comp)) {
    ++totals_.sampled_out;
    return;
  }
  SpanEvent e;
  e.clock = clock;
  e.comp = comp;
  e.data = step;
  e.actor = static_cast<std::uint32_t>(vid);
  e.parent = static_cast<std::uint32_t>(parent);
  e.kind = static_cast<std::uint8_t>(SpanKind::kCascadeStep);
  append(e);
}

void SpanRecorder::serve_begin(std::int64_t clock, std::size_t vid,
                               std::int64_t arrival_index) {
  SpanEvent e;
  e.clock = clock;
  e.data = static_cast<std::uint64_t>(arrival_index);
  e.actor = vid == SIZE_MAX ? kNoActor : static_cast<std::uint32_t>(vid);
  e.kind = static_cast<std::uint8_t>(SpanKind::kServeBegin);
  append(e);
}

void SpanRecorder::serve_end(std::int64_t clock, std::int64_t arrival_index,
                             bool served) {
  SpanEvent e;
  e.clock = clock;
  e.data = static_cast<std::uint64_t>(arrival_index);
  e.kind = static_cast<std::uint8_t>(SpanKind::kServeEnd);
  e.aux = served ? 1 : 0;
  append(e);
}

void SpanRecorder::message(std::int64_t clock, bool send, int msg_kind,
                           std::uint64_t comp, std::size_t from,
                           std::size_t to, std::uint32_t hop) {
  if (!sampled(comp)) {
    ++totals_.sampled_out;
    return;
  }
  // Flow-id pairing: the send pushes its ordinal onto the channel FIFO,
  // the delivery pops it — sends and delivers of one (from, to) channel
  // arrive in the same order (the network's per-channel FIFO clamp), so
  // the pop always matches its push. Both sides carry the ordinal in
  // `data`, giving the Chrome exporter its flow id for free.
  const std::uint64_t channel = (static_cast<std::uint64_t>(from) << 32) |
                                static_cast<std::uint64_t>(to);
  std::uint64_t flow_id = 0;
  if (send) {
    flow_id = send_ordinal_++;
    in_flight_[channel].push_back(flow_id);
  } else {
    std::vector<std::uint64_t>* fifo = in_flight_.find(channel);
    CMVRP_CHECK_MSG(fifo != nullptr && !fifo->empty(),
                    "span delivery without a matching recorded send");
    flow_id = fifo->front();
    fifo->erase(fifo->begin());
  }
  SpanEvent e;
  e.clock = clock;
  e.comp = comp;
  e.data = flow_id;
  e.actor = static_cast<std::uint32_t>(send ? from : to);
  e.parent = static_cast<std::uint32_t>(send ? to : from);
  e.hop = static_cast<std::uint16_t>(hop);
  e.kind = static_cast<std::uint8_t>(
      send ? SpanKind::kSend : SpanKind::kDeliver);
  e.aux = static_cast<std::uint8_t>(msg_kind);
  append(e);
}

}  // namespace cmvrp
