#include "viz/ascii.h"

#include <algorithm>
#include <unordered_map>

namespace cmvrp {

std::string render_demand(const DemandMap& d, const Box& view) {
  const double peak = d.max_demand();
  return render_field(view, [&](const Point& p) -> char {
    const double v = d.at(p);
    if (v <= 0.0) return '.';
    if (peak <= 0.0) return '.';
    if (v >= peak) return '#';
    const int bucket = 1 + static_cast<int>(8.0 * v / peak);
    return static_cast<char>('0' + std::min(bucket, 9));
  });
}

std::string render_plan(const OfflinePlan& plan, const Box& view) {
  std::unordered_map<Point, char, PointHash> glyph;
  for (const auto& a : plan.assignments) {
    if (a.remote.has_value()) {
      glyph[a.home] = '>';
      glyph[*a.remote] = '*';
    } else if (a.serve_at_home > 0.0) {
      // Do not overwrite a remote-target marker.
      glyph.emplace(a.home, 'o');
    }
  }
  return render_field(view, [&](const Point& p) -> char {
    auto it = glyph.find(p);
    return it == glyph.end() ? '.' : it->second;
  });
}

}  // namespace cmvrp
