// ASCII rendering of 2-D fields — demand maps, plans, vehicle states.
//
// The paper's figures are all small 2-D schematics (Fig 2.1–2.3, 4.1);
// these helpers let examples and debugging sessions print the same
// pictures directly from live data structures.
#pragma once

#include <cstdint>
#include <string>

#include "core/offline_planner.h"
#include "grid/box.h"
#include "grid/demand_map.h"

namespace cmvrp {

// Demand heat map: '.' for zero, '1'-'9' scaled to max, '#' for the peak.
// Row 0 is the top (highest y), matching the paper's figures.
std::string render_demand(const DemandMap& d, const Box& view);

// Overlays plan movement: 'o' vehicles serving in place, '*' remote
// targets, '>' vehicles that relocate, '.' idle ground.
std::string render_plan(const OfflinePlan& plan, const Box& view);

// Renders an arbitrary field of glyphs produced by a callback.
template <typename Fn>
std::string render_field(const Box& view, Fn&& glyph_at) {
  CMVRP_CHECK(view.dim() == 2);
  std::string out;
  for (std::int64_t y = view.hi()[1]; y >= view.lo()[1]; --y) {
    for (std::int64_t x = view.lo()[0]; x <= view.hi()[0]; ++x) {
      out.push_back(glyph_at(Point{x, y}));
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace cmvrp
