#include "broken/scenario.h"

#include "util/check.h"

namespace cmvrp {

Fig41Scenario make_fig41(std::int64_t r1, std::int64_t r2) {
  CMVRP_CHECK(r1 >= 1);
  CMVRP_CHECK_MSG(r2 > 2 * r1, "the example needs r2 >> r1 (at least 2·r1)");
  Fig41Scenario s;
  s.r1 = r1;
  s.r2 = r2;
  s.k = Point{0, 0};
  s.i = Point{-r1, 0};
  s.j = Point{r1, 0};
  s.demand.set(s.i, static_cast<double>(r1));
  s.demand.set(s.j, static_cast<double>(r1));
  // Longevity: default 1 outside; 0 inside the circle of radius r1+r2
  // around k, except k itself. The map stores only the interior.
  s.longevity = LongevityMap(2, 1.0);
  const std::int64_t radius = r1 + r2;
  // Materialize only what the bound computations look at: vertices within
  // the LP's search neighborhoods. Every interior vertex except k is 0.
  Box::cube(Point{-radius, -radius}, 2 * radius + 1)
      .for_each_point([&](const Point& p) {
        if (p.l1_norm() <= radius && p != s.k) s.longevity.set(p, 0.0);
      });
  s.jobs = alternating_stream(s.i, s.j, 2 * r1);
  return s;
}

Fig41Measurement measure_fig41(const Fig41Scenario& s) {
  Fig41Measurement m;
  // LP bound via the weighted ω_T of Theorem 4.1.1 over the three
  // interesting subsets ({i}, {j}, {i,j} — the support).
  m.lp_bound = broken_lower_bound_enumerate(s.demand, s.longevity);

  // Direct simulation: only k can serve (insiders are broken; outsiders
  // would need W >= r2 to arrive, which is out of scope at W = O(r1)).
  // k follows the arrival sequence i, j, i, j, …
  double travel = 0.0;
  double service = 0.0;
  Point pos = s.k;
  for (const auto& job : s.jobs) {
    travel += static_cast<double>(l1_distance(pos, job.position));
    pos = job.position;
    service += 1.0;
  }
  m.true_requirement = travel + service;
  m.paper_travel = static_cast<double>(
      s.r1 + (2 * s.r1 - 1) * 2 * s.r1);
  CMVRP_CHECK_MSG(travel == m.paper_travel,
                  "simulated travel " << travel << " != paper formula "
                                      << m.paper_travel);
  m.ratio = m.true_requirement / m.lp_bound;
  return m;
}

}  // namespace cmvrp
