// Chapter 4: broken vehicles with longevity parameters.
//
// Vehicle i carries p_i ∈ [0,1] and breaks the moment it has spent a p_i
// fraction of its initial energy. Theorem 4.1.1 generalizes Eq. (1.1): the
// LP (4.1) lower bound on Woff-b is max_T ω_T with
//   ω_T · Σ_{i ∈ N_{p_i·ω_T}(T)} p_i  =  Σ_{i∈T} d(i),
// where i belongs to the weighted neighborhood when dist(i,T) ≤ p_i·ω.
// §4.2 shows this bound can be loose by a factor ~r₁ (Figure 4.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/demand_map.h"
#include "grid/point.h"

namespace cmvrp {

// Sparse longevity assignment; unset vertices default to `default_p`.
class LongevityMap {
 public:
  explicit LongevityMap(int dim, double default_p = 1.0);

  int dim() const { return dim_; }
  double default_p() const { return default_p_; }

  void set(const Point& p, double longevity);
  double at(const Point& p) const;

 private:
  int dim_;
  double default_p_;
  std::unordered_map<Point, double, PointHash> p_;
};

// ω_T of Theorem 4.1.1 for an explicit set T. The weighted neighborhood
// sum is evaluated by BFS from T out to the trial radius.
double broken_omega_for_set(const std::vector<Point>& t, const DemandMap& d,
                            const LongevityMap& longevity);

// max_T ω_T over all nonempty subsets of the demand support
// (Theorem 4.1.1's lower bound on Woff-b; exponential — tiny supports).
double broken_lower_bound_enumerate(const DemandMap& d,
                                    const LongevityMap& longevity,
                                    std::size_t max_support = 18);

// Value of LP (4.2) at a fixed radius r via the simplex (tiny instances;
// cross-validates the closed form of Theorem 4.1.1's proof).
double broken_lp_value_at_radius(const DemandMap& d,
                                 const LongevityMap& longevity,
                                 std::int64_t r);

}  // namespace cmvrp
