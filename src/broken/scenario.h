// The Figure 4.1 counterexample (§4.2).
//
// Demands r₁ at two points i, j at distance 2r₁, arriving alternately.
// Every vehicle inside a circle of radius r₁+r₂ (r₂ ≫ r₁) is broken
// (p = 0) except the midpoint vehicle k (p = 1); everything outside is
// healthy but too far to help at W = O(r₁). The LP (4.1) bound is 2r₁,
// while actually serving the alternating stream forces k to shuttle:
//   travel  =  r₁ + (2r₁ − 1)·2r₁,
// so Woff-b = ω(r₁) — the lower bound is not tight (end of §4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "broken/longevity.h"
#include "grid/demand_map.h"
#include "workload/generators.h"

namespace cmvrp {

struct Fig41Scenario {
  std::int64_t r1 = 0;
  std::int64_t r2 = 0;
  Point i, j, k;        // demand points and the lone healthy insider
  DemandMap demand;     // d(i) = d(j) = r1
  LongevityMap longevity;
  std::vector<Job> jobs;  // i, j, i, j, … (2·r1 arrivals)

  Fig41Scenario() : demand(2), longevity(2, 1.0) {}
};

Fig41Scenario make_fig41(std::int64_t r1, std::int64_t r2);

struct Fig41Measurement {
  double lp_bound = 0.0;        // Theorem 4.1.1 value (should be ~2·r1)
  double true_requirement = 0.0;  // energy k actually needs (travel+service)
  double paper_travel = 0.0;    // r1 + (2r1-1)·2r1, the paper's count
  double ratio = 0.0;           // true_requirement / lp_bound (grows ~r1)
};

// Simulates vehicle k serving the alternating stream directly (every other
// vehicle inside the circle is broken; outsiders are out of range at
// W = O(r1)), and evaluates the LP bound on the same instance.
Fig41Measurement measure_fig41(const Fig41Scenario& scenario);

}  // namespace cmvrp
