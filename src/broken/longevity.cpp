#include "broken/longevity.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "grid/neighborhood.h"
#include "lp/simplex.h"
#include "util/check.h"

namespace cmvrp {

LongevityMap::LongevityMap(int dim, double default_p)
    : dim_(dim), default_p_(default_p) {
  CMVRP_CHECK(dim >= 1 && dim <= Point::kMaxDim);
  CMVRP_CHECK(default_p >= 0.0 && default_p <= 1.0);
}

void LongevityMap::set(const Point& p, double longevity) {
  CMVRP_CHECK(p.dim() == dim_);
  CMVRP_CHECK_MSG(longevity >= 0.0 && longevity <= 1.0,
                  "longevity must be in [0,1]");
  p_[p] = longevity;
}

double LongevityMap::at(const Point& p) const {
  CMVRP_CHECK(p.dim() == dim_);
  auto it = p_.find(p);
  return it == p_.end() ? default_p_ : it->second;
}

namespace {

// Distances from T for every vertex within radius `max_r`, by BFS.
std::unordered_map<Point, std::int64_t, PointHash> distances_from(
    const std::vector<Point>& t, std::int64_t max_r) {
  std::unordered_map<Point, std::int64_t, PointHash> dist;
  std::deque<Point> queue;
  for (const auto& p : t) {
    if (dist.emplace(p, 0).second) queue.push_back(p);
  }
  while (!queue.empty()) {
    const Point p = queue.front();
    queue.pop_front();
    const std::int64_t dp = dist.at(p);
    if (dp == max_r) continue;
    for (const auto& q : p.unit_neighbors()) {
      if (dist.emplace(q, dp + 1).second) queue.push_back(q);
    }
  }
  return dist;
}

// Weighted neighborhood mass Σ_{i : dist(i,T) <= p_i · ω} p_i.
double weighted_mass(
    const std::unordered_map<Point, std::int64_t, PointHash>& dist,
    const LongevityMap& longevity, double omega) {
  double sum = 0.0;
  for (const auto& [p, dp] : dist) {
    const double pi = longevity.at(p);
    if (static_cast<double>(dp) <= pi * omega + 1e-12) sum += pi;
  }
  return sum;
}

}  // namespace

double broken_omega_for_set(const std::vector<Point>& t, const DemandMap& d,
                            const LongevityMap& longevity) {
  CMVRP_CHECK(!t.empty());
  double s = 0.0;
  for (const auto& p : t) s += d.at(p);
  if (s == 0.0) return 0.0;

  // Bracket ω. All longevities are <= 1, so the mass within radius ω is at
  // most the mass of N_ω(T); conversely g(ω) = ω·mass(ω) >= ω·(mass at T
  // itself) once any vertex of T has p > 0. March an upper bound upward.
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const auto dist = distances_from(t, static_cast<std::int64_t>(hi) + 1);
    if (hi * weighted_mass(dist, longevity, hi) >= s) break;
    hi *= 2.0;
    CMVRP_CHECK_MSG(hi < 1e15, "broken omega bracket diverged — is every "
                               "nearby longevity zero?");
  }
  const auto dist = distances_from(t, static_cast<std::int64_t>(hi) + 1);
  // g is increasing with upward jumps; bisect for inf{ω : g(ω) >= s}.
  double lo = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mid * weighted_mass(dist, longevity, mid) >= s)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

double broken_lower_bound_enumerate(const DemandMap& d,
                                    const LongevityMap& longevity,
                                    std::size_t max_support) {
  const auto support = d.support();
  CMVRP_CHECK(!support.empty());
  CMVRP_CHECK_MSG(support.size() <= max_support,
                  "support too large for enumeration");
  double best = 0.0;
  const std::size_t n = support.size();
  std::vector<Point> subset;
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::uint64_t{1} << i)) subset.push_back(support[i]);
    best = std::max(best, broken_omega_for_set(subset, d, longevity));
  }
  return best;
}

double broken_lp_value_at_radius(const DemandMap& d,
                                 const LongevityMap& longevity,
                                 std::int64_t r) {
  CMVRP_CHECK(r >= 0);
  const auto demands = d.support();
  CMVRP_CHECK(!demands.empty());
  auto supplier_set = neighborhood(demands, r);
  std::vector<Point> suppliers(supplier_set.begin(), supplier_set.end());
  std::sort(suppliers.begin(), suppliers.end());

  // LP (4.2): min ω s.t. Σ_j f_ij <= p_i·ω, Σ_i f_ij >= d(j), arcs when
  // ‖i-j‖ <= p_i·r.
  LpProblem lp;
  const std::size_t omega_var = lp.add_variable(1.0);
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> by_supplier(
      suppliers.size());
  std::vector<std::vector<std::size_t>> by_demand(demands.size());
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    const double pi = longevity.at(suppliers[i]);
    for (std::size_t j = 0; j < demands.size(); ++j) {
      if (static_cast<double>(l1_distance(suppliers[i], demands[j])) <=
          pi * static_cast<double>(r) + 1e-12) {
        const std::size_t v = lp.add_variable(0.0);
        by_supplier[i].emplace_back(j, v);
        by_demand[j].push_back(v);
      }
    }
  }
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    if (by_supplier[i].empty()) continue;
    std::vector<std::pair<std::size_t, double>> row;
    for (const auto& [j, v] : by_supplier[i]) {
      (void)j;
      row.emplace_back(v, 1.0);
    }
    row.emplace_back(omega_var, -longevity.at(suppliers[i]));
    lp.add_constraint(row, LpRelation::kLessEqual, 0.0);
  }
  for (std::size_t j = 0; j < demands.size(); ++j) {
    CMVRP_CHECK_MSG(!by_demand[j].empty(),
                    "demand vertex unreachable at this radius");
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t v : by_demand[j]) row.emplace_back(v, 1.0);
    lp.add_constraint(row, LpRelation::kGreaterEqual, d.at(demands[j]));
  }
  const LpResult result = lp.solve();
  CMVRP_CHECK_MSG(result.status == LpStatus::kOptimal,
                  "LP (4.2) not optimal: " << to_string(result.status));
  return result.objective;
}

}  // namespace cmvrp
