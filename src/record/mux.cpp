#include "record/mux.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace cmvrp {

TraceMux::TraceMux(int dim, const StreamConfig& config)
    : engine_(dim, config),
      dim_(dim),
      chunk_jobs_(static_cast<std::size_t>(config.batch_size)) {}

void TraceMux::set_observer(StreamObserver* observer) {
  engine_.set_observer(observer);
}

void TraceMux::set_snapshotter(StatsSnapshotter* snapshotter) {
  engine_.set_snapshotter(snapshotter);
}

bool TraceMux::Source::refill() {
  if (head < count) return true;
  head = 0;
  count = reader->next_batch(buffer.data(), buffer.size());
  return count > 0;
}

void TraceMux::add_source(const std::string& path) {
  Source source;
  source.reader = std::make_unique<TraceReader>(path);
  CMVRP_CHECK_MSG(source.reader->dim() == dim_,
                  "mux source dim " << source.reader->dim()
                                    << " does not match engine dim " << dim_
                                    << ": " << path);
  CMVRP_CHECK_MSG(!source.reader->has_failure_events(),
                  "mux sources must be pure job streams; trace carries "
                  "silent-done failure events: "
                      << path);
  source.buffer.resize(chunk_jobs_);
  sources_.push_back(std::move(source));
}

bool TraceMux::merges_before(const Job& a, const Job& b) {
  if (a.index != b.index) return a.index < b.index;
  return a.position < b.position;
}

StreamResult TraceMux::replay() {
  // Live sources, by index into sources_. The pick loop scans linearly
  // (k is small); ties keep the lowest slot, which cannot affect the
  // merged sequence because tied heads are byte-identical records.
  std::vector<std::size_t> live;
  for (std::size_t s = 0; s < sources_.size(); ++s)
    if (sources_[s].refill()) live.push_back(s);

  std::vector<Job> out(chunk_jobs_);
  std::size_t n = 0;
  while (!live.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 1; i < live.size(); ++i) {
      if (merges_before(sources_[live[i]].front(),
                        sources_[live[pick]].front()))
        pick = i;
    }
    Source& src = sources_[live[pick]];
    // Re-index: the merged stream gets fresh arrival indices 0..N-1.
    out[n].position = src.front().position;
    out[n].index = static_cast<std::int64_t>(merged_++);
    ++n;
    ++src.head;
    if (!src.refill()) live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    if (n == out.size()) {
      engine_.ingest(out.data(), n);
      n = 0;
    }
  }
  if (n > 0) engine_.ingest(out.data(), n);
  return engine_.finish();
}

}  // namespace cmvrp
