// TraceMux: deterministic k-way replay of several traces into one engine.
//
// Multi-source arrival merging (the multi-depot / multi-stream settings
// of the CVRP literature): k traces — possibly written by different
// generators, but sharing one dimension ℓ — are merged by ascending
// arrival index into a single stream and served by one StreamEngine.
// Merged arrivals are re-indexed 0..N-1 in merge order, so the result's
// served/failed index sets refer to the merged arrival sequence.
//
// Determinism: the merge comparator orders source heads by (arrival
// index, position lexicographic); when both tie the competing records
// are byte-identical, so whichever source advances first cannot change
// the merged position sequence. The merged outcome is therefore
// bit-identical across thread counts, batch sizes, AND the order the
// source files were added — the engine's fold contract extended to
// multi-trace serving (tests/record_test.cpp enforces all three axes,
// against an in-memory merge_streams reference).
//
// Memory: each source is cursored through TraceReader::next_batch with a
// chunk of engine-batch-size jobs, and merged jobs flush into the engine
// one batch at a time — O((k + threads) × batch) peak, independent of
// trace lengths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "trace/reader.h"

namespace cmvrp {

class TraceMux {
 public:
  TraceMux(int dim, const StreamConfig& config);

  // Opens and validates one source trace; throws check_error when the
  // file is malformed or its dimension does not match the engine's.
  // Sources carrying v2 silent-done events are rejected: injection order
  // is only meaningful within one stream, not across a merge.
  void add_source(const std::string& path);

  std::size_t source_count() const { return sources_.size(); }
  std::uint64_t jobs_merged() const { return merged_; }

  // Forwarded to the engine (e.g. an OutcomeRecorder: mux + record
  // composes into a merged audit trail).
  void set_observer(StreamObserver* observer);

  // Forwarded to the engine: JSONL stats snapshots of the merged run
  // (src/obs/snapshot.h).
  void set_snapshotter(StatsSnapshotter* snapshotter);

  // Merges every source to exhaustion into the engine and finishes it.
  StreamResult replay();

  // The underlying engine, for read-only post-run access (span export:
  // the CLI pulls span_sources() after replay()).
  const StreamEngine& engine() const { return engine_; }

 private:
  struct Source {
    std::unique_ptr<TraceReader> reader;
    std::vector<Job> buffer;
    std::size_t head = 0;
    std::size_t count = 0;
    bool refill();  // returns false at end of trace
    const Job& front() const { return buffer[head]; }
  };

  // True when a's head record merges before b's.
  static bool merges_before(const Job& a, const Job& b);

  StreamEngine engine_;
  int dim_;
  std::size_t chunk_jobs_;
  std::vector<Source> sources_;
  std::uint64_t merged_ = 0;
};

}  // namespace cmvrp
