#include "record/recorder.h"

#include <algorithm>

#include "util/check.h"

namespace cmvrp {

OutcomeRecorder::OutcomeRecorder(const std::string& path, int dim)
    : path_(path), writer_(path, dim, kTraceVersionV2) {}

namespace {

// OutcomeKind and the trace aux word share one encoding by design
// (0 failed / 1 served / 2 shed / 3 rejected); keep the cast honest.
std::uint32_t aux_of(OutcomeKind kind) {
  static_assert(static_cast<std::uint32_t>(OutcomeKind::kFailed) ==
                kTraceOutcomeFailed);
  static_assert(static_cast<std::uint32_t>(OutcomeKind::kServed) ==
                kTraceOutcomeServed);
  static_assert(static_cast<std::uint32_t>(OutcomeKind::kShed) ==
                kTraceOutcomeShed);
  static_assert(static_cast<std::uint32_t>(OutcomeKind::kRejected) ==
                kTraceOutcomeRejected);
  return static_cast<std::uint32_t>(kind);
}

}  // namespace

void OutcomeRecorder::on_batch(const JobOutcome* outcomes,
                               std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const JobOutcome& o = outcomes[k];
    writer_.append_event(outcome_event_aux(o.job, aux_of(o.kind), o.corner));
    switch (o.kind) {
      case OutcomeKind::kServed:
        ++served_count_;
        served_digest_ = index_digest_step(served_digest_, o.job.index);
        break;
      case OutcomeKind::kFailed:
        ++failed_count_;
        failed_digest_ = index_digest_step(failed_digest_, o.job.index);
        break;
      case OutcomeKind::kShed:
      case OutcomeKind::kRejected:
        ++dropped_count_;
        dropped_digest_ = index_digest_step(dropped_digest_, o.job.index);
        break;
    }
  }
}

void OutcomeRecorder::on_inject(const Point& home) {
  writer_.append_event(silent_done_event(home));
}

void OutcomeRecorder::close() { writer_.close(); }

OutcomeSets read_outcome_sets(TraceReader& reader) {
  CMVRP_CHECK_MSG(reader.has_outcomes(),
                  "not an outcome trace (v2 outcomes flag unset): "
                      << reader.path());
  reader.reset();
  OutcomeSets sets;
  std::vector<TraceEvent> chunk(4096);
  while (const std::size_t n =
             reader.next_events(chunk.data(), chunk.size())) {
    for (std::size_t i = 0; i < n; ++i) {
      if (chunk[i].kind != TraceEventKind::kOutcome) continue;
      auto& set = chunk[i].aux == kTraceOutcomeServed ? sets.served
                  : chunk[i].aux == kTraceOutcomeFailed ? sets.failed
                                                        : sets.dropped;
      set.push_back(chunk[i].job.index);
    }
  }
  reader.reset();
  std::sort(sets.served.begin(), sets.served.end());
  std::sort(sets.failed.begin(), sets.failed.end());
  std::sort(sets.dropped.begin(), sets.dropped.end());
  return sets;
}

OutcomeSummary scan_outcomes(TraceReader& reader) {
  CMVRP_CHECK_MSG(reader.has_outcomes(),
                  "not an outcome trace (v2 outcomes flag unset): "
                      << reader.path());
  reader.reset();
  OutcomeSummary summary;
  std::vector<TraceEvent> chunk(4096);
  while (const std::size_t n =
             reader.next_events(chunk.data(), chunk.size())) {
    for (std::size_t i = 0; i < n; ++i) {
      if (chunk[i].kind != TraceEventKind::kOutcome) continue;
      if (chunk[i].aux == kTraceOutcomeServed) {
        ++summary.served;
        summary.served_digest =
            index_digest_step(summary.served_digest, chunk[i].job.index);
      } else if (chunk[i].aux == kTraceOutcomeFailed) {
        ++summary.failed;
        summary.failed_digest =
            index_digest_step(summary.failed_digest, chunk[i].job.index);
      } else {
        ++summary.dropped;
        summary.dropped_digest =
            index_digest_step(summary.dropped_digest, chunk[i].job.index);
      }
    }
  }
  reader.reset();
  return summary;
}

}  // namespace cmvrp
