#include "record/recorder.h"

#include <algorithm>

#include "util/check.h"

namespace cmvrp {

OutcomeRecorder::OutcomeRecorder(const std::string& path, int dim)
    : path_(path), writer_(path, dim, kTraceVersionV2) {}

void OutcomeRecorder::on_batch(const JobOutcome* outcomes,
                               std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const JobOutcome& o = outcomes[k];
    writer_.append_event(outcome_event(o.job, o.served, o.corner));
    if (o.served) {
      ++served_count_;
      served_digest_ = index_digest_step(served_digest_, o.job.index);
    } else {
      ++failed_count_;
      failed_digest_ = index_digest_step(failed_digest_, o.job.index);
    }
  }
}

void OutcomeRecorder::on_inject(const Point& home) {
  writer_.append_event(silent_done_event(home));
}

void OutcomeRecorder::close() { writer_.close(); }

OutcomeSets read_outcome_sets(TraceReader& reader) {
  CMVRP_CHECK_MSG(reader.has_outcomes(),
                  "not an outcome trace (v2 outcomes flag unset): "
                      << reader.path());
  reader.reset();
  OutcomeSets sets;
  std::vector<TraceEvent> chunk(4096);
  while (const std::size_t n =
             reader.next_events(chunk.data(), chunk.size())) {
    for (std::size_t i = 0; i < n; ++i) {
      if (chunk[i].kind != TraceEventKind::kOutcome) continue;
      (chunk[i].served ? sets.served : sets.failed)
          .push_back(chunk[i].job.index);
    }
  }
  reader.reset();
  std::sort(sets.served.begin(), sets.served.end());
  std::sort(sets.failed.begin(), sets.failed.end());
  return sets;
}

OutcomeSummary scan_outcomes(TraceReader& reader) {
  CMVRP_CHECK_MSG(reader.has_outcomes(),
                  "not an outcome trace (v2 outcomes flag unset): "
                      << reader.path());
  reader.reset();
  OutcomeSummary summary;
  std::vector<TraceEvent> chunk(4096);
  while (const std::size_t n =
             reader.next_events(chunk.data(), chunk.size())) {
    for (std::size_t i = 0; i < n; ++i) {
      if (chunk[i].kind != TraceEventKind::kOutcome) continue;
      if (chunk[i].served) {
        ++summary.served;
        summary.served_digest =
            index_digest_step(summary.served_digest, chunk[i].job.index);
      } else {
        ++summary.failed;
        summary.failed_digest =
            index_digest_step(summary.failed_digest, chunk[i].job.index);
      }
    }
  }
  reader.reset();
  return summary;
}

}  // namespace cmvrp
