// OutcomeRecorder: the engine-side audit trail.
//
// A StreamObserver that streams every job's serving outcome back to disk
// *during* serving, as cmvrp-trace-v2 outcome events (served/failed +
// assigned cube corner). Hooked into StreamEngine::set_observer, it sees
// each batch's outcomes in ascending arrival-index order after the batch
// barrier, appends them through a TraceWriter, and folds the served and
// failed index digests incrementally (order-invariant, util/digest.h)
// — so a bounded-memory run of any length leaves (a) a complete,
// replayable outcome trace and (b) two 64-bit digests that must equal
// the in-memory result's served_jobs/failed_jobs digests
// (tests/record_test.cpp enforces the bit-identity at several thread
// counts). Silent-done injections forwarded by the engine (on_inject)
// are written as failure events in stream position. Peak memory is the
// engine's own O(batch × threads) outcome fold; the recorder adds only
// the file buffer.
//
// The on-disk trail replays: a v2 outcome trace's job-bearing records
// ARE the original arrival sequence (TraceReader::next_batch yields
// them) and recorded injections re-apply between the same arrivals, so
// `cmvrp trace replay` over an audit trail reproduces the run it
// recorded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/digest.h"

namespace cmvrp {

class OutcomeRecorder final : public StreamObserver {
 public:
  // Opens (truncating) a v2 trace at `path`; throws check_error when the
  // file cannot be created or dim is out of range.
  OutcomeRecorder(const std::string& path, int dim);

  // StreamObserver: appends one outcome event per entry, in the order
  // delivered (ascending arrival index within the batch).
  void on_batch(const JobOutcome* outcomes, std::size_t count) override;

  // StreamObserver: records a silent-done injection as a v2 failure
  // event, so the trail carries the injection at its stream position.
  void on_inject(const Point& home) override;

  // Patches the trace header (count + outcome flag) and verifies stream
  // health; throws check_error when any byte failed to reach the file.
  // The recorder is unusable afterwards.
  void close();

  const std::string& path() const { return path_; }
  std::uint64_t recorded() const { return served_count_ + failed_count_; }
  std::uint64_t served_count() const { return served_count_; }
  std::uint64_t failed_count() const { return failed_count_; }

  // Incremental order-invariant folds (util/digest.h) over the
  // served/failed arrival indices: always equal to index_set_digest of
  // the in-memory result's served_jobs/failed_jobs, regardless of the
  // stream's index pattern or delivery order.
  std::uint64_t served_digest() const { return served_digest_; }
  std::uint64_t failed_digest() const { return failed_digest_; }

 private:
  std::string path_;
  TraceWriter writer_;
  std::uint64_t served_count_ = 0;
  std::uint64_t failed_count_ = 0;
  std::uint64_t served_digest_ = kIndexDigestBasis;
  std::uint64_t failed_digest_ = kIndexDigestBasis;
};

// The two index sets of an outcome trace, materialized (sorted
// ascending, like StreamResult's served_jobs/failed_jobs). For tests and
// small audits; unbounded in trace length.
struct OutcomeSets {
  std::vector<std::int64_t> served;
  std::vector<std::int64_t> failed;
};
OutcomeSets read_outcome_sets(TraceReader& reader);

// One bounded pass over an outcome trace: counts and digests only, O(1)
// memory — the out-of-core way to audit a recorded run against a
// report's served_hash/failed_hash.
struct OutcomeSummary {
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t served_digest = kIndexDigestBasis;
  std::uint64_t failed_digest = kIndexDigestBasis;
};
OutcomeSummary scan_outcomes(TraceReader& reader);

}  // namespace cmvrp
