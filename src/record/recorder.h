// OutcomeRecorder: the engine-side audit trail.
//
// A StreamObserver that streams every job's serving outcome back to disk
// *during* serving, as cmvrp-trace-v2 outcome events (the aux outcome
// word — served/failed/shed/rejected — plus the assigned cube corner).
// Hooked into StreamEngine::set_observer, it sees each batch's outcomes
// after the batch barrier, appends them through a TraceWriter, and folds
// the served/failed/dropped index digests incrementally (order-invariant,
// util/digest.h) — so a bounded-memory run of any length leaves (a) a
// complete outcome trace and (b) three 64-bit digests that must equal
// the in-memory result's served_jobs/failed_jobs/shed_jobs digests
// (tests/record_test.cpp enforces the bit-identity at several thread
// counts). Silent-done injections forwarded by the engine (on_inject)
// are written as failure events in stream position. Peak memory is the
// engine's own O(batch × threads) outcome fold; the recorder adds only
// the file buffer.
//
// The on-disk trail replays: a v2 outcome trace's job-bearing records
// ARE the original arrival sequence (TraceReader::next_batch yields
// them) and recorded injections re-apply between the same arrivals, so
// `cmvrp trace replay` over an audit trail reproduces the run it
// recorded. Caveat: that byte-for-byte arrival reconstruction holds for
// admission-off runs, where each batch's outcomes are exactly its
// arrivals in ascending index order. With a bounded admission policy,
// queued jobs surface in the batch that *materialized* them, so the
// trail is in completion order and its byte layout varies with batch
// size — the order-invariant digests (and the outcome *sets*) still
// audit such runs; sequence-replay of the trail does not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/digest.h"

namespace cmvrp {

class OutcomeRecorder final : public StreamObserver {
 public:
  // Opens (truncating) a v2 trace at `path`; throws check_error when the
  // file cannot be created or dim is out of range.
  OutcomeRecorder(const std::string& path, int dim);

  // StreamObserver: appends one outcome event per entry, in the order
  // delivered (ascending arrival index within the batch).
  void on_batch(const JobOutcome* outcomes, std::size_t count) override;

  // StreamObserver: records a silent-done injection as a v2 failure
  // event, so the trail carries the injection at its stream position.
  void on_inject(const Point& home) override;

  // Patches the trace header (count + outcome flag) and verifies stream
  // health; throws check_error when any byte failed to reach the file.
  // The recorder is unusable afterwards.
  void close();

  const std::string& path() const { return path_; }
  std::uint64_t recorded() const {
    return served_count_ + failed_count_ + dropped_count_;
  }
  std::uint64_t served_count() const { return served_count_; }
  std::uint64_t failed_count() const { return failed_count_; }
  // Admission drops (shed + rejected) — 0 for admission-off runs.
  std::uint64_t dropped_count() const { return dropped_count_; }

  // Incremental order-invariant folds (util/digest.h) over the
  // served/failed/dropped arrival indices: always equal to
  // index_set_digest of the in-memory result's
  // served_jobs/failed_jobs/shed_jobs, regardless of the stream's index
  // pattern or delivery order.
  std::uint64_t served_digest() const { return served_digest_; }
  std::uint64_t failed_digest() const { return failed_digest_; }
  std::uint64_t dropped_digest() const { return dropped_digest_; }

 private:
  std::string path_;
  TraceWriter writer_;
  std::uint64_t served_count_ = 0;
  std::uint64_t failed_count_ = 0;
  std::uint64_t dropped_count_ = 0;
  std::uint64_t served_digest_ = kIndexDigestBasis;
  std::uint64_t failed_digest_ = kIndexDigestBasis;
  std::uint64_t dropped_digest_ = kIndexDigestBasis;
};

// The index sets of an outcome trace, materialized (sorted ascending,
// like StreamResult's served_jobs/failed_jobs/shed_jobs — `dropped`
// collects both shed and rejected aux words). For tests and small
// audits; unbounded in trace length.
struct OutcomeSets {
  std::vector<std::int64_t> served;
  std::vector<std::int64_t> failed;
  std::vector<std::int64_t> dropped;
};
OutcomeSets read_outcome_sets(TraceReader& reader);

// One bounded pass over an outcome trace: counts and digests only, O(1)
// memory — the out-of-core way to audit a recorded run against a
// report's served_hash/failed_hash/shed_hash.
struct OutcomeSummary {
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t served_digest = kIndexDigestBasis;
  std::uint64_t failed_digest = kIndexDigestBasis;
  std::uint64_t dropped_digest = kIndexDigestBasis;
};
OutcomeSummary scan_outcomes(TraceReader& reader);

}  // namespace cmvrp
