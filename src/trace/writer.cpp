#include "trace/writer.h"

#include "grid/point.h"
#include "trace/format.h"
#include "util/check.h"

namespace cmvrp {

TraceWriter::TraceWriter(const std::string& path, int dim,
                         std::uint32_t version)
    : path_(path), dim_(dim), version_(version) {
  // Validate before opening: the truncating open must not destroy an
  // existing file when the arguments are rejected.
  CMVRP_CHECK_MSG(dim >= 1 && dim <= Point::kMaxDim,
                  "trace dim must be in [1, " << Point::kMaxDim << "], got "
                                              << dim);
  CMVRP_CHECK_MSG(version == kTraceVersion || version == kTraceVersionV2,
                  "trace version must be " << kTraceVersion << " or "
                                           << kTraceVersionV2 << ", got "
                                           << version);
  out_.open(path, std::ios::binary | std::ios::trunc);
  CMVRP_CHECK_MSG(out_.good(), "cannot open trace for writing: " << path);
  TraceHeader header;
  header.version = version;
  header.dim = static_cast<std::uint32_t>(dim);
  header.job_count = 0;  // patched by close(), together with flags
  unsigned char bytes[kTraceHeaderSize];
  encode_trace_header(header, bytes);
  out_.write(reinterpret_cast<const char*>(bytes), kTraceHeaderSize);
  CMVRP_CHECK_MSG(out_.good(), "failed writing trace header: " << path);
}

TraceWriter::~TraceWriter() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Destructors must not throw; explicit close() reports the error.
    }
  }
}

void TraceWriter::write_record(const unsigned char* record,
                               std::size_t record_size) {
  out_.write(reinterpret_cast<const char*>(record),
             static_cast<std::streamsize>(record_size));
  ++count_;
  CMVRP_CHECK_MSG(out_.good(),
                  "trace write failed (disk full?) after record "
                      << count_ << " (byte offset "
                      << kTraceHeaderSize + count_ * record_size
                      << "): " << path_);
}

void TraceWriter::append(const Job& job) { append(&job, 1); }

void TraceWriter::append(const Job* jobs, std::size_t count) {
  if (version_ == kTraceVersionV2) {
    for (std::size_t k = 0; k < count; ++k) append_event(arrival_event(jobs[k]));
    return;
  }
  CMVRP_CHECK_MSG(!closed_, "append on a closed trace writer: " << path_);
  unsigned char record[(Point::kMaxDim + 1) * sizeof(std::int64_t)];
  const std::size_t record_size = trace_record_size(dim_);
  for (std::size_t k = 0; k < count; ++k) {
    const Job& job = jobs[k];
    CMVRP_CHECK_MSG(job.position.dim() == dim_,
                    "job dim " << job.position.dim()
                               << " does not match trace dim " << dim_);
    for (int i = 0; i < dim_; ++i)
      store_le_i64(record + static_cast<std::size_t>(i) * 8, job.position[i]);
    store_le_i64(record + static_cast<std::size_t>(dim_) * 8, job.index);
    write_record(record, record_size);
  }
}

void TraceWriter::append_event(const TraceEvent& event) {
  CMVRP_CHECK_MSG(!closed_, "append on a closed trace writer: " << path_);
  CMVRP_CHECK_MSG(event.job.position.dim() == dim_,
                  "event dim " << event.job.position.dim()
                               << " does not match trace dim " << dim_);
  if (version_ == kTraceVersion) {
    CMVRP_CHECK_MSG(event.kind == TraceEventKind::kArrival,
                    "cmvrp-trace-v1 encodes only arrival records; event kind "
                        << static_cast<std::uint32_t>(event.kind)
                        << " needs a v2 writer: " << path_);
    append(&event.job, 1);
    return;
  }
  CMVRP_CHECK_MSG(
      static_cast<std::uint32_t>(event.kind) <= kTraceMaxEventKind,
      "unknown trace event kind " << static_cast<std::uint32_t>(event.kind));
  if (event.kind == TraceEventKind::kOutcome) {
    CMVRP_CHECK_MSG(event.corner.dim() == dim_,
                    "outcome corner dim " << event.corner.dim()
                                          << " does not match trace dim "
                                          << dim_);
    CMVRP_CHECK_MSG(event.aux <= kTraceMaxOutcomeAux,
                    "unknown outcome aux word " << event.aux);
    flags_ |= kTraceFlagOutcomes;
  } else if (event.kind == TraceEventKind::kSilentDone) {
    flags_ |= kTraceFlagFailureEvents;
  }
  unsigned char record[16 + 2 * Point::kMaxDim * 8];
  const std::size_t record_size = trace_record_size(dim_, version_);
  TraceEvent normalized = event;
  if (normalized.corner.dim() != dim_)
    normalized.corner = Point::origin(dim_);
  encode_trace_event(normalized, dim_, record);
  write_record(record, record_size);
}

void TraceWriter::close() {
  CMVRP_CHECK_MSG(!closed_, "double close of trace writer: " << path_);
  closed_ = true;
  // Count and flags are adjacent (offsets 16 and 24): patch both with one
  // seek. v1 flags stay zero by construction.
  unsigned char bytes[16];
  store_le64(bytes, count_);
  store_le64(bytes + 8, flags_);
  out_.seekp(static_cast<std::streamoff>(kTraceCountOffset));
  out_.write(reinterpret_cast<const char*>(bytes), sizeof(bytes));
  out_.flush();
  CMVRP_CHECK_MSG(out_.good(),
                  "trace close failed (disk full?) after " << count_
                                                           << " records: "
                                                           << path_);
  out_.close();
  CMVRP_CHECK_MSG(!out_.fail(), "trace close failed: " << path_);
}

}  // namespace cmvrp
