// TraceWriter: streaming append of records into a cmvrp-trace file
// (v1 job traces or v2 event traces).
//
// The writer never needs the stream length: it writes a header with
// job_count = 0, appends fixed-width records as they are produced, and
// close() seeks back to patch the real count (and, for v2, the flags
// word summarizing which event kinds the trace carries). Generators can
// therefore emit directly into a trace without materializing the job
// vector, and the engine's OutcomeRecorder can stream outcomes during
// serving.
//
// Stream health is checked after every append and again after the
// close-time flush, so a full disk raises check_error instead of
// silently truncating the trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

#include "trace/format.h"
#include "workload/generators.h"

namespace cmvrp {

class TraceWriter {
 public:
  // Opens (truncating) `path` and writes the header; throws check_error
  // when the file cannot be created, dim is out of range, or version is
  // not 1 or 2.
  TraceWriter(const std::string& path, int dim,
              std::uint32_t version = kTraceVersion);

  // Best-effort close; errors are swallowed. Call close() explicitly to
  // get full-disk / write-failure detection.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Appends one arrival; the job's position must match the trace dim.
  // Valid for both versions (a v2 writer encodes an arrival event).
  void append(const Job& job);
  void append(const Job* jobs, std::size_t count);

  // Appends one event record. A v1 writer accepts only kArrival (the
  // other kinds have no v1 encoding); a v2 writer accepts every kind and
  // accumulates the header flags patched by close().
  void append_event(const TraceEvent& event);

  // Patches the header's job_count (and flags for v2), flushes, and
  // verifies stream health; throws check_error when any byte failed to
  // reach the file. The writer is unusable afterwards.
  void close();

  int dim() const { return dim_; }
  std::uint32_t version() const { return version_; }
  std::uint64_t flags() const { return flags_; }
  std::uint64_t jobs_written() const { return count_; }
  bool closed() const { return closed_; }

 private:
  void write_record(const unsigned char* record, std::size_t record_size);

  std::ofstream out_;
  std::string path_;
  int dim_;
  std::uint32_t version_;
  std::uint64_t flags_ = 0;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

}  // namespace cmvrp
