// TraceWriter: streaming append of jobs into a cmvrp-trace-v1 file.
//
// The writer never needs the stream length: it writes a header with
// job_count = 0, appends fixed-width records as they are produced, and
// close() seeks back to patch the real count. Generators can therefore
// emit directly into a trace without materializing the job vector.
//
// Stream health is checked after every append and again after the
// close-time flush, so a full disk raises check_error instead of
// silently truncating the trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

#include "workload/generators.h"

namespace cmvrp {

class TraceWriter {
 public:
  // Opens (truncating) `path` and writes the v1 header; throws
  // check_error when the file cannot be created or dim is out of range.
  TraceWriter(const std::string& path, int dim);

  // Best-effort close; errors are swallowed. Call close() explicitly to
  // get full-disk / write-failure detection.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Appends one record; the job's position must match the trace dim.
  void append(const Job& job);
  void append(const Job* jobs, std::size_t count);

  // Patches the header's job_count, flushes, and verifies stream health;
  // throws check_error when any byte failed to reach the file. The
  // writer is unusable afterwards.
  void close();

  int dim() const { return dim_; }
  std::uint64_t jobs_written() const { return count_; }
  bool closed() const { return closed_; }

 private:
  std::ofstream out_;
  std::string path_;
  int dim_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

}  // namespace cmvrp
