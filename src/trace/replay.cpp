#include "trace/replay.h"

#include "util/check.h"

namespace cmvrp {

TraceReplayer::TraceReplayer(int dim, const StreamConfig& config)
    : engine_(dim, config),
      dim_(dim),
      chunk_(static_cast<std::size_t>(config.batch_size)) {}

void TraceReplayer::ingest(TraceReader& reader) {
  CMVRP_CHECK_MSG(reader.dim() == dim_,
                  "trace dim " << reader.dim() << " does not match engine dim "
                               << dim_ << ": " << reader.path());
  while (true) {
    const std::size_t n = reader.next_batch(chunk_.data(), chunk_.size());
    if (n == 0) break;
    engine_.ingest(chunk_.data(), n);
  }
}

StreamResult TraceReplayer::replay(TraceReader& reader) {
  ingest(reader);
  return finish();
}

}  // namespace cmvrp
