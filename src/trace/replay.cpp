#include "trace/replay.h"

#include "util/check.h"

namespace cmvrp {

TraceReplayer::TraceReplayer(int dim, const StreamConfig& config)
    : engine_(dim, config),
      dim_(dim),
      chunk_(static_cast<std::size_t>(config.batch_size)) {}

void TraceReplayer::set_observer(StreamObserver* observer) {
  engine_.set_observer(observer);
}

void TraceReplayer::set_snapshotter(StatsSnapshotter* snapshotter) {
  engine_.set_snapshotter(snapshotter);
}

void TraceReplayer::ingest(TraceReader& reader) {
  CMVRP_CHECK_MSG(reader.dim() == dim_,
                  "trace dim " << reader.dim() << " does not match engine dim "
                               << dim_ << ": " << reader.path());
  if (reader.has_failure_events()) {
    ingest_events(reader);
    return;
  }
  while (true) {
    const std::size_t n = reader.next_batch(chunk_.data(), chunk_.size());
    if (n == 0) break;
    engine_.ingest(chunk_.data(), n);
  }
}

void TraceReplayer::ingest_events(TraceReader& reader) {
  // Event-aware path: arrivals buffer into the chunk; a silent-done
  // marker flushes the chunk (so the injection lands between exactly the
  // arrivals it sat between in the trace) and then marks the home.
  const TraceEventKind job_kind = reader.has_outcomes()
                                      ? TraceEventKind::kOutcome
                                      : TraceEventKind::kArrival;
  std::vector<TraceEvent> events(chunk_.size());
  std::size_t pending = 0;
  while (const std::size_t n =
             reader.next_events(events.data(), events.size())) {
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = events[i];
      if (e.kind == TraceEventKind::kSilentDone) {
        if (pending > 0) {
          engine_.ingest(chunk_.data(), pending);
          pending = 0;
        }
        engine_.inject_silent_done(e.job.position);
        continue;
      }
      if (e.kind != job_kind) continue;
      chunk_[pending++] = e.job;
      if (pending == chunk_.size()) {
        engine_.ingest(chunk_.data(), pending);
        pending = 0;
      }
    }
  }
  if (pending > 0) engine_.ingest(chunk_.data(), pending);
}

StreamResult TraceReplayer::replay(TraceReader& reader) {
  ingest(reader);
  return finish();
}

}  // namespace cmvrp
