#include "trace/mapped_file.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#define CMVRP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CMVRP_HAVE_MMAP 0
#endif

namespace cmvrp {

bool MappedFile::mmap_disabled_by_env() {
  const char* v = std::getenv("CMVRP_NO_MMAP");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

MappedFile::MappedFile(const std::string& path)
    : MappedFile(path, !mmap_disabled_by_env()) {}

MappedFile::MappedFile(const std::string& path, bool allow_mmap)
    : path_(path) {
  if (CMVRP_HAVE_MMAP && allow_mmap)
    open_mapped();
  else
    open_fallback();
}

#if CMVRP_HAVE_MMAP

void MappedFile::open_mapped() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  CMVRP_CHECK_MSG(fd >= 0, "cannot open trace file: " << path_);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    CMVRP_CHECK_MSG(false, "cannot stat trace file: " << path_);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      CMVRP_CHECK_MSG(false, "mmap failed for trace file: " << path_);
    }
    data_ = static_cast<const unsigned char*>(addr);
    mapped_ = true;
  }
  ::close(fd);  // the mapping stays valid without the descriptor
}

#else

void MappedFile::open_mapped() { open_fallback(); }

#endif  // CMVRP_HAVE_MMAP

void MappedFile::open_fallback() {
  std::ifstream in(path_, std::ios::binary);
  CMVRP_CHECK_MSG(in.good(), "cannot open trace file: " << path_);
  in.seekg(0, std::ios::end);
  size_ = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  fallback_.resize(size_);
  if (size_ > 0) {
    in.read(reinterpret_cast<char*>(fallback_.data()),
            static_cast<std::streamsize>(size_));
    CMVRP_CHECK_MSG(in.good(), "cannot read trace file: " << path_);
    data_ = fallback_.data();
  }
}

void MappedFile::release() noexcept {
#if CMVRP_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<unsigned char*>(data_), size_);
#endif
  fallback_.clear();
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  // A moved-from fallback vector may reallocate-free; re-point at ours.
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

}  // namespace cmvrp
