// TraceReplayer: bounded-memory replay of a job trace into the stream
// engine.
//
// Drives StreamEngine::ingest() chunk by chunk straight off the mapping:
// the only job storage is one reusable chunk buffer of engine-batch-size
// Jobs, so peak memory is O(batch × threads) — independent of trace
// length. Because the engine's results are batch-invariant (the PR 3
// contract), replaying a trace is bit-identical to serving the same jobs
// from one in-memory vector, at every thread count; tests/trace_test.cpp
// enforces exactly that equivalence.
//
// v2 traces replay by event kind: job-bearing records stream into the
// engine as arrivals, and silent-done failure-injection markers flush
// the pending chunk and then mark the named home vertex silent-done
// (StreamEngine::inject_silent_done) — so the injection lands between
// exactly the arrivals it sat between in the trace, at every thread
// count and batch size.
#pragma once

#include <cstddef>
#include <vector>

#include "stream/engine.h"
#include "trace/reader.h"

namespace cmvrp {

class TraceReplayer {
 public:
  // The chunk size equals the engine's batch size, so replay adds no
  // buffering beyond what one ingest batch already costs.
  TraceReplayer(int dim, const StreamConfig& config);

  // Forwarded to the engine (e.g. an OutcomeRecorder; replay + record
  // re-audits a trace).
  void set_observer(StreamObserver* observer);

  // Forwarded to the engine: JSONL stats snapshots of a replay — Tier-A
  // lines bit-identical to the in-memory run's (src/obs/snapshot.h).
  void set_snapshotter(StatsSnapshotter* snapshotter);

  // Replays `reader` from its current cursor to end of trace and
  // finishes the engine. The reader's dim must match the engine's.
  StreamResult replay(TraceReader& reader);

  // Streams one trace segment without finishing (incremental front ends).
  void ingest(TraceReader& reader);

  StreamResult finish() { return engine_.finish(); }

  std::size_t chunk_jobs() const { return chunk_.size(); }

  // The underlying engine, for read-only post-run access (span export:
  // the CLI pulls span_sources() after replay()).
  const StreamEngine& engine() const { return engine_; }

 private:
  void ingest_events(TraceReader& reader);

  StreamEngine engine_;
  int dim_;
  std::vector<Job> chunk_;  // the only job buffer, reused every batch
};

}  // namespace cmvrp
