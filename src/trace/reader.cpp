#include "trace/reader.h"

#include <algorithm>

#include "grid/point.h"
#include "util/check.h"

namespace cmvrp {

TraceReader::TraceReader(const std::string& path) : file_(path) {
  CMVRP_CHECK_MSG(file_.size() >= kTraceHeaderSize,
                  "trace too short: " << file_.size() << " bytes, header is "
                                      << kTraceHeaderSize << ": " << path);
  const unsigned char* bytes = file_.data();
  for (std::size_t i = 0; i < sizeof(kTraceMagic); ++i) {
    CMVRP_CHECK_MSG(bytes[i] == kTraceMagic[i],
                    "bad trace magic at byte offset "
                        << kTraceMagicOffset + i << " (not a cmvrp trace): "
                        << path);
  }
  header_.version = load_le32(bytes + kTraceVersionOffset);
  CMVRP_CHECK_MSG(header_.version == kTraceVersion,
                  "unsupported trace version " << header_.version
                                               << " at byte offset "
                                               << kTraceVersionOffset
                                               << " (expected " << kTraceVersion
                                               << "): " << path);
  header_.dim = load_le32(bytes + kTraceDimOffset);
  CMVRP_CHECK_MSG(header_.dim >= 1 &&
                      header_.dim <= static_cast<std::uint32_t>(Point::kMaxDim),
                  "bad trace dim " << header_.dim << " at byte offset "
                                   << kTraceDimOffset << " (must be 1.."
                                   << Point::kMaxDim << "): " << path);
  header_.job_count = load_le64(bytes + kTraceCountOffset);
  header_.flags = load_le64(bytes + kTraceFlagsOffset);
  CMVRP_CHECK_MSG(header_.flags == 0,
                  "unknown trace flags 0x" << std::hex << header_.flags
                                           << std::dec << " at byte offset "
                                           << kTraceFlagsOffset << ": "
                                           << path);

  const std::size_t record_size = trace_record_size(dim());
  const std::size_t payload = file_.size() - kTraceHeaderSize;
  const std::uint64_t whole_records = payload / record_size;
  CMVRP_CHECK_MSG(payload % record_size == 0,
                  "truncated trace record: record "
                      << whole_records << " at byte offset "
                      << kTraceHeaderSize + whole_records * record_size
                      << " has only " << payload % record_size << " of "
                      << record_size << " bytes: " << path);
  CMVRP_CHECK_MSG(whole_records == header_.job_count,
                  "trace count/size disagreement: header at byte offset "
                      << kTraceCountOffset << " claims " << header_.job_count
                      << " records but " << payload << " payload bytes hold "
                      << whole_records << ": " << path);
}

std::size_t TraceReader::next_batch(Job* out, std::size_t max_jobs) {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_jobs, remaining()));
  const std::size_t record_size = trace_record_size(dim());
  const unsigned char* record =
      file_.data() + kTraceHeaderSize + next_ * record_size;
  for (std::size_t k = 0; k < n; ++k, record += record_size) {
    Point p = Point::origin(dim());
    for (int i = 0; i < dim(); ++i)
      p[i] = load_le_i64(record + static_cast<std::size_t>(i) * 8);
    out[k].position = p;
    out[k].index = load_le_i64(record + static_cast<std::size_t>(dim()) * 8);
  }
  next_ += n;
  return n;
}

std::vector<Job> TraceReader::read_all() {
  reset();
  std::vector<Job> jobs(static_cast<std::size_t>(job_count()));
  const std::size_t n = next_batch(jobs.data(), jobs.size());
  jobs.resize(n);
  return jobs;
}

DemandMap trace_demand(TraceReader& reader) {
  reader.reset();
  DemandMap d(reader.dim());
  std::vector<Job> chunk(4096);
  while (const std::size_t n = reader.next_batch(chunk.data(), chunk.size()))
    for (std::size_t i = 0; i < n; ++i) d.add(chunk[i].position, 1.0);
  reader.reset();
  return d;
}

}  // namespace cmvrp
