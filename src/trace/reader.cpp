#include "trace/reader.h"

#include <algorithm>

#include "grid/point.h"
#include "util/check.h"

namespace cmvrp {

TraceReader::TraceReader(const std::string& path) : file_(path) {
  CMVRP_CHECK_MSG(file_.size() >= kTraceHeaderSize,
                  "trace too short: " << file_.size() << " bytes, header is "
                                      << kTraceHeaderSize << ": " << path);
  const unsigned char* bytes = file_.data();
  for (std::size_t i = 0; i < sizeof(kTraceMagic); ++i) {
    CMVRP_CHECK_MSG(bytes[i] == kTraceMagic[i],
                    "bad trace magic at byte offset "
                        << kTraceMagicOffset + i << " (not a cmvrp trace): "
                        << path);
  }
  header_.version = load_le32(bytes + kTraceVersionOffset);
  CMVRP_CHECK_MSG(header_.version == kTraceVersion ||
                      header_.version == kTraceVersionV2,
                  "unsupported trace version "
                      << header_.version << " at byte offset "
                      << kTraceVersionOffset << " (expected " << kTraceVersion
                      << " or " << kTraceVersionV2 << "): " << path);
  header_.dim = load_le32(bytes + kTraceDimOffset);
  CMVRP_CHECK_MSG(header_.dim >= 1 &&
                      header_.dim <= static_cast<std::uint32_t>(Point::kMaxDim),
                  "bad trace dim " << header_.dim << " at byte offset "
                                   << kTraceDimOffset << " (must be 1.."
                                   << Point::kMaxDim << "): " << path);
  header_.job_count = load_le64(bytes + kTraceCountOffset);
  header_.flags = load_le64(bytes + kTraceFlagsOffset);
  const std::uint64_t known =
      header_.version == kTraceVersionV2 ? kTraceKnownFlagsV2 : 0;
  CMVRP_CHECK_MSG((header_.flags & ~known) == 0,
                  "unknown trace flags 0x" << std::hex << header_.flags
                                           << std::dec << " at byte offset "
                                           << kTraceFlagsOffset << " (v"
                                           << header_.version
                                           << " allows 0x" << std::hex << known
                                           << std::dec << "): " << path);
  job_kind_ = has_outcomes() ? TraceEventKind::kOutcome
                             : TraceEventKind::kArrival;

  record_size_ = trace_record_size(dim(), header_.version);
  const std::size_t payload = file_.size() - kTraceHeaderSize;
  const std::uint64_t whole_records = payload / record_size_;
  CMVRP_CHECK_MSG(payload % record_size_ == 0,
                  "truncated trace record: record "
                      << whole_records << " at byte offset "
                      << kTraceHeaderSize + whole_records * record_size_
                      << " has only " << payload % record_size_ << " of "
                      << record_size_ << " bytes: " << path);
  CMVRP_CHECK_MSG(whole_records == header_.job_count,
                  "trace count/size disagreement: header at byte offset "
                      << kTraceCountOffset << " claims " << header_.job_count
                      << " records but " << payload << " payload bytes hold "
                      << whole_records << ": " << path);

}

const unsigned char* TraceReader::record_at(std::uint64_t index) const {
  return file_.data() + kTraceHeaderSize + index * record_size_;
}

TraceEvent TraceReader::decode_at(std::uint64_t index) const {
  if (header_.version == kTraceVersionV2) {
    // Kind words are validated here, on first decode, rather than by an
    // O(file) pass at open — opening a huge trace for a bounded window
    // (or `trace info`) must not fault in every page.
    const std::uint32_t kind = load_le32(record_at(index));
    CMVRP_CHECK_MSG(kind <= kTraceMaxEventKind,
                    "unknown trace event kind "
                        << kind << " in record " << index
                        << " at byte offset "
                        << kTraceHeaderSize + index * record_size_ << ": "
                        << path());
    return decode_trace_event(record_at(index), dim());
  }
  const unsigned char* record = record_at(index);
  Job job;
  Point p = Point::origin(dim());
  for (int i = 0; i < dim(); ++i)
    p[i] = load_le_i64(record + static_cast<std::size_t>(i) * 8);
  job.position = p;
  job.index = load_le_i64(record + static_cast<std::size_t>(dim()) * 8);
  return arrival_event(job);
}

std::size_t TraceReader::next_batch(Job* out, std::size_t max_jobs) {
  std::size_t n = 0;
  if (header_.version == kTraceVersion) {
    // v1: every record is a job — decode the window straight off the map.
    n = static_cast<std::size_t>(std::min<std::uint64_t>(max_jobs,
                                                         remaining()));
    const unsigned char* record = record_at(next_);
    for (std::size_t k = 0; k < n; ++k, record += record_size_) {
      Point p = Point::origin(dim());
      for (int i = 0; i < dim(); ++i)
        p[i] = load_le_i64(record + static_cast<std::size_t>(i) * 8);
      out[k].position = p;
      out[k].index = load_le_i64(record + static_cast<std::size_t>(dim()) * 8);
    }
    next_ += n;
    return n;
  }
  // v2: collect the job-bearing kind, skipping other event kinds.
  while (n < max_jobs && next_ < header_.job_count) {
    const TraceEvent e = decode_at(next_);
    ++next_;
    if (e.kind == job_kind_) out[n++] = e.job;
  }
  return n;
}

std::size_t TraceReader::next_events(TraceEvent* out, std::size_t max_events) {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_events, remaining()));
  for (std::size_t k = 0; k < n; ++k) out[k] = decode_at(next_ + k);
  next_ += n;
  return n;
}

std::vector<Job> TraceReader::read_all() {
  reset();
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(job_count()));
  std::vector<Job> chunk(4096);
  while (const std::size_t n = next_batch(chunk.data(), chunk.size()))
    jobs.insert(jobs.end(), chunk.begin(),
                chunk.begin() + static_cast<std::ptrdiff_t>(n));
  return jobs;
}

DemandMap trace_demand(TraceReader& reader) {
  reader.reset();
  DemandMap d(reader.dim());
  std::vector<Job> chunk(4096);
  while (const std::size_t n = reader.next_batch(chunk.data(), chunk.size()))
    for (std::size_t i = 0; i < n; ++i) d.add(chunk[i].position, 1.0);
  reader.reset();
  return d;
}

}  // namespace cmvrp
