// TraceReader: mmap-backed, bounded-memory iteration over a cmvrp-trace
// file, v1 (job records) or v2 (event records).
//
// The constructor validates the header and the size arithmetic (magic,
// version, dim, flags, truncated records, count/size disagreement) and
// throws check_error with the offending byte offset. next_batch()
// decodes a bounded window of records straight off the mapping into a
// caller-provided buffer, so iterating a trace of any length costs
// O(batch) memory — the out-of-core contract the replayer builds on.
//
// v2 traces are event streams. next_events() surfaces raw events (a v1
// trace surfaces its records as arrival events), while next_batch()
// yields the trace's *job stream*: the job-bearing event kind — outcome
// records when the header's outcomes flag is set (an OutcomeRecorder
// audit trail replays as the original arrival sequence), arrival records
// otherwise — with other kinds skipped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "grid/demand_map.h"
#include "trace/format.h"
#include "trace/mapped_file.h"
#include "workload/generators.h"

namespace cmvrp {

class TraceReader {
 public:
  // Opens, maps, and validates; throws check_error on malformed input.
  explicit TraceReader(const std::string& path);

  int dim() const { return static_cast<int>(header_.dim); }
  std::uint32_t version() const { return header_.version; }
  std::uint64_t job_count() const { return header_.job_count; }
  std::uint64_t flags() const { return header_.flags; }
  const std::string& path() const { return file_.path(); }

  // True when the trace carries v2 silent-done failure-injection events.
  bool has_failure_events() const {
    return (header_.flags & kTraceFlagFailureEvents) != 0;
  }
  // True when the trace is an outcome audit trail (v2 outcomes flag).
  bool has_outcomes() const {
    return (header_.flags & kTraceFlagOutcomes) != 0;
  }

  // True when served by a real mmap (false on the read-fallback path).
  bool mapped() const { return file_.mapped(); }

  // Decodes records from the cursor, collecting up to max_jobs jobs of
  // the trace's job-bearing kind (see header comment); returns the
  // number collected (0 only when no job-bearing record remains) and
  // advances the cursor past every record scanned.
  std::size_t next_batch(Job* out, std::size_t max_jobs);

  // Decodes up to max_events raw events (0 at end of trace). v1 records
  // surface as kArrival events.
  std::size_t next_events(TraceEvent* out, std::size_t max_events);

  // Records (of any event kind) not yet consumed by the cursor.
  std::uint64_t remaining() const { return header_.job_count - next_; }

  // Rewinds the cursor to the first record.
  void reset() { next_ = 0; }

  // Convenience for small traces and tests: materializes the job stream.
  // Out-of-core callers must use next_batch() instead.
  std::vector<Job> read_all();

 private:
  const unsigned char* record_at(std::uint64_t index) const;
  TraceEvent decode_at(std::uint64_t index) const;

  MappedFile file_;
  TraceHeader header_;
  std::size_t record_size_ = 0;
  TraceEventKind job_kind_ = TraceEventKind::kArrival;
  std::uint64_t next_ = 0;  // index of the next unread record
};

// Induces the demand map of a trace's job stream in one bounded pass
// (memory is O(distinct positions), not trace length) and rewinds the
// cursor — how front ends size a fleet for a stream they never
// materialize.
DemandMap trace_demand(TraceReader& reader);

}  // namespace cmvrp
