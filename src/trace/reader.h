// TraceReader: mmap-backed, bounded-memory iteration over a
// cmvrp-trace-v1 file.
//
// The constructor validates the header and the size arithmetic (magic,
// version, dim, flags, truncated records, count/size disagreement) and
// throws check_error with the offending byte offset. next_batch()
// decodes a bounded window of records straight off the mapping into a
// caller-provided buffer, so iterating a trace of any length costs
// O(batch) memory — the out-of-core contract the replayer builds on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "grid/demand_map.h"
#include "trace/format.h"
#include "trace/mapped_file.h"
#include "workload/generators.h"

namespace cmvrp {

class TraceReader {
 public:
  // Opens, maps, and validates; throws check_error on malformed input.
  explicit TraceReader(const std::string& path);

  int dim() const { return static_cast<int>(header_.dim); }
  std::uint64_t job_count() const { return header_.job_count; }
  std::uint64_t flags() const { return header_.flags; }
  const std::string& path() const { return file_.path(); }

  // True when served by a real mmap (false on the read-fallback path).
  bool mapped() const { return file_.mapped(); }

  // Decodes up to max_jobs records into `out`, returns the number
  // decoded (0 at end of trace), and advances the cursor.
  std::size_t next_batch(Job* out, std::size_t max_jobs);

  // Records not yet consumed by next_batch().
  std::uint64_t remaining() const { return header_.job_count - next_; }

  // Rewinds the cursor to the first record.
  void reset() { next_ = 0; }

  // Convenience for small traces and tests: materializes every record.
  // Out-of-core callers must use next_batch() instead.
  std::vector<Job> read_all();

 private:
  MappedFile file_;
  TraceHeader header_;
  std::uint64_t next_ = 0;  // index of the next unread record
};

// Induces the demand map of a trace in one bounded pass (memory is
// O(distinct positions), not trace length) and rewinds the cursor —
// how front ends size a fleet for a stream they never materialize.
DemandMap trace_demand(TraceReader& reader);

}  // namespace cmvrp
