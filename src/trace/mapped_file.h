// Read-only file mapping behind one RAII class.
//
// On POSIX the file is mmap-ed (zero-copy: the OS pages trace bytes in
// and out on demand, so resident memory is bounded by the working set,
// not the file size). Platforms without mmap fall back to reading the
// whole file into an owned buffer — same interface, weaker memory bound;
// mapped() reports which path is live so tests and tools can tell.
//
// The fallback can also be forced on mmap-capable platforms, either per
// instance (the allow_mmap constructor) or process-wide by setting the
// CMVRP_NO_MMAP environment variable to anything but "0" — which is how
// tests pin the fallback path and how operators can sidestep a broken
// mmap (e.g. some network filesystems).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cmvrp {

class MappedFile {
 public:
  // Opens and maps `path` (honouring CMVRP_NO_MMAP); throws check_error
  // when the file cannot be opened. An empty file yields size() == 0 and
  // a null data pointer.
  explicit MappedFile(const std::string& path);

  // As above, but the caller decides: allow_mmap = false forces the
  // read-into-buffer fallback regardless of platform and environment.
  MappedFile(const std::string& path, bool allow_mmap);

  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // True when backed by a real mmap; false on the read-fallback path.
  bool mapped() const { return mapped_; }

  // True when the CMVRP_NO_MMAP environment variable disables mapping.
  static bool mmap_disabled_by_env();

 private:
  void open_mapped();
  void open_fallback();
  void release() noexcept;

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<unsigned char> fallback_;  // owns the bytes when !mapped_
};

}  // namespace cmvrp
