// Read-only file mapping behind one RAII class.
//
// On POSIX the file is mmap-ed (zero-copy: the OS pages trace bytes in
// and out on demand, so resident memory is bounded by the working set,
// not the file size). Platforms without mmap fall back to reading the
// whole file into an owned buffer — same interface, weaker memory bound;
// mapped() reports which path is live so tests and tools can tell.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cmvrp {

class MappedFile {
 public:
  // Opens and maps `path`; throws check_error when the file cannot be
  // opened. An empty file yields size() == 0 and a null data pointer.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // True when backed by a real mmap; false on the read-fallback path.
  bool mapped() const { return mapped_; }

 private:
  void release() noexcept;

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<unsigned char> fallback_;  // owns the bytes when !mapped_
};

}  // namespace cmvrp
