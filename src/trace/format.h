// cmvrp-trace: the binary, little-endian, mmap-able trace formats.
//
// Two versions share one 32-byte header (all integers little-endian,
// regardless of host endianness):
//   offset  size  field
//        0     8  magic      "cmvrptrc"
//        8     4  version    (1 or 2)
//       12     4  dim        (1 .. Point::kMaxDim)
//       16     8  job_count  (v1: jobs; v2: records of any event kind)
//       24     8  flags      (v1: must be 0; v2: kTraceKnownFlagsV2 bits)
//
// v1 records (trace_record_size(dim, 1) bytes) are pure arrivals:
//   (dim + 1) int64 fields — the dim coordinates, then the arrival index.
//
// v2 records (trace_record_size(dim, 2) bytes) are *events*: an event
// kind word extends the arrival record with failure-injection markers and
// serving outcomes, so one format carries generator streams, adversarial
// failure streams, and the engine's audit trail:
//   offset        size   field
//        0           4   kind    (0 arrival, 1 silent-done, 2 outcome)
//        4           4   aux     (outcome: 0 failed / 1 served / 2 shed /
//                                 3 rejected; else 0)
//        8       8*dim   coords  (arrival/outcome: job position;
//                                 silent-done: the home vertex going dark)
//   8 + 8*dim        8   index   (arrival index; 0 for silent-done)
//  16 + 8*dim    8*dim   corner  (outcome: assigned cube corner; else 0)
//
// Fixed-width records make both versions seekable and mmap-friendly:
// record k starts at byte kTraceHeaderSize + k * trace_record_size(dim,
// version), so a reader can decode any bounded window of an arbitrarily
// large trace without touching the rest of the file. TraceWriter streams
// records and patches job_count (and, for v2, the flags word) on close,
// so traces can be produced without ever knowing (or materializing) the
// stream length up front.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grid/point.h"
#include "workload/generators.h"

namespace cmvrp {

inline constexpr unsigned char kTraceMagic[8] = {'c', 'm', 'v', 'r',
                                                 'p', 't', 'r', 'c'};
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint32_t kTraceVersionV2 = 2;
inline constexpr std::size_t kTraceHeaderSize = 32;

// Byte offsets of the header fields (for error messages and tests).
inline constexpr std::size_t kTraceMagicOffset = 0;
inline constexpr std::size_t kTraceVersionOffset = 8;
inline constexpr std::size_t kTraceDimOffset = 12;
inline constexpr std::size_t kTraceCountOffset = 16;
inline constexpr std::size_t kTraceFlagsOffset = 24;

// v2 header flags. v1 traces must have a zero flags word; v2 traces may
// set any subset of the known bits (the writer patches them on close).
inline constexpr std::uint64_t kTraceFlagFailureEvents = 1ULL << 0;
inline constexpr std::uint64_t kTraceFlagOutcomes = 1ULL << 1;
inline constexpr std::uint64_t kTraceKnownFlagsV2 =
    kTraceFlagFailureEvents | kTraceFlagOutcomes;

// Bytes per record. v1: dim coordinates plus the arrival index. v2: the
// event word, coordinates, arrival index, and the outcome cube corner.
inline constexpr std::size_t trace_record_size(int dim,
                                               std::uint32_t version = 1) {
  return version >= kTraceVersionV2
             ? 16 + 2 * static_cast<std::size_t>(dim) * 8
             : static_cast<std::size_t>(dim + 1) * sizeof(std::int64_t);
}

// Byte-wise little-endian scalar codecs (host-endianness-proof).
inline void store_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline void store_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline void store_le_i64(unsigned char* p, std::int64_t v) {
  store_le64(p, static_cast<std::uint64_t>(v));
}

inline std::int64_t load_le_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(load_le64(p));
}

struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::uint32_t dim = 0;
  std::uint64_t job_count = 0;
  std::uint64_t flags = 0;
};

inline void encode_trace_header(const TraceHeader& h,
                                unsigned char out[kTraceHeaderSize]) {
  for (std::size_t i = 0; i < sizeof(kTraceMagic); ++i) out[i] = kTraceMagic[i];
  store_le32(out + kTraceVersionOffset, h.version);
  store_le32(out + kTraceDimOffset, h.dim);
  store_le64(out + kTraceCountOffset, h.job_count);
  store_le64(out + kTraceFlagsOffset, h.flags);
}

// --- v2 events --------------------------------------------------------------

enum class TraceEventKind : std::uint32_t {
  kArrival = 0,     // a job arrival (the v1 record, as an event)
  kSilentDone = 1,  // failure injection: the vehicle at `job.position`
                    // (its home vertex) goes done without initiating
  kOutcome = 2,     // serving outcome of `job`: served/failed + corner
};

inline constexpr std::uint32_t kTraceMaxEventKind =
    static_cast<std::uint32_t>(TraceEventKind::kOutcome);

// Outcome aux word: how the arrival ended. 0/1 are the historical
// failed/served pair; 2/3 mark admission drops (jobs a bounded backlog
// never let reach the protocol — see stream/shard.h). Readers validate
// only the kind word, so pre-admission consumers decode shed/rejected
// records as non-served outcomes — a safe reading, since neither was
// served.
inline constexpr std::uint32_t kTraceOutcomeFailed = 0;
inline constexpr std::uint32_t kTraceOutcomeServed = 1;
inline constexpr std::uint32_t kTraceOutcomeShed = 2;
inline constexpr std::uint32_t kTraceOutcomeRejected = 3;
inline constexpr std::uint32_t kTraceMaxOutcomeAux = kTraceOutcomeRejected;

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kArrival;
  bool served = false;     // aux == kTraceOutcomeServed, for 2-way consumers
  std::uint32_t aux = 0;   // outcome: kTraceOutcome* word; else 0
  Job job;              // position + arrival index (silent-done: home, 0)
  Point corner;         // outcome: assigned cube corner; else origin
};

inline TraceEvent arrival_event(const Job& job) {
  TraceEvent e;
  e.kind = TraceEventKind::kArrival;
  e.job = job;
  e.corner = Point::origin(job.position.dim());
  return e;
}

inline TraceEvent silent_done_event(const Point& home) {
  TraceEvent e;
  e.kind = TraceEventKind::kSilentDone;
  e.job = Job{home, 0};
  e.corner = Point::origin(home.dim());
  return e;
}

inline TraceEvent outcome_event(const Job& job, bool served,
                                const Point& corner) {
  TraceEvent e;
  e.kind = TraceEventKind::kOutcome;
  e.served = served;
  e.aux = served ? kTraceOutcomeServed : kTraceOutcomeFailed;
  e.job = job;
  e.corner = corner;
  return e;
}

// Outcome event with an explicit aux word (shed / rejected drops).
inline TraceEvent outcome_event_aux(const Job& job, std::uint32_t aux,
                                    const Point& corner) {
  TraceEvent e;
  e.kind = TraceEventKind::kOutcome;
  e.aux = aux;
  e.served = aux == kTraceOutcomeServed;
  e.job = job;
  e.corner = corner;
  return e;
}

// Encodes one v2 record; `out` must hold trace_record_size(dim, 2) bytes
// and every point in `e` must already have dimension `dim`.
inline void encode_trace_event(const TraceEvent& e, int dim,
                               unsigned char* out) {
  store_le32(out, static_cast<std::uint32_t>(e.kind));
  store_le32(out + 4, e.aux);
  for (int i = 0; i < dim; ++i)
    store_le_i64(out + 8 + static_cast<std::size_t>(i) * 8, e.job.position[i]);
  store_le_i64(out + 8 + static_cast<std::size_t>(dim) * 8, e.job.index);
  for (int i = 0; i < dim; ++i)
    store_le_i64(out + 16 + static_cast<std::size_t>(dim + i) * 8,
                 e.corner[i]);
}

// Decodes one v2 record. The kind word is NOT validated here; the reader
// rejects unknown kinds with the record's byte offset.
inline TraceEvent decode_trace_event(const unsigned char* record, int dim) {
  TraceEvent e;
  e.kind = static_cast<TraceEventKind>(load_le32(record));
  e.aux = load_le32(record + 4);
  e.served = e.aux == kTraceOutcomeServed;
  Point p = Point::origin(dim);
  for (int i = 0; i < dim; ++i)
    p[i] = load_le_i64(record + 8 + static_cast<std::size_t>(i) * 8);
  e.job.position = p;
  e.job.index = load_le_i64(record + 8 + static_cast<std::size_t>(dim) * 8);
  Point c = Point::origin(dim);
  for (int i = 0; i < dim; ++i)
    c[i] = load_le_i64(record + 16 + static_cast<std::size_t>(dim + i) * 8);
  e.corner = c;
  return e;
}

}  // namespace cmvrp
