// cmvrp-trace-v1: the binary, little-endian, mmap-able job-trace format.
//
// Layout (all integers little-endian, regardless of host endianness):
//   offset  size  field
//        0     8  magic      "cmvrptrc"
//        8     4  version    (= 1)
//       12     4  dim        (1 .. Point::kMaxDim)
//       16     8  job_count
//       24     8  flags      (reserved; must be 0 in v1)
//       32     …  records    job_count records of (dim + 1) int64 fields:
//                            the dim coordinates, then the arrival index.
//
// Fixed-width records make the format seekable and mmap-friendly: record
// k starts at byte kTraceHeaderSize + k * trace_record_size(dim), so a
// reader can decode any bounded window of an arbitrarily large trace
// without touching the rest of the file. TraceWriter streams records and
// patches job_count on close, so traces can be produced without ever
// knowing (or materializing) the stream length up front.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cmvrp {

inline constexpr unsigned char kTraceMagic[8] = {'c', 'm', 'v', 'r',
                                                 'p', 't', 'r', 'c'};
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderSize = 32;

// Byte offsets of the header fields (for error messages and tests).
inline constexpr std::size_t kTraceMagicOffset = 0;
inline constexpr std::size_t kTraceVersionOffset = 8;
inline constexpr std::size_t kTraceDimOffset = 12;
inline constexpr std::size_t kTraceCountOffset = 16;
inline constexpr std::size_t kTraceFlagsOffset = 24;

// Bytes per job record: dim coordinates plus the arrival index.
inline constexpr std::size_t trace_record_size(int dim) {
  return static_cast<std::size_t>(dim + 1) * sizeof(std::int64_t);
}

// Byte-wise little-endian scalar codecs (host-endianness-proof).
inline void store_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline void store_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline void store_le_i64(unsigned char* p, std::int64_t v) {
  store_le64(p, static_cast<std::uint64_t>(v));
}

inline std::int64_t load_le_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(load_le64(p));
}

struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::uint32_t dim = 0;
  std::uint64_t job_count = 0;
  std::uint64_t flags = 0;
};

inline void encode_trace_header(const TraceHeader& h,
                                unsigned char out[kTraceHeaderSize]) {
  for (std::size_t i = 0; i < sizeof(kTraceMagic); ++i) out[i] = kTraceMagic[i];
  store_le32(out + kTraceVersionOffset, h.version);
  store_le32(out + kTraceDimOffset, h.dim);
  store_le64(out + kTraceCountOffset, h.job_count);
  store_le64(out + kTraceFlagsOffset, h.flags);
}

}  // namespace cmvrp
