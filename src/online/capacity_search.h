// Empirical Won: the smallest capacity W for which the Chapter 3 strategy
// serves an entire job stream, found by bisection over fresh simulations.
//
// Theorem 1.4.2 claims Won = Θ(Woff); benches compare this empirical value
// against ω_c (lower bound) and (4·3^ℓ+ℓ)·ω_c (Lemma 3.3.1 upper bound).
//
// Complexity: O(log((hi−lo)/tol)) full simulations (plus the doublings
// needed to find a sufficient hi); each simulation is one pass over the
// job stream with the per-event costs listed in online/simulation.h.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/demand_map.h"
#include "online/simulation.h"
#include "workload/generators.h"

namespace cmvrp {

// Builds the strategy's deployment parameters from the stream's demand:
// cube side max(2, ⌈ω_c⌉), anchor at the demand bounding box, and the
// Lemma 3.3.1 capacity (unless overridden afterwards).
OnlineConfig default_online_config(const DemandMap& demand,
                                   std::uint64_t seed = 1);

struct CapacitySearchResult {
  double won_empirical = 0.0;   // minimal sufficient W found
  double omega_c = 0.0;         // offline cube lower bound for comparison
  double won_theory = 0.0;      // (4·3^ℓ+ℓ)·ω_c
  OnlineMetrics at_minimum;     // metrics of the run at won_empirical
  std::uint64_t simulations = 0;
};

// Bisects capacity in [lo, hi] (hi defaults to the Lemma 3.3.1 bound,
// doubled until sufficient). Success is re-evaluated with a fresh
// simulation per probe; `tol` is absolute on W.
CapacitySearchResult find_min_online_capacity(const std::vector<Job>& jobs,
                                              int dim,
                                              std::uint64_t seed = 1,
                                              double tol = 0.05);

}  // namespace cmvrp
