// Vehicle state (§3.2.1, Figure 3.1).
//
// S1 (working): idle → active → done;  S2 (message-transfer): waiting ↔
// searching, plus initiator for the done vehicle that starts a diffusing
// computation. (active|idle, initiator) are unreachable, as in the paper.
//
// Plain constant-size state — every field is O(1); the Phase I members
// (num, par, child, init) are exactly Algorithm 2's per-process locals.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grid/point.h"
#include "sim/message.h"

namespace cmvrp {

enum class WorkState : std::uint8_t { kIdle, kActive, kDone };
enum class TransferState : std::uint8_t { kWaiting, kSearching, kInitiator };

inline const char* to_string(WorkState s) {
  switch (s) {
    case WorkState::kIdle:
      return "idle";
    case WorkState::kActive:
      return "active";
    case WorkState::kDone:
      return "done";
  }
  return "?";
}

inline const char* to_string(TransferState s) {
  switch (s) {
    case TransferState::kWaiting:
      return "waiting";
    case TransferState::kSearching:
      return "searching";
    case TransferState::kInitiator:
      return "initiator";
  }
  return "?";
}

struct Vehicle {
  std::size_t id = SIZE_MAX;
  Point home;      // depot vertex (never changes)
  Point pos;       // current vertex
  WorkState s1 = WorkState::kIdle;
  TransferState s2 = TransferState::kWaiting;

  double capacity = 0.0;
  double spent_service = 0.0;
  double spent_travel = 0.0;

  // Phase I local data (§3.2.3.2).
  int num = 0;                   // un-responded queries
  std::size_t par = SIZE_MAX;    // parent in the diffusing tree
  std::size_t child = SIZE_MAX;  // first child that reported an idle vehicle
  InitTag init = kNoInit;        // computation currently joined
  std::uint64_t init_seq = 0;    // next sequence number when initiating

  // Failure injection.
  bool dead = false;         // broken (§3.2.5 scenarios 3/4): cannot serve
                             // or volunteer, but still relays messages
  bool silent_done = false;  // scenario 2: fails to start its own
                             // diffusing computation when done

  double spent() const { return spent_service + spent_travel; }
  double remaining() const { return capacity - spent(); }

  // A vehicle must stop accepting work once it can no longer guarantee a
  // worst-case next job: walk <= 1 plus 1 unit of service.
  bool exhausted() const { return remaining() < 2.0; }

  bool can_serve() const {
    return s1 == WorkState::kActive && !dead;
  }
};

}  // namespace cmvrp
