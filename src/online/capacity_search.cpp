#include "online/capacity_search.h"

#include <algorithm>
#include <cmath>

#include "core/cube_bound.h"
#include "util/check.h"

namespace cmvrp {

OnlineConfig default_online_config(const DemandMap& demand,
                                   std::uint64_t seed) {
  CMVRP_CHECK(!demand.empty());
  const CubeBound cb = cube_bound(demand);
  OnlineConfig config;
  config.cube_side = std::max<std::int64_t>(2, cb.cube_side);
  config.anchor = demand.bounding_box().lo();
  config.capacity = won_upper_bound(cb.omega_c, demand.dim());
  config.seed = seed;
  return config;
}

namespace {

bool succeeds(const std::vector<Job>& jobs, int dim,
              const OnlineConfig& config, OnlineMetrics* metrics_out) {
  OnlineSimulation sim(dim, config);
  const bool ok = sim.run(jobs);
  if (metrics_out != nullptr) *metrics_out = sim.metrics();
  return ok;
}

}  // namespace

CapacitySearchResult find_min_online_capacity(const std::vector<Job>& jobs,
                                              int dim, std::uint64_t seed,
                                              double tol) {
  CMVRP_CHECK(!jobs.empty());
  CMVRP_CHECK(tol > 0.0);
  const DemandMap demand = demand_of_stream(jobs, dim);
  OnlineConfig config = default_online_config(demand, seed);
  const CubeBound cb = cube_bound(demand);

  CapacitySearchResult result;
  result.omega_c = cb.omega_c;
  result.won_theory = won_upper_bound(cb.omega_c, dim);

  // Bracket: serving even one job costs >= 1, and replacements need
  // travel, so start the lower end at 0; grow the upper end until the
  // strategy succeeds (the theory bound should already work).
  double hi = std::max(result.won_theory, 4.0);
  config.capacity = hi;
  OnlineMetrics hi_metrics;
  ++result.simulations;
  while (!succeeds(jobs, dim, config, &hi_metrics)) {
    hi *= 2.0;
    CMVRP_CHECK_MSG(hi < 1e12, "online strategy never succeeded");
    config.capacity = hi;
    ++result.simulations;
  }
  result.at_minimum = hi_metrics;

  double lo = 0.0;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    config.capacity = mid;
    OnlineMetrics m;
    ++result.simulations;
    if (succeeds(jobs, dim, config, &m)) {
      hi = mid;
      result.at_minimum = m;
    } else {
      lo = mid;
    }
  }
  result.won_empirical = hi;
  return result;
}

}  // namespace cmvrp
