// Cube partition, chessboard coloring, and black–white pairing (§3.2).
//
// Z^ℓ is tiled by side-s cubes anchored at a fixed point. Inside each cube,
// vertices are ordered along a boustrophedon ("snake") walk in which
// consecutive vertices are grid-adjacent; pairing snake-index 2k with 2k+1
// yields adjacent pairs of opposite chessboard color — exactly the paper's
// black–white pairs, with at most one unpaired vertex when s^ℓ is odd
// (the paper's "single black vertex left unpaired"; it serves itself).
//
// The pair's *primary* vertex (even snake index) identifies the pair and
// hosts the initially-active vehicle; its partner starts idle.
//
// Complexity: snake_index / snake_vertex / partner are O(ℓ) arithmetic
// (no tables); primaries_in_cube enumerates O(s^ℓ / 2) vertices.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/box.h"
#include "grid/point.h"

namespace cmvrp {

class CubePairing {
 public:
  CubePairing(int dim, Point anchor, std::int64_t side);

  int dim() const { return dim_; }
  std::int64_t side() const { return side_; }
  std::int64_t cube_volume() const { return volume_; }

  // Corner of the partition cube containing p.
  Point cube_corner(const Point& p) const;
  Box cube_of(const Point& p) const {
    return Box::cube(cube_corner(p), side_);
  }

  // Snake index of p within its cube, in [0, side^ℓ).
  std::int64_t snake_index(const Point& p) const;

  // Hot-path overload: `corner` must equal cube_corner(p). The serving
  // core resolves the corner once per arrival and threads it through, so
  // the snake/pair queries skip their own floor-divides.
  std::int64_t snake_index(const Point& p, const Point& corner) const;

  // Inverse: the vertex with snake index k in the cube with corner
  // `corner`.
  Point snake_vertex(const Point& corner, std::int64_t k) const;

  // The pair partner (equal to p itself for the odd singleton).
  Point partner(const Point& p) const;
  Point partner(const Point& p, const Point& corner) const;

  // True when p hosts the initially-active vehicle of its pair.
  bool is_primary(const Point& p) const { return snake_index(p) % 2 == 0; }

  // Pair identifier: the primary vertex.
  Point primary(const Point& p) const {
    return is_primary(p) ? p : partner(p);
  }
  // Corner-threaded variant (`corner` must equal cube_corner(p)).
  Point primary(const Point& p, const Point& corner) const {
    const std::int64_t k = snake_index(p, corner);
    if (k % 2 == 0) return p;
    const std::int64_t mate = k ^ 1;
    if (mate >= cube_volume()) return p;  // odd singleton
    return snake_vertex(corner, mate);
  }

  bool is_singleton(const Point& p) const { return partner(p) == p; }

  // All primary vertices of the cube containing p (one per pair).
  std::vector<Point> primaries_in_cube(const Point& corner) const;

 private:
  int dim_;
  Point anchor_;
  std::int64_t side_;
  std::int64_t volume_;  // side_^dim_, precomputed (hot-path constant)
};

}  // namespace cmvrp
