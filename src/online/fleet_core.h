// The per-cube serving/replacement core of the Chapter 3 strategy.
//
// FleetCore owns the vehicle fleet and the full protocol state machine —
// job service (§3.2.2), Phase I diffusing computations (Algorithm 2),
// Phase II move relays, and the §3.2.5 monitoring ring — over whatever
// cubes it is asked to materialize. It is deliberately agnostic about
// *scheduling*: the event queue and message network are borrowed by
// reference, so the same core drives
//   * the legacy OnlineSimulation (one global queue, one network RNG,
//     all cubes in one core), and
//   * the sharded streaming engine (one core per cube, each with its own
//     queue and per-cube seeded network — see src/stream/).
// Every protocol action is strictly intra-cube (neighbor lists never
// cross a cube boundary), which is what makes the per-cube split exact
// rather than approximate.
//
// Complexity: serving a job is O(1) plus amortized replacement cost; each
// Phase I diffusing computation floods the O(s^ℓ) vehicles of one cube
// through radius-r neighbor lists (O(s^ℓ · (2r+1)^ℓ) messages, realizing
// Lemma 3.3.1's bounded-search claim), and Phase II relays one move
// message along the computation tree. Vehicles materialize lazily, so
// memory is O(touched cubes · s^ℓ).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "grid/box.h"
#include "grid/neighborhood.h"
#include "grid/point.h"
#include "obs/counters.h"
#include "obs/span.h"
#include "online/pairing.h"
#include "online/vehicle.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "util/flat_map.h"
#include "util/hash.h"
#include "workload/generators.h"

namespace cmvrp {

// What a cube does with arrivals while its serving slot is occupied —
// the overload axis of the streaming engine (src/stream/shard.h holds
// the mechanics; FleetCore itself always serves what it is handed).
// kUnbounded is the historical behavior: every arrival is served the
// instant it lands. The bounded policies model a per-cube admission
// queue on the global arrival-index clock (§1.3's t_1 < t_2 < … with
// unit gaps): each admitted job occupies the cube for `service_ticks`
// of that clock, at most `queue_limit` jobs wait, and the policy picks
// the victim when the queue is full.
enum class AdmissionPolicy : std::uint8_t {
  kUnbounded = 0,  // serve immediately on arrival (no queue, no drops)
  kReject = 1,     // bounded queue; refuse the incoming job when full
  kShed = 2,       // bounded queue; evict the oldest waiting job when full
};

struct OnlineConfig {
  double capacity = 0.0;          // W, per vehicle
  std::int64_t cube_side = 2;     // s = max(2, ⌈ω_c⌉) by the capacity search
  Point anchor;                   // partition anchor
  std::int64_t neighbor_radius = 2;   // communication radius (§3.2: "2")
  SimTime max_message_delay = 3;      // extra random per-message delay
  std::uint64_t seed = 1;
  bool enable_monitoring = true;  // §3.2.5 monitoring ring
  // Arrivals between monitoring settles, per serving unit (a cube in the
  // streaming engine, the whole fleet in the legacy simulator). 1 = sweep
  // after every arrival (the paper's long-gap reading, and the historical
  // behavior); larger strides amortize the heartbeat ring across batched
  // arrivals — the §3.2.5 failure-detection latency grows to at most
  // `monitor_stride` arrivals, but the serving outcome of failure-free
  // streams is unchanged (heartbeats are protocol no-ops). The cadence is
  // a pure function of each cube's arrival subsequence, so the streaming
  // engine's bit-identical contract across thread counts AND batch sizes
  // survives any stride.
  std::int64_t monitor_stride = 1;
  // Admission control (stream engine only; ignored by the legacy
  // simulator). With a bounded policy, each cube runs a FIFO backlog of
  // at most queue_limit jobs on the arrival-index clock, one service
  // per service_ticks — all scheduling is a pure function of the cube's
  // arrival subsequence, so the bit-identical contract holds with the
  // queues on. kUnbounded leaves the historical serve path untouched.
  AdmissionPolicy admission = AdmissionPolicy::kUnbounded;
  std::int64_t queue_limit = 8;    // max waiting jobs per cube (>= 1)
  std::int64_t service_ticks = 4;  // arrival ticks one service occupies (>= 1)
  // Timeseries sampling: every sample_stride arrivals of a cube, record
  // its backlog depth and fleet occupancy (0 = off, the default — the
  // occupancy probe is an O(vehicles) scan, amortized by the stride).
  std::int64_t sample_stride = 0;
  // Observability switches (src/obs/): Tier-A counter collection is off
  // by default so the serve hot path pays nothing for the layer. Every
  // obs-gated quantity is a pure function of the cube's arrival
  // subsequence, so turning it on cannot change serving outcomes.
  ObsConfig obs;
};

// Sim-time lifecycle of one arrival (§3.2: arrival → Phase I assignment
// → serve), in the serving cube's protocol clock. arrived_at is the
// clock when serve_job ran; assigned_at is when the vehicle that handled
// the job was installed into its pair slot (the Phase II move-completion
// time for replacement vehicles, the cube's materialization time for the
// initial active fleet) — so arrived_at − assigned_at says how long the
// assignment predated the job, and done_at − arrived_at is the
// replacement cascade the job itself triggered (captured by the caller
// after the queue drains; FleetCore initializes it to arrived_at).
// queue_wait is the admission-layer wait on the global arrival-index
// clock, 0 unless a bounded policy deferred the job. Failed jobs carry
// assigned_at = done_at = arrived_at. latency() is the user-visible
// total: admission wait plus the serve-time protocol work.
struct JobTiming {
  SimTime arrived_at = 0;
  SimTime assigned_at = 0;
  SimTime done_at = 0;
  SimTime queue_wait = 0;

  SimTime latency() const { return queue_wait + (done_at - arrived_at); }

  friend bool operator==(const JobTiming& a, const JobTiming& b) {
    return a.arrived_at == b.arrived_at && a.assigned_at == b.assigned_at &&
           a.done_at == b.done_at && a.queue_wait == b.queue_wait;
  }
};

struct OnlineMetrics {
  std::uint64_t jobs_served = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t replacements = 0;           // completed Phase II relocations
  std::uint64_t computations_started = 0;   // Phase I initiations
  std::uint64_t computations_failed = 0;    // no idle vehicle found
  std::uint64_t monitor_initiations = 0;    // ring-triggered computations
  NetworkStats network;
  double max_energy_spent = 0.0;            // over all vehicles
  double total_energy_spent = 0.0;
  std::uint64_t total_travel = 0;

  // Folds `other` into this (sums, max for max_energy_spent). Callers who
  // need bit-identical totals must merge in a deterministic order (the
  // stream engine folds shards by ascending cube corner).
  void merge(const OnlineMetrics& other) {
    jobs_served += other.jobs_served;
    jobs_failed += other.jobs_failed;
    replacements += other.replacements;
    computations_started += other.computations_started;
    computations_failed += other.computations_failed;
    monitor_initiations += other.monitor_initiations;
    network.merge(other.network);
    if (other.max_energy_spent > max_energy_spent)
      max_energy_spent = other.max_energy_spent;
    total_energy_spent += other.total_energy_spent;
    total_travel += other.total_travel;
  }

  friend bool operator==(const OnlineMetrics& a, const OnlineMetrics& b) {
    return a.jobs_served == b.jobs_served && a.jobs_failed == b.jobs_failed &&
           a.replacements == b.replacements &&
           a.computations_started == b.computations_started &&
           a.computations_failed == b.computations_failed &&
           a.monitor_initiations == b.monitor_initiations &&
           a.network == b.network &&
           a.max_energy_spent == b.max_energy_spent &&
           a.total_energy_spent == b.total_energy_spent &&
           a.total_travel == b.total_travel;
  }
  friend bool operator!=(const OnlineMetrics& a, const OnlineMetrics& b) {
    return !(a == b);
  }
};

class FleetCore {
 public:
  // `queue` and `network` are borrowed; the owner must bind this core as
  // the network receiver (see bind_network) and outlive it.
  FleetCore(int dim, const OnlineConfig& config, EventQueue& queue,
            Network& network);

  // Installs on_message as `network`'s receiver.
  void bind_network();

  // Optional Tier-C span hook (borrowed; may be null). Wire before
  // serving; the recorder sees computation start/finish, relay hops,
  // cascade steps, and serve-begin anchors on the cube protocol clock.
  void set_spans(SpanRecorder* spans) { spans_ = spans; }

  // Failure injection (call before serving).
  void inject_silent_done(const Point& home);        // scenario 2
  void inject_break_after(const Point& home, double longevity);  // p_i < 1

  // Materializes the cube containing `position` (idempotent).
  void ensure_cube_at(const Point& position);

  // Serves one arrival; returns true when the job was served. The caller
  // drains the queue afterwards (the paper's long inter-arrival gaps).
  bool serve_job(const Job& job);

  // Hot-path overload for callers that already routed the job:
  // `cube_corner` must equal pairing().cube_corner(job.position), which
  // lets the serve path skip its own floor-divides, and the containing
  // cube must already be materialized (ensure_cube_at) — the streaming
  // engine's per-cube servers warm their cube up on first contact, so
  // the steady-state path pays no membership probe per arrival.
  bool serve_job(const Job& job, const Point& cube_corner);

  // One §3.2.5 heartbeat + timeout round over every materialized cube.
  void monitor_sweep();

  // Drain + repeated monitor rounds until no new ring initiations (a
  // replacement can itself break); bounded by `max_rounds`.
  void settle(int max_rounds = 8);

  // Copies network stats and the per-vehicle energy aggregates into
  // metrics(). Call once serving is finished (idempotent).
  void finalize_metrics();

  const OnlineMetrics& metrics() const { return metrics_; }
  const CubePairing& pairing() const { return pairing_; }
  const OnlineConfig& config() const { return config_; }

  // Lifecycle timestamps of the most recent serve_job call (valid until
  // the next one). done_at is initialized to arrived_at; callers that
  // drain the queue afterwards stamp the real completion time there.
  JobTiming last_timing() const { return last_timing_; }

  // Share of materialized vehicles that are done or dead, in permille —
  // the fleet-occupancy signal the timeseries sampler records. O(fleet).
  std::int64_t exhausted_permille() const;

  // Tier-A observability accessors (src/obs/); all zero unless
  // config().obs.counters is on. comps_finished counts every
  // finish_phase_one (successful or not); max_queries_per_comp is the
  // largest Query fan-out any one diffusing computation produced —
  // Lemma 3.3.1 bounds it by s^ℓ · (2r+1)^ℓ. The running max is
  // updated at every query batch (not only at finish) because a
  // delayed query can trigger a relay after its initiator finished.
  std::uint64_t obs_comps_finished() const { return obs_comps_finished_; }
  std::uint64_t obs_max_queries_per_comp() const {
    return obs_max_queries_per_comp_;
  }

  // Introspection for tests.
  const Vehicle* vehicle_at_home(const Point& home) const;
  std::size_t vehicle_count() const { return vehicles_.size(); }
  std::optional<std::size_t> active_of_pair(const Point& any_member) const;

  void on_message(std::size_t to, std::size_t from, const Message& m);

 private:
  // Flat per-cube serving state: pair slot k/2 (k = snake index of either
  // pair member) -> id of the pair's current active vehicle, SIZE_MAX
  // when the slot has none. Replaces the Point-keyed active_of_ map: the
  // serve path already computes the snake index, so the active lookup is
  // one array read instead of a hash probe — and the §3.2.5 sweep scans
  // the slots in primaries_of order without touching a map at all. The
  // map was never iterated, so the swap is observation-equivalent.
  struct CubeState {
    std::vector<std::size_t> active_by_pair;
    // When each slot's current active vehicle was installed (cube clock):
    // the Phase II move-completion time for replacements, the cube's
    // materialization time for the initial fleet — the "assignment"
    // timestamp of every job the slot subsequently serves.
    std::vector<SimTime> active_since;
  };

  std::size_t ensure_vehicle(const Point& home, const Point& corner);
  void ensure_cube(const Point& corner);
  CubeState& state_of(const Point& corner);
  // Fills `out` with vid's radius-r cube-local neighbors (callers pass a
  // reused scratch buffer; the serve path runs one of these per protocol
  // message, so per-call vector churn was measurable).
  void neighbors_into(std::size_t vid, std::vector<std::size_t>& out) const;
  // The pairing's primaries for `corner`, computed once per cube and
  // cached: the list is a pure function of the corner, and monitor_sweep
  // re-enumerated it on every settle.
  const std::vector<Point>& primaries_of(const Point& corner);
  void check_longevity(Vehicle& v);

  // Attributes `count` Query sends to computation `init` and updates
  // the running per-computation max (obs-gated; callers check).
  void obs_note_queries(const InitTag& init, std::size_t count);

  void after_serving(std::size_t vid, const Point& cube_corner);
  void initiate_computation(std::size_t initiator, const Point& dest);
  void on_query(std::size_t vid, std::size_t from, const QueryMsg& q);
  void on_reply(std::size_t vid, std::size_t from, const ReplyMsg& r);
  void on_move(std::size_t vid, std::size_t from, const MoveMsg& m);
  void finish_phase_one(std::size_t vid);
  void spend_travel(Vehicle& v, std::int64_t dist);
  void note_done(Vehicle& v, const Point& cube_corner, const Point& primary);

  int dim_;
  OnlineConfig config_;
  CubePairing pairing_;
  EventQueue& queue_;
  Network& network_;

  std::vector<Vehicle> vehicles_;
  std::unordered_map<Point, std::size_t, PointHash> by_home_;
  // Cube corner -> flat active-pair slots (see CubeState). The one-entry
  // cache skips the hash probe on repeated same-cube access — always, for
  // the streaming engine's single-cube cores (unordered_map element
  // references are rehash-stable, so the pointer stays valid).
  std::unordered_map<Point, CubeState, PointHash> cube_state_;
  Point state_corner_;
  CubeState* state_cache_ = nullptr;
  // Pair primary -> a replacement request is in flight.
  std::unordered_map<Point, bool, PointHash> replacement_pending_;
  // Done/dead vehicle id -> the pair primary it was serving (so the
  // arriving replacement can register itself).
  std::unordered_map<Point, Point, PointHash> pair_of_dest_;
  // Initiator vehicle -> destination its Phase II move must carry.
  std::unordered_map<std::size_t, Point> initiator_dest_;
  // Pair slots whose cube ran out of idle vehicles: a failed search can
  // never succeed later (vehicles never return to idle), so the ring must
  // not retry them. Jobs arriving there are reported failed immediately.
  PointSet unrecoverable_;
  // Cubes already materialized (corner points).
  PointSet cubes_;
  // Cube corner -> ids of the vehicles whose position lies in that cube.
  std::unordered_map<Point, std::vector<std::size_t>, PointHash>
      cube_members_;
  // Pending failure injections keyed by home vertex.
  std::unordered_map<Point, double, PointHash> longevity_;
  PointSet silent_homes_;
  // Cube corner -> its pairing primaries (pure function of the corner),
  // with a one-entry cache in front for the sweep loop (same rationale —
  // and same rehash-stability argument — as the CubeState cache above).
  std::unordered_map<Point, std::vector<Point>, PointHash> primaries_cache_;
  Point primaries_corner_;
  const std::vector<Point>* primaries_last_ = nullptr;
  // Reused scratch buffers for the message hot path and monitor sweeps.
  std::vector<std::size_t> neighbor_scratch_;
  std::vector<std::size_t> ring_scratch_;

  // Tier-A observability state (all obs-gated). Query counts are keyed
  // by packed InitTag; entries are never erased — a late relay may add
  // to a finished computation — and stay bounded by computations per
  // cube (~16 bytes each).
  FlatMap<std::uint64_t, std::uint64_t, U64Hash> obs_comp_queries_;
  std::uint64_t obs_comps_finished_ = 0;
  std::uint64_t obs_max_queries_per_comp_ = 0;

  // Tier-C span hook (borrowed; null unless ObsConfig::spans).
  SpanRecorder* spans_ = nullptr;

  OnlineMetrics metrics_;
  JobTiming last_timing_;
};

// Theoretical online capacity bound (Lemma 3.3.1): (4·3^ℓ + ℓ)·ω_c.
double won_upper_bound(double omega_c, int dim);

}  // namespace cmvrp
