// The decentralized online strategy of Chapter 3, run over the
// discrete-event simulator.
//
// Structure (§3.2.2): jobs are served by the active vehicle of the
// arriving vertex's pair (walk ≤ 1). When an active vehicle exhausts its
// energy it becomes *done* and initiates a Phase I diffusing computation
// (Algorithm 2, after Dijkstra–Scholten) over the vehicles of its cube to
// locate an idle replacement; Phase II relays a move message along the
// computation tree's child path, and the idle vehicle relocates and takes
// over the pair. A monitoring ring (§3.2.5) catches vehicles that die (or
// fail to initiate) and starts the computation on their behalf.
//
// The protocol state machine itself lives in online/fleet_core.h so the
// same per-cube serving/replacement logic also drives the sharded
// streaming engine (src/stream/). OnlineSimulation is the legacy
// single-queue harness around one FleetCore holding every cube: one
// global EventQueue, one Network with one seeded RNG, drained to
// quiescence after every arrival — realizing the paper's timing
// assumption that inter-arrival gaps are long enough for any computation
// and movement.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "grid/point.h"
#include "online/fleet_core.h"
#include "online/pairing.h"
#include "online/vehicle.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "workload/generators.h"

namespace cmvrp {

class OnlineSimulation {
 public:
  OnlineSimulation(int dim, const OnlineConfig& config);

  // Failure injection (call before run()).
  void inject_silent_done(const Point& home);        // scenario 2
  void inject_break_after(const Point& home, double longevity);  // p_i < 1

  // Runs the whole job stream; returns true when every job was served.
  bool run(const std::vector<Job>& jobs);

  const OnlineMetrics& metrics() const { return core_.metrics(); }
  const CubePairing& pairing() const { return core_.pairing(); }

  // Introspection for tests.
  const Vehicle* vehicle_at_home(const Point& home) const {
    return core_.vehicle_at_home(home);
  }
  std::size_t vehicle_count() const { return core_.vehicle_count(); }
  std::optional<std::size_t> active_of_pair(const Point& any_member) const {
    return core_.active_of_pair(any_member);
  }

 private:
  EventQueue queue_;
  Network network_;
  FleetCore core_;
};

}  // namespace cmvrp
