#include "online/fleet_core.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cmvrp {

double won_upper_bound(double omega_c, int dim) {
  return (4.0 * std::pow(3.0, static_cast<double>(dim)) +
          static_cast<double>(dim)) *
         omega_c;
}

FleetCore::FleetCore(int dim, const OnlineConfig& config, EventQueue& queue,
                     Network& network)
    : dim_(dim),
      config_(config),
      pairing_(dim, config.anchor, config.cube_side),
      queue_(queue),
      network_(network) {
  CMVRP_CHECK(config.capacity >= 0.0);
  CMVRP_CHECK_MSG(config.cube_side >= 2,
                  "cube side must be >= 2 so every pair has an idle partner");
  CMVRP_CHECK_MSG(config.monitor_stride >= 1,
                  "monitor stride must be >= 1 arrival between sweeps");
  if (config.admission != AdmissionPolicy::kUnbounded) {
    CMVRP_CHECK_MSG(config.queue_limit >= 1,
                    "bounded admission needs a queue limit >= 1");
    CMVRP_CHECK_MSG(config.service_ticks >= 1,
                    "bounded admission needs service ticks >= 1");
  }
  CMVRP_CHECK_MSG(config.sample_stride >= 0,
                  "sample stride must be >= 0 (0 = off)");
}

void FleetCore::bind_network() {
  network_.set_receiver([this](std::size_t to, std::size_t from,
                               const Message& m) { on_message(to, from, m); });
}

void FleetCore::inject_silent_done(const Point& home) {
  silent_homes_.insert(home);
  auto it = by_home_.find(home);
  if (it != by_home_.end()) vehicles_[it->second].silent_done = true;
}

void FleetCore::inject_break_after(const Point& home, double longevity) {
  CMVRP_CHECK(longevity >= 0.0 && longevity <= 1.0);
  longevity_[home] = longevity;
  auto it = by_home_.find(home);
  if (it != by_home_.end() && longevity == 0.0)
    vehicles_[it->second].dead = true;
}

std::size_t FleetCore::ensure_vehicle(const Point& home, const Point& corner) {
  auto it = by_home_.find(home);
  if (it != by_home_.end()) return it->second;
  const std::int64_t k = pairing_.snake_index(home, corner);
  Vehicle v;
  v.id = vehicles_.size();
  v.home = home;
  v.pos = home;
  v.capacity = config_.capacity;
  v.s1 = k % 2 == 0 ? WorkState::kActive : WorkState::kIdle;
  v.s2 = TransferState::kWaiting;
  if (silent_homes_.count(home)) v.silent_done = true;
  auto lg = longevity_.find(home);
  if (lg != longevity_.end() && lg->second == 0.0) v.dead = true;
  vehicles_.push_back(v);
  by_home_.emplace(home, v.id);
  cube_members_[corner].push_back(v.id);
  // Register the vehicle's pair slot with the span recorder (the Chrome
  // exporter's tid axis) — for every vehicle, not just active ones: idle
  // vehicles appear in traces as relays and replacements.
  if (spans_ != nullptr) spans_->note_vehicle_pair(v.id, k / 2);
  if (v.s1 == WorkState::kActive && !v.dead) {
    CubeState& st = state_of(corner);
    const auto slot = static_cast<std::size_t>(k / 2);
    st.active_by_pair[slot] = v.id;
    st.active_since[slot] = queue_.now();
  }
  return v.id;
}

FleetCore::CubeState& FleetCore::state_of(const Point& corner) {
  if (state_cache_ != nullptr && corner == state_corner_)
    return *state_cache_;
  auto it = cube_state_.find(corner);
  CMVRP_CHECK_MSG(it != cube_state_.end(),
                  "cube state accessed before materialization");
  state_corner_ = corner;
  state_cache_ = &it->second;
  return it->second;
}

void FleetCore::ensure_cube(const Point& corner) {
  if (!cubes_.insert(corner).second) return;
  auto& state = cube_state_[corner];
  const auto pairs =
      static_cast<std::size_t>((pairing_.cube_volume() + 1) / 2);
  state.active_by_pair.assign(pairs, SIZE_MAX);
  state.active_since.assign(pairs, 0);
  Box::cube(corner, pairing_.side()).for_each_point([this, &corner](
      const Point& p) { ensure_vehicle(p, corner); });
}

void FleetCore::ensure_cube_at(const Point& position) {
  ensure_cube(pairing_.cube_corner(position));
}

void FleetCore::neighbors_into(std::size_t vid,
                               std::vector<std::size_t>& out) const {
  out.clear();
  const Vehicle& v = vehicles_[vid];
  const Point corner = pairing_.cube_corner(v.pos);
  auto it = cube_members_.find(corner);
  if (it == cube_members_.end()) return;
  for (std::size_t other : it->second) {
    if (other == vid) continue;
    const Vehicle& o = vehicles_[other];
    if (l1_distance(o.pos, v.pos) <= config_.neighbor_radius)
      out.push_back(other);
  }
}

const std::vector<Point>& FleetCore::primaries_of(const Point& corner) {
  if (primaries_last_ != nullptr && corner == primaries_corner_)
    return *primaries_last_;
  auto it = primaries_cache_.find(corner);
  if (it == primaries_cache_.end())
    it = primaries_cache_.emplace(corner, pairing_.primaries_in_cube(corner))
             .first;
  primaries_corner_ = corner;
  primaries_last_ = &it->second;  // node-based map: rehash-stable
  return it->second;
}

void FleetCore::spend_travel(Vehicle& v, std::int64_t dist) {
  v.spent_travel += static_cast<double>(dist);
  metrics_.total_travel += static_cast<std::uint64_t>(dist);
  check_longevity(v);
}

void FleetCore::check_longevity(Vehicle& v) {
  // Runs twice per served job; streams with no longevity injections at
  // all (the common case) must not pay a hash probe for it.
  if (longevity_.empty()) return;
  auto it = longevity_.find(v.home);
  if (it == longevity_.end() || v.dead) return;
  if (v.spent() >= it->second * v.capacity - 1e-9) v.dead = true;
}

void FleetCore::note_done(Vehicle& v, const Point& cube_corner,
                          const Point& primary) {
  v.s1 = WorkState::kDone;
  auto& slot = state_of(cube_corner).active_by_pair[static_cast<std::size_t>(
      pairing_.snake_index(primary, cube_corner) / 2)];
  if (slot == v.id) slot = SIZE_MAX;
  pair_of_dest_[v.pos] = primary;
}

bool FleetCore::serve_job(const Job& job) {
  const Point corner = pairing_.cube_corner(job.position);
  ensure_cube(corner);
  return serve_job(job, corner);
}

bool FleetCore::serve_job(const Job& job, const Point& cube_corner) {
  CMVRP_CHECK(job.position.dim() == dim_);
  const SimTime now = queue_.now();
  last_timing_ = JobTiming{now, now, now, 0};
  const std::int64_t k = pairing_.snake_index(job.position, cube_corner);
  CubeState& st = state_of(cube_corner);
  const auto pair_slot = static_cast<std::size_t>(k / 2);
  const std::size_t vid = st.active_by_pair[pair_slot];
  if (spans_ != nullptr) spans_->serve_begin(now, vid, job.index);
  if (vid == SIZE_MAX) {
    ++metrics_.jobs_failed;
    return false;
  }
  Vehicle& v = vehicles_[vid];
  if (!v.can_serve()) {
    ++metrics_.jobs_failed;
    return false;
  }
  const std::int64_t dist = l1_distance(v.pos, job.position);
  if (v.remaining() < static_cast<double>(dist) + 1.0) {
    // The vehicle should have declared itself done before this point; an
    // undersized capacity surfaces here as a failed job.
    ++metrics_.jobs_failed;
    return false;
  }
  last_timing_.assigned_at = st.active_since[pair_slot];
  spend_travel(v, dist);
  v.pos = job.position;
  v.spent_service += 1.0;
  check_longevity(v);
  ++metrics_.jobs_served;
  after_serving(v.id, cube_corner);
  return true;
}

void FleetCore::after_serving(std::size_t vid, const Point& cube_corner) {
  // Fast exit for the common case (vehicle healthy, not exhausted): the
  // pair primary is only resolved on the rare done/dead branches.
  Vehicle& v = vehicles_[vid];
  if (v.dead) {
    // Broke mid-service (longevity): the monitoring ring must notice.
    const Point primary = pairing_.primary(v.pos, cube_corner);
    auto& slot =
        state_of(cube_corner).active_by_pair[static_cast<std::size_t>(
            pairing_.snake_index(primary, cube_corner) / 2)];
    if (slot == vid) slot = SIZE_MAX;
    pair_of_dest_[v.pos] = primary;
    return;
  }
  if (!v.exhausted()) return;
  const Point dest = v.pos;
  const Point primary = pairing_.primary(dest, cube_corner);
  note_done(v, cube_corner, primary);
  if (v.silent_done) return;  // scenario 2: never initiates
  replacement_pending_[primary] = true;
  initiate_computation(vid, dest);
}

void FleetCore::initiate_computation(std::size_t initiator,
                                     const Point& dest) {
  Vehicle& v = vehicles_[initiator];
  v.s2 = TransferState::kInitiator;
  v.par = SIZE_MAX;
  v.child = SIZE_MAX;
  v.init = InitTag{initiator, ++v.init_seq};
  initiator_dest_[initiator] = dest;
  ++metrics_.computations_started;
  auto& nb = neighbor_scratch_;
  neighbors_into(initiator, nb);
  v.num = static_cast<int>(nb.size());
  // The span must open before the sends (and before the degenerate
  // immediate finish) so every record tagged with this InitTag finds its
  // sampling decision already made.
  if (spans_ != nullptr)
    spans_->comp_start(queue_.now(), packed_init(v.init), initiator,
                       nb.size());
  if (nb.empty()) {
    v.s2 = TransferState::kWaiting;
    finish_phase_one(initiator);
    return;
  }
  for (std::size_t q : nb) network_.send(initiator, q, QueryMsg{v.init, 1});
  if (config_.obs.counters) obs_note_queries(v.init, nb.size());
}

void FleetCore::obs_note_queries(const InitTag& init, std::size_t count) {
  // Packed key: vehicle ids are dense fleet indices and init_seq counts
  // one vehicle's computations — both far below 2^32 for any cube.
  CMVRP_CHECK_MSG(init.vehicle < (1ull << 32) && init.seq < (1ull << 32),
                  "InitTag exceeds obs key packing");
  std::uint64_t& total =
      obs_comp_queries_[(static_cast<std::uint64_t>(init.vehicle) << 32) |
                        init.seq];
  total += static_cast<std::uint64_t>(count);
  if (total > obs_max_queries_per_comp_) obs_max_queries_per_comp_ = total;
}

void FleetCore::on_message(std::size_t to, std::size_t from,
                           const Message& m) {
  switch (m.index()) {
    case 0:
      on_query(to, from, std::get<QueryMsg>(m));
      break;
    case 1:
      on_reply(to, from, std::get<ReplyMsg>(m));
      break;
    case 2:
      on_move(to, from, std::get<MoveMsg>(m));
      break;
    case 3:
      break;  // heartbeats are counted by the network; no protocol action
  }
}

void FleetCore::on_query(std::size_t vid, std::size_t from,
                         const QueryMsg& q) {
  Vehicle& v = vehicles_[vid];
  if (v.s2 == TransferState::kWaiting && v.init != q.init) {
    v.par = from;
    v.init = q.init;
    v.child = SIZE_MAX;
    if (v.s1 == WorkState::kIdle && !v.dead) {
      network_.send(vid, from, ReplyMsg{true, q.init});
      return;
    }
    // Active, done, or broken vehicles relay the search.
    v.s2 = TransferState::kSearching;
    auto& nb = neighbor_scratch_;
    neighbors_into(vid, nb);
    v.num = static_cast<int>(nb.size());
    if (v.num == 0) {
      // Degenerate: nobody else to ask.
      v.s2 = TransferState::kWaiting;
      network_.send(vid, from, ReplyMsg{false, q.init});
      return;
    }
    for (std::size_t n : nb)
      network_.send(vid, n, QueryMsg{q.init, q.hop + 1});
    if (config_.obs.counters) obs_note_queries(q.init, nb.size());
    if (spans_ != nullptr)
      spans_->relay(queue_.now(), packed_init(q.init), vid, from, q.hop,
                    nb.size());
    return;
  }
  network_.send(vid, from, ReplyMsg{false, q.init});
}

void FleetCore::on_reply(std::size_t vid, std::size_t from,
                         const ReplyMsg& r) {
  Vehicle& v = vehicles_[vid];
  if (r.init != v.init) return;  // stale reply from an abandoned search
  CMVRP_CHECK_MSG(v.num > 0, "reply without outstanding query");
  --v.num;
  if (r.flag && v.child == SIZE_MAX) {
    v.child = from;
    if (v.s2 == TransferState::kSearching)
      network_.send(vid, v.par, ReplyMsg{true, v.init});
  }
  if (v.num == 0) {
    if (v.s2 == TransferState::kSearching) {
      v.s2 = TransferState::kWaiting;
      if (v.child == SIZE_MAX)
        network_.send(vid, v.par, ReplyMsg{false, v.init});
    } else if (v.s2 == TransferState::kInitiator) {
      v.s2 = TransferState::kWaiting;
      finish_phase_one(vid);
    }
  }
}

void FleetCore::finish_phase_one(std::size_t vid) {
  if (config_.obs.counters) ++obs_comps_finished_;
  Vehicle& v = vehicles_[vid];
  if (spans_ != nullptr)
    spans_->comp_finish(queue_.now(), packed_init(v.init), vid,
                        v.child != SIZE_MAX);
  auto dest_it = initiator_dest_.find(vid);
  CMVRP_CHECK(dest_it != initiator_dest_.end());
  const Point dest = dest_it->second;
  initiator_dest_.erase(dest_it);
  if (v.child == SIZE_MAX) {
    ++metrics_.computations_failed;
    auto pit = pair_of_dest_.find(dest);
    if (pit != pair_of_dest_.end()) {
      replacement_pending_[pit->second] = false;
      // No idle vehicle exists in this cube any more, and none will ever
      // reappear — retrying the search would livelock the ring.
      unrecoverable_.insert(pit->second);
    }
    return;
  }
  network_.send(vid, v.child, MoveMsg{dest, v.init});
}

void FleetCore::on_move(std::size_t vid, std::size_t from, const MoveMsg& m) {
  Vehicle& v = vehicles_[vid];
  if (v.s1 == WorkState::kIdle && !v.dead) {
    const std::int64_t dist = l1_distance(v.pos, m.dest);
    if (v.remaining() < static_cast<double>(dist)) {
      // Cannot afford the relocation; treat as a failed computation so the
      // monitoring ring can retry with another vehicle.
      ++metrics_.computations_failed;
      auto pit = pair_of_dest_.find(m.dest);
      if (pit != pair_of_dest_.end())
        replacement_pending_[pit->second] = false;
      return;
    }
    spend_travel(v, dist);
    v.pos = m.dest;
    if (v.dead) {  // longevity tripped mid-move
      auto pit = pair_of_dest_.find(m.dest);
      if (pit != pair_of_dest_.end())
        replacement_pending_[pit->second] = false;
      return;
    }
    v.s1 = WorkState::kActive;
    auto pit = pair_of_dest_.find(m.dest);
    CMVRP_CHECK_MSG(pit != pair_of_dest_.end(),
                    "move destination has no registered pair");
    const Point primary = pit->second;
    const Point corner = pairing_.cube_corner(primary);
    CubeState& st = state_of(corner);
    const auto pair_slot = static_cast<std::size_t>(
        pairing_.snake_index(primary, corner) / 2);
    st.active_by_pair[pair_slot] = vid;
    st.active_since[pair_slot] = queue_.now();
    replacement_pending_[primary] = false;
    ++metrics_.replacements;
    if (spans_ != nullptr)
      spans_->cascade_step(queue_.now(), packed_init(m.init), vid, from,
                           metrics_.replacements);
    // A replacement that arrives already too drained to accept work hands
    // the pair off immediately (only reachable at undersized capacities).
    if (v.exhausted()) {
      note_done(v, corner, primary);
      if (!v.silent_done) {
        replacement_pending_[primary] = true;
        initiate_computation(vid, m.dest);
      }
    }
    return;
  }
  // Not idle any more (e.g. claimed by a concurrent computation): pass the
  // move along this vehicle's own child path if it has one.
  if (v.child != SIZE_MAX && v.child != vid) {
    network_.send(vid, v.child, m);
    return;
  }
  ++metrics_.computations_failed;
  auto pit = pair_of_dest_.find(m.dest);
  if (pit != pair_of_dest_.end()) replacement_pending_[pit->second] = false;
}

void FleetCore::monitor_sweep() {
  // The "existing"-message ring of §3.2.5: the pair slots of a cube form a
  // loop of monitoring pointers; every healthy active vehicle beacons its
  // ring predecessor, and a slot whose beacon is missing gets a diffusing
  // computation initiated on its behalf by that predecessor.
  for (const auto& corner : cubes_) {
    const auto& primaries = primaries_of(corner);
    // The flat pair-slot array (slot i <-> primaries[i]: both are ordered
    // by ascending even snake index) is read live: one array load per
    // slot, and any replacement a mid-sweep computation activates is
    // visible to later slots with no cache-invalidation bookkeeping.
    auto& active = state_of(corner).active_by_pair;
    auto& ring = ring_scratch_;  // indices into `primaries`
    ring.clear();
    for (std::size_t i = 0; i < primaries.size(); ++i) {
      const std::size_t vid = active[i];
      if (vid == SIZE_MAX) continue;
      const Vehicle& v = vehicles_[vid];
      if (!v.dead && v.s1 == WorkState::kActive) ring.push_back(i);
    }
    if (ring.empty()) continue;  // nobody left to monitor or initiate
    // Heartbeat round: each ring member beacons the previous ring member.
    for (std::size_t k = 0; k < ring.size(); ++k) {
      const auto from = active[ring[k]];
      const auto to = active[ring[(k + ring.size() - 1) % ring.size()]];
      if (from != to) network_.send(from, to, ExistingMsg{});
    }
    // Timeout detection: slots with no healthy active vehicle and no
    // replacement already in flight.
    for (std::size_t i = 0; i < primaries.size(); ++i) {
      const Point& primary = primaries[i];
      if (!unrecoverable_.empty() && unrecoverable_.count(primary)) continue;
      bool needs_replacement = false;
      Point dest = primary;
      const std::size_t vid = active[i];
      if (vid == SIZE_MAX) {
        auto pend = replacement_pending_.find(primary);
        const bool pending =
            pend != replacement_pending_.end() && pend->second;
        if (!pending) {
          needs_replacement = true;
          // Serve position: where the pair's last vehicle stood, if known.
          for (const auto& [dpos, prim] : pair_of_dest_) {
            if (prim == primary) {
              dest = dpos;
              break;
            }
          }
        }
      } else {
        Vehicle& v = vehicles_[vid];
        if (v.dead || v.s1 != WorkState::kActive) {
          active[i] = SIZE_MAX;
          pair_of_dest_[v.pos] = primary;
          dest = v.pos;
          needs_replacement = true;
        }
      }
      if (!needs_replacement) continue;
      // The monitor: the ring predecessor of the victim slot.
      std::size_t monitor_vid = SIZE_MAX;
      for (std::size_t back = 1; back <= primaries.size(); ++back) {
        const std::size_t cand =
            (i + primaries.size() - back) % primaries.size();
        const std::size_t cvid = active[cand];
        if (cvid == SIZE_MAX) continue;
        const Vehicle& cv = vehicles_[cvid];
        if (!cv.dead && cv.s1 == WorkState::kActive &&
            cv.s2 == TransferState::kWaiting) {
          monitor_vid = cvid;
          break;
        }
      }
      if (monitor_vid == SIZE_MAX) continue;  // no healthy monitor left
      pair_of_dest_[dest] = primary;
      replacement_pending_[primary] = true;
      ++metrics_.monitor_initiations;
      initiate_computation(monitor_vid, dest);
      // Serialize: let this computation finish before scanning on, so two
      // concurrent searches never race for the same idle vehicle.
      queue_.run_to_quiescence();
    }
  }
}

void FleetCore::settle(int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    const auto before = metrics_.monitor_initiations;
    monitor_sweep();
    queue_.run_to_quiescence();
    if (metrics_.monitor_initiations == before) break;
  }
}

void FleetCore::finalize_metrics() {
  metrics_.network = network_.stats();
  metrics_.max_energy_spent = 0.0;
  metrics_.total_energy_spent = 0.0;
  for (const auto& v : vehicles_) {
    metrics_.max_energy_spent = std::max(metrics_.max_energy_spent, v.spent());
    metrics_.total_energy_spent += v.spent();
  }
}

std::int64_t FleetCore::exhausted_permille() const {
  if (vehicles_.empty()) return 0;
  std::size_t exhausted = 0;
  for (const auto& v : vehicles_)
    if (v.dead || v.s1 == WorkState::kDone) ++exhausted;
  return static_cast<std::int64_t>((exhausted * 1000) / vehicles_.size());
}

const Vehicle* FleetCore::vehicle_at_home(const Point& home) const {
  auto it = by_home_.find(home);
  return it == by_home_.end() ? nullptr : &vehicles_[it->second];
}

std::optional<std::size_t> FleetCore::active_of_pair(
    const Point& any_member) const {
  const Point corner = pairing_.cube_corner(any_member);
  auto it = cube_state_.find(corner);
  if (it == cube_state_.end()) return std::nullopt;
  const std::size_t vid = it->second.active_by_pair[static_cast<std::size_t>(
      pairing_.snake_index(any_member, corner) / 2)];
  if (vid == SIZE_MAX) return std::nullopt;
  return vid;
}

}  // namespace cmvrp
