#include "online/simulation.h"

#include "util/check.h"
#include "util/rng.h"

namespace cmvrp {

OnlineSimulation::OnlineSimulation(int dim, const OnlineConfig& config)
    : queue_(),
      network_(queue_, Rng(config.seed), config.max_message_delay),
      core_(dim, config, queue_, network_) {
  core_.bind_network();
}

void OnlineSimulation::inject_silent_done(const Point& home) {
  core_.inject_silent_done(home);
}

void OnlineSimulation::inject_break_after(const Point& home,
                                          double longevity) {
  core_.inject_break_after(home, longevity);
}

bool OnlineSimulation::run(const std::vector<Job>& jobs) {
  // The fleet exists everywhere from t = 0; lazy cube creation is only an
  // optimization, so materialize every cube the stream will touch before
  // the first heartbeat round.
  for (const auto& job : jobs) core_.ensure_cube_at(job.position);
  // Heartbeats are periodic and independent of job arrivals (§3.2.5), so
  // vehicles broken from the start are detected before the first job.
  const bool monitoring = core_.config().enable_monitoring;
  if (monitoring && !jobs.empty()) {
    core_.monitor_sweep();
    queue_.run_to_quiescence();
  }
  // Monitoring settles every `monitor_stride` arrivals (1 = after each,
  // the historical cadence), with a catch-up settle after the last job so
  // trailing failures are still detected and replaced.
  std::int64_t since_settle = 0;
  for (const auto& job : jobs) {
    core_.serve_job(job);
    queue_.run_to_quiescence();
    if (monitoring && ++since_settle >= core_.config().monitor_stride) {
      // A replacement can itself break; sweep until stable (bounded).
      core_.settle();
      since_settle = 0;
    }
  }
  if (monitoring && since_settle > 0) core_.settle();
  core_.finalize_metrics();
  return core_.metrics().jobs_failed == 0;
}

}  // namespace cmvrp
