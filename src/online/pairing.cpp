#include "online/pairing.h"

#include "util/check.h"

namespace cmvrp {

CubePairing::CubePairing(int dim, Point anchor, std::int64_t side)
    : dim_(dim), anchor_(anchor), side_(side), volume_(1) {
  CMVRP_CHECK(anchor.dim() == dim);
  CMVRP_CHECK_MSG(side >= 1, "cube side must be positive");
  for (int i = 0; i < dim_; ++i) volume_ *= side_;
}

Point CubePairing::cube_corner(const Point& p) const {
  CMVRP_CHECK(p.dim() == dim_);
  Point c = p;
  for (int i = 0; i < dim_; ++i) {
    const std::int64_t off = p[i] - anchor_[i];
    const std::int64_t q =
        off >= 0 ? off / side_ : -((-off + side_ - 1) / side_);
    c[i] = anchor_[i] + q * side_;
  }
  return c;
}

std::int64_t CubePairing::snake_index(const Point& p) const {
  return snake_index(p, cube_corner(p));
}

std::int64_t CubePairing::snake_index(const Point& p,
                                      const Point& corner) const {
  // Boustrophedon mixed-radix index: axis 0 runs fastest, and each axis's
  // sweep direction reverses with the parity of the *true* offsets of all
  // higher axes, making consecutive indices grid-adjacent in any dimension.
  std::int64_t index = 0;
  std::int64_t parity_above = 0;
  for (int i = dim_ - 1; i >= 0; --i) {
    std::int64_t o = p[i] - corner[i];
    CMVRP_CHECK(o >= 0 && o < side_);
    if (parity_above % 2 == 1) o = side_ - 1 - o;  // reversed sweep
    index = index * side_ + o;
    parity_above += p[i] - corner[i];
  }
  return index;
}

Point CubePairing::snake_vertex(const Point& corner, std::int64_t k) const {
  CMVRP_CHECK(k >= 0 && k < cube_volume());
  // Unpack the mixed-radix digits (axis 0 least significant) into the
  // result point itself — this runs per pair lookup on the serving hot
  // path, so no scratch vector.
  Point p = corner;
  std::int64_t rest = k;
  for (int i = 0; i < dim_; ++i) {
    p[i] = rest % side_;
    rest /= side_;
  }
  // p[i] is the (possibly reversed) offset of axis i; undo reversals
  // top-down since reversal of axis i depends on true offsets of axes > i.
  std::int64_t parity_above = 0;
  for (int i = dim_ - 1; i >= 0; --i) {
    std::int64_t o = p[i];
    if (parity_above % 2 == 1) o = side_ - 1 - o;
    p[i] = corner[i] + o;
    parity_above += o;
  }
  return p;
}

Point CubePairing::partner(const Point& p) const {
  return partner(p, cube_corner(p));
}

Point CubePairing::partner(const Point& p, const Point& corner) const {
  const std::int64_t k = snake_index(p, corner);
  const std::int64_t mate = k ^ 1;
  if (mate >= cube_volume()) return p;  // odd singleton
  return snake_vertex(corner, mate);
}

std::vector<Point> CubePairing::primaries_in_cube(const Point& corner) const {
  std::vector<Point> out;
  const std::int64_t vol = cube_volume();
  out.reserve(static_cast<std::size_t>((vol + 1) / 2));
  for (std::int64_t k = 0; k < vol; k += 2)
    out.push_back(snake_vertex(corner, k));
  return out;
}

}  // namespace cmvrp
