// Dense two-phase primal simplex with Bland's anti-cycling rule.
//
// The paper's characterizations rest on LP (2.1), its dual (2.4), and the
// broken-vehicle LP (4.1). These are small, dense, and need exact-ish
// optima plus dual values (the α_i of Lemma 2.2.1), so a self-contained
// tableau simplex is the right tool; no external solver is used.
//
// Model accepted:
//   min / max  c'x
//   subject to a_k' x {<=, >=, =} b_k      for each constraint k
//              x >= 0                       (all variables non-negative)
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cmvrp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

const char* to_string(LpStatus s);

enum class LpRelation { kLessEqual, kGreaterEqual, kEqual };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;      // primal values, one per variable
  std::vector<double> duals;  // one per constraint (shadow prices)
  std::size_t pivots = 0;     // total simplex pivots (both phases)
};

class LpProblem {
 public:
  // `maximize` selects the objective sense; default is minimization.
  explicit LpProblem(bool maximize = false) : maximize_(maximize) {}

  // Adds a variable x_j >= 0 with the given objective coefficient; returns
  // its index.
  std::size_t add_variable(double objective_coeff);

  std::size_t num_variables() const { return obj_.size(); }
  std::size_t num_constraints() const { return rows_.size(); }

  // Adds the constraint  Σ coeffs[i].second · x_{coeffs[i].first}  rel  rhs.
  // Repeated variable indices within one constraint are summed.
  void add_constraint(
      const std::vector<std::pair<std::size_t, double>>& coeffs,
      LpRelation rel, double rhs);

  LpResult solve() const;

 private:
  struct Row {
    std::vector<std::pair<std::size_t, double>> coeffs;
    LpRelation rel;
    double rhs;
  };

  bool maximize_;
  std::vector<double> obj_;
  std::vector<Row> rows_;
};

}  // namespace cmvrp
