#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace cmvrp {

const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
  }
  return "?";
}

std::size_t LpProblem::add_variable(double objective_coeff) {
  obj_.push_back(objective_coeff);
  return obj_.size() - 1;
}

void LpProblem::add_constraint(
    const std::vector<std::pair<std::size_t, double>>& coeffs, LpRelation rel,
    double rhs) {
  for (const auto& [var, coeff] : coeffs) {
    (void)coeff;
    CMVRP_CHECK_MSG(var < obj_.size(), "constraint references unknown var");
  }
  rows_.push_back(Row{coeffs, rel, rhs});
}

namespace {

constexpr double kEps = 1e-9;

// Full-tableau simplex working state.
struct Tableau {
  std::size_t m;                        // rows (constraints)
  std::size_t n;                        // columns (all variables)
  std::vector<std::vector<double>> a;   // m x n
  std::vector<double> b;                // m
  std::vector<std::size_t> basis;       // m, column basic in each row
  std::size_t pivots = 0;

  void pivot(std::size_t row, std::size_t col) {
    const double piv = a[row][col];
    CMVRP_CHECK(std::abs(piv) > kEps);
    const double inv = 1.0 / piv;
    for (auto& v : a[row]) v *= inv;
    b[row] *= inv;
    a[row][col] = 1.0;  // cancel roundoff
    for (std::size_t r = 0; r < m; ++r) {
      if (r == row) continue;
      const double f = a[r][col];
      if (std::abs(f) < kEps) {
        a[r][col] = 0.0;
        continue;
      }
      for (std::size_t c = 0; c < n; ++c) a[r][c] -= f * a[row][c];
      a[r][col] = 0.0;
      b[r] -= f * b[row];
    }
    basis[row] = col;
    ++pivots;
  }

  // Minimize cost'x over the current feasible tableau; `allowed[j]` gates
  // which columns may enter (used to lock out artificials in phase 2).
  // Returns false if unbounded.
  bool optimize(const std::vector<double>& cost,
                const std::vector<bool>& allowed) {
    for (;;) {
      // Reduced costs: r_j = c_j - c_B B^{-1} a_j. With a full tableau the
      // matrix is already B^{-1}A, so r_j = c_j - Σ_i c_{basis[i]} a[i][j].
      std::size_t enter = n;
      for (std::size_t j = 0; j < n; ++j) {
        if (!allowed[j]) continue;
        double r = cost[j];
        for (std::size_t i = 0; i < m; ++i) {
          const double cb = cost[basis[i]];
          if (cb != 0.0) r -= cb * a[i][j];
        }
        if (r < -kEps) {  // Bland: first improving column
          enter = j;
          break;
        }
      }
      if (enter == n) return true;  // optimal

      // Ratio test, Bland tie-break on smallest basis column.
      std::size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m; ++i) {
        if (a[i][enter] > kEps) {
          const double ratio = b[i] / a[i][enter];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == m || basis[i] < basis[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m) return false;  // unbounded
      pivot(leave, enter);
    }
  }
};

}  // namespace

LpResult LpProblem::solve() const {
  const std::size_t nv = obj_.size();
  const std::size_t m = rows_.size();

  // Column layout: [0, nv) structural, then one slack/surplus per
  // inequality, then one artificial per row that needs it.
  std::size_t n = nv;
  std::vector<std::size_t> slack_col(m, SIZE_MAX);
  for (std::size_t k = 0; k < m; ++k)
    if (rows_[k].rel != LpRelation::kEqual) slack_col[k] = n++;

  // Build rows with b >= 0 (flip signs where needed).
  std::vector<std::vector<double>> a(m, std::vector<double>(n, 0.0));
  std::vector<double> b(m, 0.0);
  std::vector<double> row_sign(m, 1.0);
  for (std::size_t k = 0; k < m; ++k) {
    const Row& row = rows_[k];
    std::vector<double> dense(n, 0.0);
    for (const auto& [var, coeff] : row.coeffs) dense[var] += coeff;
    if (row.rel == LpRelation::kLessEqual) dense[slack_col[k]] = 1.0;
    if (row.rel == LpRelation::kGreaterEqual) dense[slack_col[k]] = -1.0;
    double rhs = row.rhs;
    if (rhs < 0.0) {
      for (auto& v : dense) v = -v;
      rhs = -rhs;
      row_sign[k] = -1.0;
    }
    a[k] = std::move(dense);
    b[k] = rhs;
  }

  // Identity-forming columns: a slack with +1 after sign flip can seed the
  // basis; everything else gets an artificial.
  std::vector<std::size_t> art_col(m, SIZE_MAX);
  std::vector<std::size_t> basis(m, SIZE_MAX);
  std::size_t num_art = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const bool have_identity =
        slack_col[k] != SIZE_MAX && a[k][slack_col[k]] > 0.5;
    if (have_identity) {
      basis[k] = slack_col[k];
    } else {
      art_col[k] = n + num_art;
      ++num_art;
    }
  }
  if (num_art > 0) {
    for (std::size_t k = 0; k < m; ++k) {
      a[k].resize(n + num_art, 0.0);
      if (art_col[k] != SIZE_MAX) {
        a[k][art_col[k]] = 1.0;
        basis[k] = art_col[k];
      }
    }
    n += num_art;
  }

  Tableau t;
  t.m = m;
  t.n = n;
  t.a = std::move(a);
  t.b = std::move(b);
  t.basis = std::move(basis);

  LpResult result;

  // Phase 1: drive artificials to zero.
  if (num_art > 0) {
    std::vector<double> phase1_cost(n, 0.0);
    for (std::size_t k = 0; k < m; ++k)
      if (art_col[k] != SIZE_MAX) phase1_cost[art_col[k]] = 1.0;
    std::vector<bool> allowed(n, true);
    const bool bounded = t.optimize(phase1_cost, allowed);
    CMVRP_CHECK_MSG(bounded, "phase-1 LP cannot be unbounded");
    double art_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      if (phase1_cost[t.basis[i]] != 0.0) art_sum += t.b[i];
    if (art_sum > 1e-7) {
      result.status = LpStatus::kInfeasible;
      result.pivots = t.pivots;
      return result;
    }
    // Pivot residual artificials out of the basis when possible.
    for (std::size_t i = 0; i < m; ++i) {
      if (art_col[i] == SIZE_MAX) continue;
      const std::size_t bc = t.basis[i];
      const bool is_art = phase1_cost[bc] != 0.0;
      if (!is_art) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (phase1_cost[j] != 0.0) continue;  // skip other artificials
        if (std::abs(t.a[i][j]) > kEps) {
          t.pivot(i, j);
          break;
        }
      }
    }
  }

  // Phase 2: real objective (converted to minimization).
  std::vector<double> cost(n, 0.0);
  for (std::size_t j = 0; j < nv; ++j)
    cost[j] = maximize_ ? -obj_[j] : obj_[j];
  std::vector<bool> allowed(n, true);
  for (std::size_t k = 0; k < m; ++k)
    if (art_col[k] != SIZE_MAX) allowed[art_col[k]] = false;

  if (!t.optimize(cost, allowed)) {
    result.status = LpStatus::kUnbounded;
    result.pivots = t.pivots;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.x.assign(nv, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (t.basis[i] < nv) result.x[t.basis[i]] = t.b[i];

  double z = 0.0;
  for (std::size_t j = 0; j < nv; ++j) z += cost[j] * result.x[j];
  result.objective = maximize_ ? -z : z;

  // Duals from the reduced cost of each row's initial identity column:
  //   +e_i column:  y_i = c_j - r_j        (c_j = 0 for slacks/artificials)
  //   -e_i column:  y_i = r_j - c_j
  // then undo the row sign flip and the minimization conversion.
  result.duals.assign(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t ref = SIZE_MAX;
    double col_dir = 1.0;  // direction of the identity column: +e_i or -e_i
    if (art_col[k] != SIZE_MAX) {
      ref = art_col[k];  // artificials always entered as +e_i
    } else {
      ref = slack_col[k];
      // Slack direction after the sign flip: +1 for (<=, b>=0) and
      // (>=, b<0); -1 otherwise.
      const bool le = rows_[k].rel == LpRelation::kLessEqual;
      const bool flipped = row_sign[k] < 0.0;
      col_dir = (le != flipped) ? 1.0 : -1.0;
    }
    double r = cost[ref];
    for (std::size_t i = 0; i < m; ++i) {
      const double cb = cost[t.basis[i]];
      if (cb != 0.0) r -= cb * t.a[i][ref];
    }
    // cost[ref] is 0 for slack and (phase-2) artificial columns, so the
    // identity-column rule gives y = -r for +e_i and y = +r for -e_i.
    double y = (col_dir > 0.0) ? cost[ref] - r : r - cost[ref];
    y *= row_sign[k];
    if (maximize_) y = -y;
    result.duals[k] = y;
  }

  result.pivots = t.pivots;
  return result;
}

}  // namespace cmvrp
