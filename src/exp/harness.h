// The experiment runner: named suites, timed repetitions, metric
// recording, ASCII tables, and the BENCH_<suite>.json artifact.
//
// A *suite* is a function that fills a BenchRun with sections and cases.
// Each case is a closure that recomputes its workload from baked-in seeds
// and records named metrics; the runner executes it `warmup` untimed plus
// `reps` timed repetitions (wall time feeding RunningStats), keeps the
// metrics of the final repetition (all case closures are deterministic,
// so repetitions agree), and renders
//   * one ASCII table per section — columns are the union of metric names
//     in first-seen order, exactly the pre-harness bench tables — and
//   * one JSON document per run with schema "cmvrp-bench-v1":
//       {"schema", "suite", "options": {warmup, reps, filter},
//        "failed", "notes": [...],
//        "sections": [{"name", "cases": [{"name",
//          "time_ms": {reps, mean, stddev, min, max},
//          "metrics": {...}}]}]}
//     Metric key order is declaration order, so artifacts from two runs
//     diff cleanly.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/stats.h"

namespace cmvrp {

struct RunOptions {
  int warmup = 0;         // untimed repetitions per case
  int reps = 1;           // timed repetitions per case
  std::string filter;     // substring on "section/case"; empty runs all
  std::string json_path;  // write the JSON artifact here when non-empty
};

// Metric sink for one case. Declaration order fixes the table column
// order and the JSON key order. `precision` only affects the ASCII
// rendering; JSON always stores the full value.
class MetricRow {
 public:
  MetricRow& metric(const std::string& name, double value, int precision = 4);
  MetricRow& metric(const std::string& name, std::int64_t value);
  MetricRow& metric(const std::string& name, std::uint64_t value);
  MetricRow& metric(const std::string& name, int value);
  MetricRow& metric(const std::string& name, const std::string& value);
  MetricRow& metric(const std::string& name, const char* value);
  MetricRow& metric_bool(const std::string& name, bool value);

 private:
  friend class BenchRun;
  friend class BenchSection;
  struct Cell {
    std::string name;
    Json value;
    std::string rendered;
  };
  std::vector<Cell> cells_;
};

using CaseFn = std::function<void(MetricRow&)>;

class BenchRun;

class BenchSection {
 public:
  const std::string& name() const { return name_; }

  // Runs `fn` under the suite's warmup/reps options and records the
  // result. A case whose "section/case" name misses the filter is
  // skipped entirely (not executed, absent from table and JSON).
  void run_case(const std::string& case_name, const CaseFn& fn);

  std::size_t case_count() const { return cases_.size(); }

 private:
  friend class BenchRun;
  BenchSection(BenchRun* parent, std::string name)
      : parent_(parent), name_(std::move(name)) {}

  struct CaseRecord {
    std::string name;
    RunningStats time_ms;
    MetricRow row;
  };

  BenchRun* parent_;
  std::string name_;
  std::vector<CaseRecord> cases_;
};

class BenchRun {
 public:
  explicit BenchRun(std::string suite, RunOptions options = {});

  const RunOptions& options() const { return options_; }
  const std::string& suite() const { return suite_; }

  // Creates or returns the section with this name. Sections print (and
  // serialize) in creation order.
  BenchSection& section(const std::string& name);

  // Shorthand: a case in the default section "main".
  void run_case(const std::string& case_name, const CaseFn& fn);

  // Free-form commentary (the benches' "shape check" conclusions):
  // printed after the tables and recorded under "notes".
  void note(const std::string& text);

  // Marks the run failed (a paper claim did not hold). The message goes
  // to the notes and finish() returns nonzero.
  void fail(const std::string& message);
  bool failed() const { return failed_; }

  Json to_json() const;
  void print(std::ostream& os) const;

  // print() + JSON artifact (when options().json_path is set); returns
  // 0 on success, 1 when failed.
  int finish(std::ostream& os);

 private:
  friend class BenchSection;

  std::string suite_;
  RunOptions options_;
  // unique_ptr: section() hands out stable references across reallocation.
  std::vector<std::unique_ptr<BenchSection>> sections_;
  std::vector<std::string> notes_;
  bool failed_ = false;
};

// --- suite registry ---------------------------------------------------------

// A suite fills the BenchRun; claim violations go through BenchRun::fail.
using SuiteFn = std::function<void(BenchRun&)>;

struct Suite {
  std::string name;         // registry key ("offline", "smoke", …)
  std::string description;  // one line, shown by listings and run headers
  SuiteFn fn;
};

// Registers a suite; throws check_error on duplicates.
void register_suite(Suite suite);
const Suite* find_suite(const std::string& name);
std::vector<const Suite*> all_suites();

// Runs one registered suite end to end (header, tables, notes, JSON).
// Returns 0 on success, 1 on claim failure; throws on unknown suite.
// When `doc_out` is non-null it receives the cmvrp-bench-v1 document of
// the finished run (the same JSON the artifact file gets) — this is how
// `cmvrp_cli bench --baseline` compares a fresh run without re-reading
// its own artifact from disk.
int run_suite(const std::string& name, const RunOptions& options,
              std::ostream& os, Json* doc_out = nullptr);

// main() body shared by the thin bench drivers: parses
//   [--reps N] [--warmup N] [--filter S] [--json PATH] [--list]
// registers the builtin suites, and runs `suite_name`.
int bench_driver_main(const std::string& suite_name, int argc, char** argv);

}  // namespace cmvrp
