#include "exp/scenario.h"

#include <utility>

#include "util/check.h"
#include "util/rng.h"
#include "workload/stream_gen.h"

namespace cmvrp {

void ScenarioRegistry::add(Scenario s) {
  CMVRP_CHECK_MSG(!s.name.empty(), "scenario needs a name");
  CMVRP_CHECK_MSG(s.demand != nullptr,
                  "scenario " << s.name << " needs a demand factory");
  CMVRP_CHECK_MSG(s.jobs != nullptr,
                  "scenario " << s.name << " needs a jobs factory");
  CMVRP_CHECK_MSG(find(s.name) == nullptr,
                  "duplicate scenario name: " << s.name);
  scenarios_.push_back(std::move(s));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : scenarios_)
    if (s.name == name) return &s;
  return nullptr;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
  const Scenario* s = find(name);
  CMVRP_CHECK_MSG(s != nullptr, "unknown scenario: " << name);
  return *s;
}

std::vector<const Scenario*> ScenarioRegistry::match(
    const std::string& filter) const {
  std::vector<const Scenario*> out;
  for (const auto& s : scenarios_) {
    if (filter.empty() || s.name.find(filter) != std::string::npos ||
        s.generator.find(filter) != std::string::npos)
      out.push_back(&s);
  }
  return out;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.name);
  return out;
}

namespace {

// Demand-native scenario: jobs are the demand expanded with a fixed
// arrival order and order seed.
Scenario from_demand(std::string name, std::string generator,
                     std::string description, Box region,
                     std::function<DemandMap()> demand,
                     std::uint64_t order_seed,
                     ArrivalOrder order = ArrivalOrder::kShuffled) {
  Scenario s;
  s.name = std::move(name);
  s.generator = std::move(generator);
  s.description = std::move(description);
  s.dim = region.dim();
  s.region = region;
  s.demand = demand;
  s.jobs = [demand, order, order_seed] {
    Rng rng(order_seed);
    return stream_from_demand(demand(), order, rng);
  };
  return s;
}

// Stream-native scenario: the demand map is induced by the stream.
Scenario from_stream(std::string name, std::string generator,
                     std::string description, Box region,
                     std::function<std::vector<Job>()> jobs) {
  Scenario s;
  s.name = std::move(name);
  s.generator = std::move(generator);
  s.description = std::move(description);
  s.dim = region.dim();
  s.region = region;
  s.jobs = jobs;
  const int dim = region.dim();
  s.demand = [jobs, dim] { return demand_of_stream(jobs(), dim); };
  return s;
}

// The heavy-tailed grid workload of the Algorithm 1 benches: ~n demand
// points with demand uniform in [1, 50], dropped on [0, n)^2.
DemandMap grid_workload(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  DemandMap d(2);
  for (std::int64_t k = 0; k < n; ++k) {
    const double amount = static_cast<double>(rng.next_int(1, 50));
    d.add(Point{rng.next_int(0, n - 1), rng.next_int(0, n - 1)}, amount);
  }
  return d;
}

ScenarioRegistry build_builtin() {
  ScenarioRegistry r;

  // --- uniform ------------------------------------------------------------
  r.add(from_demand("uniform/8x8/n32", "uniform",
                    "32 unit demands, 8x8 box (smoke-sized)",
                    Box(Point{0, 0}, Point{7, 7}),
                    [] {
                      Rng rng(1);
                      return uniform_demand(Box(Point{0, 0}, Point{7, 7}), 32,
                                            rng);
                    },
                    2));
  r.add(from_demand("uniform/12x12/n60", "uniform",
                    "60 unit demands, 12x12 box (Thm 1.4.1 bench case)",
                    Box(Point{0, 0}, Point{11, 11}),
                    [] {
                      Rng rng(101);
                      return uniform_demand(Box(Point{0, 0}, Point{11, 11}),
                                            60, rng);
                    },
                    1101));
  r.add(from_demand("uniform/10x10/n80", "uniform",
                    "80 unit demands, 10x10 box (Thm 1.4.2 bench case)",
                    Box(Point{0, 0}, Point{9, 9}),
                    [] {
                      Rng rng(201);
                      return uniform_demand(Box(Point{0, 0}, Point{9, 9}), 80,
                                            rng);
                    },
                    202));
  r.add(from_demand("uniform/10x10/n40", "uniform",
                    "40 unit demands, 10x10 box (Clarke-Wright case)",
                    Box(Point{0, 0}, Point{9, 9}),
                    [] {
                      Rng rng(305);
                      return uniform_demand(Box(Point{0, 0}, Point{9, 9}), 40,
                                            rng);
                    },
                    1305));
  r.add(from_demand("uniform/10x10/n70", "uniform",
                    "70 unit demands, 10x10 box (baselines bench case)",
                    Box(Point{0, 0}, Point{9, 9}),
                    [] {
                      Rng rng(301);
                      return uniform_demand(Box(Point{0, 0}, Point{9, 9}), 70,
                                            rng);
                    },
                    302));

  // --- clustered ----------------------------------------------------------
  r.add(from_demand("clustered/16x16/c3/n80", "clustered",
                    "3 Gaussian hotspots, 80 demands, sigma 1.5",
                    Box(Point{0, 0}, Point{15, 15}),
                    [] {
                      Rng rng(102);
                      return clustered_demand(Box(Point{0, 0}, Point{15, 15}),
                                              3, 80, 1.5, rng);
                    },
                    1102));
  r.add(from_demand("clustered/12x12/c2/n90", "clustered",
                    "2 hotspots, 90 demands, sigma 1.2 (online case)",
                    Box(Point{0, 0}, Point{11, 11}),
                    [] {
                      Rng rng(203);
                      return clustered_demand(Box(Point{0, 0}, Point{11, 11}),
                                              2, 90, 1.2, rng);
                    },
                    204));
  r.add(from_demand("clustered/12x12/c2/n80", "clustered",
                    "2 hotspots, 80 demands, sigma 1.0 (baselines case)",
                    Box(Point{0, 0}, Point{11, 11}),
                    [] {
                      Rng rng(303);
                      return clustered_demand(Box(Point{0, 0}, Point{11, 11}),
                                              2, 80, 1.0, rng);
                    },
                    304));

  // --- line / point / square / ridge (Fig 2.1 shapes) ---------------------
  r.add(from_demand("line/len24/d40", "line",
                    "demand 40 on every point of a length-24 line",
                    Box(Point{0, 0}, Point{23, 0}),
                    [] { return line_demand(24, 40.0, Point{0, 0}); }, 1108));
  r.add(from_demand(
      "line/len12/d8/rr", "line",
      "demand 8 on a length-12 line, round-robin arrivals (online case)",
      Box(Point{0, 0}, Point{11, 0}),
      [] { return line_demand(12, 8.0, Point{0, 0}); }, 205,
      ArrivalOrder::kRoundRobin));
  r.add(from_demand("point/d300", "point", "demand 300 at the single point (5,5)",
                    Box(Point{5, 5}, Point{5, 5}),
                    [] { return point_demand(300.0, Point{5, 5}); }, 1110));
  r.add(from_demand("square/a6/d25", "square",
                    "demand 25 on every point of a 6x6 square",
                    Box(Point{0, 0}, Point{5, 5}),
                    [] { return square_demand(6, 25.0, Point{0, 0}); }, 1111));
  r.add(from_demand("ridge/12x12/p12", "ridge",
                    "fault-line decay demand, peak 12",
                    Box(Point{0, 0}, Point{11, 11}),
                    [] {
                      Rng rng(103);
                      return ridge_demand(Box(Point{0, 0}, Point{11, 11}),
                                          12.0, rng);
                    },
                    1103));

  // --- stream-native: bursts, smart dust, alternating pairs ---------------
  r.add(from_stream("burst/p4x4/n120", "burst",
                    "120 jobs arriving at the single point (4,4)",
                    Box(Point{0, 0}, Point{9, 9}), [] {
                      std::vector<Job> jobs;
                      for (int i = 0; i < 120; ++i)
                        jobs.push_back({Point{4, 4}, i});
                      return jobs;
                    }));
  r.add(from_stream("burst/p4x4/n90", "burst",
                    "90 jobs at (4,4) (baselines case)",
                    Box(Point{0, 0}, Point{9, 9}), [] {
                      std::vector<Job> jobs;
                      for (int i = 0; i < 90; ++i)
                        jobs.push_back({Point{4, 4}, i});
                      return jobs;
                    }));
  r.add(from_stream("smartdust/12x12/n150", "smartdust",
                    "150 random-walk events, 5% jumps (online case)",
                    Box(Point{0, 0}, Point{11, 11}), [] {
                      Rng rng(206);
                      return smart_dust_stream(Box(Point{0, 0}, Point{11, 11}),
                                               150, 0.05, rng);
                    }));
  r.add(from_stream("smartdust/16x16/n200", "smartdust",
                    "200 random-walk events, 5% jumps (ablations case)",
                    Box(Point{0, 0}, Point{15, 15}), [] {
                      Rng rng(77);
                      return smart_dust_stream(Box(Point{0, 0}, Point{15, 15}),
                                               200, 0.05, rng);
                    }));
  r.add(from_stream("alternating/len8/n40", "alternating",
                    "the Ch. 4 two-point alternating stream, 40 jobs",
                    Box(Point{0, 0}, Point{8, 0}), [] {
                      return alternating_stream(Point{0, 0}, Point{8, 0}, 40);
                    }));

  // --- streaming-engine workloads (stream_smoke / stream_scaling) ---------
  // Large shuffled uniform streams: arrivals interleave across many cubes,
  // which is what gives the sharded engine parallel work.
  r.add(from_demand("uniform/32x32/n2000", "uniform",
                    "2000 unit demands, 32x32 box (stream smoke case)",
                    Box(Point{0, 0}, Point{31, 31}),
                    [] {
                      Rng rng(401);
                      return uniform_demand(Box(Point{0, 0}, Point{31, 31}),
                                            2000, rng);
                    },
                    402));
  r.add(from_demand("uniform/64x64/n20000", "uniform",
                    "20000 unit demands, 64x64 box (stream scaling case)",
                    Box(Point{0, 0}, Point{63, 63}),
                    [] {
                      Rng rng(403);
                      return uniform_demand(Box(Point{0, 0}, Point{63, 63}),
                                            20000, rng);
                    },
                    404));

  // --- higher dimensions (l = 3 and l = 4; Point::kMaxDim = 4) ------------
  r.add(from_demand("uniform3d/6x6x6/n48", "uniform3d",
                    "48 unit demands in a 6^3 box (l = 3 sweep case)",
                    Box(Point{0, 0, 0}, Point{5, 5, 5}),
                    [] {
                      Rng rng(501);
                      return uniform_demand(
                          Box(Point{0, 0, 0}, Point{5, 5, 5}), 48, rng);
                    },
                    502));
  r.add(from_demand("clustered3d/8x8x8/c2/n60", "clustered3d",
                    "2 Gaussian hotspots in an 8^3 box, 60 demands",
                    Box(Point{0, 0, 0}, Point{7, 7, 7}),
                    [] {
                      Rng rng(503);
                      return clustered_demand(
                          Box(Point{0, 0, 0}, Point{7, 7, 7}), 2, 60, 1.2,
                          rng);
                    },
                    504));
  r.add(from_demand("point3d/d60", "point3d",
                    "demand 60 at the single point (2,2,2)",
                    Box(Point{2, 2, 2}, Point{2, 2, 2}),
                    [] { return point_demand(60.0, Point{2, 2, 2}); }, 505));
  r.add(from_demand("uniform4d/4x4x4x4/n32", "uniform4d",
                    "32 unit demands in a 4^4 box (l = 4 sweep case)",
                    Box(Point{0, 0, 0, 0}, Point{3, 3, 3, 3}),
                    [] {
                      Rng rng(506);
                      return uniform_demand(
                          Box(Point{0, 0, 0, 0}, Point{3, 3, 3, 3}), 32,
                          rng);
                    },
                    507));
  r.add(from_demand("point4d/d40", "point4d",
                    "demand 40 at the single point (1,1,1,1)",
                    Box(Point{1, 1, 1, 1}, Point{1, 1, 1, 1}),
                    [] { return point_demand(40.0, Point{1, 1, 1, 1}); },
                    508));

  // --- higher-dimension *stream* scenarios (stream_smoke/stream_scaling:
  // dim_sweep covers offline+online; these give the engine ℓ = 3/4 work) -
  r.add(from_demand("uniform3d/8x8x8/n1500", "uniform3d",
                    "1500 unit demands in an 8^3 box (stream smoke, l = 3)",
                    Box(Point{0, 0, 0}, Point{7, 7, 7}),
                    [] {
                      Rng rng(601);
                      return uniform_demand(
                          Box(Point{0, 0, 0}, Point{7, 7, 7}), 1500, rng);
                    },
                    602));
  r.add(from_demand("uniform4d/6x6x6x6/n1000", "uniform4d",
                    "1000 unit demands in a 6^4 box (stream smoke, l = 4)",
                    Box(Point{0, 0, 0, 0}, Point{5, 5, 5, 5}),
                    [] {
                      Rng rng(603);
                      return uniform_demand(
                          Box(Point{0, 0, 0, 0}, Point{5, 5, 5, 5}), 1000,
                          rng);
                    },
                    604));
  r.add(from_demand("uniform3d/16x16x16/n8000", "uniform3d",
                    "8000 unit demands in a 16^3 box (stream scaling, l = 3)",
                    Box(Point{0, 0, 0}, Point{15, 15, 15}),
                    [] {
                      Rng rng(605);
                      return uniform_demand(
                          Box(Point{0, 0, 0}, Point{15, 15, 15}), 8000, rng);
                    },
                    606));
  r.add(from_demand("uniform4d/8x8x8x8/n4000", "uniform4d",
                    "4000 unit demands in an 8^4 box (stream scaling, l = 4)",
                    Box(Point{0, 0, 0, 0}, Point{7, 7, 7, 7}),
                    [] {
                      Rng rng(607);
                      return uniform_demand(
                          Box(Point{0, 0, 0, 0}, Point{7, 7, 7, 7}), 4000,
                          rng);
                    },
                    608));

  // --- streaming adversarial generators (workload/stream_gen.h) -----------
  // The same sink-based generators that emit straight into trace files;
  // collected here so suites can name them. Spans are cubes·side per axis.
  r.add(from_stream("rrboundary/s4c8/n4000", "rrboundary",
                    "round-robin across cube walls, side 4, 8 cubes/axis",
                    Box(Point{0, 0}, Point{31, 31}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        boundary_round_robin_stream(2, 4, 8, 4000, sink);
                      });
                    }));
  r.add(from_stream("rrboundary3d/s4c4/n3000", "rrboundary3d",
                    "round-robin across cube walls in 3-D, side 4, 4 cubes",
                    Box(Point{0, 0, 0}, Point{15, 15, 15}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        boundary_round_robin_stream(3, 4, 4, 3000, sink);
                      });
                    }));
  r.add(from_stream("hotspot/s4c8/n4000/b64", "hotspot",
                    "bursty hotspot migration, bursts of 64 across 64 cubes",
                    Box(Point{0, 0}, Point{31, 31}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(611);
                        bursty_hotspot_stream(2, 4, 8, 4000, 64, rng, sink);
                      });
                    }));
  r.add(from_stream("hotspot3d/s4c4/n2400/b48", "hotspot3d",
                    "bursty hotspot migration in 3-D, bursts of 48",
                    Box(Point{0, 0, 0}, Point{15, 15, 15}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(612);
                        bursty_hotspot_stream(3, 4, 4, 2400, 48, rng, sink);
                      });
                    }));
  r.add(from_stream("hotspot4d/s2c3/n1200/b32", "hotspot4d",
                    "bursty hotspot migration in 4-D, bursts of 32",
                    Box(Point{0, 0, 0, 0}, Point{5, 5, 5, 5}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(613);
                        bursty_hotspot_stream(4, 2, 3, 1200, 32, rng, sink);
                      });
                    }));
  r.add(from_stream("gradient/32x32/n4000/sg2", "gradient",
                    "drifting-gradient arrivals, sigma 2",
                    Box(Point{0, 0}, Point{31, 31}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(614);
                        drifting_gradient_stream(
                            Box(Point{0, 0}, Point{31, 31}), 4000, 2.0, rng,
                            sink);
                      });
                    }));
  r.add(from_stream("heavytail2d/s4c8/n4000/a1.2", "heavytail2d",
                    "Pareto(1.2) dwell hotspot migration, 64 cubes",
                    Box(Point{0, 0}, Point{31, 31}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(616);
                        heavy_tailed_hotspot_stream(2, 4, 8, 4000, 1.2, rng,
                                                    sink);
                      });
                    }));
  // Saturating overload workloads (admission-control suites): the same
  // adversarial generators squeezed into 4 cubes, so bursts dwarf any
  // bounded backlog and a low-capacity fleet sits at the §3.2 phase
  // transition — these are the streams that actually shed/reject.
  r.add(from_stream("hotspot/s4c2/n2000/b128", "hotspot",
                    "saturating hotspot: bursts of 128 into only 4 cubes",
                    Box(Point{0, 0}, Point{7, 7}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(618);
                        bursty_hotspot_stream(2, 4, 2, 2000, 128, rng, sink);
                      });
                    }));
  r.add(from_stream("heavytail2d/s4c2/n2000/a1.1", "heavytail2d",
                    "saturating Pareto(1.1) dwell hotspot, only 4 cubes",
                    Box(Point{0, 0}, Point{7, 7}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(619);
                        heavy_tailed_hotspot_stream(2, 4, 2, 2000, 1.1, rng,
                                                    sink);
                      });
                    }));
  r.add(from_stream("heavytail3d/s4c4/n2400/a1.5", "heavytail3d",
                    "Pareto(1.5) dwell hotspot migration in 3-D",
                    Box(Point{0, 0, 0}, Point{15, 15, 15}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(617);
                        heavy_tailed_hotspot_stream(3, 4, 4, 2400, 1.5, rng,
                                                    sink);
                      });
                    }));
  // Mixture streams: several generators merged by arrival index with the
  // TraceMux rule (merge_streams), re-indexed 0..N-1 — the in-memory
  // face of multi-trace replay (multi-depot arrivals served by one
  // fleet).
  r.add(from_stream("mix/hotspot+gradient/32x32/n8000", "mix",
                    "hotspot + gradient sources merged by arrival index",
                    Box(Point{0, 0}, Point{31, 31}), [] {
                      auto hotspot = collect_jobs([](const JobSink& sink) {
                        Rng rng(611);
                        bursty_hotspot_stream(2, 4, 8, 4000, 64, rng, sink);
                      });
                      auto gradient = collect_jobs([](const JobSink& sink) {
                        Rng rng(614);
                        drifting_gradient_stream(
                            Box(Point{0, 0}, Point{31, 31}), 4000, 2.0, rng,
                            sink);
                      });
                      return merge_streams({hotspot, gradient});
                    }));
  r.add(from_stream("mix/heavytail+boundary/32x32/n8000", "mix",
                    "Pareto-dwell hotspot + cube-wall round-robin merged",
                    Box(Point{0, 0}, Point{31, 31}), [] {
                      auto heavy = collect_jobs([](const JobSink& sink) {
                        Rng rng(616);
                        heavy_tailed_hotspot_stream(2, 4, 8, 4000, 1.2, rng,
                                                    sink);
                      });
                      auto boundary = collect_jobs([](const JobSink& sink) {
                        boundary_round_robin_stream(2, 4, 8, 4000, sink);
                      });
                      return merge_streams({heavy, boundary});
                    }));
  r.add(from_stream("gradient4d/6x6x6x6/n1200/sg1", "gradient4d",
                    "drifting-gradient arrivals in 4-D, sigma 1",
                    Box(Point{0, 0, 0, 0}, Point{5, 5, 5, 5}), [] {
                      return collect_jobs([](const JobSink& sink) {
                        Rng rng(615);
                        drifting_gradient_stream(
                            Box(Point{0, 0, 0, 0}, Point{5, 5, 5, 5}), 1200,
                            1.0, rng, sink);
                      });
                    }));

  // --- heavy-tailed grids (Algorithm 1 benches) ---------------------------
  for (const std::int64_t n : {16, 32, 64, 128}) {
    r.add(from_demand("grid/n" + std::to_string(n) + "/s11", "grid",
                      "~n heavy-tailed demands on [0,n)^2, seed 11",
                      Box(Point{0, 0}, Point{n - 1, n - 1}),
                      [n] { return grid_workload(n, 11); },
                      static_cast<std::uint64_t>(2000 + n)));
  }
  for (const std::int64_t n : {64, 128, 256, 512, 1024}) {
    r.add(from_demand("grid/n" + std::to_string(n) + "/s7", "grid",
                      "~n heavy-tailed demands on [0,n)^2, seed 7",
                      Box(Point{0, 0}, Point{n - 1, n - 1}),
                      [n] { return grid_workload(n, 7); },
                      static_cast<std::uint64_t>(3000 + n)));
  }

  return r;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = build_builtin();
  return registry;
}

}  // namespace cmvrp
