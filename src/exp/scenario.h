// Named workload scenarios for the experiment harness.
//
// A Scenario bundles a reproducible workload — a demand map and/or a job
// stream, with every RNG seed baked in — under a stable slash-delimited
// name ("uniform/12x12/n60"). The builtin() registry enumerates parameter
// sweeps over every generator in src/workload/ (uniform, clustered, line,
// point, square, ridge, smart-dust, point bursts, alternating pairs, and
// the heavy-tailed grid workload used by the Algorithm 1 benches), so
// suites pick cases by name and two PRs benchmarking "the same case" are
// guaranteed to run the same bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "grid/box.h"
#include "grid/demand_map.h"
#include "grid/point.h"
#include "workload/generators.h"

namespace cmvrp {

struct Scenario {
  std::string name;         // unique registry key, slash-delimited
  std::string generator;    // workload family: "uniform", "clustered", …
  std::string description;  // one line, shown by listings
  int dim = 2;
  Box region = Box(Point{0, 0}, Point{0, 0});  // bounding region

  // Workload factories; each call regenerates from the baked-in seeds.
  // `demand` is always set. `jobs` is always set too: stream-native
  // scenarios (smart dust, bursts) generate it directly, demand-native
  // ones expand via stream_from_demand with a fixed order and seed.
  std::function<DemandMap()> demand;
  std::function<std::vector<Job>()> jobs;
};

class ScenarioRegistry {
 public:
  // Registers a scenario; throws check_error on a duplicate name.
  void add(Scenario s);

  // nullptr when absent.
  const Scenario* find(const std::string& name) const;
  // Throws check_error when absent.
  const Scenario& at(const std::string& name) const;

  // Scenarios whose name or generator contains `filter` (empty matches
  // all), in registration order.
  std::vector<const Scenario*> match(const std::string& filter) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return scenarios_.size(); }

  // The builtin sweeps. Built once, on first use.
  static const ScenarioRegistry& builtin();

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace cmvrp
