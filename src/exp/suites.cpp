#include "exp/suites.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "broken/scenario.h"
#include "core/algorithm1.h"
#include "core/bounds.h"
#include "core/closed_forms.h"
#include "core/cube_bound.h"
#include "core/incremental_omega.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "exp/harness.h"
#include "exp/scenario.h"
#include "flow/transportation.h"
#include "graph/graph.h"
#include "graph/graph_omega.h"
#include "grid/dense_grid.h"
#include "grid/neighborhood.h"
#include "lp/simplex.h"
#include "online/capacity_search.h"
#include "online/pairing.h"
#include "online/simulation.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "record/mux.h"
#include "record/recorder.h"
#include "stream/engine.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"
#include "transfer/cube_collector.h"
#include "transfer/line_collector.h"
#include "transfer/theorem51.h"
#include "util/digest.h"
#include "util/rng.h"
#include "util/timer.h"
#include "vrp/cvrp.h"
#include "vrp/greedy_baseline.h"
#include "workload/generators.h"
#include "workload/stream_gen.h"

namespace cmvrp {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// E4 — Theorem 1.4.1 and Corollaries 2.2.4–2.2.7: the offline sandwich
//   ω_c ≤ ω* = max_T ω_T ≤ Woff ≤ plan energy ≤ (2·3^ℓ + ℓ)·ω_c.
void suite_offline(BenchRun& b) {
  const auto& reg = ScenarioRegistry::builtin();
  const std::vector<std::string> cases = {
      "uniform/12x12/n60", "clustered/16x16/c3/n80", "line/len24/d40",
      "point/d300",        "square/a6/d25",          "ridge/12x12/p12"};
  for (const auto& name : cases) {
    const Scenario& sc = reg.at(name);
    b.run_case(name, [&b, &sc](MetricRow& row) {
      const DemandMap demand = sc.demand();
      const CubeBound cb = cube_bound(demand);
      const double omega_star = omega_star_flow(demand);
      const double cube_max = max_omega_over_cubes(demand);
      const OfflinePlan plan = plan_offline(demand);
      const PlanCheck check = verify_plan(plan, demand);
      if (!check.ok) {
        b.fail(sc.name + ": plan failed: " + check.issue);
        return;
      }
      // Ordering checks from the corollaries.
      const bool ordered = cb.omega_c <= omega_star + 1e-6 &&
                           cube_max <= omega_star + 1e-6 &&
                           check.max_energy <= plan.capacity_bound + 1e-6;
      if (!ordered) b.fail(sc.name + ": sandwich violated");
      row.metric("omega_c", cb.omega_c)
          .metric("omega* (flow)", omega_star)
          .metric("max cube omega", cube_max)
          .metric("plan energy", check.max_energy)
          .metric("upper (20*omega_c)", plan.capacity_bound)
          .metric("plan/omega*", check.max_energy / omega_star, 2)
          .metric("plan/omega_c",
                  check.max_energy / std::max(cb.omega_c, 1e-9), 2)
          .metric("upper/plan",
                  plan.capacity_bound / std::max(check.max_energy, 1e-9), 2);
    });
  }
  b.note(
      "Shape check: omega_c <= cube-omega <= omega* <= plan energy <= "
      "20*omega_c on every workload — Theorem 1.4.1's constant-factor "
      "sandwich, realized.");
}

// E6 — Theorem 1.4.2: Won = Θ(Woff), via the Chapter 3 strategy.
void suite_online(BenchRun& b) {
  const auto& reg = ScenarioRegistry::builtin();
  const std::vector<std::string> cases = {
      "uniform/10x10/n80", "clustered/12x12/c2/n90", "line/len12/d8/rr",
      "burst/p4x4/n120", "smartdust/12x12/n150"};
  double worst_ratio = 0.0;
  for (const auto& name : cases) {
    const Scenario& sc = reg.at(name);
    b.run_case(name, [&b, &sc, &worst_ratio](MetricRow& row) {
      const auto jobs = sc.jobs();
      const auto r = find_min_online_capacity(jobs, 2, /*seed=*/5, 0.1);
      const double ratio = r.won_empirical / std::max(r.omega_c, 1e-9);
      worst_ratio = std::max(worst_ratio, ratio);
      const double msgs_per_job =
          static_cast<double>(r.at_minimum.network.total()) /
          static_cast<double>(jobs.size());
      if (r.won_empirical > r.won_theory + 0.2)
        b.fail(sc.name + ": empirical exceeded the theorem bound");
      row.metric("omega_c", r.omega_c)
          .metric("Won empirical", r.won_empirical)
          .metric("Won theory (38*w_c)", r.won_theory)
          .metric("Won/omega_c", ratio, 2)
          .metric("msgs/job @min", msgs_per_job, 1)
          .metric("replacements @min", r.at_minimum.replacements);
    });
  }
  b.note("Shape check: Won always below the Lemma 3.3.1 bound and within a "
         "bounded factor of omega_c (worst ratio here: " +
         fmt(worst_ratio) +
         "; unit-job granularity inflates tiny-omega_c workloads).");
}

// E1 — Figure 2.1(a), §2.1.1: demand d at every point of an a×a square.
void suite_square(BenchRun& b) {
  const double d = 100.0;
  for (const std::int64_t a : {1, 2, 4, 8, 16, 32, 64}) {
    b.run_case("a=" + std::to_string(a), [&b, a, d](MetricRow& row) {
      const double w1 = example_square_w1(static_cast<double>(a), d);
      const Box square(Point{0, 0}, Point{a - 1, a - 1});
      const double omega = omega_for_box(
          square, d * static_cast<double>(a) * static_cast<double>(a));
      row.metric("W1 (paper)", w1).metric("omega_square (Eq 1.1)", omega);
      if (a <= 32) {  // plan construction is cheap, verification is O(support)
        const DemandMap demand = square_demand(a, d, Point{0, 0});
        const OfflinePlan plan = plan_offline(demand);
        const PlanCheck check = verify_plan(plan, demand);
        if (!check.ok) {
          b.fail("plan verification failed: " + check.issue);
          return;
        }
        row.metric("plan max energy", check.max_energy)
            .metric("W1/d", w1 / d)
            .metric("plan/omega", check.max_energy / omega);
      } else {
        row.metric("plan max energy", "-")
            .metric("W1/d", w1 / d)
            .metric("plan/omega", "-");
      }
    });
  }
  b.note("Shape check: W1/d climbs toward 1 as a grows (paper: \"when a "
         "approaches infinity, W approaches d\"); plan/omega stays below "
         "the 2*3^l+l = 20 constant.");
}

// E2 — Figure 2.1(b)/2.2, §2.1.2: demand d on every point of a line.
void suite_line(BenchRun& b) {
  for (const double d : {8.0, 32.0, 128.0, 512.0, 2048.0}) {
    b.run_case("d=" + fmt(d), [&b, d](MetricRow& row) {
      const double w2 = example_line_w2(d);
      // Fig 2.2 strategy with capacity 2*W2: each vehicle at offset
      // |y| <= r (r = floor(W2)) reaches the line spending |y| and serves
      // 2W2 - |y|.
      const auto r = static_cast<std::int64_t>(std::floor(w2));
      double supply_per_point = 0.0;
      for (std::int64_t y = -r; y <= r; ++y)
        supply_per_point += 2.0 * w2 - static_cast<double>(std::abs(y));
      const bool covers = supply_per_point + 1e-9 >= d;

      const std::int64_t len = 256;
      const Box line(Point{0, 0}, Point{len - 1, 0});
      const double omega = omega_for_box(line, d * static_cast<double>(len));

      row.metric("W2", w2)
          .metric("2*W2 strategy supply/point", supply_per_point, 1)
          .metric_bool("covers d?", covers)
          .metric("omega_line(len=256)", omega);
      if (d <= 512.0) {
        const DemandMap demand = line_demand(64, d, Point{0, 0});
        const OfflinePlan plan = plan_offline(demand);
        const PlanCheck check = verify_plan(plan, demand);
        if (!check.ok) {
          b.fail("plan failed: " + check.issue);
          return;
        }
        row.metric("plan max energy", check.max_energy);
      } else {
        row.metric("plan max energy", "-");
      }
      if (!covers) b.fail("Fig 2.2 strategy failed to cover d=" + fmt(d));
    });
  }
  b.note("Shape check: W2 grows as sqrt(d) (W2^2 ~ d/2); the 2*W2 strategy "
         "always covers; omega of a long finite line tracks W2.");
}

// E3 — Figure 2.1(c)/2.3, §2.1.3: demand d at a single point.
void suite_point(BenchRun& b) {
  for (const double d : {64.0, 512.0, 4096.0, 32768.0, 262144.0}) {
    b.run_case("d=" + fmt(d), [&b, d](MetricRow& row) {
      const double w3 = example_point_w3(d);
      // Fig 2.3: vehicles in the (2w+1)x(2w+1) L-inf square with
      // w=floor(W3) walk to the center (cost = L1 distance <= 2w) with
      // capacity 3*W3.
      const auto w = static_cast<std::int64_t>(std::floor(w3));
      double supply = 0.0;
      for (std::int64_t x = -w; x <= w; ++x)
        for (std::int64_t y = -w; y <= w; ++y)
          supply += 3.0 * w3 - static_cast<double>(std::abs(x) + std::abs(y));
      const bool covers = supply + 1e-9 >= d;

      DemandMap demand(2);
      demand.set(Point{0, 0}, d);
      const double omega = omega_for_set({Point{0, 0}}, demand);
      const OfflinePlan plan = plan_offline(demand);
      const PlanCheck check = verify_plan(plan, demand);
      if (!check.ok || !covers) {
        b.fail("failure at d=" + fmt(d) + ": " +
               (check.ok ? "recall undersupplies" : check.issue));
        return;
      }
      row.metric("W3", w3)
          .metric("3*W3 recall supply", supply, 1)
          .metric_bool("covers d?", covers)
          .metric("omega* (Eq 1.1)", omega)
          .metric("plan max energy", check.max_energy)
          .metric("W3^3*4/d", 4.0 * w3 * w3 * w3 / d);
    });
  }
  b.note("Shape check: W3 ~ (d/4)^(1/3) (last column -> 1); the 3*W3 recall "
         "always covers; omega* is the tighter L1-ball version of the same "
         "cube-root law.");
}

// E7 — Figure 4.1 / §4.2: the broken-vehicle lower bound is not tight.
void suite_broken(BenchRun& b) {
  for (const std::int64_t r1 : {2, 4, 8, 16, 32, 64}) {
    b.run_case("r1=" + std::to_string(r1), [r1](MetricRow& row) {
      const auto s = make_fig41(r1, /*r2=*/4 * r1 + 2);
      const auto m = measure_fig41(s);
      row.metric("LP bound (2*r1)", m.lp_bound)
          .metric("paper travel formula", m.paper_travel, 0)
          .metric("true requirement", m.true_requirement, 0)
          .metric("ratio true/LP", m.ratio, 2)
          .metric("ratio/r1", m.ratio / static_cast<double>(r1), 3);
    });
  }
  b.note("Shape check: ratio grows linearly in r1 (last column converges to "
         "~2) — with breakdowns, arrival order matters and the LP bound is "
         "weak, exactly as §4.2 concludes.");
}

// E5 — Algorithm 1 (§2.3): 2(2·3^ℓ+ℓ)-approximation quality, and the
// linear-time claim as a harness-timed scaling sweep (time/n² must stay
// flat as n² grows 256×).
void suite_alg1(BenchRun& b) {
  const auto& reg = ScenarioRegistry::builtin();
  BenchSection& approx = b.section("approximation");
  for (const std::int64_t n : {16, 32, 64, 128}) {
    const Scenario& sc = reg.at("grid/n" + std::to_string(n) + "/s11");
    const DemandMap d = sc.demand();
    approx.run_case("n=" + std::to_string(n), [&b, n, d](MetricRow& row) {
      const auto r = algorithm1(d, n);
      const auto cb = cube_bound(d);
      const double omega_star = n <= 64 ? omega_star_flow(d) : cb.omega_c;
      const double cells = static_cast<double>(r.cells_touched) /
                           (static_cast<double>(n) * static_cast<double>(n));
      // Claimed guarantee: Woff <= estimate <= 2(2·3^l+l)·Woff.
      if (r.estimate + 1e-9 < cb.omega_c ||
          r.estimate > 2.0 * 20.0 * 20.0 * cb.omega_c + 1e-9)
        b.fail("approximation guarantee violated at n=" + std::to_string(n));
      row.metric("exit rule", r.exit_rule)
          .metric("estimate", r.estimate)
          .metric("omega_c", cb.omega_c)
          .metric("omega* (flow)", omega_star)
          .metric("estimate/omega*",
                  r.estimate / std::max(omega_star, 1e-9), 2)
          .metric("cells/n^2", cells, 3);
    });
  }
  BenchSection& scaling = b.section("scaling");
  for (const std::int64_t n : {64, 128, 256, 512, 1024}) {
    const Scenario& sc = reg.at("grid/n" + std::to_string(n) + "/s7");
    const DemandMap d = sc.demand();
    scaling.run_case("n=" + std::to_string(n), [n, d](MetricRow& row) {
      const auto r = algorithm1(d, n);
      const double n2 = static_cast<double>(n) * static_cast<double>(n);
      row.metric("estimate", r.estimate)
          .metric("cells touched", r.cells_touched)
          .metric("cells/n^2", static_cast<double>(r.cells_touched) / n2, 3);
    });
  }
  b.note("Shape check: cells/n^2 < 4/3 at every n (geometric level sums = "
         "linear time; the ms/rep column divided by n^2 must stay flat); "
         "estimate within the claimed factor of the exact optimum.");
}

// E8 — Chapter 5: inter-vehicle energy transfers.
void suite_transfer(BenchRun& b) {
  BenchSection& ta = b.section("thm511");
  bool ratios_bounded = true;
  for (const double d : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    ta.run_case("d=" + fmt(d), [d, &ratios_bounded](MetricRow& row) {
      const DemandMap demand = square_demand(8, d, Point{0, 0});
      const auto bounds = transfer_bounds(demand);
      const double ratio = bounds.woff_upper / bounds.wtrans_lower;
      ratios_bounded = ratios_bounded && ratio < 300.0;
      row.metric("Wtrans lower (Thm 5.1.1)", bounds.wtrans_lower)
          .metric("Woff upper (Lem 2.2.5)", bounds.woff_upper)
          .metric("ratio upper/lower", ratio, 2)
          .metric("binding square side", bounds.binding_side);
    });
  }
  if (!ratios_bounded) b.fail("Theta relationship violated");
  b.note("thm511 shape check: the ratio stays bounded while demand scales "
         "256x — the two quantities are the same order (Thm 5.1.1).");

  BenchSection& tb = b.section("line_collector");
  for (const std::int64_t n : {8, 32, 128, 512}) {
    for (const double d : {4.0, 32.0}) {
      const std::string base =
          "N=" + std::to_string(n) + "/d=" + fmt(d) + "/";
      tb.run_case(base + "fixed_a1=1", [n, d](MetricRow& row) {
        const std::vector<double> lane(static_cast<std::size_t>(n), d);
        const double total = d * static_cast<double>(n);
        TransferParams p;
        p.model = TransferCostModel::kFixed;
        p.a1 = 1.0;
        const double formula = line_collector_w_fixed(n, total, p.a1);
        const double sim = min_line_collector_w(lane, p);
        const auto trace = simulate_line_collector(lane, sim, p);
        row.metric("W formula", formula)
            .metric("W simulated", sim)
            .metric("sim/formula", sim / formula, 4)
            .metric("peak tank / (N*W)",
                    trace.max_tank_level / (static_cast<double>(n) * sim), 3);
      });
      tb.run_case(base + "var_a2=.01", [n, d](MetricRow& row) {
        const std::vector<double> lane(static_cast<std::size_t>(n), d);
        const double total = d * static_cast<double>(n);
        TransferParams p;
        p.model = TransferCostModel::kVariable;
        p.a2 = 0.01;
        const double formula = line_collector_w_variable(n, total, p.a2);
        const double sim = min_line_collector_w(lane, p);
        const auto trace = simulate_line_collector(lane, sim, p);
        row.metric("W formula", formula)
            .metric("W simulated", sim)
            .metric("sim/formula", sim / formula, 4)
            .metric("peak tank / (N*W)",
                    trace.max_tank_level / (static_cast<double>(n) * sim), 3);
      });
    }
  }
  b.note("line_collector shape check: W = Theta(avg d); fixed-cost "
         "simulation matches the closed form exactly, variable-cost stays "
         "at/below it (the paper charges every transfer at the full W); the "
         "peak tank is ~N*W — C = infinity is genuinely needed.");

  BenchSection& tc = b.section("cube_collector");
  for (const double hot : {50.0, 200.0, 800.0}) {
    tc.run_case("hot=" + fmt(hot), [hot](MetricRow& row) {
      DemandMap d(2);
      d.set(Point{3, 3}, hot);
      const OfflinePlan plan = plan_offline(d);
      TransferParams pf;
      pf.model = TransferCostModel::kFixed;
      pf.a1 = 0.5;
      TransferParams pv;
      pv.model = TransferCostModel::kVariable;
      pv.a2 = 0.01;
      const auto rf = cube_collector_requirements(d, 8, pf);
      const auto rv = cube_collector_requirements(d, 8, pv);
      row.metric("no-transfer plan W", plan.max_energy())
          .metric("collector W (fixed a1=.5)", rf.required_w)
          .metric("collector W (var a2=.01)", rv.required_w)
          .metric("savings factor", plan.max_energy() / rf.required_w, 2);
    });
  }
  b.note("cube_collector shape check: transfers turn max-demand into "
         "avg-demand — the savings factor grows with the skew (§5.2's "
         "point).");
}

// E9 — Baselines: centralized greedy vs the distributed strategy;
// Clarke–Wright for context.
void suite_baselines(BenchRun& b) {
  const auto& reg = ScenarioRegistry::builtin();
  BenchSection& cap = b.section("capacity");
  for (const auto& name : {"uniform/10x10/n70", "clustered/12x12/c2/n80",
                           "burst/p4x4/n90"}) {
    const Scenario& sc = reg.at(name);
    cap.run_case(name, [&sc](MetricRow& row) {
      const auto jobs = sc.jobs();
      const double greedy_w = greedy_min_capacity(sc.region, jobs, 0.1);
      const auto greedy_run = run_greedy_baseline(sc.region, greedy_w, jobs);
      const auto r = find_min_online_capacity(jobs, 2, /*seed=*/5, 0.1);
      row.metric("greedy min W", greedy_w)
          .metric("strategy min W (Won)", r.won_empirical)
          .metric("strategy/greedy", r.won_empirical / greedy_w, 2)
          .metric("greedy travel @min", greedy_run.total_travel)
          .metric("strategy msgs/job",
                  static_cast<double>(r.at_minimum.network.total()) /
                      static_cast<double>(jobs.size()),
                  1);
    });
  }
  b.note("capacity context: greedy's omniscience buys a constant factor at "
         "most — consistent with Won = Θ(Woff): no scheduler beats the "
         "Θ(ω*) energy floor.");

  // Clarke–Wright on a uniform instance: classic CVRP route lengths.
  BenchSection& cw = b.section("clarke_wright");
  cw.run_case("uniform/10x10/n40", [&b, &reg](MetricRow& row) {
    const DemandMap d = reg.at("uniform/10x10/n40").demand();
    CvrpInstance inst;
    inst.depot = Point{5, 5};
    inst.vehicle_capacity = 12.0;
    for (const auto& p : d.support()) {
      inst.customers.push_back(p);
      inst.demands.push_back(d.at(p));
    }
    const auto sol = clarke_wright(inst);
    const bool valid = cvrp_solution_valid(inst, sol);
    if (!valid) b.fail("Clarke-Wright produced an invalid CVRP solution");
    row.metric("routes", static_cast<std::int64_t>(sol.routes.size()))
        .metric("total length", sol.total_length)
        .metric_bool("valid", valid);
  });
  b.note("clarke_wright context (central depot, Q = 12): the classic "
         "objective (total route length from one depot) and the paper's "
         "(min per-vehicle energy, dispersed depots) optimize different "
         "resources — the reason CMVRP needs its own theory (§1.1).");
}

// E11 — ablations over the Chapter 3 strategy's design choices.
void suite_ablations(BenchRun& b) {
  const Scenario& sc = ScenarioRegistry::builtin().at("smartdust/16x16/n200");
  const auto jobs = sc.jobs();
  const DemandMap demand = demand_of_stream(jobs, 2);
  const OnlineConfig base = [&] {
    OnlineConfig c = default_online_config(demand, 5);
    c.capacity = 10.0;
    return c;
  }();

  const auto run_with = [&jobs](OnlineConfig cfg) {
    OnlineSimulation sim(2, cfg);
    sim.run(jobs);
    return sim.metrics();
  };

  BenchSection& sides = b.section("cube_side");
  for (const std::int64_t side : {2, 3, 4, 6, 8}) {
    sides.run_case("side=" + std::to_string(side),
                   [&, side](MetricRow& row) {
                     OnlineConfig cfg = base;
                     cfg.cube_side = side;
                     const auto m = run_with(cfg);
                     row.metric("failed", m.jobs_failed)
                         .metric("replacements", m.replacements)
                         .metric("msgs/job",
                                 static_cast<double>(m.network.total()) /
                                     static_cast<double>(jobs.size()),
                                 1)
                         .metric("max travel+serve", m.max_energy_spent);
                   });
  }
  b.note("cube_side: theory picks max(2, ceil(omega_c)) = " +
         std::to_string(base.cube_side) +
         " — smaller cubes localize searches but shrink the idle pool; "
         "larger cubes pay longer replacement travel and bigger floods.");

  BenchSection& ring = b.section("monitoring");
  for (const bool enabled : {true, false}) {
    ring.run_case(enabled ? "ring=on" : "ring=off",
                  [&, enabled](MetricRow& row) {
                    OnlineConfig cfg = base;
                    cfg.enable_monitoring = enabled;
                    OnlineSimulation sim(2, cfg);
                    std::vector<Point> hottest = demand.support();
                    std::sort(hottest.begin(), hottest.end(),
                              [&demand](const Point& a, const Point& c) {
                                if (demand.at(a) != demand.at(c))
                                  return demand.at(a) > demand.at(c);
                                return a < c;
                              });
                    for (std::size_t k = 0;
                         k < std::min<std::size_t>(12, hottest.size()); ++k)
                      sim.inject_silent_done(hottest[k]);
                    sim.run(jobs);
                    const auto& m = sim.metrics();
                    row.metric("failed", m.jobs_failed)
                        .metric("monitor rescues", m.monitor_initiations)
                        .metric("heartbeats", m.network.heartbeats);
                  });
  }
  b.note("monitoring: 12 hottest sensors fail silently — the ring is what "
         "makes silent failures survivable.");

  BenchSection& delays = b.section("delay");
  std::optional<std::uint64_t> reference_served;
  for (const SimTime delay : {0, 1, 3, 9, 27}) {
    delays.run_case("delay=" + std::to_string(delay),
                    [&, delay](MetricRow& row) {
                      OnlineConfig cfg = base;
                      cfg.max_message_delay = delay;
                      const auto m = run_with(cfg);
                      if (!reference_served) reference_served = m.jobs_served;
                      if (m.jobs_served != *reference_served)
                        b.fail("delay changed the outcome — protocol bug");
                      row.metric("served", m.jobs_served)
                          .metric("failed", m.jobs_failed)
                          .metric("events processed proxy",
                                  m.network.total());
                    });
  }
  b.note("delay: protocol outcome is delay-invariant (served must not "
         "move); only message latency changes.");

  BenchSection& radii = b.section("radius");
  for (const std::int64_t radius : {1, 2, 3}) {
    radii.run_case("radius=" + std::to_string(radius),
                   [&, radius](MetricRow& row) {
                     OnlineConfig cfg = base;
                     cfg.neighbor_radius = radius;
                     const auto m = run_with(cfg);
                     row.metric("served", m.jobs_served)
                         .metric("failed", m.jobs_failed)
                         .metric("msgs/job",
                                 static_cast<double>(m.network.total()) /
                                     static_cast<double>(jobs.size()),
                                 1);
                   });
  }
  b.note("radius: paper uses 2; radius 1 still connects a cube, radius 3 "
         "fattens the flood. Outcomes are radius-invariant, only message "
         "counts move.");
}

// E12 — general graphs (the paper's Chapter 6 open direction).
void suite_graphs(BenchRun& b) {
  const std::int64_t n = 12;
  const Box box = Box::cube(Point{0, 0}, n);

  const auto vecify = [](const SpatialGraph& sg, const DemandMap& d) {
    std::vector<double> v(sg.points.size(), 0.0);
    for (const auto& [p, val] : d) {
      auto it = sg.index.find(p);
      if (it != sg.index.end()) v[it->second] = val;
    }
    return v;
  };

  struct Case {
    Point at;
    double amount;
  };
  for (const Case& c : {Case{Point{6, 6}, 60.0}, Case{Point{0, 0}, 60.0},
                        Case{Point{6, 6}, 240.0}}) {
    const std::string name =
        "at" + c.at.to_string() + "/d=" + fmt(c.amount);
    b.run_case(name, [&, c](MetricRow& row) {
      DemandMap d(2);
      d.set(c.at, c.amount);

      const SpatialGraph grid = make_grid_graph(box);
      // Vertical wall two columns right of the demand, with one gap.
      std::vector<Point> wall;
      for (std::int64_t y = 0; y < n; ++y)
        if (y != n - 1) wall.push_back(Point{c.at[0] + 2, y});
      const SpatialGraph walled = make_grid_with_holes(box, wall);
      const SpatialGraph torus = make_torus(n);
      const SpatialGraph roads =
          make_weighted_roadways(box, {c.at[1]}, /*side_cost=*/5);

      row.metric("grid omega*",
                 graph_omega_star_flow(grid.graph, vecify(grid, d)))
          .metric("lattice check", omega_star_flow(d))
          .metric("walled grid",
                  graph_omega_star_flow(walled.graph, vecify(walled, d)))
          .metric("torus", graph_omega_star_flow(torus.graph, vecify(torus, d)))
          .metric("roadways (x5 side cost)",
                  graph_omega_star_flow(roads.graph, vecify(roads, d)));
    });
  }
  b.note("Shape check: interior demand — grid == lattice (anchor) and the "
         "torus matches too; corner demand — the torus beats the grid (no "
         "truncated balls); walls raise omega*; 5x side streets raise it "
         "more (the highway only helps along one row). Note: lattice omega* "
         "can dip below the finite grid's when the infinite lattice offers "
         "more suppliers than the n x n box.");
}

// E10 — substrate micro-benchmarks: the primitives every experiment leans
// on, timed by the harness (inner loops keep each case measurable).
void suite_substrates(BenchRun& b) {
  // Each case reports its own us/iter from an inner loop; the harness
  // ms/rep column times the whole loop.
  const auto looped = [](std::int64_t iters,
                         const std::function<double()>& body,
                         MetricRow& row) {
    WallTimer timer;
    double last = 0.0;
    for (std::int64_t i = 0; i < iters; ++i) last = body();
    const double ms = timer.elapsed_ms();
    row.metric("iters", iters)
        .metric("us/iter", 1000.0 * ms / static_cast<double>(iters), 3)
        .metric("value", last);
  };

  b.run_case("l1_ball_volume/r=100000", [&](MetricRow& row) {
    looped(100000,
           [] { return static_cast<double>(l1_ball_volume(2, 100000)); }, row);
  });
  b.run_case("box_neighborhood_dp/64x64/r=4096", [&](MetricRow& row) {
    const std::vector<std::int64_t> sides{64, 64};
    looped(2000,
           [&sides] {
             return static_cast<double>(box_neighborhood_volume(sides, 4096));
           },
           row);
  });
  b.run_case("neighborhood_bfs/r=16", [&](MetricRow& row) {
    const std::vector<Point> t{Point{0, 0}, Point{5, 3}, Point{9, 9}};
    looped(200,
           [&t] { return static_cast<double>(neighborhood_volume(t, 16)); },
           row);
  });
  b.run_case("omega_for_box/s=64", [&](MetricRow& row) {
    const Box box = Box::cube(Point{0, 0}, 64);
    looped(200, [&box] { return omega_for_box(box, 1e9); }, row);
  });
  b.run_case("omega_incremental/s=64", [&](MetricRow& row) {
    // Incremental point-delta ω vs the from-scratch DP: 200 random deltas
    // on a fixed box, each answer cross-checked against omega_for_box.
    const Box box = Box::cube(Point{0, 0}, 64);
    looped(5,
           [&box, &b] {
             Rng rng(11);
             BoxOmega inc(box);
             double sum = 0.0;
             double last = 0.0;
             for (int i = 0; i < 200; ++i) {
               const double delta =
                   static_cast<double>(rng.next_int(1, 1 << 20));
               inc.add(delta);
               sum += delta;
               last = inc.omega();
               const double full = omega_for_box(box, sum);
               if (std::abs(last - full) > 1e-6 * std::max(1.0, full))
                 b.fail("incremental omega diverged from omega_for_box");
             }
             return last;
           },
           row);
  });
  b.run_case("prefix_sums/n=256", [&](MetricRow& row) {
    Rng rng(3);
    DemandMap d(2);
    for (std::int64_t k = 0; k < 256; ++k)
      d.add(Point{rng.next_int(0, 255), rng.next_int(0, 255)}, 1.0);
    const DenseGrid grid = DenseGrid::from_demand(d);
    looped(20,
           [&grid] {
             const PrefixSums ps(grid);
             return ps.max_cube_sum(4);
           },
           row);
  });
  b.run_case("prefix_sums_reference/n=256", [&](MetricRow& row) {
    // The per-element reference build, kept beside the blocked case above
    // so the JSON artifact tracks the speedup — and the values must agree
    // bit-for-bit (both builds add each lattice chain in the same order).
    Rng rng(3);
    DemandMap d(2);
    for (std::int64_t k = 0; k < 256; ++k)
      d.add(Point{rng.next_int(0, 255), rng.next_int(0, 255)}, 1.0);
    const DenseGrid grid = DenseGrid::from_demand(d);
    const PrefixSums blocked(grid, PrefixBuild::kBlocked);
    looped(20,
           [&grid, &blocked, &b] {
             const PrefixSums ps(grid, PrefixBuild::kReference);
             const double ref = ps.max_cube_sum(4);
             if (ref != blocked.max_cube_sum(4))
               b.fail("blocked prefix build diverged from the reference");
             return ref;
           },
           row);
  });
  b.run_case("simplex_lp/span=3", [&](MetricRow& row) {
    Rng rng(5);
    DemandMap d(2);
    for (int k = 0; k < 6; ++k)
      d.add(Point{rng.next_int(0, 3), rng.next_int(0, 3)},
            static_cast<double>(rng.next_int(1, 9)));
    looped(20, [&d] { return lp_value_at_radius(d, 2); }, row);
  });
  b.run_case("dinic_oracle/n=128", [&](MetricRow& row) {
    Rng rng(7);
    DemandMap d(2);
    for (std::int64_t k = 0; k < 128; ++k)
      d.add(Point{rng.next_int(0, 15), rng.next_int(0, 15)}, 1.0);
    looped(20,
           [&d] {
             return transportation_feasible(d, 3, 2.0).feasible ? 1.0 : 0.0;
           },
           row);
  });
  b.run_case("snake_index_round_trip/s=64", [&](MetricRow& row) {
    const CubePairing pairing(2, Point{0, 0}, 64);
    const Point p{32, 32};
    looped(100000,
           [&pairing, &p] {
             const auto k = pairing.snake_index(p);
             return static_cast<double>(
                 pairing.snake_vertex(Point{0, 0}, k)[0]);
           },
           row);
  });
  b.run_case("network_delivery/n=1000", [&](MetricRow& row) {
    looped(20,
           [] {
             EventQueue q;
             Network net(q, Rng(1), 3);
             std::size_t delivered = 0;
             net.set_receiver(
                 [&delivered](std::size_t, std::size_t, const Message&) {
                   ++delivered;
                 });
             for (int i = 0; i < 1000; ++i)
               net.send(static_cast<std::size_t>(i % 7), (i + 1) % 7,
                        QueryMsg{});
             q.run_to_quiescence();
             return static_cast<double>(delivered);
           },
           row);
  });
  b.run_case("online_point_burst/n=50", [&](MetricRow& row) {
    std::vector<Job> jobs;
    for (int i = 0; i < 50; ++i) jobs.push_back({Point{2, 2}, i});
    looped(5,
           [&jobs] {
             OnlineConfig cfg;
             cfg.capacity = 8.0;
             cfg.cube_side = 6;
             cfg.anchor = Point{0, 0};
             cfg.seed = 3;
             OnlineSimulation sim(2, cfg);
             return sim.run(jobs) ? 1.0 : 0.0;
           },
           row);
  });
  b.note("Substrate primitives; keeping these fast keeps every experiment "
         "above laptop-scale. Track us/iter across PRs via the JSON "
         "artifact.");
}

// E13 — the theory holds for every fixed dimension ℓ; sweep ℓ = 2, 3, 4
// (Point::kMaxDim = 4): the Thm 1.4.1 sandwich with the ℓ-dependent
// constant 2·3^ℓ + ℓ, plus full online runs of the strategy at ℓ = 3, 4.
void suite_dim_sweep(BenchRun& b) {
  const auto& reg = ScenarioRegistry::builtin();

  BenchSection& offline = b.section("offline_sandwich");
  for (const auto& name :
       {"uniform/12x12/n60", "uniform3d/6x6x6/n48", "clustered3d/8x8x8/c2/n60",
        "point3d/d60", "uniform4d/4x4x4x4/n32", "point4d/d40"}) {
    const Scenario& sc = reg.at(name);
    offline.run_case(name, [&b, &sc](MetricRow& row) {
      const DemandMap demand = sc.demand();
      const int l = demand.dim();
      const double upper_factor =
          2.0 * std::pow(3.0, static_cast<double>(l)) + static_cast<double>(l);
      const CubeBound cb = cube_bound(demand);
      const double omega_star = omega_star_flow(demand);
      const OfflinePlan plan = plan_offline(demand);
      const PlanCheck check = verify_plan(plan, demand);
      if (!check.ok) {
        b.fail(sc.name + ": plan failed: " + check.issue);
        return;
      }
      if (cb.omega_c > omega_star + 1e-6 ||
          check.max_energy > plan.capacity_bound + 1e-6)
        b.fail(sc.name + ": sandwich violated at l=" + std::to_string(l));
      row.metric("l", l)
          .metric("omega_c", cb.omega_c)
          .metric("omega* (flow)", omega_star)
          .metric("plan energy", check.max_energy)
          .metric("upper factor (2*3^l+l)", upper_factor, 0)
          .metric("plan/omega_c",
                  check.max_energy / std::max(cb.omega_c, 1e-9), 2);
    });
  }

  BenchSection& online = b.section("online_strategy");
  for (const auto& name : {"uniform3d/6x6x6/n48", "uniform4d/4x4x4x4/n32"}) {
    const Scenario& sc = reg.at(name);
    online.run_case(name, [&b, &sc](MetricRow& row) {
      const auto jobs = sc.jobs();
      const DemandMap demand = demand_of_stream(jobs, sc.dim);
      const OnlineConfig cfg = default_online_config(demand, /*seed=*/5);
      OnlineSimulation sim(sc.dim, cfg);
      if (!sim.run(jobs))
        b.fail(sc.name + ": strategy dropped jobs at the Lemma 3.3.1 "
               "capacity");
      const auto& m = sim.metrics();
      row.metric("l", sc.dim)
          .metric("capacity W", cfg.capacity)
          .metric("cube side", cfg.cube_side)
          .metric("served", m.jobs_served)
          .metric("failed", m.jobs_failed)
          .metric("msgs/job",
                  static_cast<double>(m.network.total()) /
                      static_cast<double>(jobs.size()),
                  1)
          .metric("max energy", m.max_energy_spent);
    });
  }

  b.note("Shape check: the sandwich holds with the l-dependent constant at "
         "every dimension, and the Chapter 3 strategy serves complete "
         "streams at l = 3 and 4 — the paper's 'constant dimension l' "
         "really is a free parameter of the implementation.");
}

// Shared by the stream suites: a full engine run with wall-clock
// throughput.
struct StreamProbe {
  StreamResult result;
  double ms = 0.0;
  double jobs_per_sec = 0.0;
};

StreamProbe probe_stream(int dim, const StreamConfig& cfg,
                         const std::vector<Job>& jobs) {
  StreamProbe p;
  WallTimer timer;
  p.result = serve_stream(dim, cfg, jobs);
  p.ms = timer.elapsed_ms();
  p.jobs_per_sec = p.ms > 0.0
                       ? 1000.0 * static_cast<double>(jobs.size()) / p.ms
                       : 0.0;
  return p;
}

bool same_stream_outcome(const StreamResult& a, const StreamResult& b) {
  return a.metrics == b.metrics && a.served_jobs == b.served_jobs &&
         a.failed_jobs == b.failed_jobs && a.shed_jobs == b.shed_jobs &&
         a.jobs_shed == b.jobs_shed && a.jobs_rejected == b.jobs_rejected &&
         a.latency == b.latency && a.timeseries == b.timeseries &&
         a.counters == b.counters && a.cubes == b.cubes;
}

// The serving outcome alone — everything same_stream_outcome compares
// except the counter registry. Used where one run has counters on and
// the other off: the obs layer must not perturb serving, but obs-gated
// counter fields are legitimately zero on the off side.
bool same_serving_outcome(const StreamResult& a, const StreamResult& b) {
  return a.metrics == b.metrics && a.served_jobs == b.served_jobs &&
         a.failed_jobs == b.failed_jobs && a.shed_jobs == b.shed_jobs &&
         a.jobs_shed == b.jobs_shed && a.jobs_rejected == b.jobs_rejected &&
         a.latency == b.latency && a.timeseries == b.timeseries &&
         a.cubes == b.cubes;
}

// A per-run-unique trace path under the temp directory, removed on
// destruction (also when a check_error escapes a case) — so two
// concurrent suite runs on one machine never truncate each other's
// files mid-replay. Non-copyable: a copy's destructor would delete a
// live file; keep instances in a std::deque, whose growth never moves
// elements.
class ScopedTempFile {
 public:
  explicit ScopedTempFile(const std::string& stem)
      : path_(std::filesystem::temp_directory_path().string() + "/cmvrp_" +
              stem + "_" + run_token() + ".trace") {}
  ~ScopedTempFile() { std::remove(path_.c_str()); }
  ScopedTempFile(const ScopedTempFile&) = delete;
  ScopedTempFile& operator=(const ScopedTempFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  static const std::string& run_token() {
    static const std::string token = [] {
      std::random_device rd;
      std::ostringstream os;
      os << std::hex << rd() << rd();
      return os.str();
    }();
    return token;
  }

  std::string path_;
};

// Shared by the stream suites' "dims" sections: runs each named ℓ = 3/4
// scenario at 1 and 2 threads under the theory config, asserting the
// thread-count determinism contract (and, when `require_complete`,
// zero dropped jobs).
void run_dim_stream_cases(BenchRun& b, BenchSection& section,
                          const std::vector<std::string>& names,
                          std::int64_t batch_size, bool require_complete) {
  for (const auto& name : names) {
    const Scenario& sc = ScenarioRegistry::builtin().at(name);
    const auto jobs = sc.jobs();
    StreamConfig cfg;
    cfg.online = default_online_config(demand_of_stream(jobs, sc.dim), 7);
    cfg.batch_size = batch_size;
    cfg.region = sc.region;  // dense cube-slot routing (flat shard state)
    std::optional<StreamResult> reference;
    for (const int threads : {1, 2}) {
      section.run_case(
          name + "/threads=" + std::to_string(threads),
          [&b, &sc, &jobs, cfg, &reference, require_complete,
           threads](MetricRow& row) {
            StreamConfig c = cfg;
            c.threads = threads;
            const StreamProbe p = probe_stream(sc.dim, c, jobs);
            if (!reference) reference = p.result;
            else if (!same_stream_outcome(*reference, p.result))
              b.fail(sc.name + ": thread count changed the stream outcome");
            if (require_complete && p.result.metrics.jobs_failed != 0)
              b.fail(sc.name + ": theory capacity dropped jobs at l = " +
                     std::to_string(sc.dim));
            row.metric("l", sc.dim)
                .metric("served", p.result.metrics.jobs_served)
                .metric("failed", p.result.metrics.jobs_failed)
                .metric("cubes", p.result.cubes)
                .metric("jobs/sec", p.jobs_per_sec, 0);
          });
    }
  }
}

// E14 — streaming engine CI gate: small stream, the 1-vs-2-thread
// determinism contract, seconds total.
void suite_stream_smoke(BenchRun& b) {
  const Scenario& sc = ScenarioRegistry::builtin().at("uniform/32x32/n2000");
  const auto jobs = sc.jobs();
  StreamConfig cfg;
  cfg.online.capacity = 24.0;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point{0, 0};
  cfg.online.seed = 7;
  cfg.batch_size = 128;
  cfg.region = sc.region;

  std::optional<StreamResult> reference;
  for (const int threads : {1, 2}) {
    b.run_case("threads=" + std::to_string(threads),
               [&, threads](MetricRow& row) {
                 StreamConfig c = cfg;
                 c.threads = threads;
                 const StreamProbe p = probe_stream(2, c, jobs);
                 if (!reference) reference = p.result;
                 else if (!same_stream_outcome(*reference, p.result))
                   b.fail("thread count changed the stream outcome");
                 row.metric("served", p.result.metrics.jobs_served)
                     .metric("failed", p.result.metrics.jobs_failed)
                     .metric("replacements", p.result.metrics.replacements)
                     .metric("cubes", p.result.cubes)
                     .metric("jobs/sec", p.jobs_per_sec, 0);
               });
  }

  // ℓ = 3 and ℓ = 4 streams: the same determinism contract must hold in
  // every dimension the engine serves (dim_sweep covers offline+online
  // only). Theory capacity, so complete service is also asserted.
  run_dim_stream_cases(b, b.section("dims"),
                       {"uniform3d/8x8x8/n1500", "uniform4d/6x6x6x6/n1000"},
                       /*batch_size=*/128, /*require_complete=*/true);

  b.note("Stream smoke: 2000 jobs over 64 cubes; 1-thread and 2-thread "
         "runs must be bit-identical (all nondeterminism lives in per-cube "
         "seeds) — and the same contract holds for the l = 3/4 streams at "
         "theory capacity.");
}

// E15 — streaming engine scaling: throughput vs threads and batch size on
// the large-grid scenario; outcomes must stay bit-identical throughout.
void suite_stream_scaling(BenchRun& b) {
  const Scenario& sc = ScenarioRegistry::builtin().at("uniform/64x64/n20000");
  const auto jobs = sc.jobs();
  StreamConfig cfg;
  cfg.online.capacity = 24.0;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point{0, 0};
  cfg.online.seed = 7;
  cfg.batch_size = 256;
  // Dense cube-slot routing: the scenario's bounding region lets the
  // engine precompute the corner→slot table, so every in-region job takes
  // the flat-array path (no per-job hashing on the route or serve side).
  cfg.region = sc.region;
  // PR 5 throughput lever: amortize the §3.2.5 monitoring sweep + drain
  // across batched arrivals (one settle per 16 arrivals per cube instead
  // of one per arrival). Outcome metrics — served/failed/replacements/
  // cubes and the served/failed set hashes — are unchanged vs the
  // stride-1 baseline (heartbeats are protocol no-ops on failure-free
  // streams); only jobs/sec moves.
  cfg.online.monitor_stride = 16;

  const unsigned hw = std::thread::hardware_concurrency();

  // Baseline probe outside the timed cases: the determinism reference and
  // the speedup denominator must come from a warm single-thread run even
  // under --warmup or a --filter that skips the threads=1 case.
  const StreamProbe baseline = [&] {
    probe_stream(2, cfg, jobs);  // warm caches/allocator once
    return probe_stream(2, cfg, jobs);
  }();
  const StreamResult& reference = baseline.result;
  const double ms_at_1 = baseline.ms;

  BenchSection& threads = b.section("threads");
  for (const int t : {1, 2, 4, 8}) {
    threads.run_case("threads=" + std::to_string(t),
                     [&, t](MetricRow& row) {
                       StreamConfig c = cfg;
                       c.threads = t;
                       const StreamProbe p = probe_stream(2, c, jobs);
                       if (!same_stream_outcome(reference, p.result))
                         b.fail("thread count changed the stream outcome");
                       row.metric("hw threads", static_cast<int>(hw))
                           .metric("served", p.result.metrics.jobs_served)
                           .metric("failed", p.result.metrics.jobs_failed)
                           .metric("replacements",
                                   p.result.metrics.replacements)
                           .metric("cubes", p.result.cubes)
                           .metric("cube slots", p.result.cube_slots)
                           .metric("route par", p.result.routed_parallel_batches)
                           .metric("route ser", p.result.routed_serial_batches)
                           .metric("routing ms", p.result.routing_ms, 2)
                           .metric("jobs/sec", p.jobs_per_sec, 0)
                           .metric("speedup vs 1t",
                                   p.ms > 0.0 ? ms_at_1 / p.ms : 0.0, 2);
                     });
  }

  BenchSection& batches = b.section("batch_size");
  for (const std::int64_t batch : {32, 256, 2048}) {
    batches.run_case("batch=" + std::to_string(batch),
                     [&, batch](MetricRow& row) {
                       StreamConfig c = cfg;
                       c.threads = hw >= 4 ? 4 : 2;
                       c.batch_size = batch;
                       const StreamProbe p = probe_stream(2, c, jobs);
                       if (!same_stream_outcome(reference, p.result))
                         b.fail("batch size changed the stream outcome");
                       row.metric("batches", p.result.batches)
                           .metric("served", p.result.metrics.jobs_served)
                           .metric("jobs/sec", p.jobs_per_sec, 0);
                     });
  }

  // Large ℓ = 3/4 streams: throughput and determinism in higher
  // dimensions (the engine's per-cube fleets are side^l vehicles, so
  // jobs/sec legitimately drops with l; the artifact tracks by how much).
  run_dim_stream_cases(b, b.section("dims"),
                       {"uniform3d/16x16x16/n8000", "uniform4d/8x8x8x8/n4000"},
                       /*batch_size=*/256, /*require_complete=*/false);

  // --- obs: Tier-A counters + the Lemma 3.3.1 flood bound -----------------
  // Counters on: serving outcomes must be untouched, and every Phase I
  // computation's Query count must respect the Lemma 3.3.1 flood bound
  // s^l * (2r+1)^l — queries relay only inside the serving cube's
  // radius-r neighbor graph, so the per-computation flood cannot exceed
  // vehicles x neighbors. messages-per-replacement turns the "~60
  // messages per replacement" folklore into a recorded number the CI
  // artifact tracks run over run. Checked at l = 2 (the scaling
  // workload) and at l = 3/4 (smoke-sized streams under the theory
  // capacity, where replacements actually occur).
  BenchSection& obs = b.section("obs");
  obs.run_case("l=2/" + sc.name, [&](MetricRow& row) {
    StreamConfig c = cfg;
    c.threads = hw >= 4 ? 4 : 2;
    c.online.obs.counters = true;
    const StreamProbe p = probe_stream(2, c, jobs);
    if (!same_serving_outcome(reference, p.result))
      b.fail("enabling counters changed the serving outcome");
    const CubeCounters& k = p.result.counters;
    const std::uint64_t bound = query_flood_bound(
        c.online.cube_side, c.online.neighbor_radius, 2);
    if (k.max_queries_per_comp > bound)
      b.fail("Lemma 3.3.1 violated at l = 2: a computation sent " +
             std::to_string(k.max_queries_per_comp) + " queries, bound " +
             std::to_string(bound));
    const double mpr =
        k.replacements > 0 ? static_cast<double>(k.messages_total()) /
                                 static_cast<double>(k.replacements)
                           : 0.0;
    row.metric("l", 2)
        .metric("messages", k.messages_total())
        .metric("replacements", k.replacements)
        .metric("msgs/replacement", mpr, 1)
        .metric("max queries/comp", k.max_queries_per_comp)
        .metric("flood bound", bound)
        .metric("cascade p99", p.result.counters.cascade.percentile(99.0));
  });
  for (const auto& name :
       {std::string("uniform3d/8x8x8/n1500"),
        std::string("uniform4d/6x6x6x6/n1000")}) {
    const Scenario& dsc = ScenarioRegistry::builtin().at(name);
    obs.run_case("l=" + std::to_string(dsc.dim) + "/" + name,
                 [&b, &dsc](MetricRow& row) {
                   const auto djobs = dsc.jobs();
                   // Deliberately undersized capacity (vs the Lemma 3.3.1
                   // search): vehicles exhaust, so Phase I computations and
                   // replacement floods actually occur — at theory capacity
                   // the bound check is vacuous (zero queries).
                   StreamConfig c;
                   c.online.capacity = 6.0;
                   c.online.cube_side = 2;
                   c.online.anchor = Point::origin(dsc.dim);
                   c.online.seed = 7;
                   c.online.obs.counters = true;
                   c.batch_size = 128;
                   c.region = dsc.region;
                   const StreamProbe p = probe_stream(dsc.dim, c, djobs);
                   const CubeCounters& k = p.result.counters;
                   const std::uint64_t bound = query_flood_bound(
                       c.online.cube_side, c.online.neighbor_radius, dsc.dim);
                   if (k.max_queries_per_comp > bound)
                     b.fail("Lemma 3.3.1 violated at l = " +
                            std::to_string(dsc.dim) + ": a computation sent " +
                            std::to_string(k.max_queries_per_comp) +
                            " queries, bound " + std::to_string(bound));
                   const double mpr =
                       k.replacements > 0
                           ? static_cast<double>(k.messages_total()) /
                                 static_cast<double>(k.replacements)
                           : 0.0;
                   row.metric("l", dsc.dim)
                       .metric("messages", k.messages_total())
                       .metric("replacements", k.replacements)
                       .metric("msgs/replacement", mpr, 1)
                       .metric("max queries/comp", k.max_queries_per_comp)
                       .metric("flood bound", bound);
                 });
  }

  // --- obs_overhead: the off-by-default fast path ------------------------
  // Single-thread serve throughput with counters off vs on. The off path
  // is the acceptance target (<= 2% regression vs the pre-obs engine —
  // structurally near-zero: one dead branch per hook); the on/off ratio
  // is recorded so a future hook that leaks work onto the off path, or
  // an expensive on path, shows up in the artifact diff.
  BenchSection& overhead = b.section("obs_overhead");
  std::optional<double> off_jps;
  overhead.run_case("counters=off", [&](MetricRow& row) {
    StreamConfig c = cfg;
    c.threads = 1;
    const StreamProbe p = probe_stream(2, c, jobs);
    if (!same_stream_outcome(reference, p.result))
      b.fail("counters-off run diverged from the reference outcome");
    off_jps = p.jobs_per_sec;
    row.metric("jobs/sec", p.jobs_per_sec, 0);
  });
  overhead.run_case("counters=on", [&](MetricRow& row) {
    StreamConfig c = cfg;
    c.threads = 1;
    c.online.obs.counters = true;
    const StreamProbe p = probe_stream(2, c, jobs);
    if (!same_serving_outcome(reference, p.result))
      b.fail("enabling counters changed the serving outcome");
    row.metric("jobs/sec", p.jobs_per_sec, 0)
        .metric("on/off ratio",
                off_jps && *off_jps > 0.0 ? p.jobs_per_sec / *off_jps : 0.0,
                3);
  });
  overhead.run_case("spans=on", [&](MetricRow& row) {
    StreamConfig c = cfg;
    c.threads = 1;
    c.online.obs.counters = true;
    c.online.obs.spans = true;
    const StreamProbe p = probe_stream(2, c, jobs);
    if (!same_serving_outcome(reference, p.result))
      b.fail("enabling span tracing changed the serving outcome");
    row.metric("jobs/sec", p.jobs_per_sec, 0)
        .metric("on/off ratio",
                off_jps && *off_jps > 0.0 ? p.jobs_per_sec / *off_jps : 0.0,
                3)
        .metric("span records", p.result.counters.spans_emitted);
  });

  b.note("Stream scaling: 20000 jobs over 256 cubes (side 4). Outcomes "
         "are bit-identical across every thread count and batch size; "
         "speedup tracks physical cores (the 'hw threads' column says what "
         "this machine can show). The dims section extends both claims to "
         "l = 3 and l = 4 streams. The obs section checks the Lemma 3.3.1 "
         "query-flood bound at l = 2/3/4 and records messages-per-"
         "replacement; obs_overhead records the counters-off fast path "
         "against the counters-on and spans-on runs at one thread.");
}

// served + failed + shed must partition the arrival indices 0..n-1
// exactly: every job has exactly one outcome, nothing is double-counted,
// nothing is lost in a bounded queue.
bool partitions_arrivals(const StreamResult& r, std::size_t n) {
  std::vector<std::int64_t> all;
  all.reserve(n);
  all.insert(all.end(), r.served_jobs.begin(), r.served_jobs.end());
  all.insert(all.end(), r.failed_jobs.begin(), r.failed_jobs.end());
  all.insert(all.end(), r.shed_jobs.begin(), r.shed_jobs.end());
  if (all.size() != n) return false;
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < n; ++i)
    if (all[i] != static_cast<std::int64_t>(i)) return false;
  return true;
}

// E18 — latency-aware serving: tail percentiles of the per-job lifecycle
// timestamps must be bit-identical across thread counts AND batch sizes
// (admission off reproduces the historical stream_scaling outcome
// exactly), and under saturation the three admission policies must
// produce deterministic, mutually distinct outcome partitions.
void suite_stream_latency(BenchRun& b) {
  // --- tails: the stream_scaling workload, admission off ------------------
  const Scenario& sc = ScenarioRegistry::builtin().at("uniform/64x64/n20000");
  const auto jobs = sc.jobs();
  StreamConfig cfg;
  cfg.online.capacity = 24.0;
  cfg.online.cube_side = 4;
  cfg.online.anchor = Point{0, 0};
  cfg.online.seed = 7;
  cfg.online.monitor_stride = 16;
  cfg.online.sample_stride = 16;  // timeseries on: it must not perturb
  cfg.batch_size = 256;
  cfg.region = sc.region;

  // Reference outside the timed cases (filter/warmup-proof, like
  // stream_scaling's baseline).
  const StreamResult reference = serve_stream(2, cfg, jobs);

  BenchSection& tails = b.section("tails");
  for (const int threads : {1, 2, 8}) {
    for (const std::int64_t batch : {32, 256}) {
      tails.run_case(
          "threads=" + std::to_string(threads) + "/batch=" +
              std::to_string(batch),
          [&, threads, batch](MetricRow& row) {
            StreamConfig c = cfg;
            c.threads = threads;
            c.batch_size = batch;
            const StreamProbe p = probe_stream(2, c, jobs);
            if (!same_stream_outcome(reference, p.result))
              b.fail("threads/batch changed the latency outcome");
            // PR 6 anchor: admission off (and sampling on) must leave the
            // historical stream_scaling outcome untouched.
            if (p.result.metrics.jobs_served != 20000 ||
                p.result.metrics.jobs_failed != 0 ||
                p.result.metrics.replacements != 136 ||
                p.result.cubes != 256)
              b.fail("admission-off run diverged from the historical "
                     "stream_scaling outcome (20000/0/136/256)");
            if (p.result.latency.count() != p.result.metrics.jobs_served)
              b.fail("latency histogram count != served jobs");
            if (p.result.jobs_shed != 0 || p.result.jobs_rejected != 0 ||
                !p.result.shed_jobs.empty())
              b.fail("admission-off run shed or rejected jobs");
            row.metric("p50", p.result.latency.percentile(50.0))
                .metric("p90", p.result.latency.percentile(90.0))
                .metric("p99", p.result.latency.percentile(99.0))
                .metric("max", p.result.latency.observed_max())
                .metric("ts samples", p.result.timeseries.samples)
                .metric("jobs/sec", p.jobs_per_sec, 0);
          });
    }
  }

  // --- admission: saturating streams at deliberately low capacity ---------
  struct PolicyCase {
    const char* name;
    AdmissionPolicy policy;
  };
  constexpr PolicyCase kPolicies[] = {
      {"unbounded", AdmissionPolicy::kUnbounded},
      {"reject", AdmissionPolicy::kReject},
      {"shed", AdmissionPolicy::kShed},
  };
  BenchSection& admission = b.section("admission");
  for (const char* name :
       {"hotspot/s4c2/n2000/b128", "heavytail2d/s4c2/n2000/a1.1"}) {
    const Scenario& sat = ScenarioRegistry::builtin().at(name);
    const auto sat_jobs = sat.jobs();
    StreamConfig base;
    base.online.capacity = 8.0;  // undersized: bursts dwarf the fleet
    base.online.cube_side = 4;
    base.online.anchor = Point{0, 0};
    base.online.seed = 7;
    base.online.queue_limit = 4;
    base.online.service_ticks = 4;
    base.online.sample_stride = 8;
    base.batch_size = 64;
    base.region = sat.region;

    // Reference runs outside the timed cases (filter/reps-proof): one
    // per policy, at 1 thread / batch 64.
    std::vector<StreamResult> references;
    for (const PolicyCase& pc : kPolicies) {
      StreamConfig c = base;
      c.online.admission = pc.policy;
      references.push_back(serve_stream(2, c, sat_jobs));
    }
    for (std::size_t k = 0; k < std::size(kPolicies); ++k) {
      const PolicyCase& pc = kPolicies[k];
      const StreamResult& ref = references[k];
      admission.run_case(
          std::string(name) + "/" + pc.name, [&, pc](MetricRow& row) {
            // Determinism under overload: another thread count and a
            // different batch size must reproduce the run bit for bit.
            StreamConfig c = base;
            c.online.admission = pc.policy;
            c.threads = 2;
            c.batch_size = 32;
            const StreamProbe p = probe_stream(2, c, sat_jobs);
            if (!same_stream_outcome(ref, p.result))
              b.fail(std::string(name) + "/" + pc.name +
                     ": threads/batch changed the admission outcome");
            if (!partitions_arrivals(p.result, sat_jobs.size()))
              b.fail(std::string(name) + "/" + pc.name +
                     ": served+failed+shed do not partition the arrivals");
            if (pc.policy == AdmissionPolicy::kUnbounded &&
                (p.result.jobs_shed != 0 || p.result.jobs_rejected != 0))
              b.fail("unbounded admission dropped jobs");
            if (pc.policy != AdmissionPolicy::kUnbounded) {
              if (p.result.jobs_shed + p.result.jobs_rejected == 0)
                b.fail(std::string(name) + "/" + pc.name +
                       ": saturating stream dropped nothing");
              if (p.result.timeseries.max_queue_depth >
                  base.online.queue_limit)
                b.fail("sampled backlog depth exceeded the queue limit");
            }
            row.metric("served", p.result.metrics.jobs_served)
                .metric("failed", p.result.metrics.jobs_failed)
                .metric("shed", p.result.jobs_shed)
                .metric("rejected", p.result.jobs_rejected)
                .metric("p50", p.result.latency.percentile(50.0))
                .metric("p99", p.result.latency.percentile(99.0))
                .metric("max depth", p.result.timeseries.max_queue_depth)
                .metric("jobs/sec", p.jobs_per_sec, 0);
          });
    }
    // The three policies must be mutually distinct runs, not relabelings:
    // each pair differs in who got served or who was dropped.
    admission.run_case(std::string(name) + "/distinct", [&](MetricRow& row) {
      std::size_t distinct_pairs = 0;
      for (std::size_t i = 0; i < references.size(); ++i)
        for (std::size_t j = i + 1; j < references.size(); ++j) {
          if (references[i].served_jobs == references[j].served_jobs &&
              references[i].shed_jobs == references[j].shed_jobs)
            b.fail(std::string(name) +
                   ": two admission policies produced identical outcomes");
          else
            ++distinct_pairs;
        }
      row.metric("policies", references.size())
          .metric("distinct pairs", distinct_pairs);
    });
  }

  b.note("Latency tails are exact (unit integer buckets, nearest-rank "
         "percentiles) and bit-identical across threads 1/2/8 and batches "
         "32/256; admission off reproduces the PR 6 stream_scaling outcome "
         "exactly. Under saturation, unbounded/reject/shed give "
         "deterministic, mutually distinct partitions of the arrivals "
         "(served + failed + shed covers every index exactly once).");
}

// E16 — out-of-core trace replay: bounded-memory replay off an mmap-ed
// trace must be bit-identical to in-memory serving at every thread
// count, and the artifact tracks replay jobs/sec against the in-memory
// stream_scaling baseline.
void suite_stream_replay(BenchRun& b) {
  const ScopedTempFile hotspot_file("replay_hotspot");
  const ScopedTempFile scaling_file("replay_scaling");
  const std::string& hotspot_trace = hotspot_file.path();
  const std::string& scaling_trace = scaling_file.path();

  // Producer side of the out-of-core path: streaming generator →
  // TraceWriter, one record at a time, no job vector.
  {
    TraceWriter writer(hotspot_trace, 2);
    Rng rng(611);
    bursty_hotspot_stream(2, 4, 8, 4000, 64, rng,
                          [&writer](const Job& job) { writer.append(job); });
    writer.close();
  }

  // In-memory baseline: the trace's own bytes read back into one vector.
  // Replay equivalence compares bounded replay against serving the
  // identical jobs from memory — no cross-file coupling to the registry
  // scenario's generator parameters.
  const std::vector<Job> jobs = [&hotspot_trace] {
    TraceReader reader(hotspot_trace);
    return reader.read_all();
  }();
  StreamConfig cfg;
  cfg.online.capacity = 24.0;
  cfg.online.cube_side = 4;  // engine cubes align with the generator's walls
  cfg.online.anchor = Point{0, 0};
  cfg.online.seed = 7;
  cfg.batch_size = 256;
  const StreamProbe memory = probe_stream(2, cfg, jobs);

  BenchSection& eq = b.section("equivalence");
  for (const int threads : {1, 2, 8}) {
    eq.run_case("threads=" + std::to_string(threads),
                [&, threads](MetricRow& row) {
                  StreamConfig c = cfg;
                  c.threads = threads;
                  TraceReader reader(hotspot_trace);
                  TraceReplayer replayer(2, c);
                  WallTimer timer;
                  const StreamResult r = replayer.replay(reader);
                  const double ms = timer.elapsed_ms();
                  if (!same_stream_outcome(memory.result, r))
                    b.fail("trace replay diverged from in-memory serving at "
                           "threads=" +
                           std::to_string(threads));
                  row.metric("served", r.metrics.jobs_served)
                      .metric("failed", r.metrics.jobs_failed)
                      .metric("cubes", r.cubes)
                      .metric_bool("mmap", reader.mapped())
                      .metric("chunk jobs",
                              static_cast<std::uint64_t>(
                                  replayer.chunk_jobs()))
                      .metric("jobs/sec",
                              ms > 0.0 ? 1000.0 *
                                             static_cast<double>(jobs.size()) /
                                             ms
                                       : 0.0,
                              0);
                });
  }

  // Replay throughput vs the in-memory stream_scaling baseline on the
  // same 20000-job stream.
  const Scenario& big = ScenarioRegistry::builtin().at("uniform/64x64/n20000");
  const auto big_jobs = big.jobs();
  {
    TraceWriter writer(scaling_trace, 2);
    writer.append(big_jobs.data(), big_jobs.size());
    writer.close();
  }
  BenchSection& tp = b.section("throughput");
  tp.run_case("memory/64x64/n20000", [&](MetricRow& row) {
    const StreamProbe p = probe_stream(2, cfg, big_jobs);
    row.metric("served", p.result.metrics.jobs_served)
        .metric("jobs/sec", p.jobs_per_sec, 0);
  });
  tp.run_case("replay/64x64/n20000", [&](MetricRow& row) {
    TraceReader reader(scaling_trace);
    TraceReplayer replayer(2, cfg);
    WallTimer timer;
    const StreamResult r = replayer.replay(reader);
    const double ms = timer.elapsed_ms();
    row.metric("served", r.metrics.jobs_served)
        .metric("jobs/sec",
                ms > 0.0
                    ? 1000.0 * static_cast<double>(big_jobs.size()) / ms
                    : 0.0,
                0);
  });

  b.note("Replay equivalence: TraceReplayer over the generator-written "
         "trace is bit-identical to in-memory serve_stream at threads 1/2/8 "
         "(peak job storage is one engine batch, not the trace). The "
         "throughput section prices the mmap decode against the in-memory "
         "baseline on the stream_scaling workload.");
}

// E17 — recorder + multiplexer: engine-side outcome recording must leave
// an audit trail bit-identical to the in-memory digests at every thread
// count, and deterministic k-way multi-trace replay must match the
// in-memory merge reference across thread counts and source orderings.
void suite_record_mux(BenchRun& b) {
  const ScopedTempFile outcome_file("record_outcomes");
  const std::string& outcome_trace = outcome_file.path();

  StreamConfig cfg;
  cfg.online.capacity = 24.0;
  cfg.online.cube_side = 4;  // engine cubes align with the generators' walls
  cfg.online.anchor = Point{0, 0};
  cfg.online.seed = 7;
  cfg.online.monitor_stride = 16;  // the amortized-monitoring path
  cfg.batch_size = 256;

  // --- recording: outcome trail vs in-memory digests ----------------------
  const auto& reg = ScenarioRegistry::builtin();
  const auto jobs = reg.at("hotspot/s4c8/n4000/b64").jobs();
  const StreamProbe plain = probe_stream(2, cfg, jobs);
  const std::uint64_t served_ref = index_set_digest(plain.result.served_jobs);
  const std::uint64_t failed_ref = index_set_digest(plain.result.failed_jobs);

  BenchSection& record = b.section("record");
  for (const int threads : {1, 2}) {
    record.run_case(
        "threads=" + std::to_string(threads), [&, threads](MetricRow& row) {
          StreamConfig c = cfg;
          c.threads = threads;
          StreamEngine engine(2, c);
          OutcomeRecorder recorder(outcome_trace, 2);
          engine.set_observer(&recorder);
          WallTimer timer;
          engine.ingest(jobs);
          const StreamResult r = engine.finish();
          recorder.close();
          const double ms = timer.elapsed_ms();
          if (!same_stream_outcome(plain.result, r))
            b.fail("recording changed the serving outcome at threads=" +
                   std::to_string(threads));
          if (recorder.served_digest() != served_ref ||
              recorder.failed_digest() != failed_ref)
            b.fail("outcome trail digests diverged from the in-memory "
                   "served/failed sets at threads=" +
                   std::to_string(threads));
          TraceReader back(outcome_trace);
          const OutcomeSummary audit = scan_outcomes(back);
          if (audit.served_digest != served_ref ||
              audit.failed_digest != failed_ref)
            b.fail("on-disk audit scan disagreed with the recorder");
          row.metric("served", r.metrics.jobs_served)
              .metric("failed", r.metrics.jobs_failed)
              .metric("recorded", recorder.recorded())
              .metric("plain jobs/sec", plain.jobs_per_sec, 0)
              .metric("jobs/sec",
                      ms > 0.0
                          ? 1000.0 * static_cast<double>(jobs.size()) / ms
                          : 0.0,
                      0);
        });
  }

  // --- mux: k traces, one engine, order-invariant ------------------------
  const std::vector<std::string> source_names = {
      "hotspot/s4c8/n4000/b64", "gradient/32x32/n4000/sg2",
      "heavytail2d/s4c8/n4000/a1.2"};
  std::vector<std::vector<Job>> source_jobs;
  std::vector<std::string> source_paths;
  std::deque<ScopedTempFile> source_files;  // deque: growth never moves
  for (std::size_t s = 0; s < source_names.size(); ++s) {
    source_jobs.push_back(reg.at(source_names[s]).jobs());
    source_files.emplace_back("mux_src" + std::to_string(s));
    source_paths.push_back(source_files.back().path());
    TraceWriter writer(source_paths.back(), 2);
    writer.append(source_jobs.back().data(), source_jobs.back().size());
    writer.close();
  }
  const std::vector<Job> merged = merge_streams(source_jobs);
  const StreamProbe reference = probe_stream(2, cfg, merged);

  BenchSection& mux = b.section("mux");
  for (const int threads : {1, 2}) {
    for (const bool reversed : {false, true}) {
      mux.run_case(
          "threads=" + std::to_string(threads) +
              (reversed ? "/reversed" : "/in-order"),
          [&, threads, reversed](MetricRow& row) {
            StreamConfig c = cfg;
            c.threads = threads;
            TraceMux m(2, c);
            if (reversed) {
              for (auto it = source_paths.rbegin(); it != source_paths.rend();
                   ++it)
                m.add_source(*it);
            } else {
              for (const auto& path : source_paths) m.add_source(path);
            }
            WallTimer timer;
            const StreamResult r = m.replay();
            const double ms = timer.elapsed_ms();
            if (!same_stream_outcome(reference.result, r))
              b.fail("mux replay diverged from the in-memory merge at "
                     "threads=" +
                     std::to_string(threads) +
                     (reversed ? " (reversed sources)" : ""));
            row.metric("sources",
                       static_cast<std::uint64_t>(m.source_count()))
                .metric("jobs", r.jobs_ingested)
                .metric("served", r.metrics.jobs_served)
                .metric("failed", r.metrics.jobs_failed)
                .metric("cubes", r.cubes)
                .metric("jobs/sec",
                        ms > 0.0 ? 1000.0 *
                                       static_cast<double>(r.jobs_ingested) /
                                       ms
                                 : 0.0,
                        0);
          });
    }
  }

  b.note("Recorder: the outcome trail written during serving carries the "
         "same served/failed digests as the in-memory result at 1 and 2 "
         "threads (the O(batch x threads) audit-trail contract). Mux: three "
         "generator traces (hotspot, gradient, Pareto heavy-tail) merged by "
         "arrival index replay bit-identically to the in-memory "
         "merge_streams reference at every thread count and source "
         "ordering.");
}

// CI smoke: one tiny offline case and one tiny online case, seconds total.
void suite_smoke(BenchRun& b) {
  const auto& reg = ScenarioRegistry::builtin();

  BenchSection& offline = b.section("offline");
  const Scenario& sc = reg.at("uniform/8x8/n32");
  offline.run_case(sc.name, [&b, &sc](MetricRow& row) {
    const DemandMap demand = sc.demand();
    const CubeBound cb = cube_bound(demand);
    const double omega_star = omega_star_flow(demand);
    const OfflinePlan plan = plan_offline(demand);
    const PlanCheck check = verify_plan(plan, demand);
    if (!check.ok) {
      b.fail("smoke plan failed: " + check.issue);
      return;
    }
    if (cb.omega_c > omega_star + 1e-6 ||
        check.max_energy > plan.capacity_bound + 1e-6)
      b.fail("smoke sandwich violated");
    row.metric("omega_c", cb.omega_c)
        .metric("omega* (flow)", omega_star)
        .metric("plan energy", check.max_energy)
        .metric("upper (20*omega_c)", plan.capacity_bound)
        .metric("plan/omega_c", check.max_energy / std::max(cb.omega_c, 1e-9),
                2);
  });

  BenchSection& online = b.section("online");
  const Scenario& st = reg.at("alternating/len8/n40");
  online.run_case(st.name, [&b, &st](MetricRow& row) {
    const auto jobs = st.jobs();
    const DemandMap demand = demand_of_stream(jobs, 2);
    const OnlineConfig cfg = default_online_config(demand, /*seed=*/3);
    OnlineSimulation sim(2, cfg);
    const bool ok = sim.run(jobs);
    if (!ok) b.fail("smoke online run dropped jobs");
    const auto& m = sim.metrics();
    row.metric("capacity W", cfg.capacity)
        .metric("served", m.jobs_served)
        .metric("failed", m.jobs_failed)
        .metric("msgs", m.network.total())
        .metric("max energy", m.max_energy_spent);
  });

  b.note("Smoke: the Thm 1.4.1 sandwich and a full online run at the "
         "Lemma 3.3.1 capacity, in seconds — the CI quick-bench gate.");
}

}  // namespace

void register_builtin_suites() {
  static const bool registered = [] {
    register_suite({"offline",
                    "E4: Theorem 1.4.1 offline bounds across workloads "
                    "(l = 2, upper factor 2*3^2+2 = 20)",
                    suite_offline});
    register_suite({"online",
                    "E6: Theorem 1.4.2 — empirical Won vs offline bounds "
                    "(l = 2, Lemma 3.3.1 factor 4*3^2+2 = 38)",
                    suite_online});
    register_suite({"square",
                    "E1: square demand (Fig 2.1a), d = 100 per point",
                    suite_square});
    register_suite({"line",
                    "E2: line demand (Fig 2.1b) and the Fig 2.2 strategy",
                    suite_line});
    register_suite({"point",
                    "E3: point demand (Fig 2.1c) and the Fig 2.3 recall",
                    suite_point});
    register_suite({"broken",
                    "E7: Fig 4.1 — weighted LP bound vs true requirement",
                    suite_broken});
    register_suite({"alg1",
                    "E5: Algorithm 1 — approximation quality and the "
                    "linear-time scaling claim",
                    suite_alg1});
    register_suite({"transfer",
                    "E8: Chapter 5 — transfer bounds, line collector closed "
                    "forms, pooling ablation",
                    suite_transfer});
    register_suite({"baselines",
                    "E9: centralized greedy vs the distributed strategy; "
                    "Clarke-Wright for context",
                    suite_baselines});
    register_suite({"ablations",
                    "E11: strategy ablations (smart-dust stream, 200 jobs, "
                    "W fixed at 10)",
                    suite_ablations});
    register_suite({"graphs",
                    "E12: omega* on general graphs (extension; grid column "
                    "anchors against the lattice implementation)",
                    suite_graphs});
    register_suite({"substrates",
                    "E10: substrate micro-benchmarks (harness-timed)",
                    suite_substrates});
    register_suite({"dim_sweep",
                    "E13: the offline sandwich and the online strategy at "
                    "l = 2, 3, 4 (Point::kMaxDim)",
                    suite_dim_sweep});
    register_suite({"stream_smoke",
                    "E14: streaming engine CI gate — 1-vs-2-thread "
                    "determinism on a small stream",
                    suite_stream_smoke});
    register_suite({"stream_scaling",
                    "E15: streaming engine throughput vs threads/batch on "
                    "the large-grid stream",
                    suite_stream_scaling});
    register_suite({"stream_replay",
                    "E16: out-of-core trace replay — equivalence with "
                    "in-memory serving and replay throughput",
                    suite_stream_replay});
    register_suite({"record_mux",
                    "E17: outcome recording audit trail + deterministic "
                    "k-way multi-trace replay",
                    suite_record_mux});
    register_suite({"stream_latency",
                    "E18: latency tails (p50/p90/p99) bit-identical across "
                    "threads/batches + admission policies under saturation",
                    suite_stream_latency});
    register_suite({"smoke",
                    "CI quick gate: tiny offline sandwich + tiny online run",
                    suite_smoke});
    return true;
  }();
  (void)registered;
}

}  // namespace cmvrp
