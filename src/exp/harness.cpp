#include "exp/harness.h"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <sstream>
#include <utility>

#include "exp/suites.h"
#include "util/check.h"
#include "util/table.h"
#include "util/timer.h"

namespace cmvrp {

// --- MetricRow --------------------------------------------------------------

MetricRow& MetricRow::metric(const std::string& name, double value,
                             int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  cells_.push_back({name, Json(value), os.str()});
  return *this;
}

MetricRow& MetricRow::metric(const std::string& name, std::int64_t value) {
  cells_.push_back({name, Json(value), std::to_string(value)});
  return *this;
}

MetricRow& MetricRow::metric(const std::string& name, std::uint64_t value) {
  cells_.push_back({name, Json(value), std::to_string(value)});
  return *this;
}

MetricRow& MetricRow::metric(const std::string& name, int value) {
  return metric(name, static_cast<std::int64_t>(value));
}

MetricRow& MetricRow::metric(const std::string& name,
                             const std::string& value) {
  cells_.push_back({name, Json(value), value});
  return *this;
}

MetricRow& MetricRow::metric(const std::string& name, const char* value) {
  return metric(name, std::string(value));
}

MetricRow& MetricRow::metric_bool(const std::string& name, bool value) {
  cells_.push_back({name, Json(value), value ? "yes" : "no"});
  return *this;
}

// --- BenchSection -----------------------------------------------------------

void BenchSection::run_case(const std::string& case_name, const CaseFn& fn) {
  const RunOptions& opts = parent_->options();
  if (!opts.filter.empty() &&
      (name_ + "/" + case_name).find(opts.filter) == std::string::npos)
    return;

  CaseRecord record;
  record.name = case_name;
  for (int i = 0; i < opts.warmup; ++i) {
    MetricRow scratch;
    fn(scratch);
  }
  for (int i = 0; i < opts.reps; ++i) {
    MetricRow row;
    WallTimer timer;
    fn(row);
    record.time_ms.add(timer.elapsed_ms());
    record.row = std::move(row);  // deterministic: keep the final rep
  }
  cases_.push_back(std::move(record));
}

// --- BenchRun ---------------------------------------------------------------

BenchRun::BenchRun(std::string suite, RunOptions options)
    : suite_(std::move(suite)), options_(std::move(options)) {
  CMVRP_CHECK_MSG(options_.reps >= 1, "need at least one timed repetition");
  CMVRP_CHECK_MSG(options_.warmup >= 0, "negative warmup");
}

BenchSection& BenchRun::section(const std::string& name) {
  for (auto& s : sections_)
    if (s->name() == name) return *s;
  sections_.push_back(
      std::unique_ptr<BenchSection>(new BenchSection(this, name)));
  return *sections_.back();
}

void BenchRun::run_case(const std::string& case_name, const CaseFn& fn) {
  section("main").run_case(case_name, fn);
}

void BenchRun::note(const std::string& text) { notes_.push_back(text); }

void BenchRun::fail(const std::string& message) {
  failed_ = true;
  // Case closures run warmup+reps times; record each violation once.
  const std::string note = "FAIL: " + message;
  for (const auto& n : notes_)
    if (n == note) return;
  notes_.push_back(note);
  std::cerr << suite_ << ": " << message << "\n";
}

Json BenchRun::to_json() const {
  Json doc = Json::object();
  doc.set("schema", "cmvrp-bench-v1");
  doc.set("suite", suite_);
  Json opts = Json::object();
  opts.set("warmup", options_.warmup);
  opts.set("reps", options_.reps);
  opts.set("filter", options_.filter);
  doc.set("options", opts);
  doc.set("failed", failed_);

  Json sections = Json::array();
  for (const auto& sp : sections_) {
    const BenchSection& s = *sp;
    Json sec = Json::object();
    sec.set("name", s.name_);
    Json cases = Json::array();
    for (const auto& c : s.cases_) {
      Json jc = Json::object();
      jc.set("name", c.name);
      Json time = Json::object();
      time.set("reps", static_cast<std::int64_t>(c.time_ms.count()));
      time.set("mean", c.time_ms.mean());
      time.set("stddev", c.time_ms.stddev());
      time.set("min", c.time_ms.min());
      time.set("max", c.time_ms.max());
      jc.set("time_ms", time);
      Json metrics = Json::object();
      for (const auto& cell : c.row.cells_) metrics.set(cell.name, cell.value);
      jc.set("metrics", metrics);
      cases.push_back(std::move(jc));
    }
    sec.set("cases", std::move(cases));
    sections.push_back(std::move(sec));
  }
  doc.set("sections", std::move(sections));

  Json notes = Json::array();
  for (const auto& n : notes_) notes.push_back(n);
  doc.set("notes", std::move(notes));
  return doc;
}

void BenchRun::print(std::ostream& os) const {
  for (const auto& sp : sections_) {
    const BenchSection& s = *sp;
    if (s.cases_.empty()) continue;
    if (sections_.size() > 1 || s.name_ != "main")
      os << "[" << suite_ << "/" << s.name_ << "]\n";
    // Columns: the union of metric names in first-seen order, then time.
    std::vector<std::string> columns;
    for (const auto& c : s.cases_) {
      for (const auto& cell : c.row.cells_) {
        bool seen = false;
        for (const auto& col : columns) seen = seen || col == cell.name;
        if (!seen) columns.push_back(cell.name);
      }
    }
    std::vector<std::string> headers;
    headers.push_back("case");
    headers.insert(headers.end(), columns.begin(), columns.end());
    headers.push_back("ms/rep");
    Table table(headers);
    for (const auto& c : s.cases_) {
      table.row().cell(c.name);
      for (const auto& col : columns) {
        const MetricRow::Cell* found = nullptr;
        for (const auto& cell : c.row.cells_)
          if (cell.name == col) found = &cell;
        table.cell(found ? found->rendered : std::string("-"));
      }
      table.cell(c.time_ms.mean(), 2);
    }
    table.print(os);
    os << "\n";
  }
  for (const auto& n : notes_) os << n << "\n";
}

int BenchRun::finish(std::ostream& os) {
  print(os);
  if (!options_.json_path.empty()) {
    std::ofstream file(options_.json_path);
    CMVRP_CHECK_MSG(file.good(),
                    "cannot open " << options_.json_path << " for writing");
    file << to_json().dump(2) << "\n";
    CMVRP_CHECK_MSG(file.good(), "write to " << options_.json_path
                                             << " failed");
    os << "wrote " << options_.json_path << "\n";
  }
  return failed_ ? 1 : 0;
}

// --- suite registry ---------------------------------------------------------

namespace {

std::vector<Suite>& suite_store() {
  static std::vector<Suite> suites;
  return suites;
}

}  // namespace

void register_suite(Suite suite) {
  CMVRP_CHECK_MSG(!suite.name.empty(), "suite needs a name");
  CMVRP_CHECK_MSG(suite.fn != nullptr, "suite " << suite.name << " needs fn");
  CMVRP_CHECK_MSG(find_suite(suite.name) == nullptr,
                  "duplicate suite name: " << suite.name);
  suite_store().push_back(std::move(suite));
}

const Suite* find_suite(const std::string& name) {
  for (const auto& s : suite_store())
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<const Suite*> all_suites() {
  std::vector<const Suite*> out;
  for (const auto& s : suite_store()) out.push_back(&s);
  return out;
}

int run_suite(const std::string& name, const RunOptions& options,
              std::ostream& os, Json* doc_out) {
  const Suite* suite = find_suite(name);
  CMVRP_CHECK_MSG(suite != nullptr, "unknown suite: " << name
                                                      << " (try --list)");
  os << name << ": " << suite->description << "\n\n";
  BenchRun run(name, options);
  suite->fn(run);
  const int rc = run.finish(os);
  if (doc_out != nullptr) *doc_out = run.to_json();
  return rc;
}

int bench_driver_main(const std::string& suite_name, int argc, char** argv) {
  register_builtin_suites();
  RunOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      CMVRP_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--reps") {
        options.reps = std::stoi(value());
      } else if (arg == "--warmup") {
        options.warmup = std::stoi(value());
      } else if (arg == "--filter") {
        options.filter = value();
      } else if (arg == "--json") {
        options.json_path = value();
      } else if (arg == "--list") {
        for (const Suite* s : all_suites())
          std::cout << s->name << "  —  " << s->description << "\n";
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "usage: bench_<suite> [--reps N] [--warmup N] "
                     "[--filter S] [--json PATH] [--list]\n";
        return 0;
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception& e) {  // check_error, stoi failures
      std::cerr << "error: bad value for " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }
  try {
    return run_suite(suite_name, options, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace cmvrp
