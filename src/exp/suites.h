// The builtin experiment suites: every bench driver's scenario list and
// metric lambdas, registered with the harness so the thin bench mains and
// `cmvrp_cli bench` run the same code.
//
// Suite names: offline, online, square, line, point, broken, alg1,
// transfer, baselines, ablations, graphs, substrates, smoke.
#pragma once

namespace cmvrp {

// Idempotent; call before find_suite / run_suite.
void register_builtin_suites();

}  // namespace cmvrp
