// A constructive offline strategy *with* transfers: per partition cube,
// one collector vehicle walks the cube's snake path (every consecutive
// vertex adjacent — the same walk that defines the Chapter 3 pairing),
// pooling all charges, then walks it back distributing each vertex's
// demand. This is §5.2.1's line strategy lifted to cubes: a cube of side s
// is a "line" of length s^ℓ under the snake order.
//
// It realizes W_trans-off = Θ(avg cube demand) + O(1) overheads, which the
// Chapter 5 benches compare against the transfer-free Lemma 2.2.5 planner:
// transfers replace the *max*-demand dependence with the *average*.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/demand_map.h"
#include "transfer/accounting.h"

namespace cmvrp {

struct CubeCollectorResult {
  double required_w = 0.0;       // max over cubes of the per-cube min W
  double binding_cube_demand = 0.0;
  std::int64_t cube_side = 1;
  std::int64_t cubes = 0;
  double max_tank_level = 0.0;   // C needed by the pooling strategy
};

// Runs the snake collector in every cube of side `side` (anchored at the
// demand bounding box) and returns the max per-vehicle initial charge any
// cube requires. All vehicles of a cube start with the same W.
CubeCollectorResult cube_collector_requirements(const DemandMap& d,
                                                std::int64_t side,
                                                const TransferParams& params);

}  // namespace cmvrp
