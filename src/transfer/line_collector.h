// §5.2.1: the high-capacity-tank collector on a line of N vertices.
//
// Vehicle 1 sweeps right, collecting the full charge of vehicles 2…N−1;
// exchanges with vehicle N so N keeps exactly its local demand; then
// sweeps back distributing per-vertex demands. Total transfers: 2N−3;
// distance: 2N−2. The paper's closed forms for the minimal initial charge
// W (with tank capacity C = ∞):
//   fixed:    W = (a₁(2N−3) + (2N−2) + Σd) / N
//   variable: W = (2N−2 + Σd) / (N − 2a₂N + 3a₂)
// Both are Θ(avg d) — transfers turn the *max*-based requirement into an
// *average*-based one.
#pragma once

#include <cstdint>
#include <vector>

#include "transfer/accounting.h"

namespace cmvrp {

// The paper's closed forms.
double line_collector_w_fixed(std::int64_t n, double total_demand, double a1);
double line_collector_w_variable(std::int64_t n, double total_demand,
                                 double a2);

struct LineCollectorTrace {
  double initial_w = 0.0;        // per-vehicle starting charge
  double total_consumed = 0.0;   // travel + transfer overhead + service
  double max_tank_level = 0.0;   // peak charge carried by vehicle 1
  std::int64_t transfers = 0;    // must equal 2N−3
  std::int64_t distance = 0;     // must equal 2N−2
  bool feasible = false;         // never ran out of energy mid-route
  double slack = 0.0;            // energy left over at the end (≥ 0 when
                                 // initial_w is exactly sufficient: ~0)
};

// Executes the §5.2.1 strategy step by step with per-vehicle initial
// charge w and per-vertex demands d[0..N-1]; validates the closed forms.
LineCollectorTrace simulate_line_collector(const std::vector<double>& demand,
                                           double w,
                                           const TransferParams& params);

// Minimal feasible initial charge found by bisection over the simulator —
// must match the closed forms to simulation granularity.
double min_line_collector_w(const std::vector<double>& demand,
                            const TransferParams& params, double tol = 1e-7);

}  // namespace cmvrp
