#include "transfer/cube_collector.h"

#include <algorithm>

#include "grid/box.h"
#include "grid/corner_hash.h"
#include "online/pairing.h"
#include "transfer/line_collector.h"
#include "util/check.h"
#include "util/flat_map.h"

namespace cmvrp {

CubeCollectorResult cube_collector_requirements(const DemandMap& d,
                                                std::int64_t side,
                                                const TransferParams& params) {
  CMVRP_CHECK(!d.empty());
  CMVRP_CHECK(side >= 1);
  CubeCollectorResult out;
  out.cube_side = side;

  // Group demand by cube, then lay each cube's demand along its snake
  // order and reuse the §5.2.1 line simulation verbatim.
  const CubePairing pairing(d.dim(), d.bounding_box().lo(), side);
  // Hashed cube grouping on the shared corner-key hasher (one probe per
  // point instead of the old vector<int64_t> rb-tree walk); cubes are
  // visited in ascending corner order afterwards so the strict-> binding
  // tie-break below picks the same cube the former std::map scan did.
  FlatMap<Point, std::vector<double>, CornerHash> cubes;
  for (const auto& p : d.support()) {
    auto& lane = cubes[pairing.cube_corner(p)];
    if (lane.empty())
      lane.assign(static_cast<std::size_t>(pairing.cube_volume()), 0.0);
    lane[static_cast<std::size_t>(pairing.snake_index(p))] += d.at(p);
  }
  std::vector<const std::vector<double>*> lane_order;
  lane_order.reserve(cubes.size());
  {
    std::vector<std::pair<Point, const std::vector<double>*>> sorted;
    sorted.reserve(cubes.size());
    for (const auto& item : cubes) sorted.emplace_back(item.key, &item.value);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [corner, lane] : sorted) lane_order.push_back(lane);
  }

  for (const auto* lane_ptr : lane_order) {
    const std::vector<double>& lane = *lane_ptr;
    ++out.cubes;
    double cube_demand = 0.0;
    for (double v : lane) cube_demand += v;
    const double w = min_line_collector_w(lane, params);
    if (w > out.required_w) {
      out.required_w = w;
      out.binding_cube_demand = cube_demand;
    }
    const auto trace = simulate_line_collector(lane, w, params);
    out.max_tank_level = std::max(out.max_tank_level, trace.max_tank_level);
  }
  return out;
}

}  // namespace cmvrp
