#include "transfer/cube_collector.h"

#include <algorithm>
#include <map>

#include "grid/box.h"
#include "online/pairing.h"
#include "transfer/line_collector.h"
#include "util/check.h"

namespace cmvrp {

CubeCollectorResult cube_collector_requirements(const DemandMap& d,
                                                std::int64_t side,
                                                const TransferParams& params) {
  CMVRP_CHECK(!d.empty());
  CMVRP_CHECK(side >= 1);
  CubeCollectorResult out;
  out.cube_side = side;

  // Group demand by cube, then lay each cube's demand along its snake
  // order and reuse the §5.2.1 line simulation verbatim.
  const CubePairing pairing(d.dim(), d.bounding_box().lo(), side);
  std::map<std::vector<std::int64_t>, std::vector<double>> cubes;
  for (const auto& p : d.support()) {
    const Point corner = pairing.cube_corner(p);
    std::vector<std::int64_t> key(static_cast<std::size_t>(d.dim()));
    for (int i = 0; i < d.dim(); ++i)
      key[static_cast<std::size_t>(i)] = corner[i];
    auto& lane = cubes[key];
    if (lane.empty())
      lane.assign(static_cast<std::size_t>(pairing.cube_volume()), 0.0);
    lane[static_cast<std::size_t>(pairing.snake_index(p))] += d.at(p);
  }

  for (const auto& [key, lane] : cubes) {
    (void)key;
    ++out.cubes;
    double cube_demand = 0.0;
    for (double v : lane) cube_demand += v;
    const double w = min_line_collector_w(lane, params);
    if (w > out.required_w) {
      out.required_w = w;
      out.binding_cube_demand = cube_demand;
    }
    const auto trace = simulate_line_collector(lane, w, params);
    out.max_tank_level = std::max(out.max_tank_level, trace.max_tank_level);
  }
  return out;
}

}  // namespace cmvrp
