#include "transfer/line_collector.h"

#include <algorithm>
#include <cmath>

namespace cmvrp {

double line_collector_w_fixed(std::int64_t n, double total_demand,
                              double a1) {
  CMVRP_CHECK(n >= 2);
  const double nn = static_cast<double>(n);
  return (a1 * (2.0 * nn - 3.0) + (2.0 * nn - 2.0) + total_demand) / nn;
}

double line_collector_w_variable(std::int64_t n, double total_demand,
                                 double a2) {
  CMVRP_CHECK(n >= 2);
  CMVRP_CHECK_MSG(a2 < 0.5, "variable cost must satisfy a2 < 1/2");
  const double nn = static_cast<double>(n);
  return (2.0 * nn - 2.0 + total_demand) /
         (nn - 2.0 * a2 * nn + 3.0 * a2);
}

LineCollectorTrace simulate_line_collector(const std::vector<double>& demand,
                                           double w,
                                           const TransferParams& params) {
  const auto n = static_cast<std::int64_t>(demand.size());
  CMVRP_CHECK_MSG(n >= 2, "collector route needs at least two vertices");
  for (double d : demand) CMVRP_CHECK(d >= 0.0);

  LineCollectorTrace trace;
  trace.initial_w = w;

  // Vehicle charges; collector is index 0 (the paper's vehicle 1).
  std::vector<double> charge(demand.size(), w);
  double tank = charge[0];
  bool feasible = true;
  double consumed = 0.0;

  auto spend = [&](double amount) {
    tank -= amount;
    consumed += amount;
    if (tank < -1e-9) feasible = false;
  };
  // A transfer of `amount` into the tank; the overhead is paid from the
  // *combined* pool (the donor pays it before handing over, equivalently).
  auto collect = [&](std::size_t idx) {
    const double amount = charge[idx];
    if (params.model == TransferCostModel::kFixed) {
      spend(params.a1 - amount);  // gain amount, pay a1
    } else {
      spend(params.a2 * amount - amount);
    }
    charge[idx] = 0.0;
    ++trace.transfers;
    trace.max_tank_level = std::max(trace.max_tank_level, tank);
    CMVRP_CHECK_MSG(tank <= params.tank_capacity + 1e-9,
                    "tank capacity C exceeded");
  };
  auto deposit = [&](std::size_t idx, double amount) {
    spend(amount + params.transfer_cost(amount));
    charge[idx] += amount;
    ++trace.transfers;
  };

  trace.max_tank_level = tank;

  // Sweep right: 0 -> n-1, collecting from 1..n-2.
  for (std::int64_t x = 1; x <= n - 1; ++x) {
    spend(1.0);  // one step of travel
    ++trace.distance;
    if (x <= n - 2) collect(static_cast<std::size_t>(x));
  }
  // Exchange with vehicle n-1 (paper's vehicle N): collect its charge and
  // leave exactly its local demand. Counted as one transfer.
  {
    const std::size_t last = static_cast<std::size_t>(n - 1);
    const double need = demand[last];
    const double delta = charge[last] - need;  // usually positive
    if (params.model == TransferCostModel::kFixed) {
      spend(params.a1 - delta);
    } else {
      spend(params.a2 * std::abs(delta) - delta);
    }
    charge[last] = need;
    ++trace.transfers;
    trace.max_tank_level = std::max(trace.max_tank_level, tank);
    CMVRP_CHECK_MSG(tank <= params.tank_capacity + 1e-9,
                    "tank capacity C exceeded");
  }
  // Sweep left: n-1 -> 0, depositing demands at n-2..1.
  for (std::int64_t x = n - 2; x >= 0; --x) {
    spend(1.0);
    ++trace.distance;
    if (x >= 1) deposit(static_cast<std::size_t>(x), demand[static_cast<std::size_t>(x)]);
  }
  // Vehicle 0 keeps its own demand locally.
  spend(0.0);
  const double own_need = demand[0];
  trace.slack = tank - own_need;
  if (trace.slack < -1e-9) feasible = false;

  // Everyone now serves locally; service energy is part of demand and was
  // budgeted above. Total consumed = travel + transfer overhead (+ the
  // demand amounts remain *in* vehicles, not consumed by the collector).
  trace.total_consumed = consumed;
  trace.feasible = feasible;
  return trace;
}

double min_line_collector_w(const std::vector<double>& demand,
                            const TransferParams& params, double tol) {
  CMVRP_CHECK(tol > 0.0);
  double lo = 0.0;
  double hi = 1.0;
  while (!simulate_line_collector(demand, hi, params).feasible) {
    hi *= 2.0;
    CMVRP_CHECK_MSG(hi < 1e15, "collector never became feasible");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (simulate_line_collector(demand, mid, params).feasible)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace cmvrp
