// Theorem 5.1.1: W_trans-off = Θ(Woff)  (ℓ = 2, as in the paper).
//
// Core fact: a vehicle of capacity W relaying energy over distance D
// delivers at most W(1 − 1/W)^D of it — travel eats a 1/W fraction per
// step no matter how transfers are scheduled or charged. Summing this
// decay over all vehicles outside an s×s square T bounds the energy that
// can ever enter T:
//   E_in(W, s) = W·(s² + 4W² + 4sW − 8W − 4s + 4),
// which must cover Σ_{x∈T} d(x); the resulting minimal W is Ω(ω_T), hence
// Ω(Woff) over all squares, while W_trans-off ≤ Woff trivially.
#pragma once

#include <cstdint>

#include "grid/demand_map.h"

namespace cmvrp {

// Energy surviving a relay of `w` units over `dist` steps: w(1-1/w)^dist.
double relay_decay(double w, std::int64_t dist);

// The paper's bound on the total energy that can reach an s×s square when
// every vehicle starts with w.
double max_energy_into_square(double w, std::int64_t s);

// Minimal w with max_energy_into_square(w, s) >= demand (bisection).
double wtrans_lower_bound_for_square(double demand_sum, std::int64_t s);

struct TransferBounds {
  double wtrans_lower = 0.0;  // max over squares of the Thm 5.1.1 bound
  double woff_upper = 0.0;    // (2·3^ℓ+ℓ)·ω_c — W_trans-off ≤ Woff ≤ this
  double omega_c = 0.0;       // ω_c for reference
  std::int64_t binding_side = 1;
};

// Evaluates both sides of Theorem 5.1.1 on a demand map (2-D): the
// transfer-aware lower bound (scanning all squares via prefix sums) and
// the transfer-free upper bound. Their ratio stays Θ(1) per the theorem.
TransferBounds transfer_bounds(const DemandMap& d);

}  // namespace cmvrp
