// Inter-vehicle energy transfer accounting (Chapter 5).
//
// Two models: fixed — a₁ energy per transfer regardless of amount; and
// variable — a₂ ≪ 1 energy per unit transferred. Tanks may hold up to C
// (possibly ∞) even when the initial charge W is smaller (§5.2).
#pragma once

#include <limits>

#include "util/check.h"

namespace cmvrp {

enum class TransferCostModel { kFixed, kVariable };

struct TransferParams {
  TransferCostModel model = TransferCostModel::kFixed;
  double a1 = 1.0;    // fixed cost per transfer
  double a2 = 0.01;   // variable cost per unit (must be < 1/2 for §5.2.1)
  double tank_capacity = std::numeric_limits<double>::infinity();  // C

  double transfer_cost(double amount) const {
    CMVRP_CHECK(amount >= 0.0);
    return model == TransferCostModel::kFixed ? a1 : a2 * amount;
  }
};

}  // namespace cmvrp
