#include "transfer/theorem51.h"

#include <algorithm>
#include <cmath>

#include "core/cube_bound.h"
#include "grid/dense_grid.h"
#include "util/check.h"

namespace cmvrp {

double relay_decay(double w, std::int64_t dist) {
  CMVRP_CHECK(w > 0.0 && dist >= 0);
  if (w <= 1.0) return dist == 0 ? w : 0.0;  // cannot even move a step
  return w * std::pow(1.0 - 1.0 / w, static_cast<double>(dist));
}

double max_energy_into_square(double w, std::int64_t s) {
  CMVRP_CHECK(w > 0.0 && s >= 1);
  const double ss = static_cast<double>(s);
  return w * (ss * ss + 4.0 * w * w + 4.0 * ss * w - 8.0 * w - 4.0 * ss + 4.0);
}

double wtrans_lower_bound_for_square(double demand_sum, std::int64_t s) {
  CMVRP_CHECK(demand_sum >= 0.0);
  if (demand_sum == 0.0) return 0.0;
  double lo = 0.0, hi = 1.0;
  while (max_energy_into_square(hi, s) < demand_sum) {
    hi *= 2.0;
    CMVRP_CHECK(hi < 1e15);
  }
  for (int iter = 0; iter < 200 && hi - lo > 1e-10 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (max_energy_into_square(mid, s) >= demand_sum)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

TransferBounds transfer_bounds(const DemandMap& d) {
  CMVRP_CHECK_MSG(d.dim() == 2, "Theorem 5.1.1 is stated for l = 2");
  TransferBounds out;
  if (d.empty()) return out;

  const CubeBound cb = cube_bound(d);
  out.omega_c = cb.omega_c;
  out.woff_upper = (2.0 * 9.0 + 2.0) * cb.omega_c;

  const DenseGrid grid = DenseGrid::from_demand(d);
  const PrefixSums ps(grid);
  std::int64_t max_side = std::max(grid.box().side(0), grid.box().side(1));
  for (std::int64_t s = 1; s <= max_side; ++s) {
    const double m = ps.max_cube_sum(s);
    if (m <= 0.0) continue;
    const double w = wtrans_lower_bound_for_square(m, s);
    if (w > out.wtrans_lower) {
      out.wtrans_lower = w;
      out.binding_side = s;
    }
  }
  return out;
}

}  // namespace cmvrp
