// General-graph substrate — the paper's Chapter 6 future-work direction:
// "We have only discussed the case where the underlying graph is a grid.
//  It would be nice to have results for graphs in general."
//
// Vertices are dense indices; edges carry positive integer lengths (the
// paper's travel costs). Builders cover the cases the extension benches
// exercise: plain grids (to cross-check against the lattice code paths),
// grids with obstacle holes, tori (no boundary), and weighted roadways.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/box.h"
#include "grid/point.h"
#include "util/check.h"

namespace cmvrp {

class Graph {
 public:
  explicit Graph(std::size_t num_vertices) : adj_(num_vertices) {}

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  void add_edge(std::size_t u, std::size_t v, std::int64_t length = 1) {
    CMVRP_CHECK(u < adj_.size() && v < adj_.size() && u != v);
    CMVRP_CHECK_MSG(length > 0, "edge lengths must be positive");
    adj_[u].push_back({v, length});
    adj_[v].push_back({u, length});
    ++num_edges_;
  }

  struct Arc {
    std::size_t to;
    std::int64_t length;
  };
  const std::vector<Arc>& neighbors(std::size_t v) const {
    CMVRP_CHECK(v < adj_.size());
    return adj_[v];
  }

  bool connected() const;

 private:
  std::vector<std::vector<Arc>> adj_;
  std::size_t num_edges_ = 0;
};

// A graph over the lattice points of `box` (unit 2ℓ-adjacency), plus the
// vertex <-> point correspondence so results can be compared with the
// grid-native code paths.
struct SpatialGraph {
  Graph graph{0};
  std::vector<Point> points;                             // vertex -> point
  std::unordered_map<Point, std::size_t, PointHash> index;  // point -> vertex
};

// The full grid over `box`.
SpatialGraph make_grid_graph(const Box& box);

// Grid with the given vertices removed (obstacles); edges incident to a
// hole disappear. The remainder must stay connected for the ω machinery.
SpatialGraph make_grid_with_holes(const Box& box,
                                  const std::vector<Point>& holes);

// n×n torus: the grid with wrap-around edges (no boundary effects).
SpatialGraph make_torus(std::int64_t n);

// Grid whose horizontal edges on selected rows ("highways") have length 1
// while all other edges have length `side_cost` — a weighted-roadway
// variant showing the machinery is not tied to unit lengths.
SpatialGraph make_weighted_roadways(const Box& box,
                                    const std::vector<std::int64_t>& highway_rows,
                                    std::int64_t side_cost);

}  // namespace cmvrp
