#include "graph/graph.h"

#include "grid/neighborhood.h"

#include <algorithm>
#include <deque>

namespace cmvrp {

bool Graph::connected() const {
  if (adj_.empty()) return true;
  std::vector<bool> seen(adj_.size(), false);
  std::deque<std::size_t> queue{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const auto& arc : adj_[v]) {
      if (!seen[arc.to]) {
        seen[arc.to] = true;
        ++reached;
        queue.push_back(arc.to);
      }
    }
  }
  return reached == adj_.size();
}

namespace {

SpatialGraph make_vertices(const Box& box) {
  SpatialGraph sg;
  box.for_each_point([&](const Point& p) {
    sg.index.emplace(p, sg.points.size());
    sg.points.push_back(p);
  });
  sg.graph = Graph(sg.points.size());
  return sg;
}

}  // namespace

SpatialGraph make_grid_graph(const Box& box) {
  SpatialGraph sg = make_vertices(box);
  for (std::size_t v = 0; v < sg.points.size(); ++v) {
    // Add each undirected edge once: toward +1 along every axis.
    for (int axis = 0; axis < box.dim(); ++axis) {
      const Point q = sg.points[v].translated(axis, 1);
      auto it = sg.index.find(q);
      if (it != sg.index.end()) sg.graph.add_edge(v, it->second);
    }
  }
  return sg;
}

SpatialGraph make_grid_with_holes(const Box& box,
                                  const std::vector<Point>& holes) {
  PointSet blocked(holes.begin(), holes.end());
  SpatialGraph sg;
  box.for_each_point([&](const Point& p) {
    if (blocked.count(p)) return;
    sg.index.emplace(p, sg.points.size());
    sg.points.push_back(p);
  });
  sg.graph = Graph(sg.points.size());
  for (std::size_t v = 0; v < sg.points.size(); ++v) {
    for (int axis = 0; axis < box.dim(); ++axis) {
      const Point q = sg.points[v].translated(axis, 1);
      auto it = sg.index.find(q);
      if (it != sg.index.end()) sg.graph.add_edge(v, it->second);
    }
  }
  return sg;
}

SpatialGraph make_torus(std::int64_t n) {
  CMVRP_CHECK(n >= 3);
  const Box box = Box::cube(Point{0, 0}, n);
  SpatialGraph sg = make_vertices(box);
  for (std::size_t v = 0; v < sg.points.size(); ++v) {
    // The +1 step along each axis (with wrap) names every undirected edge
    // exactly once, since no two vertices share the same +1 neighbor on an
    // axis (n >= 3 keeps the wrap edge distinct).
    for (int axis = 0; axis < 2; ++axis) {
      Point q = sg.points[v].translated(axis, 1);
      if (q[axis] == n) q[axis] = 0;  // wrap
      sg.graph.add_edge(v, sg.index.at(q));
    }
  }
  return sg;
}

SpatialGraph make_weighted_roadways(
    const Box& box, const std::vector<std::int64_t>& highway_rows,
    std::int64_t side_cost) {
  CMVRP_CHECK(box.dim() == 2);
  CMVRP_CHECK(side_cost >= 1);
  std::vector<std::int64_t> highways = highway_rows;
  std::sort(highways.begin(), highways.end());
  SpatialGraph sg = make_vertices(box);
  for (std::size_t v = 0; v < sg.points.size(); ++v) {
    const Point& p = sg.points[v];
    const bool on_highway =
        std::binary_search(highways.begin(), highways.end(), p[1]);
    for (int axis = 0; axis < 2; ++axis) {
      const Point q = p.translated(axis, 1);
      auto it = sg.index.find(q);
      if (it == sg.index.end()) continue;
      const bool horizontal = axis == 0;
      const std::int64_t len =
          (horizontal && on_highway) ? 1 : side_cost;
      sg.graph.add_edge(v, it->second, len);
    }
  }
  return sg;
}

}  // namespace cmvrp
