#include "graph/graph_omega.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "flow/dinic.h"
#include "util/check.h"

namespace cmvrp {
namespace {

constexpr std::int64_t kUnreachable = std::numeric_limits<std::int64_t>::max();

}  // namespace

std::vector<std::int64_t> graph_distances(
    const Graph& g, const std::vector<std::size_t>& seeds) {
  CMVRP_CHECK(!seeds.empty());
  std::vector<std::int64_t> dist(g.num_vertices(), kUnreachable);
  using Item = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (std::size_t s : seeds) {
    CMVRP_CHECK(s < g.num_vertices());
    if (dist[s] != 0) {
      dist[s] = 0;
      pq.emplace(0, s);
    }
  }
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const auto& arc : g.neighbors(v)) {
      const std::int64_t nd = d + arc.length;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        pq.emplace(nd, arc.to);
      }
    }
  }
  return dist;
}

std::vector<std::int64_t> graph_distances(const Graph& g, std::size_t src) {
  return graph_distances(g, std::vector<std::size_t>{src});
}

std::int64_t graph_ball_size(const Graph& g,
                             const std::vector<std::size_t>& t,
                             std::int64_t r) {
  CMVRP_CHECK(r >= 0);
  const auto dist = graph_distances(g, t);
  std::int64_t count = 0;
  for (auto d : dist)
    if (d != kUnreachable && d <= r) ++count;
  return count;
}

double graph_omega_for_set(const Graph& g,
                           const std::vector<std::size_t>& t,
                           const std::vector<double>& demand) {
  CMVRP_CHECK(!t.empty());
  CMVRP_CHECK(demand.size() == g.num_vertices());
  double s = 0.0;
  for (std::size_t v : t) s += demand[v];
  if (s == 0.0) return 0.0;

  const auto dist = graph_distances(g, t);
  // Ball sizes grow only at the distinct finite distance values; walk the
  // piecewise-linear g(ω) = ω·|B_⌊ω⌋(T)| exactly as on the lattice.
  std::vector<std::int64_t> finite;
  for (auto d : dist)
    if (d != kUnreachable) finite.push_back(d);
  std::sort(finite.begin(), finite.end());
  auto ball_at = [&](std::int64_t k) -> double {
    return static_cast<double>(
        std::upper_bound(finite.begin(), finite.end(), k) - finite.begin());
  };
  const auto max_dist = finite.back();
  for (std::int64_t k = 0;; ++k) {
    const double vol = ball_at(k);
    CMVRP_CHECK(vol >= 1.0);
    const double lo = static_cast<double>(k) * vol;
    const double hi = (static_cast<double>(k) + 1.0) * vol;
    if (s < lo) return static_cast<double>(k);
    if (s < hi) return s / vol;
    if (k > max_dist) {
      // Whole component reachable; g grows linearly with slope |V_comp|.
      return s / vol;
    }
  }
}

double graph_omega_star_enumerate(const Graph& g,
                                  const std::vector<double>& demand,
                                  std::size_t max_support) {
  CMVRP_CHECK(demand.size() == g.num_vertices());
  std::vector<std::size_t> support;
  for (std::size_t v = 0; v < demand.size(); ++v)
    if (demand[v] > 0.0) support.push_back(v);
  CMVRP_CHECK(!support.empty());
  CMVRP_CHECK_MSG(support.size() <= max_support,
                  "support too large: " << support.size());
  double best = 0.0;
  std::vector<std::size_t> subset;
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << support.size());
       ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < support.size(); ++i)
      if (mask & (std::uint64_t{1} << i)) subset.push_back(support[i]);
    best = std::max(best, graph_omega_for_set(g, subset, demand));
  }
  return best;
}

double graph_flow_value_at_radius(const Graph& g,
                                  const std::vector<double>& demand,
                                  std::int64_t r, double tol) {
  CMVRP_CHECK(r >= 0);
  CMVRP_CHECK(tol > 0.0);
  CMVRP_CHECK(demand.size() == g.num_vertices());
  std::vector<std::size_t> demand_vertices;
  double total = 0.0;
  for (std::size_t v = 0; v < demand.size(); ++v)
    if (demand[v] > 0.0) {
      demand_vertices.push_back(v);
      total += demand[v];
    }
  CMVRP_CHECK(!demand_vertices.empty());

  // Suppliers: vertices within distance r of the support. Arcs: supplier i
  // serves demand j when dist(i, j) <= r.
  const auto to_support = graph_distances(g, demand_vertices);
  std::vector<std::size_t> suppliers;
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    if (to_support[v] != kUnreachable && to_support[v] <= r)
      suppliers.push_back(v);

  std::vector<std::vector<bool>> arc(suppliers.size());
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    const auto dist = graph_distances(g, suppliers[i]);
    arc[i].resize(demand_vertices.size());
    for (std::size_t j = 0; j < demand_vertices.size(); ++j)
      arc[i][j] = dist[demand_vertices[j]] != kUnreachable &&
                  dist[demand_vertices[j]] <= r;
  }

  const double scale = 1 << 20;
  auto feasible = [&](double omega) {
    const std::size_t src = 0, sink = 1, sbase = 2;
    const std::size_t dbase = sbase + suppliers.size();
    Dinic flow(dbase + demand_vertices.size());
    const auto cap = static_cast<std::int64_t>(std::floor(omega * scale));
    std::int64_t total_scaled = 0;
    for (std::size_t j = 0; j < demand_vertices.size(); ++j) {
      const auto dj = static_cast<std::int64_t>(
          std::ceil(demand[demand_vertices[j]] * scale - 1e-9));
      flow.add_edge(dbase + j, sink, dj);
      total_scaled += dj;
    }
    for (std::size_t i = 0; i < suppliers.size(); ++i) {
      flow.add_edge(src, sbase + i, cap);
      for (std::size_t j = 0; j < demand_vertices.size(); ++j)
        if (arc[i][j]) flow.add_edge(sbase + i, dbase + j, cap);
    }
    return flow.max_flow(src, sink) >= total_scaled;
  };

  double lo = 0.0, hi = total;
  CMVRP_CHECK_MSG(feasible(hi), "demand must be coverable at omega = total");
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid))
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

double graph_omega_star_flow(const Graph& g,
                             const std::vector<double>& demand) {
  // Identical fixed-point walk to the lattice version (Lemma 2.2.3).
  std::int64_t k = 0;
  double vk = graph_flow_value_at_radius(g, demand, 0);
  for (;;) {
    if (vk < static_cast<double>(k) + 1.0)
      return std::max(vk, static_cast<double>(k));
    const double vnext = graph_flow_value_at_radius(g, demand, k + 1);
    CMVRP_CHECK_MSG(vnext <= vk + 1e-6, "value must be non-increasing");
    ++k;
    vk = vnext;
    CMVRP_CHECK_MSG(k < (std::int64_t{1} << 24), "fixed point diverged");
  }
}

double graph_ball_lower_bound(const Graph& g,
                              const std::vector<double>& demand,
                              std::int64_t max_radius) {
  CMVRP_CHECK(demand.size() == g.num_vertices());
  CMVRP_CHECK(max_radius >= 0);
  double best = 0.0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (demand[v] <= 0.0) continue;
    const auto dist = graph_distances(g, v);
    for (std::int64_t k = 0; k <= max_radius; ++k) {
      std::vector<std::size_t> ball;
      for (std::size_t u = 0; u < g.num_vertices(); ++u)
        if (dist[u] != kUnreachable && dist[u] <= k) ball.push_back(u);
      best = std::max(best, graph_omega_for_set(g, ball, demand));
    }
  }
  return best;
}

}  // namespace cmvrp
