// The ω machinery generalized from Z^ℓ to arbitrary connected graphs.
//
// Everything in §2.2 except the *cube* shortcut survives verbatim once
// N_r(T) is read as the graph-metric ball:
//   ω_T solves ω · |N^G_⌊ω⌋(T)| = Σ_{x∈T} d(x),
//   the LP (2.1) value at radius r is max_T Σ_T d / |N^G_r(T)|
//   (computable by the same max-flow oracle), and ω* is the radius fixed
//   point. The cube characterization (Cor. 2.2.6/2.2.7) has no graph
//   analogue — that is exactly why the paper leaves general graphs open —
//   so the general-purpose lower bound here is ball-based instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cmvrp {

// Single-source shortest-path distances (Dijkstra; unit lengths fall back
// to BFS cost profile automatically).
std::vector<std::int64_t> graph_distances(const Graph& g, std::size_t src);

// Multi-source variant: distance to the nearest seed.
std::vector<std::int64_t> graph_distances(const Graph& g,
                                          const std::vector<std::size_t>& seeds);

// |N^G_r(T)|.
std::int64_t graph_ball_size(const Graph& g,
                             const std::vector<std::size_t>& t,
                             std::int64_t r);

// ω_T on the graph (inf-crossing semantics as on the lattice).
double graph_omega_for_set(const Graph& g,
                           const std::vector<std::size_t>& t,
                           const std::vector<double>& demand);

// max_T ω_T over all nonempty subsets of the demand support (exponential;
// supports <= max_support).
double graph_omega_star_enumerate(const Graph& g,
                                  const std::vector<double>& demand,
                                  std::size_t max_support = 18);

// LP (2.1) value at radius r via the max-flow oracle on graph balls.
double graph_flow_value_at_radius(const Graph& g,
                                  const std::vector<double>& demand,
                                  std::int64_t r, double tol = 1e-6);

// ω* as the radius fixed point (Lemma 2.2.3 verbatim on the graph).
double graph_omega_star_flow(const Graph& g,
                             const std::vector<double>& demand);

// Ball-based lower bound usable at scale (the graph stand-in for the cube
// bound): max over vertices v and radii k of ω_{B(v,k)}.
double graph_ball_lower_bound(const Graph& g,
                              const std::vector<double>& demand,
                              std::int64_t max_radius);

}  // namespace cmvrp
