// One shard of the streaming engine: a disjoint set of cubes, each cube
// an independent serving unit.
//
// Because every protocol action of the Chapter 3 strategy is intra-cube
// (neighbor lists, diffusing computations, and the monitoring ring never
// cross a cube boundary — the decentralization claim of §3.2), a cube can
// own its *entire* nondeterminism budget: CubeServer gives each cube its
// own EventQueue, its own Network whose delay RNG is seeded from
// (engine seed, cube corner), and its own FleetCore. A cube's outcome is
// then a pure function of (its job subsequence, its seed) — independent
// of which shard hosts it, how many threads run, or how arrivals are
// batched. That is the engine's bit-identical-across-thread-counts
// contract, enforced by tests/stream_test.cpp.
//
// Cube resolution is two-tier. Slots the engine's CubeSlotTable covers
// live in a dense per-shard array (a shard owns the slots congruent to
// its index mod shard-count, stored contiguously at slot / shard-count),
// so the per-job path is one indexed load instead of the corner-keyed
// std::map walk of earlier revisions. Jobs outside the table — or all
// jobs when no region is configured — resolve through a corner-hashed
// overflow FlatMap, which is the pre-refactor behavior; either tier
// constructs the identical CubeServer (the seed depends only on the
// corner), so outcomes cannot depend on the tier.
//
// Monitoring cadence: CubeServer settles the §3.2.5 ring every
// OnlineConfig::monitor_stride services *of its own cube* (plus a
// catch-up settle in finish()). Sweeping exactly once per ingest batch
// would be cheaper still, but would make heartbeat counts — and, because
// heartbeat delays draw from the per-cube RNG, travel/energy splits —
// depend on the batch size, breaking the bit-identical contract; a fixed
// per-cube stride gives the same amortization with results that stay a
// pure function of the cube's arrival subsequence.
//
// Admission (OnlineConfig::admission): with a bounded policy, each cube
// runs a FIFO backlog on the *global arrival-index clock* (§1.3's
// t_1 < t_2 < … with unit gaps — job.index is the wall time). A service
// occupies the cube for service_ticks of that clock; completed backlog
// services are materialized lazily at each arrival (and drained in
// finish()), so the whole admission schedule — who waits, who is shed,
// every queue_wait — is a pure function of the cube's arrival
// subsequence and stays bit-identical across thread counts AND batch
// sizes. kUnbounded bypasses the queue entirely: the serve path is the
// historical one, byte for byte.
//
// CubeShard serves its routed jobs in arrival order and the engine folds
// results by ascending cube corner, so double-valued metric sums are
// also reproducible. When the engine carries a StreamObserver, the shard
// additionally records JobOutcomes into an engine-owned per-shard buffer
// (O(batch) each, no cross-thread sharing). Note that with a bounded
// admission policy one *arrival* can materialize several *outcomes*
// (completed backlog services and/or an eviction), so outcomes of queued
// jobs surface in the batch that materialized them, not the batch that
// ingested them.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "grid/corner_hash.h"
#include "grid/point.h"
#include "metrics/latency_histogram.h"
#include "metrics/timeseries.h"
#include "obs/counters.h"
#include "obs/span.h"
#include "online/fleet_core.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "stream/slot_table.h"
#include "util/flat_map.h"
#include "workload/generators.h"

namespace cmvrp {

// Deterministic per-cube seed: splitmix64-style fold of the engine seed
// and the cube corner coordinates. Identical for every thread count and
// shard assignment by construction.
std::uint64_t cube_stream_seed(std::uint64_t engine_seed, const Point& corner);

// A job after the engine's routing pass: the cube corner and slot are
// resolved once, on the routing thread, so the shard's serve loop never
// recomputes them.
struct RoutedJob {
  Job job;
  Point corner;
  std::uint32_t slot = CubeSlotTable::kNoSlot;
};

// How one arrival ended. kServed/kFailed come out of the protocol;
// kShed/kRejected are admission drops — those jobs never reach the
// FleetCore at all. served + failed + dropped partition the arrivals.
enum class OutcomeKind : std::uint8_t {
  kFailed = 0,    // reached the protocol; no vehicle could serve it
  kServed = 1,
  kShed = 2,      // evicted from a bounded backlog by a newer arrival
  kRejected = 3,  // refused at admission: backlog full under kReject
};

// What one arrival came to: the job, the cube that handled it, the
// outcome kind, and its lifecycle timestamps — the unit the
// OutcomeRecorder streams back to disk.
struct JobOutcome {
  Job job;
  Point corner;        // cube corner the job was routed to
  bool served = false;  // kind == kServed, kept for 2-way consumers
  OutcomeKind kind = OutcomeKind::kFailed;
  JobTiming timing;    // zero-initialized for admission drops
};

// A single cube served online: own clock, own network, own fleet — and,
// under a bounded admission policy, its own backlog on the arrival clock.
class CubeServer {
 public:
  CubeServer(int dim, const OnlineConfig& config, const Point& corner);

  // Admits one arrival (which must lie in this cube): serves it
  // immediately (kUnbounded, or an idle cube), queues it, or drops it —
  // and first materializes every backlog service that completed by the
  // arrival's clock. Appends one JobOutcome per *materialized* outcome
  // to `out` when non-null. Serving drains the cube's queue; the
  // monitoring ring settles every monitor_stride-th service.
  void serve(const Job& job, std::vector<JobOutcome>* out);

  // Failure injection: the vehicle homed at `home` (which must lie in
  // this cube) goes silent-done — it serves until exhausted but never
  // initiates its own replacement, so only the §3.2.5 ring can recover
  // the pair. Takes effect for all subsequent arrivals.
  void inject_silent_done(const Point& home);

  // Drains the admission backlog (appending those outcomes to `out`
  // when non-null), runs any monitoring rounds deferred by the stride,
  // then finalizes metrics (network stats + energy aggregates).
  void finish(std::vector<JobOutcome>* out);

  const Point& corner() const { return corner_; }
  const OnlineMetrics& metrics() const { return core_.metrics(); }
  const std::vector<std::int64_t>& served_indices() const { return served_; }
  const std::vector<std::int64_t>& failed_indices() const { return failed_; }
  // Admission drops (shed + rejected), in drop order.
  const std::vector<std::int64_t>& dropped_indices() const { return dropped_; }
  std::uint64_t jobs_shed() const { return jobs_shed_; }
  std::uint64_t jobs_rejected() const { return jobs_rejected_; }
  // Latencies of this cube's served jobs (queue wait + protocol delta).
  const LatencyHistogram& latency() const { return latency_; }
  // Backlog-depth / occupancy samples (empty unless sample_stride > 0).
  const Timeseries& series() const { return series_; }
  // Snapshot of this cube's Tier-A counters (src/obs/): live network
  // stats + protocol metrics + the obs-gated cascade/admission state,
  // assembled on demand so mid-run stats samples see current values.
  // The obs-gated fields are zero unless OnlineConfig::obs.counters.
  CubeCounters counters() const;
  // Tier-C span recorder (null unless OnlineConfig::obs.spans).
  const SpanRecorder* spans() const { return spans_rec_.get(); }

 private:
  void settle_if_due();
  // Hands one job to the protocol, drains, stamps timing, records.
  void serve_now(const Job& job, SimTime queue_wait,
                 std::vector<JobOutcome>* out);
  // Records an admission drop (the job never touches the FleetCore).
  void drop(const Job& job, OutcomeKind kind, SimTime queue_wait,
            std::vector<JobOutcome>* out);
  // Materializes backlog services whose clock completed by `now`.
  void drain_completed(SimTime now, std::vector<JobOutcome>* out);
  void sample_if_due();
  // Obs-gated backlog gauges, called after every backlog push.
  void note_enqueued() {
    if (!obs_) return;
    ++enqueued_;
    if (backlog_.size() > backlog_peak_) backlog_peak_ = backlog_.size();
  }

  struct Waiting {
    Job job;
    SimTime enqueued_at = 0;  // arrival-index clock
  };

  Point corner_;
  EventQueue queue_;
  Network network_;
  FleetCore core_;
  // Tier-C span recorder, owned per cube (null unless obs.spans): wired
  // into both the core (protocol events) and the network (messages) at
  // construction, read back through the engine's span_sources().
  std::unique_ptr<SpanRecorder> spans_rec_;
  bool started_ = false;
  std::int64_t since_settle_ = 0;  // services since the last ring settle
  std::int64_t arrivals_ = 0;      // arrivals admitted to this cube
  std::deque<Waiting> backlog_;    // bounded admission queue (FIFO)
  SimTime free_at_ = 0;            // arrival clock: next service may start
  std::vector<std::int64_t> served_;  // arrival indices, in service order
  std::vector<std::int64_t> failed_;
  std::vector<std::int64_t> dropped_;
  std::uint64_t jobs_shed_ = 0;
  std::uint64_t jobs_rejected_ = 0;
  LatencyHistogram latency_;
  Timeseries series_;
  // Tier-A observability state, touched only when obs_ is set (cached
  // from OnlineConfig::obs.counters at construction).
  bool obs_ = false;
  std::uint64_t enqueued_ = 0;      // jobs that entered the backlog
  std::uint64_t backlog_peak_ = 0;  // deepest the backlog ever got
  LatencyHistogram cascade_{CubeCounters::kCascadeMaxValue};
};

// Everything one worker owns: the cubes assigned to it by the engine's
// slot (or corner-hash) routing. Jobs are processed strictly in the
// order given.
class CubeShard {
 public:
  // `table` is borrowed from the engine (shared by all shards, read-only
  // during serving); `shard_index` / `shard_count` define which table
  // slots this shard owns (slot % shard_count == shard_index).
  CubeShard(int dim, const OnlineConfig& config, const CubeSlotTable* table,
            int shard_index, int shard_count);

  // Serves a routed job slice in order, creating cube servers on first
  // arrival. When `outcomes` is non-null, appends the JobOutcomes each
  // arrival materializes, in processing order. Runs on the shard's
  // worker thread; touches only shard state (and its own outcome
  // buffer).
  void process(const RoutedJob* jobs, std::size_t count,
               std::vector<JobOutcome>* outcomes = nullptr);

  // Failure injection routed by the engine: creates the cube server for
  // the cube at `corner` (slot-resolved by the engine; creation is
  // deterministic per corner) and marks the vehicle at `home`
  // silent-done. Must be called between batches.
  void inject_silent_done(const Point& home, const Point& corner,
                          std::uint32_t slot);

  std::size_t cube_count() const { return materialized_; }
  std::uint64_t jobs_processed() const { return jobs_processed_; }

  // Drains every cube's admission backlog (outcomes appended to
  // `outcomes` when non-null) and finalizes its metrics.
  void finish(std::vector<JobOutcome>* outcomes = nullptr);

  // Appends this shard's (corner, server) pairs so the engine can fold
  // all cubes in one globally corner-sorted pass (shard assignment varies
  // with thread count, so per-shard folds of double sums would not).
  void collect(std::vector<std::pair<Point, const CubeServer*>>& out) const;

 private:
  CubeServer& server_for(const Point& corner, std::uint32_t slot);

  int dim_;
  OnlineConfig config_;
  const CubeSlotTable* table_;  // borrowed; may be empty
  int shard_index_;
  int shard_count_;
  // Dense tier: this shard's table slots, at local index slot / count.
  std::vector<std::unique_ptr<CubeServer>> slots_;
  // Overflow tier: cubes outside the table, keyed by corner.
  FlatMap<Point, std::unique_ptr<CubeServer>, CornerHash> overflow_;
  std::size_t materialized_ = 0;  // servers across both tiers
  std::uint64_t jobs_processed_ = 0;
};

}  // namespace cmvrp
