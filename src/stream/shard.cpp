#include "stream/shard.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace cmvrp {

std::uint64_t cube_stream_seed(std::uint64_t engine_seed,
                               const Point& corner) {
  // mix64 fold over the seed and each coordinate (same chain CornerHash
  // uses, prefixed with the engine seed).
  std::uint64_t h = mix64(engine_seed);
  h = mix64(h ^ static_cast<std::uint64_t>(corner.dim()));
  for (int i = 0; i < corner.dim(); ++i)
    h = mix64(h ^ static_cast<std::uint64_t>(corner[i]));
  return h;
}

CubeServer::CubeServer(int dim, const OnlineConfig& config,
                       const Point& corner)
    : corner_(corner),
      queue_(),
      network_(queue_, Rng(cube_stream_seed(config.seed, corner)),
               config.max_message_delay),
      core_(dim, config, queue_, network_),
      series_(config.sample_stride),
      obs_(config.obs.counters) {
  core_.bind_network();
  if (config.obs.spans) {
    spans_rec_ = std::make_unique<SpanRecorder>(config.obs.span_sample,
                                                config.obs.flight);
    core_.set_spans(spans_rec_.get());
    network_.set_spans(spans_rec_.get());
  }
}

void CubeServer::settle_if_due() {
  if (!core_.config().enable_monitoring) return;
  if (++since_settle_ < core_.config().monitor_stride) return;
  core_.settle();
  since_settle_ = 0;
}

void CubeServer::serve_now(const Job& job, SimTime queue_wait,
                           std::vector<JobOutcome>* out) {
  // Cascade attribution brackets exactly the serve + drain: the
  // replacements a deferred monitor settle completes below belong to
  // the ring, not to this job.
  const std::uint64_t repl_before = obs_ ? core_.metrics().replacements : 0;
  const bool ok = core_.serve_job(job, corner_);
  queue_.run_to_quiescence();
  if (obs_ && ok)
    cascade_.add(
        static_cast<std::int64_t>(core_.metrics().replacements - repl_before));
  JobTiming timing = core_.last_timing();
  // The replacement cascade this job triggered (if any) has fully
  // drained: the cube clock now is the job's completion time.
  timing.done_at = queue_.now();
  // Close the serve span only after the drain, so the begin/end pair
  // brackets the job's whole cascade on the protocol clock.
  if (spans_rec_ != nullptr) spans_rec_->serve_end(queue_.now(), job.index, ok);
  timing.queue_wait = queue_wait;
  settle_if_due();
  (ok ? served_ : failed_).push_back(job.index);
  if (ok) latency_.add(timing.latency());
  if (out != nullptr)
    out->push_back({job, corner_, ok,
                    ok ? OutcomeKind::kServed : OutcomeKind::kFailed, timing});
}

void CubeServer::drop(const Job& job, OutcomeKind kind, SimTime queue_wait,
                      std::vector<JobOutcome>* out) {
  dropped_.push_back(job.index);
  ++(kind == OutcomeKind::kShed ? jobs_shed_ : jobs_rejected_);
  if (out != nullptr) {
    JobTiming timing;
    timing.queue_wait = queue_wait;
    out->push_back({job, corner_, false, kind, timing});
  }
}

void CubeServer::drain_completed(SimTime now, std::vector<JobOutcome>* out) {
  const SimTime ticks = core_.config().service_ticks;
  while (!backlog_.empty()) {
    // Shedding can promote a later arrival to the front of the queue, so
    // the front's service starts when the cube is free AND the job has
    // arrived — not at free_at_ alone (which may predate its enqueue).
    const SimTime start = std::max(free_at_, backlog_.front().enqueued_at);
    if (start + ticks > now) break;
    const Waiting w = backlog_.front();
    backlog_.pop_front();
    serve_now(w.job, start - w.enqueued_at, out);
    free_at_ = start + ticks;
  }
}

void CubeServer::sample_if_due() {
  if (!series_.due(arrivals_)) return;  // gates the O(fleet) scan below
  series_.record(arrivals_, static_cast<std::int64_t>(backlog_.size()),
                 core_.exhausted_permille());
}

void CubeServer::serve(const Job& job, std::vector<JobOutcome>* out) {
  if (!started_) {
    started_ = true;
    // Same warm-up as the legacy simulator, scoped to this cube: the
    // fleet exists from t = 0 and heartbeats precede the first arrival.
    core_.ensure_cube_at(job.position);
    if (core_.config().enable_monitoring) {
      core_.monitor_sweep();
      queue_.run_to_quiescence();
    }
  }
  ++arrivals_;
  const OnlineConfig& cfg = core_.config();
  if (cfg.admission == AdmissionPolicy::kUnbounded) {
    // Historical path: serve the instant it lands, no queue state at all.
    serve_now(job, 0, out);
    sample_if_due();
    return;
  }
  // Bounded admission on the arrival-index clock. Everything below is a
  // pure function of this cube's arrival subsequence: materialize what
  // completed, then admit / queue / drop the newcomer.
  const SimTime t = job.index;
  drain_completed(t, out);
  if (backlog_.empty() && free_at_ <= t) {
    serve_now(job, 0, out);
    free_at_ = t + cfg.service_ticks;
  } else if (static_cast<std::int64_t>(backlog_.size()) < cfg.queue_limit) {
    backlog_.push_back({job, t});
    note_enqueued();
  } else if (cfg.admission == AdmissionPolicy::kReject) {
    drop(job, OutcomeKind::kRejected, 0, out);
  } else {
    // kShed: the oldest waiting job makes room for the newest — it has
    // already waited t − enqueued_at for nothing.
    const Waiting oldest = backlog_.front();
    backlog_.pop_front();
    drop(oldest.job, OutcomeKind::kShed, t - oldest.enqueued_at, out);
    backlog_.push_back({job, t});
    note_enqueued();
  }
  sample_if_due();
}

void CubeServer::inject_silent_done(const Point& home) {
  core_.inject_silent_done(home);
}

CubeCounters CubeServer::counters() const {
  CubeCounters c;
  // Network stats are read live (finalize_metrics only copies them into
  // OnlineMetrics at finish), so a mid-run snapshot is current.
  const NetworkStats& net = network_.stats();
  c.msg_queries = net.queries;
  c.msg_replies = net.replies;
  c.msg_moves = net.moves;
  c.msg_heartbeats = net.heartbeats;
  c.msg_heartbeat_skips = net.heartbeat_skips;
  const OnlineMetrics& m = core_.metrics();
  c.comps_started = m.computations_started;
  c.comps_finished = core_.obs_comps_finished();
  c.comps_failed = m.computations_failed;
  c.monitor_initiations = m.monitor_initiations;
  c.replacements = m.replacements;
  c.max_queries_per_comp = core_.obs_max_queries_per_comp();
  c.arrivals = static_cast<std::uint64_t>(arrivals_);
  c.served = served_.size();
  c.failed = failed_.size();
  c.enqueued = enqueued_;
  c.shed = jobs_shed_;
  c.rejected = jobs_rejected_;
  c.backlog_peak = backlog_peak_;
  if (spans_rec_ != nullptr) {
    const SpanTotals& t = spans_rec_->totals();
    c.spans_emitted = t.emitted;
    c.spans_sampled_out = t.sampled_out;
    c.spans_ring_evicted = t.ring_evicted;
  }
  c.cascade = cascade_;
  return c;
}

void CubeServer::finish(std::vector<JobOutcome>* out) {
  // End of stream: whatever still waits gets served back to back (the
  // paper's arrivals have stopped, so the cube works the queue off).
  while (!backlog_.empty()) {
    const Waiting w = backlog_.front();
    backlog_.pop_front();
    const SimTime start = std::max(free_at_, w.enqueued_at);
    serve_now(w.job, start - w.enqueued_at, out);
    free_at_ = start + core_.config().service_ticks;
  }
  // Catch-up settle: a stride > 1 may have deferred the detection of a
  // trailing failure past the last arrival.
  if (core_.config().enable_monitoring && since_settle_ > 0) {
    core_.settle();
    since_settle_ = 0;
  }
  core_.finalize_metrics();
}

CubeShard::CubeShard(int dim, const OnlineConfig& config,
                     const CubeSlotTable* table, int shard_index,
                     int shard_count)
    : dim_(dim),
      config_(config),
      table_(table),
      shard_index_(shard_index),
      shard_count_(shard_count) {
  CMVRP_CHECK(shard_count >= 1 && shard_index >= 0 &&
              shard_index < shard_count);
  if (table_ != nullptr && !table_->empty()) {
    // Local capacity: slots congruent to shard_index mod shard_count.
    const std::uint64_t local =
        (table_->size() + static_cast<std::uint64_t>(shard_count) - 1 -
         static_cast<std::uint64_t>(shard_index)) /
        static_cast<std::uint64_t>(shard_count);
    slots_.resize(static_cast<std::size_t>(local));
  }
}

CubeServer& CubeShard::server_for(const Point& corner, std::uint32_t slot) {
  if (slot != CubeSlotTable::kNoSlot) {
    const auto local = static_cast<std::size_t>(
        slot / static_cast<std::uint32_t>(shard_count_));
    auto& server = slots_[local];
    if (server == nullptr) {
      server = std::make_unique<CubeServer>(dim_, config_, corner);
      ++materialized_;
    }
    return *server;
  }
  auto& server = overflow_[corner];
  if (server == nullptr) {
    server = std::make_unique<CubeServer>(dim_, config_, corner);
    ++materialized_;
  }
  return *server;
}

void CubeShard::process(const RoutedJob* jobs, std::size_t count,
                        std::vector<JobOutcome>* outcomes) {
  for (std::size_t i = 0; i < count; ++i) {
    const RoutedJob& r = jobs[i];
    server_for(r.corner, r.slot).serve(r.job, outcomes);
    ++jobs_processed_;
  }
}

void CubeShard::inject_silent_done(const Point& home, const Point& corner,
                                   std::uint32_t slot) {
  server_for(corner, slot).inject_silent_done(home);
}

void CubeShard::finish(std::vector<JobOutcome>* outcomes) {
  for (auto& server : slots_)
    if (server != nullptr) server->finish(outcomes);
  for (auto& [corner, server] : overflow_) server->finish(outcomes);
}

void CubeShard::collect(
    std::vector<std::pair<Point, const CubeServer*>>& out) const {
  for (const auto& server : slots_)
    if (server != nullptr) out.emplace_back(server->corner(), server.get());
  for (const auto& [corner, server] : overflow_)
    out.emplace_back(corner, server.get());
}

}  // namespace cmvrp
