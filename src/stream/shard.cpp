#include "stream/shard.h"

#include <utility>

#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace cmvrp {

std::uint64_t cube_stream_seed(std::uint64_t engine_seed,
                               const Point& corner) {
  // mix64 fold over the seed and each coordinate (same chain CornerHash
  // uses, prefixed with the engine seed).
  std::uint64_t h = mix64(engine_seed);
  h = mix64(h ^ static_cast<std::uint64_t>(corner.dim()));
  for (int i = 0; i < corner.dim(); ++i)
    h = mix64(h ^ static_cast<std::uint64_t>(corner[i]));
  return h;
}

CubeServer::CubeServer(int dim, const OnlineConfig& config,
                       const Point& corner)
    : corner_(corner),
      queue_(),
      network_(queue_, Rng(cube_stream_seed(config.seed, corner)),
               config.max_message_delay),
      core_(dim, config, queue_, network_) {
  core_.bind_network();
}

void CubeServer::settle_if_due() {
  if (!core_.config().enable_monitoring) return;
  if (++since_settle_ < core_.config().monitor_stride) return;
  core_.settle();
  since_settle_ = 0;
}

bool CubeServer::serve(const Job& job) {
  if (!started_) {
    started_ = true;
    // Same warm-up as the legacy simulator, scoped to this cube: the
    // fleet exists from t = 0 and heartbeats precede the first arrival.
    core_.ensure_cube_at(job.position);
    if (core_.config().enable_monitoring) {
      core_.monitor_sweep();
      queue_.run_to_quiescence();
    }
  }
  // The corner was resolved at routing time; serve_job can skip its own
  // floor-divides.
  const bool ok = core_.serve_job(job, corner_);
  queue_.run_to_quiescence();
  settle_if_due();
  (ok ? served_ : failed_).push_back(job.index);
  return ok;
}

void CubeServer::inject_silent_done(const Point& home) {
  core_.inject_silent_done(home);
}

void CubeServer::finish() {
  // Catch-up settle: a stride > 1 may have deferred the detection of a
  // trailing failure past the last arrival.
  if (core_.config().enable_monitoring && since_settle_ > 0) {
    core_.settle();
    since_settle_ = 0;
  }
  core_.finalize_metrics();
}

CubeShard::CubeShard(int dim, const OnlineConfig& config,
                     const CubeSlotTable* table, int shard_index,
                     int shard_count)
    : dim_(dim),
      config_(config),
      table_(table),
      shard_index_(shard_index),
      shard_count_(shard_count) {
  CMVRP_CHECK(shard_count >= 1 && shard_index >= 0 &&
              shard_index < shard_count);
  if (table_ != nullptr && !table_->empty()) {
    // Local capacity: slots congruent to shard_index mod shard_count.
    const std::uint64_t local =
        (table_->size() + static_cast<std::uint64_t>(shard_count) - 1 -
         static_cast<std::uint64_t>(shard_index)) /
        static_cast<std::uint64_t>(shard_count);
    slots_.resize(static_cast<std::size_t>(local));
  }
}

CubeServer& CubeShard::server_for(const Point& corner, std::uint32_t slot) {
  if (slot != CubeSlotTable::kNoSlot) {
    const auto local = static_cast<std::size_t>(
        slot / static_cast<std::uint32_t>(shard_count_));
    auto& server = slots_[local];
    if (server == nullptr) {
      server = std::make_unique<CubeServer>(dim_, config_, corner);
      ++materialized_;
    }
    return *server;
  }
  auto& server = overflow_[corner];
  if (server == nullptr) {
    server = std::make_unique<CubeServer>(dim_, config_, corner);
    ++materialized_;
  }
  return *server;
}

void CubeShard::process(const RoutedJob* jobs, std::size_t count,
                        std::vector<JobOutcome>* outcomes) {
  for (std::size_t i = 0; i < count; ++i) {
    const RoutedJob& r = jobs[i];
    const bool served = server_for(r.corner, r.slot).serve(r.job);
    if (outcomes != nullptr) outcomes->push_back({r.job, r.corner, served});
    ++jobs_processed_;
  }
}

void CubeShard::inject_silent_done(const Point& home, const Point& corner,
                                   std::uint32_t slot) {
  server_for(corner, slot).inject_silent_done(home);
}

void CubeShard::finish() {
  for (auto& server : slots_)
    if (server != nullptr) server->finish();
  for (auto& [corner, server] : overflow_) server->finish();
}

void CubeShard::collect(
    std::vector<std::pair<Point, const CubeServer*>>& out) const {
  for (const auto& server : slots_)
    if (server != nullptr) out.emplace_back(server->corner(), server.get());
  for (const auto& [corner, server] : overflow_)
    out.emplace_back(corner, server.get());
}

}  // namespace cmvrp
