#include "stream/shard.h"

#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace cmvrp {

std::uint64_t cube_stream_seed(std::uint64_t engine_seed,
                               const Point& corner) {
  // splitmix64 finalizer over the seed and each coordinate.
  auto mix = [](std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t h = mix(engine_seed);
  h = mix(h ^ static_cast<std::uint64_t>(corner.dim()));
  for (int i = 0; i < corner.dim(); ++i)
    h = mix(h ^ static_cast<std::uint64_t>(corner[i]));
  return h;
}

CubeServer::CubeServer(int dim, const OnlineConfig& config,
                       const Point& corner)
    : queue_(),
      network_(queue_, Rng(cube_stream_seed(config.seed, corner)),
               config.max_message_delay),
      core_(dim, config, queue_, network_) {
  core_.bind_network();
}

void CubeServer::settle_if_due() {
  if (!core_.config().enable_monitoring) return;
  if (++since_settle_ < core_.config().monitor_stride) return;
  core_.settle();
  since_settle_ = 0;
}

bool CubeServer::serve(const Job& job) {
  if (!started_) {
    started_ = true;
    // Same warm-up as the legacy simulator, scoped to this cube: the
    // fleet exists from t = 0 and heartbeats precede the first arrival.
    core_.ensure_cube_at(job.position);
    if (core_.config().enable_monitoring) {
      core_.monitor_sweep();
      queue_.run_to_quiescence();
    }
  }
  const bool ok = core_.serve_job(job);
  queue_.run_to_quiescence();
  settle_if_due();
  (ok ? served_ : failed_).push_back(job.index);
  return ok;
}

void CubeServer::inject_silent_done(const Point& home) {
  core_.inject_silent_done(home);
}

void CubeServer::finish() {
  // Catch-up settle: a stride > 1 may have deferred the detection of a
  // trailing failure past the last arrival.
  if (core_.config().enable_monitoring && since_settle_ > 0) {
    core_.settle();
    since_settle_ = 0;
  }
  core_.finalize_metrics();
}

CubeShard::CubeShard(int dim, const OnlineConfig& config)
    : dim_(dim),
      config_(config),
      pairing_(dim, config.anchor, config.cube_side) {}

CubeServer& CubeShard::server_for(const Point& corner) {
  auto it = servers_.find(corner);
  if (it == servers_.end()) {
    it = servers_
             .emplace(corner,
                      std::make_unique<CubeServer>(dim_, config_, corner))
             .first;
  }
  return *it->second;
}

void CubeShard::process(const std::vector<Job>& jobs,
                        std::vector<JobOutcome>* outcomes) {
  for (const Job& job : jobs) {
    const Point corner = pairing_.cube_corner(job.position);
    const bool served = server_for(corner).serve(job);
    if (outcomes != nullptr) outcomes->push_back({job, corner, served});
    ++jobs_processed_;
  }
}

void CubeShard::inject_silent_done(const Point& home) {
  server_for(pairing_.cube_corner(home)).inject_silent_done(home);
}

void CubeShard::finish() {
  for (auto& [corner, server] : servers_) server->finish();
}

void CubeShard::collect(
    std::vector<std::pair<Point, const CubeServer*>>& out) const {
  for (const auto& [corner, server] : servers_)
    out.emplace_back(corner, server.get());
}

}  // namespace cmvrp
