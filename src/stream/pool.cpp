#include "stream/pool.h"

#include <utility>

namespace cmvrp {

WorkerPool::WorkerPool(int workers) : workers_(workers < 1 ? 1 : workers) {
  if (workers_ <= 1) return;
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

WorkerPool::~WorkerPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run_erased(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &fn;
  first_error_ = nullptr;
  running_ = workers_;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return running_ == 0; });
  task_ = nullptr;
  if (first_error_) std::rethrow_exception(std::exchange(first_error_, {}));
}

void WorkerPool::worker_loop(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    std::exception_ptr error;
    try {
      (*task)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace cmvrp
