#include "stream/engine.h"

#include <algorithm>
#include <utility>

#include "grid/corner_hash.h"
#include "util/check.h"
#include "util/timer.h"

namespace cmvrp {
namespace {

// Below this many jobs per worker, the scatter/fold bookkeeping of the
// parallel routing pass costs more than the floor-divides it spreads out.
constexpr std::size_t kMinJobsPerRouteWorker = 64;

}  // namespace

StreamEngine::StreamEngine(int dim, const StreamConfig& config)
    : dim_(dim),
      config_(config),
      pairing_(dim, config.online.anchor, config.online.cube_side),
      table_(CubeSlotTable::build(dim, config.online.anchor,
                                  config.online.cube_side, config.region)),
      pool_(config.threads) {
  CMVRP_CHECK_MSG(config.threads >= 1, "stream engine needs >= 1 thread");
  CMVRP_CHECK_MSG(config.batch_size >= 1, "batch size must be >= 1");
  const auto shard_count = static_cast<std::size_t>(pool_.size());
  shards_.reserve(shard_count);
  for (int s = 0; s < pool_.size(); ++s)
    shards_.emplace_back(dim_, config_.online, &table_, s, pool_.size());
  routed_.resize(shard_count);
  scatter_.resize(shard_count);
  for (auto& per_thread : scatter_) per_thread.resize(shard_count);
  outcomes_.resize(shard_count);
}

void StreamEngine::set_observer(StreamObserver* observer) {
  observer_ = observer;
}

void StreamEngine::set_snapshotter(StatsSnapshotter* snapshotter) {
  snapshotter_ = snapshotter;
  if (snapshotter_ != nullptr)
    snapshotter_->write_header(dim_, pool_.size(), config_.batch_size,
                               config_.online.seed,
                               config_.online.obs.counters);
}

CubeCounters StreamEngine::fold_counters() const {
  // Counter merges are commutative (sums / maxes / histogram bucket
  // sums), so the unsorted shard walk folds to the same value the
  // ascending-corner pass would.
  CubeCounters totals;
  std::vector<std::pair<Point, const CubeServer*>> cubes;
  for (const auto& shard : shards_) shard.collect(cubes);
  for (const auto& [corner, server] : cubes)
    totals.merge(server->counters());
  return totals;
}

void StreamEngine::ingest(const std::vector<Job>& jobs) {
  ingest(jobs.data(), jobs.size());
}

void StreamEngine::ingest(const Job* jobs, std::size_t count) {
  const auto batch = static_cast<std::size_t>(config_.batch_size);
  for (std::size_t off = 0; off < count; off += batch)
    run_batch(jobs + off, std::min(batch, count - off));
}

std::size_t StreamEngine::route_of(const Point& position, Point* corner,
                                   std::uint32_t* slot) const {
  const auto shard_count = static_cast<std::size_t>(pool_.size());
  if (!table_.empty()) {
    *slot = table_.slot_of_position(position, corner);
    if (*slot != CubeSlotTable::kNoSlot)
      return static_cast<std::size_t>(*slot) % shard_count;
  } else {
    *slot = CubeSlotTable::kNoSlot;
    *corner = pairing_.cube_corner(position);
  }
  return CornerHash{}(*corner) % shard_count;
}

void StreamEngine::inject_silent_done(const Point& home) {
  CMVRP_CHECK_MSG(home.dim() == dim_,
                  "silent-done home dim " << home.dim()
                                          << " does not match engine dim "
                                          << dim_);
  Point corner = home;
  std::uint32_t slot = CubeSlotTable::kNoSlot;
  const std::size_t shard = route_of(home, &corner, &slot);
  shards_[shard].inject_silent_done(home, corner, slot);
  if (observer_ != nullptr) observer_->on_inject(home);
}

void StreamEngine::run_batch(const Job* jobs, std::size_t count) {
  if (count == 0) return;
  WallTimer ingest_timer;
  const auto shard_count = static_cast<std::size_t>(pool_.size());
  WallTimer route_timer;
  for (auto& r : routed_) r.clear();
  if (shard_count > 1 && count >= kMinJobsPerRouteWorker * shard_count) {
    // Parallel scatter: worker t resolves the contiguous chunk
    // [t·chunk, …) into its own per-shard buffers; a second pass folds
    // the chunks per shard in ascending t — the concatenation is exactly
    // the order the serial loop would have produced, so the serve pass
    // (and with it every outcome) cannot tell the difference.
    const std::size_t chunk = (count + shard_count - 1) / shard_count;
    pool_.run([this, jobs, count, chunk](int w) {
      const auto t = static_cast<std::size_t>(w);
      auto& mine = scatter_[t];
      for (auto& bucket : mine) bucket.clear();
      const std::size_t begin = std::min(t * chunk, count);
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        CMVRP_CHECK(jobs[i].position.dim() == dim_);
        RoutedJob r;
        r.job = jobs[i];
        const std::size_t shard =
            route_of(jobs[i].position, &r.corner, &r.slot);
        mine[shard].push_back(std::move(r));
      }
    });
    pool_.run([this](int w) {
      const auto s = static_cast<std::size_t>(w);
      auto& out = routed_[s];
      for (auto& per_thread : scatter_) {
        out.insert(out.end(),
                   std::make_move_iterator(per_thread[s].begin()),
                   std::make_move_iterator(per_thread[s].end()));
      }
    });
    ++routed_parallel_batches_;
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      CMVRP_CHECK(jobs[i].position.dim() == dim_);
      RoutedJob r;
      r.job = jobs[i];
      const std::size_t shard = route_of(jobs[i].position, &r.corner, &r.slot);
      routed_[shard].push_back(std::move(r));
    }
    ++routed_serial_batches_;
  }
  routing_ms_ += route_timer.elapsed_ms();

  // Fork/join barrier: every arrival of this batch is fully served (queue
  // drained, monitoring settled) before the next batch is admitted —
  // the stream-scale reading of the paper's long inter-arrival gaps.
  const bool observing = observer_ != nullptr;
  WallTimer serve_timer;
  pool_.run([this, observing](int w) {
    const auto s = static_cast<std::size_t>(w);
    shards_[s].process(routed_[s].data(), routed_[s].size(),
                       observing ? &outcomes_[s] : nullptr);
  });
  stages_.serve_ms += serve_timer.elapsed_ms();
  if (observing) {
    WallTimer fold_timer;
    flush_outcomes();
    stages_.fold_ms += fold_timer.elapsed_ms();
  }
  jobs_ingested_ += count;
  ++batches_;
  stages_.ingest_ms += ingest_timer.elapsed_ms();
  if (snapshotter_ != nullptr && snapshotter_->due(batches_)) {
    StageTimes spans = stages_;
    spans.route_ms = routing_ms_;
    snapshotter_->write_sample(batches_, jobs_ingested_, fold_counters(),
                               spans);
  }
}

void StreamEngine::flush_outcomes() {
  if (observer_ == nullptr) return;
  // Fold the shards' per-thread buffers into ascending arrival-index
  // order — within one batch indices are unique, so the sort restores
  // the exact ingest order regardless of shard assignment. (Under a
  // bounded admission policy a batch's buffer holds whatever outcomes it
  // *materialized* — queued jobs surface later than they were ingested —
  // but the materialization schedule is per-cube deterministic, so the
  // folded sequence still cannot depend on thread count.)
  outcome_fold_.clear();
  for (auto& shard_outcomes : outcomes_) {
    outcome_fold_.insert(outcome_fold_.end(), shard_outcomes.begin(),
                         shard_outcomes.end());
    shard_outcomes.clear();
  }
  if (outcome_fold_.empty()) return;
  // Total order (index, position, kind): indices are unique within a
  // batch for ordinary streams, but even degenerate inputs with
  // duplicate indices must fold — and hit the disk — deterministically
  // at every thread count.
  std::sort(outcome_fold_.begin(), outcome_fold_.end(),
            [](const JobOutcome& a, const JobOutcome& b) {
              if (a.job.index != b.job.index) return a.job.index < b.job.index;
              if (!(a.job.position == b.job.position))
                return a.job.position < b.job.position;
              return a.kind < b.kind;
            });
  observer_->on_batch(outcome_fold_.data(), outcome_fold_.size());
}

StreamResult StreamEngine::finish() {
  // Backlog drain runs on the ingest thread: end-of-stream work is tiny
  // (at most queue_limit jobs per cube) and a serial walk keeps the
  // trailing observer batch in deterministic shard-then-cube order.
  const bool observing = observer_ != nullptr;
  WallTimer monitor_timer;
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shards_[s].finish(observing ? &outcomes_[s] : nullptr);
  if (observing) flush_outcomes();

  std::vector<std::pair<Point, const CubeServer*>> cubes;
  for (const auto& shard : shards_) shard.collect(cubes);
  std::sort(cubes.begin(), cubes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  StreamResult result;
  result.jobs_ingested = jobs_ingested_;
  result.batches = batches_;
  result.cubes = cubes.size();
  result.cube_slots = table_.size();
  result.routing_ms = routing_ms_;
  result.routed_parallel_batches = routed_parallel_batches_;
  result.routed_serial_batches = routed_serial_batches_;
  for (const auto& [corner, server] : cubes) {
    result.metrics.merge(server->metrics());
    result.served_jobs.insert(result.served_jobs.end(),
                              server->served_indices().begin(),
                              server->served_indices().end());
    result.failed_jobs.insert(result.failed_jobs.end(),
                              server->failed_indices().begin(),
                              server->failed_indices().end());
    result.shed_jobs.insert(result.shed_jobs.end(),
                            server->dropped_indices().begin(),
                            server->dropped_indices().end());
    result.jobs_shed += server->jobs_shed();
    result.jobs_rejected += server->jobs_rejected();
    result.latency.merge(server->latency());
    result.timeseries.fold(CornerHash{}(corner), server->series());
    result.counters.merge(server->counters());
    if (snapshotter_ != nullptr)
      snapshotter_->write_cube(corner, server->counters(),
                               server->latency());
  }
  std::sort(result.served_jobs.begin(), result.served_jobs.end());
  std::sort(result.failed_jobs.begin(), result.failed_jobs.end());
  std::sort(result.shed_jobs.begin(), result.shed_jobs.end());
  stages_.monitor_ms += monitor_timer.elapsed_ms();
  stages_.route_ms = routing_ms_;
  result.stages = stages_;
  if (snapshotter_ != nullptr)
    snapshotter_->write_final(jobs_ingested_, result.cubes, result.counters,
                              result.stages);
  return result;
}

std::vector<std::pair<Point, OnlineMetrics>> StreamEngine::per_cube_metrics()
    const {
  std::vector<std::pair<Point, const CubeServer*>> cubes;
  for (const auto& shard : shards_) shard.collect(cubes);
  std::sort(cubes.begin(), cubes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<Point, OnlineMetrics>> out;
  out.reserve(cubes.size());
  for (const auto& [corner, server] : cubes)
    out.emplace_back(corner, server->metrics());
  return out;
}

std::vector<CubeSpanSource> StreamEngine::span_sources() const {
  std::vector<std::pair<Point, const CubeServer*>> cubes;
  for (const auto& shard : shards_) shard.collect(cubes);
  std::sort(cubes.begin(), cubes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CubeSpanSource> out;
  out.reserve(cubes.size());
  std::uint64_t ordinal = 0;
  for (const auto& [corner, server] : cubes) {
    const std::uint64_t fallback = kSpanUnslottedPidBase + ordinal++;
    if (server->spans() == nullptr) continue;
    const std::uint32_t slot = table_.slot_of_position(corner, nullptr);
    CubeSpanSource src;
    src.corner = corner;
    src.pid = slot != CubeSlotTable::kNoSlot ? slot : fallback;
    src.recorder = server->spans();
    out.push_back(src);
  }
  return out;
}

StreamResult serve_stream(int dim, const StreamConfig& config,
                          const std::vector<Job>& jobs) {
  StreamEngine engine(dim, config);
  engine.ingest(jobs);
  return engine.finish();
}

}  // namespace cmvrp
