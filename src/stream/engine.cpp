#include "stream/engine.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace cmvrp {

StreamEngine::StreamEngine(int dim, const StreamConfig& config)
    : dim_(dim),
      config_(config),
      pairing_(dim, config.online.anchor, config.online.cube_side),
      pool_(config.threads) {
  CMVRP_CHECK_MSG(config.threads >= 1, "stream engine needs >= 1 thread");
  CMVRP_CHECK_MSG(config.batch_size >= 1, "batch size must be >= 1");
  shards_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int s = 0; s < pool_.size(); ++s)
    shards_.emplace_back(dim_, config_.online);
  routed_.resize(static_cast<std::size_t>(pool_.size()));
  outcomes_.resize(static_cast<std::size_t>(pool_.size()));
}

void StreamEngine::set_observer(StreamObserver* observer) {
  observer_ = observer;
}

void StreamEngine::ingest(const std::vector<Job>& jobs) {
  ingest(jobs.data(), jobs.size());
}

void StreamEngine::ingest(const Job* jobs, std::size_t count) {
  const auto batch = static_cast<std::size_t>(config_.batch_size);
  for (std::size_t off = 0; off < count; off += batch)
    run_batch(jobs + off, std::min(batch, count - off));
}

void StreamEngine::inject_silent_done(const Point& home) {
  CMVRP_CHECK_MSG(home.dim() == dim_,
                  "silent-done home dim " << home.dim()
                                          << " does not match engine dim "
                                          << dim_);
  PointHash hash;
  const Point corner = pairing_.cube_corner(home);
  shards_[hash(corner) % static_cast<std::size_t>(pool_.size())]
      .inject_silent_done(home);
  if (observer_ != nullptr) observer_->on_inject(home);
}

void StreamEngine::run_batch(const Job* jobs, std::size_t count) {
  if (count == 0) return;
  const auto shard_count = static_cast<std::size_t>(pool_.size());
  for (auto& r : routed_) r.clear();
  PointHash hash;
  for (std::size_t i = 0; i < count; ++i) {
    CMVRP_CHECK(jobs[i].position.dim() == dim_);
    const Point corner = pairing_.cube_corner(jobs[i].position);
    routed_[hash(corner) % shard_count].push_back(jobs[i]);
  }
  // Fork/join barrier: every arrival of this batch is fully served (queue
  // drained, monitoring settled) before the next batch is admitted —
  // the stream-scale reading of the paper's long inter-arrival gaps.
  const bool observing = observer_ != nullptr;
  pool_.run([this, observing](int w) {
    const auto s = static_cast<std::size_t>(w);
    shards_[s].process(routed_[s], observing ? &outcomes_[s] : nullptr);
  });
  if (observing) {
    // Fold the shards' per-thread buffers into ascending arrival-index
    // order — within one batch indices are unique, so the sort restores
    // the exact ingest order regardless of shard assignment.
    outcome_fold_.clear();
    for (auto& shard_outcomes : outcomes_) {
      outcome_fold_.insert(outcome_fold_.end(), shard_outcomes.begin(),
                           shard_outcomes.end());
      shard_outcomes.clear();
    }
    // Total order (index, position, served): indices are unique within a
    // batch for ordinary streams, but even degenerate inputs with
    // duplicate indices must fold — and hit the disk — deterministically
    // at every thread count.
    std::sort(outcome_fold_.begin(), outcome_fold_.end(),
              [](const JobOutcome& a, const JobOutcome& b) {
                if (a.job.index != b.job.index) return a.job.index < b.job.index;
                if (!(a.job.position == b.job.position))
                  return a.job.position < b.job.position;
                return a.served < b.served;
              });
    observer_->on_batch(outcome_fold_.data(), outcome_fold_.size());
  }
  jobs_ingested_ += count;
  ++batches_;
}

StreamResult StreamEngine::finish() {
  for (auto& shard : shards_) shard.finish();

  std::vector<std::pair<Point, const CubeServer*>> cubes;
  for (const auto& shard : shards_) shard.collect(cubes);
  std::sort(cubes.begin(), cubes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  StreamResult result;
  result.jobs_ingested = jobs_ingested_;
  result.batches = batches_;
  result.cubes = cubes.size();
  for (const auto& [corner, server] : cubes) {
    result.metrics.merge(server->metrics());
    result.served_jobs.insert(result.served_jobs.end(),
                              server->served_indices().begin(),
                              server->served_indices().end());
    result.failed_jobs.insert(result.failed_jobs.end(),
                              server->failed_indices().begin(),
                              server->failed_indices().end());
  }
  std::sort(result.served_jobs.begin(), result.served_jobs.end());
  std::sort(result.failed_jobs.begin(), result.failed_jobs.end());
  return result;
}

StreamResult serve_stream(int dim, const StreamConfig& config,
                          const std::vector<Job>& jobs) {
  StreamEngine engine(dim, config);
  engine.ingest(jobs);
  return engine.finish();
}

}  // namespace cmvrp
