// Cube-corner → dense slot resolution for the streaming engine.
//
// When the engine knows its region geometry (StreamConfig::region), every
// partition cube intersecting the region gets a fixed slot id, assigned
// row-major over the per-axis cube-cell ranges. Routing a job then costs
// one floor-divide per axis — the SAME divide that computes the cube
// corner, so slot_of_position returns both in one pass — and shards
// resolve slots in a dense array instead of a corner-keyed map lookup
// per job.
//
// Slot ids are a pure function of the region geometry (never of arrival
// order, thread count, or shard assignment), so anything derived from
// them is covered by the engine's bit-identical contract. Jobs outside
// the region — or every job, when no region is configured — fall back to
// the corner-hashed overflow path, which is exactly the pre-refactor
// behavior; tests pin flat-state and overflow serving to identical
// digests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "grid/box.h"
#include "grid/point.h"

namespace cmvrp {

class CubeSlotTable {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // Empty table: every position resolves to kNoSlot (pure overflow mode).
  CubeSlotTable() = default;

  // Table covering all cubes of the side-`side` partition anchored at
  // `anchor` that intersect `region`. Falls back to an empty table when
  // the region spans more than `max_slots` cubes (a degenerate geometry
  // should degrade to overflow hashing, not allocate without bound).
  static CubeSlotTable build(int dim, const Point& anchor, std::int64_t side,
                             const std::optional<Box>& region,
                             std::uint64_t max_slots = std::uint64_t{1} << 22);

  // Resolves `p` to its slot (kNoSlot when outside the table) and, when
  // `corner` is non-null, writes the corner of p's partition cube —
  // byte-identical to CubePairing::cube_corner — computed from the same
  // divides.
  std::uint32_t slot_of_position(const Point& p, Point* corner) const;

  // Corner of the cube owning `slot` (slot < size()).
  Point corner_of(std::uint32_t slot) const;

  std::uint64_t size() const { return slots_; }
  bool empty() const { return slots_ == 0; }

 private:
  int dim_ = 0;
  Point anchor_;
  std::int64_t side_ = 1;
  int shift_ = -1;  // log2(side_) when side_ is a power of two, else -1
  std::vector<std::int64_t> lo_cell_;  // per-axis first cube cell index
  std::vector<std::int64_t> count_;    // per-axis cube cell count
  std::uint64_t slots_ = 0;
};

}  // namespace cmvrp
