// A tiny fixed-size fork/join worker pool for the streaming engine.
//
// The engine's unit of parallelism is one *shard* (a fixed set of cubes),
// so the pool runs the same callable once per worker index and barriers:
// run(fn) invokes fn(0..n-1) concurrently and returns when every call has
// finished. Workers are spawned once and parked between batches; with
// n <= 1 no thread is ever created and fn runs inline on the caller —
// which is also why single-threaded runs are exactly reproducible under
// ThreadSanitizer and on single-core machines.
//
// Exceptions thrown inside a worker are captured and rethrown from run()
// on the calling thread (first one wins).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cmvrp {

class WorkerPool {
 public:
  // `workers` is clamped below at 1; 1 means "inline, no threads".
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return workers_; }

  // Runs fn(w) for every worker index w in [0, size()), blocking until
  // all calls return. Not reentrant. Single-worker pools invoke fn
  // inline without the std::function round-trip — the engine calls run()
  // a few times per batch, and the erased-callable construction was
  // visible in single-thread serving profiles.
  template <typename Fn>
  void run(Fn&& fn) {
    if (threads_.empty()) {
      fn(0);
      return;
    }
    run_erased(std::function<void(int)>(std::forward<Fn>(fn)));
  }

 private:
  void run_erased(const std::function<void(int)>& fn);
  void worker_loop(int index);

  int workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;  // valid for one generation
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace cmvrp
