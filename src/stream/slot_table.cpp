#include "stream/slot_table.h"

#include "util/check.h"

namespace cmvrp {
namespace {

// Floor division of (p - anchor) by side, matching CubePairing's corner
// arithmetic exactly (corner = anchor + cell * side).
std::int64_t cell_of(std::int64_t coord, std::int64_t anchor,
                     std::int64_t side) {
  const std::int64_t off = coord - anchor;
  return off >= 0 ? off / side : -((-off + side - 1) / side);
}

}  // namespace

CubeSlotTable CubeSlotTable::build(int dim, const Point& anchor,
                                   std::int64_t side,
                                   const std::optional<Box>& region,
                                   std::uint64_t max_slots) {
  CMVRP_CHECK(side >= 1);
  if (!region.has_value()) return CubeSlotTable{};
  CMVRP_CHECK(region->dim() == dim && anchor.dim() == dim);

  CubeSlotTable t;
  t.dim_ = dim;
  t.anchor_ = anchor;
  t.side_ = side;
  // Power-of-two side: floor division is an arithmetic shift (valid for
  // negative offsets too), sparing the per-axis hardware divide on the
  // per-job routing path.
  if ((side & (side - 1)) == 0) {
    t.shift_ = 0;
    while ((std::int64_t{1} << t.shift_) < side) ++t.shift_;
  }
  t.lo_cell_.resize(static_cast<std::size_t>(dim));
  t.count_.resize(static_cast<std::size_t>(dim));
  std::uint64_t slots = 1;
  for (int i = 0; i < dim; ++i) {
    const std::int64_t lo = cell_of(region->lo()[i], anchor[i], side);
    const std::int64_t hi = cell_of(region->hi()[i], anchor[i], side);
    t.lo_cell_[static_cast<std::size_t>(i)] = lo;
    const auto count = static_cast<std::uint64_t>(hi - lo + 1);
    t.count_[static_cast<std::size_t>(i)] = hi - lo + 1;
    // Overflow-safe product check before multiplying.
    if (count != 0 && slots > max_slots / count) return CubeSlotTable{};
    slots *= count;
  }
  if (slots > max_slots) return CubeSlotTable{};
  t.slots_ = slots;
  return t;
}

std::uint32_t CubeSlotTable::slot_of_position(const Point& p,
                                              Point* corner) const {
  if (slots_ == 0) {
    // No table: the caller still needs the corner for the overflow path,
    // but there is no geometry here to derive it from.
    CMVRP_CHECK_MSG(corner == nullptr,
                    "empty CubeSlotTable cannot compute corners");
    return kNoSlot;
  }
  CMVRP_CHECK(p.dim() == dim_);
  std::uint64_t slot = 0;
  bool inside = true;
  Point c = p;
  for (int i = 0; i < dim_; ++i) {
    const std::int64_t cell = shift_ >= 0
                                  ? (p[i] - anchor_[i]) >> shift_
                                  : cell_of(p[i], anchor_[i], side_);
    c[i] = anchor_[i] + cell * side_;
    const std::int64_t rel = cell - lo_cell_[static_cast<std::size_t>(i)];
    if (rel < 0 || rel >= count_[static_cast<std::size_t>(i)])
      inside = false;
    else
      slot = slot * static_cast<std::uint64_t>(
                        count_[static_cast<std::size_t>(i)]) +
             static_cast<std::uint64_t>(rel);
  }
  if (corner != nullptr) *corner = c;
  return inside ? static_cast<std::uint32_t>(slot) : kNoSlot;
}

Point CubeSlotTable::corner_of(std::uint32_t slot) const {
  CMVRP_CHECK(slot < slots_);
  Point c = anchor_;
  auto rest = static_cast<std::uint64_t>(slot);
  for (int i = dim_ - 1; i >= 0; --i) {
    const auto count =
        static_cast<std::uint64_t>(count_[static_cast<std::size_t>(i)]);
    const std::int64_t cell =
        lo_cell_[static_cast<std::size_t>(i)] +
        static_cast<std::int64_t>(rest % count);
    rest /= count;
    c[i] = anchor_[i] + cell * side_;
  }
  return c;
}

}  // namespace cmvrp
