// Sharded streaming engine: multi-threaded, batched online serving over
// cube shards.
//
// The legacy OnlineSimulation drains one global event queue to quiescence
// after every arrival — correct, but single-threaded and far from the
// "millions of users" target. This engine exploits the paper's own
// decentralization (§3.2: vehicles coordinate only through radius-r
// neighbor messages inside their cube) to serve a job stream in parallel:
//
//   ingest  — arrivals are consumed in bounded batches (batch_size) and
//             routed to shards by cube corner hash,
//   serve   — N worker shards process their routed jobs concurrently,
//             each cube on its own deterministic EventQueue + per-cube
//             seeded Network (see stream/shard.h),
//   merge   — per-cube OnlineMetrics and served/failed index sets fold in
//             ascending-corner order into one StreamResult.
//
// Contract: results are bit-identical for every thread count and batch
// size, because all nondeterminism lives in per-cube seeds and each
// cube's job subsequence is order-preserved. Threads only change wall
// time. Against the *legacy* simulator only the delay-invariant service
// outcome (served/failed sets) is expected to agree: per-cube delay RNGs
// draw differently from the legacy global RNG, so Phase I searches can
// pick different idle replacements (different travel/energy split), and
// monitoring heartbeats are per-cube-local here whereas the legacy
// simulator sweeps every cube after every arrival (different message
// counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "online/fleet_core.h"
#include "stream/pool.h"
#include "stream/shard.h"
#include "workload/generators.h"

namespace cmvrp {

struct StreamConfig {
  OnlineConfig online;          // per-cube deployment parameters
  int threads = 1;              // worker shards (>= 1)
  std::int64_t batch_size = 256;  // max arrivals per ingest batch (>= 1)
};

struct StreamResult {
  OnlineMetrics metrics;               // deterministic fold over cubes
  std::uint64_t jobs_ingested = 0;
  std::uint64_t batches = 0;
  std::uint64_t cubes = 0;
  std::vector<std::int64_t> served_jobs;  // sorted arrival indices
  std::vector<std::int64_t> failed_jobs;  // sorted arrival indices
};

class StreamEngine {
 public:
  StreamEngine(int dim, const StreamConfig& config);

  // Consumes a stream segment: splits it into bounded batches, routes
  // each batch to shards, and serves the batches one barrier at a time.
  // May be called repeatedly (the online front end). The pointer overload
  // lets out-of-core callers (trace replay) feed reused buffers without
  // constructing a vector per segment.
  void ingest(const std::vector<Job>& jobs);
  void ingest(const Job* jobs, std::size_t count);

  // Finalizes and merges every cube's results. The engine stays usable:
  // further ingest() calls continue from the same fleet state.
  StreamResult finish();

  int threads() const { return pool_.size(); }

 private:
  void run_batch(const Job* jobs, std::size_t count);

  int dim_;
  StreamConfig config_;
  CubePairing pairing_;  // routing: job position -> cube corner
  std::vector<CubeShard> shards_;
  // Per-shard routing buffers, reused across batches.
  std::vector<std::vector<Job>> routed_;
  WorkerPool pool_;
  std::uint64_t jobs_ingested_ = 0;
  std::uint64_t batches_ = 0;
};

// Convenience: one engine, one stream, one result.
StreamResult serve_stream(int dim, const StreamConfig& config,
                          const std::vector<Job>& jobs);

}  // namespace cmvrp
