// Sharded streaming engine: multi-threaded, batched online serving over
// cube shards.
//
// The legacy OnlineSimulation drains one global event queue to quiescence
// after every arrival — correct, but single-threaded and far from the
// "millions of users" target. This engine exploits the paper's own
// decentralization (§3.2: vehicles coordinate only through radius-r
// neighbor messages inside their cube) to serve a job stream in parallel:
//
//   route   — arrivals are consumed in bounded batches (batch_size); a
//             routing pass resolves each job's cube corner and slot (one
//             CubeSlotTable lookup when region geometry is configured)
//             and scatters it to its shard. Large batches route in
//             parallel: each worker scatters a contiguous chunk into
//             per-thread buffers that fold in thread order at the
//             barrier, reproducing the serial scatter order exactly.
//   serve   — N worker shards process their routed jobs concurrently,
//             each cube on its own deterministic EventQueue + per-cube
//             seeded Network (see stream/shard.h).
//   observe — when a StreamObserver is attached, every batch's outcomes
//             are folded in ascending arrival-index order after the
//             barrier and handed to the observer on the ingest thread
//             (the OutcomeRecorder streams them to disk at
//             O(batch × threads) peak RSS),
//   merge   — per-cube OnlineMetrics and served/failed index sets fold in
//             ascending-corner order into one StreamResult.
//
// Contract: results are bit-identical for every thread count and batch
// size, because all nondeterminism lives in per-cube seeds and each
// cube's job subsequence is order-preserved (the monitoring cadence is a
// per-cube arrival stride, never a batch boundary — see stream/shard.h).
// Threads — and whether a region/slot table is configured — only change
// wall time and shard assignment, never outcomes. Against the *legacy*
// simulator only the delay-invariant service outcome (served/failed
// sets) is expected to agree: per-cube delay RNGs draw differently from
// the legacy global RNG, so Phase I searches can pick different idle
// replacements (different travel/energy split), and monitoring
// heartbeats are per-cube-local here whereas the legacy simulator sweeps
// every cube after every arrival (different message counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "grid/box.h"
#include "metrics/latency_histogram.h"
#include "metrics/timeseries.h"
#include "obs/counters.h"
#include "obs/snapshot.h"
#include "obs/span_export.h"
#include "obs/stage_timer.h"
#include "online/fleet_core.h"
#include "stream/pool.h"
#include "stream/shard.h"
#include "stream/slot_table.h"
#include "workload/generators.h"

namespace cmvrp {

struct StreamConfig {
  OnlineConfig online;          // per-cube deployment parameters
  int threads = 1;              // worker shards (>= 1)
  std::int64_t batch_size = 256;  // max arrivals per ingest batch (>= 1)
  // Region the stream's positions live in. When set, the engine builds a
  // cube-corner → slot table over it at construction and shards resolve
  // cubes through dense per-slot arrays; jobs outside the region (or all
  // jobs when unset) take the corner-hashed overflow path. Purely a
  // performance hint: outcomes are identical either way.
  std::optional<Box> region;
};

struct StreamResult {
  OnlineMetrics metrics;               // deterministic fold over cubes
  std::uint64_t jobs_ingested = 0;
  std::uint64_t batches = 0;
  std::uint64_t cubes = 0;
  std::uint64_t cube_slots = 0;        // slot-table size (0 = overflow only)
  double routing_ms = 0.0;             // total wall time in routing passes
  std::uint64_t routed_parallel_batches = 0;
  std::uint64_t routed_serial_batches = 0;
  std::vector<std::int64_t> served_jobs;  // sorted arrival indices
  std::vector<std::int64_t> failed_jobs;  // sorted arrival indices
  // Admission drops (shed + rejected): jobs a bounded queue never let
  // reach the protocol. served + failed + shed partition the arrivals.
  std::vector<std::int64_t> shed_jobs;    // sorted arrival indices
  std::uint64_t jobs_shed = 0;            // evicted by AdmissionPolicy::kShed
  std::uint64_t jobs_rejected = 0;        // refused by AdmissionPolicy::kReject
  // Served-job latency (admission wait + protocol completion delta):
  // commutative per-cube merge, so percentiles and the digest are
  // bit-identical across thread counts and batch sizes.
  LatencyHistogram latency;
  // Backlog-depth / fleet-occupancy samples, folded per cube in
  // ascending-corner order (empty unless sample_stride > 0).
  TimeseriesSummary timeseries;
  // Tier-A counter totals (src/obs/), folded per cube: message kinds
  // come free from the always-on NetworkStats; the obs-gated fields
  // (cascade, per-computation query max, admission gauges) are zero
  // unless OnlineConfig::obs.counters. Deterministic like everything
  // above.
  CubeCounters counters;
  // Tier-B wall-clock stage spans (nondeterministic; excluded from CI
  // diffs by the *_ms / wall_* naming convention).
  StageTimes stages;
};

// Engine-side outcome observation. on_batch fires after every batch
// barrier with that batch's outcomes sorted by ascending arrival index
// (so for a stream indexed 0..N-1 the concatenation over batches is the
// global arrival order), on the thread that called ingest(). on_inject
// fires for every silent-done injection, at its position between
// batches — so an observer recording the run (OutcomeRecorder) captures
// failure injections too and its trail replays to the same run.
// Observers must not re-enter the engine.
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;
  virtual void on_batch(const JobOutcome* outcomes, std::size_t count) = 0;
  virtual void on_inject(const Point& home) { (void)home; }
};

class StreamEngine {
 public:
  StreamEngine(int dim, const StreamConfig& config);

  // Attaches (or, with nullptr, detaches) an outcome observer. Borrowed;
  // must outlive serving. Call before ingest() — outcomes of batches
  // already served are not replayed.
  void set_observer(StreamObserver* observer);

  // Attaches (or detaches) a JSONL stats snapshotter (src/obs/). The
  // engine writes the header immediately, a totals sample every
  // snapshotter-stride batches (an O(cubes) counter fold on the ingest
  // thread, amortized by the stride), one line per cube in
  // ascending-corner order at finish(), and a final-totals line.
  // Borrowed; must outlive serving.
  void set_snapshotter(StatsSnapshotter* snapshotter);

  // Consumes a stream segment: splits it into bounded batches, routes
  // each batch to shards, and serves the batches one barrier at a time.
  // May be called repeatedly (the online front end). The pointer overload
  // lets out-of-core callers (trace replay) feed reused buffers without
  // constructing a vector per segment.
  void ingest(const std::vector<Job>& jobs);
  void ingest(const Job* jobs, std::size_t count);

  // Failure injection between ingest() calls: the vehicle homed at
  // `home` goes silent-done (serves until exhausted, never initiates its
  // own replacement — §3.2.5's scenario 2). Routed to the owning cube's
  // shard deterministically; takes effect for all arrivals ingested
  // afterwards. The trace replayer maps v2 silent-done events here.
  void inject_silent_done(const Point& home);

  // Finalizes and merges every cube's results. With a bounded admission
  // policy this first drains every cube's backlog (the stream has ended,
  // so waiting jobs get served back to back), delivering those trailing
  // outcomes to the observer as one final batch. The engine stays
  // usable: further ingest() calls continue from the same fleet state
  // (with empty backlogs).
  StreamResult finish();

  int threads() const { return pool_.size(); }
  // Size of the cube-slot table (0 when no region is configured or the
  // region was too large to tabulate) — surfaced so bench/CLI artifacts
  // are self-describing about which routing mode actually ran.
  std::uint64_t cube_slots() const { return table_.size(); }

  // The exact per-cube operand sequence finish() folds: (corner,
  // metrics) pairs in ascending-corner order. Test introspection for
  // the fold-order pin — OnlineMetrics::merge sums doubles, so only
  // this order reproduces result.metrics bit for bit (see
  // tests/stream_test.cpp's shard-fold-order regression). Metrics are
  // finalized by finish(); call this after it.
  std::vector<std::pair<Point, OnlineMetrics>> per_cube_metrics() const;

  // Tier-C export view: one (corner, pid, recorder) source per cube that
  // carries a span recorder, in ascending-corner order. pid is the
  // cube's slot in the routing table when covered (stable across runs of
  // one scenario), else kSpanUnslottedPidBase + its ascending-corner
  // ordinal. Empty unless OnlineConfig::obs.spans. Borrowed recorders:
  // valid until the next ingest()/finish().
  std::vector<CubeSpanSource> span_sources() const;

 private:
  void run_batch(const Job* jobs, std::size_t count);
  // Sorts the per-shard outcome buffers into one ascending-index batch
  // and hands it to the observer (no-op when empty / not observing).
  void flush_outcomes();
  // Folds every materialized cube's Tier-A counters (commutative, so no
  // sort needed) — the snapshotter's mid-run totals and finish()'s.
  CubeCounters fold_counters() const;
  // Resolves one position to (corner, slot) and its owning shard.
  std::size_t route_of(const Point& position, Point* corner,
                       std::uint32_t* slot) const;

  int dim_;
  StreamConfig config_;
  CubePairing pairing_;  // routing: job position -> cube corner
  CubeSlotTable table_;  // cube corner -> dense slot (may be empty)
  std::vector<CubeShard> shards_;
  // Per-shard routing buffers, reused across batches.
  std::vector<std::vector<RoutedJob>> routed_;
  // Per-(thread, shard) scatter buffers for the parallel routing pass.
  std::vector<std::vector<std::vector<RoutedJob>>> scatter_;
  // Per-shard outcome buffers + the merged fold, reused across batches;
  // only populated while an observer is attached (O(batch × threads)).
  std::vector<std::vector<JobOutcome>> outcomes_;
  std::vector<JobOutcome> outcome_fold_;
  StreamObserver* observer_ = nullptr;
  StatsSnapshotter* snapshotter_ = nullptr;
  WorkerPool pool_;
  std::uint64_t jobs_ingested_ = 0;
  std::uint64_t batches_ = 0;
  StageTimes stages_;  // Tier-B spans (route_ms mirrors routing_ms_)
  double routing_ms_ = 0.0;
  std::uint64_t routed_parallel_batches_ = 0;
  std::uint64_t routed_serial_batches_ = 0;
};

// Convenience: one engine, one stream, one result.
StreamResult serve_stream(int dim, const StreamConfig& config,
                          const std::vector<Job>& jobs);

}  // namespace cmvrp
