#include "core/bounds.h"

#include <cmath>

#include "core/cube_bound.h"
#include "core/offline_planner.h"
#include "util/check.h"

namespace cmvrp {

OffBounds offline_bounds(const DemandMap& d, double cells) {
  CMVRP_CHECK(cells > 0.0);
  OffBounds out;
  out.upper_factor = 2.0 * std::pow(3.0, static_cast<double>(d.dim())) +
                     static_cast<double>(d.dim());
  out.max_demand = d.max_demand();
  out.avg_demand = d.total() / cells;
  if (d.empty()) return out;

  const OfflinePlan plan = plan_offline(d);
  out.omega_c = plan.bound.omega_c;
  out.upper = plan.capacity_bound;
  out.plan_energy = plan.max_energy();
  return out;
}

}  // namespace cmvrp
