// Bundled Woff bounds (Theorem 1.4.1, Properties 2.3.1–2.3.3) for
// benchmarks and examples: the ω_c lower bound, the Lemma 2.2.5
// (2·3^ℓ+ℓ)·ω_c upper bound, the realized plan energy, and the D / D̂
// demand bounds of §2.3 in one struct.
//
// Complexity: one cube_bound scan plus one plan_offline construction and
// verification — O(support · log) overall; no LP or flow solves.
#pragma once

#include <cstdint>

#include "grid/demand_map.h"

namespace cmvrp {

struct OffBounds {
  double omega_c = 0.0;        // cube lower bound ω_c <= Woff (Cor. 2.2.7)
  double upper = 0.0;          // (2·3^ℓ + ℓ)·ω_c >= Woff (Lem. 2.2.5)
  double plan_energy = 0.0;    // realized max energy of the Lem. 2.2.5 plan
  double max_demand = 0.0;     // D  (Woff <= D, Property 2.3.1)
  double avg_demand = 0.0;     // D̂ over `cells` (D̂ <= Woff, Property 2.3.1)
  double upper_factor = 0.0;   // 2·3^ℓ + ℓ
};

// `cells` is the number of grid cells used for the average D̂ (Properties
// 2.3.1–2.3.3 are stated on the n^ℓ grid); pass the demand support's
// bounding-box volume when no natural grid applies.
OffBounds offline_bounds(const DemandMap& d, double cells);

}  // namespace cmvrp
