// Constructive offline solution realizing Lemma 2.2.5.
//
// Partition Z^ℓ into ⌈ω_c⌉-cubes; inside each cube every vehicle first
// serves up to B = 3^ℓ·ω_c demand at its own vertex, then at most one
// vehicle per leftover "chunk" (≤ B demand) travels to the chunk's vertex
// and serves it. Corollary 2.2.7 guarantees the chunk count never exceeds
// the vehicles available, so every vehicle's energy stays below
// (2·3^ℓ + ℓ)·ω_c — the paper's upper bound (one side of the Theorem
// 1.4.1 sandwich), realized as an executable plan.
//
// Complexity: plan construction is O(support) after the cube_bound scan
// (each demand vertex joins one cube, each cube is chunked greedily);
// verify_plan is O(support + assignments).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cube_bound.h"
#include "grid/demand_map.h"
#include "grid/point.h"

namespace cmvrp {

struct VehicleAssignment {
  Point home;                  // the vehicle's depot vertex
  double serve_at_home = 0.0;  // energy spent on jobs at `home`
  std::optional<Point> remote; // vertex the vehicle relocates to (if any)
  double serve_remote = 0.0;   // energy spent on jobs at `remote`
  std::int64_t travel = 0;     // L1 distance home -> remote

  double energy() const {
    return serve_at_home + serve_remote + static_cast<double>(travel);
  }
};

struct OfflinePlan {
  CubeBound bound;              // ω_c and the partition side used
  double in_place_budget = 0.0; // B = 3^ℓ·ω_c
  double capacity_bound = 0.0;  // (2·3^ℓ + ℓ)·ω_c (paper's Lemma 2.2.5)
  std::vector<VehicleAssignment> assignments;  // only vehicles with work

  double max_energy() const;
  double total_energy() const;
};

// Builds the Lemma 2.2.5 plan. `d` must be non-empty.
OfflinePlan plan_offline(const DemandMap& d);

struct PlanCheck {
  bool ok = false;
  std::string issue;        // empty when ok
  double max_energy = 0.0;  // realized Woff upper bound of the plan
};

// Validates a plan against the demand map: full coverage, consistent
// travel distances, per-vehicle energy within `capacity` (defaults to the
// plan's own capacity_bound), and one assignment per vehicle.
PlanCheck verify_plan(const OfflinePlan& plan, const DemandMap& d,
                      double capacity = -1.0);

}  // namespace cmvrp
