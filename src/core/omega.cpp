#include "core/omega.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "flow/transportation.h"
#include "grid/neighborhood.h"
#include "lp/simplex.h"
#include "util/check.h"

namespace cmvrp {
namespace {

// Solves inf{ω : ω · volume(⌊ω⌋) >= s} given a callback producing the
// exact neighborhood cardinality at integer radii. volume must be
// non-decreasing in k and >= 1.
double omega_from_volume(const std::function<std::int64_t(std::int64_t)>& volume,
                         double s) {
  CMVRP_CHECK(s >= 0.0);
  if (s == 0.0) return 0.0;
  // On segment [k, k+1): g(ω) = ω · volume(k), covering
  // [k·volume(k), (k+1)·volume(k)). March k upward; the answer is reached
  // once (k+1)·volume(k) > s.
  for (std::int64_t k = 0;; ++k) {
    const auto vol = static_cast<double>(volume(k));
    CMVRP_CHECK(vol >= 1.0);
    const double lo = static_cast<double>(k) * vol;
    const double hi = (static_cast<double>(k) + 1.0) * vol;
    if (s < lo) return static_cast<double>(k);  // jump overshoots: inf is k
    if (s < hi) return s / vol;                 // interior crossing
    // Guard against pathological non-growth (cannot happen on Z^ℓ).
    CMVRP_CHECK_MSG(k < (std::int64_t{1} << 40), "omega search diverged");
  }
}

}  // namespace

double omega_for_set(const std::vector<Point>& t, const DemandMap& d) {
  CMVRP_CHECK_MSG(!t.empty(), "omega of empty set");
  double s = 0.0;
  for (const auto& p : t) s += d.at(p);

  // Incremental multi-source BFS: expand the frontier ring by ring so that
  // volume(k) queries are amortized O(|N_k(T)|) overall.
  PointSet visited(t.begin(), t.end());
  std::vector<Point> frontier(visited.begin(), visited.end());
  std::int64_t current_radius = 0;
  auto volume = [&](std::int64_t k) -> std::int64_t {
    while (current_radius < k) {
      std::vector<Point> next;
      for (const auto& p : frontier)
        for (const auto& q : p.unit_neighbors())
          if (visited.insert(q).second) next.push_back(q);
      frontier = std::move(next);
      ++current_radius;
    }
    return static_cast<std::int64_t>(visited.size());
  };
  return omega_from_volume(volume, s);
}

double omega_for_box(const Box& t, double demand_sum) {
  const auto sides = t.sides();
  auto volume = [&sides](std::int64_t k) {
    return box_neighborhood_volume(sides, k);
  };
  return omega_from_volume(volume, demand_sum);
}

double omega_star_enumerate(const DemandMap& d, std::size_t max_support) {
  const auto support = d.support();
  CMVRP_CHECK_MSG(support.size() <= max_support,
                  "support too large for subset enumeration: "
                      << support.size());
  CMVRP_CHECK(!support.empty());
  // Only subsets of the support matter: adding a zero-demand point to T
  // adds nothing to Σd but can only grow N_r(T), so it never raises ω_T.
  double best = 0.0;
  const std::size_t n = support.size();
  std::vector<Point> subset;
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::uint64_t{1} << i)) subset.push_back(support[i]);
    best = std::max(best, omega_for_set(subset, d));
  }
  return best;
}

double lp_value_at_radius(const DemandMap& d, std::int64_t r) {
  CMVRP_CHECK(r >= 0);
  const auto demands = d.support();
  CMVRP_CHECK(!demands.empty());
  auto supplier_set = neighborhood(demands, r);
  std::vector<Point> suppliers(supplier_set.begin(), supplier_set.end());
  std::sort(suppliers.begin(), suppliers.end());

  // LP (2.1): min ω  s.t.  Σ_j f_ij <= ω  ∀i,  Σ_i f_ij >= d(j)  ∀j.
  LpProblem lp(/*maximize=*/false);
  const std::size_t omega_var = lp.add_variable(1.0);
  // f variables, only for pairs within distance r.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> by_supplier(
      suppliers.size());  // (demand index, var)
  std::vector<std::vector<std::size_t>> by_demand(demands.size());
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    for (std::size_t j = 0; j < demands.size(); ++j) {
      if (l1_distance(suppliers[i], demands[j]) <= r) {
        const std::size_t v = lp.add_variable(0.0);
        by_supplier[i].emplace_back(j, v);
        by_demand[j].push_back(v);
      }
    }
  }
  for (std::size_t i = 0; i < suppliers.size(); ++i) {
    std::vector<std::pair<std::size_t, double>> row;
    row.reserve(by_supplier[i].size() + 1);
    for (const auto& [j, v] : by_supplier[i]) {
      (void)j;
      row.emplace_back(v, 1.0);
    }
    row.emplace_back(omega_var, -1.0);
    lp.add_constraint(row, LpRelation::kLessEqual, 0.0);
  }
  for (std::size_t j = 0; j < demands.size(); ++j) {
    std::vector<std::pair<std::size_t, double>> row;
    row.reserve(by_demand[j].size());
    for (std::size_t v : by_demand[j]) row.emplace_back(v, 1.0);
    lp.add_constraint(row, LpRelation::kGreaterEqual, d.at(demands[j]));
  }
  const LpResult result = lp.solve();
  CMVRP_CHECK_MSG(result.status == LpStatus::kOptimal,
                  "LP (2.1) must be feasible and bounded, got "
                      << to_string(result.status));
  return result.objective;
}

double flow_value_at_radius(const DemandMap& d, std::int64_t r, double tol) {
  return min_feasible_omega(d, r, tol);
}

double omega_star_fixed_point(
    const DemandMap& d,
    const std::function<double(const DemandMap&, std::int64_t)>&
        value_at_radius) {
  if (d.empty()) return 0.0;
  // v(k) = LP value at integer radius k is non-increasing; ω* is the
  // crossing of v(⌊ω⌋) with the identity (proof of Lemma 2.2.3):
  //   find the largest k with v(k) >= k. If v(k) < k+1 the fixed point is
  //   interior (ω* = v(k)); otherwise it sits at the jump (ω* = k+1).
  std::int64_t k = 0;
  double vk = value_at_radius(d, 0);
  for (;;) {
    if (vk < static_cast<double>(k) + 1.0) return std::max(vk, static_cast<double>(k));
    const double vnext = value_at_radius(d, k + 1);
    CMVRP_CHECK_MSG(vnext <= vk + 1e-6, "LP value must be non-increasing in r");
    ++k;
    vk = vnext;
    CMVRP_CHECK_MSG(k < (std::int64_t{1} << 30), "fixed point search diverged");
  }
}

double omega_star_flow(const DemandMap& d) {
  return omega_star_fixed_point(
      d, [](const DemandMap& dm, std::int64_t r) {
        return flow_value_at_radius(dm, r);
      });
}

}  // namespace cmvrp
