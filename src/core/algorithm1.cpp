#include "core/algorithm1.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "grid/box.h"
#include "util/check.h"

namespace cmvrp {
namespace {

bool is_power_of_two(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

Algorithm1Result algorithm1(const DemandMap& d, std::int64_t n) {
  CMVRP_CHECK_MSG(is_power_of_two(n), "Algorithm 1 requires n a power of 2");
  const int dim = d.dim();
  const Box domain = Box::cube(Point::origin(dim), n);
  for (const auto& [p, v] : d) {
    (void)v;
    CMVRP_CHECK_MSG(domain.contains(p),
                    "demand point outside [0,n)^l: " << p.to_string());
  }

  Algorithm1Result out;
  double cells = 1.0;
  for (int i = 0; i < dim; ++i) cells *= static_cast<double>(n);

  const double big_d = d.max_demand();                    // D
  const double avg_d = d.total() / cells;                 // D̂
  const double ell = static_cast<double>(dim);

  // Step 1-2: if n <= D̂ return min{D, 2·D̂ + ℓ·n}.
  if (static_cast<double>(n) <= avg_d) {
    out.estimate = std::min(big_d, 2.0 * avg_d + ell * static_cast<double>(n));
    out.exit_rule = "n<=avg";
    return out;
  }
  // Step 3-4: if D <= 1 return D (vehicles cannot even move).
  if (big_d <= 1.0) {
    out.estimate = big_d;
    out.exit_rule = "D<=1";
    return out;
  }

  // Step 5: w=2, d1 = d  (densified level-0 grid).
  DenseGrid level(Box::cube(Point::origin(dim), n));
  for (const auto& [p, v] : d) level.add(p, v);
  out.cells_touched += static_cast<std::int64_t>(cells);

  std::int64_t w = 2;
  std::int64_t np = n / 2;
  for (;;) {
    // Step 6-7: if w = n return min{D, 2·D̂ + ℓ·n}.
    if (w == n) {
      out.estimate =
          std::min(big_d, 2.0 * avg_d + ell * static_cast<double>(n));
      out.final_w = w;
      out.exit_rule = "w==n";
      return out;
    }
    // Steps 8-9: aggregate 2^ℓ children into each parent cell.
    DenseGrid next(Box::cube(Point::origin(dim), np));
    next.box().for_each_point([&](const Point& parent) {
      // Sum the 2^ℓ children of `parent` at the finer level.
      Point lo = parent;
      for (int i = 0; i < dim; ++i) lo[i] = parent[i] * 2;
      double sum = 0.0;
      Box::cube(lo, 2).for_each_point(
          [&](const Point& c) { sum += level.at(c); });
      next.set(parent, sum);
    });
    out.cells_touched += np > 0 ? static_cast<std::int64_t>(
                                      std::pow(static_cast<double>(np * 2),
                                               static_cast<double>(dim)))
                                : 0;
    level = std::move(next);

    // Steps 10-12: if any w-cube demand exceeds w·(3w)^ℓ, double w.
    const double threshold =
        static_cast<double>(w) *
        std::pow(3.0 * static_cast<double>(w), static_cast<double>(dim));
    if (level.max_value() > threshold) {
      w *= 2;
      np /= 2;
      continue;
    }
    // Steps 13-14.
    out.estimate =
        (2.0 * std::pow(3.0, static_cast<double>(dim)) + ell) *
        static_cast<double>(w);
    out.final_w = w;
    out.exit_rule = "threshold";
    return out;
  }
}

}  // namespace cmvrp
