// Cube-restricted characterizations of Woff (Corollaries 2.2.6 and 2.2.7).
//
// The paper's key algorithmic step: instead of maximizing ω_T over all
// subsets, it suffices (up to the constant) to look at ℓ-cubes, and in
// fact only at ⌈ω⌉-cubes. ω_c of Cor. 2.2.7 is
//   ω_c = min{ω : ω·(3⌈ω⌉)^ℓ = max over ⌈ω⌉-cubes of their demand},
// interpreted with the same inf-crossing semantics as ω_T (DESIGN.md §3).
//
// Complexity: cube_bound builds prefix sums once, O(n^ℓ), then scans
// cube sides k = 1…n with an O(n^ℓ) sliding-window maximum per side —
// O(n^{ℓ+1}) worst case but the side loop exits at the first crossing,
// which is O(ω_c) sides in practice.
#pragma once

#include <cstdint>

#include "grid/demand_map.h"

namespace cmvrp {

struct CubeBound {
  double omega_c = 0.0;        // Cor. 2.2.7 value
  std::int64_t cube_side = 1;  // ⌈ω_c⌉ clamped to >= 1 (partition side)
  double max_cube_demand = 0.0;  // demand of the binding cube
};

// Computes ω_c by scanning cube sides k = 1, 2, … with sliding-window
// maxima M(k) over all offsets, solving ω·(3k)^ℓ = M(k) per segment.
CubeBound cube_bound(const DemandMap& d);

// max_{T ∈ Γ} ω_T over all cubes Γ of every side and offset touching the
// demand's bounding box (Cor. 2.2.6). O(n^{ℓ+1}) cube evaluations — meant
// for validation on modest grids, guarded by `max_cells`.
double max_omega_over_cubes(const DemandMap& d,
                            std::int64_t max_cells = 1 << 22);

}  // namespace cmvrp
