#include "core/incremental_omega.h"

#include <algorithm>

#include "grid/neighborhood.h"
#include "util/check.h"

namespace cmvrp {

BoxOmega::BoxOmega(const Box& box, double initial_sum)
    : sides_(box.sides()), sum_(initial_sum) {
  CMVRP_CHECK(initial_sum >= 0.0);
  grow_table(8);
}

void BoxOmega::add(double delta) {
  sum_ += delta;
  CMVRP_CHECK_MSG(sum_ >= 0.0, "demand sum went negative");
}

void BoxOmega::set_sum(double sum) {
  CMVRP_CHECK(sum >= 0.0);
  sum_ = sum;
}

double BoxOmega::omega() { return omega_for_sum(sum_); }

double BoxOmega::omega_for_sum(double s) {
  CMVRP_CHECK(s >= 0.0);
  if (s == 0.0) return 0.0;
  const std::int64_t k = segment_for(s);
  const auto vol = static_cast<double>(vol_[static_cast<std::size_t>(k)]);
  if (s < static_cast<double>(k) * vol)
    return static_cast<double>(k);  // jump overshoots: inf is k
  return s / vol;                   // interior crossing
}

double BoxOmega::hi_of(std::int64_t k) const {
  return (static_cast<double>(k) + 1.0) *
         static_cast<double>(vol_[static_cast<std::size_t>(k)]);
}

std::int64_t BoxOmega::segment_for(double s) {
  // Ensure the table covers the answer: (k+1)·vol(k) is strictly
  // increasing, so the last entry bounding s from above suffices.
  while (hi_of(static_cast<std::int64_t>(vol_.size()) - 1) <= s) {
    CMVRP_CHECK_MSG(vol_.size() < (std::size_t{1} << 40),
                    "omega search diverged");
    grow_table(static_cast<std::int64_t>(vol_.size()) * 2);
  }
  const auto last = static_cast<std::int64_t>(vol_.size()) - 1;
  // Serving streams move S by one job at a time, so the crossing segment
  // rarely strays from the previous query's — probe the hint and its
  // successor before paying the binary search.
  std::int64_t k = std::min(hint_, last);
  if (s < hi_of(k)) {
    if (k == 0 || hi_of(k - 1) <= s) return hint_ = k;
  } else if (k + 1 <= last && hi_of(k) <= s && s < hi_of(k + 1)) {
    return hint_ = k + 1;
  }
  // Binary search for the smallest k with s < (k+1)·vol(k).
  std::int64_t lo = 0, hi = last;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (s < hi_of(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  return hint_ = lo;
}

void BoxOmega::grow_table(std::int64_t min_radius) {
  if (static_cast<std::int64_t>(vol_.size()) > min_radius) return;
  vol_ = box_neighborhood_volumes(sides_, min_radius);
}

}  // namespace cmvrp
