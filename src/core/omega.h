// ω_T and ω* — the paper's central quantities (Eq. 1.1, Lemma 2.2.3).
//
// For a nonempty finite T ⊆ Z^ℓ with total demand S = Σ_{x∈T} d(x),
//   g(ω) = ω · |N_⌊ω⌋(T)|
// is piecewise linear and increasing with upward jumps at integers, so we
// define  ω_T = inf{ω ≥ 0 : g(ω) ≥ S}  (the unique root of g(ω) = S when
// the crossing is not at a jump). ω* = max over nonempty T of ω_T; by
// Lemma 2.2.3 it equals the radius fixed point of LP (2.1).
//
// Three independent computations of ω* are provided and cross-checked in
// tests:
//   * subset enumeration (exponential; tiny supports only),
//   * LP (2.1) via the simplex at a fixed radius + fixed-point search,
//   * max-flow feasibility oracle + fixed-point search (the workhorse).
//
// Complexity: omega_for_box is O(1) per candidate radius via the DP box
// counts; omega_for_set BFS-grows N_r(T), O(|N_r(T)|) per radius step;
// the flow fixed point runs O(log(ω/tol)) Dinic feasibility probes, each
// O(E·sqrt(V)) on the bipartite supplier→demand graph of radius r.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "grid/box.h"
#include "grid/demand_map.h"
#include "grid/point.h"

namespace cmvrp {

// ω_T for an explicit point set T (BFS-based |N_r(T)|).
double omega_for_set(const std::vector<Point>& t, const DemandMap& d);

// ω_T for a box T whose demand sum is `demand_sum` (exact DP counts; no
// dependence on the demand map beyond the sum).
double omega_for_box(const Box& t, double demand_sum);

// ω* by enumerating all nonempty subsets of the demand support.
// Requires support_size() <= max_support (work is 2^support).
double omega_star_enumerate(const DemandMap& d, std::size_t max_support = 20);

// Value of LP (2.1) at a fixed integer radius r, via the simplex on the
// explicit flow formulation. Exponential in nothing, but the LP has
// |N_r(support)| · |support| flow variables — keep instances small.
double lp_value_at_radius(const DemandMap& d, std::int64_t r);

// Value of LP (2.1) at fixed radius via the max-flow oracle (scales to much
// larger instances; tolerance on ω).
double flow_value_at_radius(const DemandMap& d, std::int64_t r,
                            double tol = 1e-6);

// ω* as the radius fixed point ω = ω(⌊ω⌋) of Lemma 2.2.3, where ω(r) is
// evaluated by `value_at_radius`. Exposed with the flow oracle bound in by
// default; tests also bind the LP and enumeration oracles.
double omega_star_fixed_point(
    const DemandMap& d,
    const std::function<double(const DemandMap&, std::int64_t)>&
        value_at_radius);

double omega_star_flow(const DemandMap& d);

}  // namespace cmvrp
