// Incremental ω_T for a fixed box T under point-delta demand updates.
//
// omega_for_box recomputes the neighborhood-volume DP from scratch on
// every call — fine for one-shot analysis, ruinous on a serving path that
// re-evaluates ω after every demand arrival. For a FIXED box the volume
// table vol(k) = |N_k(T)| never changes; only the demand sum S moves. So
// BoxOmega caches vol(0..K) (built in one O(ℓ·K) pass, doubled lazily as
// S grows) and answers each query by locating the segment that g(ω) =
// ω·vol(⌊ω⌋) crosses S on:
//
//   k* = min{k : S < (k+1)·vol(k)}          ((k+1)·vol(k) is strictly
//   ω  = k*            if S < k*·vol(k*)     increasing, so k* is binary-
//      = S / vol(k*)   otherwise             searchable)
//
// which is exactly the semantics of the marching loop in omega.cpp —
// tests cross-check randomized delta sequences against omega_for_box.
// Queries sit near the previous answer in a serving stream, so a
// last-answer hint is probed before falling back to binary search:
// amortized O(1) per update vs O(ℓ·K) per full rebuild.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/box.h"

namespace cmvrp {

class BoxOmega {
 public:
  explicit BoxOmega(const Box& box, double initial_sum = 0.0);

  // Point-delta update: demand arrived (or was consumed) inside the box.
  void add(double delta);
  void set_sum(double sum);
  double sum() const { return sum_; }

  // ω_T at the current demand sum.
  double omega();

  // ω_T at an arbitrary sum, without disturbing the tracked state.
  double omega_for_sum(double s);

 private:
  // Smallest k with s < (k+1)·vol(k); grows the table as needed.
  std::int64_t segment_for(double s);
  void grow_table(std::int64_t min_radius);
  double hi_of(std::int64_t k) const;  // (k+1)·vol(k)

  std::vector<std::int64_t> sides_;
  std::vector<std::int64_t> vol_;  // vol_[k] = |N_k(box)|
  double sum_ = 0.0;
  std::int64_t hint_ = 0;  // segment of the previous query
};

}  // namespace cmvrp
