// Algorithm 1 (§2.3): the linear-time 2(2·3^ℓ+ℓ)-approximation of Woff.
//
// Implemented verbatim from the paper's pseudocode, generalized from ℓ = 2
// to any supported ℓ: demands are aggregated over a dyadic hierarchy of
// w-cubes, doubling w until no w-cube holds more than w·(3w)^ℓ demand.
//
// Complexity: O(n^ℓ) — each doubling halves the cube count per axis, so
// the level sums form a geometric series (≤ 4/3 · n^ℓ cells touched for
// ℓ = 2; `cells_touched` asserts this in the benches). The estimate
// satisfies Woff ≤ estimate ≤ 2(2·3^ℓ+ℓ)·Woff (§2.3).
#pragma once

#include <cstdint>

#include "grid/dense_grid.h"
#include "grid/demand_map.h"

namespace cmvrp {

struct Algorithm1Result {
  double estimate = 0.0;      // the returned approximation of Woff
  std::int64_t final_w = 0;   // the dyadic cube side at exit (0 when a
                              // special case short-circuited the loop)
  const char* exit_rule = ""; // which return statement fired (for tests)
  std::int64_t cells_touched = 0;  // work counter: must be O(n^ℓ)
};

// `d` must be supported on [0, n)^ℓ with n a power of two. D and D̂ are
// the max and average demand of §2.3 (average over all n^ℓ cells).
Algorithm1Result algorithm1(const DemandMap& d, std::int64_t n);

}  // namespace cmvrp
