#include "core/cube_bound.h"

#include <algorithm>
#include <cmath>

#include "core/omega.h"
#include "grid/dense_grid.h"
#include "util/check.h"

namespace cmvrp {

CubeBound cube_bound(const DemandMap& d) {
  CubeBound out;
  if (d.empty()) return out;

  const int dim = d.dim();
  const DenseGrid grid = DenseGrid::from_demand(d);
  const PrefixSums ps(grid);
  const double total = d.total();
  std::int64_t max_side = 1;
  for (int i = 0; i < dim; ++i)
    max_side = std::max(max_side, grid.box().side(i));

  // Beyond the bounding box the window demand is the constant `total`,
  // and the per-segment candidate max(k-1, total/(3k)^ℓ) grows with k once
  // the second term is dominated — scan far enough to pass the crossover
  // (k-1)(3k)^ℓ ≈ total.
  std::int64_t k_hi = max_side + 2;
  {
    const double crossover =
        std::pow(total / std::pow(3.0, dim), 1.0 / (dim + 1)) + 2.0;
    k_hi = std::max<std::int64_t>(k_hi, static_cast<std::int64_t>(crossover) + 2);
  }

  double best = -1.0;
  std::int64_t best_side = 1;
  double best_m = 0.0;
  for (std::int64_t k = 1; k <= k_hi; ++k) {
    const double m = k >= max_side ? total : ps.max_cube_sum(k);
    if (m <= 0.0) continue;
    const double cells = std::pow(3.0 * static_cast<double>(k),
                                  static_cast<double>(dim));
    // inf{ω in (k-1, k] : ω·(3k)^ℓ >= m}; empty when m/(3k)^ℓ > k.
    const double root = m / cells;
    if (root > static_cast<double>(k)) continue;
    const double candidate = std::max(root, static_cast<double>(k - 1));
    if (best < 0.0 || candidate < best) {
      best = candidate;
      best_side = k;
      best_m = m;
    }
  }
  CMVRP_CHECK_MSG(best >= 0.0, "cube bound scan found no feasible segment");
  out.omega_c = best;
  out.cube_side = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(best - 1e-12)));
  // ⌈ω_c⌉ should match the segment the minimum came from when ω_c is
  // interior; when ω_c sits exactly on the segment's lower jump the side
  // from the scan is the meaningful partition size.
  out.cube_side = std::max(out.cube_side, std::int64_t{1});
  if (static_cast<double>(best_side - 1) <= best &&
      best <= static_cast<double>(best_side))
    out.cube_side = best_side;
  out.max_cube_demand = best_m;
  return out;
}

double max_omega_over_cubes(const DemandMap& d, std::int64_t max_cells) {
  if (d.empty()) return 0.0;
  const int dim = d.dim();
  const DenseGrid grid = DenseGrid::from_demand(d);
  const PrefixSums ps(grid);
  const Box bb = grid.box();

  std::int64_t max_side = 1;
  for (int i = 0; i < dim; ++i) max_side = std::max(max_side, bb.side(i));

  // Work estimate: number of cube placements across all sides.
  double placements = 0.0;
  for (std::int64_t s = 1; s <= max_side; ++s) {
    double c = 1.0;
    for (int i = 0; i < dim; ++i)
      c *= static_cast<double>(std::max<std::int64_t>(1, bb.side(i) - s + 1));
    placements += c;
  }
  CMVRP_CHECK_MSG(placements <= static_cast<double>(max_cells),
                  "max_omega_over_cubes: " << placements
                                           << " cube placements exceed budget");

  double best = 0.0;
  for (std::int64_t s = 1; s <= max_side; ++s) {
    // Enumerate offsets; cubes extending past the bounding box are
    // equivalent to their clipped versions plus zero demand, and the
    // unclipped cube has the larger neighborhood, so clipped-to-box cubes
    // dominate — offsets stay inside the box.
    std::vector<std::int64_t> lo(static_cast<std::size_t>(dim)),
        hi(static_cast<std::size_t>(dim));
    for (int i = 0; i < dim; ++i) {
      lo[static_cast<std::size_t>(i)] = bb.lo()[i];
      hi[static_cast<std::size_t>(i)] =
          std::max(bb.lo()[i], bb.hi()[i] - s + 1);
    }
    std::vector<std::int64_t> cur = lo;
    for (;;) {
      Point corner = Point::origin(dim);
      for (int i = 0; i < dim; ++i)
        corner[i] = cur[static_cast<std::size_t>(i)];
      const Box cube = Box::cube(corner, s);
      const double m = ps.box_sum(cube);
      if (m > 0.0) best = std::max(best, omega_for_box(cube, m));
      int axis = dim - 1;
      while (axis >= 0) {
        auto& c = cur[static_cast<std::size_t>(axis)];
        if (c < hi[static_cast<std::size_t>(axis)]) {
          ++c;
          break;
        }
        c = lo[static_cast<std::size_t>(axis)];
        --axis;
      }
      if (axis < 0) break;
    }
  }
  return best;
}

}  // namespace cmvrp
