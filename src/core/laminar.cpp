#include "core/laminar.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

#include "util/check.h"

namespace cmvrp {
namespace {

// Connected components (unit-edge adjacency) of `points`.
std::vector<std::vector<Point>> components_of(const PointSet& points) {
  std::vector<std::vector<Point>> out;
  PointSet visited;
  for (const auto& seed : points) {
    if (visited.count(seed)) continue;
    std::vector<Point> comp;
    std::deque<Point> queue{seed};
    visited.insert(seed);
    while (!queue.empty()) {
      const Point p = queue.front();
      queue.pop_front();
      comp.push_back(p);
      for (const auto& q : p.unit_neighbors()) {
        if (points.count(q) && visited.insert(q).second) queue.push_back(q);
      }
    }
    std::sort(comp.begin(), comp.end());
    out.push_back(std::move(comp));
  }
  return out;
}

}  // namespace

std::vector<WeightedSet> laminar_decomposition(const AlphaMap& alpha) {
  for (const auto& [p, v] : alpha) {
    (void)p;
    CMVRP_CHECK_MSG(v >= 0.0, "alpha must be non-negative");
  }
  // Distinct positive values, ascending; band k spans (v_{k-1}, v_k].
  std::set<double> values;
  for (const auto& [p, v] : alpha) {
    (void)p;
    if (v > 0.0) values.insert(v);
  }
  std::vector<WeightedSet> out;
  double below = 0.0;
  for (double level : values) {
    // Super-level set {i : α_i >= level}.
    PointSet super;
    for (const auto& [p, v] : alpha)
      if (v >= level - 1e-15) super.insert(p);
    const double band = level - below;
    for (auto& comp : components_of(super))
      out.push_back(WeightedSet{std::move(comp), band});
    below = level;
  }
  return out;
}

double weight_of_supersets(const std::vector<WeightedSet>& h,
                           const std::vector<Point>& s) {
  CMVRP_CHECK(!s.empty());
  double total = 0.0;
  for (const auto& ws : h) {
    // `members` is sorted: subset test via binary search per element.
    bool contains_all = true;
    for (const auto& p : s) {
      if (!std::binary_search(ws.members.begin(), ws.members.end(), p)) {
        contains_all = false;
        break;
      }
    }
    if (contains_all) total += ws.weight;
  }
  return total;
}

AlphaMap reconstruct_alpha(const std::vector<WeightedSet>& h) {
  AlphaMap alpha;
  for (const auto& ws : h)
    for (const auto& p : ws.members) alpha[p] += ws.weight;
  return alpha;
}

bool is_laminar(const std::vector<WeightedSet>& h) {
  for (std::size_t a = 0; a < h.size(); ++a) {
    for (std::size_t b = a + 1; b < h.size(); ++b) {
      const auto& x = h[a].members;
      const auto& y = h[b].members;
      std::vector<Point> inter;
      std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                            std::back_inserter(inter));
      if (inter.empty()) continue;
      if (inter.size() != x.size() && inter.size() != y.size()) return false;
    }
  }
  return true;
}

double lp22_objective(const AlphaMap& alpha, const DemandMap& d,
                      std::int64_t r) {
  CMVRP_CHECK(r >= 0);
  double total = 0.0;
  for (const auto& [j, dj] : d) {
    double ball_min = std::numeric_limits<double>::infinity();
    for (const auto& i : l1_ball_points(j, r)) {
      auto it = alpha.find(i);
      ball_min = std::min(ball_min, it == alpha.end() ? 0.0 : it->second);
      if (ball_min == 0.0) break;
    }
    total += dj * ball_min;
  }
  return total;
}

double lp23_objective(const std::vector<WeightedSet>& h, const DemandMap& d,
                      std::int64_t r) {
  CMVRP_CHECK(r >= 0);
  double total = 0.0;
  for (const auto& [j, dj] : d) {
    const auto ball = l1_ball_points(j, r);
    total += dj * weight_of_supersets(h, ball);
  }
  return total;
}

}  // namespace cmvrp
