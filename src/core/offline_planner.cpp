#include "core/offline_planner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "grid/corner_hash.h"
#include "util/check.h"
#include "util/flat_map.h"

namespace cmvrp {

double OfflinePlan::max_energy() const {
  double m = 0.0;
  for (const auto& a : assignments) m = std::max(m, a.energy());
  return m;
}

double OfflinePlan::total_energy() const {
  double s = 0.0;
  for (const auto& a : assignments) s += a.energy();
  return s;
}

namespace {

// Maps a point to the corner of its partition cube (cubes of side s,
// anchored at `anchor`).
Point cube_corner(const Point& p, const Point& anchor, std::int64_t s) {
  Point c = p;
  for (int i = 0; i < p.dim(); ++i) {
    std::int64_t off = p[i] - anchor[i];
    // Floor division for possibly negative offsets.
    std::int64_t q = off >= 0 ? off / s : -((-off + s - 1) / s);
    c[i] = anchor[i] + q * s;
  }
  return c;
}

}  // namespace

OfflinePlan plan_offline(const DemandMap& d) {
  CMVRP_CHECK_MSG(!d.empty(), "plan_offline with empty demand");
  const int dim = d.dim();

  OfflinePlan plan;
  plan.bound = cube_bound(d);
  const double omega_c = plan.bound.omega_c;
  const std::int64_t s = plan.bound.cube_side;
  const double three_l = std::pow(3.0, static_cast<double>(dim));
  plan.in_place_budget = three_l * omega_c;
  plan.capacity_bound =
      (2.0 * three_l + static_cast<double>(dim)) * omega_c;

  const Point anchor = d.bounding_box().lo();
  const double b = plan.in_place_budget;
  CMVRP_CHECK_MSG(b > 0.0, "non-empty demand must give positive budget");

  // Group demand points by cube — hashed on the shared corner-key hasher
  // instead of the old vector<int64_t>-keyed rb-tree (one probe per point
  // rather than a log-depth key-vector comparison walk). Cubes are then
  // processed in ascending corner order, matching the former std::map
  // iteration exactly.
  FlatMap<Point, std::vector<Point>, CornerHash> cubes;
  for (const auto& p : d.support())
    cubes[cube_corner(p, anchor, s)].push_back(p);
  std::vector<std::pair<Point, std::vector<Point>*>> cube_order;
  cube_order.reserve(cubes.size());
  for (auto& item : cubes) cube_order.emplace_back(item.key, &item.value);
  std::sort(cube_order.begin(), cube_order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (auto& [corner, points_ptr] : cube_order) {
    std::vector<Point>& points = *points_ptr;
    const Box cube = Box::cube(corner, s);

    std::sort(points.begin(), points.end());

    // Stage 1: every demand vertex is served in place up to B by its own
    // vehicle; leftovers become chunks of size <= B.
    struct Chunk {
      Point at;
      double amount;
    };
    std::vector<Chunk> chunks;
    std::unordered_map<Point, VehicleAssignment, PointHash> by_home;
    for (const auto& x : points) {
      const double dx = d.at(x);
      const double in_place = std::min(dx, b);
      VehicleAssignment a;
      a.home = x;
      a.serve_at_home = in_place;
      by_home.emplace(x, a);
      double rem = dx - in_place;
      while (rem > 1e-12) {
        const double piece = std::min(rem, b);
        chunks.push_back(Chunk{x, piece});
        rem -= piece;
      }
    }

    // Stage 2: assign each chunk a distinct vehicle of this cube. By
    // Cor. 2.2.7, Σ⌈(d(x)-B)/B⌉ <= cube demand / B <= s^ℓ, so the cube's
    // own vehicles always suffice. Chunks are matched to the nearest free
    // vehicle (greedy, deterministic) to keep realized travel small.
    if (!chunks.empty()) {
      std::vector<Point> pool = cube.points();
      std::vector<bool> used(pool.size(), false);
      CMVRP_CHECK_MSG(chunks.size() <= pool.size(),
                      "chunk count " << chunks.size() << " exceeds vehicles "
                                     << pool.size() << " in cube "
                                     << cube.to_string());
      std::sort(chunks.begin(), chunks.end(),
                [](const Chunk& a, const Chunk& c) {
                  if (a.amount != c.amount) return a.amount > c.amount;
                  return a.at < c.at;
                });
      for (const auto& chunk : chunks) {
        std::size_t best = pool.size();
        std::int64_t best_dist = 0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (used[i]) continue;
          const std::int64_t dist = l1_distance(pool[i], chunk.at);
          if (best == pool.size() || dist < best_dist) {
            best = i;
            best_dist = dist;
          }
        }
        CMVRP_CHECK(best < pool.size());
        used[best] = true;
        auto it = by_home.find(pool[best]);
        if (it == by_home.end()) {
          VehicleAssignment a;
          a.home = pool[best];
          it = by_home.emplace(pool[best], a).first;
        }
        VehicleAssignment& a = it->second;
        CMVRP_CHECK_MSG(!a.remote.has_value(),
                        "vehicle assigned two remote chunks");
        a.remote = chunk.at;
        a.serve_remote = chunk.amount;
        a.travel = best_dist;
      }
    }

    for (auto& [home, a] : by_home) {
      (void)home;
      if (a.energy() > 0.0) plan.assignments.push_back(a);
    }
  }

  std::sort(plan.assignments.begin(), plan.assignments.end(),
            [](const VehicleAssignment& a, const VehicleAssignment& c) {
              return a.home < c.home;
            });
  return plan;
}

PlanCheck verify_plan(const OfflinePlan& plan, const DemandMap& d,
                      double capacity) {
  PlanCheck check;
  if (capacity < 0.0) capacity = plan.capacity_bound;
  const double tol = 1e-6;

  DemandMap served(d.dim());
  std::unordered_map<Point, int, PointHash> seen_home;
  for (const auto& a : plan.assignments) {
    if (a.serve_at_home < -tol || a.serve_remote < -tol) {
      check.issue = "negative service amount";
      return check;
    }
    if (++seen_home[a.home] > 1) {
      check.issue = "vehicle at " + a.home.to_string() + " planned twice";
      return check;
    }
    if (a.remote.has_value()) {
      if (a.travel != l1_distance(a.home, *a.remote)) {
        check.issue = "travel distance inconsistent for vehicle at " +
                      a.home.to_string();
        return check;
      }
    } else if (a.travel != 0 || a.serve_remote != 0.0) {
      check.issue = "remote work without a remote vertex";
      return check;
    }
    if (a.serve_at_home > 0.0) served.add(a.home, a.serve_at_home);
    if (a.remote.has_value() && a.serve_remote > 0.0)
      served.add(*a.remote, a.serve_remote);
    check.max_energy = std::max(check.max_energy, a.energy());
    if (a.energy() > capacity + tol) {
      check.issue = "vehicle at " + a.home.to_string() +
                    " exceeds capacity: " + std::to_string(a.energy());
      return check;
    }
  }
  for (const auto& x : d.support()) {
    if (served.at(x) + tol < d.at(x)) {
      check.issue = "demand at " + x.to_string() + " undercovered: " +
                    std::to_string(served.at(x)) + " of " +
                    std::to_string(d.at(x));
      return check;
    }
  }
  check.ok = true;
  return check;
}

}  // namespace cmvrp
