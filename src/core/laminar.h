// Lemma 2.2.1's dual construction (Figures 2.4 and 2.5).
//
// The lemma's proof turns a feasible dual solution (α_i)_{i∈Z^ℓ} of
// LP (2.4) into a weighting h of *sets*: for a simply connected T,
//   h(T) = max{0, min_{i∈T} α_i − max_{i∈N₁(T)\T} α_i},
// built by repeatedly peeling the maximal plateaus of α (the paper's
// Figure 2.5 walk-through). Equivalently — and this is how we compute it —
// h charges each connected component C of every super-level set
// {i : α_i ≥ t} with the height of its value band. The construction
// satisfies, and our tests verify:
//   (1) α_i = Σ_{T ∋ i} h(T)                       (pointwise recovery)
//   (2) Σ_T h(T)·|T| = Σ_i α_i                     (mass preservation)
//   (3) min_{i∈N_r(j)} α_i = Σ_{T ⊇ N_r(j)} h(T)   (the lemma's key step)
//   (4) the support of h is laminar (nested or disjoint).
//
// Complexity: laminar_decomposition is O(distinct values × support) with
// one BFS per super-level band; the query helpers are O(|h| × |S|).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/demand_map.h"
#include "grid/neighborhood.h"
#include "grid/point.h"

namespace cmvrp {

// A finitely-supported α : Z^ℓ → R≥0 (zero elsewhere).
using AlphaMap = std::unordered_map<Point, double, PointHash>;

struct WeightedSet {
  std::vector<Point> members;  // sorted, unique
  double weight = 0.0;         // h(T) > 0
};

// The full decomposition: every connected component of every super-level
// band, with its band height. O(values × support) with BFS components.
std::vector<WeightedSet> laminar_decomposition(const AlphaMap& alpha);

// Σ_{T ⊇ S} h(T) for a query set S — the right side of property (3).
double weight_of_supersets(const std::vector<WeightedSet>& h,
                           const std::vector<Point>& s);

// Reconstructs α_i = Σ_{T ∋ i} h(T) (property (1)); used by tests.
AlphaMap reconstruct_alpha(const std::vector<WeightedSet>& h);

// True when every pair of sets is nested or disjoint (property (4)).
bool is_laminar(const std::vector<WeightedSet>& h);

// Objective of LP (2.2): Σ_j d(j) · min_{i: ‖i−j‖ ≤ r} α_i. The minimum
// over the ball treats unset α entries as 0.
double lp22_objective(const AlphaMap& alpha, const DemandMap& d,
                      std::int64_t r);

// Objective of LP (2.3): Σ_j d(j) · Σ_{T ⊇ N_r(j)} h(T). Lemma 2.2.1 says
// this equals lp22_objective on the decomposition of the same α.
double lp23_objective(const std::vector<WeightedSet>& h, const DemandMap& d,
                      std::int64_t r);

}  // namespace cmvrp
