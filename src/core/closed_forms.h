// Closed forms for the three worked examples of §2.1 (Figure 2.1).
//
//   W₁ : W·(2W + a)² = d·a²   — demand d on every point of an a×a square
//   W₂ : W·(2W + 1)  = d      — demand d on every point of a line (ℓ = 2)
//   W₃ : W·(2W + 1)² = d      — demand d at a single point (ℓ = 2)
//
// Each is the unique positive root of an increasing polynomial; we expose
// the roots plus the paper's accompanying sufficiency factors (2W₂ and 3W₃
// strategies of Figures 2.2 and 2.3).
//
// Complexity: bracketed bisection to machine precision — O(log(hi/ε))
// evaluations of the polynomial, effectively constant time.
#pragma once

namespace cmvrp {

// Unique positive root of W(2W + a)^2 = d·a^2 (Example 1, square side a).
double example_square_w1(double a, double d);

// Unique positive root of W(2W + 1) = d (Example 2, line).
double example_line_w2(double d);

// Unique positive root of W(2W + 1)^2 = d (Example 3, point).
double example_point_w3(double d);

// Generic: the unique positive root of a strictly increasing continuous
// f with f(0) <= target, via bracketed bisection.
double solve_increasing(double (*f)(double, const void*), const void* ctx,
                        double target, double hi_hint = 1.0);

}  // namespace cmvrp
