#include "core/closed_forms.h"

#include <cmath>

#include "util/check.h"

namespace cmvrp {

double solve_increasing(double (*f)(double, const void*), const void* ctx,
                        double target, double hi_hint) {
  CMVRP_CHECK(target >= 0.0);
  if (target == 0.0) return 0.0;
  double lo = 0.0;
  double hi = hi_hint > 0.0 ? hi_hint : 1.0;
  while (f(hi, ctx) < target) {
    hi *= 2.0;
    CMVRP_CHECK_MSG(hi < 1e300, "solve_increasing: no bracket found");
  }
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-12 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid, ctx) < target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double example_square_w1(double a, double d) {
  CMVRP_CHECK(a > 0.0 && d >= 0.0);
  struct Ctx {
    double a;
  } ctx{a};
  auto f = [](double w, const void* c) {
    const double a_ = static_cast<const Ctx*>(c)->a;
    return w * (2.0 * w + a_) * (2.0 * w + a_);
  };
  return solve_increasing(f, &ctx, d * a * a, std::max(1.0, d));
}

double example_line_w2(double d) {
  CMVRP_CHECK(d >= 0.0);
  // W(2W+1) = d  =>  W = (-1 + sqrt(1 + 8d)) / 4.
  return (-1.0 + std::sqrt(1.0 + 8.0 * d)) / 4.0;
}

double example_point_w3(double d) {
  CMVRP_CHECK(d >= 0.0);
  auto f = [](double w, const void*) {
    return w * (2.0 * w + 1.0) * (2.0 * w + 1.0);
  };
  return solve_increasing(f, nullptr, d, std::max(1.0, std::cbrt(d)));
}

}  // namespace cmvrp
