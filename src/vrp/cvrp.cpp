#include "vrp/cvrp.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace cmvrp {
namespace {

std::int64_t route_length(const CvrpInstance& inst,
                          const std::vector<std::size_t>& order) {
  if (order.empty()) return 0;
  std::int64_t len = l1_distance(inst.depot, inst.customers[order.front()]);
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    len += l1_distance(inst.customers[order[i]],
                       inst.customers[order[i + 1]]);
  len += l1_distance(inst.customers[order.back()], inst.depot);
  return len;
}

}  // namespace

CvrpSolution clarke_wright(const CvrpInstance& inst) {
  const std::size_t n = inst.customers.size();
  CMVRP_CHECK(inst.demands.size() == n);
  for (double d : inst.demands)
    CMVRP_CHECK_MSG(d >= 0.0 && d <= inst.vehicle_capacity,
                    "customer demand exceeds vehicle capacity");

  // Start with one route per customer.
  std::vector<std::vector<std::size_t>> routes(n);
  std::vector<double> loads(n, 0.0);
  std::vector<std::size_t> route_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    routes[i] = {i};
    loads[i] = inst.demands[i];
    route_of[i] = i;
  }

  // Savings s(i,j) = d(depot,i) + d(depot,j) - d(i,j), descending.
  struct Saving {
    std::int64_t value;
    std::size_t i, j;
  };
  std::vector<Saving> savings;
  savings.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::int64_t s = l1_distance(inst.depot, inst.customers[i]) +
                             l1_distance(inst.depot, inst.customers[j]) -
                             l1_distance(inst.customers[i], inst.customers[j]);
      savings.push_back({s, i, j});
    }
  }
  std::sort(savings.begin(), savings.end(), [](const Saving& a, const Saving& b) {
    if (a.value != b.value) return a.value > b.value;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  // Merge route endpoints while capacity allows.
  for (const auto& s : savings) {
    if (s.value <= 0) break;
    const std::size_t ri = route_of[s.i], rj = route_of[s.j];
    if (ri == rj) continue;
    if (loads[ri] + loads[rj] > inst.vehicle_capacity) continue;
    auto& a = routes[ri];
    auto& b = routes[rj];
    if (a.empty() || b.empty()) continue;
    // i must be an endpoint of its route and j of its route.
    const bool i_front = a.front() == s.i, i_back = a.back() == s.i;
    const bool j_front = b.front() == s.j, j_back = b.back() == s.j;
    if (!(i_front || i_back) || !(j_front || j_back)) continue;
    // Orient a so that i is at the back, b so that j is at the front.
    if (i_front && !i_back) std::reverse(a.begin(), a.end());
    if (j_back && !j_front) std::reverse(b.begin(), b.end());
    if (a.back() != s.i || b.front() != s.j) continue;
    // Merge b into a.
    for (std::size_t c : b) {
      a.push_back(c);
      route_of[c] = ri;
    }
    loads[ri] += loads[rj];
    b.clear();
    loads[rj] = 0.0;
  }

  CvrpSolution out;
  for (std::size_t r = 0; r < n; ++r) {
    if (routes[r].empty()) continue;
    CvrpRoute route;
    route.customers = routes[r];
    route.load = loads[r];
    route.length = route_length(inst, routes[r]);
    out.total_length += route.length;
    out.routes.push_back(std::move(route));
  }
  return out;
}

bool cvrp_solution_valid(const CvrpInstance& inst,
                         const CvrpSolution& sol) {
  std::vector<int> visits(inst.customers.size(), 0);
  for (const auto& r : sol.routes) {
    double load = 0.0;
    for (std::size_t c : r.customers) {
      if (c >= inst.customers.size()) return false;
      ++visits[c];
      load += inst.demands[c];
    }
    if (load > inst.vehicle_capacity + 1e-9) return false;
    if (std::abs(load - r.load) > 1e-9) return false;
    if (route_length(inst, r.customers) != r.length) return false;
  }
  return std::all_of(visits.begin(), visits.end(),
                     [](int v) { return v == 1; });
}

}  // namespace cmvrp
