// Classic TSP heuristics over the L1 metric — baselines from the VRP
// lineage the paper reviews in §1.1 (Dantzig–Ramser, Clarke–Wright era).
//
// Used by the CVRP baseline below and by benches as a context point:
// classic tour-length objectives versus the paper's per-vehicle energy
// objective.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/point.h"

namespace cmvrp {

struct Tour {
  std::vector<std::size_t> order;  // permutation of point indices
  std::int64_t length = 0;         // closed-tour L1 length
};

std::int64_t tour_length(const std::vector<Point>& pts,
                         const std::vector<std::size_t>& order);

// Nearest-neighbour construction from `start`.
Tour tsp_nearest_neighbor(const std::vector<Point>& pts,
                          std::size_t start = 0);

// 2-opt local search until no improving exchange remains (first-improve).
Tour tsp_two_opt(const std::vector<Point>& pts, Tour initial);

// Held–Karp exact DP; n <= 15.
Tour tsp_held_karp(const std::vector<Point>& pts);

}  // namespace cmvrp
