// Clarke–Wright savings for the central-depot Capacitated VRP — the
// classic heuristic the paper's §1.1 survey cites [4], included as a
// reference implementation and baseline substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/point.h"

namespace cmvrp {

struct CvrpInstance {
  Point depot;
  std::vector<Point> customers;
  std::vector<double> demands;  // parallel to customers
  double vehicle_capacity = 0.0;
};

struct CvrpRoute {
  std::vector<std::size_t> customers;  // visit order (customer indices)
  double load = 0.0;
  std::int64_t length = 0;  // depot -> … -> depot, L1
};

struct CvrpSolution {
  std::vector<CvrpRoute> routes;
  std::int64_t total_length = 0;
};

// Clarke–Wright parallel savings; every customer demand must fit a
// vehicle. Routes never exceed capacity.
CvrpSolution clarke_wright(const CvrpInstance& instance);

// Checks coverage and capacity; used by tests and benches.
bool cvrp_solution_valid(const CvrpInstance& instance,
                         const CvrpSolution& solution);

}  // namespace cmvrp
