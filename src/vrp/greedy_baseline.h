// Centralized greedy baseline for the CMVRP online problem.
//
// The paper has no empirical comparator; this baseline (ours, not the
// paper's) gives the benches a context point: an omniscient dispatcher
// that sends, for every arriving job, the nearest vehicle that still has
// enough energy to walk there and serve. It ignores the paper's pairing
// discipline and travel-reserve accounting, so it can strand energy far
// from future demand — the benches quantify how much capacity that costs
// relative to the Chapter 3 strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/box.h"
#include "grid/point.h"
#include "workload/generators.h"

namespace cmvrp {

struct GreedyResult {
  bool all_served = false;
  std::uint64_t jobs_served = 0;
  std::uint64_t jobs_failed = 0;
  double max_energy_spent = 0.0;
  std::uint64_t total_travel = 0;
};

// Vehicles occupy every vertex of `region` with capacity `w`.
GreedyResult run_greedy_baseline(const Box& region, double w,
                                 const std::vector<Job>& jobs);

// Minimal sufficient capacity for the greedy dispatcher (bisection).
double greedy_min_capacity(const Box& region, const std::vector<Job>& jobs,
                           double tol = 0.05);

}  // namespace cmvrp
