#include "vrp/tsp.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cmvrp {

std::int64_t tour_length(const std::vector<Point>& pts,
                         const std::vector<std::size_t>& order) {
  CMVRP_CHECK(order.size() == pts.size());
  if (pts.size() < 2) return 0;
  std::int64_t len = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t j = (i + 1) % order.size();
    len += l1_distance(pts[order[i]], pts[order[j]]);
  }
  return len;
}

Tour tsp_nearest_neighbor(const std::vector<Point>& pts, std::size_t start) {
  CMVRP_CHECK(!pts.empty());
  CMVRP_CHECK(start < pts.size());
  Tour tour;
  std::vector<bool> used(pts.size(), false);
  tour.order.push_back(start);
  used[start] = true;
  while (tour.order.size() < pts.size()) {
    const Point& cur = pts[tour.order.back()];
    std::size_t best = SIZE_MAX;
    std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (used[i]) continue;
      const std::int64_t dist = l1_distance(cur, pts[i]);
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    tour.order.push_back(best);
    used[best] = true;
  }
  tour.length = tour_length(pts, tour.order);
  return tour;
}

Tour tsp_two_opt(const std::vector<Point>& pts, Tour tour) {
  CMVRP_CHECK(tour.order.size() == pts.size());
  const std::size_t n = pts.size();
  if (n < 4) {
    tour.length = tour_length(pts, tour.order);
    return tour;
  }
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i + 1 < n && !improved; ++i) {
      for (std::size_t j = i + 2; j < n && !improved; ++j) {
        if (i == 0 && j == n - 1) continue;  // same edge
        const auto a = tour.order[i];
        const auto b = tour.order[i + 1];
        const auto c = tour.order[j];
        const auto d = tour.order[(j + 1) % n];
        const std::int64_t before =
            l1_distance(pts[a], pts[b]) + l1_distance(pts[c], pts[d]);
        const std::int64_t after =
            l1_distance(pts[a], pts[c]) + l1_distance(pts[b], pts[d]);
        if (after < before) {
          std::reverse(tour.order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       tour.order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
  }
  tour.length = tour_length(pts, tour.order);
  return tour;
}

Tour tsp_held_karp(const std::vector<Point>& pts) {
  const std::size_t n = pts.size();
  CMVRP_CHECK_MSG(n >= 1 && n <= 15, "Held-Karp limited to n <= 15");
  Tour tour;
  if (n == 1) {
    tour.order = {0};
    return tour;
  }
  const std::int64_t inf = std::numeric_limits<std::int64_t>::max() / 4;
  const std::size_t full = std::size_t{1} << (n - 1);  // subsets of 1..n-1
  // dp[mask][v]: best path 0 -> … -> v visiting exactly mask (v in mask).
  std::vector<std::vector<std::int64_t>> dp(full,
                                            std::vector<std::int64_t>(n, inf));
  std::vector<std::vector<std::size_t>> parent(
      full, std::vector<std::size_t>(n, SIZE_MAX));
  for (std::size_t v = 1; v < n; ++v)
    dp[std::size_t{1} << (v - 1)][v] = l1_distance(pts[0], pts[v]);
  for (std::size_t mask = 1; mask < full; ++mask) {
    for (std::size_t v = 1; v < n; ++v) {
      if (!(mask & (std::size_t{1} << (v - 1)))) continue;
      const std::int64_t base = dp[mask][v];
      if (base >= inf) continue;
      for (std::size_t w = 1; w < n; ++w) {
        if (mask & (std::size_t{1} << (w - 1))) continue;
        const std::size_t next = mask | (std::size_t{1} << (w - 1));
        const std::int64_t cand = base + l1_distance(pts[v], pts[w]);
        if (cand < dp[next][w]) {
          dp[next][w] = cand;
          parent[next][w] = v;
        }
      }
    }
  }
  std::int64_t best = inf;
  std::size_t best_v = SIZE_MAX;
  for (std::size_t v = 1; v < n; ++v) {
    const std::int64_t cand = dp[full - 1][v] + l1_distance(pts[v], pts[0]);
    if (cand < best) {
      best = cand;
      best_v = v;
    }
  }
  // Reconstruct.
  std::vector<std::size_t> rev;
  std::size_t mask = full - 1, v = best_v;
  while (v != SIZE_MAX) {
    rev.push_back(v);
    const std::size_t pv = parent[mask][v];
    mask &= ~(std::size_t{1} << (v - 1));
    v = pv;
  }
  tour.order.push_back(0);
  for (auto it = rev.rbegin(); it != rev.rend(); ++it)
    tour.order.push_back(*it);
  tour.length = best;
  return tour;
}

}  // namespace cmvrp
