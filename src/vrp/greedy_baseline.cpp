#include "vrp/greedy_baseline.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cmvrp {

GreedyResult run_greedy_baseline(const Box& region, double w,
                                 const std::vector<Job>& jobs) {
  CMVRP_CHECK(w >= 0.0);
  struct V {
    Point pos;
    double spent = 0.0;
  };
  std::vector<V> vehicles;
  vehicles.reserve(static_cast<std::size_t>(region.volume()));
  region.for_each_point([&](const Point& p) { vehicles.push_back({p, 0.0}); });

  GreedyResult out;
  for (const auto& job : jobs) {
    std::size_t best = SIZE_MAX;
    std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < vehicles.size(); ++i) {
      const std::int64_t dist = l1_distance(vehicles[i].pos, job.position);
      const double need = static_cast<double>(dist) + 1.0;
      if (w - vehicles[i].spent + 1e-12 < need) continue;
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    if (best == SIZE_MAX) {
      ++out.jobs_failed;
      continue;
    }
    V& v = vehicles[best];
    v.spent += static_cast<double>(best_dist) + 1.0;
    v.pos = job.position;
    out.total_travel += static_cast<std::uint64_t>(best_dist);
    ++out.jobs_served;
  }
  for (const auto& v : vehicles)
    out.max_energy_spent = std::max(out.max_energy_spent, v.spent);
  out.all_served = out.jobs_failed == 0;
  return out;
}

double greedy_min_capacity(const Box& region, const std::vector<Job>& jobs,
                           double tol) {
  CMVRP_CHECK(tol > 0.0);
  CMVRP_CHECK(!jobs.empty());
  double lo = 0.0, hi = 2.0;
  while (!run_greedy_baseline(region, hi, jobs).all_served) {
    hi *= 2.0;
    CMVRP_CHECK_MSG(hi < 1e12, "greedy baseline never succeeded");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (run_greedy_baseline(region, mid, jobs).all_served)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace cmvrp
