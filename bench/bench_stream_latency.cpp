// E18 — latency-aware serving: tail percentiles (p50/p90/p99/max) of the
// per-job lifecycle timestamps, bit-identical across threads 1/2/8 and
// batches 32/256, plus the three admission policies under saturating
// streams. Scenario and metrics live in the "stream_latency" harness
// suite (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("stream_latency", argc, argv);
}
