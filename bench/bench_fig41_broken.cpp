// E7 — Figure 4.1 / §4.2: the broken-vehicle lower bound is not tight.
// Sweep and metrics live in the "broken" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("broken", argc, argv);
}
