// E7 — Figure 4.1 / §4.2: the broken-vehicle lower bound is not tight.
//
// Paper claims:
//   * LP (4.1) (Theorem 4.1.1) gives Woff-b ≥ 2r₁ on the Fig 4.1 instance;
//   * actually serving the alternating stream forces the lone healthy
//     insider k to shuttle: travel r₁ + (2r₁−1)·2r₁, so the true
//     requirement is Θ(r₁²) — the bound is loose by a factor Θ(r₁).
#include <iostream>

#include "broken/scenario.h"
#include "util/table.h"

int main() {
  using namespace cmvrp;
  std::cout << "E7: Fig 4.1 — weighted LP bound vs true requirement.\n";

  Table t({"r1", "LP bound (2*r1)", "paper travel formula",
           "true requirement", "ratio true/LP", "ratio/r1"});
  for (std::int64_t r1 : {2, 4, 8, 16, 32, 64}) {
    const auto s = make_fig41(r1, /*r2=*/4 * r1 + 2);
    const auto m = measure_fig41(s);
    t.row()
        .cell(r1)
        .cell(m.lp_bound)
        .cell(m.paper_travel, 0)
        .cell(m.true_requirement, 0)
        .cell(m.ratio, 2)
        .cell(m.ratio / static_cast<double>(r1), 3);
  }
  t.print(std::cout);
  std::cout << "\nShape check: ratio grows linearly in r1 (last column "
               "converges to ~2) — with breakdowns, arrival order matters "
               "and the LP bound is weak, exactly as §4.2 concludes.\n";
  return 0;
}
