// E1 — Figure 2.1(a), §2.1.1: demand d at every point of an a×a square.
// Sweep and metrics live in the "square" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("square", argc, argv);
}
