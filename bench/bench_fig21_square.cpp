// E1 — Figure 2.1(a), §2.1.1: demand d at every point of an a×a square.
//
// Paper claims:
//   * the necessary capacity obeys W·(2W+a)² ≥ d·a² (W₁ = the equality),
//   * as a → ∞, W₁ → d (the interior dominates and every vehicle serves
//     its own vertex's demand).
// We print W₁ next to the exact Eq.-(1.1) ω of the square and the realized
// plan energy: W₁ ≤ ω_square (W₁ uses the larger L∞ square count, hence is
// the weaker bound) and both stay within the Lemma 2.2.5 constant.
#include <iostream>

#include "core/closed_forms.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;
  std::cout << "E1: square demand (Fig 2.1a). d = 100 per point.\n";

  const double d = 100.0;
  Table t({"a", "W1 (paper)", "omega_square (Eq 1.1)", "plan max energy",
           "W1/d", "plan/omega"});
  for (std::int64_t a : {1, 2, 4, 8, 16, 32, 64}) {
    const double w1 = example_square_w1(static_cast<double>(a), d);
    const Box square(Point{0, 0}, Point{a - 1, a - 1});
    const double omega =
        omega_for_box(square, d * static_cast<double>(a) * static_cast<double>(a));
    double plan_energy = -1.0;
    if (a <= 32) {  // plan construction is cheap, verification is O(support)
      const DemandMap demand = square_demand(a, d, Point{0, 0});
      const OfflinePlan plan = plan_offline(demand);
      const PlanCheck check = verify_plan(plan, demand);
      if (!check.ok) {
        std::cerr << "plan verification failed: " << check.issue << "\n";
        return 1;
      }
      plan_energy = check.max_energy;
    }
    auto& row = t.row().cell(a).cell(w1).cell(omega);
    if (plan_energy >= 0.0)
      row.cell(plan_energy).cell(w1 / d).cell(plan_energy / omega);
    else
      row.cell("-").cell(w1 / d).cell("-");
  }
  t.print(std::cout);
  std::cout << "\nShape check: W1/d climbs toward 1 as a grows (paper: "
               "\"when a approaches infinity, W approaches d\");\n"
               "plan/omega stays below the 2*3^l+l = 20 constant.\n";
  return 0;
}
