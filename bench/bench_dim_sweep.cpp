// E13 — the offline sandwich and the online strategy at l = 2, 3, 4.
// Scenario list and metrics live in the "dim_sweep" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("dim_sweep", argc, argv);
}
