// E4 — Theorem 1.4.1 and Corollaries 2.2.4–2.2.7: the offline sandwich
//   ω_c ≤ ω* = max_T ω_T ≤ Woff ≤ plan energy ≤ (2·3^ℓ + ℓ)·ω_c.
//
// For each workload we compute: the cube bound ω_c (Cor. 2.2.7), the
// exact LP value ω* via the max-flow fixed point (Lem. 2.2.3), the exact
// cube-restricted max ω over all cubes (Cor. 2.2.6), the realized energy
// of the constructive plan, and the theoretical upper bound. The paper's
// claim is the *order*: every ratio to ω_c must stay below the constant.
#include <iostream>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/cube_bound.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;
  std::cout << "E4: Theorem 1.4.1 offline bounds across workloads (l = 2, "
               "upper factor 2*3^2+2 = 20).\n";

  struct Case {
    std::string name;
    DemandMap demand;
  };
  std::vector<Case> cases;
  {
    Rng rng(101);
    cases.push_back({"uniform 60 on 12x12",
                     uniform_demand(Box(Point{0, 0}, Point{11, 11}), 60, rng)});
  }
  {
    Rng rng(102);
    cases.push_back(
        {"clustered 80 (3 hotspots)",
         clustered_demand(Box(Point{0, 0}, Point{15, 15}), 3, 80, 1.5, rng)});
  }
  cases.push_back({"line 24 x d=40", line_demand(24, 40.0, Point{0, 0})});
  cases.push_back({"point d=300", point_demand(300.0, Point{5, 5})});
  cases.push_back({"square 6x6 d=25", square_demand(6, 25.0, Point{0, 0})});
  {
    Rng rng(103);
    cases.push_back(
        {"ridge peak=12", ridge_demand(Box(Point{0, 0}, Point{11, 11}), 12.0, rng)});
  }

  Table t({"workload", "omega_c", "omega* (flow)", "max cube omega",
           "plan energy", "upper (20*omega_c)", "plan/omega*", "upper/plan"});
  for (const auto& c : cases) {
    const CubeBound cb = cube_bound(c.demand);
    const double omega_star = omega_star_flow(c.demand);
    const double cube_max = max_omega_over_cubes(c.demand);
    const OfflinePlan plan = plan_offline(c.demand);
    const PlanCheck check = verify_plan(plan, c.demand);
    if (!check.ok) {
      std::cerr << c.name << ": plan failed: " << check.issue << "\n";
      return 1;
    }
    // Ordering checks from the corollaries.
    bool ordered = cb.omega_c <= omega_star + 1e-6 &&
                   cube_max <= omega_star + 1e-6 &&
                   check.max_energy <= plan.capacity_bound + 1e-6;
    if (!ordered) {
      std::cerr << c.name << ": sandwich violated\n";
      return 1;
    }
    t.row()
        .cell(c.name)
        .cell(cb.omega_c)
        .cell(omega_star)
        .cell(cube_max)
        .cell(check.max_energy)
        .cell(plan.capacity_bound)
        .cell(check.max_energy / omega_star, 2)
        .cell(plan.capacity_bound / std::max(check.max_energy, 1e-9), 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: omega_c <= cube-omega <= omega* <= plan "
               "energy <= 20*omega_c on every workload — Theorem 1.4.1's "
               "constant-factor sandwich, realized.\n";
  return 0;
}
