// E4 — Theorem 1.4.1 and Corollaries 2.2.4–2.2.7: the offline sandwich
//   ω_c ≤ ω* = max_T ω_T ≤ Woff ≤ plan energy ≤ (2·3^ℓ + ℓ)·ω_c.
// Scenario list and metrics live in the "offline" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("offline", argc, argv);
}
