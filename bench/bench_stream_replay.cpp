// E16 — out-of-core trace replay: bit-identical equivalence with
// in-memory serving, plus replay throughput vs the in-memory
// stream_scaling baseline. Scenario and metrics live in the
// "stream_replay" harness suite (src/exp/suites.cpp); run with --json to
// emit BENCH_stream_replay.json.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("stream_replay", argc, argv);
}
