// E3 — Figure 2.1(c)/2.3, §2.1.3: demand d at a single point.
// Sweep and metrics live in the "point" harness suite (src/exp/suites.cpp);
// run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("point", argc, argv);
}
