// E3 — Figure 2.1(c)/2.3, §2.1.3: demand d at a single point.
//
// Paper claims:
//   * W·(2W+1)² ≥ d is necessary (W₃ = equality), so W₃ ~ (d/4)^{1/3};
//   * capacity 3W₃ suffices: every vehicle in the (2W₃+1)-square around p
//     walks to p (cost ≤ 2W₃) and serves with the remaining ≥ W₃.
// We execute the Fig 2.3 recall and measure the aggregate supply at p.
#include <cmath>
#include <iostream>

#include "core/closed_forms.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;
  std::cout << "E3: point demand (Fig 2.1c) and the Fig 2.3 recall.\n";

  Table t({"d", "W3", "3*W3 recall supply", "covers d?", "omega* (Eq 1.1)",
           "plan max energy", "W3^3*4/d"});
  for (double d : {64.0, 512.0, 4096.0, 32768.0, 262144.0}) {
    const double w3 = example_point_w3(d);
    // Fig 2.3: vehicles in the (2w+1)x(2w+1) L-inf square with w=floor(W3)
    // walk to the center (cost = L1 distance <= 2w) with capacity 3*W3.
    const auto w = static_cast<std::int64_t>(std::floor(w3));
    double supply = 0.0;
    for (std::int64_t x = -w; x <= w; ++x)
      for (std::int64_t y = -w; y <= w; ++y)
        supply += 3.0 * w3 -
                  static_cast<double>(std::abs(x) + std::abs(y));
    const bool covers = supply + 1e-9 >= d;

    DemandMap demand(2);
    demand.set(Point{0, 0}, d);
    const double omega = omega_for_set({Point{0, 0}}, demand);
    const OfflinePlan plan = plan_offline(demand);
    const PlanCheck check = verify_plan(plan, demand);
    if (!check.ok || !covers) {
      std::cerr << "failure at d=" << d << ": "
                << (check.ok ? "recall undersupplies" : check.issue) << "\n";
      return 1;
    }
    t.row()
        .cell(d, 0)
        .cell(w3)
        .cell(supply, 1)
        .cell_bool(covers)
        .cell(omega)
        .cell(check.max_energy)
        .cell(4.0 * w3 * w3 * w3 / d);
  }
  t.print(std::cout);
  std::cout << "\nShape check: W3 ~ (d/4)^(1/3) (last column -> 1); the "
               "3*W3 recall always covers; omega* is the tighter L1-ball "
               "version of the same cube-root law.\n";
  return 0;
}
