// E17 — recorder + multiplexer: engine-side outcome recording audited
// against the in-memory served/failed digests, and deterministic k-way
// multi-trace replay vs the in-memory merge reference. Scenario and
// metrics live in the "record_mux" harness suite (src/exp/suites.cpp);
// run with --json to emit BENCH_record_mux.json.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("record_mux", argc, argv);
}
