// E9 — Baselines (ours; the paper has no empirical comparator).
//
//   * Centralized greedy nearest-vehicle dispatch vs the Chapter 3
//     distributed strategy: minimal sufficient capacity on the same
//     streams. Greedy has global knowledge but no travel discipline; the
//     paper's strategy is fully decentralized yet stays in the same
//     capacity ballpark — and is robust to failures, which greedy is not.
//   * Clarke–Wright CVRP (the classic §1.1 objective) on the same demand
//     points, to contrast tour-length objectives with per-vehicle energy.
#include <iostream>
#include <string>
#include <vector>

#include "online/capacity_search.h"
#include "util/rng.h"
#include "util/table.h"
#include "vrp/cvrp.h"
#include "vrp/greedy_baseline.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;
  std::cout << "E9: baselines — centralized greedy vs the distributed "
               "strategy; Clarke-Wright for context.\n";

  struct Case {
    std::string name;
    Box region;
    std::vector<Job> jobs;
  };
  std::vector<Case> cases;
  {
    Rng rng(301), order(302);
    const Box box(Point{0, 0}, Point{9, 9});
    const DemandMap d = uniform_demand(box, 70, rng);
    cases.push_back({"uniform 70 on 10x10", box,
                     stream_from_demand(d, ArrivalOrder::kShuffled, order)});
  }
  {
    Rng rng(303), order(304);
    const Box box(Point{0, 0}, Point{11, 11});
    const DemandMap d = clustered_demand(box, 2, 80, 1.0, rng);
    cases.push_back({"clustered 80", box,
                     stream_from_demand(d, ArrivalOrder::kShuffled, order)});
  }
  {
    const Box box(Point{0, 0}, Point{9, 9});
    std::vector<Job> jobs;
    for (int i = 0; i < 90; ++i) jobs.push_back({Point{4, 4}, i});
    cases.push_back({"point burst 90", box, jobs});
  }

  Table t({"workload", "greedy min W", "strategy min W (Won)",
           "strategy/greedy", "greedy travel @min", "strategy msgs/job"});
  for (const auto& c : cases) {
    const double greedy_w = greedy_min_capacity(c.region, c.jobs, 0.1);
    const auto greedy_run = run_greedy_baseline(c.region, greedy_w, c.jobs);
    const auto r = find_min_online_capacity(c.jobs, 2, /*seed=*/5, 0.1);
    t.row()
        .cell(c.name)
        .cell(greedy_w)
        .cell(r.won_empirical)
        .cell(r.won_empirical / greedy_w, 2)
        .cell(greedy_run.total_travel)
        .cell(static_cast<double>(r.at_minimum.network.total()) /
                  static_cast<double>(c.jobs.size()),
              1);
  }
  t.print(std::cout);
  std::cout << "\nContext: greedy's omniscience buys a constant factor at "
               "most — consistent with Won = Θ(Woff): no scheduler beats "
               "the Θ(ω*) energy floor.\n\n";

  // Clarke–Wright on the uniform instance: classic CVRP route lengths.
  Rng rng(305);
  const DemandMap d = uniform_demand(Box(Point{0, 0}, Point{9, 9}), 40, rng);
  CvrpInstance inst;
  inst.depot = Point{5, 5};
  inst.vehicle_capacity = 12.0;
  for (const auto& p : d.support()) {
    inst.customers.push_back(p);
    inst.demands.push_back(d.at(p));
  }
  const auto sol = clarke_wright(inst);
  std::cout << "Clarke-Wright CVRP on the same field (central depot, "
            << "Q = 12): " << sol.routes.size() << " routes, total length "
            << sol.total_length << ", valid = "
            << (cvrp_solution_valid(inst, sol) ? "yes" : "NO") << ".\n";
  std::cout << "The classic objective (total route length from one depot) "
               "and the paper's (min per-vehicle energy, dispersed depots) "
               "optimize different resources — the reason CMVRP needs its "
               "own theory (§1.1).\n";
  return 0;
}
