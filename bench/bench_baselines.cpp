// E9 — Baselines: centralized greedy nearest-vehicle dispatch vs the
// Chapter 3 distributed strategy; Clarke–Wright CVRP for context.
// Scenario list and metrics live in the "baselines" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("baselines", argc, argv);
}
