// E5 — Algorithm 1 (§2.3): linear time and 2(2·3^ℓ+ℓ)-approximation.
// Approximation table and the harness-timed scaling sweep live in the
// "alg1" suite (src/exp/suites.cpp); use --reps 3 for stable timings and
// --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("alg1", argc, argv);
}
