// E5 — Algorithm 1 (§2.3): linear time and 2(2·3^ℓ+ℓ)-approximation.
//
// Two parts:
//   * google-benchmark timings over n ∈ {64 … 1024} on the n×n grid —
//     the paper claims O(n^ℓ); time/n² must be flat;
//   * an approximation-quality table against ω_c and the exact ω*.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/algorithm1.h"
#include "core/cube_bound.h"
#include "core/omega.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generators.h"

namespace {

using namespace cmvrp;

DemandMap grid_workload(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  // ~n demand points, heavy-ish tail, all inside [0, n)^2.
  DemandMap d(2);
  for (std::int64_t k = 0; k < n; ++k) {
    const double amount = static_cast<double>(rng.next_int(1, 50));
    d.add(Point{rng.next_int(0, n - 1), rng.next_int(0, n - 1)}, amount);
  }
  return d;
}

void BM_Algorithm1(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const DemandMap d = grid_workload(n, 7);
  for (auto _ : state) {
    auto result = algorithm1(d, n);
    benchmark::DoNotOptimize(result.estimate);
  }
  state.SetComplexityN(n * n);  // cells — the paper's O(n^l) claim
}
BENCHMARK(BM_Algorithm1)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Complexity(benchmark::oN);

void BM_CubeBoundExact(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const DemandMap d = grid_workload(n, 7);
  for (auto _ : state) {
    auto cb = cube_bound(d);
    benchmark::DoNotOptimize(cb.omega_c);
  }
}
BENCHMARK(BM_CubeBoundExact)->RangeMultiplier(2)->Range(64, 256);

}  // namespace

int main(int argc, char** argv) {
  using namespace cmvrp;
  std::cout << "E5: Algorithm 1 — approximation quality.\n";
  Table t({"n", "exit rule", "estimate", "omega_c", "omega* (flow)",
           "estimate/omega*", "cells/n^2"});
  for (std::int64_t n : {16, 32, 64, 128}) {
    const DemandMap d = grid_workload(n, 11);
    const auto r = algorithm1(d, n);
    const auto cb = cube_bound(d);
    const double omega_star = n <= 64 ? omega_star_flow(d) : cb.omega_c;
    const double cells = static_cast<double>(r.cells_touched) /
                         (static_cast<double>(n) * static_cast<double>(n));
    // Claimed guarantee: Woff <= estimate <= 2(2·3^l+l)·Woff.
    if (r.estimate + 1e-9 < cb.omega_c ||
        r.estimate > 2.0 * 20.0 * 20.0 * cb.omega_c + 1e-9) {
      std::cerr << "approximation guarantee violated at n=" << n << "\n";
      return 1;
    }
    t.row()
        .cell(n)
        .cell(r.exit_rule)
        .cell(r.estimate)
        .cell(cb.omega_c)
        .cell(omega_star)
        .cell(r.estimate / std::max(omega_star, 1e-9), 2)
        .cell(cells, 3);
  }
  t.print(std::cout);
  std::cout << "\nShape check: cells/n^2 < 4/3 at every n (geometric level "
               "sums = linear time); estimate within the claimed factor of "
               "the exact optimum.\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
